// Command retina runs case study #1 (§5): the convolution-based retina
// model for motion detection, in both the first (unbalanced) and the
// load-balanced coordination programs. It prints the §5.2 node-timing
// listings that exposed the imbalance, and the Figure 1 speedup curve on
// the simulated Cray Y-MP.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/machine"
	"repro/internal/retina"
	"repro/internal/runtime"
)

func main() {
	size := flag.Int("size", 64, "grid width and height")
	steps := flag.Int("steps", 2, "simulation timesteps")
	listings := flag.Bool("listings", true, "print the §5.2 node timing listings")
	curve := flag.Bool("curve", true, "print the Figure 1 speedup curve")
	memplan := flag.Bool("memplan", false, "compile with the memory plan (copy elision + block recycling)")
	flag.Parse()

	cfg := retina.Config{W: *size, H: *size, K: 5, Slabs: 4, Timesteps: *steps,
		TargetsPerQuarter: 16, TargetWork: 1600, Seed: 1990, MemPlan: *memplan}

	// Correctness first: both programs must equal the sequential code.
	ref := retina.Reference(cfg)
	for _, v := range []retina.Version{retina.V1, retina.V2} {
		scene, eng, err := retina.Run(cfg, v, runtime.Config{
			Mode: runtime.Real, Workers: 4, MaxOps: 500_000_000})
		if err != nil {
			log.Fatalf("%s: %v", v, err)
		}
		status := "MATCHES"
		if !retina.Equal(scene, ref) {
			status = "DIFFERS FROM"
		}
		fmt.Printf("%s version: response %.3f, %s sequential reference; copies=%d\n",
			v, scene.Response(), status, eng.Stats().Blocks.Copies)
	}
	fmt.Println()

	if *listings {
		for _, v := range []retina.Version{retina.V1, retina.V2} {
			_, eng, err := retina.Run(cfg, v, runtime.Config{
				Mode: runtime.Simulated, Workers: 1, Timing: true,
				Machine: machine.CrayYMP(), MaxOps: 500_000_000})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("--- node timings, %s version (first timestep) ---\n", v)
			names := map[string]bool{"convol_split": true, "convol_bite": true,
				"post_up": true, "update_split": true, "update_bite": true, "done_up": true}
			listing := eng.Timing().Listing(names)
			printFirst(listing, 14)
			fmt.Println()
		}
	}

	if *curve {
		fmt.Println("Figure 1: speedup on simulated Cray Y-MP (sequential = 1)")
		base := map[retina.Version]int64{}
		for _, v := range []retina.Version{retina.V1, retina.V2} {
			for procs := 1; procs <= 4; procs++ {
				_, eng, err := retina.Run(cfg, v, runtime.Config{
					Mode: runtime.Simulated, Workers: procs,
					Machine: machine.CrayYMP(), MaxOps: 500_000_000})
				if err != nil {
					log.Fatal(err)
				}
				mk := eng.Stats().MakespanTicks
				if procs == 1 {
					base[v] = mk
				}
				fmt.Printf("  %s procs=%d speedup=%.2f\n", v, procs, float64(base[v])/float64(mk))
			}
		}
		fmt.Println("paper: ~1.0 / ~2.0 / ~2.0 / 3.3 for the balanced version")
	}
}

func printFirst(s string, lines int) {
	count := 0
	start := 0
	for i := 0; i < len(s) && count < lines; i++ {
		if s[i] == '\n' {
			fmt.Println(s[start:i])
			start = i + 1
			count++
		}
	}
	if start < len(s) && count < lines {
		fmt.Println(s[start:])
	}
}
