// Command quickstart runs the paper's §2.1 fork/join example through the
// public API: four convolve operators execute in parallel between init_fn
// and term_fn, coordinated by six lines of Delirium.
package main

import (
	"fmt"
	"log"

	delirium "repro"
)

// src is the §2.1 fragment, verbatim.
const src = `
main()
  let
    a_start=init_fn()
    a=convolve(a_start,0)
    b=convolve(a_start,1)
    c=convolve(a_start,2)
    d=convolve(a_start,3)
  in term_fn(a,b,c,d)
`

func main() {
	reg := delirium.NewRegistry(delirium.Builtins())

	// init_fn produces a shared input vector (a block).
	reg.MustRegister(&delirium.Operator{
		Name: "init_fn", Arity: 0,
		Fn: func(ctx delirium.Context, _ []delirium.Value) (delirium.Value, error) {
			vec := make([]float64, 1024)
			for i := range vec {
				vec[i] = float64(i%17) / 17
			}
			ctx.Charge(int64(len(vec)))
			return delirium.NewBlock(vecData(vec)), nil
		},
	})

	// convolve reads the shared block (never modifies it — no annotation)
	// and returns a smoothed sum for its phase.
	reg.MustRegister(&delirium.Operator{
		Name: "convolve", Arity: 2,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			blk := args[0].(*delirium.Block)
			vec := []float64(blk.Data().(vecData))
			phase := int(args[1].(delirium.Int))
			var sum float64
			for i := phase; i < len(vec)-1; i += 4 {
				sum += (vec[i] + vec[i+1]) / 2
			}
			ctx.Charge(int64(len(vec) / 4))
			return delirium.Float(sum), nil
		},
	})

	reg.MustRegister(&delirium.Operator{
		Name: "term_fn", Arity: 4,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			var total delirium.Float
			for _, a := range args {
				total += a.(delirium.Float)
			}
			ctx.Charge(4)
			return total, nil
		},
	})

	prog, err := delirium.Compile("quickstart.dlr", src, delirium.CompileOptions{Registry: reg})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Println("coordination framework:")
	fmt.Print(src)

	for _, workers := range []int{1, 4} {
		out, stats, _, err := prog.RunStats(delirium.RunConfig{Mode: delirium.Real, Workers: workers})
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Printf("workers=%d  result=%v  (%s)\n", workers, out, stats)
	}
	fmt.Println("\nidentical results on any worker count: the coordination model is deterministic")
}

// vecData adapts a float slice to the block payload interface.
type vecData []float64

func (v vecData) Copy() delirium.BlockData {
	out := make(vecData, len(v))
	copy(out, v)
	return out
}

func (v vecData) Size() int { return len(v) }
