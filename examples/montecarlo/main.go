// Command montecarlo runs a Monte Carlo estimation under Delirium — the
// workload class the paper's introduction motivates ("the majority of
// scientific applications, from Monte-Carlo simulations to protein
// folding, contain sub-computations which vectorize extremely well", §2).
// Each operator invocation runs an independent batch of trials with its
// own deterministic stream; the prelude's partabulate spreads the batches
// over however many processors exist, and parreduce combines the hit
// counts. Determinism holds exactly: per-batch streams are seeded by batch
// index, so the estimate is bit-identical on any worker count.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	delirium "repro"
)

const src = `
batch(i) mc_batch(i)
plus(a, b) add(a, b)

main(batches, trials)
  div(float(parreduce(plus, 0, partabulate(batch, batches))),
      float(mul(batches, trials)))
`

func main() {
	batches := flag.Int("batches", 64, "independent trial batches (parallel width)")
	trials := flag.Int("trials", 50000, "trials per batch")
	workers := flag.Int("workers", 4, "worker goroutines")
	flag.Parse()

	reg := delirium.NewRegistry(delirium.Builtins())
	// mc_batch counts dart throws landing inside the unit circle, using a
	// splitmix-style stream seeded by the batch index.
	reg.MustRegister(&delirium.Operator{
		Name: "mc_batch", Arity: 1,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			idx := uint64(args[0].(delirium.Int))
			state := idx*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
			next := func() float64 {
				state += 0x9e3779b97f4a7c15
				z := state
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return float64(z^(z>>31)) / float64(1<<63) / 2
			}
			hits := 0
			for t := 0; t < *trials; t++ {
				x, y := next(), next()
				if x*x+y*y <= 1 {
					hits++
				}
			}
			ctx.Charge(int64(*trials))
			return delirium.Int(hits), nil
		},
	})

	prog, err := delirium.Compile("mc.dlr", delirium.Prelude()+src,
		delirium.CompileOptions{Registry: reg})
	if err != nil {
		log.Fatal(err)
	}

	var first delirium.Value
	for _, w := range []int{1, *workers} {
		out, stats, _, err := prog.RunStats(delirium.RunConfig{
			Mode: delirium.Real, Workers: w, MaxOps: 100_000_000,
		}, delirium.Int(int64(*batches)), delirium.Int(int64(*trials)))
		if err != nil {
			log.Fatal(err)
		}
		pi := 4 * float64(out.(delirium.Float))
		fmt.Printf("workers=%d  pi≈%.6f (err %.2e)  wall=%.1fms  operators=%d\n",
			w, pi, math.Abs(pi-math.Pi), float64(stats.RealNanos)/1e6, stats.OperatorsRun)
		if first == nil {
			first = out
		} else if out != first {
			log.Fatalf("nondeterministic estimate: %v vs %v", out, first)
		}
	}
	fmt.Println("estimates are bit-identical across worker counts")
}
