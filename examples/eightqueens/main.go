// Command eightqueens executes the paper's §3 parallel recursive
// backtracking program and prints the solutions, demonstrating that the
// result — including the order of the merged solutions — is identical on
// every worker count.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/queens"
	"repro/internal/runtime"
)

func main() {
	n := flag.Int("n", 8, "board size")
	workers := flag.Int("workers", 4, "worker goroutines")
	show := flag.Int("show", 4, "solutions to print (0 = all)")
	fuse := flag.Bool("fuse", false, "compile with operator fusion (supernode dispatch)")
	flag.Parse()

	fmt.Println("coordination framework (the paper's §3 program):")
	fmt.Print(queens.Program(*n))
	fmt.Println()

	sols, eng, err := queens.RunFused(*n, *fuse, runtime.Config{
		Mode: runtime.Real, Workers: *workers, MaxOps: 200_000_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d-queens: %d solutions (reference count %d)\n",
		*n, len(sols), queens.CountReference(*n))
	fmt.Printf("runtime: %s\n\n", eng.Stats())

	limit := *show
	if limit == 0 || limit > len(sols) {
		limit = len(sols)
	}
	for i := 0; i < limit; i++ {
		fmt.Printf("solution %d: %v\n", i+1, sols[i])
		printBoard(sols[i])
	}
	if limit < len(sols) {
		fmt.Printf("... and %d more\n", len(sols)-limit)
	}
}

func printBoard(sol []int) {
	n := len(sol)
	for r := 0; r < n; r++ {
		for c := 1; c <= n; c++ {
			if sol[r] == c {
				fmt.Print(" Q")
			} else {
				fmt.Print(" .")
			}
		}
		fmt.Println()
	}
	fmt.Println()
}
