// Command jacobi solves the Laplace equation on a 2-D grid with Jacobi
// iteration — the array-layer workload shape that §2 says dominates
// scientific code. The coordination program iterates sweeps until the
// residual converges (a data-dependent loop exit), with each sweep forked
// four ways over row bands; the pieces carry their band residuals to the
// join, which folds them deterministically. The parallel result is
// bit-identical to a plain sequential solver.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	delirium "repro"
)

const src = `
define MAX_SWEEPS 10000

main()
  iterate
  {
    sweeps = 0, incr(sweeps)
    st = jb_setup(),
      let
        <a,b,c,d> = jb_split(st)
        ao = jb_sweep(a)
        bo = jb_sweep(b)
        co = jb_sweep(c)
        do = jb_sweep(d)
      in jb_join(ao,bo,co,do)
  }
  while and(lt(sweeps, MAX_SWEEPS), jb_unconverged(st)),
  result st
`

// state is the solver's linear-ownership payload.
type state struct {
	n        int
	tol      float64
	u, v     []float64 // current and next grids, n x n
	residual float64
	sweeps   int
}

type piece struct {
	idx      int
	r0, r1   int
	st       *state // piece 0 only
	shared   *state // read u, write disjoint rows of v
	residual float64
}

func newState(n int, tol float64) *state {
	s := &state{n: n, tol: tol, residual: math.Inf(1)}
	s.u = make([]float64, n*n)
	s.v = make([]float64, n*n)
	// Boundary condition: hot top edge with a sinusoidal profile.
	for c := 0; c < n; c++ {
		s.u[c] = 100 * math.Sin(math.Pi*float64(c)/float64(n-1))
		s.v[c] = s.u[c]
	}
	return s
}

// sweepRows relaxes interior rows [r0, r1), writing v from u, and returns
// the band's max update.
func (s *state) sweepRows(r0, r1 int) float64 {
	n := s.n
	if r0 < 1 {
		r0 = 1
	}
	if r1 > n-1 {
		r1 = n - 1
	}
	var res float64
	for r := r0; r < r1; r++ {
		for c := 1; c < n-1; c++ {
			i := r*n + c
			nv := 0.25 * (s.u[i-1] + s.u[i+1] + s.u[i-n] + s.u[i+n])
			if d := math.Abs(nv - s.u[i]); d > res {
				res = d
			}
			s.v[i] = nv
		}
	}
	return res
}

// reference runs the sequential solver to convergence.
func reference(n int, tol float64, maxSweeps int) *state {
	s := newState(n, tol)
	for s.sweeps < maxSweeps {
		s.residual = s.sweepRows(1, n-1)
		s.u, s.v = s.v, s.u
		copy(s.v, s.u)
		s.sweeps++
		if s.residual <= tol {
			break
		}
	}
	return s
}

func operators(n int, tol float64) *delirium.Registry {
	reg := delirium.NewRegistry(delirium.Builtins())
	stBlock := func(s *state, ctx delirium.Context) delirium.Value {
		return delirium.NewBlock(&delirium.Opaque{Payload: s, Words: 2 * n * n})
	}
	pc := func(v delirium.Value, what string) (*piece, error) {
		o := v.(*delirium.Block).Data().(*delirium.Opaque)
		p, ok := o.Payload.(*piece)
		if !ok {
			return nil, fmt.Errorf("%s: bad payload %T", what, o.Payload)
		}
		return p, nil
	}

	reg.MustRegister(&delirium.Operator{
		Name: "jb_setup", Arity: 0,
		Fn: func(ctx delirium.Context, _ []delirium.Value) (delirium.Value, error) {
			ctx.Charge(int64(n * n))
			return stBlock(newState(n, tol), ctx), nil
		},
	})
	reg.MustRegister(&delirium.Operator{
		Name: "jb_split", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			s := args[0].(*delirium.Block).Data().(*delirium.Opaque).Payload.(*state)
			ctx.Charge(4)
			out := make(delirium.Tuple, 4)
			for i := 0; i < 4; i++ {
				p := &piece{idx: i, r0: i * n / 4, r1: (i + 1) * n / 4, shared: s}
				if i == 0 {
					p.st = s
				}
				out[i] = delirium.NewBlock(&delirium.Opaque{Payload: p, Words: n})
			}
			return out, nil
		},
	})
	reg.MustRegister(&delirium.Operator{
		Name: "jb_sweep", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			p, err := pc(args[0], "jb_sweep")
			if err != nil {
				return nil, err
			}
			p.residual = p.shared.sweepRows(p.r0, p.r1)
			ctx.Charge(int64((p.r1 - p.r0) * n * 5))
			return args[0], nil
		},
	})
	reg.MustRegister(&delirium.Operator{
		Name: "jb_join", Arity: 4, Destructive: []bool{true, true, true, true},
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			var s *state
			var residuals [4]float64
			for _, a := range args {
				p, err := pc(a, "jb_join")
				if err != nil {
					return nil, err
				}
				if p.st != nil {
					s = p.st
				}
				residuals[p.idx] = p.residual
			}
			if s == nil {
				return nil, fmt.Errorf("jb_join: no piece carried the state")
			}
			s.residual = 0
			for _, r := range residuals { // deterministic fold order
				if r > s.residual {
					s.residual = r
				}
			}
			s.u, s.v = s.v, s.u
			copy(s.v, s.u)
			s.sweeps++
			ctx.Charge(int64(n))
			return stBlock(s, ctx), nil
		},
	})
	reg.MustRegister(&delirium.Operator{
		Name: "jb_unconverged", Arity: 1,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			s := args[0].(*delirium.Block).Data().(*delirium.Opaque).Payload.(*state)
			ctx.Charge(1)
			return delirium.Bool(s.residual > s.tol), nil
		},
	})
	return reg
}

func main() {
	n := flag.Int("n", 96, "grid size")
	tol := flag.Float64("tol", 1e-3, "convergence tolerance")
	workers := flag.Int("workers", 4, "worker goroutines")
	flag.Parse()

	fmt.Println("coordination framework:")
	fmt.Print(src)
	fmt.Println()

	prog, err := delirium.Compile("jacobi.dlr", src, delirium.CompileOptions{Registry: operators(*n, *tol)})
	if err != nil {
		log.Fatal(err)
	}
	out, stats, _, err := prog.RunStats(delirium.RunConfig{
		Mode: delirium.Real, Workers: *workers, MaxOps: 500_000_000})
	if err != nil {
		log.Fatal(err)
	}
	s := out.(*delirium.Block).Data().(*delirium.Opaque).Payload.(*state)
	fmt.Printf("converged after %d sweeps, residual %.2e (%s)\n", s.sweeps, s.residual, stats)

	ref := reference(*n, *tol, 10000)
	same := s.sweeps == ref.sweeps && s.residual == ref.residual
	for i := range s.u {
		if s.u[i] != ref.u[i] {
			same = false
			break
		}
	}
	if same {
		fmt.Println("solution is bit-identical to the sequential solver")
	} else {
		fmt.Println("WARNING: differs from sequential solver")
	}
	mid := s.u[(*n/2)*(*n)+(*n/2)]
	fmt.Printf("temperature at grid center: %.4f\n", mid)
}
