// Command jacobi solves the Laplace equation on a 2-D grid with Jacobi
// iteration — the array-layer workload shape that §2 says dominates
// scientific code (see internal/jacobi for the operators and the
// coordination program). The parallel result is bit-identical to a plain
// sequential solver.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/jacobi"
	"repro/internal/runtime"
)

func main() {
	n := flag.Int("n", 96, "grid size")
	tol := flag.Float64("tol", 1e-3, "convergence tolerance")
	workers := flag.Int("workers", 4, "worker goroutines")
	memplan := flag.Bool("memplan", false, "compile with the memory plan (copy elision + block recycling)")
	flag.Parse()

	cfg := jacobi.Config{N: *n, Tol: *tol, MemPlan: *memplan}
	fmt.Println("coordination framework:")
	fmt.Print(jacobi.Source(cfg))
	fmt.Println()

	s, eng, err := jacobi.Run(cfg, runtime.Config{
		Mode: runtime.Real, Workers: *workers, MaxOps: 500_000_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged after %d sweeps, residual %.2e (%s)\n", s.Sweeps, s.Residual, eng.Stats())

	if jacobi.Matches(s, jacobi.Reference(cfg)) {
		fmt.Println("solution is bit-identical to the sequential solver")
	} else {
		fmt.Println("WARNING: differs from sequential solver")
	}
	mid := s.U[(*n/2)*(*n)+(*n/2)]
	fmt.Printf("temperature at grid center: %.4f\n", mid)
}
