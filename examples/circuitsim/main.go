// Command circuitsim simulates a procedural gate-level netlist with the
// Delirium-coordinated circuit simulator (one of the paper's listed
// applications, §4): each clock cycle forks the gate list four ways and
// latches the results.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/runtime"
)

func main() {
	gates := flag.Int("gates", 2000, "gate count")
	inputs := flag.Int("inputs", 32, "primary inputs")
	cycles := flag.Int("cycles", 16, "clock cycles")
	workers := flag.Int("workers", 4, "worker goroutines")
	seed := flag.Int64("seed", 11, "netlist seed")
	flag.Parse()

	cfg := circuit.Config{Inputs: *inputs, Gates: *gates, Cycles: *cycles, Seed: *seed}
	fmt.Println("coordination framework:")
	fmt.Print(circuit.Source(cfg))
	fmt.Println()

	ckt, eng, err := circuit.Run(cfg, runtime.Config{
		Mode: runtime.Real, Workers: *workers, MaxOps: 100_000_000})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("simulated %d gates for %d cycles: signature %016x\n",
		cfg.Gates, ckt.Cycle, ckt.Signature)
	fmt.Printf("runtime: %s\n", st)

	ref := circuit.Reference(cfg)
	if circuit.Equal(ckt, ref) {
		fmt.Println("state matches the sequential reference exactly")
	} else {
		fmt.Printf("WARNING: differs from reference (signature %016x)\n", ref.Signature)
	}
}
