// Command raytracer renders a procedural scene with the Delirium-
// coordinated ray tracer (a stand-in for the 10,000-line ray tracer the
// paper lists among its applications, §4) and writes a PPM image.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ray"
	"repro/internal/runtime"
)

func main() {
	width := flag.Int("w", 160, "image width")
	height := flag.Int("h", 120, "image height")
	depth := flag.Int("depth", 3, "maximum reflection depth")
	spheres := flag.Int("spheres", 7, "procedural spheres")
	workers := flag.Int("workers", 4, "worker goroutines")
	out := flag.String("o", "render.ppm", "output PPM file ('-' for stdout)")
	flag.Parse()

	cfg := ray.Config{W: *width, H: *height, MaxDepth: *depth, Spheres: *spheres, Seed: 7}
	fmt.Println("coordination framework:")
	fmt.Print(ray.Source())
	fmt.Println()

	scene, eng, err := ray.Run(cfg, runtime.Config{
		Mode: runtime.Real, Workers: *workers, MaxOps: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("rendered %dx%d: %d intersection tests, %d operators, %d copies\n",
		cfg.W, cfg.H, scene.Tests, st.OperatorsRun, st.Blocks.Copies)

	// The parallel render is bit-identical to the sequential one.
	if ray.ImagesEqual(scene, ray.Reference(cfg)) {
		fmt.Println("image matches the sequential reference exactly")
	} else {
		fmt.Println("WARNING: image differs from sequential reference")
	}

	ppm := scene.PPM()
	if *out == "-" {
		fmt.Print(ppm)
		return
	}
	if err := os.WriteFile(*out, []byte(ppm), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(ppm))
}
