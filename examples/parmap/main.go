// Command parmap demonstrates the prelude's dynamic-width coordination
// structures — the answer to §9.2's "parallelism is hard-wired" critique.
// The same six-line program exploits however many processors exist: a
// numeric-integration operator is mapped over n intervals with parmap and
// the partial sums combined with parreduce's balanced tree.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	delirium "repro"
)

const src = `
chunk(i) integrate(i)
plus(a, b) add(a, b)

main(n) parreduce(plus, 0.0, parmap(chunk, iota(n)))
`

func main() {
	n := flag.Int("n", 64, "integration intervals (parallel width)")
	steps := flag.Int("steps", 20000, "sub-steps per interval")
	fuse := flag.Bool("fuse", false, "compile with operator fusion (supernode dispatch)")
	flag.Parse()

	reg := delirium.NewRegistry(delirium.Builtins())
	// integrate computes its slice of the integral of 4/(1+x^2) over
	// [0,1] — the classic pi benchmark — as one sequential operator.
	reg.MustRegister(&delirium.Operator{
		Name: "integrate", Arity: 1,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			i := int(args[0].(delirium.Int)) // 1-based interval index
			lo := float64(i-1) / float64(*n)
			hi := float64(i) / float64(*n)
			h := (hi - lo) / float64(*steps)
			var sum float64
			for s := 0; s < *steps; s++ {
				x := lo + (float64(s)+0.5)*h
				sum += 4 / (1 + x*x) * h
			}
			ctx.Charge(int64(*steps))
			return delirium.Float(sum), nil
		},
	})

	prog, err := delirium.Compile("pi.dlr", delirium.Prelude()+src,
		delirium.CompileOptions{Registry: reg, Fuse: *fuse})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("program (plus the prelude):")
	fmt.Print(src)
	fmt.Println()

	for _, workers := range []int{1, 2, 4, 8} {
		out, stats, _, err := prog.RunStats(delirium.RunConfig{
			Mode: delirium.Simulated, Workers: workers,
			Machine: delirium.CrayYMP().WithProcs(workers),
		}, delirium.Int(int64(*n)))
		if err != nil {
			log.Fatal(err)
		}
		pi := float64(out.(delirium.Float))
		fmt.Printf("procs=%d  pi≈%.10f (err %.2e)  virtual makespan=%d ticks\n",
			workers, pi, math.Abs(pi-math.Pi), stats.MakespanTicks)
		if *fuse {
			fmt.Printf("         %d nodes ran fused, %d dispatches saved\n",
				stats.FusedNodes, stats.FusedDispatchesSaved)
		}
	}
	fmt.Println("\nthe same program scales with the processor count: no hard-wired split width")
}
