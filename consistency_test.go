package delirium_test

import (
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/runtime"
	"repro/internal/selfcomp"
	"repro/internal/value"
)

// TestCrossCuttingConsistency is the repository's broadest invariant: for a
// family of generated programs, the computed value is identical across
//
//   - optimization levels (none / local / full),
//   - compiler drivers (sequential / parallel / self-hosted),
//   - executors (real / simulated), and
//   - worker counts,
//
// which is the paper's determinism guarantee (§8) composed with compiler
// correctness.
func TestCrossCuttingConsistency(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			src := compile.Generate(18, seed)
			var want value.Value

			runCfgs := []runtime.Config{
				{Mode: runtime.Real, Workers: 1, MaxOps: 20_000_000},
				{Mode: runtime.Real, Workers: 4, MaxOps: 20_000_000},
				{Mode: runtime.Simulated, Workers: 3, MaxOps: 20_000_000},
			}
			compileVariants := []compile.Options{
				{OptLevel: -1},
				{OptLevel: 1},
				{OptLevel: 2},
				{OptLevel: 2, Workers: 3},
				{OptLevel: 2, Fuse: true},
				{OptLevel: 2, MemPlan: true, Fuse: true},
			}
			for ci, copts := range compileVariants {
				res, err := compile.Compile("gen.dlr", src, copts)
				if err != nil {
					t.Fatalf("compile variant %d: %v", ci, err)
				}
				for ri, rcfg := range runCfgs {
					eng := runtime.New(res.Program, rcfg)
					v, err := eng.Run()
					if err != nil {
						t.Fatalf("variant %d run %d: %v", ci, ri, err)
					}
					if want == nil {
						want = v
					} else if !value.Equal(v, want) {
						t.Errorf("variant %d run %d: %v, want %v", ci, ri, v, want)
					}
				}
			}

			// The self-hosted compiler agrees too.
			shc, err := selfcomp.Compile("gen.dlr", src, nil, 3)
			if err != nil {
				t.Fatalf("selfcomp: %v", err)
			}
			eng := runtime.New(shc.Graph, runtime.Config{Mode: runtime.Real, Workers: 2, MaxOps: 20_000_000})
			v, err := eng.Run()
			if err != nil {
				t.Fatalf("selfcomp run: %v", err)
			}
			if !value.Equal(v, want) {
				t.Errorf("selfcomp output: %v, want %v", v, want)
			}
		})
	}
}
