package delirium_test

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/machine"
	"repro/internal/retina"
	"repro/internal/runtime"
)

// The adaptive loop's safety contract: profile weights only reorder ready
// queues — they must never change results. These tests stack the profiled
// recompile on top of every other runtime feature (memory plan, engine
// reuse, retry with seeded faults, 1/2/8 workers, both clocks) and demand
// bit-identity with the sequential reference throughout.

func adaptiveTestConfig() retina.Config {
	return retina.Config{W: 32, H: 32, K: 5, Slabs: 4, Timesteps: 2,
		TargetsPerQuarter: 8, TargetWork: 200, Seed: 77}
}

// calibrateProfile compiles with unit weights and measures mean operator
// costs on a single-worker simulated run, mirroring adapt.Tune's
// calibration pass.
func calibrateProfile(t *testing.T, cfg retina.Config) map[string]int64 {
	t.Helper()
	res := compileRetina(t, cfg, nil)
	eng := runtime.New(res.Program, runtime.Config{
		Mode: runtime.Simulated, Workers: 1, Timing: true,
		Machine: machine.CrayYMP(), MaxOps: 50_000_000})
	if _, err := eng.Run(); err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	prof := eng.ProfileWeights()
	if len(prof) == 0 {
		t.Fatal("calibration measured nothing")
	}
	return prof
}

func compileRetina(t *testing.T, cfg retina.Config, prof map[string]int64) *compile.Result {
	t.Helper()
	reg, err := retina.Operators(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compile.Compile("retina1.dlr", retina.Source(cfg, retina.V1), compile.Options{
		Registry: reg, Fuse: true, MemPlan: true, FuseProfile: prof})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptiveCalibrationDeterministic: identical calibration runs measure
// identical profiles, and recompiling with the measured profile yields a
// byte-identical fusion plan — the property that makes calibrate-once sound.
func TestAdaptiveCalibrationDeterministic(t *testing.T) {
	cfg := adaptiveTestConfig()
	p1 := calibrateProfile(t, cfg)
	p2 := calibrateProfile(t, cfg)
	if len(p1) != len(p2) {
		t.Fatalf("profile sizes differ: %d vs %d", len(p1), len(p2))
	}
	for k, v := range p1 {
		if p2[k] != v {
			t.Errorf("profile[%s] = %d vs %d across identical runs", k, v, p2[k])
		}
	}
	r1 := compileRetina(t, cfg, p1).FusePlan.Report()
	r2 := compileRetina(t, cfg, p2).FusePlan.Report()
	if r1 != r2 {
		t.Errorf("fusion plans diverged for identical profiles:\n%s\nvs\n%s", r1, r2)
	}
}

// TestAdaptiveOutputsBitIdentical: baseline and profile-tuned plans produce
// the same scene as the sequential reference at every worker count, with the
// memory plan on, engines reused via Reset, and a seeded fault leg driving
// the retry machinery through the tuned plan.
func TestAdaptiveOutputsBitIdentical(t *testing.T) {
	cfg := adaptiveTestConfig()
	ref := retina.Reference(cfg)
	prof := calibrateProfile(t, cfg)

	plans := map[string]map[string]int64{"baseline": nil, "tuned": prof}
	for planName, p := range plans {
		res := compileRetina(t, cfg, p)
		for _, workers := range []int{1, 2, 8} {
			for _, mode := range []runtime.Mode{runtime.Simulated, runtime.Real} {
				rcfg := runtime.Config{Mode: mode, Workers: workers, MaxOps: 50_000_000}
				if mode == runtime.Simulated {
					rcfg.Machine = machine.CrayYMP()
				}
				eng := runtime.New(res.Program, rcfg)
				for run := 0; run < 2; run++ { // reuse leg: Reset must not perturb results
					if run > 0 {
						if err := eng.Reset(); err != nil {
							t.Fatalf("%s w%d %v: reset: %v", planName, workers, mode, err)
						}
					}
					out, err := eng.Run()
					if err != nil {
						t.Fatalf("%s w%d %v run %d: %v", planName, workers, mode, run, err)
					}
					scene, err := retina.ExtractScene(out)
					if err != nil {
						t.Fatal(err)
					}
					if !retina.Equal(scene, ref) {
						t.Errorf("%s w%d %v run %d diverged from reference", planName, workers, mode, run)
					}
				}
			}
		}

		// Fault leg: seeded chaos on two operators plus retry, 2 workers.
		fcfg := runtime.Config{Mode: runtime.Real, Workers: 2, MaxOps: 50_000_000,
			Retry:  runtime.RetryPolicy{MaxAttempts: 3},
			Faults: runtime.SeededFaultPlan(7, []string{"convol_bite", "post_up"}, 8)}
		eng := runtime.New(res.Program, fcfg)
		out, err := eng.Run()
		if err != nil {
			t.Fatalf("%s fault leg: %v", planName, err)
		}
		if eng.Stats().FaultsInjected == 0 {
			t.Errorf("%s fault leg injected nothing", planName)
		}
		scene, err := retina.ExtractScene(out)
		if err != nil {
			t.Fatal(err)
		}
		if !retina.Equal(scene, ref) {
			t.Errorf("%s fault leg diverged from reference", planName)
		}
	}
}
