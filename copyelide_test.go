package delirium_test

import (
	"strings"
	"testing"

	delirium "repro"
	"repro/internal/compile"
	"repro/internal/jacobi"
	"repro/internal/retina"
	rt "repro/internal/runtime"
)

// The headline acceptance property of the memory plan: the two §5 workloads
// run with zero copy-on-write duplications under the plan, their planned
// output is bit-identical to the unplanned output at 1, 2, and 8 workers,
// and the elision/pool counters show the plan actually did something.

func TestJacobiCopyElision(t *testing.T) {
	cfg := jacobi.Config{N: 48, Tol: 1e-3, MaxSweeps: 200}
	ref := jacobi.Reference(cfg)
	for _, workers := range []int{1, 2, 8} {
		cfg.MemPlan = false
		base, _, err := jacobi.Run(cfg, rt.Config{Mode: rt.Real, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d unplanned: %v", workers, err)
		}
		cfg.MemPlan = true
		s, eng, err := jacobi.Run(cfg, rt.Config{Mode: rt.Real, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d planned: %v", workers, err)
		}
		if !jacobi.Matches(s, base) || !jacobi.Matches(s, ref) {
			t.Errorf("workers %d: planned solve diverged from the unplanned/reference state", workers)
		}
		st := eng.Stats()
		if st.Blocks.Copies != 0 {
			t.Errorf("workers %d: Copies = %d, want 0", workers, st.Blocks.Copies)
		}
		if st.ElidedReleases == 0 || st.PooledAllocs == 0 || st.CopiesAvoided == 0 {
			t.Errorf("workers %d: plan idle: elided=%d+%d pooled=%d inplace=%d",
				workers, st.ElidedRetains, st.ElidedReleases, st.PooledAllocs, st.CopiesAvoided)
		}
		if st.Blocks.Allocated-st.Blocks.Freed != 1 { // the result block stays live
			t.Errorf("workers %d: allocated %d freed %d", workers, st.Blocks.Allocated, st.Blocks.Freed)
		}
	}
}

func TestRetinaCopyElision(t *testing.T) {
	cfg := retina.DefaultConfig()
	cfg.W, cfg.H, cfg.Timesteps = 48, 48, 2
	ref := retina.Reference(cfg)
	for _, v := range []retina.Version{retina.V1, retina.V2} {
		for _, workers := range []int{1, 2, 8} {
			cfg.MemPlan = true
			s, eng, err := retina.Run(cfg, v, rt.Config{Mode: rt.Real, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers %d planned: %v", v, workers, err)
			}
			if !retina.Equal(s, ref) {
				t.Errorf("%s workers %d: planned scene diverged from the sequential reference", v, workers)
			}
			st := eng.Stats()
			if st.Blocks.Copies != 0 {
				t.Errorf("%s workers %d: Copies = %d, want 0", v, workers, st.Blocks.Copies)
			}
			if st.ElidedReleases == 0 || st.PooledAllocs == 0 || st.CopiesAvoided == 0 {
				t.Errorf("%s workers %d: plan idle: elided=%d+%d pooled=%d inplace=%d",
					v, workers, st.ElidedRetains, st.ElidedReleases, st.PooledAllocs, st.CopiesAvoided)
			}
		}
	}
}

// TestMemPlanReportAPI: the public compile surface exposes the plan report.
func TestMemPlanReportAPI(t *testing.T) {
	prog, err := delirium.Compile("t.dlr", "main() add(1, 2)", delirium.CompileOptions{MemPlan: true})
	if err != nil {
		t.Fatal(err)
	}
	p := prog.MemPlan()
	if p == nil {
		t.Fatal("MemPlan() = nil with CompileOptions.MemPlan set")
	}
	if !strings.Contains(p.Report(), "memory plan:") {
		t.Errorf("report = %q", p.Report())
	}
	unplanned, err := delirium.Compile("t.dlr", "main() add(1, 2)", delirium.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if unplanned.MemPlan() != nil {
		t.Error("MemPlan() must be nil without the option")
	}
}

// TestDispatchMemPlanOverhead guards the unplanned dispatch path: compiling
// without a plan must leave the executor structurally free of plan
// bookkeeping — no counters move, and the stats line stays in its
// pre-plan format — so the unplanned hot path pays only nil checks
// (the <2% budget eyeballed via BenchmarkDispatch in CI).
func TestDispatchMemPlanOverhead(t *testing.T) {
	src := `
main(n)
  iterate { i = 0, incr(i) } while lt(i, n), result i
`
	res, err := compile.Compile("spin.dlr", src, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.MemPlanned {
		t.Fatal("MemPlanned set without the option")
	}
	eng := rt.New(res.Program, rt.Config{Mode: rt.Real, Workers: 2, MaxOps: 1_000_000})
	if _, err := eng.Run(delirium.Int(5000)); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.ElidedRetains != 0 || st.ElidedReleases != 0 || st.PooledAllocs != 0 || st.CopiesAvoided != 0 {
		t.Errorf("unplanned run moved plan counters: elided=%d+%d pooled=%d inplace=%d",
			st.ElidedRetains, st.ElidedReleases, st.PooledAllocs, st.CopiesAvoided)
	}
	if strings.Contains(st.String(), "elided") {
		t.Errorf("unplanned stats line changed format: %q", st.String())
	}
}
