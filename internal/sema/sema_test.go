package sema

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/macro"
	"repro/internal/operator"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/value"
)

func analyze(t *testing.T, src string) (*Info, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags.Err())
	}
	expanded := macro.ExpandProgram(prog, &diags)
	info := Analyze(expanded, operator.Builtins(), &diags)
	return info, &diags
}

func analyzeOK(t *testing.T, src string) *Info {
	t.Helper()
	info, diags := analyze(t, src)
	if diags.HasErrors() {
		t.Fatalf("analyze: %v", diags.Err())
	}
	return info
}

func analyzeErr(t *testing.T, src, wantErr string) {
	t.Helper()
	_, diags := analyze(t, src)
	if !diags.HasErrors() {
		t.Fatalf("expected error mentioning %q, got none", wantErr)
	}
	if !strings.Contains(diags.Err().Error(), wantErr) {
		t.Fatalf("error %q does not mention %q", diags.Err(), wantErr)
	}
}

// findIdent locates the first identifier whose name is name or an
// alpha-renamed variant name$N.
func findIdent(e ast.Expr, name string) *ast.Ident {
	var found *ast.Ident
	ast.Walk(e, func(x ast.Expr) bool {
		if id, ok := x.(*ast.Ident); ok && found == nil {
			if id.Name == name || strings.HasPrefix(id.Name, name+"$") {
				found = id
			}
		}
		return found == nil
	})
	return found
}

func TestResolveKinds(t *testing.T) {
	info := analyzeOK(t, `
helper(v) incr(v)
main()
  let x = 1
  in helper(add(x, 2))
`)
	m := info.Main()
	if m == nil {
		t.Fatal("main not found")
	}
	body := m.Decl.Body
	if id := findIdent(body, "x"); id == nil || id.Ref != ast.RefLet {
		t.Errorf("x resolved to %v", id)
	}
	if id := findIdent(body, "helper"); id == nil || id.Ref != ast.RefFunc {
		t.Errorf("helper resolved to %v", id)
	}
	if id := findIdent(body, "add"); id == nil || id.Ref != ast.RefOperator {
		t.Errorf("add resolved to %v", id)
	}
	h := info.Funcs["helper"]
	if id := findIdent(h.Decl.Body, "v"); id == nil || id.Ref != ast.RefParam {
		t.Errorf("v resolved to %v", id)
	}
}

func TestUndefinedName(t *testing.T) {
	analyzeErr(t, "main() nonsense(1)", "undefined name nonsense")
	analyzeErr(t, "main() xyz", "undefined name xyz")
}

func TestArityChecks(t *testing.T) {
	analyzeErr(t, "f(a,b) add(a,b)\nmain() f(1)", "expects 2 arguments, got 1")
	analyzeErr(t, "main() incr(1,2)", "expects 1 arguments, got 2")
	// Variadic operators accept anything.
	analyzeOK(t, "main() merge(1,2,3,4,5)")
}

func TestOperatorNotFirstClass(t *testing.T) {
	analyzeErr(t, "apply(f,x) f(x)\nmain() apply(incr, 1)", "not a first-class value")
}

func TestFunctionFirstClassUse(t *testing.T) {
	info := analyzeOK(t, `
double(x) mul(x, 2)
apply(f, x) f(x)
main() apply(double, 5)
`)
	m := info.Main()
	call := m.Decl.Body.(*ast.Call)
	arg := call.Args[0].(*ast.Ident)
	if arg.Ref != ast.RefFunc {
		t.Errorf("double as value resolved to %v", arg.Ref)
	}
	// In apply, the call through parameter f stays a variable reference.
	a := info.Funcs["apply"]
	inner := a.Decl.Body.(*ast.Call)
	if fn, ok := inner.Fun.(*ast.Ident); !ok || fn.Ref != ast.RefParam {
		t.Errorf("f callee resolved to %+v", inner.Fun)
	}
}

func TestDuplicateFunction(t *testing.T) {
	analyzeErr(t, "f() 1\nf() 2\nmain() f()", "redefined")
}

func TestFunctionOperatorConflict(t *testing.T) {
	analyzeErr(t, "incr(x) x\nmain() incr(1)", "conflicts with a registered operator")
}

func TestDuplicateParam(t *testing.T) {
	analyzeErr(t, "f(a,a) a\nmain() f(1,2)", "duplicate parameter")
}

func TestDuplicateLetBinding(t *testing.T) {
	analyzeErr(t, "main() let a = 1 a = 2 in a", "bound more than once")
}

func TestLetForwardReferenceAllowed(t *testing.T) {
	// Dataflow semantics: textual order of bindings is irrelevant.
	analyzeOK(t, `
main()
  let a = incr(b)
      b = incr(1)
  in a
`)
}

func TestLetCycleRejected(t *testing.T) {
	analyzeErr(t, `
main()
  let a = incr(b)
      b = incr(a)
  in a
`, "circular data dependency")
	analyzeErr(t, "main() let a = incr(a) in a", "circular data dependency")
}

func TestAlphaRenamingDistinguishesShadows(t *testing.T) {
	info := analyzeOK(t, `
main()
  let x = 1
  in let x = 2
     in incr(x)
`)
	outer := info.Main().Decl.Body.(*ast.Let)
	inner := outer.Body.(*ast.Let)
	if outer.Binds[0].Names[0] == inner.Binds[0].Names[0] {
		t.Errorf("shadowed binders share the unique name %q", outer.Binds[0].Names[0])
	}
	use := findIdent(inner.Body, "x")
	if use.Name != inner.Binds[0].Names[0] {
		t.Errorf("use %q does not reference innermost binder %q", use.Name, inner.Binds[0].Names[0])
	}
}

func TestAlphaRenamingNestLocal(t *testing.T) {
	// Uniqueness is per top-level nest: distinct functions may reuse a
	// spelling (their scopes never mix), but a nested function and its
	// enclosing scope must not collide.
	info := analyzeOK(t, `
main()
  let x = 1
      f(x) incr(x)
  in f(x)
`)
	outer := info.Main().Decl.Body.(*ast.Let)
	var liftedParam string
	for name, fn := range info.Funcs {
		if strings.HasPrefix(name, "main$f") {
			liftedParam = fn.Decl.Params[0]
		}
	}
	if liftedParam == "" {
		t.Fatal("lifted f missing")
	}
	if outer.Binds[0].Names[0] == liftedParam {
		t.Errorf("nested parameter shares unique name %q with enclosing binding", liftedParam)
	}
}

func TestNestedFunctionLifting(t *testing.T) {
	info := analyzeOK(t, `
main()
  let base = 10
      addb(v) add(v, base)
  in addb(5)
`)
	var lifted *Func
	for name, f := range info.Funcs {
		if !f.TopLevel {
			if lifted != nil {
				t.Fatalf("more than one lifted function")
			}
			lifted = f
			if !strings.HasPrefix(name, "main$addb") {
				t.Errorf("lifted name = %q", name)
			}
		}
	}
	if lifted == nil {
		t.Fatal("nested function was not lifted")
	}
	if len(lifted.Decl.Captures) != 1 || !strings.HasPrefix(lifted.Decl.Captures[0], "base") {
		t.Errorf("captures = %v, want [base]", lifted.Decl.Captures)
	}
	// The use of base inside the nested body is marked as a capture.
	if id := findIdent(lifted.Decl.Body, "base"); id == nil || id.Ref != ast.RefCapture {
		t.Errorf("captured use resolved to %+v", id)
	}
}

func TestTransitiveCaptures(t *testing.T) {
	// f calls g; g captures outer a. f must also capture a to forward it.
	info := analyzeOK(t, `
main()
  let a = 1
      g(x) add(x, a)
      f(y) g(incr(y))
  in f(2)
`)
	var fDecl *ast.FuncDecl
	for name, fn := range info.Funcs {
		if strings.HasPrefix(name, "main$f") {
			fDecl = fn.Decl
		}
	}
	if fDecl == nil {
		t.Fatal("lifted f not found")
	}
	if len(fDecl.Captures) != 1 || !strings.HasPrefix(fDecl.Captures[0], "a") {
		t.Errorf("f captures = %v, want [a]", fDecl.Captures)
	}
}

func TestMutualRecursionCapturesAndFlags(t *testing.T) {
	info := analyzeOK(t, `
main()
  let k = 3
      even(n) if is_equal(n, 0) then 1 else odd(sub(n, 1))
      odd(n) if is_equal(n, 0) then 0 else even(sub(n, k))
  in even(8)
`)
	var even, odd *ast.FuncDecl
	for name, fn := range info.Funcs {
		switch {
		case strings.HasPrefix(name, "main$even"):
			even = fn.Decl
		case strings.HasPrefix(name, "main$odd"):
			odd = fn.Decl
		}
	}
	if even == nil || odd == nil {
		t.Fatal("lifted functions missing")
	}
	if !even.Recursive || !odd.Recursive {
		t.Errorf("mutual recursion not detected: even=%v odd=%v", even.Recursive, odd.Recursive)
	}
	// odd captures k; even must transitively capture it.
	if len(odd.Captures) != 1 || len(even.Captures) != 1 {
		t.Errorf("captures: even=%v odd=%v", even.Captures, odd.Captures)
	}
	if info.Main().Decl.Recursive {
		t.Error("main is not recursive")
	}
}

func TestSelfRecursionFlag(t *testing.T) {
	info := analyzeOK(t, `
fact(n) if is_equal(n, 0) then 1 else mul(n, fact(sub(n, 1)))
main() fact(5)
`)
	if !info.Funcs["fact"].Decl.Recursive {
		t.Error("fact should be recursive")
	}
	if info.Main().Decl.Recursive {
		t.Error("main should not be recursive")
	}
}

func TestQueensProgramAnalyzes(t *testing.T) {
	src := `
main()
  let board = empty_board()
  in show_solutions(do_it(board,1))

do_it(board,queen)
  let h1 = try(board,queen,1)
      h2 = try(board,queen,2)
  in merge(h1,h2)

try(board,queen,location)
  let new_board = add_queen(board,queen,location)
  in if is_valid(new_board)
      then if is_equal(queen,8)
            then new_board
            else do_it(new_board,incr(queen))
      else NULL
`
	var diags source.DiagList
	prog := parser.Parse("q.dlr", src, &diags)
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{Name: "empty_board", Arity: 0, Fn: dummyFn})
	reg.MustRegister(&operator.Operator{Name: "show_solutions", Arity: 1, Fn: dummyFn})
	reg.MustRegister(&operator.Operator{Name: "add_queen", Arity: 3, Fn: dummyFn})
	reg.MustRegister(&operator.Operator{Name: "is_valid", Arity: 1, Fn: dummyFn})
	info := Analyze(prog, reg, &diags)
	if diags.HasErrors() {
		t.Fatalf("queens should analyze: %v", diags.Err())
	}
	doIt := info.Funcs["do_it"]
	tryF := info.Funcs["try"]
	if !doIt.Decl.Recursive || !tryF.Decl.Recursive {
		t.Error("do_it and try are mutually recursive")
	}
}

func TestIterateScoping(t *testing.T) {
	info := analyzeOK(t, `
main()
  let limit = 5
  in iterate { i = 0, incr(i) } while lt(i, limit), result i
`)
	it := info.Main().Decl.Body.(*ast.Let).Body.(*ast.Iterate)
	if id := findIdent(it.Vars[0].Next, "i"); id == nil || id.Ref != ast.RefLet {
		t.Errorf("loop var use in Next resolved to %+v", id)
	}
	if id := findIdent(it.Cond, "limit"); id == nil || id.Ref != ast.RefLet {
		t.Errorf("enclosing use in Cond resolved to %+v", id)
	}
}

func TestIterateInitCannotSeeLoopVars(t *testing.T) {
	analyzeErr(t, "main() iterate { i = incr(i), incr(i) } while lt(i,3), result i", "undefined name i")
}

func TestIterateDuplicateVar(t *testing.T) {
	analyzeErr(t, "main() iterate { i = 0, incr(i) i = 1, incr(i) } while lt(i,3), result i", "bound more than once")
}

func TestTailMarking(t *testing.T) {
	info := analyzeOK(t, `
loop(n) if is_equal(n, 0) then 0 else loop(sub(n, 1))
main() loop(3)
`)
	body := info.Funcs["loop"].Decl.Body.(*ast.If)
	tail := body.Else.(*ast.Call)
	if !tail.Tail {
		t.Error("recursive call in else branch should be marked tail")
	}
	inner := tail.Args[0].(*ast.Call)
	if inner.Tail {
		t.Error("argument call must not be marked tail")
	}
	mainCall := info.Main().Decl.Body.(*ast.Call)
	if !mainCall.Tail {
		t.Error("function body call is a tail call")
	}
}

func TestTailMarkingThroughLet(t *testing.T) {
	info := analyzeOK(t, `
f(n) let x = incr(n) in f(x)
main() f(1)
`)
	let := info.Funcs["f"].Decl.Body.(*ast.Let)
	if !let.Body.(*ast.Call).Tail {
		t.Error("let body call should be tail")
	}
	if let.Binds[0].Init.(*ast.Call).Tail {
		t.Error("binding init must not be tail")
	}
}

func TestFreeNames(t *testing.T) {
	info := analyzeOK(t, `
main()
  let a = 1
      b = 2
  in iterate { i = a, add(i, b) } while lt(i, a), result i
`)
	it := info.Main().Decl.Body.(*ast.Let).Body.(*ast.Iterate)
	var loopVars []string
	for _, v := range it.Vars {
		loopVars = append(loopVars, v.Name)
	}
	free := FreeNames(info, []ast.Expr{it.Cond, it.Result, it.Vars[0].Next}, loopVars)
	if len(free) != 2 {
		t.Fatalf("free = %v, want a and b", free)
	}
	if !strings.HasPrefix(free[0], "a") || !strings.HasPrefix(free[1], "b") {
		t.Errorf("free = %v", free)
	}
}

func TestFreeNamesIncludesFunctionCaptures(t *testing.T) {
	info := analyzeOK(t, `
main()
  let k = 7
      addk(v) add(v, k)
  in iterate { i = 0, addk(i) } while lt(i, 3), result i
`)
	it := info.Main().Decl.Body.(*ast.Let).Body.(*ast.Iterate)
	free := FreeNames(info, []ast.Expr{it.Vars[0].Next, it.Cond, it.Result}, []string{it.Vars[0].Name})
	// Calling addk requires its capture k to be forwarded.
	found := false
	for _, n := range free {
		if strings.HasPrefix(n, "k") {
			found = true
		}
	}
	if !found {
		t.Errorf("free = %v, want k (capture of addk)", free)
	}
}

func TestInputProgramNotMutated(t *testing.T) {
	src := `
main()
  let x = 1
  in let x = 2
     in incr(x)
`
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	before := ast.PrintProgram(prog)
	Analyze(prog, operator.Builtins(), &diags)
	if after := ast.PrintProgram(prog); after != before {
		t.Errorf("Analyze mutated its input:\n%s\nvs\n%s", before, after)
	}
}

func TestInfoString(t *testing.T) {
	info := analyzeOK(t, "main() 1")
	if !strings.Contains(info.String(), "1 functions") {
		t.Errorf("String = %q", info.String())
	}
}

var dummyFn operator.Func = func(operator.Context, []value.Value) (value.Value, error) {
	return value.Null{}, nil
}
