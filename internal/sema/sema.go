// Package sema implements environment analysis, the fourth compiler pass of
// Table 1. It resolves every identifier to a parameter, let binding,
// function, or registered operator; alpha-renames local binders so that
// every binding in a program has a unique name; lifts nested function
// definitions to the top level, computing their capture sets (the values a
// closure carries, §3/§7); detects recursion so the runtime can schedule
// recursive call-closure expansions at the lowest priority; verifies call
// arities and rejects circular data dependencies among sibling let
// bindings; and marks calls in tail position for the runtime's activation
// reuse.
//
// In the parallel compiler this pass is an inherited-attribute walk
// (§6.2 strategy 2): the global environment is computed from the program
// crown, then each function body is analyzed independently, the scope
// environment flowing down the tree as the inherited attribute.
package sema

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/operator"
	"repro/internal/source"
)

// Func is one analyzed function: a top-level declaration or a lifted nested
// definition.
type Func struct {
	// Decl is the analyzed declaration. For lifted functions Decl.Name is
	// the unique qualified name (e.g. "main$helper").
	Decl *ast.FuncDecl
	// TopLevel reports whether the function appeared at the top level of
	// the source program.
	TopLevel bool
}

// Arity returns the user-visible parameter count (captures excluded).
func (f *Func) Arity() int { return len(f.Decl.Params) }

// Info is the result of environment analysis.
type Info struct {
	// Prog is the analyzed program: a deep copy of the input with binders
	// alpha-renamed and identifier references resolved.
	Prog *ast.Program
	// Funcs maps unique function names (top-level and lifted) to analysis
	// results.
	Funcs map[string]*Func
	// Order lists function names deterministically: top-level functions in
	// source order, then lifted functions in lift order.
	Order []string
	// Registry is the operator registry the program was resolved against.
	Registry *operator.Registry
}

// Main returns the program entry point, or nil if absent.
func (in *Info) Main() *Func { return in.Funcs["main"] }

// String summarizes the analysis result.
func (in *Info) String() string {
	return fmt.Sprintf("sema.Info(%d functions)", len(in.Funcs))
}

// Analyze performs environment analysis (see the package comment). The
// input program is not modified; diagnostics are appended to diags. The
// returned Info is meaningful only when diags has no errors.
//
// Analyze is the sequential driver; the parallel compiler calls Collect
// (crown), AnalyzeOne per function (workers), and Finalize (crown) with the
// same semantics.
func Analyze(prog *ast.Program, reg *operator.Registry, diags *source.DiagList) *Info {
	crown := Collect(prog, reg, diags)
	units := make([]*FuncUnit, 0, len(crown.Prog.Funcs))
	for _, f := range crown.Prog.Funcs {
		if crown.global[f.Name] != f {
			continue // duplicate definition, already reported
		}
		units = append(units, AnalyzeOne(crown, f, diags))
	}
	return Finalize(crown, units, diags)
}

// Crown is the global environment computed sequentially from the program's
// top level before per-function analysis fans out (§6.2: the walks traverse
// the crown of the tree, clipping off subtrees handled independently).
type Crown struct {
	// Prog is the deep-copied program the units mutate.
	Prog   *ast.Program
	reg    *operator.Registry
	global map[string]*ast.FuncDecl
}

// Collect clones the program and gathers the global function environment,
// reporting duplicate definitions and operator-name conflicts.
func Collect(prog *ast.Program, reg *operator.Registry, diags *source.DiagList) *Crown {
	clone := ast.CloneProgram(prog)
	if len(clone.Defines) > 0 {
		// Macro expansion must run first; surviving defines indicate a
		// driver bug rather than a user error.
		diags.Errorf(clone.Defines[0].P, "internal: program reached environment analysis with unexpanded defines")
	}
	c := &Crown{Prog: clone, reg: reg, global: make(map[string]*ast.FuncDecl, len(clone.Funcs))}
	for _, f := range clone.Funcs {
		if prev, dup := c.global[f.Name]; dup {
			diags.Errorf(f.P, "function %s redefined", f.Name)
			diags.Notef(prev.P, "previous definition of %s", f.Name)
			continue
		}
		if _, isOp := reg.Lookup(f.Name); isOp {
			diags.Errorf(f.P, "function %s conflicts with a registered operator of the same name", f.Name)
		}
		c.global[f.Name] = f
	}
	return c
}

// FuncUnit is the per-function analysis result: the function itself plus
// any nested definitions lifted out of it. Binder uniqueness and capture
// attribution are confined to one top-level function's nest, so units are
// independent and may be produced concurrently.
type FuncUnit struct {
	Decl   *ast.FuncDecl
	Lifted []*ast.FuncDecl

	scopes []*fnScope
	defFS  map[string]*fnScope
}

// AnalyzeOne resolves one top-level function in the crown's environment.
// Safe to call concurrently for distinct functions; each call must use its
// own diags (merge them afterwards to keep deterministic order).
func AnalyzeOne(c *Crown, f *ast.FuncDecl, diags *source.DiagList) *FuncUnit {
	r := &resolver{
		reg:    c.reg,
		diags:  diags,
		global: c.global,
		defFS:  make(map[string]*fnScope),
		seen:   make(map[string]bool),
	}
	r.analyzeFunc(f, nil, nil)
	return &FuncUnit{Decl: f, Lifted: r.lifted, scopes: r.scopes, defFS: r.defFS}
}

// Finalize merges units into an Info: it runs each nest's capture-lifting
// fixpoint, marks recursion over the whole reference graph, and flags tail
// calls.
func Finalize(c *Crown, units []*FuncUnit, diags *source.DiagList) *Info {
	info := &Info{Prog: c.Prog, Funcs: make(map[string]*Func), Registry: c.reg}
	var allScopes []*fnScope
	for _, u := range units {
		info.Order = append(info.Order, u.Decl.Name)
		info.Funcs[u.Decl.Name] = &Func{Decl: u.Decl, TopLevel: true}
	}
	for _, u := range units {
		for _, lf := range u.Lifted {
			info.Order = append(info.Order, lf.Name)
			info.Funcs[lf.Name] = &Func{Decl: lf}
		}
		propagateCaptures(u.scopes, u.defFS)
		allScopes = append(allScopes, u.scopes...)
	}
	markRecursion(allScopes)
	for _, name := range info.Order {
		markTails(info.Funcs[name].Decl.Body)
	}
	warnUnusedParams(info, diags)
	return info
}

// warnUnusedParams reports parameters never referenced in their function's
// body. Unused parameters are legal (the coordination framework may thread
// values for future use) but usually indicate a framework bug, so the
// compiler warns without failing.
func warnUnusedParams(info *Info, diags *source.DiagList) {
	for _, name := range info.Order {
		decl := info.Funcs[name].Decl
		if len(decl.Params) == 0 {
			continue
		}
		used := make(map[string]bool, len(decl.Params))
		ast.Walk(decl.Body, func(e ast.Expr) bool {
			if id, ok := e.(*ast.Ident); ok {
				switch id.Ref {
				case ast.RefParam, ast.RefCapture, ast.RefLet:
					used[id.Name] = true
				}
			}
			return true
		})
		// Names forwarded as captures of referenced functions count too.
		frees := FreeNames(info, []ast.Expr{decl.Body}, nil)
		for _, n := range frees {
			used[n] = true
		}
		for _, p := range decl.Params {
			if !used[p] {
				diags.Warnf(decl.P, "parameter %s of %s is never used", displayName(p), displayName(decl.Name))
			}
		}
	}
}

// displayName strips alpha-renaming suffixes for user-facing messages.
func displayName(unique string) string {
	if i := indexByte(unique, '$'); i > 0 {
		return unique[:i]
	}
	return unique
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// binding is one resolved name in a scope.
type binding struct {
	unique string
	kind   ast.RefKind // RefParam or RefLet for locals; RefFunc for nested fns
	fs     *fnScope    // owning function
	fn     string      // unique function name when kind == RefFunc
	pos    source.Pos
}

// env is a lexically-chained scope.
type env struct {
	parent *env
	names  map[string]*binding
}

func newEnv(parent *env) *env { return &env{parent: parent, names: make(map[string]*binding)} }

func (e *env) lookup(name string) *binding {
	for s := e; s != nil; s = s.parent {
		if b, ok := s.names[name]; ok {
			return b
		}
	}
	return nil
}

// fnScope is a function boundary used for capture attribution.
type fnScope struct {
	parent   *fnScope
	decl     *ast.FuncDecl
	captures []string        // unique names captured, in first-use order
	capSet   map[string]bool // membership for captures
	refs     map[string]bool // unique names of functions referenced
}

// isAncestorOf reports whether a encloses (or equals) b.
func (a *fnScope) isAncestorOf(b *fnScope) bool {
	for s := b; s != nil; s = s.parent {
		if s == a {
			return true
		}
	}
	return false
}

func (fs *fnScope) addCapture(name string) {
	if !fs.capSet[name] {
		fs.capSet[name] = true
		fs.captures = append(fs.captures, name)
	}
}

type resolver struct {
	reg    *operator.Registry
	diags  *source.DiagList
	global map[string]*ast.FuncDecl
	lifted []*ast.FuncDecl
	scopes []*fnScope          // this nest's function scopes, for fixpoint passes
	defFS  map[string]*fnScope // defining function scope of each unique local
	seen   map[string]bool     // binder spellings already used in this nest
	nextID int
}

// unique returns a nest-unique binder name, preserving the original
// spelling for its first occurrence. Uniqueness within one top-level
// function's nest suffices: captures, optimizer rewrites, and graph
// environments never mix binders across nests.
func (r *resolver) unique(name string) string {
	if !r.seen[name] && r.global[name] == nil {
		if _, isOp := r.reg.Lookup(name); !isOp {
			r.seen[name] = true
			return name
		}
	}
	r.nextID++
	return fmt.Sprintf("%s$%d", name, r.nextID)
}

// analyzeFunc resolves one function (top-level or nested). outer is the
// enclosing lexical environment (nil for top level); parentFS the enclosing
// function scope.
func (r *resolver) analyzeFunc(f *ast.FuncDecl, outer *env, parentFS *fnScope) *fnScope {
	fs := &fnScope{parent: parentFS, decl: f, capSet: make(map[string]bool), refs: make(map[string]bool)}
	r.scopes = append(r.scopes, fs)
	scope := newEnv(outer)
	for i, p := range f.Params {
		if scope.names[p] != nil {
			r.diags.Errorf(f.P, "duplicate parameter %s in function %s", p, f.Name)
			continue
		}
		u := r.unique(p)
		f.Params[i] = u
		scope.names[p] = &binding{unique: u, kind: ast.RefParam, fs: fs, pos: f.P}
		r.defFS[u] = fs
	}
	r.resolveExpr(f.Body, scope, fs, false)
	f.Captures = fs.captures // provisional; propagateCaptures finalizes
	return fs
}

// resolveExpr resolves e in the given scope. isCallee marks an identifier
// appearing as the head of a call.
func (r *resolver) resolveExpr(e ast.Expr, sc *env, fs *fnScope, isCallee bool) {
	switch x := e.(type) {
	case nil, *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.NullLit:
	case *ast.Ident:
		r.resolveIdent(x, sc, fs, isCallee)
	case *ast.Call:
		if id, ok := x.Fun.(*ast.Ident); ok {
			r.resolveIdent(id, sc, fs, true)
			r.checkArity(id, len(x.Args), x.P)
		} else {
			r.resolveExpr(x.Fun, sc, fs, false)
		}
		for _, a := range x.Args {
			r.resolveExpr(a, sc, fs, false)
		}
	case *ast.TupleExpr:
		for _, el := range x.Elems {
			r.resolveExpr(el, sc, fs, false)
		}
	case *ast.Let:
		r.resolveLet(x, sc, fs)
	case *ast.If:
		r.resolveExpr(x.Cond, sc, fs, false)
		r.resolveExpr(x.Then, sc, fs, false)
		r.resolveExpr(x.Else, sc, fs, false)
	case *ast.Iterate:
		r.resolveIterate(x, sc, fs)
	default:
		r.diags.Errorf(e.Pos(), "internal: unknown expression %T in environment analysis", e)
	}
}

func (r *resolver) resolveIdent(id *ast.Ident, sc *env, fs *fnScope, isCallee bool) {
	if b := sc.lookup(id.Name); b != nil {
		if b.kind == ast.RefFunc {
			id.Ref = ast.RefFunc
			id.Name = b.fn
			fs.refs[b.fn] = true
			return
		}
		id.Name = b.unique
		if b.fs == fs {
			id.Ref = b.kind
			return
		}
		// Captured from an enclosing function: every function scope between
		// here and the owner must forward the value.
		id.Ref = ast.RefCapture
		for s := fs; s != nil && s != b.fs; s = s.parent {
			s.addCapture(b.unique)
		}
		return
	}
	if _, ok := r.global[id.Name]; ok {
		id.Ref = ast.RefFunc
		fs.refs[id.Name] = true
		return
	}
	if _, ok := r.reg.Lookup(id.Name); ok {
		if !isCallee {
			r.diags.Errorf(id.P, "operator %s is not a first-class value; wrap it in a function to pass it", id.Name)
		}
		id.Ref = ast.RefOperator
		return
	}
	r.diags.Errorf(id.P, "undefined name %s", id.Name)
}

func (r *resolver) checkArity(id *ast.Ident, n int, pos source.Pos) {
	switch id.Ref {
	case ast.RefFunc:
		if f := r.declByUnique(id.Name); f != nil && len(f.Params) != n {
			r.diags.Errorf(pos, "function %s expects %d arguments, got %d", id.Name, len(f.Params), n)
		}
	case ast.RefOperator:
		if op, ok := r.reg.Lookup(id.Name); ok && !op.AcceptsArgs(n) {
			r.diags.Errorf(pos, "operator %s expects %d arguments, got %d", id.Name, op.Arity, n)
		}
	}
}

func (r *resolver) declByUnique(name string) *ast.FuncDecl {
	if f, ok := r.global[name]; ok {
		return f
	}
	for _, lf := range r.lifted {
		if lf.Name == name {
			return lf
		}
	}
	return nil
}

func (r *resolver) resolveLet(let *ast.Let, sc *env, fs *fnScope) {
	inner := newEnv(sc)
	// letrec: bind every name before resolving any initializer.
	for _, b := range let.Binds {
		switch b.Kind {
		case ast.BindFunc:
			name := b.Fn.Name
			if inner.names[name] != nil {
				r.diags.Errorf(b.P, "name %s bound more than once in the same let", name)
				continue
			}
			liftName := r.liftName(fs.decl.Name, name)
			b.Fn.Name = liftName
			inner.names[name] = &binding{unique: liftName, kind: ast.RefFunc, fs: fs, fn: liftName, pos: b.P}
		default:
			for i, name := range b.Names {
				if inner.names[name] != nil {
					r.diags.Errorf(b.P, "name %s bound more than once in the same let", name)
					continue
				}
				u := r.unique(name)
				b.Names[i] = u
				inner.names[name] = &binding{unique: u, kind: ast.RefLet, fs: fs, pos: b.P}
				r.defFS[u] = fs
			}
		}
	}
	// Resolve initializers and nested function bodies.
	for _, b := range let.Binds {
		if b.Kind == ast.BindFunc {
			r.analyzeFunc(b.Fn, inner, fs)
			r.lifted = append(r.lifted, b.Fn)
			continue
		}
		r.resolveExpr(b.Init, inner, fs, false)
	}
	r.checkLetCycles(let)
	r.resolveExpr(let.Body, inner, fs, false)
}

// liftName produces a unique top-level name for a nested function.
func (r *resolver) liftName(outer, inner string) string {
	base := outer + "$" + inner
	name := base
	for i := 2; ; i++ {
		if r.global[name] == nil && r.declByUnique(name) == nil {
			return name
		}
		name = fmt.Sprintf("%s%d", base, i)
	}
}

// checkLetCycles rejects circular data dependencies among sibling value
// bindings: a dataflow graph with a cycle would deadlock at run time, so it
// is reported here.
func (r *resolver) checkLetCycles(let *ast.Let) {
	owner := make(map[string]int) // unique name -> bind index
	for i, b := range let.Binds {
		if b.Kind == ast.BindFunc {
			continue
		}
		for _, n := range b.Names {
			owner[n] = i
		}
	}
	deps := make([][]int, len(let.Binds))
	for i, b := range let.Binds {
		if b.Kind == ast.BindFunc {
			continue
		}
		seen := make(map[int]bool)
		ast.Walk(b.Init, func(e ast.Expr) bool {
			if id, ok := e.(*ast.Ident); ok && (id.Ref == ast.RefLet || id.Ref == ast.RefCapture) {
				if j, ok := owner[id.Name]; ok && !seen[j] {
					seen[j] = true
					deps[i] = append(deps[i], j)
				}
			}
			return true
		})
	}
	// DFS cycle detection.
	state := make([]int, len(let.Binds)) // 0 unvisited, 1 active, 2 done
	var visit func(i int) bool
	visit = func(i int) bool {
		switch state[i] {
		case 1:
			return false
		case 2:
			return true
		}
		state[i] = 1
		for _, j := range deps[i] {
			if !visit(j) {
				return false
			}
		}
		state[i] = 2
		return true
	}
	for i, b := range let.Binds {
		if b.Kind != ast.BindFunc && !visit(i) {
			r.diags.Errorf(b.P, "circular data dependency among let bindings (binding of %v)", b.Names)
			return
		}
	}
}

func (r *resolver) resolveIterate(it *ast.Iterate, sc *env, fs *fnScope) {
	// Initializers run in the enclosing scope.
	for _, iv := range it.Vars {
		r.resolveExpr(iv.Init, sc, fs, false)
	}
	inner := newEnv(sc)
	for _, iv := range it.Vars {
		if inner.names[iv.Name] != nil {
			r.diags.Errorf(iv.P, "loop variable %s bound more than once in the same iterate", iv.Name)
			continue
		}
		u := r.unique(iv.Name)
		orig := iv.Name
		iv.Name = u
		inner.names[orig] = &binding{unique: u, kind: ast.RefLet, fs: fs, pos: iv.P}
		r.defFS[u] = fs
	}
	for _, iv := range it.Vars {
		r.resolveExpr(iv.Next, inner, fs, false)
	}
	r.resolveExpr(it.Cond, inner, fs, false)
	r.resolveExpr(it.Result, inner, fs, false)
}

// propagateCaptures runs the lambda-lifting fixpoint over one nest: a
// function that references another function must also capture whatever that
// function captures (so it can forward the values at the call or
// closure-creation site), unless the names are its own locals.
func propagateCaptures(scopes []*fnScope, defFS map[string]*fnScope) {
	byName := make(map[string]*fnScope, len(scopes))
	for _, fs := range scopes {
		byName[fs.decl.Name] = fs
	}
	for changed := true; changed; {
		changed = false
		for _, fs := range scopes {
			for ref := range fs.refs {
				g, ok := byName[ref]
				if !ok {
					continue
				}
				for _, n := range g.captures {
					def := defFS[n]
					if def == fs || fs.capSet[n] {
						continue // local to fs, or already captured
					}
					if def != nil && def.isAncestorOf(fs) {
						fs.addCapture(n)
						changed = true
					}
				}
			}
		}
	}
	for _, fs := range scopes {
		sort.Strings(fs.captures)
		fs.decl.Captures = fs.captures
	}
}

// markRecursion sets Recursive on every function that can reach itself
// through the reference graph (a conservative over-approximation: a
// first-class use counts as a possible call).
func markRecursion(scopes []*fnScope) {
	adj := make(map[string][]string, len(scopes))
	for _, fs := range scopes {
		names := make([]string, 0, len(fs.refs))
		for ref := range fs.refs {
			names = append(names, ref)
		}
		sort.Strings(names)
		adj[fs.decl.Name] = names
	}
	for _, fs := range scopes {
		start := fs.decl.Name
		visited := make(map[string]bool)
		stack := append([]string(nil), adj[start]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == start {
				fs.decl.Recursive = true
				break
			}
			if visited[n] {
				continue
			}
			visited[n] = true
			stack = append(stack, adj[n]...)
		}
	}
}

// markTails flags calls in tail position so the runtime can reuse the
// caller's activation (§7: tail recursion is handled efficiently).
func markTails(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Call:
		x.Tail = true
	case *ast.Let:
		markTails(x.Body)
	case *ast.If:
		markTails(x.Then)
		markTails(x.Else)
	}
	// Iterate results are lowered separately; literals and identifiers have
	// nothing to mark.
}

// FreeNames returns the unique names of local bindings (parameters, lets,
// captures) referenced by the expressions but not bound within them, plus
// the transitive captures of any functions referenced. bound seeds the
// excluded set (e.g. a loop's variables). Results are sorted.
//
// The graph builder uses this to compute the capture list of the hidden
// tail-recursive function an iterate lowers to.
func FreeNames(info *Info, exprs []ast.Expr, bound []string) []string {
	excl := make(map[string]bool, len(bound))
	for _, b := range bound {
		excl[b] = true
	}
	free := make(map[string]bool)
	var walkBound func(e ast.Expr, local map[string]bool)
	walkBound = func(e ast.Expr, local map[string]bool) {
		switch x := e.(type) {
		case nil, *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.NullLit:
		case *ast.Ident:
			switch x.Ref {
			case ast.RefParam, ast.RefLet, ast.RefCapture:
				if !excl[x.Name] && !local[x.Name] {
					free[x.Name] = true
				}
			case ast.RefFunc:
				if f, ok := info.Funcs[x.Name]; ok {
					for _, c := range f.Decl.Captures {
						if !excl[c] && !local[c] {
							free[c] = true
						}
					}
				}
			}
		case *ast.Call:
			walkBound(x.Fun, local)
			for _, a := range x.Args {
				walkBound(a, local)
			}
		case *ast.TupleExpr:
			for _, el := range x.Elems {
				walkBound(el, local)
			}
		case *ast.Let:
			inner := make(map[string]bool, len(local)+len(x.Binds))
			for k := range local {
				inner[k] = true
			}
			for _, b := range x.Binds {
				for _, n := range b.Names {
					inner[n] = true
				}
				if b.Fn != nil {
					inner[b.Fn.Name] = true
				}
			}
			for _, b := range x.Binds {
				if b.Fn != nil {
					// The lifted body is analyzed separately; at this level
					// only its captures are free uses.
					if f, ok := info.Funcs[b.Fn.Name]; ok {
						for _, c := range f.Decl.Captures {
							if !excl[c] && !inner[c] {
								free[c] = true
							}
						}
					}
					continue
				}
				walkBound(b.Init, inner)
			}
			walkBound(x.Body, inner)
		case *ast.If:
			walkBound(x.Cond, local)
			walkBound(x.Then, local)
			walkBound(x.Else, local)
		case *ast.Iterate:
			inner := make(map[string]bool, len(local)+len(x.Vars))
			for k := range local {
				inner[k] = true
			}
			for _, iv := range x.Vars {
				walkBound(iv.Init, local)
				inner[iv.Name] = true
			}
			for _, iv := range x.Vars {
				walkBound(iv.Next, inner)
			}
			walkBound(x.Cond, inner)
			walkBound(x.Result, inner)
		}
	}
	for _, e := range exprs {
		walkBound(e, make(map[string]bool))
	}
	out := make([]string, 0, len(free))
	for n := range free {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
