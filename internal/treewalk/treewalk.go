// Package treewalk implements the three parallel tree-walking strategies
// the parallel compiler is built from (§6.2):
//
//  1. top-down update — update each node as it is encountered; an update
//     may rely on every ancestor having been updated first;
//  2. inherited-attribute update — compute an attribute on the way down and
//     hand each node the accumulated package;
//  3. synthesized-attribute update — walk bottom-up, updating a node from
//     values computed for its children.
//
// Each walk traverses the crown of the tree sequentially, clipping off
// subtrees; sets of subtrees are allocated to workers and handled
// independently; at the end the pieces merge back into a single tree
// ("merging" is implicit — the tree is updated in place). To keep the sets
// balanced, every node is annotated with the weight of the subtree below
// it; the crown traversal clips a subtree once it weighs less than
// one-third of the per-worker target (§6.2).
package treewalk

import "sync"

// Node is a generic weighted tree node. Data carries the application
// payload; Weight the node's own cost (1 is typical).
type Node struct {
	Weight   int
	Data     interface{}
	Children []*Node

	subtree int // annotated subtree weight, set by Annotate
}

// SubtreeWeight returns the annotated weight (valid after Annotate).
func (n *Node) SubtreeWeight() int { return n.subtree }

// Annotate computes subtree weights bottom-up and returns the total.
func Annotate(root *Node) int {
	if root == nil {
		return 0
	}
	w := root.Weight
	for _, c := range root.Children {
		w += Annotate(c)
	}
	root.subtree = w
	return w
}

// Count returns the number of nodes.
func Count(root *Node) int {
	if root == nil {
		return 0
	}
	n := 1
	for _, c := range root.Children {
		n += Count(c)
	}
	return n
}

// clipPlan is the crown decomposition: the crown nodes (in preorder) and
// the clipped subtrees with their crown parents.
type clipPlan struct {
	crown []*Node
	clips []*Node
}

// clip separates the tree into a crown and subtrees of at most
// targetWeight/3 each (or leaves). Must run after Annotate.
func clip(root *Node, targetWeight int) clipPlan {
	limit := targetWeight / 3
	if limit < 1 {
		limit = 1
	}
	var plan clipPlan
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.subtree <= limit {
			plan.clips = append(plan.clips, n)
			return
		}
		plan.crown = append(plan.crown, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return plan
}

// assign distributes clipped subtrees over workers by greedy weight
// balancing, preserving deterministic assignment.
func assign(clips []*Node, workers int) [][]*Node {
	if workers < 1 {
		workers = 1
	}
	sets := make([][]*Node, workers)
	loads := make([]int, workers)
	for _, c := range clips {
		best := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		sets[best] = append(sets[best], c)
		loads[best] += c.subtree
	}
	return sets
}

// runSets processes each worker's subtree set on its own goroutine.
func runSets(sets [][]*Node, fn func(*Node)) {
	var wg sync.WaitGroup
	for _, set := range sets {
		if len(set) == 0 {
			continue
		}
		wg.Add(1)
		go func(set []*Node) {
			defer wg.Done()
			for _, n := range set {
				fn(n)
			}
		}(set)
	}
	wg.Wait()
}

// TopDown applies update to every node, parents before children, using the
// given number of workers. The crown is updated sequentially; clipped
// subtrees proceed in parallel.
func TopDown(root *Node, workers int, update func(*Node)) {
	if root == nil {
		return
	}
	total := Annotate(root)
	plan := clip(root, perWorker(total, workers))
	for _, n := range plan.crown {
		update(n)
	}
	var all func(n *Node)
	all = func(n *Node) {
		update(n)
		for _, c := range n.Children {
			all(c)
		}
	}
	runSets(assign(plan.clips, workers), all)
}

// Inherited computes an attribute flowing downward: each node receives the
// attribute of its parent combined through acc. The crown accumulates
// sequentially; clipped subtrees continue in parallel from the attribute
// value at their clip point.
func Inherited(root *Node, workers int, seed interface{},
	acc func(n *Node, inherited interface{}) interface{}) {
	if root == nil {
		return
	}
	total := Annotate(root)
	plan := clip(root, perWorker(total, workers))
	inCrown := make(map[*Node]bool, len(plan.crown))
	for _, n := range plan.crown {
		inCrown[n] = true
	}
	type job struct {
		n         *Node
		inherited interface{}
	}
	var jobs []job
	var down func(n *Node, inherited interface{})
	down = func(n *Node, inherited interface{}) {
		out := acc(n, inherited)
		for _, c := range n.Children {
			if inCrown[c] {
				down(c, out)
			} else {
				jobs = append(jobs, job{n: c, inherited: out})
			}
		}
	}
	down(root, seed)

	// Balance the clipped jobs over workers.
	if workers < 1 {
		workers = 1
	}
	sets := make([][]job, workers)
	loads := make([]int, workers)
	for _, j := range jobs {
		best := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		sets[best] = append(sets[best], j)
		loads[best] += j.n.subtree
	}
	var wg sync.WaitGroup
	for _, set := range sets {
		if len(set) == 0 {
			continue
		}
		wg.Add(1)
		go func(set []job) {
			defer wg.Done()
			var seq func(n *Node, inherited interface{})
			seq = func(n *Node, inherited interface{}) {
				out := acc(n, inherited)
				for _, c := range n.Children {
					seq(c, out)
				}
			}
			for _, j := range set {
				seq(j.n, j.inherited)
			}
		}(set)
	}
	wg.Wait()
}

// Synthesized computes a bottom-up attribute: combine receives the node and
// its children's attributes. Clipped subtrees are computed in parallel;
// the crown then finishes the pass with the subtree values in place
// (§6.2: "the synthesized attribute walk must run over the crown of the
// tree finishing the pass now that the values for the subtrees have been
// computed").
func Synthesized(root *Node, workers int,
	combine func(n *Node, children []interface{}) interface{}) interface{} {
	if root == nil {
		return nil
	}
	total := Annotate(root)
	plan := clip(root, perWorker(total, workers))

	results := sync.Map{} // *Node -> interface{}
	var up func(n *Node) interface{}
	up = func(n *Node) interface{} {
		vals := make([]interface{}, len(n.Children))
		for i, c := range n.Children {
			vals[i] = up(c)
		}
		return combine(n, vals)
	}
	runSets(assign(plan.clips, workers), func(n *Node) {
		results.Store(n, up(n))
	})

	inCrown := make(map[*Node]bool, len(plan.crown))
	for _, n := range plan.crown {
		inCrown[n] = true
	}
	var finish func(n *Node) interface{}
	finish = func(n *Node) interface{} {
		if !inCrown[n] {
			v, _ := results.Load(n)
			return v
		}
		vals := make([]interface{}, len(n.Children))
		for i, c := range n.Children {
			vals[i] = finish(c)
		}
		return combine(n, vals)
	}
	return finish(root)
}

// perWorker is the clip target: total weight divided by workers.
func perWorker(total, workers int) int {
	if workers < 1 {
		workers = 1
	}
	t := total / workers
	if t < 1 {
		t = 1
	}
	return t
}

// Build constructs a deterministic random-shaped tree for tests and
// benchmarks: n nodes, branching up to fanout, weights of 1.
func Build(n, fanout int, seed int64) *Node {
	if n <= 0 {
		return nil
	}
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(bound int) int {
		state = state*2862933555777941757 + 3037000493
		return int((state >> 33) % uint64(bound))
	}
	root := &Node{Weight: 1, Data: 0}
	nodes := []*Node{root}
	for i := 1; i < n; i++ {
		nd := &Node{Weight: 1, Data: i}
		for {
			p := nodes[next(len(nodes))]
			if len(p.Children) < fanout {
				p.Children = append(p.Children, nd)
				break
			}
		}
		nodes = append(nodes, nd)
	}
	return root
}
