package treewalk

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestAnnotateAndCount(t *testing.T) {
	root := &Node{Weight: 1, Children: []*Node{
		{Weight: 2},
		{Weight: 3, Children: []*Node{{Weight: 4}}},
	}}
	if got := Annotate(root); got != 10 {
		t.Errorf("Annotate = %d, want 10", got)
	}
	if root.SubtreeWeight() != 10 {
		t.Errorf("SubtreeWeight = %d", root.SubtreeWeight())
	}
	if got := Count(root); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if Annotate(nil) != 0 || Count(nil) != 0 {
		t.Error("nil tree should be empty")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(500, 4, 9)
	b := Build(500, 4, 9)
	if Count(a) != 500 || Count(b) != 500 {
		t.Fatalf("Count = %d, %d", Count(a), Count(b))
	}
	// Same shape: compare preorder data.
	var flat func(n *Node, out *[]int)
	flat = func(n *Node, out *[]int) {
		*out = append(*out, n.Data.(int))
		for _, c := range n.Children {
			flat(c, out)
		}
	}
	var fa, fb []int
	flat(a, &fa)
	flat(b, &fb)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("shapes differ at %d", i)
		}
	}
}

func TestTopDownVisitsAllOnceParentsFirst(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		root := Build(2000, 3, 5)
		depth := sync.Map{} // *Node -> depth at visit
		// Record each node's depth as parent depth + 1; a child visited
		// before its parent would find no parent entry.
		parents := map[*Node]*Node{}
		var link func(n *Node)
		link = func(n *Node) {
			for _, c := range n.Children {
				parents[c] = n
				link(c)
			}
		}
		link(root)
		var visits int64
		ok := int64(1)
		TopDown(root, workers, func(n *Node) {
			atomic.AddInt64(&visits, 1)
			p := parents[n]
			if p == nil {
				depth.Store(n, 0)
				return
			}
			pd, found := depth.Load(p)
			if !found {
				atomic.StoreInt64(&ok, 0)
				return
			}
			depth.Store(n, pd.(int)+1)
		})
		if visits != 2000 {
			t.Errorf("workers=%d: visits = %d, want 2000", workers, visits)
		}
		if ok != 1 {
			t.Errorf("workers=%d: a node was visited before its parent", workers)
		}
	}
}

func TestInheritedAttribute(t *testing.T) {
	// Attribute = depth; node stores it into Data via acc.
	for _, workers := range []int{1, 3} {
		root := Build(1500, 4, 11)
		depths := sync.Map{}
		Inherited(root, workers, 0, func(n *Node, inherited interface{}) interface{} {
			d := inherited.(int)
			depths.Store(n, d)
			return d + 1
		})
		// Verify against a sequential recomputation.
		bad := 0
		var check func(n *Node, d int)
		check = func(n *Node, d int) {
			got, ok := depths.Load(n)
			if !ok || got.(int) != d {
				bad++
			}
			for _, c := range n.Children {
				check(c, d+1)
			}
		}
		check(root, 0)
		if bad != 0 {
			t.Errorf("workers=%d: %d nodes with wrong inherited attribute", workers, bad)
		}
	}
}

func TestSynthesizedAttribute(t *testing.T) {
	// Attribute = subtree node count.
	for _, workers := range []int{1, 2, 8} {
		root := Build(3000, 5, 13)
		got := Synthesized(root, workers, func(n *Node, children []interface{}) interface{} {
			total := 1
			for _, c := range children {
				total += c.(int)
			}
			return total
		})
		if got.(int) != 3000 {
			t.Errorf("workers=%d: synthesized count = %v, want 3000", workers, got)
		}
	}
}

func TestSynthesizedMatchesSequentialProperty(t *testing.T) {
	// Property: the parallel synthesized walk computes the same value as a
	// purely sequential fold, for varying tree shapes and worker counts.
	f := func(nodes uint16, fanout uint8, seed int64, workers uint8) bool {
		n := int(nodes%2000) + 1
		fo := int(fanout%6) + 1
		w := int(workers%8) + 1
		root := Build(n, fo, seed)
		sum := func(n *Node, children []interface{}) interface{} {
			total := n.Data.(int)
			for _, c := range children {
				total += c.(int)
			}
			return total
		}
		par := Synthesized(root, w, sum)
		var seq func(n *Node) int
		seq = func(n *Node) int {
			total := n.Data.(int)
			for _, c := range n.Children {
				total += seq(c)
			}
			return total
		}
		return par.(int) == seq(root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestClipBalance(t *testing.T) {
	root := Build(10000, 4, 17)
	total := Annotate(root)
	plan := clip(root, perWorker(total, 4))
	if len(plan.clips) < 4 {
		t.Fatalf("only %d clipped subtrees for 4 workers", len(plan.clips))
	}
	sets := assign(plan.clips, 4)
	loads := make([]int, 4)
	for i, set := range sets {
		for _, n := range set {
			loads[i] += n.SubtreeWeight()
		}
	}
	minL, maxL := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	// Greedy balancing should keep the spread well under 2x.
	if minL == 0 || float64(maxL)/float64(minL) > 2.0 {
		t.Errorf("unbalanced clip assignment: %v", loads)
	}
}

func TestWalksHandleNilAndTiny(t *testing.T) {
	TopDown(nil, 4, func(*Node) { t.Error("visited nil tree") })
	Inherited(nil, 4, 0, func(n *Node, i interface{}) interface{} { return i })
	if v := Synthesized(nil, 4, nil); v != nil {
		t.Error("nil tree should synthesize nil")
	}
	single := &Node{Weight: 1, Data: 7}
	count := 0
	TopDown(single, 8, func(*Node) { count++ })
	if count != 1 {
		t.Errorf("single-node TopDown visits = %d", count)
	}
	v := Synthesized(single, 8, func(n *Node, _ []interface{}) interface{} { return n.Data })
	if v.(int) != 7 {
		t.Errorf("single-node Synthesized = %v", v)
	}
}
