// Package queens implements the parallel recursive backtracking example of
// §3: find every placement of N queens so that none attacks another. The
// coordination program is the paper's, generalized from 8 to N: do_it tries
// every location of the next queen in parallel and merges the sub-results;
// try validates a placement and either returns a solution, recurses, or
// gives up with NULL.
//
// The program exposes a tremendous degree of parallelism — so much that it
// would lead to an unwieldy explosion of schedulable operators without the
// runtime's priority execution scheme (§7); the priority ablation
// experiment measures exactly that effect on this workload.
package queens

import (
	"fmt"
	"strings"

	"repro/internal/compile"
	"repro/internal/graph"
	"repro/internal/operator"
	"repro/internal/runtime"
	"repro/internal/value"
)

// board is an immutable placement: positions[i] is the column (1-based) of
// the queen on row i. Boards are small and copied on extension, mirroring
// the paper's "roughly 100 lines of C" operator implementation.
type board struct {
	positions []int
}

func (b *board) words() int { return len(b.positions) + 1 }

func boardBlock(b *board, st *value.BlockStats) *value.Block {
	return value.NewBlockStats(&value.Opaque{Payload: b, Words: b.words()}, st)
}

func boardOf(v value.Value, what string) (*board, error) {
	if v == nil {
		return nil, fmt.Errorf("%s: missing board", what)
	}
	blk, ok := v.(*value.Block)
	if !ok {
		return nil, fmt.Errorf("%s: board block required, got %s", what, v.Kind())
	}
	o, ok := blk.Data().(*value.Opaque)
	if !ok {
		return nil, fmt.Errorf("%s: unexpected payload %T", what, blk.Data())
	}
	b, ok := o.Payload.(*board)
	if !ok {
		return nil, fmt.Errorf("%s: expected board, got %T", what, o.Payload)
	}
	return b, nil
}

// Operators returns the queens operator registry chained onto the builtins.
func Operators() *operator.Registry {
	r := operator.NewRegistry(operator.Builtins())

	// The queens operators are pure-functional over immutable boards (no
	// Destructive arguments), so a failed attempt can simply re-run:
	// Retryable makes the workload safe under fault injection and the
	// server's chaos mode. They are deliberately NOT marked Pure — Pure
	// would let the compiler constant-fold zero-argument empty_board.
	r.MustRegister(&operator.Operator{
		Name: "empty_board", Arity: 0, Retryable: true,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			ctx.Charge(1)
			return boardBlock(&board{}, ctx.BlockStats()), nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "add_queen", Arity: 3, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			b, err := boardOf(args[0], "add_queen")
			if err != nil {
				return nil, err
			}
			queen, ok := args[1].(value.Int)
			if !ok {
				return nil, fmt.Errorf("add_queen: queen number must be an integer")
			}
			loc, ok := args[2].(value.Int)
			if !ok {
				return nil, fmt.Errorf("add_queen: location must be an integer")
			}
			if int(queen) != len(b.positions)+1 {
				return nil, fmt.Errorf("add_queen: queen %d placed on board with %d queens", queen, len(b.positions))
			}
			np := make([]int, len(b.positions)+1)
			copy(np, b.positions)
			np[len(b.positions)] = int(loc)
			ctx.Charge(int64(len(np)))
			return boardBlock(&board{positions: np}, ctx.BlockStats()), nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "is_valid", Arity: 1, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			b, err := boardOf(args[0], "is_valid")
			if err != nil {
				return nil, err
			}
			n := len(b.positions)
			if n == 0 {
				return value.Bool(true), nil
			}
			last := b.positions[n-1]
			row := n - 1
			for r := 0; r < row; r++ {
				c := b.positions[r]
				if c == last || abs(c-last) == row-r {
					ctx.Charge(int64(r + 1))
					return value.Bool(false), nil
				}
			}
			ctx.Charge(int64(n))
			return value.Bool(true), nil
		},
	})

	// show_solutions passes the merged solution package through; the host
	// program extracts and renders it (in the paper it printed).
	r.MustRegister(&operator.Operator{
		Name: "show_solutions", Arity: 1, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			return args[0], nil
		},
	})

	return r
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Program returns the §3 coordination program generalized to n queens: n
// parallel try bindings per do_it expansion.
func Program(n int) string {
	var b strings.Builder
	b.WriteString("main()\n  let board = empty_board()\n  in show_solutions(do_it(board,1))\n\n")
	b.WriteString("do_it(board,queen)\n  let ")
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteString("      ")
		}
		fmt.Fprintf(&b, "h%d = try(board,queen,%d)\n", i, i)
	}
	b.WriteString("  in merge(")
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "h%d", i)
	}
	b.WriteString(")\n\n")
	fmt.Fprintf(&b, `try(board,queen,location)
  let new_board = add_queen(board,queen,location)
  in if is_valid(new_board)
      then if is_equal(queen,%d)
            then new_board
            else do_it(new_board,incr(queen))
      else NULL
`, n)
	return b.String()
}

// CompileProgram compiles the n-queens program.
func CompileProgram(n int) (*graph.Program, error) {
	return CompileProgramFused(n, false)
}

// CompileProgramFused compiles the n-queens program, optionally running the
// operator-fusion pass.
func CompileProgramFused(n int, fuse bool) (*graph.Program, error) {
	return CompileProgramProfiled(n, fuse, nil)
}

// CompileProgramProfiled compiles the n-queens program with fusion
// priorities seeded from a measured operator profile (the adaptive loop's
// re-fuse path). A non-empty profile implies fusion.
func CompileProgramProfiled(n int, fuse bool, prof map[string]int64) (*graph.Program, error) {
	if n < 1 {
		return nil, fmt.Errorf("queens: n must be positive, got %d", n)
	}
	res, err := compile.Compile(fmt.Sprintf("queens%d.dlr", n), Program(n), compile.Options{
		Registry: Operators(), Fuse: fuse || len(prof) > 0, FuseProfile: prof})
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

// Solutions extracts the boards from a program result.
func Solutions(v value.Value) ([][]int, error) {
	tup, ok := v.(value.Tuple)
	if !ok {
		return nil, fmt.Errorf("queens: expected a solution package, got %s", v.Kind())
	}
	out := make([][]int, 0, len(tup))
	for i, el := range tup {
		b, err := boardOf(el, fmt.Sprintf("solution %d", i))
		if err != nil {
			return nil, err
		}
		out = append(out, append([]int(nil), b.positions...))
	}
	return out, nil
}

// Run compiles and executes n-queens, returning the solutions and the
// engine for statistics.
func Run(n int, ecfg runtime.Config) ([][]int, *runtime.Engine, error) {
	return RunFused(n, false, ecfg)
}

// RunFused is Run with the operator-fusion pass toggled by fuse.
func RunFused(n int, fuse bool, ecfg runtime.Config) ([][]int, *runtime.Engine, error) {
	prog, err := CompileProgramFused(n, fuse)
	if err != nil {
		return nil, nil, err
	}
	eng := runtime.New(prog, ecfg)
	out, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	sols, err := Solutions(out)
	if err != nil {
		return nil, nil, err
	}
	return sols, eng, nil
}

// Valid reports whether a full placement is a correct n-queens solution.
func Valid(sol []int, n int) bool {
	if len(sol) != n {
		return false
	}
	for i := 0; i < n; i++ {
		if sol[i] < 1 || sol[i] > n {
			return false
		}
		for j := i + 1; j < n; j++ {
			if sol[i] == sol[j] || abs(sol[i]-sol[j]) == j-i {
				return false
			}
		}
	}
	return true
}

// CountReference computes the solution count with a plain sequential
// backtracker — the oracle for the Delirium runs.
func CountReference(n int) int {
	pos := make([]int, 0, n)
	var rec func() int
	rec = func() int {
		if len(pos) == n {
			return 1
		}
		total := 0
		row := len(pos)
		for c := 1; c <= n; c++ {
			ok := true
			for r, pc := range pos {
				if pc == c || abs(pc-c) == row-r {
					ok = false
					break
				}
			}
			if ok {
				pos = append(pos, c)
				total += rec()
				pos = pos[:row]
			}
		}
		return total
	}
	return rec()
}
