package queens

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/runtime"
)

func TestCountReference(t *testing.T) {
	// The classic N-queens counts.
	want := map[int]int{1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, w := range want {
		if got := CountReference(n); got != w {
			t.Errorf("CountReference(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestProgramTextMatchesPaperShape(t *testing.T) {
	src := Program(8)
	for _, want := range []string{
		"main()", "empty_board()", "show_solutions(do_it(board,1))",
		"h8 = try(board,queen,8)", "merge(h1,h2,h3,h4,h5,h6,h7,h8)",
		"is_equal(queen,8)", "do_it(new_board,incr(queen))", "else NULL",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("program missing %q:\n%s", want, src)
		}
	}
}

func TestEightQueens(t *testing.T) {
	sols, eng, err := Run(8, runtime.Config{Mode: runtime.Real, Workers: 4, MaxOps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 92 {
		t.Fatalf("got %d solutions, want 92", len(sols))
	}
	seen := make(map[string]bool)
	for _, s := range sols {
		if !Valid(s, 8) {
			t.Errorf("invalid solution %v", s)
		}
		key := keyOf(s)
		if seen[key] {
			t.Errorf("duplicate solution %v", s)
		}
		seen[key] = true
	}
	if eng.Stats().TailCalls == 0 {
		t.Error("expected tail calls from the recursive expansion")
	}
}

func keyOf(s []int) string {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte('0' + v)
	}
	return string(b)
}

func TestSmallBoards(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		sols, _, err := Run(n, runtime.Config{Mode: runtime.Real, Workers: 2, MaxOps: 10_000_000})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(sols) != CountReference(n) {
			t.Errorf("n=%d: %d solutions, want %d", n, len(sols), CountReference(n))
		}
	}
}

func TestDeterministicSolutionOrder(t *testing.T) {
	// §8: the computed result is deterministic regardless of the number of
	// processors and the order of execution — including the ORDER of the
	// merged solutions, which is fixed by the dataflow.
	var first []string
	for _, workers := range []int{1, 2, 8} {
		sols, _, err := Run(6, runtime.Config{Mode: runtime.Real, Workers: workers, MaxOps: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(sols))
		for i, s := range sols {
			keys[i] = keyOf(s)
		}
		if first == nil {
			first = keys
			continue
		}
		if len(keys) != len(first) {
			t.Fatalf("workers=%d: %d solutions vs %d", workers, len(keys), len(first))
		}
		for i := range keys {
			if keys[i] != first[i] {
				t.Fatalf("workers=%d: solution order differs at %d: %s vs %s", workers, i, keys[i], first[i])
			}
		}
	}
}

func TestPrioritySchemeReducesLiveActivations(t *testing.T) {
	// §7: the priority scheme reduces the number of template activations
	// required, by making activations available for re-use as early as
	// possible. Measured deterministically on the simulated executor.
	run := func(disable bool) int64 {
		_, eng, err := Run(7, runtime.Config{
			Mode: runtime.Simulated, Workers: 4, MaxOps: 20_000_000,
			DisablePriorities: disable})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Stats().PeakLive
	}
	withPri := run(false)
	withoutPri := run(true)
	if withPri > withoutPri {
		t.Errorf("priorities should not increase peak activations: %d vs %d", withPri, withoutPri)
	}
	t.Logf("peak live activations: priorities=%d fifo=%d", withPri, withoutPri)
}

func TestSimulatedMatchesReal(t *testing.T) {
	real6, _, err := Run(6, runtime.Config{Mode: runtime.Real, Workers: 4, MaxOps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	sim6, _, err := Run(6, runtime.Config{Mode: runtime.Simulated, Workers: 4, MaxOps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	a, b := solKeys(real6), solKeys(sim6)
	if strings.Join(a, " ") != strings.Join(b, " ") {
		t.Error("real and simulated executors disagree on solutions")
	}
}

func solKeys(sols [][]int) []string {
	keys := make([]string, len(sols))
	for i, s := range sols {
		keys[i] = keyOf(s)
	}
	sort.Strings(keys)
	return keys
}

func TestCompileProgramRejectsBadN(t *testing.T) {
	if _, err := CompileProgram(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestValid(t *testing.T) {
	if !Valid([]int{2, 4, 1, 3}, 4) {
		t.Error("known solution rejected")
	}
	if Valid([]int{1, 2, 3, 4}, 4) {
		t.Error("diagonal attack accepted")
	}
	if Valid([]int{2, 4, 1}, 4) {
		t.Error("short placement accepted")
	}
	if Valid([]int{2, 4, 1, 9}, 4) {
		t.Error("out-of-range column accepted")
	}
}
