package ast

import (
	"strings"
	"testing"

	"repro/internal/source"
)

func TestRefKindStrings(t *testing.T) {
	names := map[RefKind]string{
		RefUnresolved: "unresolved", RefParam: "parameter", RefLet: "let-binding",
		RefFunc: "function", RefOperator: "operator", RefCapture: "capture",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if RefKind(99).String() != "refkind?" {
		t.Error("unknown kind string wrong")
	}
}

func TestPosPropagation(t *testing.T) {
	p := source.Pos{File: "x.dlr", Line: 3, Col: 4}
	exprs := []Expr{
		&IntLit{P: p}, &FloatLit{P: p}, &StrLit{P: p}, &NullLit{P: p},
		&Ident{P: p}, &Call{P: p}, &TupleExpr{P: p}, &Let{P: p},
		&If{P: p}, &Iterate{P: p},
	}
	for _, e := range exprs {
		if e.Pos() != p {
			t.Errorf("%T.Pos() = %v", e, e.Pos())
		}
	}
	f := &FuncDecl{P: p}
	if f.Pos() != p {
		t.Error("FuncDecl.Pos wrong")
	}
}

func TestProgramFunc(t *testing.T) {
	prog := &Program{Funcs: []*FuncDecl{{Name: "a"}, {Name: "b"}}}
	if prog.Func("b") == nil || prog.Func("b").Name != "b" {
		t.Error("Func lookup failed")
	}
	if prog.Func("zzz") != nil {
		t.Error("missing function found")
	}
}

func TestWalkNilSafe(t *testing.T) {
	Walk(nil, func(Expr) bool { t.Error("visited nil"); return true })
	if Rewrite(nil, func(e Expr) Expr { return e }) != nil {
		t.Error("Rewrite(nil) should be nil")
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestCountOnConstructedTree(t *testing.T) {
	e := &Call{
		Fun: &Ident{Name: "f"},
		Args: []Expr{
			&IntLit{Val: 1},
			&If{Cond: &Ident{Name: "c"}, Then: &IntLit{Val: 2}, Else: &NullLit{}},
		},
	}
	// call + callee ident + int + if + cond ident + then int + else null = 7
	if got := Count(e); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
}

func TestPrintFloatAlwaysReparsesAsFloat(t *testing.T) {
	// A float with an integral value must still print as a float literal.
	out := Print(&FloatLit{Val: 4})
	if !strings.ContainsAny(out, ".eE") {
		t.Errorf("Print(Float 4) = %q, would re-lex as an integer", out)
	}
}

func TestPrintUnknownNode(t *testing.T) {
	// The printer degrades gracefully on a foreign node type.
	out := Print(unknownExpr{})
	if !strings.Contains(out, "?") {
		t.Errorf("Print(unknown) = %q", out)
	}
}

type unknownExpr struct{}

func (unknownExpr) Pos() source.Pos { return source.Pos{} }
func (unknownExpr) exprNode()       {}

func TestCloneFuncIndependence(t *testing.T) {
	f := &FuncDecl{
		Name:     "f",
		Params:   []string{"a"},
		Captures: []string{"k"},
		Body:     &Ident{Name: "a", Ref: RefParam},
	}
	c := CloneFunc(f)
	c.Params[0] = "changed"
	c.Captures[0] = "changed"
	c.Body.(*Ident).Name = "changed"
	if f.Params[0] != "a" || f.Captures[0] != "k" || f.Body.(*Ident).Name != "a" {
		t.Error("CloneFunc shares state with the original")
	}
}
