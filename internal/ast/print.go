package ast

import (
	"fmt"
	"strings"
)

// Print renders an expression back to Delirium source. The output is
// re-parseable; round-trip tests in the parser package rely on this.
func Print(e Expr) string {
	var b strings.Builder
	printExpr(&b, e, 0)
	return b.String()
}

// PrintProgram renders an entire program, defines first, then functions.
func PrintProgram(p *Program) string {
	var b strings.Builder
	for _, d := range p.Defines {
		fmt.Fprintf(&b, "define %s %s\n", d.Name, Print(d.Expr))
	}
	if len(p.Defines) > 0 {
		b.WriteByte('\n')
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		printFunc(&b, f, 0)
		b.WriteByte('\n')
	}
	return b.String()
}

func printFunc(b *strings.Builder, f *FuncDecl, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s(%s)\n%s  ", ind, f.Name, strings.Join(f.Params, ","), ind)
	printExpr(b, f.Body, depth+1)
}

func printExpr(b *strings.Builder, e Expr, depth int) {
	ind := strings.Repeat("  ", depth)
	switch x := e.(type) {
	case *IntLit:
		fmt.Fprintf(b, "%d", x.Val)
	case *FloatLit:
		s := fmt.Sprintf("%g", x.Val)
		// Guarantee a float spelling so the literal re-lexes as FLOAT.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		b.WriteString(s)
	case *StrLit:
		fmt.Fprintf(b, "%q", x.Val)
	case *NullLit:
		b.WriteString("NULL")
	case *Ident:
		b.WriteString(x.Name)
	case *Call:
		printExpr(b, x.Fun, depth)
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, a, depth)
		}
		b.WriteByte(')')
	case *TupleExpr:
		b.WriteByte('<')
		for i, el := range x.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			printExpr(b, el, depth)
		}
		b.WriteByte('>')
	case *Let:
		b.WriteString("let\n")
		for _, bd := range x.Binds {
			b.WriteString(ind)
			b.WriteString("  ")
			switch bd.Kind {
			case BindValue:
				fmt.Fprintf(b, "%s = ", bd.Names[0])
				printExpr(b, bd.Init, depth+1)
			case BindTuple:
				fmt.Fprintf(b, "<%s> = ", strings.Join(bd.Names, ","))
				printExpr(b, bd.Init, depth+1)
			case BindFunc:
				fmt.Fprintf(b, "%s(%s)\n%s    ", bd.Fn.Name, strings.Join(bd.Fn.Params, ","), ind)
				printExpr(b, bd.Fn.Body, depth+2)
			}
			b.WriteByte('\n')
		}
		b.WriteString(ind)
		b.WriteString("in ")
		printExpr(b, x.Body, depth)
	case *If:
		b.WriteString("if ")
		printExpr(b, x.Cond, depth)
		fmt.Fprintf(b, "\n%s  then ", ind)
		printExpr(b, x.Then, depth+1)
		fmt.Fprintf(b, "\n%s  else ", ind)
		printExpr(b, x.Else, depth+1)
	case *Iterate:
		b.WriteString("iterate\n")
		b.WriteString(ind)
		b.WriteString("{\n")
		for _, iv := range x.Vars {
			b.WriteString(ind)
			b.WriteString("  ")
			fmt.Fprintf(b, "%s = ", iv.Name)
			printExpr(b, iv.Init, depth+1)
			b.WriteString(", ")
			printExpr(b, iv.Next, depth+1)
			b.WriteByte('\n')
		}
		b.WriteString(ind)
		b.WriteString("} while ")
		printExpr(b, x.Cond, depth)
		fmt.Fprintf(b, ",\n%sresult ", ind)
		printExpr(b, x.Result, depth)
	default:
		fmt.Fprintf(b, "/*?%T*/", e)
	}
}
