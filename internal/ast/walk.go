package ast

// Visitor is called for every expression node during a Walk. Returning false
// prunes the subtree below e.
type Visitor func(e Expr) bool

// Walk performs a pre-order traversal of the expression tree rooted at e,
// including the bodies of let-bound function definitions.
func Walk(e Expr, v Visitor) {
	if e == nil || !v(e) {
		return
	}
	switch x := e.(type) {
	case *IntLit, *FloatLit, *StrLit, *NullLit, *Ident:
	case *Call:
		Walk(x.Fun, v)
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *TupleExpr:
		for _, el := range x.Elems {
			Walk(el, v)
		}
	case *Let:
		for _, b := range x.Binds {
			if b.Fn != nil {
				Walk(b.Fn.Body, v)
			} else {
				Walk(b.Init, v)
			}
		}
		Walk(x.Body, v)
	case *If:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *Iterate:
		for _, iv := range x.Vars {
			Walk(iv.Init, v)
			Walk(iv.Next, v)
		}
		Walk(x.Cond, v)
		Walk(x.Result, v)
	}
}

// Rewriter transforms an expression bottom-up. It receives a node whose
// children have already been rewritten and returns its replacement.
type Rewriter func(e Expr) Expr

// Rewrite applies r bottom-up over the tree rooted at e and returns the new
// root. Child slices are rewritten in place on fresh nodes only when a child
// changed, so shared structure is preserved where possible.
func Rewrite(e Expr, r Rewriter) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *IntLit, *FloatLit, *StrLit, *NullLit, *Ident:
		return r(e)
	case *Call:
		fun := Rewrite(x.Fun, r)
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Rewrite(a, r)
		}
		return r(&Call{P: x.P, Fun: fun, Args: args, Tail: x.Tail})
	case *TupleExpr:
		elems := make([]Expr, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = Rewrite(el, r)
		}
		return r(&TupleExpr{P: x.P, Elems: elems})
	case *Let:
		binds := make([]*Bind, len(x.Binds))
		for i, b := range x.Binds {
			nb := &Bind{P: b.P, Kind: b.Kind, Names: b.Names}
			if b.Fn != nil {
				nf := *b.Fn
				nf.Body = Rewrite(b.Fn.Body, r)
				nb.Fn = &nf
			} else {
				nb.Init = Rewrite(b.Init, r)
			}
			binds[i] = nb
		}
		return r(&Let{P: x.P, Binds: binds, Body: Rewrite(x.Body, r)})
	case *If:
		return r(&If{P: x.P, Cond: Rewrite(x.Cond, r), Then: Rewrite(x.Then, r), Else: Rewrite(x.Else, r)})
	case *Iterate:
		vars := make([]*IterVar, len(x.Vars))
		for i, iv := range x.Vars {
			vars[i] = &IterVar{P: iv.P, Name: iv.Name, Init: Rewrite(iv.Init, r), Next: Rewrite(iv.Next, r)}
		}
		return r(&Iterate{P: x.P, Vars: vars, Cond: Rewrite(x.Cond, r), Result: Rewrite(x.Result, r)})
	default:
		return r(e)
	}
}

// Clone returns a deep copy of the expression tree, preserving resolution
// metadata on identifiers. The inliner clones callee bodies before
// substituting arguments.
func Clone(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *IntLit:
		c := *x
		return &c
	case *FloatLit:
		c := *x
		return &c
	case *StrLit:
		c := *x
		return &c
	case *NullLit:
		c := *x
		return &c
	case *Ident:
		c := *x
		return &c
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Clone(a)
		}
		return &Call{P: x.P, Fun: Clone(x.Fun), Args: args, Tail: x.Tail}
	case *TupleExpr:
		elems := make([]Expr, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = Clone(el)
		}
		return &TupleExpr{P: x.P, Elems: elems}
	case *Let:
		binds := make([]*Bind, len(x.Binds))
		for i, b := range x.Binds {
			nb := &Bind{P: b.P, Kind: b.Kind, Names: append([]string(nil), b.Names...)}
			if b.Fn != nil {
				nb.Fn = CloneFunc(b.Fn)
			} else {
				nb.Init = Clone(b.Init)
			}
			binds[i] = nb
		}
		return &Let{P: x.P, Binds: binds, Body: Clone(x.Body)}
	case *If:
		return &If{P: x.P, Cond: Clone(x.Cond), Then: Clone(x.Then), Else: Clone(x.Else)}
	case *Iterate:
		vars := make([]*IterVar, len(x.Vars))
		for i, iv := range x.Vars {
			vars[i] = &IterVar{P: iv.P, Name: iv.Name, Init: Clone(iv.Init), Next: Clone(iv.Next)}
		}
		return &Iterate{P: x.P, Vars: vars, Cond: Clone(x.Cond), Result: Clone(x.Result)}
	default:
		return e
	}
}

// CloneFunc deep-copies a function declaration.
func CloneFunc(f *FuncDecl) *FuncDecl {
	return &FuncDecl{
		P:         f.P,
		Name:      f.Name,
		Params:    append([]string(nil), f.Params...),
		Body:      Clone(f.Body),
		Captures:  append([]string(nil), f.Captures...),
		Recursive: f.Recursive,
	}
}

// CloneProgram deep-copies an entire program. The parallel compiler clones
// before destructive passes so that sequential/parallel runs over the same
// input are independent.
func CloneProgram(p *Program) *Program {
	np := &Program{File: p.File}
	for _, d := range p.Defines {
		np.Defines = append(np.Defines, &Define{P: d.P, Name: d.Name, Expr: Clone(d.Expr)})
	}
	for _, f := range p.Funcs {
		np.Funcs = append(np.Funcs, CloneFunc(f))
	}
	return np
}

// Count returns the number of expression nodes in the tree rooted at e. It
// is the weight annotation of §6.2: "every tree node is annotated with the
// size of the subtree below it".
func Count(e Expr) int {
	n := 0
	Walk(e, func(Expr) bool { n++; return true })
	return n
}

// CountProgram totals Count over every function body and define expression.
func CountProgram(p *Program) int {
	n := 0
	for _, d := range p.Defines {
		n += Count(d.Expr)
	}
	for _, f := range p.Funcs {
		n += Count(f.Body)
	}
	return n
}
