// Package ast defines the abstract syntax tree for Delirium coordination
// programs, along with a generic walker, a deep-clone operation (used by the
// inliner and the parallel tree-walking passes), and a source printer.
//
// The language has exactly the six constructs of §3 of the paper: atomic
// values, multiple values, let bindings (single value, multiple-value
// decomposition, or function definition), conditionals, iteration, and
// function or operator application.
package ast

import (
	"repro/internal/source"
)

// Expr is implemented by every Delirium expression node.
type Expr interface {
	Pos() source.Pos
	exprNode()
}

// RefKind says what an identifier resolved to during environment analysis.
type RefKind int

// Identifier resolution classes.
const (
	RefUnresolved RefKind = iota
	RefParam              // function parameter; Index is the parameter slot
	RefLet                // let- or iterate-bound variable
	RefFunc               // Delirium function (value use makes a closure)
	RefOperator           // registered sequential operator
	RefCapture            // free variable captured from an enclosing function
)

// String names the resolution class.
func (k RefKind) String() string {
	switch k {
	case RefUnresolved:
		return "unresolved"
	case RefParam:
		return "parameter"
	case RefLet:
		return "let-binding"
	case RefFunc:
		return "function"
	case RefOperator:
		return "operator"
	case RefCapture:
		return "capture"
	default:
		return "refkind?"
	}
}

// IntLit is an integer atomic value.
type IntLit struct {
	P   source.Pos
	Val int64
}

// FloatLit is a floating-point atomic value.
type FloatLit struct {
	P   source.Pos
	Val float64
}

// StrLit is a string atomic value.
type StrLit struct {
	P   source.Pos
	Val string
}

// NullLit is the distinguished NULL value.
type NullLit struct {
	P source.Pos
}

// Ident is a use of a name. Environment analysis fills Ref (and, for
// parameters and captures, Index).
type Ident struct {
	P     source.Pos
	Name  string
	Ref   RefKind
	Index int // parameter or capture slot when Ref is RefParam/RefCapture
}

// Call applies a function or operator to arguments. When Fun is an Ident
// resolved to RefFunc the call expands the callee's subgraph; when resolved
// to RefOperator it schedules a sequential operator; any other callee is a
// first-class function value invoked through the call-closure operator.
type Call struct {
	P    source.Pos
	Fun  Expr
	Args []Expr
	// Tail is set by the compiler when this call is in tail position of its
	// enclosing function; the runtime reuses the activation (§7).
	Tail bool
}

// TupleExpr builds a multiple-value package: <e1, ..., en>.
type TupleExpr struct {
	P     source.Pos
	Elems []Expr
}

// BindKind discriminates the three let-binding forms of §3.
type BindKind int

// Let binding forms.
const (
	BindValue BindKind = iota // name = expr
	BindTuple                 // <a, b, c> = expr
	BindFunc                  // name(params) expr
)

// Bind is a single binding inside a let expression.
type Bind struct {
	P     source.Pos
	Kind  BindKind
	Names []string  // one name for BindValue; n names for BindTuple
	Init  Expr      // nil for BindFunc
	Fn    *FuncDecl // non-nil for BindFunc
}

// Let evaluates bindings (all of whose independent initializers may run in
// parallel) and then the body.
type Let struct {
	P     source.Pos
	Binds []*Bind
	Body  Expr
}

// If is a conditional expression; both arms are always present.
type If struct {
	P    source.Pos
	Cond Expr
	Then Expr
	Else Expr
}

// IterVar is one loop-carried variable of an iterate expression:
// name = init, next.
type IterVar struct {
	P    source.Pos
	Name string
	Init Expr
	Next Expr
}

// Iterate is the iteration construct:
//
//	iterate { v1=i1,n1  v2=i2,n2 ... } while cond, result expr
//
// Each pass binds the loop variables, evaluates every Next expression, and
// repeats while cond holds; the result expression is evaluated in the scope
// of the final variable values. The compiler lowers Iterate to a
// tail-recursive function (§3 construct 5), which the runtime executes with
// activation reuse.
type Iterate struct {
	P      source.Pos
	Vars   []*IterVar
	Cond   Expr
	Result Expr
}

// FuncDecl is a function definition, either top-level or let-bound.
// Functions are first class: they may be passed as arguments, bound to
// variables, and returned as values.
type FuncDecl struct {
	P      source.Pos
	Name   string
	Params []string
	Body   Expr
	// Captures lists the free variables of a nested function in evaluation
	// order; filled by environment analysis. Top-level functions capture
	// nothing.
	Captures []string
	// Recursive is set by environment analysis when the function can reach
	// itself through calls; the runtime schedules recursive expansions at
	// the lowest priority (§7).
	Recursive bool
}

// Pos returns the declaration position. FuncDecl is not itself an Expr, but
// positions are reported uniformly.
func (f *FuncDecl) Pos() source.Pos { return f.P }

// Define is a preprocessor symbolic constant: define NAME expr. The macro
// expansion pass replaces every use of NAME with the expression (§5.1: "these
// symbolic constants are replaced with values by the pre-processor").
type Define struct {
	P    source.Pos
	Name string
	Expr Expr
}

// Program is one parsed Delirium source file: preprocessor definitions plus
// a set of functions, one of which is called main.
type Program struct {
	File    string
	Defines []*Define
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Pos / exprNode implementations.

// Pos returns the literal's position.
func (e *IntLit) Pos() source.Pos { return e.P }

// Pos returns the literal's position.
func (e *FloatLit) Pos() source.Pos { return e.P }

// Pos returns the literal's position.
func (e *StrLit) Pos() source.Pos { return e.P }

// Pos returns the literal's position.
func (e *NullLit) Pos() source.Pos { return e.P }

// Pos returns the identifier's position.
func (e *Ident) Pos() source.Pos { return e.P }

// Pos returns the call's position.
func (e *Call) Pos() source.Pos { return e.P }

// Pos returns the package constructor's position.
func (e *TupleExpr) Pos() source.Pos { return e.P }

// Pos returns the let's position.
func (e *Let) Pos() source.Pos { return e.P }

// Pos returns the conditional's position.
func (e *If) Pos() source.Pos { return e.P }

// Pos returns the iterate's position.
func (e *Iterate) Pos() source.Pos { return e.P }

func (*IntLit) exprNode()    {}
func (*FloatLit) exprNode()  {}
func (*StrLit) exprNode()    {}
func (*NullLit) exprNode()   {}
func (*Ident) exprNode()     {}
func (*Call) exprNode()      {}
func (*TupleExpr) exprNode() {}
func (*Let) exprNode()       {}
func (*If) exprNode()        {}
func (*Iterate) exprNode()   {}
