package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
)

// queensSrc is the eight queens program from §3 of the paper, verbatim up to
// whitespace.
const queensSrc = `
main()
  let board = empty_board()
  in show_solutions(do_it(board,1))

do_it(board,queen)
  let h1 = try(board,queen,1)
      h2 = try(board,queen,2)
      h3 = try(board,queen,3)
      h4 = try(board,queen,4)
      h5 = try(board,queen,5)
      h6 = try(board,queen,6)
      h7 = try(board,queen,7)
      h8 = try(board,queen,8)
  in merge(h1,h2,h3,h4,h5,h6,h7,h8)

try(board,queen,location)
  let new_board = add_queen(board,queen,location)
  in if is_valid(new_board)
      then if is_equal(queen,8)
            then new_board
            else do_it(new_board,incr(queen))
      else NULL
`

// retinaSrc is the first retina program from §5.1 of the paper.
const retinaSrc = `
define NUM_ITER 4
define START_SLAB 0
define FINAL_SLAB 4

main()
  iterate
  {
    timestep=0,incr(timestep)
    scene=set_up(),
      let
        <a,b,c,d>=target_split(scene)
        ao=target_bite(a)
        bo=target_bite(b)
        co=target_bite(c)
        do_=target_bite(d)
      in do_convol(ao,bo,co,do_)
  }
  while is_not_equal(timestep, NUM_ITER),
  result scene

do_convol(c1,c2,c3,c4)
  iterate
  {
    slab=START_SLAB,incr(slab)
    convolve_data=pre_update(c1,c2,c3,c4),
      let
        <a,b,c,d>=convol_split(convolve_data)
        ao=convol_bite(a,slab)
        bo=convol_bite(b,slab)
        co=convol_bite(c,slab)
        do_=convol_bite(d,slab)
      in post_up(slab,ao,bo,co,do_)
  } while is_not_equal(slab,FINAL_SLAB),
    result convolve_data
`

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	var diags source.DiagList
	prog := Parse("test.dlr", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%v", diags.Err())
	}
	return prog
}

func TestParseQueens(t *testing.T) {
	prog := parse(t, queensSrc)
	if len(prog.Funcs) != 3 {
		t.Fatalf("got %d functions, want 3", len(prog.Funcs))
	}
	names := []string{"main", "do_it", "try"}
	for i, want := range names {
		if prog.Funcs[i].Name != want {
			t.Errorf("func[%d] = %q, want %q", i, prog.Funcs[i].Name, want)
		}
	}
	doIt := prog.Func("do_it")
	if len(doIt.Params) != 2 || doIt.Params[0] != "board" || doIt.Params[1] != "queen" {
		t.Errorf("do_it params = %v", doIt.Params)
	}
	let, ok := doIt.Body.(*ast.Let)
	if !ok {
		t.Fatalf("do_it body is %T, want *Let", doIt.Body)
	}
	if len(let.Binds) != 8 {
		t.Errorf("do_it has %d bindings, want 8", len(let.Binds))
	}
	call, ok := let.Body.(*ast.Call)
	if !ok || call.Fun.(*ast.Ident).Name != "merge" {
		t.Errorf("do_it let body = %v", ast.Print(let.Body))
	}
	if len(call.Args) != 8 {
		t.Errorf("merge has %d args, want 8", len(call.Args))
	}

	try := prog.Func("try")
	ifs, ok := try.Body.(*ast.Let).Body.(*ast.If)
	if !ok {
		t.Fatalf("try body is not let-in-if")
	}
	inner, ok := ifs.Then.(*ast.If)
	if !ok {
		t.Fatalf("nested conditional missing")
	}
	if _, ok := inner.Else.(*ast.Call); !ok {
		t.Errorf("inner else should be recursive call, got %T", inner.Else)
	}
	if _, ok := ifs.Else.(*ast.NullLit); !ok {
		t.Errorf("outer else should be NULL, got %T", ifs.Else)
	}
}

func TestParseRetina(t *testing.T) {
	prog := parse(t, retinaSrc)
	if len(prog.Defines) != 3 {
		t.Fatalf("got %d defines, want 3", len(prog.Defines))
	}
	if prog.Defines[0].Name != "NUM_ITER" {
		t.Errorf("define[0] = %q", prog.Defines[0].Name)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(prog.Funcs))
	}
	it, ok := prog.Func("main").Body.(*ast.Iterate)
	if !ok {
		t.Fatalf("main body is %T, want *Iterate", prog.Func("main").Body)
	}
	if len(it.Vars) != 2 {
		t.Fatalf("main iterate has %d vars, want 2", len(it.Vars))
	}
	if it.Vars[0].Name != "timestep" || it.Vars[1].Name != "scene" {
		t.Errorf("iterate vars = %q, %q", it.Vars[0].Name, it.Vars[1].Name)
	}
	if _, ok := it.Vars[1].Next.(*ast.Let); !ok {
		t.Errorf("scene next should be let, got %T", it.Vars[1].Next)
	}
	if res, ok := it.Result.(*ast.Ident); !ok || res.Name != "scene" {
		t.Errorf("iterate result = %v", ast.Print(it.Result))
	}
	// The let inside the iterate decomposes a multiple-value package.
	let := it.Vars[1].Next.(*ast.Let)
	if let.Binds[0].Kind != ast.BindTuple || len(let.Binds[0].Names) != 4 {
		t.Errorf("first binding should be 4-way decomposition, got %+v", let.Binds[0])
	}
}

func TestParseForkJoinExample(t *testing.T) {
	// The §2.1 fork/join fragment.
	src := `
run()
  let
    a_start=init_fn()
    a=convolve(a_start,0)
    b=convolve(a_start,1)
    c=convolve(a_start,2)
    d=convolve(a_start,3)
  in term_fn(a,b,c,d)
`
	prog := parse(t, src)
	let := prog.Func("run").Body.(*ast.Let)
	if len(let.Binds) != 5 {
		t.Fatalf("got %d bindings, want 5", len(let.Binds))
	}
}

func TestParseNestedFunctionBinding(t *testing.T) {
	src := `
main()
  let sq(x) mul(x,x)
      y = sq(4)
  in sq(y)
`
	prog := parse(t, src)
	let := prog.Func("main").Body.(*ast.Let)
	if len(let.Binds) != 2 {
		t.Fatalf("got %d bindings, want 2", len(let.Binds))
	}
	if let.Binds[0].Kind != ast.BindFunc || let.Binds[0].Fn.Name != "sq" {
		t.Errorf("first binding should be function sq, got %+v", let.Binds[0])
	}
	if let.Binds[1].Kind != ast.BindValue {
		t.Errorf("second binding should be value, got %+v", let.Binds[1])
	}
}

func TestParseFirstClassFunctionUse(t *testing.T) {
	src := `
apply_twice(f, x) f(f(x))
main() apply_twice(double, 5)
`
	prog := parse(t, src)
	at := prog.Func("apply_twice")
	outer := at.Body.(*ast.Call)
	if outer.Fun.(*ast.Ident).Name != "f" {
		t.Errorf("callee = %v", ast.Print(outer.Fun))
	}
	m := prog.Func("main").Body.(*ast.Call)
	if arg, ok := m.Args[0].(*ast.Ident); !ok || arg.Name != "double" {
		t.Errorf("function-valued argument = %v", ast.Print(m.Args[0]))
	}
}

func TestParseCurriedCall(t *testing.T) {
	var diags source.DiagList
	e := ParseExprString("pick(a)(b, c)", &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	outer, ok := e.(*ast.Call)
	if !ok || len(outer.Args) != 2 {
		t.Fatalf("outer = %v", ast.Print(e))
	}
	if _, ok := outer.Fun.(*ast.Call); !ok {
		t.Errorf("callee should be a call, got %T", outer.Fun)
	}
}

func TestParseTupleConstructor(t *testing.T) {
	var diags source.DiagList
	e := ParseExprString("<1, 2.5, \"x\", NULL, <a>>", &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	tup := e.(*ast.TupleExpr)
	if len(tup.Elems) != 5 {
		t.Fatalf("elems = %d, want 5", len(tup.Elems))
	}
	if _, ok := tup.Elems[4].(*ast.TupleExpr); !ok {
		t.Errorf("nested tuple missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main() let in x", "no bindings"},
		{"main() let a = in x", "expected expression"},
		{"main() if x then y", "expected 'else'"},
		{"main() iterate { } while x, result y", "no loop variables"},
		{"main() iterate { a=1 } result y", "expected 'while'"},
		{"main() (a", "expected ')'"},
		{"main() <a, ", "expected expression"},
		{"main(", "expected ')'"},
		{"42", "expected function definition or 'define'"},
		{"define 5 x", "expected identifier after 'define'"},
	}
	for _, c := range cases {
		var diags source.DiagList
		Parse("t.dlr", c.src, &diags)
		if !diags.HasErrors() {
			t.Errorf("src %q: expected parse error", c.src)
			continue
		}
		if !strings.Contains(diags.Err().Error(), c.want) {
			t.Errorf("src %q: error %q does not mention %q", c.src, diags.Err(), c.want)
		}
	}
}

func TestParseErrorRecovery(t *testing.T) {
	// Errors in one function must not hide later functions.
	src := `
broken() let x = in y
good(a) incr(a)
`
	var diags source.DiagList
	prog := Parse("t.dlr", src, &diags)
	if !diags.HasErrors() {
		t.Fatal("expected errors")
	}
	if prog.Func("good") == nil {
		t.Error("parser failed to recover and parse the second function")
	}
}

func TestRoundTripPrintParse(t *testing.T) {
	for _, src := range []string{queensSrc, retinaSrc} {
		prog1 := parse(t, src)
		printed := ast.PrintProgram(prog1)
		var diags source.DiagList
		prog2 := Parse("rt.dlr", printed, &diags)
		if diags.HasErrors() {
			t.Fatalf("printed program does not re-parse:\n%s\n%v", printed, diags.Err())
		}
		printed2 := ast.PrintProgram(prog2)
		if printed != printed2 {
			t.Errorf("print->parse->print not a fixed point:\n--- first\n%s\n--- second\n%s", printed, printed2)
		}
	}
}

func TestSplitTopLevel(t *testing.T) {
	var diags source.DiagList
	l := lexer.New("t.dlr", queensSrc, &diags)
	toks := l.ScanAll()
	chunks := SplitTopLevel(toks)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	var names []string
	for _, chunk := range chunks {
		var cd source.DiagList
		p := ParseChunk("t.dlr", chunk, &cd)
		if cd.HasErrors() {
			t.Fatalf("chunk parse errors: %v", cd.Err())
		}
		for _, f := range p.Funcs {
			names = append(names, f.Name)
		}
	}
	want := []string{"main", "do_it", "try"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("chunk func[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestSplitTopLevelWithDefines(t *testing.T) {
	var diags source.DiagList
	l := lexer.New("t.dlr", retinaSrc, &diags)
	chunks := SplitTopLevel(l.ScanAll())
	// 3 defines + 2 functions.
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks, want 5", len(chunks))
	}
	totalDefines, totalFuncs := 0, 0
	for _, chunk := range chunks {
		var cd source.DiagList
		p := ParseChunk("t.dlr", chunk, &cd)
		if cd.HasErrors() {
			t.Fatalf("chunk errors: %v", cd.Err())
		}
		totalDefines += len(p.Defines)
		totalFuncs += len(p.Funcs)
	}
	if totalDefines != 3 || totalFuncs != 2 {
		t.Errorf("split+parse found %d defines, %d funcs; want 3, 2", totalDefines, totalFuncs)
	}
}

func TestSplitTopLevelIndentedDefsStayTogether(t *testing.T) {
	// Definitions that violate the column-1 convention are not split, but
	// chunk parsing still accepts multiple definitions per chunk.
	src := "a() incr(1)\n  b() incr(2)\n"
	var diags source.DiagList
	l := lexer.New("t.dlr", src, &diags)
	chunks := SplitTopLevel(l.ScanAll())
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks, want 1", len(chunks))
	}
	var cd source.DiagList
	p := ParseChunk("t.dlr", chunks[0], &cd)
	if len(p.Funcs) != 2 {
		t.Errorf("chunk should parse both functions, got %d", len(p.Funcs))
	}
}

func TestSplitMatchesSequentialParse(t *testing.T) {
	// Property: chunked parsing yields the same function set as sequential.
	for _, src := range []string{queensSrc, retinaSrc} {
		seq := parse(t, src)
		var diags source.DiagList
		l := lexer.New("t.dlr", src, &diags)
		chunks := SplitTopLevel(l.ScanAll())
		var merged ast.Program
		for _, chunk := range chunks {
			p := ParseChunk("t.dlr", chunk, &diags)
			merged.Defines = append(merged.Defines, p.Defines...)
			merged.Funcs = append(merged.Funcs, p.Funcs...)
		}
		if diags.HasErrors() {
			t.Fatalf("chunk errors: %v", diags.Err())
		}
		if got, want := ast.PrintProgram(&merged), ast.PrintProgram(seq); got != want {
			t.Errorf("chunked parse differs from sequential:\n--- chunked\n%s\n--- sequential\n%s", got, want)
		}
	}
}

func TestCountNodes(t *testing.T) {
	prog := parse(t, queensSrc)
	n := ast.CountProgram(prog)
	if n < 50 {
		t.Errorf("CountProgram = %d, implausibly small for queens", n)
	}
	// Clone must preserve the count.
	cl := ast.CloneProgram(prog)
	if ast.CountProgram(cl) != n {
		t.Errorf("clone changed node count: %d vs %d", ast.CountProgram(cl), n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	prog := parse(t, queensSrc)
	cl := ast.CloneProgram(prog)
	// Mutate the clone and verify the original is untouched.
	cl.Funcs[0].Name = "changed"
	cl.Funcs[1].Body = &ast.NullLit{}
	if prog.Funcs[0].Name != "main" {
		t.Error("clone shares function metadata with original")
	}
	if _, ok := prog.Funcs[1].Body.(*ast.Let); !ok {
		t.Error("clone shares body with original")
	}
}

func TestRewriteReplacesLiterals(t *testing.T) {
	var diags source.DiagList
	e := ParseExprString("add(1, mul(2, x))", &diags)
	out := ast.Rewrite(e, func(e ast.Expr) ast.Expr {
		if lit, ok := e.(*ast.IntLit); ok {
			return &ast.IntLit{P: lit.P, Val: lit.Val * 10}
		}
		return e
	})
	want := "add(10, mul(20, x))"
	if got := ast.Print(out); got != want {
		t.Errorf("Rewrite = %q, want %q", got, want)
	}
	// Original untouched (Rewrite builds fresh spines).
	if got := ast.Print(e); got != "add(1, mul(2, x))" {
		t.Errorf("Rewrite mutated original: %q", got)
	}
}

func TestWalkPrune(t *testing.T) {
	var diags source.DiagList
	e := ParseExprString("if c then deep(nested(x)) else y", &diags)
	count := 0
	ast.Walk(e, func(e ast.Expr) bool {
		count++
		_, isIf := e.(*ast.If)
		return !isIf // prune below the if
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d nodes, want 1", count)
	}
}
