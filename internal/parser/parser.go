// Package parser implements a recursive-descent parser for Delirium. The
// grammar (all six constructs of §3):
//
//	program   := (define | funcdecl)*
//	define    := 'define' IDENT expr
//	funcdecl  := IDENT '(' params? ')' expr
//	expr      := letexpr | ifexpr | iterexpr | applyexpr
//	letexpr   := 'let' bind+ 'in' expr
//	bind      := IDENT '=' expr
//	           | '<' IDENT (',' IDENT)* '>' '=' expr
//	           | IDENT '(' params? ')' expr          -- nested function
//	ifexpr    := 'if' expr 'then' expr 'else' expr
//	iterexpr  := 'iterate' '{' itervar+ '}' 'while' expr ',' 'result' expr
//	itervar   := IDENT '=' expr ',' expr
//	applyexpr := primary ( '(' args? ')' )*
//	primary   := INT | FLOAT | STRING | 'NULL' | IDENT
//	           | '(' expr ')' | '<' args '>'
//
// The parser recovers from errors so that one mistake does not hide others;
// recovery synthesizes NULL expressions and resynchronizes at the next
// top-level definition.
package parser

import (
	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
)

// Parser consumes a token stream produced by the lexer.
type Parser struct {
	toks  []lexer.Token
	pos   int
	file  string
	diags *source.DiagList
	// errorBase is the diagnostic count when the current top-level
	// definition began; error recovery only honors layout boundaries once
	// the count has grown, so correct one-line programs are unaffected.
	errorBase int
}

// Parse tokenizes and parses src in one step, the common entry point.
func Parse(file, src string, diags *source.DiagList) *ast.Program {
	l := lexer.New(file, src, diags)
	return ParseTokens(file, l.ScanAll(), diags)
}

// ParseTokens parses a pre-scanned token stream. The parallel compiler lexes
// once and hands per-function token slices to parser workers.
func ParseTokens(file string, toks []lexer.Token, diags *source.DiagList) *ast.Program {
	p := &Parser{toks: toks, file: file, diags: diags}
	return p.parseProgram()
}

// ParseExprString parses a standalone expression; used by tests and the
// expression-evaluation conveniences.
func ParseExprString(src string, diags *source.DiagList) ast.Expr {
	l := lexer.New("<expr>", src, diags)
	p := &Parser{toks: l.ScanAll(), file: "<expr>", diags: diags}
	e := p.parseExpr()
	if p.peek().Type != lexer.EOF {
		p.errorf(p.peek().Pos, "unexpected %s after expression", p.peek())
	}
	return e
}

func (p *Parser) peek() lexer.Token { return p.toks[p.pos] }

func (p *Parser) peekAt(n int) lexer.Token {
	i := p.pos + n
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF token
	}
	return p.toks[i]
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Type != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(tt lexer.Type) bool { return p.peek().Type == tt }

// accept consumes the next token if it has the given type.
func (p *Parser) accept(tt lexer.Type) (lexer.Token, bool) {
	if p.at(tt) {
		return p.next(), true
	}
	return lexer.Token{}, false
}

// expect consumes a token of the given type or reports an error.
func (p *Parser) expect(tt lexer.Type, context string) lexer.Token {
	if p.at(tt) {
		return p.next()
	}
	p.errorf(p.peek().Pos, "expected %s %s, found %s", tt, context, p.peek())
	return lexer.Token{Type: tt, Pos: p.peek().Pos}
}

func (p *Parser) errorf(pos source.Pos, format string, args ...interface{}) {
	p.diags.Errorf(pos, format, args...)
}

// parseProgram parses defines and function declarations until EOF.
func (p *Parser) parseProgram() *ast.Program {
	prog := &ast.Program{File: p.file}
	for !p.at(lexer.EOF) {
		switch {
		case p.at(lexer.KwDefine):
			d := p.parseDefine()
			if d != nil {
				prog.Defines = append(prog.Defines, d)
			}
		case p.at(lexer.IDENT) && p.peekAt(1).Type == lexer.LPAREN:
			before := p.diags.Len()
			f := p.parseFuncDecl()
			if f != nil {
				prog.Funcs = append(prog.Funcs, f)
			}
			if p.diags.Len() > before {
				// The body was malformed; resynchronize at the next
				// definition so one mistake does not cascade.
				p.syncTopLevel()
			}
		default:
			p.errorf(p.peek().Pos, "expected function definition or 'define', found %s", p.peek())
			p.next()
			p.syncTopLevel()
		}
	}
	return prog
}

// syncTopLevel skips tokens until the start of a plausible top-level form:
// a 'define' keyword or an IDENT '(' pair beginning a source line (the
// column-1 layout convention used by every program in the paper).
func (p *Parser) syncTopLevel() {
	for !p.at(lexer.EOF) {
		t := p.peek()
		if t.Pos.Col == 1 {
			if t.Type == lexer.KwDefine {
				return
			}
			if t.Type == lexer.IDENT && p.peekAt(1).Type == lexer.LPAREN {
				return
			}
		}
		p.next()
	}
}

// parseDefine parses: define NAME expr.
func (p *Parser) parseDefine() *ast.Define {
	kw := p.expect(lexer.KwDefine, "at top level")
	name := p.expect(lexer.IDENT, "after 'define'")
	e := p.parseExpr()
	return &ast.Define{P: kw.Pos, Name: name.Lit, Expr: e}
}

// inError reports whether diagnostics were added since the current
// top-level definition began.
func (p *Parser) inError() bool { return p.diags.Len() > p.errorBase }

// atBoundary reports whether the next token begins a new top-level
// definition under the column-1 layout convention.
func (p *Parser) atBoundary() bool {
	t := p.peek()
	if t.Pos.Col != 1 {
		return false
	}
	return t.Type == lexer.KwDefine ||
		(t.Type == lexer.IDENT && p.peekAt(1).Type == lexer.LPAREN)
}

// parseFuncDecl parses: name(params) body.
func (p *Parser) parseFuncDecl() *ast.FuncDecl {
	saved := p.errorBase
	p.errorBase = p.diags.Len()
	defer func() { p.errorBase = saved }()
	name := p.expect(lexer.IDENT, "to begin function definition")
	p.expect(lexer.LPAREN, "after function name")
	params := p.parseParams()
	p.expect(lexer.RPAREN, "after parameter list")
	body := p.parseExpr()
	return &ast.FuncDecl{P: name.Pos, Name: name.Lit, Params: params, Body: body}
}

// parseParams parses a possibly-empty comma-separated identifier list.
func (p *Parser) parseParams() []string {
	var params []string
	if p.at(lexer.RPAREN) {
		return params
	}
	for {
		id := p.expect(lexer.IDENT, "in parameter list")
		params = append(params, id.Lit)
		if _, ok := p.accept(lexer.COMMA); !ok {
			return params
		}
	}
}

// parseExpr dispatches on the leading token.
func (p *Parser) parseExpr() ast.Expr {
	switch p.peek().Type {
	case lexer.KwLet:
		return p.parseLet()
	case lexer.KwIf:
		return p.parseIf()
	case lexer.KwIterate:
		return p.parseIterate()
	default:
		return p.parseApply()
	}
}

// parseLet parses: let bind+ in expr.
func (p *Parser) parseLet() ast.Expr {
	kw := p.next() // let
	var binds []*ast.Bind
	for !p.at(lexer.KwIn) && !p.at(lexer.EOF) {
		if p.inError() && p.atBoundary() {
			break // a new top-level definition starts; stop consuming
		}
		b := p.parseBind()
		if b == nil {
			break
		}
		binds = append(binds, b)
	}
	if len(binds) == 0 {
		p.errorf(kw.Pos, "let expression has no bindings")
	}
	if _, ok := p.accept(lexer.KwIn); !ok {
		p.errorf(p.peek().Pos, "expected 'in' to end let bindings, found %s", p.peek())
		if p.atBoundary() {
			return &ast.Let{P: kw.Pos, Binds: binds, Body: &ast.NullLit{P: p.peek().Pos}}
		}
	}
	body := p.parseExpr()
	return &ast.Let{P: kw.Pos, Binds: binds, Body: body}
}

// parseBind parses one of the three binding forms.
func (p *Parser) parseBind() *ast.Bind {
	switch {
	case p.at(lexer.LANGLE):
		// <a, b, c> = expr
		lt := p.next()
		var names []string
		for {
			id := p.expect(lexer.IDENT, "in multiple-value decomposition")
			names = append(names, id.Lit)
			if _, ok := p.accept(lexer.COMMA); !ok {
				break
			}
		}
		p.expect(lexer.RANGLE, "to close decomposition pattern")
		p.expect(lexer.ASSIGN, "after decomposition pattern")
		init := p.parseExpr()
		return &ast.Bind{P: lt.Pos, Kind: ast.BindTuple, Names: names, Init: init}
	case p.at(lexer.IDENT) && p.peekAt(1).Type == lexer.ASSIGN:
		id := p.next()
		p.next() // '='
		init := p.parseExpr()
		return &ast.Bind{P: id.Pos, Kind: ast.BindValue, Names: []string{id.Lit}, Init: init}
	case p.at(lexer.IDENT) && p.peekAt(1).Type == lexer.LPAREN:
		fn := p.parseFuncDecl()
		return &ast.Bind{P: fn.P, Kind: ast.BindFunc, Names: []string{fn.Name}, Fn: fn}
	default:
		p.errorf(p.peek().Pos, "expected binding (name =, <names> =, or function definition), found %s", p.peek())
		p.next() // guarantee progress
		return nil
	}
}

// parseIf parses: if expr then expr else expr.
func (p *Parser) parseIf() ast.Expr {
	kw := p.next() // if
	cond := p.parseExpr()
	p.expect(lexer.KwThen, "in conditional")
	then := p.parseExpr()
	p.expect(lexer.KwElse, "in conditional")
	els := p.parseExpr()
	return &ast.If{P: kw.Pos, Cond: cond, Then: then, Else: els}
}

// parseIterate parses:
//
//	iterate { v=init,next ... } while cond, result expr
func (p *Parser) parseIterate() ast.Expr {
	kw := p.next() // iterate
	p.expect(lexer.LBRACE, "after 'iterate'")
	var vars []*ast.IterVar
	for p.at(lexer.IDENT) {
		id := p.next()
		p.expect(lexer.ASSIGN, "after loop variable name")
		init := p.parseExpr()
		p.expect(lexer.COMMA, "between loop variable's initial and next expressions")
		next := p.parseExpr()
		vars = append(vars, &ast.IterVar{P: id.Pos, Name: id.Lit, Init: init, Next: next})
		// Trailing comma between variables is tolerated (the paper's examples
		// end next-expressions with a comma before the closing brace).
		p.accept(lexer.COMMA)
	}
	if len(vars) == 0 {
		p.errorf(kw.Pos, "iterate has no loop variables")
	}
	p.expect(lexer.RBRACE, "to close iterate variables")
	p.expect(lexer.KwWhile, "after iterate block")
	cond := p.parseExpr()
	p.accept(lexer.COMMA)
	p.expect(lexer.KwResult, "after iterate condition")
	result := p.parseExpr()
	return &ast.Iterate{P: kw.Pos, Vars: vars, Cond: cond, Result: result}
}

// parseApply parses a primary expression followed by call tails.
func (p *Parser) parseApply() ast.Expr {
	e := p.parsePrimary()
	for p.at(lexer.LPAREN) {
		lp := p.next()
		var args []ast.Expr
		if !p.at(lexer.RPAREN) {
			for {
				args = append(args, p.parseExpr())
				if _, ok := p.accept(lexer.COMMA); !ok {
					break
				}
			}
		}
		p.expect(lexer.RPAREN, "to close argument list")
		e = &ast.Call{P: lp.Pos, Fun: e, Args: args}
	}
	return e
}

// parsePrimary parses literals, identifiers, parenthesized expressions, and
// multiple-value constructors.
func (p *Parser) parsePrimary() ast.Expr {
	t := p.peek()
	switch t.Type {
	case lexer.INT:
		p.next()
		return &ast.IntLit{P: t.Pos, Val: t.IntVal}
	case lexer.FLOAT:
		p.next()
		return &ast.FloatLit{P: t.Pos, Val: t.FltVal}
	case lexer.STRING:
		p.next()
		return &ast.StrLit{P: t.Pos, Val: t.Lit}
	case lexer.KwNull:
		p.next()
		return &ast.NullLit{P: t.Pos}
	case lexer.IDENT:
		p.next()
		return &ast.Ident{P: t.Pos, Name: t.Lit}
	case lexer.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(lexer.RPAREN, "to close parenthesized expression")
		return e
	case lexer.LANGLE:
		p.next()
		var elems []ast.Expr
		if !p.at(lexer.RANGLE) {
			for {
				elems = append(elems, p.parseExpr())
				if _, ok := p.accept(lexer.COMMA); !ok {
					break
				}
			}
		}
		p.expect(lexer.RANGLE, "to close multiple-value package")
		return &ast.TupleExpr{P: t.Pos, Elems: elems}
	default:
		p.errorf(t.Pos, "expected expression, found %s", t)
		p.next() // guarantee progress
		return &ast.NullLit{P: t.Pos}
	}
}

// ParseChunk parses a token slice that contains zero or more complete
// top-level forms (defines and function definitions). The parallel parsing
// stage feeds it the chunks produced by SplitTopLevel; because a chunk is
// parsed as a miniature program, splitting is purely a parallelization hint
// and never affects correctness.
func ParseChunk(file string, toks []lexer.Token, diags *source.DiagList) *ast.Program {
	p := &Parser{toks: toks, file: file, diags: diags}
	return p.parseProgram()
}

// SplitTopLevel partitions a token stream into chunks at top-level
// definition boundaries, each chunk terminated by an EOF token. It is the
// sequential "crown" step of the parallel parsing pass (§6.2): the chunks are
// then parsed independently by worker operators and the resulting function
// lists merged.
//
// A boundary is a 'define' keyword or an IDENT '(' pair whose identifier
// starts a source line (column 1). This is the layout convention of every
// program in the paper — top-level definitions begin in column one and
// continuation lines are indented. Input that ignores the convention still
// parses correctly: a chunk may carry several definitions and ParseChunk
// accepts all of them.
func SplitTopLevel(toks []lexer.Token) [][]lexer.Token {
	var chunks [][]lexer.Token
	start := 0
	flush := func(end int) {
		if end > start {
			chunk := make([]lexer.Token, 0, end-start+1)
			chunk = append(chunk, toks[start:end]...)
			chunk = append(chunk, lexer.Token{Type: lexer.EOF, Pos: toks[end-1].Pos})
			chunks = append(chunks, chunk)
		}
		start = end
	}
	for i, t := range toks {
		if t.Type == lexer.EOF {
			flush(i)
			break
		}
		if i == start {
			continue // never split at the current chunk head
		}
		isBoundary := t.Pos.Col == 1 &&
			(t.Type == lexer.KwDefine ||
				(t.Type == lexer.IDENT && i+1 < len(toks) && toks[i+1].Type == lexer.LPAREN))
		if isBoundary {
			flush(i)
		}
	}
	return chunks
}
