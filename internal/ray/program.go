package ray

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/graph"
	"repro/internal/operator"
	"repro/internal/runtime"
	"repro/internal/value"
)

// bandPiece is one row band of the render; piece 0 carries the scene for
// the merge. The world is read-only during tracing and the bands write
// disjoint image rows, so pieces never trigger copies.
type bandPiece struct {
	idx    int
	r0, r1 int
	scene  *Scene
	world  *Scene // read-only view for tracing (same object as scene)
	tests  int64
}

// programSrc is the coordination framework: one static fork/join.
const programSrc = `
main()
  let scene = rt_setup()
      <a,b,c,d> = rt_split(scene)
      ao = rt_trace(a)
      bo = rt_trace(b)
      co = rt_trace(c)
      do = rt_trace(d)
  in rt_merge(ao,bo,co,do)
`

// Source returns the Delirium program text.
func Source() string { return programSrc }

// Operators builds the ray-tracing operator registry for cfg.
func Operators(cfg Config) (*operator.Registry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := operator.NewRegistry(operator.Builtins())

	r.MustRegister(&operator.Operator{
		Name: "rt_setup", Arity: 0,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			s := NewScene(cfg)
			ctx.Charge(int64(s.Words()))
			return value.NewBlockStats(&value.Opaque{Payload: s, Words: s.Words()}, ctx.BlockStats()), nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "rt_split", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := sceneOf(args[0], "rt_split")
			if err != nil {
				return nil, err
			}
			ctx.Charge(Bands)
			out := make(value.Tuple, Bands)
			for i := 0; i < Bands; i++ {
				r0, r1 := Band(cfg.H, i)
				bp := &bandPiece{idx: i, r0: r0, r1: r1, world: s}
				if i == 0 {
					bp.scene = s
				}
				out[i] = value.NewBlockStats(&value.Opaque{Payload: bp, Words: (r1 - r0) * cfg.W * 3},
					ctx.BlockStats())
			}
			return out, nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "rt_trace", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			bp, err := bandOf(args[0], "rt_trace")
			if err != nil {
				return nil, err
			}
			bp.tests = bp.world.RenderRows(bp.r0, bp.r1)
			ctx.Charge(bp.tests)
			return args[0], nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "rt_merge", Arity: Bands, Destructive: []bool{true, true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			var s *Scene
			var tests [Bands]int64
			for i, a := range args {
				bp, err := bandOf(a, "rt_merge")
				if err != nil {
					return nil, err
				}
				if bp.scene != nil {
					s = bp.scene
				}
				if bp.idx < 0 || bp.idx >= Bands {
					return nil, fmt.Errorf("rt_merge: band index %d out of range", bp.idx)
				}
				tests[bp.idx] = bp.tests
				_ = i
			}
			if s == nil {
				return nil, fmt.Errorf("rt_merge: no band carried the scene")
			}
			// Accumulate work counts in band order for determinism.
			for _, t := range tests {
				s.Tests += t
			}
			ctx.Charge(Bands)
			return value.NewBlockStats(&value.Opaque{Payload: s, Words: s.Words()}, ctx.BlockStats()), nil
		},
	})

	return r, nil
}

func sceneOf(v value.Value, what string) (*Scene, error) {
	p, err := opaqueOf(v, what)
	if err != nil {
		return nil, err
	}
	s, ok := p.(*Scene)
	if !ok {
		return nil, fmt.Errorf("%s: expected scene, got %T", what, p)
	}
	return s, nil
}

func bandOf(v value.Value, what string) (*bandPiece, error) {
	p, err := opaqueOf(v, what)
	if err != nil {
		return nil, err
	}
	bp, ok := p.(*bandPiece)
	if !ok {
		return nil, fmt.Errorf("%s: expected band piece, got %T", what, p)
	}
	return bp, nil
}

func opaqueOf(v value.Value, what string) (interface{}, error) {
	if v == nil {
		return nil, fmt.Errorf("%s: missing block argument", what)
	}
	b, ok := v.(*value.Block)
	if !ok {
		return nil, fmt.Errorf("%s: block argument required, got %s", what, v.Kind())
	}
	o, ok := b.Data().(*value.Opaque)
	if !ok {
		return nil, fmt.Errorf("%s: unexpected payload %T", what, b.Data())
	}
	return o.Payload, nil
}

// ExtractScene unwraps a program result.
func ExtractScene(v value.Value) (*Scene, error) { return sceneOf(v, "result") }

// CompileProgram compiles the coordination program against cfg's operators.
func CompileProgram(cfg Config) (*graph.Program, error) {
	reg, err := Operators(cfg)
	if err != nil {
		return nil, err
	}
	res, err := compile.Compile("raytrace.dlr", Source(), compile.Options{Registry: reg})
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

// Run compiles and renders, returning the scene and the engine.
func Run(cfg Config, ecfg runtime.Config) (*Scene, *runtime.Engine, error) {
	prog, err := CompileProgram(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := runtime.New(prog, ecfg)
	out, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	s, err := ExtractScene(out)
	if err != nil {
		return nil, nil, err
	}
	return s, eng, nil
}
