package ray

import (
	"strings"
	"testing"

	"repro/internal/operator"
	"repro/internal/value"
)

func opCall(t *testing.T, reg *operator.Registry, name string, args ...value.Value) (value.Value, error) {
	t.Helper()
	op, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("operator %s missing", name)
	}
	return op.Fn(operator.NopContext, args)
}

func TestOperatorMisuse(t *testing.T) {
	reg, err := Operators(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	wrong := value.NewBlock(&value.Opaque{Payload: 3.14, Words: 1})
	cases := []struct {
		op   string
		args []value.Value
		want string
	}{
		{"rt_split", []value.Value{value.Int(1)}, "block argument required"},
		{"rt_split", []value.Value{wrong}, "expected scene"},
		{"rt_trace", []value.Value{wrong}, "expected band piece"},
		{"rt_merge", []value.Value{wrong, wrong, wrong, wrong}, "expected band piece"},
		{"rt_trace", []value.Value{nil}, "missing block"},
	}
	for _, c := range cases {
		_, err := opCall(t, reg, c.op, c.args...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.op, err, c.want)
		}
	}
}

func TestMergeRequiresSceneCarrier(t *testing.T) {
	reg, err := Operators(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	setup, _ := opCall(t, reg, "rt_setup")
	pieces, _ := opCall(t, reg, "rt_split", setup)
	tup := pieces.(value.Tuple)
	if _, err := opCall(t, reg, "rt_merge", tup[1], tup[1], tup[2], tup[3]); err == nil ||
		!strings.Contains(err.Error(), "no band carried the scene") {
		t.Errorf("err = %v", err)
	}
}

func TestOperatorsRejectBadConfig(t *testing.T) {
	if _, err := Operators(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := CompileProgram(Config{}); err == nil {
		t.Error("bad config compiled")
	}
}

func TestExtractSceneErrors(t *testing.T) {
	if _, err := ExtractScene(value.Str("x")); err == nil {
		t.Error("non-block accepted")
	}
	b := value.NewBlock(value.FloatVec{1})
	if _, err := ExtractScene(b); err == nil {
		t.Error("non-opaque block accepted")
	}
}
