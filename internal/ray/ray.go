// Package ray is a compact Whitted-style ray tracer coordinated by
// Delirium — standing in for the 10,000-line ray tracer the paper lists
// among its applications (§4). The coordination framework is the static
// fork/join the paper favors for large data structures: the image is split
// into row bands, each band traced by an independent operator, and the
// merge returns the assembled image.
package ray

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Bands is the parallel width of the decomposition.
const Bands = 4

// Vec is a 3-component vector.
type Vec struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec) Add(b Vec) Vec { return Vec{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec) Sub(b Vec) Vec { return Vec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec) Scale(s float64) Vec { return Vec{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the inner product.
func (a Vec) Dot(b Vec) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Mul returns the component-wise product.
func (a Vec) Mul(b Vec) Vec { return Vec{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Norm returns the unit vector along a.
func (a Vec) Norm() Vec {
	l := math.Sqrt(a.Dot(a))
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Material describes surface response.
type Material struct {
	Color      Vec
	Diffuse    float64
	Specular   float64
	Shininess  float64
	Reflective float64
}

// Sphere is a primitive.
type Sphere struct {
	Center Vec
	Radius float64
	Mat    Material
}

// Plane is an infinite primitive defined by a point and normal.
type Plane struct {
	Point  Vec
	Normal Vec
	Mat    Material
	// Checker alternates the color in a 2-unit grid when set.
	Checker bool
}

// Light is a point light.
type Light struct {
	Pos   Vec
	Color Vec
}

// Config describes a render.
type Config struct {
	W, H     int
	MaxDepth int
	Spheres  int // procedurally placed spheres
	Seed     int64
}

// DefaultConfig renders a small scene.
func DefaultConfig() Config { return Config{W: 64, H: 48, MaxDepth: 3, Spheres: 6, Seed: 7} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.W < 4 || c.H < Bands {
		return fmt.Errorf("ray: image %dx%d too small", c.W, c.H)
	}
	if c.MaxDepth < 0 || c.MaxDepth > 16 {
		return fmt.Errorf("ray: depth %d out of range", c.MaxDepth)
	}
	return nil
}

// Scene holds the world and the image under construction. Like the retina
// scene it travels linearly between operators.
type Scene struct {
	Cfg     Config
	Spheres []Sphere
	Planes  []Plane
	Lights  []Light
	Eye     Vec
	// Image stores RGB triples row-major: Cols = 3*W.
	Image *value.FloatGrid
	// Tests accumulates intersection tests (the work measure); parallel
	// band renders count privately and merge their totals here.
	Tests int64
}

// tracer wraps the scene's immutable world with a private test counter so
// that concurrent band renders never share mutable state.
type tracer struct {
	s     *Scene
	tests int64
}

// Words sizes the scene for block accounting.
func (s *Scene) Words() int {
	return s.Image.Size() + len(s.Spheres)*10 + len(s.Planes)*10 + len(s.Lights)*6
}

// NewScene builds the deterministic procedural scene: a checkered floor,
// a mirror sphere, and cfg.Spheres colored spheres in a ring.
func NewScene(cfg Config) *Scene {
	s := &Scene{
		Cfg:   cfg,
		Eye:   Vec{0, 1.2, -4},
		Image: value.NewFloatGrid(cfg.H, cfg.W*3),
	}
	s.Planes = []Plane{{
		Point:   Vec{0, 0, 0},
		Normal:  Vec{0, 1, 0},
		Mat:     Material{Color: Vec{0.9, 0.9, 0.9}, Diffuse: 0.9, Specular: 0.1, Shininess: 16},
		Checker: true,
	}}
	s.Spheres = []Sphere{{
		Center: Vec{0, 1.0, 1.5},
		Radius: 1.0,
		Mat: Material{Color: Vec{0.95, 0.95, 0.95}, Diffuse: 0.1, Specular: 0.9,
			Shininess: 64, Reflective: 0.8},
	}}
	rng := uint64(cfg.Seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		rng = rng*2862933555777941757 + 3037000493
		return float64(rng>>11) / float64(1<<53)
	}
	for i := 0; i < cfg.Spheres; i++ {
		ang := 2 * math.Pi * float64(i) / float64(maxInt(cfg.Spheres, 1))
		s.Spheres = append(s.Spheres, Sphere{
			Center: Vec{2.2 * math.Cos(ang), 0.4 + 0.3*next(), 1.5 + 2.2*math.Sin(ang)},
			Radius: 0.35 + 0.15*next(),
			Mat: Material{
				Color:      Vec{0.3 + 0.7*next(), 0.3 + 0.7*next(), 0.3 + 0.7*next()},
				Diffuse:    0.8,
				Specular:   0.4,
				Shininess:  32,
				Reflective: 0.15 * next(),
			},
		})
	}
	s.Lights = []Light{
		{Pos: Vec{-3, 5, -2}, Color: Vec{0.9, 0.9, 0.9}},
		{Pos: Vec{4, 3, -3}, Color: Vec{0.4, 0.4, 0.5}},
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// hit is an intersection record.
type hit struct {
	t      float64
	point  Vec
	normal Vec
	mat    Material
}

const eps = 1e-6

// intersect finds the nearest primitive along origin+t*dir, t > eps.
func (tr *tracer) intersect(origin, dir Vec) (hit, bool) {
	s := tr.s
	best := hit{t: math.Inf(1)}
	found := false
	for i := range s.Spheres {
		sp := &s.Spheres[i]
		tr.tests++
		oc := origin.Sub(sp.Center)
		b := oc.Dot(dir)
		c := oc.Dot(oc) - sp.Radius*sp.Radius
		disc := b*b - c
		if disc < 0 {
			continue
		}
		sq := math.Sqrt(disc)
		t := -b - sq
		if t < eps {
			t = -b + sq
		}
		if t < eps || t >= best.t {
			continue
		}
		p := origin.Add(dir.Scale(t))
		best = hit{t: t, point: p, normal: p.Sub(sp.Center).Norm(), mat: sp.Mat}
		found = true
	}
	for i := range s.Planes {
		pl := &s.Planes[i]
		tr.tests++
		denom := pl.Normal.Dot(dir)
		if math.Abs(denom) < eps {
			continue
		}
		t := pl.Point.Sub(origin).Dot(pl.Normal) / denom
		if t < eps || t >= best.t {
			continue
		}
		p := origin.Add(dir.Scale(t))
		mat := pl.Mat
		if pl.Checker {
			cx := int(math.Floor(p.X/2)) + int(math.Floor(p.Z/2))
			if cx&1 == 0 {
				mat.Color = Vec{0.2, 0.2, 0.25}
			}
		}
		n := pl.Normal
		if denom > 0 {
			n = n.Scale(-1)
		}
		best = hit{t: t, point: p, normal: n, mat: mat}
		found = true
	}
	return best, found
}

// shadowed reports whether the point is occluded toward the light.
func (tr *tracer) shadowed(p, lpos Vec) bool {
	dir := lpos.Sub(p)
	dist := math.Sqrt(dir.Dot(dir))
	h, ok := tr.intersect(p, dir.Norm())
	return ok && h.t < dist-eps
}

// trace returns the color along a ray.
func (tr *tracer) trace(origin, dir Vec, depth int) Vec {
	h, ok := tr.intersect(origin, dir)
	if !ok {
		// Sky gradient.
		t := 0.5 * (dir.Y + 1)
		return Vec{0.4, 0.55, 0.8}.Scale(t).Add(Vec{0.05, 0.05, 0.1})
	}
	col := h.mat.Color.Scale(0.08) // ambient
	for _, l := range tr.s.Lights {
		if tr.shadowed(h.point, l.Pos) {
			continue
		}
		ldir := l.Pos.Sub(h.point).Norm()
		diff := h.normal.Dot(ldir)
		if diff > 0 {
			col = col.Add(h.mat.Color.Mul(l.Color).Scale(h.mat.Diffuse * diff))
		}
		half := ldir.Sub(dir).Norm()
		spec := h.normal.Dot(half)
		if spec > 0 {
			col = col.Add(l.Color.Scale(h.mat.Specular * math.Pow(spec, h.mat.Shininess)))
		}
	}
	if h.mat.Reflective > 0 && depth < tr.s.Cfg.MaxDepth {
		rdir := dir.Sub(h.normal.Scale(2 * dir.Dot(h.normal)))
		col = col.Add(tr.trace(h.point, rdir.Norm(), depth+1).Scale(h.mat.Reflective))
	}
	return col
}

// RenderRows traces rows [r0, r1) into the image and returns the number of
// intersection tests performed (the band's work). Safe to call concurrently
// for disjoint row ranges: the world is read-only, the counter private, and
// the written rows disjoint. The caller accounts the returned tests.
func (s *Scene) RenderRows(r0, r1 int) int64 {
	tr := &tracer{s: s}
	w, hgt := s.Cfg.W, s.Cfg.H
	aspect := float64(w) / float64(hgt)
	for r := r0; r < r1; r++ {
		row := s.Image.Row(r)
		for q := 0; q < w; q++ {
			u := (float64(q)/float64(w-1)*2 - 1) * aspect
			v := 1 - float64(r)/float64(hgt-1)*2
			dir := Vec{u, v + 0.2, 2}.Norm()
			c := tr.trace(s.Eye, dir, 0)
			row[q*3+0] = clamp01(c.X)
			row[q*3+1] = clamp01(c.Y)
			row[q*3+2] = clamp01(c.Z)
		}
	}
	return tr.tests
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Band returns the i-th of Bands row bands.
func Band(h, i int) (int, int) {
	return i * h / Bands, (i + 1) * h / Bands
}

// Reference renders the scene sequentially — the oracle and speedup
// baseline.
func Reference(cfg Config) *Scene {
	s := NewScene(cfg)
	s.Tests = s.RenderRows(0, cfg.H)
	return s
}

// Checksum sums the image, a cheap equality proxy used by examples.
func (s *Scene) Checksum() float64 {
	var t float64
	for _, v := range s.Image.Cells {
		t += v
	}
	return t
}

// ImagesEqual compares two rendered images exactly.
func ImagesEqual(a, b *Scene) bool {
	if a.Cfg.W != b.Cfg.W || a.Cfg.H != b.Cfg.H {
		return false
	}
	for i := range a.Image.Cells {
		if a.Image.Cells[i] != b.Image.Cells[i] {
			return false
		}
	}
	return true
}

// PPM renders the image as a plain-text PPM file (P3), the examples'
// output format.
func (s *Scene) PPM() string {
	out := fmt.Sprintf("P3\n%d %d\n255\n", s.Cfg.W, s.Cfg.H)
	for r := 0; r < s.Cfg.H; r++ {
		row := s.Image.Row(r)
		for q := 0; q < s.Cfg.W; q++ {
			out += fmt.Sprintf("%d %d %d\n",
				int(row[q*3]*255+0.5), int(row[q*3+1]*255+0.5), int(row[q*3+2]*255+0.5))
		}
	}
	return out
}
