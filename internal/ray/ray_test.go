package ray

import (
	"strings"
	"testing"

	"repro/internal/runtime"
)

func testCfg() Config { return Config{W: 40, H: 32, MaxDepth: 2, Spheres: 4, Seed: 5} }

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{W: 2, H: 32}).Validate(); err == nil {
		t.Error("tiny image accepted")
	}
	if err := (Config{W: 40, H: 32, MaxDepth: 99}).Validate(); err == nil {
		t.Error("huge depth accepted")
	}
}

func TestVecOps(t *testing.T) {
	a, b := Vec{1, 2, 3}, Vec{4, 5, 6}
	if a.Add(b) != (Vec{5, 7, 9}) || b.Sub(a) != (Vec{3, 3, 3}) {
		t.Error("add/sub wrong")
	}
	if a.Dot(b) != 32 || a.Scale(2) != (Vec{2, 4, 6}) || a.Mul(b) != (Vec{4, 10, 18}) {
		t.Error("dot/scale/mul wrong")
	}
	n := Vec{3, 0, 4}.Norm()
	if d := n.Dot(n); d < 0.999999 || d > 1.000001 {
		t.Errorf("Norm not unit length: %v", n)
	}
	if (Vec{}).Norm() != (Vec{}) {
		t.Error("zero Norm should stay zero")
	}
}

func TestReferenceDeterministicAndLit(t *testing.T) {
	a := Reference(testCfg())
	b := Reference(testCfg())
	if !ImagesEqual(a, b) {
		t.Fatal("Reference not deterministic")
	}
	if a.Checksum() <= 0 {
		t.Error("image is black")
	}
	if a.Tests == 0 {
		t.Error("no intersection tests counted")
	}
	// The image must have variation (not a constant color).
	first := a.Image.Cells[0]
	varies := false
	for _, v := range a.Image.Cells {
		if v != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("image has no variation")
	}
}

func TestDeliriumRenderMatchesReference(t *testing.T) {
	cfg := testCfg()
	want := Reference(cfg)
	for _, workers := range []int{1, 4} {
		got, eng, err := Run(cfg, runtime.Config{Mode: runtime.Real, Workers: workers, MaxOps: 1_000_000})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !ImagesEqual(got, want) {
			t.Errorf("workers=%d: image differs from reference", workers)
		}
		if got.Tests != want.Tests {
			t.Errorf("workers=%d: tests=%d, reference=%d", workers, got.Tests, want.Tests)
		}
		if eng.Stats().Blocks.Copies != 0 {
			t.Errorf("workers=%d: %d copies, want 0", workers, eng.Stats().Blocks.Copies)
		}
	}
}

func TestSimulatedRenderSpeedup(t *testing.T) {
	cfg := testCfg()
	makespan := func(procs int) int64 {
		_, eng, err := Run(cfg, runtime.Config{Mode: runtime.Simulated, Workers: procs, MaxOps: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Stats().MakespanTicks
	}
	t1, t4 := makespan(1), makespan(4)
	speedup := float64(t1) / float64(t4)
	// Band loads vary with scene content (the mirror sphere concentrates
	// work), so expect clearly-parallel but not perfect scaling.
	if speedup < 1.8 || speedup > 4.2 {
		t.Errorf("speedup(4) = %.2f, want parallel scaling", speedup)
	}
}

func TestPPMOutput(t *testing.T) {
	s := Reference(Config{W: 8, H: 8, MaxDepth: 1, Spheres: 1, Seed: 1})
	ppm := s.PPM()
	if !strings.HasPrefix(ppm, "P3\n8 8\n255\n") {
		t.Errorf("PPM header wrong: %q", ppm[:20])
	}
	if strings.Count(ppm, "\n") < 8*8 {
		t.Error("PPM body too short")
	}
}

func TestBandCoversImage(t *testing.T) {
	covered := 0
	last := 0
	for i := 0; i < Bands; i++ {
		r0, r1 := Band(37, i)
		if r0 != last {
			t.Errorf("band %d starts at %d, want %d", i, r0, last)
		}
		covered += r1 - r0
		last = r1
	}
	if covered != 37 || last != 37 {
		t.Errorf("bands cover %d rows, want 37", covered)
	}
}
