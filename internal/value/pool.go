package value

import "math/bits"

// BlockPool is a per-worker free list of recyclable block payloads, size-
// classed by power-of-two word counts. The memory plan routes payloads of
// statically freed blocks here instead of dropping them for the garbage
// collector, and operators allocate through the pool so a freed payload is
// reused by the next allocation of matching size on the same worker.
//
// A pool is single-owner (one worker goroutine) and needs no locking; the
// engine merges hit counters into Stats after the run. All allocation
// helpers are safe on a nil receiver — they simply fall through to a fresh
// allocation — so operator code can call ctx.Pool().Floats(n) without caring
// whether a plan is active.
type BlockPool struct {
	classes [poolClasses][]BlockData
	puts    int64
	hits    int64
	// caps overrides poolClassCap per size class when non-zero; an adaptive
	// plan sizes hot classes up and cold classes down from measured demand.
	caps [poolClasses]int32
	// demand counts every recyclable payload offered per class, including
	// offers dropped at the cap — the signal the adaptive planner sizes
	// caps from.
	demand [poolClasses]int64
}

const (
	// poolClasses covers word counts up to 2^27 (1 GiB of float64s) —
	// anything larger is not worth caching.
	poolClasses = 28
	// poolClassCap bounds each class's free list so a burst of frees cannot
	// pin unbounded garbage.
	poolClassCap = 64
)

// poolClass maps a word count to its size class: the exponent of the
// smallest power of two >= max(words, 1).
func poolClass(words int) int {
	if words <= 1 {
		return 0
	}
	return bits.Len(uint(words - 1))
}

// Put offers a detached payload for recycling. Payload types the pool cannot
// re-issue are dropped; so is anything beyond the class cap or the class
// range.
func (p *BlockPool) Put(data BlockData) {
	if p == nil || data == nil {
		return
	}
	switch data.(type) {
	case *Opaque, FloatVec, IntVec, *FloatGrid:
	default:
		return
	}
	c := poolClass(data.Size())
	if c >= poolClasses {
		return
	}
	p.demand[c]++
	limit := poolClassCap
	if p.caps[c] > 0 {
		limit = int(p.caps[c])
	}
	if len(p.classes[c]) >= limit {
		return
	}
	p.classes[c] = append(p.classes[c], data)
	p.puts++
}

// take pops the most recently freed entry of class c matching ok.
func (p *BlockPool) take(c int, ok func(BlockData) bool) BlockData {
	if p == nil || c >= poolClasses {
		return nil
	}
	list := p.classes[c]
	for i := len(list) - 1; i >= 0; i-- {
		if ok(list[i]) {
			d := list[i]
			copy(list[i:], list[i+1:])
			p.classes[c] = list[:len(list)-1]
			p.hits++
			return d
		}
	}
	return nil
}

// Opaque returns an Opaque payload describing (payload, words), reusing a
// recycled shell from the matching size class when one is available. The
// shell's previous contents are fully overwritten, so reuse is always safe.
func (p *BlockPool) Opaque(payload interface{}, words int) *Opaque {
	if d := p.take(poolClass(words), func(d BlockData) bool {
		_, isOpaque := d.(*Opaque)
		return isOpaque
	}); d != nil {
		o := d.(*Opaque)
		o.Payload, o.Words, o.CopyFunc = payload, words, nil
		return o
	}
	return &Opaque{Payload: payload, Words: words}
}

// OpaqueCopy is Opaque with an explicit deep-copy function.
func (p *BlockPool) OpaqueCopy(payload interface{}, words int, copyFn func(interface{}) interface{}) *Opaque {
	o := p.Opaque(payload, words)
	o.CopyFunc = copyFn
	return o
}

// Floats returns a zeroed FloatVec of length n, reusing recycled storage
// with sufficient capacity when available. Zeroing keeps planned runs
// bit-identical to unplanned ones: an operator must never observe stale
// cells in memory it believes is fresh.
func (p *BlockPool) Floats(n int) FloatVec {
	if d := p.take(poolClass(n), func(d BlockData) bool {
		v, isVec := d.(FloatVec)
		return isVec && cap(v) >= n
	}); d != nil {
		v := d.(FloatVec)[:n]
		for i := range v {
			v[i] = 0
		}
		return v
	}
	return make(FloatVec, n)
}

// Ints returns a zeroed IntVec of length n, reusing recycled storage when
// available.
func (p *BlockPool) Ints(n int) IntVec {
	if d := p.take(poolClass(n), func(d BlockData) bool {
		v, isVec := d.(IntVec)
		return isVec && cap(v) >= n
	}); d != nil {
		v := d.(IntVec)[:n]
		for i := range v {
			v[i] = 0
		}
		return v
	}
	return make(IntVec, n)
}

// Grid returns a zeroed rows x cols FloatGrid, reusing a recycled grid whose
// cell storage has sufficient capacity when available.
func (p *BlockPool) Grid(rows, cols int) *FloatGrid {
	n := rows * cols
	if d := p.take(poolClass(n), func(d BlockData) bool {
		g, isGrid := d.(*FloatGrid)
		return isGrid && cap(g.Cells) >= n
	}); d != nil {
		g := d.(*FloatGrid)
		g.Rows, g.Cols, g.Cells = rows, cols, g.Cells[:n]
		for i := range g.Cells {
			g.Cells[i] = 0
		}
		return g
	}
	return NewFloatGrid(rows, cols)
}

// Hits returns how many allocations were served from the pool.
func (p *BlockPool) Hits() int64 {
	if p == nil {
		return 0
	}
	return p.hits
}

// Puts returns how many payloads were accepted for recycling.
func (p *BlockPool) Puts() int64 {
	if p == nil {
		return 0
	}
	return p.puts
}

// SetClassCaps overrides the per-class free-list caps. Entry i caps size
// class i (payloads of up to 2^i words); zero entries keep the default cap.
// Slices shorter than the class count leave the remaining classes at the
// default; longer slices are truncated.
func (p *BlockPool) SetClassCaps(caps []int) {
	if p == nil {
		return
	}
	for i := range p.caps {
		p.caps[i] = 0
	}
	for i, c := range caps {
		if i >= poolClasses {
			break
		}
		if c > 0 {
			p.caps[i] = int32(c)
		}
	}
}

// ClassDemand returns per-class recycle-offer counts (including offers
// dropped at the cap), indexed by size class.
func (p *BlockPool) ClassDemand() []int64 {
	if p == nil {
		return nil
	}
	out := make([]int64, poolClasses)
	copy(out, p.demand[:])
	return out
}

// PoolClasses is the number of size classes a BlockPool maintains.
const PoolClasses = poolClasses
