package value

import (
	"fmt"
	"sync/atomic"
)

// BlockData is the payload carried by a shared memory block. Payloads must
// know how to deep-copy themselves (for copy-on-write) and report their size
// in abstract words (for the simulated machines' memory-cost models and the
// run-time system's locality heuristics, §9.3).
type BlockData interface {
	// Copy returns a deep copy that shares no mutable state with the
	// receiver.
	Copy() BlockData
	// Size returns the payload size in words.
	Size() int
}

// NoAffinity marks a block with no preferred processor.
const NoAffinity int32 = -1

// Block is a reference-counted shared memory block (§8 coordination model,
// rules 1 and 2). All shared memory is explicitly passed between operators
// as blocks; a sub-computation may destructively modify a block only if it
// owns the sole reference to it.
//
// The affinity field realizes the data-affinity extension of §9.3: the
// header of each data block carries a processor preference that the
// scheduler may consult when placing the consuming operator.
type Block struct {
	refs     int64
	affinity int32
	data     BlockData
	// stats is the accounting sink the block was allocated against. The
	// zero-crossing (Freed) must be charged to the same sink as Allocated or
	// the teardown invariant Allocated == Freed breaks whenever the *last*
	// Release happens to run at a call site with a nil or different
	// *BlockStats (error sweeps, detached shadow workers, test harnesses).
	// Release therefore routes Freed through this field, falling back to the
	// call-site sink only for blocks created via bare NewBlock.
	stats *BlockStats
}

// BlockStats aggregates reference-counting activity for one program run.
// The copy counter is the observable cost of the determinism guarantee: a
// careful Delirium programmer arranges splits so that large structures are
// never copied (§2.1).
type BlockStats struct {
	Allocated int64 // blocks created
	Copies    int64 // copy-on-write duplications
	Retains   int64
	Releases  int64
	Freed     int64 // refcount reached zero
}

// Add atomically accumulates other into s. Used to merge per-worker stats.
func (s *BlockStats) Add(other BlockStats) {
	atomic.AddInt64(&s.Allocated, other.Allocated)
	atomic.AddInt64(&s.Copies, other.Copies)
	atomic.AddInt64(&s.Retains, other.Retains)
	atomic.AddInt64(&s.Releases, other.Releases)
	atomic.AddInt64(&s.Freed, other.Freed)
}

// NewBlock wraps data in a fresh block holding one reference, owned by the
// creating operator.
func NewBlock(data BlockData) *Block {
	return &Block{refs: 1, affinity: NoAffinity, data: data}
}

// NewBlockStats creates a block via stats accounting. The sink is remembered
// on the block so the matching Freed increment lands there no matter which
// call site drops the last reference.
func NewBlockStats(data BlockData, st *BlockStats) *Block {
	if st != nil {
		atomic.AddInt64(&st.Allocated, 1)
	}
	b := NewBlock(data)
	b.stats = st
	return b
}

// Kind returns KindBlock.
func (*Block) Kind() Kind { return KindBlock }

// String summarizes the block for timing listings and debugging. A block
// whose payload was recycled into a free list has nil data; String must stay
// safe on it because traces and panics may format dead blocks.
func (b *Block) String() string {
	data := b.data
	if data == nil {
		return fmt.Sprintf("block(recycled, %d refs)", atomic.LoadInt64(&b.refs))
	}
	return fmt.Sprintf("block(%T, %d words, %d refs)", data, data.Size(), atomic.LoadInt64(&b.refs))
}

// Data returns the payload for read-only access. Callers that intend to
// mutate must go through Writable.
func (b *Block) Data() BlockData { return b.data }

// Size returns the payload size in words (0 once the payload has been
// recycled).
func (b *Block) Size() int {
	if b.data == nil {
		return 0
	}
	return b.data.Size()
}

// Refs returns the current reference count (racy snapshot; exact only when
// the caller holds the sole reference or the run is quiescent).
func (b *Block) Refs() int64 { return atomic.LoadInt64(&b.refs) }

// Exclusive reports whether the caller holds the only reference, i.e. the
// block may be destructively modified in place.
func (b *Block) Exclusive() bool { return atomic.LoadInt64(&b.refs) == 1 }

// Retain adds a reference. The run-time system retains once per additional
// consumer when a value fans out along k > 1 graph edges.
func (b *Block) Retain(st *BlockStats) {
	atomic.AddInt64(&b.refs, 1)
	if st != nil {
		atomic.AddInt64(&st.Retains, 1)
	}
}

// Release drops a reference and reports whether this call freed the block
// (refcount reached zero). Go's garbage collector reclaims the storage; the
// count still matters because it gates in-place mutation and feeds the
// activation-reuse statistics.
//
// The Releases counter is call-site activity and goes to st; the Freed
// counter is a property of the block's lifetime and goes to the sink the
// block was allocated against, so Allocated == Freed holds even when the
// last reference is dropped at a nil-stats call site.
func (b *Block) Release(st *BlockStats) bool {
	n := atomic.AddInt64(&b.refs, -1)
	if n < 0 {
		panic(fmt.Sprintf("delirium: block over-released (refs=%d)", n))
	}
	if st != nil {
		atomic.AddInt64(&st.Releases, 1)
	}
	if n == 0 {
		if sink := b.stats; sink != nil {
			atomic.AddInt64(&sink.Freed, 1)
		} else if st != nil {
			atomic.AddInt64(&st.Freed, 1)
		}
		return true
	}
	return false
}

// FreeOwned releases a block the caller believes it owns exclusively
// (refcount 1), skipping the atomic decrement and the Releases counter, and
// detaches the payload for recycling. If the block is in fact shared the
// call degrades to a plain Release and returns (nil, false) — the memory
// plan's elisions stay sound even against a wrong static claim. Freed
// accounting is identical to Release's zero-crossing.
func (b *Block) FreeOwned(st *BlockStats) (BlockData, bool) {
	if atomic.LoadInt64(&b.refs) != 1 {
		b.Release(st)
		return nil, false
	}
	atomic.StoreInt64(&b.refs, 0)
	data := b.data
	b.data = nil
	if sink := b.stats; sink != nil {
		atomic.AddInt64(&sink.Freed, 1)
	} else if st != nil {
		atomic.AddInt64(&st.Freed, 1)
	}
	return data, true
}

// TakeData detaches the payload of a dead block (refcount 0) so it can be
// recycled through a free list. It returns nil for live blocks.
func (b *Block) TakeData() BlockData {
	if atomic.LoadInt64(&b.refs) != 0 {
		return nil
	}
	data := b.data
	b.data = nil
	return data
}

// Writable returns a block the caller may destructively modify, consuming
// the caller's reference to b. If the caller holds the sole reference the
// block itself is returned; otherwise the payload is deep-copied into a
// fresh exclusive block (copy-on-write) and the reference to b is released.
// The second result reports whether a copy was made.
func (b *Block) Writable(st *BlockStats) (*Block, bool) {
	if atomic.LoadInt64(&b.refs) == 1 {
		return b, false
	}
	// The copy inherits the source's accounting sink, and Allocated must be
	// bumped *before* the source reference is dropped: releasing first opens
	// a window where a concurrent reader of the counters sees Freed ahead of
	// Allocated, breaking the Allocated >= Freed invariant under fan-out.
	sink := st
	if sink == nil {
		sink = b.stats
	}
	if sink != nil {
		atomic.AddInt64(&sink.Copies, 1)
		atomic.AddInt64(&sink.Allocated, 1)
	}
	nb := NewBlock(b.data.Copy())
	nb.affinity = atomic.LoadInt32(&b.affinity)
	nb.stats = sink
	b.Release(st)
	return nb, true
}

// Affinity returns the block's preferred processor, or NoAffinity.
func (b *Block) Affinity() int32 { return atomic.LoadInt32(&b.affinity) }

// SetAffinity records the processor whose cache most recently touched the
// block. The scheduler updates this after each operator execution when the
// data-affinity policy is active.
func (b *Block) SetAffinity(proc int32) { atomic.StoreInt32(&b.affinity, proc) }

// Retain walks v and retains every block reachable through tuples. It is
// used when a produced value fans out to several consumers.
func Retain(v Value, st *BlockStats) {
	switch x := v.(type) {
	case *Block:
		x.Retain(st)
	case Tuple:
		for _, e := range x {
			Retain(e, st)
		}
	case *Closure:
		for _, e := range x.Env {
			Retain(e, st)
		}
	}
}

// Release walks v and releases every block reachable through tuples.
func Release(v Value, st *BlockStats) {
	switch x := v.(type) {
	case *Block:
		x.Release(st)
	case Tuple:
		for _, e := range x {
			Release(e, st)
		}
	case *Closure:
		for _, e := range x.Env {
			Release(e, st)
		}
	}
}

// RebindStats walks v and re-homes every reachable block whose stats sink
// is from so that its eventual Freed lands on to instead. The shadow-worker
// accept path uses this after merging a private sink's counters into the
// engine's: blocks remember the sink that counted their allocation, so
// without the rebind their release would credit Freed to a sink whose
// Allocated was already transferred away.
func RebindStats(v Value, from, to *BlockStats) {
	switch x := v.(type) {
	case *Block:
		if x.stats == from {
			x.stats = to
		}
	case Tuple:
		for _, e := range x {
			RebindStats(e, from, to)
		}
	case *Closure:
		for _, e := range x.Env {
			RebindStats(e, from, to)
		}
	}
}

// Blocks appends every block reachable from v (through tuples and closure
// environments) to dst and returns the extended slice.
func Blocks(v Value, dst []*Block) []*Block {
	switch x := v.(type) {
	case *Block:
		dst = append(dst, x)
	case Tuple:
		for _, e := range x {
			dst = Blocks(e, dst)
		}
	case *Closure:
		for _, e := range x.Env {
			dst = Blocks(e, dst)
		}
	}
	return dst
}

// CountBlocks returns the number of block references reachable from v
// (through tuples and closure environments). The runtime uses it to count
// elided refcount operations without materializing the block list.
func CountBlocks(v Value) int64 {
	switch x := v.(type) {
	case *Block:
		return 1
	case Tuple:
		var n int64
		for _, e := range x {
			n += CountBlocks(e)
		}
		return n
	case *Closure:
		var n int64
		for _, e := range x.Env {
			n += CountBlocks(e)
		}
		return n
	}
	return 0
}

// TotalSize returns the summed word size of every block reachable from v.
// The scheduler's data-affinity policy weighs input placement by size.
func TotalSize(v Value) int {
	total := 0
	switch x := v.(type) {
	case *Block:
		total += x.Size()
	case Tuple:
		for _, e := range x {
			total += TotalSize(e)
		}
	case *Closure:
		for _, e := range x.Env {
			total += TotalSize(e)
		}
	}
	return total
}
