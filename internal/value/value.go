// Package value defines the runtime values exchanged between Delirium
// operators: atomic values (null, booleans, integers, floats, strings),
// multiple-value packages (tuples), first-class function closures, and
// reference-counted shared memory blocks.
//
// Blocks implement the paper's data contention protocol: an operator may
// destructively modify a block only when it possesses the sole reference to
// it. The run-time system maintains reference counts in the blocks and copies
// them when two or more operators need simultaneous write access (§2.1, §8).
// Together with the per-argument destructive annotations on operators this
// guarantees deterministic execution of the overall program.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of a Value.
type Kind int

// The complete set of Delirium value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindStr
	KindTuple
	KindBlock
	KindClosure
)

// String returns the lower-case kind name used in runtime error messages.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindStr:
		return "string"
	case KindTuple:
		return "tuple"
	case KindBlock:
		return "block"
	case KindClosure:
		return "closure"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a runtime datum flowing along coordination-graph edges.
// Implementations are immutable except for Block, whose mutation is guarded
// by the sole-reference rule.
type Value interface {
	Kind() Kind
	String() string
}

// Null is the distinguished NULL value used by programs such as the eight
// queens backtracker to signal a failed branch.
type Null struct{}

// Kind returns KindNull.
func (Null) Kind() Kind { return KindNull }

// String returns "NULL".
func (Null) String() string { return "NULL" }

// Bool is a boolean value produced by predicate operators.
type Bool bool

// Kind returns KindBool.
func (Bool) Kind() Kind { return KindBool }

// String returns "true" or "false".
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }

// Int is a 64-bit integer atomic value.
type Int int64

// Kind returns KindInt.
func (Int) Kind() Kind { return KindInt }

// String returns the decimal rendering.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Float is a 64-bit floating point atomic value.
type Float float64

// Kind returns KindFloat.
func (Float) Kind() Kind { return KindFloat }

// String returns the shortest representation that round-trips.
func (f Float) String() string { return strconv.FormatFloat(float64(f), 'g', -1, 64) }

// Str is a string atomic value.
type Str string

// Kind returns KindStr.
func (Str) Kind() Kind { return KindStr }

// String returns the quoted string.
func (s Str) String() string { return strconv.Quote(string(s)) }

// Tuple is a multiple-value package (§3 construct 2). Packages are put
// together with <e1,...,en> syntax, decomposed by let bindings, and may be
// used as operator arguments and return values.
type Tuple []Value

// Kind returns KindTuple.
func (Tuple) Kind() Kind { return KindTuple }

// String renders the package in source syntax, e.g. <1, 2, 3>.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		if v == nil {
			b.WriteString("?")
			continue
		}
		b.WriteString(v.String())
	}
	b.WriteByte('>')
	return b.String()
}

// FuncRef abstracts a compiled function template so that closures can be
// represented without importing the graph package. The coordination graph's
// Template type implements it.
type FuncRef interface {
	// FuncName returns the Delirium-level function name ("" for anonymous).
	FuncName() string
	// ParamCount returns the number of parameters the function expects.
	ParamCount() int
}

// Closure is a first-class function value: a pointer to the function's
// coordination graph plus the values captured from enclosing scopes. When a
// closure reaches a call-closure operator the run-time system expands the
// graph dynamically (§3, §7).
type Closure struct {
	Fn  FuncRef
	Env []Value
}

// Kind returns KindClosure.
func (*Closure) Kind() Kind { return KindClosure }

// String identifies the closure by function name and capture count.
func (c *Closure) String() string {
	name := "<anon>"
	if c.Fn != nil && c.Fn.FuncName() != "" {
		name = c.Fn.FuncName()
	}
	if len(c.Env) == 0 {
		return fmt.Sprintf("closure(%s)", name)
	}
	return fmt.Sprintf("closure(%s/%d captured)", name, len(c.Env))
}

// Truthy converts a value used as a conditional test. Booleans test
// themselves, integers test non-zero, and NULL is false; every other kind is
// an error, reported by the caller with position information.
func Truthy(v Value) (bool, error) {
	switch x := v.(type) {
	case Bool:
		return bool(x), nil
	case Int:
		return x != 0, nil
	case Null:
		return false, nil
	default:
		return false, fmt.Errorf("cannot use %s value as condition", v.Kind())
	}
}

// Equal reports structural equality for atomic values and tuples, and
// identity for blocks and closures. It backs the is_equal builtin and the
// compiler's constant-folding pass.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch x := a.(type) {
	case Null:
		_, ok := b.(Null)
		return ok
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Int:
		switch y := b.(type) {
		case Int:
			return x == y
		case Float:
			return Float(x) == y
		}
		return false
	case Float:
		switch y := b.(type) {
		case Float:
			return x == y
		case Int:
			return x == Float(y)
		}
		return false
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Tuple:
		y, ok := b.(Tuple)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case *Block:
		y, ok := b.(*Block)
		return ok && x == y
	case *Closure:
		y, ok := b.(*Closure)
		return ok && x == y
	default:
		return false
	}
}
