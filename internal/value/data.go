package value

import "fmt"

// FloatVec is a 1-D float payload, the workhorse of array-oriented
// scientific operators.
type FloatVec []float64

// Copy returns an independent copy of the vector.
func (v FloatVec) Copy() BlockData {
	out := make(FloatVec, len(v))
	copy(out, v)
	return out
}

// Size returns the element count.
func (v FloatVec) Size() int { return len(v) }

// IntVec is a 1-D integer payload.
type IntVec []int64

// Copy returns an independent copy of the vector.
func (v IntVec) Copy() BlockData {
	out := make(IntVec, len(v))
	copy(out, v)
	return out
}

// Size returns the element count.
func (v IntVec) Size() int { return len(v) }

// FloatGrid is a dense row-major 2-D float payload used by the retina
// model's layer arrays and the convolution operators.
type FloatGrid struct {
	Rows, Cols int
	Cells      []float64
}

// NewFloatGrid allocates a zeroed Rows x Cols grid.
func NewFloatGrid(rows, cols int) *FloatGrid {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("value: negative grid dimensions %dx%d", rows, cols))
	}
	return &FloatGrid{Rows: rows, Cols: cols, Cells: make([]float64, rows*cols)}
}

// At returns the element at (r, c).
func (g *FloatGrid) At(r, c int) float64 { return g.Cells[r*g.Cols+c] }

// Set stores v at (r, c).
func (g *FloatGrid) Set(r, c int, v float64) { g.Cells[r*g.Cols+c] = v }

// Row returns the slice aliasing row r.
func (g *FloatGrid) Row(r int) []float64 { return g.Cells[r*g.Cols : (r+1)*g.Cols] }

// Copy returns an independent copy of the grid.
func (g *FloatGrid) Copy() BlockData {
	out := &FloatGrid{Rows: g.Rows, Cols: g.Cols, Cells: make([]float64, len(g.Cells))}
	copy(out.Cells, g.Cells)
	return out
}

// Size returns the cell count.
func (g *FloatGrid) Size() int { return len(g.Cells) }

// SubGrid returns an independent copy of rows [r0, r1).
func (g *FloatGrid) SubGrid(r0, r1 int) *FloatGrid {
	if r0 < 0 || r1 > g.Rows || r0 > r1 {
		panic(fmt.Sprintf("value: SubGrid[%d:%d) out of range for %d rows", r0, r1, g.Rows))
	}
	out := NewFloatGrid(r1-r0, g.Cols)
	copy(out.Cells, g.Cells[r0*g.Cols:r1*g.Cols])
	return out
}

// Opaque adapts an application-specific payload to BlockData using an
// explicit copy function. Applications whose state is a struct (a chess
// board, a parse tree, a scene description) wrap it in Opaque rather than
// defining a new BlockData type.
type Opaque struct {
	Payload  interface{}
	Words    int
	CopyFunc func(interface{}) interface{}
}

// Copy applies CopyFunc; a nil CopyFunc marks an immutable payload that may
// be shared structurally.
func (o *Opaque) Copy() BlockData {
	if o.CopyFunc == nil {
		return &Opaque{Payload: o.Payload, Words: o.Words}
	}
	return &Opaque{Payload: o.CopyFunc(o.Payload), Words: o.Words, CopyFunc: o.CopyFunc}
}

// Size returns the declared word count.
func (o *Opaque) Size() int { return o.Words }
