package value

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindStr: "string", KindTuple: "tuple", KindBlock: "block", KindClosure: "closure",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind should embed value, got %q", got)
	}
}

func TestAtomicValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null{}, KindNull},
		{Bool(true), KindBool},
		{Int(42), KindInt},
		{Float(2.5), KindFloat},
		{Str("hi"), KindStr},
		{Tuple{Int(1)}, KindTuple},
		{NewBlock(FloatVec{1}), KindBlock},
		{&Closure{}, KindClosure},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v.Kind() = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null{}, "NULL"},
		{Bool(true), "true"},
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{Str("a\"b"), `"a\"b"`},
		{Tuple{Int(1), Str("x")}, `<1, "x">`},
		{Tuple{nil}, "<?>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
		err  bool
	}{
		{Bool(true), true, false},
		{Bool(false), false, false},
		{Int(0), false, false},
		{Int(3), true, false},
		{Null{}, false, false},
		{Str("x"), false, true},
		{Float(1), false, true},
		{Tuple{}, false, true},
	}
	for _, c := range cases {
		got, err := Truthy(c.v)
		if (err != nil) != c.err {
			t.Errorf("Truthy(%v) err = %v, want err=%v", c.v, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("Truthy(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestEqualAtoms(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), true},
		{Float(1), Int(1), true},
		{Float(1.5), Float(1.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Int(1), false},
		{Null{}, Null{}, true},
		{Null{}, Int(0), false},
		{nil, nil, true},
		{Tuple{Int(1), Int(2)}, Tuple{Int(1), Int(2)}, true},
		{Tuple{Int(1)}, Tuple{Int(1), Int(2)}, false},
		{Tuple{Int(1)}, Int(1), false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualBlocksByIdentity(t *testing.T) {
	a := NewBlock(FloatVec{1, 2})
	b := NewBlock(FloatVec{1, 2})
	if !Equal(a, a) {
		t.Error("block must equal itself")
	}
	if Equal(a, b) {
		t.Error("distinct blocks with equal payloads must not be Equal")
	}
	c1 := &Closure{}
	c2 := &Closure{}
	if !Equal(c1, c1) || Equal(c1, c2) {
		t.Error("closures compare by identity")
	}
}

func TestEqualIntFloatSymmetry(t *testing.T) {
	f := func(i int64) bool {
		return Equal(Int(i), Float(float64(i))) == Equal(Float(float64(i)), Int(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualReflexiveOnInts(t *testing.T) {
	f := func(i int64) bool { return Equal(Int(i), Int(i)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
