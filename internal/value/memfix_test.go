package value

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// The accounting invariant: Allocated == Freed after every block dies, no
// matter which call site drops the last reference. Before the sink field,
// a last Release through a nil (or different) *BlockStats lost the Freed
// increment and the teardown assertions reported leaks that were not there.
func TestReleaseNilStatsFreedAccounting(t *testing.T) {
	var st BlockStats
	b := NewBlockStats(FloatVec{1}, &st)
	b.Retain(&st)
	if b.Release(nil) {
		t.Fatal("first release freed a twice-referenced block")
	}
	if !b.Release(nil) {
		t.Fatal("last release did not report freeing")
	}
	if st.Freed != 1 {
		t.Fatalf("Freed = %d through nil-stats call sites, want 1", st.Freed)
	}
	if st.Releases != 0 {
		t.Fatalf("Releases = %d, want 0: call-site activity must not be charged to the sink", st.Releases)
	}

	// A different sink at the last release: Freed still lands on the
	// allocating sink, Releases on the call site's.
	var other BlockStats
	c := NewBlockStats(FloatVec{1}, &st)
	c.Release(&other)
	if st.Freed != 2 || other.Freed != 0 {
		t.Fatalf("Freed: sink=%d other=%d, want 2 and 0", st.Freed, other.Freed)
	}
	if other.Releases != 1 {
		t.Fatalf("other.Releases = %d, want 1", other.Releases)
	}

	// Bare NewBlock has no sink; the call-site stats are the only fallback.
	var fallback BlockStats
	d := NewBlock(FloatVec{1})
	d.Release(&fallback)
	if fallback.Freed != 1 {
		t.Fatalf("fallback Freed = %d, want 1", fallback.Freed)
	}
}

// Writable must bump Allocated before it releases the source reference:
// releasing first opens a window where a concurrent counter reader sees
// Freed ahead of Allocated. Run with -race; the sampler also asserts the
// ordering invariant directly.
func TestWritableConcurrentFanOutAccounting(t *testing.T) {
	const goroutines = 8
	const rounds = 200
	var st BlockStats
	for round := 0; round < rounds; round++ {
		b := NewBlockStats(FloatVec{1, 2, 3, 4}, &st)
		for i := 1; i < goroutines; i++ {
			b.Retain(&st)
		}
		var stop atomic.Bool
		var sampler sync.WaitGroup
		sampler.Add(1)
		go func() {
			defer sampler.Done()
			for !stop.Load() {
				// Load Freed first: if Freed <= Allocated ever fails, a
				// Writable released its source before accounting the copy.
				freed := atomic.LoadInt64(&st.Freed)
				alloc := atomic.LoadInt64(&st.Allocated)
				if freed > alloc {
					t.Errorf("Freed %d > Allocated %d", freed, alloc)
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w, _ := b.Writable(&st)
				if !w.Exclusive() {
					t.Error("Writable returned a shared block")
				}
				w.Release(&st)
			}()
		}
		wg.Wait()
		stop.Store(true)
		sampler.Wait()
	}
	if st.Allocated != st.Freed {
		t.Fatalf("quiescent: Allocated %d != Freed %d", st.Allocated, st.Freed)
	}
}

func TestStringSafeOnRecycledBlock(t *testing.T) {
	var st BlockStats
	b := NewBlockStats(FloatVec{1, 2}, &st)
	data, ok := b.FreeOwned(&st)
	if !ok || data == nil {
		t.Fatal("FreeOwned on an exclusive block must detach the payload")
	}
	s := b.String()
	if !strings.Contains(s, "recycled") {
		t.Fatalf("String() on recycled block = %q", s)
	}
	if b.Size() != 0 {
		t.Fatalf("Size() on recycled block = %d, want 0", b.Size())
	}
}

func TestFreeOwnedSharedDegradesToRelease(t *testing.T) {
	var st BlockStats
	b := NewBlockStats(FloatVec{1}, &st)
	b.Retain(&st)
	data, ok := b.FreeOwned(&st)
	if ok || data != nil {
		t.Fatal("FreeOwned must refuse a shared block")
	}
	if b.Refs() != 1 {
		t.Fatalf("refs = %d after degraded FreeOwned, want 1", b.Refs())
	}
	if b.Data() == nil {
		t.Fatal("degraded FreeOwned must not detach the payload")
	}
	b.Release(&st)
	if st.Allocated != st.Freed {
		t.Fatalf("Allocated %d != Freed %d", st.Allocated, st.Freed)
	}
}

func TestTakeDataOnlyWhenDead(t *testing.T) {
	b := NewBlock(FloatVec{1})
	if d := b.TakeData(); d != nil {
		t.Fatal("TakeData on a live block must return nil")
	}
	b.Release(nil)
	if d := b.TakeData(); d == nil {
		t.Fatal("TakeData on a dead block must detach the payload")
	}
	if d := b.TakeData(); d != nil {
		t.Fatal("second TakeData must return nil")
	}
}
