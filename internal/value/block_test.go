package value

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewBlockStartsExclusive(t *testing.T) {
	b := NewBlock(FloatVec{1, 2, 3})
	if !b.Exclusive() {
		t.Error("fresh block must be exclusive")
	}
	if b.Refs() != 1 {
		t.Errorf("Refs = %d, want 1", b.Refs())
	}
	if b.Size() != 3 {
		t.Errorf("Size = %d, want 3", b.Size())
	}
	if b.Affinity() != NoAffinity {
		t.Errorf("Affinity = %d, want NoAffinity", b.Affinity())
	}
}

func TestRetainReleaseCounts(t *testing.T) {
	var st BlockStats
	b := NewBlockStats(FloatVec{1}, &st)
	b.Retain(&st)
	b.Retain(&st)
	if b.Refs() != 3 || b.Exclusive() {
		t.Fatalf("Refs = %d after two retains, want 3", b.Refs())
	}
	b.Release(&st)
	b.Release(&st)
	if !b.Exclusive() {
		t.Fatal("should be exclusive after releases")
	}
	b.Release(&st)
	if st.Allocated != 1 || st.Retains != 2 || st.Releases != 3 || st.Freed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-release must panic")
		}
	}()
	b := NewBlock(FloatVec{1})
	b.Release(nil)
	b.Release(nil)
}

func TestWritableExclusiveNoCopy(t *testing.T) {
	var st BlockStats
	b := NewBlockStats(FloatVec{1, 2}, &st)
	w, copied := b.Writable(&st)
	if copied {
		t.Error("exclusive block must not be copied")
	}
	if w != b {
		t.Error("exclusive Writable must return the same block")
	}
	if st.Copies != 0 {
		t.Errorf("Copies = %d, want 0", st.Copies)
	}
}

func TestWritableSharedCopies(t *testing.T) {
	var st BlockStats
	b := NewBlockStats(FloatVec{1, 2}, &st)
	b.SetAffinity(2)
	b.Retain(&st) // a second consumer holds a reference
	w, copied := b.Writable(&st)
	if !copied {
		t.Fatal("shared block must be copied")
	}
	if w == b {
		t.Fatal("copy must be a distinct block")
	}
	if !w.Exclusive() {
		t.Error("copy must be exclusive")
	}
	if b.Refs() != 1 {
		t.Errorf("original Refs = %d after CoW, want 1 (other consumer)", b.Refs())
	}
	if w.Affinity() != 2 {
		t.Errorf("copy affinity = %d, want inherited 2", w.Affinity())
	}
	// Mutating the copy must not affect the original (determinism).
	w.Data().(FloatVec)[0] = 99
	if b.Data().(FloatVec)[0] != 1 {
		t.Error("copy-on-write leaked mutation into original")
	}
	if st.Copies != 1 {
		t.Errorf("Copies = %d, want 1", st.Copies)
	}
}

func TestConcurrentRetainRelease(t *testing.T) {
	var st BlockStats
	b := NewBlockStats(FloatVec{1}, &st)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Retain(&st)
				b.Release(&st)
			}
		}()
	}
	wg.Wait()
	if b.Refs() != 1 {
		t.Errorf("Refs = %d after balanced concurrent ops, want 1", b.Refs())
	}
}

func TestRetainReleaseWalkTuples(t *testing.T) {
	var st BlockStats
	b1 := NewBlockStats(FloatVec{1}, &st)
	b2 := NewBlockStats(IntVec{2}, &st)
	v := Tuple{b1, Tuple{b2, Int(5)}, Str("x")}
	Retain(v, &st)
	if b1.Refs() != 2 || b2.Refs() != 2 {
		t.Fatalf("refs after tuple Retain: %d, %d; want 2, 2", b1.Refs(), b2.Refs())
	}
	Release(v, &st)
	Release(v, &st)
	if b1.Refs() != 0 || b2.Refs() != 0 {
		t.Fatalf("refs after releases: %d, %d; want 0, 0", b1.Refs(), b2.Refs())
	}
}

func TestRetainWalksClosureEnv(t *testing.T) {
	b := NewBlock(FloatVec{1})
	c := &Closure{Env: []Value{b}}
	Retain(c, nil)
	if b.Refs() != 2 {
		t.Errorf("Refs = %d after closure Retain, want 2", b.Refs())
	}
	Release(c, nil)
	if b.Refs() != 1 {
		t.Errorf("Refs = %d after closure Release, want 1", b.Refs())
	}
}

func TestBlocksCollector(t *testing.T) {
	b1 := NewBlock(FloatVec{1})
	b2 := NewBlock(FloatVec{2, 3})
	v := Tuple{Int(1), b1, Tuple{b2}, &Closure{Env: []Value{b1}}}
	got := Blocks(v, nil)
	if len(got) != 3 {
		t.Fatalf("Blocks found %d, want 3 (b1 twice via closure)", len(got))
	}
	if TotalSize(v) != 1+2+1 {
		t.Errorf("TotalSize = %d, want 4", TotalSize(v))
	}
}

func TestFloatGrid(t *testing.T) {
	g := NewFloatGrid(3, 4)
	g.Set(1, 2, 7.5)
	if g.At(1, 2) != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", g.At(1, 2))
	}
	if len(g.Row(1)) != 4 || g.Row(1)[2] != 7.5 {
		t.Errorf("Row(1) = %v", g.Row(1))
	}
	cp := g.Copy().(*FloatGrid)
	cp.Set(1, 2, 0)
	if g.At(1, 2) != 7.5 {
		t.Error("grid Copy must be deep")
	}
	sub := g.SubGrid(1, 3)
	if sub.Rows != 2 || sub.Cols != 4 || sub.At(0, 2) != 7.5 {
		t.Errorf("SubGrid wrong: %+v", sub)
	}
	sub.Set(0, 2, 1)
	if g.At(1, 2) != 7.5 {
		t.Error("SubGrid must copy cells")
	}
}

func TestFloatGridBounds(t *testing.T) {
	g := NewFloatGrid(2, 2)
	for _, fn := range []func(){
		func() { g.SubGrid(-1, 1) },
		func() { g.SubGrid(0, 3) },
		func() { g.SubGrid(2, 1) },
		func() { NewFloatGrid(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range grid op")
				}
			}()
			fn()
		}()
	}
}

func TestVecCopiesAreDeep(t *testing.T) {
	fv := FloatVec{1, 2}
	fc := fv.Copy().(FloatVec)
	fc[0] = 9
	if fv[0] != 1 {
		t.Error("FloatVec.Copy must be deep")
	}
	iv := IntVec{3, 4}
	ic := iv.Copy().(IntVec)
	ic[1] = 9
	if iv[1] != 4 {
		t.Error("IntVec.Copy must be deep")
	}
}

func TestOpaqueCopy(t *testing.T) {
	type board struct{ cells []int }
	orig := &board{cells: []int{1, 2}}
	o := &Opaque{
		Payload: orig,
		Words:   2,
		CopyFunc: func(p interface{}) interface{} {
			b := p.(*board)
			nc := make([]int, len(b.cells))
			copy(nc, b.cells)
			return &board{cells: nc}
		},
	}
	cp := o.Copy().(*Opaque)
	cp.Payload.(*board).cells[0] = 99
	if orig.cells[0] != 1 {
		t.Error("Opaque.Copy must invoke CopyFunc deeply")
	}
	if cp.Size() != 2 {
		t.Errorf("copy Size = %d, want 2", cp.Size())
	}
	imm := &Opaque{Payload: orig, Words: 5}
	cp2 := imm.Copy().(*Opaque)
	if cp2.Payload != interface{}(orig) {
		t.Error("nil CopyFunc shares the payload")
	}
}

func TestWritablePropertyRefcountInvariant(t *testing.T) {
	// Property: after Writable, the returned block is always exclusive and a
	// copy happens iff the block was shared.
	f := func(extraRefs uint8) bool {
		var st BlockStats
		b := NewBlockStats(FloatVec{1, 2, 3}, &st)
		n := int(extraRefs % 5)
		for i := 0; i < n; i++ {
			b.Retain(&st)
		}
		w, copied := b.Writable(&st)
		if !w.Exclusive() {
			return false
		}
		return copied == (n > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
