package value

import "testing"

func TestPoolClassRounding(t *testing.T) {
	cases := []struct{ words, class int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := poolClass(c.words); got != c.class {
			t.Errorf("poolClass(%d) = %d, want %d", c.words, got, c.class)
		}
	}
}

func TestPoolRecyclesMatchingType(t *testing.T) {
	var p BlockPool
	v := make(FloatVec, 8)
	v[3] = 42
	p.Put(v)
	if p.Puts() != 1 {
		t.Fatalf("Puts = %d, want 1", p.Puts())
	}
	// An Ints request of the same class must not get the FloatVec.
	iv := p.Ints(8)
	if p.Hits() != 0 {
		t.Fatal("Ints must not be served from a FloatVec entry")
	}
	_ = iv
	// A Floats request reuses it, zeroed.
	fv := p.Floats(8)
	if p.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", p.Hits())
	}
	for i, x := range fv {
		if x != 0 {
			t.Fatalf("recycled FloatVec not zeroed at %d: %v", i, x)
		}
	}
	if len(fv) != 8 {
		t.Fatalf("len = %d, want 8", len(fv))
	}
}

func TestPoolOpaqueShellReuse(t *testing.T) {
	var p BlockPool
	o := &Opaque{Payload: "old", Words: 16, CopyFunc: func(x interface{}) interface{} { return x }}
	p.Put(o)
	got := p.Opaque("new", 16)
	if got != o {
		t.Fatal("expected the recycled Opaque shell")
	}
	if got.Payload != "new" || got.Words != 16 || got.CopyFunc != nil {
		t.Fatalf("shell not fully overwritten: %+v", got)
	}
	if p.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", p.Hits())
	}
}

func TestPoolGridReuseZeroesAndResizes(t *testing.T) {
	var p BlockPool
	g := NewFloatGrid(4, 8)
	g.Set(2, 2, 7)
	p.Put(g)
	// Same cell count, different shape: reusable, reshaped, zeroed.
	got := p.Grid(8, 4)
	if p.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", p.Hits())
	}
	if got.Rows != 8 || got.Cols != 4 {
		t.Fatalf("shape %dx%d, want 8x4", got.Rows, got.Cols)
	}
	for i, v := range got.Cells {
		if v != 0 {
			t.Fatalf("recycled grid not zeroed at %d: %v", i, v)
		}
	}
}

func TestPoolClassCap(t *testing.T) {
	var p BlockPool
	for i := 0; i < poolClassCap+10; i++ {
		p.Put(make(FloatVec, 8))
	}
	if p.Puts() != poolClassCap {
		t.Fatalf("Puts = %d, want cap %d", p.Puts(), poolClassCap)
	}
}

func TestPoolRejectsUnknownPayloads(t *testing.T) {
	var p BlockPool
	p.Put(nil)
	p.Put(floatGridRowView{}) // not a recyclable type
	if p.Puts() != 0 {
		t.Fatalf("Puts = %d, want 0", p.Puts())
	}
}

// floatGridRowView is a throwaway BlockData the pool must reject.
type floatGridRowView struct{}

func (floatGridRowView) Copy() BlockData { return floatGridRowView{} }
func (floatGridRowView) Size() int       { return 4 }

func TestPoolNilReceiverAllocates(t *testing.T) {
	var p *BlockPool
	p.Put(make(FloatVec, 4)) // no-op, no panic
	if v := p.Floats(4); len(v) != 4 {
		t.Fatal("nil pool Floats must allocate")
	}
	if v := p.Ints(4); len(v) != 4 {
		t.Fatal("nil pool Ints must allocate")
	}
	if g := p.Grid(2, 2); g.Rows != 2 || g.Cols != 2 {
		t.Fatal("nil pool Grid must allocate")
	}
	if o := p.Opaque("x", 4); o == nil || o.Payload != "x" {
		t.Fatal("nil pool Opaque must allocate")
	}
	if p.Hits() != 0 || p.Puts() != 0 {
		t.Fatal("nil pool counters must read zero")
	}
}

func TestPoolCapacityMismatchFallsThrough(t *testing.T) {
	var p BlockPool
	p.Put(make(FloatVec, 5)) // class 3 (rounds to 8)
	// Same class but larger length than capacity: must allocate fresh.
	v := p.Floats(8)
	if len(v) != 8 {
		t.Fatalf("len = %d, want 8", len(v))
	}
	if p.Hits() != 0 {
		t.Fatal("a too-small recycled vector must not be reused")
	}
}
