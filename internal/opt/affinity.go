// affinity.go implements the affinity-plan pass: a whole-program sweep
// over the linked coordination graph that stamps advisory placement hints
// for the executors (paper §9.3's operator/data affinity, made static).
//
// The pass consumes two earlier analyses. The memory plan's per-edge
// ownership facts (MemOwnedArgs) identify edges whose value is an
// exclusively-owned block — exactly the payloads worth keeping hot in the
// producer's cache. Fusion's bottom levels (BLevel) rank chains by
// remaining weight, splitting nodes into a heavy tier (on or near the
// critical path — these should stay on their producer's worker) and a
// light tier (cheap leaves that thieves may migrate freely).
//
// For each schedulable node the pass picks at most one preferred-producer
// edge: a single-consumer in edge (the producer's only output edge, not
// split, not the template result) whose completion should hand the node
// straight to the completing worker's own deque. Owned-block edges win
// over plain single-consumer edges; among those, the heaviest producer
// (max BLevel) wins; ties break to the lowest port so the choice is
// deterministic. Fused cluster heads inherit the best external edge over
// all members, since deliveries to members gate on the head.
//
// The hints are advisory only: they influence WHERE a ready node runs,
// never whether or when it becomes runnable, so results are bit-identical
// with hints on or off (DESIGN decision 16).
package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// AffinityPlan is the result of the affinity pass: per-template hint
// listings plus program-wide totals.
type AffinityPlan struct {
	// Templates in deterministic (name-sorted, subtemplates inline) order.
	Templates []AffinityPlanTemplate
	// TotalNodes counts every schedulable node the pass visited.
	TotalNodes int
	// Hinted counts nodes stamped with a preferred producer.
	Hinted int
	// Heavy counts hinted nodes in the heavy tier (pinned to producer).
	Heavy int
	// OwnedEdges counts hints that ride a memplan-owned port (a proven
	// exclusively-owned block travels the edge).
	OwnedEdges int
}

// AffinityPlanTemplate reports one template's hints.
type AffinityPlanTemplate struct {
	Name  string
	Hints []AffinityHint
}

// AffinityHint reports one preferred-producer stamp.
type AffinityHint struct {
	Node     int
	Label    string
	Producer int
	Heavy    bool
	Owned    bool
}

// heavyTierDen sets the heavy-tier cut: a hinted node is heavy when its
// bottom level is at least 1/2 of the template's critical path, i.e. it
// sits on the upper half of some remaining chain.
const heavyTierDen = 2

// PlanAffinity stamps every node's affinity fields (AffPreferred,
// AffHeavy) and returns the report; prog.AffinityPlanned is set so
// executors configured with AffinityHints activate producer-preferred
// dispatch. Run it after FuseGraph (for bottom levels and clusters) and
// PlanMemory (for ownership facts) when those passes are on; without them
// the pass still produces valid — just less selective — hints.
func PlanAffinity(prog *graph.Program) *AffinityPlan {
	p := &AffinityPlan{}
	seen := make(map[*graph.Template]bool)
	names := make([]string, 0, len(prog.Templates))
	for name := range prog.Templates {
		names = append(names, name)
	}
	sort.Strings(names)
	var visit func(t *graph.Template)
	visit = func(t *graph.Template) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		p.process(t)
		for _, nd := range t.Nodes {
			visit(nd.Then)
			visit(nd.Else)
			visit(nd.Callee)
		}
	}
	for _, name := range names {
		visit(prog.Templates[name])
	}
	visit(prog.Main)
	prog.AffinityPlanned = true
	return p
}

// eligibleProducer reports whether the edge u -> (consumer) may carry an
// affinity hint: u must be scheduled (not filled at activation creation),
// feed exactly one consumer, not split ownership, and not be the template
// result (result values leave through the continuation, so the consumer
// lives in another activation and the producer's worker is unknowable
// statically... it is still the completing worker at run time, but the
// cross-template id spaces do not line up, so such edges are skipped).
func eligibleProducer(u *graph.Node, t *graph.Template) bool {
	switch u.Kind {
	case graph.ParamNode, graph.ConstNode:
		return false
	}
	return len(u.Out) == 1 && !u.Spread && u.ID != t.Result
}

// process stamps one template and records its report entry.
func (p *AffinityPlan) process(t *graph.Template) {
	rep := AffinityPlanTemplate{Name: t.Name}
	var crit int64
	for _, nd := range t.Nodes {
		if nd.BLevel > crit {
			crit = nd.BLevel
		}
	}
	// Producers per node, one entry per in edge, with the consumer port
	// (for the ownership lookup).
	type inEdge struct{ prod, port int }
	preds := make([][]inEdge, len(t.Nodes))
	for _, nd := range t.Nodes {
		for _, e := range nd.Out {
			preds[e.To] = append(preds[e.To], inEdge{nd.ID, e.Port})
		}
	}
	clusterOf := func(id int) *graph.Cluster {
		nd := t.Nodes[id]
		if nd.Fused {
			return t.Nodes[nd.FuseHead].FuseCluster
		}
		return nil
	}
	for _, nd := range t.Nodes {
		nd.AffPreferred = -1
		switch nd.Kind {
		case graph.ParamNode, graph.ConstNode:
			continue
		}
		if nd.Fused && nd.FuseCluster == nil {
			continue // non-head member: never scheduled individually
		}
		p.TotalNodes++
		// Candidate in edges: the node's own, or — for a cluster head —
		// the external in edges of every member (deliveries to members
		// gate on the head, so any of their producers can hand the
		// cluster over hot).
		var cand []inEdge
		candOwner := make(map[inEdge]*graph.Node)
		if c := nd.FuseCluster; c != nil {
			for _, id := range c.Nodes {
				m := t.Nodes[id]
				for _, ie := range preds[id] {
					if clusterOf(ie.prod) != c {
						cand = append(cand, ie)
						candOwner[ie] = m
					}
				}
			}
		} else {
			for _, ie := range preds[nd.ID] {
				cand = append(cand, ie)
				candOwner[ie] = nd
			}
		}
		best, bestOwned := inEdge{-1, -1}, false
		var bestBL int64
		for _, ie := range cand {
			u := t.Nodes[ie.prod]
			if !eligibleProducer(u, t) {
				continue
			}
			m := candOwner[ie]
			owned := ie.port < len(m.MemOwnedArgs) && m.MemOwnedArgs[ie.port]
			// Owned beats unowned, then heavier producer, then lower
			// port, then lower producer id — fully deterministic.
			better := false
			switch {
			case best.prod < 0:
				better = true
			case owned != bestOwned:
				better = owned
			case u.BLevel != bestBL:
				better = u.BLevel > bestBL
			case ie.port != best.port:
				better = ie.port < best.port
			default:
				better = ie.prod < best.prod
			}
			if better {
				best, bestOwned, bestBL = ie, owned, u.BLevel
			}
		}
		if best.prod < 0 {
			continue
		}
		nd.AffPreferred = best.prod
		nd.AffHeavy = heavyTierDen*nd.BLevel >= crit
		p.Hinted++
		if nd.AffHeavy {
			p.Heavy++
		}
		if bestOwned {
			p.OwnedEdges++
		}
		rep.Hints = append(rep.Hints, AffinityHint{
			Node: nd.ID, Label: nodeLabel(nd), Producer: best.prod,
			Heavy: nd.AffHeavy, Owned: bestOwned})
	}
	p.Templates = append(p.Templates, rep)
}

// Report renders the plan as a human-readable listing for delc/delprof.
func (p *AffinityPlan) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "affinity plan: %d/%d nodes hinted (%d heavy, %d on owned-block edges)\n",
		p.Hinted, p.TotalNodes, p.Heavy, p.OwnedEdges)
	for _, t := range p.Templates {
		if len(t.Hints) == 0 {
			continue
		}
		fmt.Fprintf(&b, "template %s:\n", t.Name)
		for _, h := range t.Hints {
			tier := "light"
			if h.Heavy {
				tier = "heavy"
			}
			edge := ""
			if h.Owned {
				edge = ", owned block"
			}
			fmt.Fprintf(&b, "  n%d %s <- n%d (%s%s)\n", h.Node, h.Label, h.Producer, tier, edge)
		}
	}
	return b.String()
}
