package opt

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/sema"
)

// BodySnapshot is a frozen copy of every function body, taken between the
// local-rewrite phase and the inline phase so that parallel per-function
// inlining never reads a body another worker is rewriting.
type BodySnapshot struct {
	bodies map[string]*ast.FuncDecl
	sizes  map[string]int
}

// Snapshot captures the current bodies and node counts of every function.
func Snapshot(info *sema.Info) *BodySnapshot {
	s := &BodySnapshot{
		bodies: make(map[string]*ast.FuncDecl, len(info.Funcs)),
		sizes:  make(map[string]int, len(info.Funcs)),
	}
	for name, f := range info.Funcs {
		s.bodies[name] = ast.CloneFunc(f.Decl)
		s.sizes[name] = ast.Count(f.Decl.Body)
	}
	return s
}

// InlineFunc expands calls to small, non-recursive functions inside f's
// body, reading callee bodies from the snapshot. An expanded call becomes a
// let binding the parameters to the argument expressions around a
// fresh-renamed copy of the callee body; capture names stay free and
// resolve at the inline site exactly as they would through the closure
// environment (alpha-renaming makes them unique program-wide).
func InlineFunc(info *sema.Info, f *ast.FuncDecl, snap *BodySnapshot, opts Options, st *Stats) {
	if opts.Level < 2 {
		return
	}
	inl := &inliner{info: info, snap: snap, budget: opts.inlineBudget(), host: f.Name, st: st}
	f.Body = inl.rewrite(f.Body, true)
}

type inliner struct {
	info   *sema.Info
	snap   *BodySnapshot
	budget int
	host   string
	st     *Stats
	nextID int
}

// rewrite walks the body. tail tracks whether the current position is a
// tail position: tail calls are not inlined, preserving the runtime's O(1)
// activation reuse for loops (an inlined self-tail-call would unroll once
// and then still recurse).
func (in *inliner) rewrite(e ast.Expr, tail bool) ast.Expr {
	switch x := e.(type) {
	case nil, *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.NullLit, *ast.Ident:
		return e
	case *ast.Call:
		nc := &ast.Call{P: x.P, Fun: x.Fun, Tail: x.Tail}
		for _, a := range x.Args {
			nc.Args = append(nc.Args, in.rewrite(a, false))
		}
		if !tail {
			if r, ok := in.tryInline(nc); ok {
				return r
			}
		}
		return nc
	case *ast.TupleExpr:
		nt := &ast.TupleExpr{P: x.P}
		for _, el := range x.Elems {
			nt.Elems = append(nt.Elems, in.rewrite(el, false))
		}
		return nt
	case *ast.Let:
		nl := &ast.Let{P: x.P}
		for _, b := range x.Binds {
			if b.Kind == ast.BindFunc {
				nl.Binds = append(nl.Binds, b)
				continue
			}
			nl.Binds = append(nl.Binds, &ast.Bind{P: b.P, Kind: b.Kind, Names: b.Names,
				Init: in.rewrite(b.Init, false)})
		}
		nl.Body = in.rewrite(x.Body, tail)
		return nl
	case *ast.If:
		return &ast.If{P: x.P,
			Cond: in.rewrite(x.Cond, false),
			Then: in.rewrite(x.Then, tail),
			Else: in.rewrite(x.Else, tail)}
	case *ast.Iterate:
		ni := &ast.Iterate{P: x.P}
		for _, iv := range x.Vars {
			ni.Vars = append(ni.Vars, &ast.IterVar{P: iv.P, Name: iv.Name,
				Init: in.rewrite(iv.Init, false), Next: in.rewrite(iv.Next, false)})
		}
		ni.Cond = in.rewrite(x.Cond, false)
		ni.Result = in.rewrite(x.Result, false)
		return ni
	default:
		return e
	}
}

// tryInline expands a direct call to a small non-recursive function.
func (in *inliner) tryInline(call *ast.Call) (ast.Expr, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Ref != ast.RefFunc {
		return nil, false
	}
	callee, ok := in.snap.bodies[id.Name]
	if !ok || callee.Recursive || id.Name == in.host {
		return nil, false
	}
	if in.snap.sizes[id.Name] > in.budget {
		return nil, false
	}
	if len(call.Args) != len(callee.Params) {
		return nil, false // arity error already reported by sema
	}
	if containsBindFunc(callee.Body) {
		// A nested definition's lifted declaration captures the callee's
		// binder names; renaming them at the inline site would strand the
		// capture lookups. Such callees stay out of line.
		return nil, false
	}
	body := in.freshen(callee)
	atomic.AddInt64(&in.st.Inlined, 1)
	if len(callee.Params) == 0 {
		return body, true
	}
	let := &ast.Let{P: call.P, Body: body}
	for i, p := range callee.Params {
		let.Binds = append(let.Binds, &ast.Bind{P: call.P, Kind: ast.BindValue,
			Names: []string{p + in.suffix()}, Init: call.Args[i]})
	}
	return let, true
}

// suffix returns the rename suffix of the most recent freshen call.
func (in *inliner) suffix() string {
	return fmt.Sprintf("@%s%d", in.host, in.nextID)
}

// freshen clones the callee body and renames every binder defined inside it
// (parameters included, via the rename map applied to identifier uses) so
// repeated inlining of the same function cannot collide. Free names —
// including the callee's captures — are left untouched.
func (in *inliner) freshen(callee *ast.FuncDecl) ast.Expr {
	in.nextID++
	suffix := in.suffix()
	rename := make(map[string]string, len(callee.Params))
	for _, p := range callee.Params {
		rename[p] = p + suffix
	}
	body := ast.Clone(callee.Body)
	collectBinders(body, suffix, rename)
	return ast.Rewrite(body, func(e ast.Expr) ast.Expr {
		if ident, ok := e.(*ast.Ident); ok {
			if nn, ok := rename[ident.Name]; ok {
				return &ast.Ident{P: ident.P, Name: nn, Ref: ident.Ref}
			}
		}
		return e
	})
}

// containsBindFunc reports whether any let in the tree defines a nested
// function.
func containsBindFunc(e ast.Expr) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) bool {
		if let, ok := x.(*ast.Let); ok {
			for _, b := range let.Binds {
				if b.Kind == ast.BindFunc {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// collectBinders renames binder occurrences in place and records the
// mapping for identifier rewriting.
func collectBinders(e ast.Expr, suffix string, rename map[string]string) {
	ast.Walk(e, func(x ast.Expr) bool {
		switch n := x.(type) {
		case *ast.Let:
			for _, b := range n.Binds {
				if b.Kind == ast.BindFunc {
					// A nested function definition inside an inline
					// candidate would need a second lift; the budget keeps
					// candidates small enough that sema-lifted binds are
					// rare, and the bind is a no-op in the graph. Leave it.
					continue
				}
				for i, name := range b.Names {
					nn := name + suffix
					rename[name] = nn
					b.Names[i] = nn
				}
			}
		case *ast.Iterate:
			for _, iv := range n.Vars {
				nn := iv.Name + suffix
				rename[iv.Name] = nn
				iv.Name = nn
			}
		}
		return true
	})
}
