package opt

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/sema"
)

// cseExpr eliminates duplicate pure sub-expressions within each
// unconditional evaluation region.
//
// In the coordination-graph model every binding of a let evaluates eagerly,
// while the arms of a conditional, the stages of an iterate, and nested
// function bodies are deferred subgraphs. A pure expression may therefore
// be computed once and shared exactly when its duplicate occurrences lie in
// the same region: the set of expressions reachable from one let without
// crossing an If arm, an Iterate, or a function boundary. Hoisting across
// those boundaries could execute work (or raise a run-time error such as
// division by zero) that the original program avoided.
func cseExpr(info *sema.Info, e ast.Expr, fname string, round int, st *Stats) ast.Expr {
	c := &cser{info: info, fname: fname, round: round, st: st}
	// The optimizer may run the local fixpoint more than once over the
	// same body (the level-2 pipeline re-optimizes after inlining, with
	// round restarting at 0). Seed the ID counter past every cse binder
	// already present so regenerated names can never collide with a
	// surviving earlier binder — a collision breaks the alpha-renaming
	// invariant graph conversion depends on.
	c.nextID = maxCSEID(e, fname)
	return c.rewrite(e)
}

// maxCSEID returns the largest trailing ID of any cse$fname$… binder in
// the tree (0 when none exist).
func maxCSEID(e ast.Expr, fname string) int {
	prefix := "cse$" + fname + "$"
	max := 0
	ast.Walk(e, func(x ast.Expr) bool {
		let, ok := x.(*ast.Let)
		if !ok {
			return true
		}
		for _, b := range let.Binds {
			for _, name := range b.Names {
				rest, ok := strings.CutPrefix(name, prefix)
				if !ok {
					continue
				}
				if i := strings.LastIndexByte(rest, '$'); i >= 0 {
					rest = rest[i+1:]
				}
				if id, err := strconv.Atoi(rest); err == nil && id > max {
					max = id
				}
			}
		}
		return true
	})
	return max
}

type cser struct {
	info   *sema.Info
	fname  string
	round  int
	st     *Stats
	nextID int
}

// rewrite walks the tree top-down so outer regions are processed before the
// deferred subtrees they contain.
func (c *cser) rewrite(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case nil, *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.NullLit, *ast.Ident:
		return e
	case *ast.Call:
		nc := &ast.Call{P: x.P, Fun: c.rewrite(x.Fun), Tail: x.Tail}
		for _, a := range x.Args {
			nc.Args = append(nc.Args, c.rewrite(a))
		}
		return nc
	case *ast.TupleExpr:
		nt := &ast.TupleExpr{P: x.P}
		for _, el := range x.Elems {
			nt.Elems = append(nt.Elems, c.rewrite(el))
		}
		return nt
	case *ast.If:
		return &ast.If{P: x.P, Cond: c.rewrite(x.Cond), Then: c.rewrite(x.Then), Else: c.rewrite(x.Else)}
	case *ast.Iterate:
		ni := &ast.Iterate{P: x.P}
		for _, iv := range x.Vars {
			ni.Vars = append(ni.Vars, &ast.IterVar{P: iv.P, Name: iv.Name, Init: c.rewrite(iv.Init), Next: c.rewrite(iv.Next)})
		}
		ni.Cond = c.rewrite(x.Cond)
		ni.Result = c.rewrite(x.Result)
		return ni
	case *ast.Let:
		let := c.cseLet(x)
		nl := &ast.Let{P: let.P}
		for _, b := range let.Binds {
			if b.Kind == ast.BindFunc {
				nl.Binds = append(nl.Binds, b)
				continue
			}
			nl.Binds = append(nl.Binds, &ast.Bind{P: b.P, Kind: b.Kind, Names: b.Names,
				Init: c.rewrite(b.Init)})
		}
		nl.Body = c.rewrite(let.Body)
		return nl
	default:
		return e
	}
}

// cseLet finds duplicated pure calls in the region rooted at this let and
// binds each to a fresh name.
func (c *cser) cseLet(let *ast.Let) *ast.Let {
	counts := make(map[string]int)
	c.countRegion(let, counts)

	shared := make(map[string]string) // printed form -> fresh binder
	var extra []*ast.Bind
	replace := func(e ast.Expr) (ast.Expr, bool) {
		call, ok := e.(*ast.Call)
		if !ok || !c.pureCall(call) {
			return e, false
		}
		key := ast.Print(call)
		if counts[key] < 2 {
			return e, false
		}
		name, ok := shared[key]
		if !ok {
			c.nextID++
			name = fmt.Sprintf("cse$%s$%d$%d", c.fname, c.round, c.nextID)
			shared[key] = name
			extra = append(extra, &ast.Bind{P: call.P, Kind: ast.BindValue,
				Names: []string{name}, Init: ast.Clone(call)})
		} else {
			atomic.AddInt64(&c.st.CSE, 1)
		}
		return &ast.Ident{P: call.P, Name: name, Ref: ast.RefLet}, true
	}

	out := &ast.Let{P: let.P, Binds: make([]*ast.Bind, 0, len(let.Binds))}
	for _, b := range let.Binds {
		if b.Kind == ast.BindFunc {
			out.Binds = append(out.Binds, b)
			continue
		}
		out.Binds = append(out.Binds, &ast.Bind{P: b.P, Kind: b.Kind, Names: b.Names,
			Init: c.replaceRegion(b.Init, replace)})
	}
	out.Body = c.replaceRegion(let.Body, replace)
	out.Binds = append(out.Binds, extra...)
	return out
}

// pureCall reports whether the call invokes a pure operator and every
// argument is itself region-safe (literal, identifier, or pure call).
func (c *cser) pureCall(call *ast.Call) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Ref != ast.RefOperator {
		return false
	}
	op, ok := c.info.Registry.Lookup(id.Name)
	if !ok || !op.Pure {
		return false
	}
	for _, a := range call.Args {
		switch x := a.(type) {
		case *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.NullLit, *ast.Ident:
		case *ast.Call:
			if !c.pureCall(x) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// countRegion tallies printed forms of pure calls in the let's region.
func (c *cser) countRegion(let *ast.Let, counts map[string]int) {
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Call:
			if c.pureCall(x) {
				counts[ast.Print(x)]++
			}
			visit(x.Fun)
			for _, a := range x.Args {
				visit(a)
			}
		case *ast.TupleExpr:
			for _, el := range x.Elems {
				visit(el)
			}
		case *ast.If:
			visit(x.Cond) // the test evaluates eagerly; the arms do not
		case *ast.Iterate:
			for _, iv := range x.Vars {
				visit(iv.Init) // initializers evaluate eagerly
			}
		case *ast.Let:
			// A nested let introduces scope; stop to keep hoisting simple.
		}
	}
	for _, b := range let.Binds {
		if b.Kind != ast.BindFunc {
			visit(b.Init)
		}
	}
	visit(let.Body)
}

// replaceRegion applies replace to every region expression, recursing with
// the same boundaries as countRegion.
func (c *cser) replaceRegion(e ast.Expr, replace func(ast.Expr) (ast.Expr, bool)) ast.Expr {
	switch x := e.(type) {
	case nil, *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.NullLit, *ast.Ident:
		return e
	case *ast.Call:
		if r, done := replace(x); done {
			return r
		}
		// The callee expression evaluates eagerly too — recurse into it,
		// mirroring countRegion. Skipping it would leave counted
		// occurrences (e.g. the test of a first-class conditional select
		// in function position) permanently irreplaceable, and the
		// fixpoint would mint a fresh alias bind for the same expression
		// every round instead of converging.
		nc := &ast.Call{P: x.P, Fun: c.replaceRegion(x.Fun, replace), Tail: x.Tail}
		for _, a := range x.Args {
			nc.Args = append(nc.Args, c.replaceRegion(a, replace))
		}
		return nc
	case *ast.TupleExpr:
		nt := &ast.TupleExpr{P: x.P}
		for _, el := range x.Elems {
			nt.Elems = append(nt.Elems, c.replaceRegion(el, replace))
		}
		return nt
	case *ast.If:
		return &ast.If{P: x.P, Cond: c.replaceRegion(x.Cond, replace), Then: x.Then, Else: x.Else}
	case *ast.Iterate:
		ni := &ast.Iterate{P: x.P, Cond: x.Cond, Result: x.Result}
		for _, iv := range x.Vars {
			ni.Vars = append(ni.Vars, &ast.IterVar{P: iv.P, Name: iv.Name,
				Init: c.replaceRegion(iv.Init, replace), Next: iv.Next})
		}
		return ni
	default:
		return e
	}
}
