package opt

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestAffinityChainHint(t *testing.T) {
	// use's only producer is peek (single consumer, scheduled, not the
	// result), so use gets the hint; peek's producer is a param, so it
	// stays unhinted.
	g, _ := plan(t, "main(x) use(peek(x))", nil)
	p := PlanAffinity(g)
	if !g.AffinityPlanned {
		t.Fatal("AffinityPlanned not set")
	}
	pk := node(t, g, g.Main, "peek")
	use := node(t, g, g.Main, "use")
	if pk.AffPreferred != -1 {
		t.Fatalf("peek.AffPreferred = %d, want -1 (param producer)", pk.AffPreferred)
	}
	if use.AffPreferred != pk.ID {
		t.Fatalf("use.AffPreferred = %d, want peek n%d", use.AffPreferred, pk.ID)
	}
	if p.Hinted != 1 {
		t.Fatalf("Hinted = %d, want 1", p.Hinted)
	}
	if !strings.Contains(p.Report(), "affinity plan: 1/") {
		t.Fatalf("report missing summary: %q", p.Report())
	}
}

func TestAffinityOwnedEdgeWins(t *testing.T) {
	// join's port 0 producer (peek of a param) is unowned; port 1 (use of a
	// fresh mk) carries a memplan-owned block. Ownership must beat the
	// lower-port tie-break.
	src := `main(x)
  let a = mk()
      b = use(a)
      c = peek(x)
  in join(c, b)`
	g, _ := plan(t, src, nil)
	p := PlanAffinity(g)
	use := node(t, g, g.Main, "use")
	join := node(t, g, g.Main, "join")
	if join.AffPreferred != use.ID {
		t.Fatalf("join.AffPreferred = %d, want use n%d (owned edge)", join.AffPreferred, use.ID)
	}
	if p.OwnedEdges < 1 {
		t.Fatalf("OwnedEdges = %d, want >= 1", p.OwnedEdges)
	}
}

func TestAffinityMultiConsumerIneligible(t *testing.T) {
	// The shared peek feeds both downstream peeks, so neither may prefer
	// it: pinning both consumers to its worker would serialize the fan-out.
	src := `main(x)
  let a = peek(x)
      b = peek(a)
      c = peek(a)
  in join(b, c)`
	g, _ := plan(t, src, nil)
	PlanAffinity(g)
	var fanOut *graph.Node
	for _, nd := range g.Main.Nodes {
		if nd.Name == "peek" && len(nd.Out) == 2 {
			fanOut = nd
		}
	}
	if fanOut == nil {
		t.Fatal("no two-consumer peek found")
	}
	for _, e := range fanOut.Out {
		if got := g.Main.Nodes[e.To].AffPreferred; got == fanOut.ID {
			t.Fatalf("consumer n%d prefers multi-consumer producer n%d", e.To, fanOut.ID)
		}
	}
}

func TestAffinityClusterHeadExternalEdge(t *testing.T) {
	// After fusion, join+peek form a straight-line cluster whose external
	// producers are mk (owned fresh block) and use(x). The head's hint must
	// aggregate over member in-edges and pick the owned mk edge.
	src := `main(x)
  let a = mk()
      b = use(x)
      c = join(a, b)
  in peek(c)`
	g, _ := plan(t, src, nil) // memory plan first, like the compile driver
	fp := FuseGraph(g, nil)
	if fp.Clusters == 0 {
		t.Skip("fusion did not form a cluster for this shape")
	}
	p := PlanAffinity(g)
	join := node(t, g, g.Main, "join")
	if join.FuseCluster == nil {
		t.Skipf("join is not the cluster head (head=n%d)", join.FuseHead)
	}
	mk := node(t, g, g.Main, "mk")
	if join.AffPreferred != mk.ID {
		t.Fatalf("cluster head AffPreferred = %d, want mk n%d", join.AffPreferred, mk.ID)
	}
	if p.Hinted == 0 {
		t.Fatal("no hints stamped")
	}
}

func TestAffinityHeavyTier(t *testing.T) {
	// With fusion's bottom levels computed, a hinted node whose remaining
	// chain spans at least half the critical path lands in the heavy tier.
	// join sits two ops from the end of a three-op critical path, so its
	// mk hint must be heavy.
	src := `main(x)
  let a = mk()
      b = use(x)
      c = join(a, b)
  in peek(c)`
	g, _ := plan(t, src, nil)
	FuseGraph(g, nil)
	p := PlanAffinity(g)
	if p.Hinted == 0 {
		t.Fatal("no hints stamped")
	}
	heavy, light := 0, 0
	for _, tmpl := range p.Templates {
		for _, h := range tmpl.Hints {
			if h.Heavy {
				heavy++
			} else {
				light++
			}
		}
	}
	if heavy == 0 {
		t.Fatalf("no heavy-tier hints (heavy=%d light=%d)", heavy, light)
	}
}
