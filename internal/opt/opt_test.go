package opt

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/macro"
	"repro/internal/operator"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/value"
)

// optimize parses, analyzes, and optimizes src at the given level.
func optimize(t *testing.T, src string, level int) (*sema.Info, *Stats) {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags.Err())
	}
	expanded := macro.ExpandProgram(prog, &diags)
	info := sema.Analyze(expanded, operator.Builtins(), &diags)
	if diags.HasErrors() {
		t.Fatalf("analyze: %v", diags.Err())
	}
	st := Optimize(info, Options{Level: level})
	return info, st
}

func mainBody(info *sema.Info) string {
	return ast.Print(info.Main().Decl.Body)
}

func TestConstantFolding(t *testing.T) {
	info, st := optimize(t, "main() add(mul(2, 3), 4)", 1)
	if got := mainBody(info); got != "10" {
		t.Errorf("body = %q, want 10", got)
	}
	if st.Folded < 2 {
		t.Errorf("Folded = %d, want >= 2", st.Folded)
	}
}

func TestFoldingDeclinesOnRuntimeError(t *testing.T) {
	info, _ := optimize(t, "main() div(1, 0)", 1)
	if got := mainBody(info); got != "div(1, 0)" {
		t.Errorf("body = %q; division by zero must surface at run time", got)
	}
}

func TestConditionalFolding(t *testing.T) {
	info, _ := optimize(t, "main() if is_equal(1, 1) then 42 else 7", 1)
	if got := mainBody(info); got != "42" {
		t.Errorf("body = %q, want 42", got)
	}
	info2, _ := optimize(t, "main() if is_equal(1, 2) then 42 else 7", 1)
	if got := mainBody(info2); got != "7" {
		t.Errorf("body = %q, want 7", got)
	}
}

func TestConstantPropagation(t *testing.T) {
	info, st := optimize(t, `
main()
  let n = 4
  in add(n, n)
`, 1)
	if got := mainBody(info); got != "8" {
		t.Errorf("body = %q, want 8 (propagate + fold + dce)", got)
	}
	if st.Propagated == 0 || st.DeadBinds == 0 {
		t.Errorf("stats = %v", st)
	}
}

func TestTupleDecompositionSplit(t *testing.T) {
	info, _ := optimize(t, `
main()
  let <a, b> = <3, 4>
  in add(a, b)
`, 1)
	if got := mainBody(info); got != "7" {
		t.Errorf("body = %q, want 7", got)
	}
}

func TestDCERemovesUnusedPureBinding(t *testing.T) {
	info, st := optimize(t, `
main()
  let unused = add(1, 2)
      keep = incr(3)
  in keep
`, 1)
	body := mainBody(info)
	if strings.Contains(body, "unused") {
		t.Errorf("unused binding survived:\n%s", body)
	}
	if st.DeadBinds == 0 {
		t.Error("DeadBinds not counted")
	}
	// With everything folded and propagated the body collapses to 4.
	if body != "4" {
		t.Errorf("body = %q, want 4", body)
	}
}

func TestDCEKeepsImpureOperatorCall(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse("t.dlr", `
main()
  let log = emit(1)
  in 42
`, &diags)
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{Name: "emit", Arity: 1, Pure: false, Fn: dummyFn})
	info := sema.Analyze(prog, reg, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	Optimize(info, Options{Level: 2})
	if !strings.Contains(mainBody(info), "emit(1)") {
		t.Errorf("impure call removed:\n%s", mainBody(info))
	}
}

func TestDCEKeepsFunctionCallBindings(t *testing.T) {
	// Function calls may diverge; an unused binding must still execute.
	info, _ := optimize(t, `
spin(n) spin(n)
main()
  let x = spin(1)
  in 5
`, 2)
	if !strings.Contains(mainBody(info), "spin(1)") {
		t.Errorf("function-call binding removed:\n%s", mainBody(info))
	}
}

func TestCSEEliminatesDuplicatePureCalls(t *testing.T) {
	info, st := optimize(t, `
main(x)
  let a = add(mul(x, x), 1)
      b = add(mul(x, x), 2)
  in <a, b>
`, 1)
	body := mainBody(info)
	if st.CSE == 0 {
		t.Fatalf("no CSE applied:\n%s", body)
	}
	if strings.Count(body, "mul(") != 1 {
		t.Errorf("mul should appear once after CSE:\n%s", body)
	}
}

func TestCSEDoesNotHoistAcrossConditionalArms(t *testing.T) {
	info, st := optimize(t, `
main(x, c)
  if c
    then div(100, x)
    else add(div(100, x), 1)
`, 1)
	if st.CSE != 0 {
		t.Errorf("CSE across conditional arms is unsound:\n%s", mainBody(info))
	}
}

func TestCSEHandlesEagerIfCond(t *testing.T) {
	// The conditional's test evaluates eagerly in the same region.
	info, st := optimize(t, `
main(x)
  let y = mul(x, x)
  in if lt(mul(x, x), 10) then y else 0
`, 1)
	body := mainBody(info)
	if st.CSE == 0 {
		t.Errorf("expected CSE between binding and if condition:\n%s", body)
	}
}

func TestInlineSmallFunction(t *testing.T) {
	info, st := optimize(t, `
square(v) mul(v, v)
main() add(square(3), square(4))
`, 2)
	body := mainBody(info)
	if st.Inlined < 2 {
		t.Fatalf("Inlined = %d, want 2:\n%s", st.Inlined, body)
	}
	// After inlining + folding the whole body is the constant 25.
	if body != "25" {
		t.Errorf("body = %q, want 25", body)
	}
}

func TestInlineDeclinesRecursive(t *testing.T) {
	info, st := optimize(t, `
fact(n) if is_equal(n, 0) then 1 else mul(n, fact(sub(n, 1)))
main() fact(5)
`, 2)
	if st.Inlined != 0 {
		t.Errorf("recursive function inlined:\n%s", mainBody(info))
	}
}

func TestInlineDeclinesTailCalls(t *testing.T) {
	info, st := optimize(t, `
tiny(v) incr(v)
main() tiny(5)
`, 2)
	// main's body call is a tail call; it stays out of line.
	if st.Inlined != 0 {
		t.Errorf("tail call inlined:\n%s", mainBody(info))
	}
	if got := mainBody(info); got != "tiny(5)" {
		t.Errorf("body = %q", got)
	}
}

func TestInlineRenamesBinders(t *testing.T) {
	info, st := optimize(t, `
wrap(v)
  let t = incr(v)
  in mul(t, t)
main(a, b) add(add(wrap(a), wrap(b)), 1)
`, 2)
	body := mainBody(info)
	if st.Inlined < 2 {
		t.Fatalf("Inlined = %d:\n%s", st.Inlined, body)
	}
	// Two inlined copies must not bind the same name twice: a sema re-check
	// of the printed program (with binder uniqueness relaxed to let-level
	// duplication) is approximated by checking the binder spellings differ.
	first := strings.Index(body, "t@")
	last := strings.LastIndex(body, "t@")
	if first == -1 {
		t.Fatalf("renamed binder not found:\n%s", body)
	}
	if first == last {
		t.Errorf("expected two distinct renamed copies:\n%s", body)
	}
}

func TestInlineRespectsBudget(t *testing.T) {
	src := `
big(v) add(add(add(add(v,1),2),3),add(add(add(v,4),5),6))
main(x) big(x)
`
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	info := sema.Analyze(macro.ExpandProgram(prog, &diags), operator.Builtins(), &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	st := &Stats{}
	snap := Snapshot(info)
	InlineFunc(info, info.Funcs["main"].Decl, snap, Options{Level: 2, InlineBudget: 3}, st)
	if st.Inlined != 0 {
		t.Error("budget not respected")
	}
}

func TestInlinePreservesCaptureNames(t *testing.T) {
	info, _ := optimize(t, `
main(k)
  let addk(v) add(v, k)
      r = add(addk(1), addk(2))
  in r
`, 2)
	// addk captures k. If it is inlined, the free use of k must survive
	// unrenamed; if not inlined the calls survive. Either way the program
	// still analyzes: re-parse and re-analyze the printed output.
	printed := ast.PrintProgram(info.Prog)
	var diags source.DiagList
	// Strip $ and @ from names for re-parse (they are internal spellings).
	clean := strings.NewReplacer("$", "_", "@", "_").Replace(printed)
	prog2 := parser.Parse("t.dlr", clean, &diags)
	if diags.HasErrors() {
		t.Fatalf("optimized program does not re-parse:\n%s\n%v", clean, diags.Err())
	}
	_ = prog2
}

func TestLevelZeroIsIdentity(t *testing.T) {
	src := "main() add(1, 2)"
	info, st := optimize(t, src, 0)
	if got := mainBody(info); got != "add(1, 2)" {
		t.Errorf("level 0 rewrote the program: %q", got)
	}
	if *st != (Stats{}) {
		t.Errorf("level 0 stats = %v", st)
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	src := `
square(v) mul(v, v)
main(x)
  let a = square(x)
      b = add(mul(2, 3), x)
  in <a, b, if lt(x, 0) then neg(x) else x>
`
	info1, _ := optimize(t, src, 2)
	first := ast.PrintProgram(info1.Prog)
	Optimize(info1, Options{Level: 2})
	second := ast.PrintProgram(info1.Prog)
	if first != second {
		t.Errorf("second optimization changed the program:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

func TestStatsString(t *testing.T) {
	st := &Stats{Folded: 1, Propagated: 2, CSE: 3, DeadBinds: 4, Inlined: 5}
	want := "folded=1 propagated=2 cse=3 dead=4 inlined=5"
	if got := st.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

var dummyFn operator.Func = func(_ operator.Context, _ []value.Value) (value.Value, error) {
	return value.Null{}, nil
}
