// fuse.go implements the operator-fusion pass: a whole-program clustering
// of the linked coordination graph that merges chains (and delay-free small
// trees) of single-consumer nodes into supernodes the runtime dispatches
// once and executes as a straight-line sequence — no ready-queue round
// trips, no counter traffic, and no scheduling between members.
//
// Fusion is only applied where it is provably parallelism-neutral. A node v
// may join the cluster of its sole producer u when every *other* input of v
// arrives either from a node filled at activation creation (param/const) or
// from an ancestor of the cluster head. By induction every external input
// of every member is then an ancestor of the head, so along any such edge
// p -> v there is a path p ~> q -> h to the head: the head's own last
// input is always the last to arrive, and the fused supernode becomes
// runnable at exactly the tick the unfused head would have. Nothing is
// delayed, no new serialization is introduced, and — because only the
// tail's output leaves the cluster — no cross-activation cycle can form.
//
// Alongside clustering, the pass computes each node's static bottom level
// (the weight of the longest chain from the node to any sink of its
// template, flowing through call and cond boundaries), seeded from delprof
// timing data when a profile is supplied and unit weights otherwise. The
// executors use bottom levels to order simultaneously-ready nodes so the
// longest remaining chain is pulled first.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// FusePlan is the result of the fusion pass: per-template clusters for
// reporting, plus program-wide totals.
type FusePlan struct {
	// Templates in deterministic (name-sorted, branches inline) order.
	Templates []FusePlanTemplate
	// TotalNodes counts every node the pass visited.
	TotalNodes int
	// FusedNodes counts nodes placed inside some cluster.
	FusedNodes int
	// Clusters counts fused supernodes over the whole program.
	Clusters int
	// DispatchesSaved counts ready-queue dispatches eliminated per single
	// execution of each template: sum over clusters of (members - 1).
	DispatchesSaved int
	// Profiled records whether operator weights came from a delprof profile.
	Profiled bool
	// UnmatchedProfileKeys lists profile entries (sorted) that matched no
	// operator node in the program — a renamed operator, a stale profile, or
	// a profile taken from a different workload. Operators the profile does
	// not cover fall back to unit weight, never zero, so a partial profile
	// can skew priorities but can never make a real operator look free;
	// the unmatched list is surfaced as a compile warning so the skew is
	// visible.
	UnmatchedProfileKeys []string
	// Advisories are static granularity warnings, computed only for
	// profiled plans: an operator holding a dominant share of a template's
	// static critical path (its weight summed along the heaviest
	// bottom-level chain) is flagged as a split candidate. The runtime
	// advisor (runtime.CritPath.Advise) is the measured counterpart; this
	// one needs no execution, so delc can render it at compile time.
	Advisories []string
}

// FusePlanTemplate reports one template's clusters and critical path.
type FusePlanTemplate struct {
	Name string
	// CritLen is the template's static critical-path weight (max bottom
	// level over its nodes).
	CritLen int64
	// Clusters lists the fused supernodes, head first.
	Clusters []FusePlanCluster
}

// FusePlanCluster reports one supernode.
type FusePlanCluster struct {
	Head   int
	Nodes  []int
	Labels []string // member operator/callee names or kinds, in order
	ExtIn  int      // input edges arriving from outside the cluster
}

// fuser carries the pass state across templates.
type fuser struct {
	prof map[string]int64
	// opNames records every operator name seen while processing, for the
	// unmatched-profile-key diff.
	opNames map[string]bool
	// critLen memoizes per-template critical-path weights; inProgress
	// breaks recursion cycles (a recursive call contributes one unit,
	// since its true depth is dynamic).
	critLen    map[*graph.Template]int64
	inProgress map[*graph.Template]bool
	plan       *FusePlan
}

// FuseGraph clusters prog's templates into supernodes and stamps every
// node's fusion fields (Fused, FuseHead, FuseCluster, FuseInternalOut,
// BLevel). prof optionally maps operator names to mean execution cost (the
// delprof summary); nil or missing entries fall back to unit weight. It
// returns the report; prog.Fused is set so the executors activate supernode
// dispatch and bottom-level ordering. Safe to call once per program, after
// linking (and after PlanMemory when both passes run).
func FuseGraph(prog *graph.Program, prof map[string]int64) *FusePlan {
	f := &fuser{
		prof:       prof,
		opNames:    make(map[string]bool),
		critLen:    make(map[*graph.Template]int64),
		inProgress: make(map[*graph.Template]bool),
		plan:       &FusePlan{Profiled: len(prof) > 0},
	}
	names := make([]string, 0, len(prog.Templates))
	for name := range prog.Templates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.critical(prog.Templates[name])
	}
	f.critical(prog.Main)
	for key := range prof {
		if !f.opNames[key] {
			f.plan.UnmatchedProfileKeys = append(f.plan.UnmatchedProfileKeys, key)
		}
	}
	sort.Strings(f.plan.UnmatchedProfileKeys)
	prog.Fused = true
	return f.plan
}

// critical returns t's static critical-path weight, processing the template
// (clustering + bottom levels) on first visit.
func (f *fuser) critical(t *graph.Template) int64 {
	if t == nil {
		return 1
	}
	if v, ok := f.critLen[t]; ok {
		return v
	}
	if f.inProgress[t] {
		return 1
	}
	f.inProgress[t] = true
	v := f.process(t)
	f.inProgress[t] = false
	f.critLen[t] = v
	return v
}

// weight is the static cost of executing node n once, in profile units.
func (f *fuser) weight(n *graph.Node) int64 {
	switch n.Kind {
	case graph.OpNode:
		f.opNames[n.Name] = true
		if w := f.prof[n.Name]; w > 0 {
			return w
		}
		return 1
	case graph.CallNode:
		return f.critical(n.Callee)
	case graph.CondNode:
		thenL, elseL := f.critical(n.Then), f.critical(n.Else)
		if elseL > thenL {
			thenL = elseL
		}
		return 1 + thenL
	default:
		return 1
	}
}

// fusableSource reports whether u's single out edge may be fused: u must
// execute synchronously (its output is produced by the time execNode
// returns), feed exactly one consumer, not split ownership across several
// consumers, and not be the template's result (result values go to the
// continuation, outside the template).
func fusableSource(u *graph.Node, t *graph.Template) bool {
	switch u.Kind {
	case graph.OpNode, graph.TupleNode, graph.DetupleNode, graph.MakeClosureNode:
	default:
		return false
	}
	return len(u.Out) == 1 && !u.Spread && u.ID != t.Result
}

// fusableTarget reports whether v may join a cluster as a member. Calls,
// closure calls, and conds are allowed — but since they complete
// asynchronously (through a child activation) they can never pass
// fusableSource, so they only ever appear as cluster tails.
func fusableTarget(v *graph.Node) bool {
	switch v.Kind {
	case graph.OpNode, graph.TupleNode, graph.DetupleNode, graph.MakeClosureNode,
		graph.CondNode, graph.CallNode, graph.CallClosureNode:
		return true
	}
	return false
}

// process clusters one template, stamps its nodes, and returns its
// critical-path weight.
func (f *fuser) process(t *graph.Template) int64 {
	nn := len(t.Nodes)
	f.plan.TotalNodes += nn

	// Forward topological order (graphs are acyclic by construction; the
	// compiler validates every template it emits).
	preds := make([][]int, nn) // producers per node, one entry per in edge
	indeg := make([]int, nn)
	for _, nd := range t.Nodes {
		for _, e := range nd.Out {
			preds[e.To] = append(preds[e.To], nd.ID)
			indeg[e.To]++
		}
	}
	topo := make([]int, 0, nn)
	for id := 0; id < nn; id++ {
		if indeg[id] == 0 {
			topo = append(topo, id)
		}
	}
	for i := 0; i < len(topo); i++ {
		for _, e := range t.Nodes[topo[i]].Out {
			if indeg[e.To]--; indeg[e.To] == 0 {
				topo = append(topo, e.To)
			}
		}
	}

	// Bottom levels by reverse topological sweep; the template's critical
	// path is the max over nodes. Computed before clustering so branch and
	// callee templates (visited through weight) are processed first.
	var crit int64
	for i := len(topo) - 1; i >= 0; i-- {
		nd := t.Nodes[topo[i]]
		var best int64
		for _, e := range nd.Out {
			if b := t.Nodes[e.To].BLevel; b > best {
				best = b
			}
		}
		nd.BLevel = f.weight(nd) + best
		if nd.BLevel > crit {
			crit = nd.BLevel
		}
	}

	// Ancestor bitsets, in topological order: anc(v) = union of anc(p) + p
	// over v's producers.
	words := (nn + 63) / 64
	anc := make([]uint64, nn*words)
	for _, id := range topo {
		row := anc[id*words : (id+1)*words]
		for _, p := range preds[id] {
			prow := anc[p*words : (p+1)*words]
			for w := range row {
				row[w] |= prow[w]
			}
			row[p/64] |= 1 << (p % 64)
		}
	}
	isAnc := func(of, p int) bool {
		return anc[of*words+p/64]&(1<<(p%64)) != 0
	}

	// Greedy clustering in topological order: try to extend each node's
	// cluster (or start one) across its single out edge. First producer
	// wins — a node joins at most one cluster — and a member is appended
	// only when the delay-free rule holds: every external input of the new
	// member is a param/const or an ancestor of the head.
	clusterOf := make([]int, nn)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	var members [][]int
	for _, id := range topo {
		u := t.Nodes[id]
		if !fusableSource(u, t) {
			continue
		}
		v := t.Nodes[u.Out[0].To]
		if !fusableTarget(v) || clusterOf[v.ID] >= 0 {
			continue
		}
		head := id
		if ci := clusterOf[id]; ci >= 0 {
			head = members[ci][0]
		}
		ok := true
		for _, p := range preds[v.ID] {
			if p == id || (clusterOf[p] >= 0 && clusterOf[p] == clusterOf[id]) {
				continue
			}
			switch t.Nodes[p].Kind {
			case graph.ParamNode, graph.ConstNode:
				continue
			}
			if !isAnc(head, p) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		ci := clusterOf[id]
		if ci < 0 {
			ci = len(members)
			members = append(members, []int{id})
			clusterOf[id] = ci
		}
		members[ci] = append(members[ci], v.ID)
		clusterOf[v.ID] = ci
	}

	// Static granularity advisory (profiled plans only; unit weights make
	// every chain look flat): walk the heaviest bottom-level chain and
	// attribute its weight per operator. An operator owning a dominant
	// share of the chain is a split candidate regardless of scheduling.
	if f.plan.Profiled && crit > 0 {
		f.adviseStatic(t, topo, crit)
	}

	// Stamp nodes and record the report (every cluster has >= 2 members by
	// construction).
	rep := FusePlanTemplate{Name: t.Name, CritLen: crit}
	for _, ms := range members {
		head := ms[0]
		extIn := 0
		for _, id := range ms {
			for _, p := range preds[id] {
				if clusterOf[p] != clusterOf[id] {
					extIn++
				}
			}
		}
		c := &graph.Cluster{Index: len(t.Clusters), Head: head, Nodes: ms, ExtIn: extIn}
		t.Clusters = append(t.Clusters, c)
		labels := make([]string, len(ms))
		for i, id := range ms {
			nd := t.Nodes[id]
			nd.Fused = true
			nd.FuseHead = head
			nd.FuseInternalOut = i < len(ms)-1
			labels[i] = nodeLabel(nd)
		}
		t.Nodes[head].FuseCluster = c
		rep.Clusters = append(rep.Clusters, FusePlanCluster{
			Head: head, Nodes: ms, Labels: labels, ExtIn: extIn})
		f.plan.FusedNodes += len(ms)
		f.plan.Clusters++
		f.plan.DispatchesSaved += len(ms) - 1
	}
	f.plan.Templates = append(f.plan.Templates, rep)
	return crit
}

// staticDominance is the share of a template's static critical path one
// operator must hold before the plan flags it as a split candidate; it
// matches the runtime advisor's dominance threshold.
const staticDominance = 0.40

// adviseStatic appends a granularity advisory for t when one operator's
// weight dominates the heaviest bottom-level chain.
func (f *fuser) adviseStatic(t *graph.Template, topo []int, crit int64) {
	start := -1
	for _, id := range topo {
		if t.Nodes[id].BLevel == crit {
			start = id
			break
		}
	}
	share := make(map[string]int64)
	for id := start; id >= 0; {
		nd := t.Nodes[id]
		if nd.Kind == graph.OpNode {
			share[nd.Name] += f.weight(nd)
		}
		next, best := -1, int64(-1)
		for _, e := range nd.Out {
			if b := t.Nodes[e.To].BLevel; b > best {
				best, next = b, e.To
			}
		}
		id = next
	}
	names := make([]string, 0, len(share))
	for n := range share {
		names = append(names, n)
	}
	sort.Strings(names)
	var topName string
	var topW int64
	for _, n := range names {
		if share[n] > topW {
			topName, topW = n, share[n]
		}
	}
	if topName == "" || float64(topW) < staticDominance*float64(crit) {
		return
	}
	f.plan.Advisories = append(f.plan.Advisories, fmt.Sprintf(
		"template %s: `%s` holds %d%% of the static critical path — consider splitting it into finer operators",
		t.Name, topName, 100*topW/crit))
}

// Report renders the plan as a human-readable listing, one template per
// block with its clusters and critical-path weight.
func (p *FusePlan) Report() string {
	var b strings.Builder
	src := "unit weights"
	if p.Profiled {
		src = "profile weights"
	}
	fmt.Fprintf(&b, "fusion plan (%s): %d clusters, %d/%d nodes fused, %d dispatches saved per pass\n",
		src, p.Clusters, p.FusedNodes, p.TotalNodes, p.DispatchesSaved)
	if len(p.UnmatchedProfileKeys) > 0 {
		fmt.Fprintf(&b, "warning: %d profile key(s) matched no operator (fell back to unit weight elsewhere): %s\n",
			len(p.UnmatchedProfileKeys), strings.Join(p.UnmatchedProfileKeys, ", "))
	}
	for _, a := range p.Advisories {
		fmt.Fprintf(&b, "advisory: %s\n", a)
	}
	for _, t := range p.Templates {
		if len(t.Clusters) == 0 {
			continue
		}
		fmt.Fprintf(&b, "template %s (critical path %d):\n", t.Name, t.CritLen)
		for i, c := range t.Clusters {
			fmt.Fprintf(&b, "  supernode %d: %s (head n%d, %d external inputs)\n",
				i, strings.Join(c.Labels, " -> "), c.Head, c.ExtIn)
		}
	}
	return b.String()
}
