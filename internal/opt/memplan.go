// memplan.go implements the memory-plan pass: a whole-program ownership
// analysis over the linked coordination graph that lets the runtime elide
// reference-count traffic, hand blocks to destructive operators in place
// without the copy-on-write check, and recycle freed payloads through
// per-worker free lists.
//
// The analysis computes, per node, whether the node's output is
// *exclusively owned* — every block reachable from it has reference count
// exactly 1 when it leaves the node. Ownership then flows along an edge
// when the producer is owned, the edge is the producer's only consumer, and
// the producer is not the template's result (a result value is shared with
// the continuation). The facts are interprocedural: a template's parameters
// are owned only if every call site passes owned arguments, and a call's
// output is owned only if the callee's result is.
//
// The fixpoint is optimistic (everything starts owned) and monotonically
// falsifying, so it terminates in at most O(templates × params) rounds.
// Soundness does not rest on the static analysis alone: the runtime
// verifies the output-ownership claim after every planned operator
// execution and copies any result block that ends up shared (a duplicating
// operator, or a wrong Operator.Fresh annotation), so a bad fact costs a
// visible copy, never determinism.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// MemPlan is the result of the memory-plan pass: per-template node facts
// for reporting, plus program-wide totals.
type MemPlan struct {
	// Templates in deterministic (name-sorted, branches inline) order.
	Templates []MemPlanTemplate
	// TotalNodes counts every node the pass visited.
	TotalNodes int
	// OwnedOutputs counts nodes whose output is proven exclusively owned.
	OwnedOutputs int
	// OwnedPorts counts input ports proven to receive exclusively-owned
	// values.
	OwnedPorts int
	// InPlacePorts counts destructive operator ports among OwnedPorts: each
	// is statically guaranteed to take the in-place path with zero
	// copy-on-write.
	InPlacePorts int
	// TransferEnvSites counts closure-call nodes whose environment transfer
	// elides a retain/release pair per environment block.
	TransferEnvSites int
}

// MemPlanTemplate reports one template's planned nodes.
type MemPlanTemplate struct {
	Name  string
	Nodes []MemPlanNode
}

// MemPlanNode reports the plan facts stamped on one node.
type MemPlanNode struct {
	ID          int
	Label       string // operator/callee name or node kind
	Owned       bool   // output exclusively owned
	OwnedArgs   []int  // input ports receiving owned values
	InPlaceArgs []int  // owned ports that are also destructive
	TransferEnv bool
}

// tmplFacts is the per-template analysis state.
type tmplFacts struct {
	t *graph.Template
	// paramOwned[i]: every call site passes an exclusively-owned value for
	// argument slot i. Starts true, falsified by call sites.
	paramOwned []bool
	// prod[n]: node n's output is exclusively owned.
	prod []bool
	// portOwned[n][p]: the value arriving on node n's port p is owned.
	portOwned [][]bool
	// retOwned: the template's result is exclusively owned on return.
	retOwned bool
}

// PlanMemory analyzes prog and stamps every node's Mem* fields. It returns
// the report; prog.MemPlanned is set so the executors activate the planned
// paths. Safe to call once per program, after linking.
func PlanMemory(prog *graph.Program) *MemPlan {
	facts := make(map[*graph.Template]*tmplFacts)
	var order []*tmplFacts
	var collect func(t *graph.Template)
	collect = func(t *graph.Template) {
		if t == nil || facts[t] != nil {
			return
		}
		f := &tmplFacts{
			t:          t,
			paramOwned: make([]bool, t.NumArgs()),
			prod:       make([]bool, len(t.Nodes)),
			portOwned:  make([][]bool, len(t.Nodes)),
		}
		for i := range f.paramOwned {
			f.paramOwned[i] = true
		}
		for i, n := range t.Nodes {
			f.portOwned[i] = make([]bool, n.NIn)
		}
		facts[t] = f
		order = append(order, f)
		for _, n := range t.Nodes {
			collect(n.Callee)
			collect(n.Then)
			collect(n.Else)
		}
	}
	names := make([]string, 0, len(prog.Templates))
	for name := range prog.Templates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		collect(prog.Templates[name])
	}
	collect(prog.Main)

	// Pessimistic entry points: main's arguments come from the host caller
	// (who may hold references), and closure-invoked templates can be
	// reached through closure values whose provenance the analysis does not
	// track.
	if mf := facts[prog.Main]; mf != nil {
		for i := range mf.paramOwned {
			mf.paramOwned[i] = false
		}
	}
	for _, f := range order {
		for _, n := range f.t.Nodes {
			if n.Kind == graph.MakeClosureNode && n.Callee != nil {
				cf := facts[n.Callee]
				for i := range cf.paramOwned {
					cf.paramOwned[i] = false
				}
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, f := range order {
			if f.compute(facts) {
				changed = true
			}
		}
	}

	// Stamp the graph and build the report.
	plan := &MemPlan{}
	for _, f := range order {
		mt := MemPlanTemplate{Name: f.t.Name}
		for _, n := range f.t.Nodes {
			plan.TotalNodes++
			n.MemOwned = f.prod[n.ID]
			ports := f.portOwned[n.ID]
			anyOwned := false
			for _, o := range ports {
				if o {
					anyOwned = true
					break
				}
			}
			if anyOwned {
				n.MemOwnedArgs = append([]bool(nil), ports...)
			}
			if n.Kind == graph.CallClosureNode {
				n.MemTransferEnv = true
				plan.TransferEnvSites++
			}
			mn := MemPlanNode{ID: n.ID, Label: nodeLabel(n), Owned: n.MemOwned, TransferEnv: n.MemTransferEnv}
			if n.MemOwned {
				plan.OwnedOutputs++
			}
			for p, o := range ports {
				if !o {
					continue
				}
				plan.OwnedPorts++
				mn.OwnedArgs = append(mn.OwnedArgs, p)
				if n.Kind == graph.OpNode && n.Op != nil && n.Op.MayModify(p) {
					plan.InPlacePorts++
					mn.InPlaceArgs = append(mn.InPlaceArgs, p)
				}
			}
			if mn.Owned || mn.OwnedArgs != nil || mn.TransferEnv {
				mt.Nodes = append(mt.Nodes, mn)
			}
		}
		plan.Templates = append(plan.Templates, mt)
	}
	prog.MemPlanned = true
	return plan
}

// compute re-derives this template's facts from the current interprocedural
// state, meeting argument ownership into callees. It reports whether any
// cross-template fact (a callee's paramOwned, or this template's retOwned)
// changed. Nodes are processed in ID order; the builder adds producers
// before consumers, so one forward pass resolves every intra-template edge
// (a port whose producer has not been processed simply stays unowned, which
// is conservative).
func (f *tmplFacts) compute(facts map[*graph.Template]*tmplFacts) bool {
	changed := false
	clear := func(owned *bool) {
		if *owned {
			*owned = false
			changed = true
		}
	}
	t := f.t
	for i := range f.portOwned {
		for p := range f.portOwned[i] {
			f.portOwned[i][p] = false
		}
	}
	for _, n := range t.Nodes {
		allPorts := true
		for _, o := range f.portOwned[n.ID] {
			if !o {
				allPorts = false
				break
			}
		}
		var prod bool
		switch n.Kind {
		case graph.ConstNode:
			// Literals carry no blocks; vacuously owned.
			prod = true
		case graph.ParamNode:
			prod = f.paramOwned[n.Index]
		case graph.OpNode:
			prod = allPorts || (n.Op != nil && n.Op.Fresh)
		case graph.TupleNode, graph.MakeClosureNode:
			prod = allPorts
		case graph.DetupleNode:
			// Extracting from an owned package: this node's element is
			// exclusive (spread split or full ownership of the tuple).
			prod = len(f.portOwned[n.ID]) > 0 && f.portOwned[n.ID][0]
		case graph.CallNode:
			cf := facts[n.Callee]
			prod = cf != nil && cf.retOwned
			if cf != nil {
				for p := 0; p < n.NIn && p < len(cf.paramOwned); p++ {
					if !f.portOwned[n.ID][p] {
						clear(&cf.paramOwned[p])
					}
				}
			}
		case graph.CallClosureNode:
			// The callee is dynamic; its result's provenance is unknown.
			prod = false
		case graph.CondNode:
			tf, ef := facts[n.Then], facts[n.Else]
			prod = tf != nil && ef != nil && tf.retOwned && ef.retOwned
			// Ports 1..NIn-1 become the branch templates' parameters.
			for p := 1; p < n.NIn; p++ {
				if f.portOwned[n.ID][p] {
					continue
				}
				if tf != nil && p-1 < len(tf.paramOwned) {
					clear(&tf.paramOwned[p-1])
				}
				if ef != nil && p-1 < len(ef.paramOwned) {
					clear(&ef.paramOwned[p-1])
				}
			}
		}
		f.prod[n.ID] = prod
		// Propagate along edges. A spread producer splits element ownership
		// among its detuple consumers, so each consumer port is owned iff
		// the producer is; otherwise ownership needs a single consumer, and
		// a result node always shares with the continuation.
		if n.Spread {
			for _, e := range n.Out {
				f.portOwned[e.To][e.Port] = prod
			}
		} else if len(n.Out) == 1 && n.ID != t.Result {
			e := n.Out[0]
			f.portOwned[e.To][e.Port] = prod
		}
	}
	ret := f.prod[t.Result] && len(t.Nodes[t.Result].Out) == 0
	if ret != f.retOwned {
		f.retOwned = ret
		changed = true
	}
	return changed
}

// nodeLabel names a node for the plan report.
func nodeLabel(n *graph.Node) string {
	if n.Name != "" {
		return n.Name
	}
	return n.Kind.String()
}

// Report renders the plan for delc -memplan: program totals, then each
// template's planned nodes.
func (p *MemPlan) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memory plan: %d/%d outputs owned, %d owned ports, %d in-place destructive ports, %d env-transfer sites\n",
		p.OwnedOutputs, p.TotalNodes, p.OwnedPorts, p.InPlacePorts, p.TransferEnvSites)
	for _, t := range p.Templates {
		if len(t.Nodes) == 0 {
			continue
		}
		fmt.Fprintf(&b, "template %s:\n", t.Name)
		for _, n := range t.Nodes {
			fmt.Fprintf(&b, "  #%-3d %-16s", n.ID, n.Label)
			var marks []string
			if n.Owned {
				marks = append(marks, "output owned")
			}
			if len(n.OwnedArgs) > 0 {
				marks = append(marks, fmt.Sprintf("owned args %v", n.OwnedArgs))
			}
			if len(n.InPlaceArgs) > 0 {
				marks = append(marks, fmt.Sprintf("in-place %v", n.InPlaceArgs))
			}
			if n.TransferEnv {
				marks = append(marks, "env transfer")
			}
			b.WriteString(strings.Join(marks, ", "))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
