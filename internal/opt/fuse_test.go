package opt

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// fuse compiles src with the shared plan() front half and runs the fusion
// pass with the given profile.
func fuse(t *testing.T, src string, prof map[string]int64) (*graph.Program, *FusePlan) {
	t.Helper()
	g, _ := planFront(t, src)
	return g, FuseGraph(g, prof)
}

// planFront compiles src through graph.Build without running any pass.
func planFront(t *testing.T, src string) (*graph.Program, *MemPlan) {
	t.Helper()
	g, _ := plan(t, src, nil)
	return g, nil
}

func TestFuseChain(t *testing.T) {
	g, p := fuse(t, "main(x) peek(peek(peek(x)))", nil)
	if !g.Fused {
		t.Fatal("Fused not set on program")
	}
	if p.Clusters != 1 || p.FusedNodes != 3 || p.DispatchesSaved != 2 {
		t.Fatalf("chain of three peeks: got %d clusters, %d fused, %d saved; want 1/3/2",
			p.Clusters, p.FusedNodes, p.DispatchesSaved)
	}
	c := g.Main.Clusters[0]
	if len(c.Nodes) != 3 {
		t.Fatalf("cluster members = %v, want 3 peeks", c.Nodes)
	}
	if c.ExtIn != 1 {
		t.Fatalf("ExtIn = %d, want 1 (the param feeding the head)", c.ExtIn)
	}
	head := g.Main.Nodes[c.Head]
	if head.FuseCluster != c {
		t.Fatal("head must carry the cluster pointer")
	}
	for i, id := range c.Nodes {
		n := g.Main.Nodes[id]
		if !n.Fused || n.FuseHead != c.Head {
			t.Fatalf("member n%d not stamped with head %d", id, c.Head)
		}
		wantInternal := i < len(c.Nodes)-1
		if n.FuseInternalOut != wantInternal {
			t.Fatalf("member n%d FuseInternalOut = %v, want %v", id, n.FuseInternalOut, wantInternal)
		}
		if id != c.Head && n.FuseCluster != nil {
			t.Fatalf("non-head n%d must not carry a cluster pointer", id)
		}
	}
}

func TestFuseDiamondStaysParallel(t *testing.T) {
	// Two independent peeks feeding a join: fusing either branch into the
	// join would serialize the other branch behind it, so the pass must
	// leave the diamond alone.
	_, p := fuse(t, "main(x) join(peek(x), peek(x))", nil)
	if p.Clusters != 0 {
		t.Fatalf("diamond fused into %d clusters; fusion must preserve the fork", p.Clusters)
	}
}

func TestFuseChainIntoJoinWithParamSide(t *testing.T) {
	// join's second input is the parameter, which is present before any
	// node runs — the delay-free rule admits the join as the chain's tail.
	g, p := fuse(t, "main(x) join(peek(peek(x)), x)", nil)
	if p.Clusters != 1 {
		t.Fatalf("got %d clusters, want 1", p.Clusters)
	}
	c := g.Main.Clusters[0]
	if len(c.Nodes) != 3 {
		t.Fatalf("cluster members = %v, want peek -> peek -> join", c.Nodes)
	}
	tail := g.Main.Nodes[c.Nodes[2]]
	if tail.Name != "join" {
		t.Fatalf("tail = %s, want join", tail.Name)
	}
}

func TestFuseAncestorSideInput(t *testing.T) {
	// mk fans out to peek and join, so mk itself cannot fuse — but peek's
	// chain may absorb the join: the join's side input (mk) is an ancestor
	// of the chain head (peek), so it is already delivered by the time the
	// head's gate opens. The delay-free rule admits the join as tail.
	g, p := fuse(t, `
main()
  let
    a = mk()
  in join(peek(a), a)
`, nil)
	var joined bool
	for _, c := range g.Main.Clusters {
		for _, id := range c.Nodes {
			if g.Main.Nodes[id].Name == "join" {
				joined = true
			}
		}
	}
	if !joined {
		t.Fatalf("join not fused despite ancestor side input; plan:\n%s", p.Report())
	}
}

func TestFuseBLevelMonotoneAlongChain(t *testing.T) {
	g, _ := fuse(t, "main(x) peek(peek(peek(x)))", nil)
	c := g.Main.Clusters[0]
	for i := 1; i < len(c.Nodes); i++ {
		prev, cur := g.Main.Nodes[c.Nodes[i-1]], g.Main.Nodes[c.Nodes[i]]
		if prev.BLevel <= cur.BLevel {
			t.Fatalf("BLevel must strictly decrease along the chain: n%d=%d, n%d=%d",
				prev.ID, prev.BLevel, cur.ID, cur.BLevel)
		}
	}
}

func TestFuseProfileWeights(t *testing.T) {
	// With unit weights the three-peek chain's critical path counts one
	// per node; a profile pricing peek at 10 scales it accordingly.
	_, unit := fuse(t, "main(x) peek(peek(peek(x)))", nil)
	_, prof := fuse(t, "main(x) peek(peek(peek(x)))", map[string]int64{"peek": 10})
	if unit.Profiled || !prof.Profiled {
		t.Fatalf("Profiled flags: unit=%v prof=%v", unit.Profiled, prof.Profiled)
	}
	uc, pc := unit.Templates[len(unit.Templates)-1].CritLen, prof.Templates[len(prof.Templates)-1].CritLen
	if pc != uc+27 { // three nodes go from weight 1 to weight 10 each
		t.Fatalf("profile critical path = %d, unit = %d; want +27", pc, uc)
	}
}

func TestFuseReport(t *testing.T) {
	_, p := fuse(t, "main(x) peek(peek(x))", nil)
	r := p.Report()
	if !strings.Contains(r, "1 clusters") || !strings.Contains(r, "unit weights") {
		t.Fatalf("report missing summary line:\n%s", r)
	}
	if !strings.Contains(r, "peek -> peek") {
		t.Fatalf("report missing member chain:\n%s", r)
	}
}
