// Package opt implements the optimization pass of Table 1: constant
// propagation and folding, common sub-expression elimination, dead-code
// elimination, and inline function expansion (§6.1). Unnecessary nodes in
// the coordination graph translate into extra overhead at run time, so the
// compiler works the analyzed tree to a fixed point before graph
// conversion.
//
// The pass runs on the alpha-renamed, resolved AST produced by environment
// analysis, which makes every transformation a local rewrite:
//
//   - textual equality of pure expressions implies semantic equality
//     (single assignment plus unique names), enabling CSE by printed form;
//   - binder uniqueness lets inlined bodies keep their free names, so a
//     lifted function's captures resolve correctly at any inline site.
//
// In the parallel compiler the local transformations are a
// synthesized-attribute walk (§6.2 strategy 3) run independently per
// function; inlining reads a frozen snapshot of callee bodies between two
// local phases so that parallel workers never observe each other's
// rewrites.
package opt

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/operator"
	"repro/internal/sema"
	"repro/internal/value"
)

// Options controls the optimizer.
type Options struct {
	// Level 0 disables everything; level 1 enables folding, propagation,
	// CSE, and DCE; level 2 adds inlining. The default compiler pipeline
	// uses level 2.
	Level int
	// InlineBudget is the maximum node count of a callee body considered
	// for inline expansion. Zero selects the default of 24.
	InlineBudget int
	// MaxRounds bounds the local-rewrite fixpoint per function. Zero
	// selects the default of 8.
	MaxRounds int
}

func (o Options) inlineBudget() int {
	if o.InlineBudget <= 0 {
		return 24
	}
	return o.InlineBudget
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 8
	}
	return o.MaxRounds
}

// Stats counts applied transformations; fields are updated atomically so
// parallel per-function optimization can share one Stats.
type Stats struct {
	Folded     int64 // constant-folded operator calls and conditionals
	Propagated int64 // literal let bindings propagated to uses
	CSE        int64 // duplicate pure expressions eliminated
	DeadBinds  int64 // unused let bindings removed
	Inlined    int64 // call sites expanded inline
}

// String renders the counters in a fixed order.
func (s *Stats) String() string {
	return fmt.Sprintf("folded=%d propagated=%d cse=%d dead=%d inlined=%d",
		atomic.LoadInt64(&s.Folded), atomic.LoadInt64(&s.Propagated),
		atomic.LoadInt64(&s.CSE), atomic.LoadInt64(&s.DeadBinds),
		atomic.LoadInt64(&s.Inlined))
}

// Optimize rewrites every function of the analyzed program in place and
// returns transformation counts. It is the sequential driver; the parallel
// compiler calls OptimizeFunc / InlineFunc per worker.
func Optimize(info *sema.Info, opts Options) *Stats {
	st := &Stats{}
	if opts.Level <= 0 {
		return st
	}
	for _, name := range info.Order {
		OptimizeFunc(info, info.Funcs[name].Decl, opts, st)
	}
	if opts.Level >= 2 {
		snap := Snapshot(info)
		for _, name := range info.Order {
			InlineFunc(info, info.Funcs[name].Decl, snap, opts, st)
			OptimizeFunc(info, info.Funcs[name].Decl, opts, st)
		}
	}
	return st
}

// OptimizeFunc runs the local rewrites (fold, propagate, CSE, DCE) on one
// function body to a bounded fixed point. Safe to call concurrently for
// distinct functions.
func OptimizeFunc(info *sema.Info, f *ast.FuncDecl, opts Options, st *Stats) {
	if opts.Level <= 0 {
		return
	}
	for round := 0; round < opts.maxRounds(); round++ {
		before := snapshotCounts(st)
		f.Body = foldExpr(info, f.Body, st)
		f.Body = propagate(f.Body, st)
		f.Body = cseExpr(info, f.Body, f.Name, round, st)
		f.Body = dce(info, f.Body, st)
		if snapshotCounts(st) == before {
			return
		}
	}
}

func snapshotCounts(s *Stats) [5]int64 {
	return [5]int64{
		atomic.LoadInt64(&s.Folded), atomic.LoadInt64(&s.Propagated),
		atomic.LoadInt64(&s.CSE), atomic.LoadInt64(&s.DeadBinds),
		atomic.LoadInt64(&s.Inlined),
	}
}

// litValue converts a literal expression to its runtime value.
func litValue(e ast.Expr) (value.Value, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return value.Int(x.Val), true
	case *ast.FloatLit:
		return value.Float(x.Val), true
	case *ast.StrLit:
		return value.Str(x.Val), true
	case *ast.NullLit:
		return value.Null{}, true
	}
	return nil, false
}

// valueLit converts a folded runtime value back to a literal expression.
func valueLit(v value.Value, at ast.Expr) (ast.Expr, bool) {
	pos := at.Pos()
	switch x := v.(type) {
	case value.Int:
		return &ast.IntLit{P: pos, Val: int64(x)}, true
	case value.Float:
		return &ast.FloatLit{P: pos, Val: float64(x)}, true
	case value.Str:
		return &ast.StrLit{P: pos, Val: string(x)}, true
	case value.Null:
		return &ast.NullLit{P: pos}, true
	case value.Bool:
		// The language has no boolean literal; represent as 1/0, which
		// Truthy treats identically.
		if x {
			return &ast.IntLit{P: pos, Val: 1}, true
		}
		return &ast.IntLit{P: pos, Val: 0}, true
	}
	return nil, false
}

// foldExpr folds pure operator calls over literal arguments and
// conditionals with literal tests, bottom-up.
func foldExpr(info *sema.Info, e ast.Expr, st *Stats) ast.Expr {
	return ast.Rewrite(e, func(e ast.Expr) ast.Expr {
		switch x := e.(type) {
		case *ast.Call:
			id, ok := x.Fun.(*ast.Ident)
			if !ok || id.Ref != ast.RefOperator {
				return e
			}
			op, ok := info.Registry.Lookup(id.Name)
			if !ok || !op.Pure {
				return e
			}
			args := make([]value.Value, len(x.Args))
			for i, a := range x.Args {
				v, lit := litValue(a)
				if !lit {
					return e
				}
				args[i] = v
			}
			v, ok := operator.Fold(op, args)
			if !ok {
				return e
			}
			lit, ok := valueLit(v, e)
			if !ok {
				return e
			}
			atomic.AddInt64(&st.Folded, 1)
			return lit
		case *ast.If:
			v, lit := litValue(x.Cond)
			if !lit {
				return e
			}
			truth, err := value.Truthy(v)
			if err != nil {
				return e // a kind error surfaces at run time
			}
			atomic.AddInt64(&st.Folded, 1)
			if truth {
				return x.Then
			}
			return x.Else
		}
		return e
	})
}

// propagate substitutes literal let bindings into uses and splits
// decompositions of literal multiple-value constructors into value binds.
func propagate(e ast.Expr, st *Stats) ast.Expr {
	return ast.Rewrite(e, func(e ast.Expr) ast.Expr {
		let, ok := e.(*ast.Let)
		if !ok {
			return e
		}
		var binds []*ast.Bind
		consts := make(map[string]ast.Expr)
		for _, b := range let.Binds {
			// <a,b> = <e1,e2> becomes a=e1, b=e2.
			if b.Kind == ast.BindTuple {
				if tup, ok := b.Init.(*ast.TupleExpr); ok && len(tup.Elems) == len(b.Names) {
					for i, n := range b.Names {
						binds = append(binds, &ast.Bind{P: b.P, Kind: ast.BindValue, Names: []string{n}, Init: tup.Elems[i]})
					}
					atomic.AddInt64(&st.Propagated, 1)
					continue
				}
			}
			if b.Kind == ast.BindValue {
				if _, lit := litValue(b.Init); lit {
					consts[b.Names[0]] = b.Init
				}
			}
			binds = append(binds, b)
		}
		if len(consts) == 0 {
			if len(binds) != len(let.Binds) {
				return &ast.Let{P: let.P, Binds: binds, Body: let.Body}
			}
			return e
		}
		// Substitute literal bindings into sibling inits, nested function
		// bodies, and the let body. Alpha-renaming guarantees the names are
		// not rebound anywhere below.
		subst := func(t ast.Expr) ast.Expr {
			return ast.Rewrite(t, func(n ast.Expr) ast.Expr {
				if id, ok := n.(*ast.Ident); ok {
					if lit, ok := consts[id.Name]; ok {
						atomic.AddInt64(&st.Propagated, 1)
						return ast.Clone(lit)
					}
				}
				return n
			})
		}
		out := &ast.Let{P: let.P}
		for _, b := range binds {
			if b.Kind == ast.BindFunc {
				// Nested bodies belong to the lifted declaration, which is
				// optimized on its own; the literal flows in as a capture.
				out.Binds = append(out.Binds, b)
				continue
			}
			if _, isConst := consts[b.Names[0]]; isConst && b.Kind == ast.BindValue {
				out.Binds = append(out.Binds, b) // kept for DCE to remove
				continue
			}
			out.Binds = append(out.Binds, &ast.Bind{P: b.P, Kind: b.Kind, Names: b.Names, Init: subst(b.Init)})
		}
		out.Body = subst(let.Body)
		return out
	})
}
