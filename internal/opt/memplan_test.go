package opt

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/macro"
	"repro/internal/operator"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/value"
)

// planReg registers block-moving test operators: mk allocates a fresh
// block, use consumes one destructively, peek reads one, join merges two.
func planReg(t *testing.T) *operator.Registry {
	t.Helper()
	r := operator.NewRegistry(operator.Builtins())
	mk := func(ctx operator.Context, _ []value.Value) (value.Value, error) {
		return value.NewBlockStats(value.FloatVec{1}, ctx.BlockStats()), nil
	}
	passthrough := func(ctx operator.Context, args []value.Value) (value.Value, error) {
		return args[0], nil
	}
	r.MustRegister(&operator.Operator{Name: "mk", Arity: 0, Fresh: true, Fn: mk})
	r.MustRegister(&operator.Operator{Name: "use", Arity: 1, Destructive: []bool{true}, Fn: passthrough})
	r.MustRegister(&operator.Operator{Name: "peek", Arity: 1, Fn: passthrough})
	r.MustRegister(&operator.Operator{Name: "join", Arity: 2, Destructive: []bool{true, true}, Fresh: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			return args[0], nil
		}})
	return r
}

// plan compiles src against reg and runs the memory-plan pass.
func plan(t *testing.T, src string, reg *operator.Registry) (*graph.Program, *MemPlan) {
	t.Helper()
	if reg == nil {
		reg = planReg(t)
	}
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags.Err())
	}
	info := sema.Analyze(macro.ExpandProgram(prog, &diags), reg, &diags)
	if diags.HasErrors() {
		t.Fatalf("analyze: %v", diags.Err())
	}
	g := graph.Build(info, &diags)
	if diags.HasErrors() {
		t.Fatalf("build: %v", diags.Err())
	}
	return g, PlanMemory(g)
}

// node finds the first node running the named operator or callee.
func node(t *testing.T, g *graph.Program, tmpl *graph.Template, name string) *graph.Node {
	t.Helper()
	for _, n := range tmpl.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node %q in template %s", name, tmpl.Name)
	return nil
}

func TestPlanFreshChainOwned(t *testing.T) {
	g, p := plan(t, "main() use(mk())", nil)
	if !g.MemPlanned {
		t.Fatal("MemPlanned not set")
	}
	mk := node(t, g, g.Main, "mk")
	if !mk.MemOwned {
		t.Fatal("mk output must be owned: Fresh with no inputs")
	}
	use := node(t, g, g.Main, "use")
	if len(use.MemOwnedArgs) == 0 || !use.MemOwnedArgs[0] {
		t.Fatal("use's port 0 must be owned: single consumer of an owned producer")
	}
	if p.InPlacePorts != 1 {
		t.Errorf("InPlacePorts = %d, want 1 (use is destructive on its owned port)", p.InPlacePorts)
	}
}

func TestPlanFanOutUnowned(t *testing.T) {
	g, _ := plan(t, `
main()
  let
    s = mk()
    a = use(s)
    b = peek(s)
  in join(a, b)
`, nil)
	use := node(t, g, g.Main, "use")
	if len(use.MemOwnedArgs) > 0 && use.MemOwnedArgs[0] {
		t.Fatal("use's port must not be owned: s fans out to two consumers")
	}
	peek := node(t, g, g.Main, "peek")
	if len(peek.MemOwnedArgs) > 0 && peek.MemOwnedArgs[0] {
		t.Fatal("peek's port must not be owned: s fans out to two consumers")
	}
}

func TestPlanMainParamsUnowned(t *testing.T) {
	g, _ := plan(t, "main(x) use(x)", nil)
	use := node(t, g, g.Main, "use")
	if len(use.MemOwnedArgs) > 0 && use.MemOwnedArgs[0] {
		t.Fatal("a value flowing from main's caller must not be owned")
	}
}

func TestPlanNonFreshOpNeedsOwnedInputs(t *testing.T) {
	// peek is neither Fresh nor fed owned input (main param): its output is
	// unowned, so use downstream gets nothing either.
	g, _ := plan(t, "main(x) use(peek(x))", nil)
	if node(t, g, g.Main, "peek").MemOwned {
		t.Fatal("peek's output must not be owned: its input is shared")
	}
	use := node(t, g, g.Main, "use")
	if len(use.MemOwnedArgs) > 0 && use.MemOwnedArgs[0] {
		t.Fatal("use's port must not be owned")
	}
	// With an owned input the same non-Fresh operator's output is owned.
	g2, _ := plan(t, "main() use(peek(mk()))", nil)
	if !node(t, g2, g2.Main, "peek").MemOwned {
		t.Fatal("peek's output must be owned when its only input is")
	}
}

func TestPlanInterproceduralCalls(t *testing.T) {
	// wrap is called once with an owned argument; its parameter, body, and
	// return stay owned, so the caller's use port is owned too.
	g, _ := plan(t, `
main() use(wrap(mk()))

wrap(s) use(s)
`, nil)
	wrap := g.Templates["wrap"]
	if wrap == nil {
		t.Fatal("missing template wrap")
	}
	inner := node(t, g, wrap, "use")
	if len(inner.MemOwnedArgs) == 0 || !inner.MemOwnedArgs[0] {
		t.Fatal("wrap's parameter must stay owned: its only call site passes an owned value")
	}
	outer := node(t, g, g.Main, "use")
	if len(outer.MemOwnedArgs) == 0 || !outer.MemOwnedArgs[0] {
		t.Fatal("the call's result must be owned: wrap returns an owned value")
	}

	// A second call site passing a shared value falsifies the parameter for
	// every caller — the meet over call sites.
	g2, _ := plan(t, `
main(x) join(wrap(mk()), wrap(x))

wrap(s) use(s)
`, nil)
	inner2 := node(t, g2, g2.Templates["wrap"], "use")
	if len(inner2.MemOwnedArgs) > 0 && inner2.MemOwnedArgs[0] {
		t.Fatal("wrap's parameter must be falsified by the shared call site")
	}
}

func TestPlanRecursionTerminatesAndConverges(t *testing.T) {
	g, p := plan(t, `
main(n) fib(n)

fib(n)
  if lt(n, 2)
    then n
    else add(fib(sub(n, 1)), fib(sub(n, 2)))
`, nil)
	if !g.MemPlanned {
		t.Fatal("MemPlanned not set")
	}
	if p.TotalNodes == 0 {
		t.Fatal("plan visited no nodes")
	}
}

func TestPlanClosureCalleeParamsUnowned(t *testing.T) {
	// A template reachable through a closure value must keep its parameters
	// unowned (the analysis does not track closure provenance), but every
	// closure call site still gets the environment transfer.
	g, p := plan(t, `
main(n) apply(pick(n), mk())

apply(f, x) f(x)

u1(v) use(v)

u2(v) use(mk())

pick(flag)
  if lt(flag, 1) then u1 else u2
`, nil)
	body := g.Templates["u1"]
	if body == nil {
		t.Fatalf("missing template u1 (have %v)", templateNames(g))
	}
	inner := node(t, g, body, "use")
	if len(inner.MemOwnedArgs) > 0 && inner.MemOwnedArgs[0] {
		t.Fatal("a closure-called template's parameters must be unowned")
	}
	if p.TransferEnvSites == 0 {
		t.Fatal("closure call sites must be marked for environment transfer")
	}
}

func templateNames(g *graph.Program) []string {
	var names []string
	for name := range g.Templates {
		names = append(names, name)
	}
	return names
}

func TestPlanReport(t *testing.T) {
	_, p := plan(t, "main() use(mk())", nil)
	rep := p.Report()
	for _, want := range []string{"memory plan:", "template main:", "use", "in-place [0]", "output owned"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
