package opt

import (
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/sema"
)

// dce removes let bindings whose names are never used, provided the
// initializer is side-effect free (literals, identifiers, multiple-value
// constructors, and calls to pure operators). A let left with no bindings
// collapses to its body. Bindings whose initializer calls an application
// operator are kept even when unused: the paper gives no purity annotation
// for operators beyond the destructive flags, so an unused impure call
// still executes.
func dce(info *sema.Info, e ast.Expr, st *Stats) ast.Expr {
	return ast.Rewrite(e, func(e ast.Expr) ast.Expr {
		let, ok := e.(*ast.Let)
		if !ok {
			return e
		}
		// Names used by sibling initializers, nested function captures, and
		// the body.
		exprs := make([]ast.Expr, 0, len(let.Binds)+1)
		for _, b := range let.Binds {
			if b.Kind == ast.BindFunc {
				continue // handled through capture sets by FreeNames
			}
			exprs = append(exprs, b.Init)
		}
		exprs = append(exprs, let.Body)
		used := make(map[string]bool)
		for _, n := range sema.FreeNames(info, exprs, nil) {
			used[n] = true
		}
		// Captures of nested bind functions also count as uses.
		for _, b := range let.Binds {
			if b.Kind != ast.BindFunc {
				continue
			}
			if f, ok := info.Funcs[b.Fn.Name]; ok {
				for _, c := range f.Decl.Captures {
					used[c] = true
				}
			}
		}

		var kept []*ast.Bind
		for _, b := range let.Binds {
			if b.Kind == ast.BindFunc {
				kept = append(kept, b)
				continue
			}
			anyUsed := false
			for _, n := range b.Names {
				if used[n] {
					anyUsed = true
					break
				}
			}
			if anyUsed || !effectFree(info, b.Init) {
				kept = append(kept, b)
				continue
			}
			atomic.AddInt64(&st.DeadBinds, 1)
		}
		if len(kept) == 0 {
			return let.Body
		}
		if len(kept) == len(let.Binds) {
			return e
		}
		return &ast.Let{P: let.P, Binds: kept, Body: let.Body}
	})
}

// effectFree reports whether evaluating e can have no observable effect
// beyond producing a value — i.e. it may be deleted when the value is
// unused. Conservative: any call to a user operator, any function call
// (may not terminate), and any iterate disqualify.
func effectFree(info *sema.Info, e ast.Expr) bool {
	free := true
	ast.Walk(e, func(x ast.Expr) bool {
		if !free {
			return false
		}
		switch n := x.(type) {
		case *ast.Call:
			id, ok := n.Fun.(*ast.Ident)
			if !ok {
				free = false // closure call
				return false
			}
			switch id.Ref {
			case ast.RefOperator:
				op, ok := info.Registry.Lookup(id.Name)
				if !ok || !op.Pure {
					free = false
					return false
				}
			default:
				free = false // function call: may diverge or be impure
				return false
			}
		case *ast.Iterate:
			free = false
			return false
		}
		return true
	})
	return free
}
