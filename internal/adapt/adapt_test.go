package adapt

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/machine"
	"repro/internal/retina"
	"repro/internal/runtime"
)

func listingConfig() retina.Config {
	return retina.Config{W: 64, H: 64, K: 5, Slabs: 4, Timesteps: 1,
		TargetsPerQuarter: 16, TargetWork: 400, Seed: 1990}
}

func tuneRetina(t *testing.T) *Result {
	t.Helper()
	cfg := listingConfig()
	reg, err := retina.Operators(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(nil, "retina1.dlr", retina.Source(cfg, retina.V1), Config{
		Compile: compile.Options{Registry: reg, MemPlan: true},
		Runtime: runtime.Config{Mode: runtime.Simulated, Workers: 8,
			Machine: machine.CrayYMP(), MaxOps: 50_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTuneRetina runs the full adaptive loop on the unbalanced retina model
// and checks the acceptance shape: calibration measures every operator, the
// advisor names post_up as the split candidate, and the tuned plan never
// loses to the unit-weight baseline on the virtual clock.
func TestTuneRetina(t *testing.T) {
	res := tuneRetina(t)
	if len(res.Profile) == 0 {
		t.Fatal("empty profile")
	}
	for _, op := range []string{"post_up", "convol_bite", "pre_update"} {
		if res.Profile[op] < 1 {
			t.Errorf("profile missing %s: %v", op, res.Profile)
		}
	}
	// post_up does the work of four convol_bites serialized; the measured
	// weights must reflect that imbalance or the re-fuse learns nothing.
	if res.Profile["post_up"] <= res.Profile["convol_bite"] {
		t.Errorf("post_up weight %d not above convol_bite %d",
			res.Profile["post_up"], res.Profile["convol_bite"])
	}
	var split *runtime.Advisory
	for i := range res.Advisories {
		if res.Advisories[i].Verdict == runtime.AdviseSplit {
			split = &res.Advisories[i]
		}
	}
	if split == nil || split.Operator != "post_up" {
		t.Fatalf("advisor did not name post_up: %v", res.Advisories)
	}
	if res.TunedCost > res.BaselineCost {
		t.Errorf("tuned plan lost: %d > %d ticks", res.TunedCost, res.BaselineCost)
	}
	if res.Winner != "tuned" {
		t.Errorf("winner = %q", res.Winner)
	}
	if len(res.UnmatchedProfileKeys) != 0 {
		t.Errorf("self-measured profile left unmatched keys: %v", res.UnmatchedProfileKeys)
	}
	rep := res.Report()
	for _, want := range []string{"adaptive: calibrated", "keeping tuned", "post_up"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestTuneConvergence is the calibrate-once-keep-winner decision made
// testable: two independent tuning runs over the same program measure
// identical profiles and produce byte-identical fusion plans, so a second
// loop iteration could never change the plan.
func TestTuneConvergence(t *testing.T) {
	a := tuneRetina(t)
	b := tuneRetina(t)
	if len(a.Profile) != len(b.Profile) {
		t.Fatalf("profile sizes differ: %d vs %d", len(a.Profile), len(b.Profile))
	}
	for k, v := range a.Profile {
		if b.Profile[k] != v {
			t.Errorf("profile[%s] = %d vs %d across runs", k, v, b.Profile[k])
		}
	}
	ra, rb := a.Tuned.FusePlan.Report(), b.Tuned.FusePlan.Report()
	if ra != rb {
		t.Errorf("tuned fusion plans diverged:\n%s\nvs\n%s", ra, rb)
	}
}

func TestDerivePoolCaps(t *testing.T) {
	if got := DerivePoolCaps(nil, 1); got != nil {
		t.Errorf("nil demand: %v", got)
	}
	if got := DerivePoolCaps([]int64{0, 0}, 3); got != nil {
		t.Errorf("zero demand: %v", got)
	}
	got := DerivePoolCaps([]int64{0, 10, 100, 5000}, 1)
	want := []int{0, 16, 128, 512}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("caps[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Demand is summed across calibration runs; caps derive from per-run demand.
	got = DerivePoolCaps([]int64{90}, 3) // 30 per run
	if got[0] != 32 {
		t.Errorf("per-run cap = %d, want 32", got[0])
	}
}
