// Package adapt closes the profile-guided optimization loop: it compiles a
// program, runs a short calibration pass with timing and tracing on,
// extracts measured mean operator costs (per fused member, via the nested
// per-member timing entries — not just supernode heads), feeds them into
// fusion's bottom-level priorities and the memory plan's pool size-class
// caps, re-fuses, re-plans, re-runs on a fresh engine, and keeps whichever
// plan measures faster. The same loop a delprof user used to drive by hand
// (-profout, edit, -profile) runs unattended, and a granularity advisor on
// the critical-path analysis reports which operators a coordination-level
// rebalance should attack.
//
// The loop is calibrate-once-keep-winner, not continuous online retuning:
// profile weights only reorder ready queues (cluster membership is
// weight-independent), so a second calibration pass over the tuned plan
// measures the same per-operator costs and re-derives the same plan — the
// loop converges after one iteration by construction, and re-running it
// buys nothing but measurement noise.
package adapt

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/compile"
	"repro/internal/runtime"
	"repro/internal/value"
)

// Config controls one adaptive tuning run.
type Config struct {
	// Compile is the base compilation; Fuse is forced on (the loop feeds
	// fusion), MemPlan is honored as given. Any FuseProfile already present
	// seeds the baseline and is replaced by the measured profile in the
	// tuned build.
	Compile compile.Options
	// Runtime is the base execution config. Calibration runs it with Timing
	// and Trace forced on and Faults disarmed (fault noise must not leak
	// into measured costs); measurement runs it as given.
	Runtime runtime.Config
	// Args are main's arguments for every run.
	Args []value.Value
	// CalibrateRuns is the number of calibration executions averaged into
	// the profile (default 1; Simulated mode never needs more).
	CalibrateRuns int
	// MeasureRuns is the number of timed executions per plan, folded by
	// minimum (default 3; Simulated mode uses 1, the clock is virtual).
	MeasureRuns int
}

// Result is a finished tuning run.
type Result struct {
	// Profile is the measured mean cost per operator (ticks or ns).
	Profile map[string]int64
	// PoolCaps is the per-size-class block-pool cap vector derived from the
	// calibration run's recycle demand; nil when the program has no memory
	// plan.
	PoolCaps []int
	// Advisories are the granularity advisor's verdicts from the
	// calibration run's critical path.
	Advisories []runtime.Advisory
	// UnmatchedProfileKeys lists measured operators the re-fused plan could
	// not place (normally empty: the profile was measured on this program).
	UnmatchedProfileKeys []string
	// BaselineCost and TunedCost are each plan's best measured run (Unit is
	// "ticks" for Simulated mode, "ns" for Real).
	BaselineCost int64
	TunedCost    int64
	Unit         string
	// Winner is "tuned" or "baseline"; Program and PoolCaps describe the
	// winning plan, ready to run.
	Winner string
	// Baseline and Tuned are the two compilations; Winning points at the
	// one that won.
	Baseline *compile.Result
	Tuned    *compile.Result
	// Workers is the calibrated worker count, for rendering.
	Workers int
}

// Winning returns the winning compilation.
func (r *Result) Winning() *compile.Result {
	if r.Winner == "baseline" {
		return r.Baseline
	}
	return r.Tuned
}

// Gain is the fractional improvement of the tuned plan over the baseline
// (positive = tuned faster).
func (r *Result) Gain() float64 {
	if r.BaselineCost == 0 {
		return 0
	}
	return float64(r.BaselineCost-r.TunedCost) / float64(r.BaselineCost)
}

// WinningRuntime returns the runtime config for the winning plan: base with
// the derived pool caps applied when the tuned plan won.
func (r *Result) WinningRuntime(base runtime.Config) runtime.Config {
	if r.Winner == "tuned" {
		base.PoolClassCaps = r.PoolCaps
	}
	return base
}

// Report renders the tuning run for terminal output.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adaptive: calibrated %d operator(s) at %d worker(s)\n", len(r.Profile), r.Workers)
	fmt.Fprintf(&b, "adaptive: baseline %d %s, tuned %d %s — keeping %s plan (%+.1f%%)\n",
		r.BaselineCost, r.Unit, r.TunedCost, r.Unit, r.Winner, r.Gain()*100)
	if caps := countNonZero(r.PoolCaps); caps > 0 {
		fmt.Fprintf(&b, "adaptive: pool caps resized for %d size class(es)\n", caps)
	}
	if len(r.UnmatchedProfileKeys) > 0 {
		fmt.Fprintf(&b, "adaptive: warning — measured keys unmatched on recompile: %s\n",
			strings.Join(r.UnmatchedProfileKeys, ", "))
	}
	b.WriteString(runtime.RenderAdvisories(r.Advisories))
	return b.String()
}

func countNonZero(v []int) int {
	n := 0
	for _, x := range v {
		if x != 0 {
			n++
		}
	}
	return n
}

func (c Config) calibrateRuns() int {
	if c.CalibrateRuns > 0 {
		return c.CalibrateRuns
	}
	return 1
}

func (c Config) measureRuns() int {
	if c.Runtime.Mode == runtime.Simulated {
		return 1 // virtual clock: every run measures identically
	}
	if c.MeasureRuns > 0 {
		return c.MeasureRuns
	}
	return 3
}

func (c Config) workers() int {
	if c.Runtime.Workers > 0 {
		return c.Runtime.Workers
	}
	if c.Runtime.Machine != nil {
		return c.Runtime.Machine.Procs
	}
	return 1
}

// Tune runs the full adaptive loop on one source file: compile with unit (or
// caller-supplied) weights, calibrate, re-fuse with measured weights,
// measure both plans on fresh engines, keep the winner. ctx bounds every
// execution (nil = background).
func Tune(ctx context.Context, file, src string, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts := cfg.Compile
	opts.Adaptive = true
	baseline, err := compile.Compile(file, src, opts)
	if err != nil {
		return nil, fmt.Errorf("adapt: baseline compile: %w", err)
	}

	res := &Result{Unit: "ns", Workers: cfg.workers()}
	if cfg.Runtime.Mode == runtime.Simulated {
		res.Unit = "ticks"
	}

	// Calibrate: timing + tracing on, faults off. The engine is reused
	// across calibration runs so the profile averages over warmed state.
	calCfg := cfg.Runtime
	calCfg.Timing = true
	calCfg.Trace = true
	calCfg.Faults = nil
	eng := runtime.New(baseline.Program, calCfg)
	merged := make(map[string]int64)
	runs := cfg.calibrateRuns()
	for i := 0; i < runs; i++ {
		if i > 0 {
			if err := eng.Reset(); err != nil {
				return nil, fmt.Errorf("adapt: calibration reset: %w", err)
			}
		}
		if _, err := eng.RunContext(ctx, cfg.Args...); err != nil {
			return nil, fmt.Errorf("adapt: calibration run: %w", err)
		}
		for name, w := range eng.ProfileWeights() {
			merged[name] += w
		}
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("adapt: calibration recorded no operator timings")
	}
	for name := range merged {
		if merged[name] /= int64(runs); merged[name] < 1 {
			merged[name] = 1
		}
	}
	res.Profile = merged
	if tr := eng.Trace(); tr != nil {
		res.Advisories = tr.CriticalPath().Advise(res.Workers)
	}
	res.PoolCaps = DerivePoolCaps(eng.PoolDemand(), runs)

	// Re-fuse and re-plan with the measured weights.
	topts := opts
	topts.FuseProfile = merged
	tuned, err := compile.Compile(file, src, topts)
	if err != nil {
		return nil, fmt.Errorf("adapt: tuned recompile: %w", err)
	}
	if tuned.FusePlan != nil {
		res.UnmatchedProfileKeys = tuned.FusePlan.UnmatchedProfileKeys
	}
	res.Baseline, res.Tuned = baseline, tuned

	// Measure both plans on fresh engines (Reset-reused within a plan so
	// warmed pools amortize equally), folded by minimum.
	baseCost, err := measure(ctx, baseline, cfg.Runtime, cfg)
	if err != nil {
		return nil, fmt.Errorf("adapt: baseline measure: %w", err)
	}
	tunedRT := cfg.Runtime
	tunedRT.PoolClassCaps = res.PoolCaps
	tunedCost, err := measure(ctx, tuned, tunedRT, cfg)
	if err != nil {
		return nil, fmt.Errorf("adapt: tuned measure: %w", err)
	}
	res.BaselineCost, res.TunedCost = baseCost, tunedCost
	res.Winner = "tuned"
	if baseCost < tunedCost {
		res.Winner = "baseline"
	}
	return res, nil
}

// measure times cfg.measureRuns() executions of one plan through a reused
// engine and returns the best run's cost (MakespanTicks in Simulated mode,
// RealNanos otherwise).
func measure(ctx context.Context, comp *compile.Result, rcfg runtime.Config, cfg Config) (int64, error) {
	eng := runtime.New(comp.Program, rcfg)
	best := int64(0)
	for i := 0; i < cfg.measureRuns(); i++ {
		if i > 0 {
			if err := eng.Reset(); err != nil {
				return 0, err
			}
		}
		if _, err := eng.RunContext(ctx, cfg.Args...); err != nil {
			return 0, err
		}
		cost := eng.Stats().RealNanos
		if rcfg.Mode == runtime.Simulated {
			cost = eng.Stats().MakespanTicks
		}
		if best == 0 || cost < best {
			best = cost
		}
	}
	return best, nil
}

// DerivePoolCaps turns a calibration run's per-size-class recycle demand
// (Engine.PoolDemand, summed over runs) into Config.PoolClassCaps for the
// tuned plan: classes the run never recycled keep the default cap, classes
// with demand are capped at the next power of two of their per-run offer
// count, clamped to [16, 512]. Returns nil when demand is nil (no memory
// plan) or every entry is zero.
func DerivePoolCaps(demand []int64, runs int) []int {
	if len(demand) == 0 {
		return nil
	}
	if runs < 1 {
		runs = 1
	}
	caps := make([]int, len(demand))
	any := false
	for i, d := range demand {
		perRun := d / int64(runs)
		if perRun <= 0 {
			continue
		}
		c := 16
		for int64(c) < perRun && c < 512 {
			c <<= 1
		}
		caps[i] = c
		any = true
	}
	if !any {
		return nil
	}
	return caps
}

// CompileTuned is the one-call entry the server's live-source path uses:
// compile src with the given profile as fusion weights. It exists so
// callers holding only a source string need not re-assemble options.
func CompileTuned(file, src string, opts compile.Options, prof map[string]int64) (*compile.Result, error) {
	opts.Adaptive = true
	opts.FuseProfile = prof
	return compile.Compile(file, src, opts)
}
