// Package macro implements the Delirium preprocessor: `define NAME expr`
// introduces a symbolic constant whose uses are replaced by the expression
// before environment analysis (§5.1: "these symbolic constants are replaced
// with values by the pre-processor").
//
// Expansion respects scoping — a parameter, let binding, or loop variable
// with the same name shadows the constant — so a definition can never
// capture a local name. Definitions may refer to earlier definitions;
// forward references and redefinitions are errors.
//
// In the parallel compiler, macro expansion is a top-down update walk
// (§6.2 strategy 1): the definition table is built sequentially from the
// program crown, then each function body is expanded independently.
package macro

import (
	"repro/internal/ast"
	"repro/internal/source"
)

// Table is a fully-expanded set of symbolic constants.
type Table struct {
	exprs map[string]ast.Expr
	order []string
}

// BuildTable validates the program's defines and expands earlier constants
// inside later ones, so each table entry is closed.
func BuildTable(defines []*ast.Define, diags *source.DiagList) *Table {
	t := &Table{exprs: make(map[string]ast.Expr, len(defines))}
	for _, d := range defines {
		if _, dup := t.exprs[d.Name]; dup {
			diags.Errorf(d.P, "symbolic constant %s redefined", d.Name)
			continue
		}
		// Substitute previously-defined constants so the entry is closed.
		expanded := t.ExpandExpr(d.Expr, diags)
		t.exprs[d.Name] = expanded
		t.order = append(t.order, d.Name)
	}
	return t
}

// Len returns the number of constants in the table.
func (t *Table) Len() int { return len(t.exprs) }

// Names returns the constant names in definition order.
func (t *Table) Names() []string { return t.order }

// Lookup returns the expansion of a constant.
func (t *Table) Lookup(name string) (ast.Expr, bool) {
	e, ok := t.exprs[name]
	return e, ok
}

// ExpandExpr replaces every unshadowed use of a defined constant in e with
// a clone of its expansion. The input tree is not modified.
func (t *Table) ExpandExpr(e ast.Expr, diags *source.DiagList) ast.Expr {
	return t.expand(e, newScope(nil))
}

// ExpandFunc expands a single function body in place of the old one,
// returning a new declaration. Parameters shadow constants. This is the
// per-function unit of work for the parallel macro pass.
func (t *Table) ExpandFunc(f *ast.FuncDecl, diags *source.DiagList) *ast.FuncDecl {
	sc := newScope(nil)
	for _, p := range f.Params {
		sc.bind(p)
	}
	nf := *f
	nf.Body = t.expand(f.Body, sc)
	return &nf
}

// ExpandProgram applies the table to every function, returning a program
// with an empty define list. Used by the sequential compiler path.
func ExpandProgram(prog *ast.Program, diags *source.DiagList) *ast.Program {
	t := BuildTable(prog.Defines, diags)
	out := &ast.Program{File: prog.File}
	for _, f := range prog.Funcs {
		out.Funcs = append(out.Funcs, t.ExpandFunc(f, diags))
	}
	return out
}

// scope is a linked chain of locally-bound name sets.
type scope struct {
	parent *scope
	names  map[string]bool
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: make(map[string]bool)}
}

func (s *scope) bind(name string) { s.names[name] = true }

func (s *scope) bound(name string) bool {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.names[name] {
			return true
		}
	}
	return false
}

// expand recursively rewrites e, carrying the set of shadowing local names.
func (t *Table) expand(e ast.Expr, sc *scope) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.IntLit, *ast.FloatLit, *ast.StrLit, *ast.NullLit:
		return e
	case *ast.Ident:
		if sc.bound(x.Name) {
			return e
		}
		if repl, ok := t.exprs[x.Name]; ok {
			return ast.Clone(repl)
		}
		return e
	case *ast.Call:
		nc := &ast.Call{P: x.P, Fun: t.expand(x.Fun, sc), Tail: x.Tail}
		for _, a := range x.Args {
			nc.Args = append(nc.Args, t.expand(a, sc))
		}
		return nc
	case *ast.TupleExpr:
		nt := &ast.TupleExpr{P: x.P}
		for _, el := range x.Elems {
			nt.Elems = append(nt.Elems, t.expand(el, sc))
		}
		return nt
	case *ast.Let:
		// All sibling bindings are in scope throughout the let (letrec), so
		// bind every name before expanding any initializer.
		inner := newScope(sc)
		for _, b := range x.Binds {
			for _, n := range b.Names {
				inner.bind(n)
			}
		}
		nl := &ast.Let{P: x.P}
		for _, b := range x.Binds {
			nb := &ast.Bind{P: b.P, Kind: b.Kind, Names: b.Names}
			if b.Fn != nil {
				fnScope := newScope(inner)
				for _, p := range b.Fn.Params {
					fnScope.bind(p)
				}
				nf := *b.Fn
				nf.Body = t.expand(b.Fn.Body, fnScope)
				nb.Fn = &nf
			} else {
				nb.Init = t.expand(b.Init, inner)
			}
			nl.Binds = append(nl.Binds, nb)
		}
		nl.Body = t.expand(x.Body, inner)
		return nl
	case *ast.If:
		return &ast.If{P: x.P,
			Cond: t.expand(x.Cond, sc),
			Then: t.expand(x.Then, sc),
			Else: t.expand(x.Else, sc)}
	case *ast.Iterate:
		// Initializers see the enclosing scope; Next, Cond, and Result see
		// the loop variables.
		inner := newScope(sc)
		for _, iv := range x.Vars {
			inner.bind(iv.Name)
		}
		ni := &ast.Iterate{P: x.P}
		for _, iv := range x.Vars {
			ni.Vars = append(ni.Vars, &ast.IterVar{
				P:    iv.P,
				Name: iv.Name,
				Init: t.expand(iv.Init, sc),
				Next: t.expand(iv.Next, inner),
			})
		}
		ni.Cond = t.expand(x.Cond, inner)
		ni.Result = t.expand(x.Result, inner)
		return ni
	default:
		return e
	}
}
