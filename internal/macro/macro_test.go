package macro

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
)

func expand(t *testing.T, src string) (*ast.Program, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags.Err())
	}
	out := ExpandProgram(prog, &diags)
	return out, &diags
}

func TestExpandSimpleConstant(t *testing.T) {
	prog, diags := expand(t, `
define N 4
main() incr(N)
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	got := ast.Print(prog.Func("main").Body)
	if got != "incr(4)" {
		t.Errorf("expanded body = %q, want incr(4)", got)
	}
}

func TestExpandExpressionConstant(t *testing.T) {
	prog, diags := expand(t, `
define SIZE mul(ROWS, 8)
define ROWS 16
main() SIZE
`)
	// ROWS is defined after SIZE: forward reference stays unexpanded inside
	// SIZE's table entry but direct uses of ROWS would expand. The use of
	// SIZE expands to mul(ROWS, 8) with ROWS left for env analysis to
	// reject.
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	got := ast.Print(prog.Func("main").Body)
	if got != "mul(ROWS, 8)" {
		t.Errorf("body = %q", got)
	}
}

func TestExpandChainedConstants(t *testing.T) {
	prog, diags := expand(t, `
define A 2
define B incr(A)
main() B
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	got := ast.Print(prog.Func("main").Body)
	if got != "incr(2)" {
		t.Errorf("body = %q, want incr(2)", got)
	}
}

func TestRedefinitionError(t *testing.T) {
	_, diags := expand(t, `
define A 1
define A 2
main() A
`)
	if !diags.HasErrors() || !strings.Contains(diags.Err().Error(), "redefined") {
		t.Errorf("expected redefinition error, got %v", diags.Err())
	}
}

func TestShadowingByParam(t *testing.T) {
	prog, diags := expand(t, `
define N 4
f(N) incr(N)
main() f(N)
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	if got := ast.Print(prog.Func("f").Body); got != "incr(N)" {
		t.Errorf("param must shadow constant: %q", got)
	}
	if got := ast.Print(prog.Func("main").Body); got != "f(4)" {
		t.Errorf("unshadowed use must expand: %q", got)
	}
}

func TestShadowingByLetBinding(t *testing.T) {
	prog, diags := expand(t, `
define N 4
main()
  let N = 9
  in incr(N)
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	got := ast.Print(prog.Func("main").Body)
	if strings.Contains(got, "incr(4)") {
		t.Errorf("let binding must shadow constant:\n%s", got)
	}
}

func TestShadowingByIterateVar(t *testing.T) {
	prog, diags := expand(t, `
define I 100
main()
  iterate { I = I, incr(I) } while lt(I, 3), result I
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	it := prog.Func("main").Body.(*ast.Iterate)
	// Init sees the enclosing scope, so the constant expands there...
	if got := ast.Print(it.Vars[0].Init); got != "100" {
		t.Errorf("Init = %q, want 100", got)
	}
	// ...but Next, Cond, and Result see the loop variable.
	if got := ast.Print(it.Vars[0].Next); got != "incr(I)" {
		t.Errorf("Next = %q, want incr(I)", got)
	}
	if got := ast.Print(it.Cond); got != "lt(I, 3)" {
		t.Errorf("Cond = %q", got)
	}
	if got := ast.Print(it.Result); got != "I" {
		t.Errorf("Result = %q", got)
	}
}

func TestShadowingByNestedFunction(t *testing.T) {
	prog, diags := expand(t, `
define X 1
main()
  let f(X) incr(X)
  in f(X)
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	let := prog.Func("main").Body.(*ast.Let)
	if got := ast.Print(let.Binds[0].Fn.Body); got != "incr(X)" {
		t.Errorf("nested fn param must shadow: %q", got)
	}
	if got := ast.Print(let.Body); got != "f(1)" {
		t.Errorf("let body use must expand: %q", got)
	}
}

func TestLetRecShadowing(t *testing.T) {
	// A let binding's name shadows the constant even inside a *sibling*
	// initializer (letrec scoping).
	prog, diags := expand(t, `
define A 5
main()
  let A = 1
      b = incr(A)
  in b
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	let := prog.Func("main").Body.(*ast.Let)
	if got := ast.Print(let.Binds[1].Init); got != "incr(A)" {
		t.Errorf("sibling init should see shadowed A: %q", got)
	}
}

func TestExpandInsideConditionalAndTuple(t *testing.T) {
	prog, diags := expand(t, `
define K 7
main()
  if is_equal(K, 7) then <K, K> else NULL
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	got := ast.Print(prog.Func("main").Body)
	if !strings.Contains(got, "is_equal(7, 7)") || !strings.Contains(got, "<7, 7>") {
		t.Errorf("expansion incomplete:\n%s", got)
	}
}

func TestExpansionClonesNotShares(t *testing.T) {
	prog, diags := expand(t, `
define C mul(2, 3)
main() add(C, C)
`)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	call := prog.Func("main").Body.(*ast.Call)
	if call.Args[0] == call.Args[1] {
		t.Error("each expansion must be a fresh clone")
	}
}

func TestTableAPI(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse("t.dlr", "define A 1\ndefine B 2\nmain() A", &diags)
	table := BuildTable(prog.Defines, &diags)
	if table.Len() != 2 {
		t.Fatalf("Len = %d", table.Len())
	}
	if names := table.Names(); names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v", names)
	}
	if _, ok := table.Lookup("A"); !ok {
		t.Error("Lookup(A) failed")
	}
	if _, ok := table.Lookup("Z"); ok {
		t.Error("Lookup(Z) should fail")
	}
}

func TestExpandFuncMatchesExpandProgram(t *testing.T) {
	src := `
define N 3
f(x) add(x, N)
g() f(N)
`
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	table := BuildTable(prog.Defines, &diags)
	whole := ExpandProgram(prog, &diags)
	for i, f := range prog.Funcs {
		single := table.ExpandFunc(f, &diags)
		if got, want := ast.Print(single.Body), ast.Print(whole.Funcs[i].Body); got != want {
			t.Errorf("ExpandFunc(%s) = %q, ExpandProgram gives %q", f.Name, got, want)
		}
	}
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
}

func TestOriginalTreeUntouched(t *testing.T) {
	src := "define N 4\nmain() incr(N)"
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	before := ast.Print(prog.Func("main").Body)
	ExpandProgram(prog, &diags)
	after := ast.Print(prog.Func("main").Body)
	if before != after {
		t.Errorf("expansion mutated input: %q -> %q", before, after)
	}
}
