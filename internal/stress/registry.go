// Package stress generates seeded random coordination graphs at
// 10k–100k-node scale and differentially executes them across an
// executor/worker/optimization/reuse/fault config matrix, asserting the
// language's core guarantee mechanically: a Delirium program produces
// bit-identical results regardless of schedule, worker count, executor,
// compile-time optimization, engine reuse, or injected-and-retried
// faults. Runtime invariants (per-run Allocated == Freed, elision and
// pool counters coherent, no deadlock diagnostics on valid graphs) ride
// along on every run. When a seed fails, an automatic shrinker minimizes
// the generated program and writes the repro to testdata/regressions/,
// turning every caught failure into a permanent gating test.
package stress

import (
	"fmt"

	"repro/internal/operator"
	"repro/internal/value"
)

// FaultOps lists the stress operators targeted by the oracle's seeded
// fault-injection legs. All of them are Retryable, so a killed execution
// retries from snapshotted inputs and the run must still produce the
// fault-free result.
func FaultOps() []string {
	return []string{"st_cell", "st_stir", "st_blend", "st_fork", "st_probe"}
}

// vecOf extracts an IntVec block payload.
func vecOf(name string, v value.Value) (value.IntVec, error) {
	blk, ok := v.(*value.Block)
	if !ok {
		return nil, fmt.Errorf("%s: block argument required, got %s", name, v.Kind())
	}
	iv, ok := blk.Data().(value.IntVec)
	if !ok {
		return nil, fmt.Errorf("%s: IntVec payload required, got %T", name, blk.Data())
	}
	return iv, nil
}

// intOf extracts an integer argument.
func intOf(name string, v value.Value) (int64, error) {
	n, ok := v.(value.Int)
	if !ok {
		return 0, fmt.Errorf("%s: integer argument required, got %s", name, v.Kind())
	}
	return int64(n), nil
}

// mix is the non-commutative integer hash combine all stress digests fold
// through: any reordering, duplication, or loss of a contribution changes
// the result, which is exactly what makes the differential oracle sharp.
func mix(h, x int64) int64 { return h*1000003 + x*7919 + 12345 }

// Operators returns the stress registry chained onto the builtins:
// deterministic integer-vector block operators exercising allocation,
// destructive in-place mutation, block splitting (multi-value packages),
// read-only probing, and pure folding — every ownership shape the memory
// plan and the §8 contention protocol distinguish.
func Operators() *operator.Registry {
	r := operator.NewRegistry(operator.Builtins())

	// st_cell(n): allocate a fresh block whose length and contents derive
	// deterministically from n.
	r.MustRegister(&operator.Operator{
		Name: "st_cell", Arity: 1, Fresh: true, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			n, err := intOf("st_cell", args[0])
			if err != nil {
				return nil, err
			}
			ln := 4 + int((n%13+13)%13)
			cells := ctx.Pool().Ints(ln)
			for i := range cells {
				cells[i] = n*2654435761 + int64(i)*7919
			}
			ctx.Charge(int64(ln) + 1)
			return value.NewBlockStats(cells, ctx.BlockStats()), nil
		},
	})

	// st_stir(b, x): destructively perturb every cell of b with x.
	r.MustRegister(&operator.Operator{
		Name: "st_stir", Arity: 2, Destructive: []bool{true, false}, Fresh: true, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			cells, err := vecOf("st_stir", args[0])
			if err != nil {
				return nil, err
			}
			x, err := intOf("st_stir", args[1])
			if err != nil {
				return nil, err
			}
			for i := range cells {
				cells[i] = cells[i]*2862933555777941757 + x + int64(i)*97
			}
			ctx.Charge(int64(len(cells)) + 1)
			return args[0], nil
		},
	})

	// st_blend(a, b): destructively fold b's cells into a.
	r.MustRegister(&operator.Operator{
		Name: "st_blend", Arity: 2, Destructive: []bool{true, false}, Fresh: true, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			a, err := vecOf("st_blend", args[0])
			if err != nil {
				return nil, err
			}
			b, err := vecOf("st_blend", args[1])
			if err != nil {
				return nil, err
			}
			for i := range a {
				a[i] = a[i]*31 + b[i%len(b)] + int64(i)
			}
			ctx.Charge(int64(len(a)) + 1)
			return args[0], nil
		},
	})

	// st_fork(b): split b into a two-block package (the compiled "spread"
	// decomposition path). Halves are tagged so they diverge even when b
	// is tiny.
	r.MustRegister(&operator.Operator{
		Name: "st_fork", Arity: 1, Destructive: []bool{true}, Fresh: true, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			cells, err := vecOf("st_fork", args[0])
			if err != nil {
				return nil, err
			}
			h := (len(cells) + 1) / 2
			left := ctx.Pool().Ints(h + 1)
			right := ctx.Pool().Ints(len(cells) - h + 1)
			copy(left, cells[:h])
			copy(right, cells[h:])
			left[h] = 1
			right[len(cells)-h] = 2
			ctx.Charge(int64(len(cells)) + 1)
			return value.Tuple{
				value.NewBlockStats(left, ctx.BlockStats()),
				value.NewBlockStats(right, ctx.BlockStats()),
			}, nil
		},
	})

	// st_probe(b): read-only digest of b's cells.
	r.MustRegister(&operator.Operator{
		Name: "st_probe", Arity: 1, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			cells, err := vecOf("st_probe", args[0])
			if err != nil {
				return nil, err
			}
			h := int64(1469598103934665603)
			for _, c := range cells {
				h = mix(h, c)
			}
			ctx.Charge(int64(len(cells)) + 1)
			return value.Int(h), nil
		},
	})

	// st_mix(x, y): pure non-commutative hash combine.
	r.MustRegister(&operator.Operator{
		Name: "st_mix", Arity: 2, Pure: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			x, err := intOf("st_mix", args[0])
			if err != nil {
				return nil, err
			}
			y, err := intOf("st_mix", args[1])
			if err != nil {
				return nil, err
			}
			ctx.Charge(1)
			return value.Int(mix(x, y)), nil
		},
	})

	return r
}
