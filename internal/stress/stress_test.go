package stress

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/graph"
)

// smokeSeeds is the per-test seed batch; STRESS_SEEDS overrides it (the
// nightly CI job raises it).
func smokeSeeds(t *testing.T, def int) int {
	t.Helper()
	if s := os.Getenv("STRESS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad STRESS_SEEDS=%q: %v", s, err)
		}
		return n
	}
	return def
}

// TestGenerateDeterministic asserts the generator is a pure function of
// its config.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Funcs: 64, Seed: 7})
	b := Generate(GenConfig{Funcs: 64, Seed: 7})
	if a != b {
		t.Fatal("same config produced different programs")
	}
	c := Generate(GenConfig{Funcs: 64, Seed: 8})
	if a == c {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestGenerateCompiles asserts a spread of seeds compiles cleanly.
func TestGenerateCompiles(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		src := Generate(GenConfig{Funcs: 48, Seed: seed})
		if _, err := compile.Compile("gen.dlr", src, compile.Options{Registry: Operators()}); err != nil {
			t.Fatalf("seed %d failed to compile: %v\n%s", seed, err, clip(src, 2000))
		}
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n…"
}

// nodeCount compiles the program and counts coordination-graph nodes
// across all templates.
func nodeCount(t *testing.T, src string) int {
	t.Helper()
	res, err := compile.Compile("gen.dlr", src, compile.Options{Registry: Operators()})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return countNodes(res.Program)
}

func countNodes(p *graph.Program) int {
	n := 0
	for _, tpl := range p.Templates {
		n += len(tpl.Nodes)
	}
	return n
}

// TestGraphScale asserts the generator reaches the ROADMAP's 10k-node
// floor at moderate function counts (100k is the nightly's territory).
func TestGraphScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	src := Generate(GenConfig{Funcs: 600, Seed: 3})
	n := nodeCount(t, src)
	if n < 10_000 {
		t.Fatalf("600-function program has %d graph nodes, want >= 10000", n)
	}
	t.Logf("600 funcs -> %d nodes, %d source lines", n, strings.Count(src, "\n"))
}

// TestShrinkSyntheticPredicate drives the shrinker with a structural
// predicate standing in for a real oracle failure ("the program uses
// st_fork"): the minimized program must preserve the predicate, stay
// compilable, and collapse to a handful of lines.
func TestShrinkSyntheticPredicate(t *testing.T) {
	p := NewProgram(GenConfig{Funcs: 40, Seed: 11})
	orig := p.Source()
	if !strings.Contains(orig, "st_fork") {
		t.Skip("seed 11 generated no st_fork; adjust seed")
	}
	check := func(q *Program) (string, bool) {
		src := q.Source()
		if !strings.Contains(src, "st_fork") {
			return "", false
		}
		if _, err := compile.Compile("shrunk.dlr", src, compile.Options{Registry: Operators()}); err != nil {
			return "", false
		}
		return "program still contains st_fork", true
	}
	shrunk, msg := Shrink(p, check)
	if msg == "" {
		t.Fatal("shrinker lost the failure")
	}
	src := shrunk.Source()
	if !strings.Contains(src, "st_fork") {
		t.Fatal("shrunk program no longer satisfies the predicate")
	}
	origLines, gotLines := strings.Count(orig, "\n"), strings.Count(src, "\n")
	if gotLines > 20 {
		t.Errorf("shrunk program has %d lines, want <= 20:\n%s", gotLines, src)
	}
	if gotLines >= origLines {
		t.Errorf("no shrinkage: %d -> %d lines", origLines, gotLines)
	}
	t.Logf("shrunk %d -> %d lines", origLines, gotLines)
}

// TestShrinkKeepsOracleFailure wires the shrinker to a real (simulated)
// oracle defect: a predicate that reruns the program and reports failure
// whenever the fingerprints of two compile variants disagree — here
// faked by checking a miscompiled-style property, structure retained in
// TestShrinkSyntheticPredicate. This test instead checks WriteRepro
// round-trips through the replay loader's expectations.
func TestWriteRepro(t *testing.T) {
	p := NewProgram(GenConfig{Funcs: 12, Seed: 5})
	dir := t.TempDir()
	path, err := WriteRepro(dir, p, "[fuse sim/w8] mismatch: synthetic")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	if !strings.Contains(src, "-- failure: [fuse sim/w8] mismatch: synthetic") {
		t.Fatal("repro header missing failure record")
	}
	rep := CheckSource(path, src, Specs()[:3])
	if !rep.OK() {
		t.Fatalf("written repro does not pass the oracle it was saved from: %s", rep.Failures[0])
	}
}

// TestOracleMatrix drives seeded programs through the full differential
// matrix: every compile variant × every run spec must produce the
// reference result bit-exactly with all invariants intact.
func TestOracleMatrix(t *testing.T) {
	seeds := smokeSeeds(t, 6)
	funcs := 32
	if testing.Short() {
		seeds, funcs = 2, 16
	}
	var faults int64
	for seed := 0; seed < seeds; seed++ {
		p := NewProgram(GenConfig{Funcs: funcs, Seed: int64(seed)})
		rep := CheckProgram(p)
		if !rep.OK() {
			t.Errorf("seed %d: %d failures, first: %s", seed, len(rep.Failures), rep.Failures[0])
		}
		if rep.Runs == 0 {
			t.Errorf("seed %d: no runs recorded", seed)
		}
		faults += rep.FaultsInjected
	}
	// Per sweep, not per seed: a single valid program may execute no
	// fault-target operators, but a whole batch injecting nothing means
	// the fault legs are mis-wired.
	if faults == 0 {
		t.Error("fault legs injected no faults across the whole sweep")
	}
}
