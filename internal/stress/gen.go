package stress

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// kind classifies a generated variable so expressions stay type-correct at
// runtime: integers feed arithmetic and st_mix, blocks feed the st_*
// block operators.
type kind int

const (
	kInt kind = iota
	kBlock
)

// retKind classifies a generated function's return shape.
type retKind int

const (
	retInt  retKind = iota // a single integer
	retBlock               // a single block
	retPair                // a two-integer package, decomposed by callers
)

// Sig is a generated function's calling shape. First-class selection
// (`(if c then fA else fB)(args)`) requires both candidates to share one.
type Sig struct {
	Params []kind
	Ret    retKind
}

func (s Sig) key() string {
	var b strings.Builder
	for _, k := range s.Params {
		if k == kBlock {
			b.WriteByte('B')
		} else {
			b.WriteByte('i')
		}
	}
	fmt.Fprintf(&b, "->%d", s.Ret)
	return b.String()
}

// neutral returns the simplest expression of the signature's return shape
// — the shrinker's replacement for a stubbed function body.
func (s Sig) neutral() string {
	switch s.Ret {
	case retBlock:
		return "st_cell(1)"
	case retPair:
		return "<1, 2>"
	default:
		return "1"
	}
}

// Bind is one let binding of a generated function body. The generator
// keeps bodies structured (rather than flat text) so the shrinker can
// drop or neutralize individual bindings and re-render.
type Bind struct {
	// Names holds one name, or several for a <a, b> decomposition.
	Names []string
	// Kinds gives each bound name's kind, aligned with Names.
	Kinds []kind
	// Init is the rendered initializer expression. For IsFn binds it is
	// the full nested definition ("g3(v4) st_mix(v4, p0)") instead.
	Init string
	// IsFn marks a nested function definition binding.
	IsFn bool
}

// Fn is one generated function (or main).
type Fn struct {
	Name   string
	Params []string
	Sig    Sig
	Binds  []*Bind
	Result string
	// Cost is a conservative static bound on the dynamic operator
	// executions one call of this function can trigger (callees included,
	// both conditional arms counted, iterate bodies multiplied by their
	// trip counts). The generator uses it to keep whole-program runtime
	// bounded on irregular call DAGs — without it, diamond fan-out would
	// make dynamic work exponential in graph depth.
	Cost int64
}

// render appends the function's source text.
func (f *Fn) render(b *strings.Builder) {
	fmt.Fprintf(b, "%s(%s)\n", f.Name, strings.Join(f.Params, ", "))
	if len(f.Binds) == 0 {
		fmt.Fprintf(b, "  %s\n\n", f.Result)
		return
	}
	for i, bind := range f.Binds {
		prefix := "      "
		if i == 0 {
			prefix = "  let "
		}
		switch {
		case bind.IsFn:
			fmt.Fprintf(b, "%s%s\n", prefix, bind.Init)
		case len(bind.Names) > 1:
			fmt.Fprintf(b, "%s<%s> = %s\n", prefix, strings.Join(bind.Names, ", "), bind.Init)
		default:
			fmt.Fprintf(b, "%s%s = %s\n", prefix, bind.Names[0], bind.Init)
		}
	}
	fmt.Fprintf(b, "  in %s\n\n", f.Result)
}

// Program is a generated stress program in structured form. Source
// renders it; the shrinker edits it.
type Program struct {
	Cfg   GenConfig
	Funcs []*Fn
	Main  *Fn
}

// Source renders the program as Delirium source text.
func (p *Program) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- stress workload: funcs=%d seed=%d budget=%d\n\n",
		p.Cfg.Funcs, p.Cfg.Seed, p.Cfg.CostBudget)
	for _, f := range p.Funcs {
		f.render(&b)
	}
	p.Main.render(&b)
	return b.String()
}

// clone deep-copies the program for destructive shrinking.
func (p *Program) clone() *Program {
	out := &Program{Cfg: p.Cfg}
	cp := func(f *Fn) *Fn {
		nf := *f
		nf.Binds = make([]*Bind, len(f.Binds))
		for i, b := range f.Binds {
			nb := *b
			nf.Binds[i] = &nb
		}
		return &nf
	}
	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, cp(f))
	}
	out.Main = cp(p.Main)
	return out
}

// GenConfig parameterizes generation. The same config always produces the
// same program.
type GenConfig struct {
	// Funcs is the top-level function count; coordination-graph size
	// scales roughly linearly with it (~20–40 nodes per function).
	Funcs int
	// Seed drives every random choice.
	Seed int64
	// CostBudget bounds the dynamic operator executions of one run
	// (conservatively counted). Zero selects 20_000 + 100*Funcs, so
	// bigger graphs also execute more of themselves.
	CostBudget int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Funcs < 8 {
		c.Funcs = 8
	}
	if c.CostBudget <= 0 {
		c.CostBudget = 20_000 + 100*int64(c.Funcs)
	}
	return c
}

// Generate renders a seeded random stress program as source text.
func Generate(cfg GenConfig) string { return NewProgram(cfg).Source() }

// NewProgram builds a seeded random stress program: an irregular DAG of
// Funcs functions over the stress operators, with deep let/iterate
// nests, conditionals, first-class functions, destructive block
// pipelines, and multi-value packages. Deterministic per config.
func NewProgram(cfg GenConfig) *Program {
	cfg = cfg.withDefaults()
	g := &generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		maxFnCost: cfg.CostBudget / 4,
		bySig:     make(map[string][]*Fn),
	}
	p := &Program{Cfg: cfg}
	for i := 0; i < cfg.Funcs; i++ {
		f := g.genFn(i, p.Funcs)
		p.Funcs = append(p.Funcs, f)
		g.bySig[f.Sig.key()] = append(g.bySig[f.Sig.key()], f)
	}
	p.Main = g.genMain(p.Funcs)
	return p
}

// generator carries generation state shared across functions.
type generator struct {
	cfg       GenConfig
	rng       *rand.Rand
	maxFnCost int64
	bySig     map[string][]*Fn
}

// scope tracks the variables in play while one function body grows.
type scope struct {
	ints   []string
	blocks []string
	seq    int
	cost   int64
}

func (s *scope) fresh(prefix string) string {
	s.seq++
	return fmt.Sprintf("%s%d", prefix, s.seq)
}

func (s *scope) add(name string, k kind) {
	if k == kBlock {
		s.blocks = append(s.blocks, name)
	} else {
		s.ints = append(s.ints, name)
	}
}

// intAtom picks an integer-valued leaf: a variable in scope or a small
// constant.
func (g *generator) intAtom(s *scope) string {
	if len(s.ints) > 0 && g.rng.Intn(4) != 0 {
		return s.ints[g.rng.Intn(len(s.ints))]
	}
	return fmt.Sprintf("%d", g.rng.Intn(97)+1)
}

// blockAtom picks a block variable, or synthesizes a fresh cell when none
// is in scope.
func (g *generator) blockAtom(s *scope) string {
	if len(s.blocks) > 0 {
		return s.blocks[g.rng.Intn(len(s.blocks))]
	}
	s.cost += 16
	return fmt.Sprintf("st_cell(%s)", g.intAtom(s))
}

var intOps = []string{"add", "sub", "mul", "min", "max", "st_mix"}

// intExpr builds a random integer expression tree of the given depth.
// Block probes appear as leaves when a block is in scope, so block
// contents flow into conditionals, loop steps, and plain arithmetic.
func (g *generator) intExpr(s *scope, depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		if len(s.blocks) > 0 && g.rng.Intn(6) == 0 {
			s.cost += 16
			return fmt.Sprintf("st_probe(%s)", s.blocks[g.rng.Intn(len(s.blocks))])
		}
		return g.intAtom(s)
	}
	s.cost++
	if g.rng.Intn(8) == 0 {
		return fmt.Sprintf("incr(%s)", g.intExpr(s, depth-1))
	}
	op := intOps[g.rng.Intn(len(intOps))]
	return fmt.Sprintf("%s(%s, %s)", op, g.intExpr(s, depth-1), g.intExpr(s, depth-1))
}

// condExpr builds an integer-valued conditional.
func (g *generator) condExpr(s *scope, depth int) string {
	s.cost += 2
	return fmt.Sprintf("if lt(%s, %d) then %s else %s",
		g.intAtom(s), g.rng.Intn(128), g.intExpr(s, depth), g.intExpr(s, depth))
}

// genFn generates function idx, allowed to call any of prior.
func (g *generator) genFn(idx int, prior []*Fn) *Fn {
	f := &Fn{Name: fmt.Sprintf("f%d", idx)}
	np := 1 + g.rng.Intn(3)
	for i := 0; i < np; i++ {
		k := kInt
		if g.rng.Intn(4) == 0 {
			k = kBlock
		}
		f.Sig.Params = append(f.Sig.Params, k)
		f.Params = append(f.Params, fmt.Sprintf("p%d", i))
	}
	switch r := g.rng.Intn(100); {
	case r < 60:
		f.Sig.Ret = retInt
	case r < 85:
		f.Sig.Ret = retBlock
	default:
		f.Sig.Ret = retPair
	}

	s := &scope{}
	for i, p := range f.Params {
		s.add(p, f.Sig.Params[i])
	}
	nb := 2 + g.rng.Intn(9)
	for i := 0; i < nb; i++ {
		g.genBind(f, s, prior)
	}
	g.genResult(f, s)
	f.Cost = s.cost + 4
	return f
}

// genBind appends one randomly-flavored binding to f.
func (g *generator) genBind(f *Fn, s *scope, prior []*Fn) {
	switch roll := g.rng.Intn(100); {
	case roll < 26:
		g.bindInt(f, s)
	case roll < 46:
		if !g.bindCall(f, s, prior) {
			g.bindBlockOp(f, s)
		}
	case roll < 60:
		g.bindBlockOp(f, s)
	case roll < 68:
		g.bindFork(f, s)
	case roll < 78:
		g.bindValue(f, s, kInt, g.condExpr(s, 1+g.rng.Intn(2)))
	case roll < 90:
		g.bindIterate(f, s)
	default:
		g.bindFirstClass(f, s, prior)
	}
}

// bindValue appends a simple single-name binding.
func (g *generator) bindValue(f *Fn, s *scope, k kind, init string) {
	prefix := "v"
	if k == kBlock {
		prefix = "b"
	}
	name := s.fresh(prefix)
	f.Binds = append(f.Binds, &Bind{Names: []string{name}, Kinds: []kind{k}, Init: init})
	s.add(name, k)
}

func (g *generator) bindInt(f *Fn, s *scope) {
	g.bindValue(f, s, kInt, g.intExpr(s, 2+g.rng.Intn(3)))
}

// bindBlockOp creates or destructively transforms a block.
func (g *generator) bindBlockOp(f *Fn, s *scope) {
	if len(s.blocks) == 0 || g.rng.Intn(3) == 0 {
		s.cost += 16
		g.bindValue(f, s, kBlock, fmt.Sprintf("st_cell(%s)", g.intExpr(s, 1)))
		return
	}
	s.cost += 20
	if len(s.blocks) > 1 && g.rng.Intn(3) == 0 {
		a := s.blocks[g.rng.Intn(len(s.blocks))]
		b := s.blocks[g.rng.Intn(len(s.blocks))]
		g.bindValue(f, s, kBlock, fmt.Sprintf("st_blend(%s, %s)", a, b))
		return
	}
	g.bindValue(f, s, kBlock,
		fmt.Sprintf("st_stir(%s, %s)", s.blocks[g.rng.Intn(len(s.blocks))], g.intExpr(s, 1)))
}

// bindFork splits a block into a two-block package.
func (g *generator) bindFork(f *Fn, s *scope) {
	if len(s.blocks) == 0 {
		g.bindBlockOp(f, s)
		return
	}
	s.cost += 20
	a, b := s.fresh("b"), s.fresh("b")
	f.Binds = append(f.Binds, &Bind{
		Names: []string{a, b},
		Kinds: []kind{kBlock, kBlock},
		Init:  fmt.Sprintf("st_fork(%s)", s.blocks[g.rng.Intn(len(s.blocks))]),
	})
	s.add(a, kBlock)
	s.add(b, kBlock)
}

// callArgs builds an argument list matching a signature.
func (g *generator) callArgs(s *scope, sig Sig) string {
	args := make([]string, len(sig.Params))
	for i, k := range sig.Params {
		if k == kBlock {
			args[i] = g.blockAtom(s)
		} else {
			args[i] = g.intAtom(s)
		}
	}
	return strings.Join(args, ", ")
}

// bindCallTo binds the result of calling expression callee with sig's
// shape.
func (g *generator) bindCallTo(f *Fn, s *scope, callee string, sig Sig) {
	switch sig.Ret {
	case retPair:
		a, b := s.fresh("v"), s.fresh("v")
		f.Binds = append(f.Binds, &Bind{
			Names: []string{a, b},
			Kinds: []kind{kInt, kInt},
			Init:  fmt.Sprintf("%s(%s)", callee, g.callArgs(s, sig)),
		})
		s.add(a, kInt)
		s.add(b, kInt)
	case retBlock:
		g.bindValue(f, s, kBlock, fmt.Sprintf("%s(%s)", callee, g.callArgs(s, sig)))
	default:
		g.bindValue(f, s, kInt, fmt.Sprintf("%s(%s)", callee, g.callArgs(s, sig)))
	}
}

// bindCall calls an earlier function whose cost still fits this
// function's budget. Candidate choice is intentionally irregular: half
// the time uniform over the whole eligible prefix (high fan-in on early
// leaves), half the time biased to recent functions (deep chains).
func (g *generator) bindCall(f *Fn, s *scope, prior []*Fn) bool {
	callee := g.pickCallee(s, prior)
	if callee == nil {
		return false
	}
	s.cost += callee.Cost + 2
	g.bindCallTo(f, s, callee.Name, callee.Sig)
	return true
}

func (g *generator) pickCallee(s *scope, prior []*Fn) *Fn {
	if len(prior) == 0 {
		return nil
	}
	budget := g.maxFnCost - s.cost
	for try := 0; try < 6; try++ {
		var cand *Fn
		if g.rng.Intn(2) == 0 {
			cand = prior[g.rng.Intn(len(prior))]
		} else {
			lo := len(prior) - 16
			if lo < 0 {
				lo = 0
			}
			cand = prior[lo+g.rng.Intn(len(prior)-lo)]
		}
		if cand.Cost <= budget {
			return cand
		}
	}
	return nil
}

// bindIterate appends a bounded integer accumulator loop. The step
// expression sees the loop variables, so iteration state threads through
// arbitrary expression shapes (including block probes).
func (g *generator) bindIterate(f *Fn, s *scope) {
	iv, tv := s.fresh("i"), s.fresh("t")
	trips := int64(2 + g.rng.Intn(4))
	init := g.intAtom(s)

	// Cost of the step body is paid once per trip.
	inner := &scope{ints: append(append([]string{}, s.ints...), iv, tv), blocks: s.blocks, seq: s.seq}
	step := g.intExpr(inner, 1+g.rng.Intn(2))
	if g.rng.Intn(3) == 0 {
		step = fmt.Sprintf("if lt(%s, %d) then %s else st_mix(%s, %s)",
			iv, g.rng.Intn(3)+1, step, tv, iv)
		inner.cost += 4
	}
	s.seq = inner.seq
	s.cost += (inner.cost-s.cost)*trips + 2*trips + 4

	name := s.fresh("v")
	f.Binds = append(f.Binds, &Bind{
		Names: []string{name},
		Kinds: []kind{kInt},
		Init: fmt.Sprintf("iterate\n     {\n       %s = 0, incr(%s)\n       %s = %s, %s\n     } while lt(%s, %d),\n     result %s",
			iv, iv, tv, init, step, iv, trips, tv),
	})
	s.add(name, kInt)
}

// bindFirstClass exercises first-class functions: either a conditional
// selection between two same-signature top-level functions applied as a
// closure, or a nested function definition captured and applied.
func (g *generator) bindFirstClass(f *Fn, s *scope, prior []*Fn) {
	budget := g.maxFnCost - s.cost
	// Prefer top-level selection when a signature bucket offers two
	// affordable candidates.
	keys := make([]string, 0, len(g.bySig))
	for k, fns := range g.bySig {
		if len(fns) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys) // map order must not leak into generation
	if len(keys) > 0 {
		key := keys[g.rng.Intn(len(keys))]
		fns := g.bySig[key]
		a := fns[g.rng.Intn(len(fns))]
		b := fns[g.rng.Intn(len(fns))]
		worst := a.Cost
		if b.Cost > worst {
			worst = b.Cost
		}
		if a != b && worst+8 <= budget {
			s.cost += worst + 8
			callee := fmt.Sprintf("(if lt(%s, %d) then %s else %s)",
				g.intAtom(s), g.rng.Intn(128), a.Name, b.Name)
			g.bindCallTo(f, s, callee, a.Sig)
			return
		}
	}
	// Fall back to a nested definition: g(v) captures enclosing scope.
	gname, v := s.fresh("g"), s.fresh("w")
	inner := &scope{ints: append(append([]string{}, s.ints...), v), blocks: s.blocks, seq: s.seq}
	body := g.intExpr(inner, 2)
	s.seq = inner.seq
	s.cost += (inner.cost - s.cost) + 6
	f.Binds = append(f.Binds, &Bind{
		Names: []string{gname},
		Kinds: []kind{kInt},
		IsFn:  true,
		Init:  fmt.Sprintf("%s(%s) %s", gname, v, body),
	})
	g.bindValue(f, s, kInt, fmt.Sprintf("(%s)(%s)", gname, g.intAtom(s)))
}

// genResult folds every variable in scope into the function's result so
// each binding's value is observable in the output: integers directly,
// blocks through st_probe. The fold is non-commutative, so ordering bugs
// surface too.
func (g *generator) genResult(f *Fn, s *scope) {
	acc := ""
	for _, v := range s.ints {
		if acc == "" {
			acc = v
			continue
		}
		s.cost++
		acc = fmt.Sprintf("st_mix(%s, %s)", acc, v)
	}
	for _, b := range s.blocks {
		s.cost += 17
		probe := fmt.Sprintf("st_probe(%s)", b)
		if acc == "" {
			acc = probe
			continue
		}
		acc = fmt.Sprintf("st_mix(%s, %s)", acc, probe)
	}
	if acc == "" {
		acc = "7"
	}
	switch f.Sig.Ret {
	case retBlock:
		s.cost += 20
		if len(s.blocks) > 0 {
			f.Result = fmt.Sprintf("st_stir(%s, %s)", s.blocks[g.rng.Intn(len(s.blocks))], acc)
		} else {
			f.Result = fmt.Sprintf("st_cell(%s)", acc)
		}
	case retPair:
		s.cost += 2
		f.Result = fmt.Sprintf("<%s, %s>", acc, g.intExpr(s, 1))
	default:
		f.Result = acc
	}
}

// genMain builds main: calls into the heavy end of the DAG until the
// whole-program cost budget is spent, then folds everything reachable.
func (g *generator) genMain(funcs []*Fn) *Fn {
	f := &Fn{Name: "main", Sig: Sig{Ret: retInt}}
	s := &scope{}
	budget := g.cfg.CostBudget
	calls := 0
	for calls < 8 {
		var cand *Fn
		for try := 0; try < 8; try++ {
			lo := len(funcs) / 2
			c := funcs[lo+g.rng.Intn(len(funcs)-lo)]
			if c.Cost <= budget-s.cost {
				cand = c
				break
			}
		}
		if cand == nil {
			break
		}
		s.cost += cand.Cost + 2
		g.bindCallTo(f, s, cand.Name, cand.Sig)
		calls++
	}
	if calls == 0 {
		// Every function exceeds the budget slice: call the cheapest one.
		cheapest := funcs[0]
		for _, c := range funcs {
			if c.Cost < cheapest.Cost {
				cheapest = c
			}
		}
		g.bindCallTo(f, s, cheapest.Name, cheapest.Sig)
	}
	// Main always runs a destructive block pipeline of its own, so every
	// generated program — whatever the call DAG reached — exercises
	// allocation, in-place mutation, and splitting, and the oracle's
	// seeded-fault legs always have targets to kill.
	s.cost += 60
	g.bindValue(f, s, kBlock, fmt.Sprintf("st_stir(st_cell(%s), %s)", g.intAtom(s), g.intAtom(s)))
	g.bindFork(f, s)
	g.genResult(f, s)
	f.Cost = s.cost
	return f
}
