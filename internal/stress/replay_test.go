package stress

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRegressionReplay recompiles and differentially re-runs every
// shrunk repro under testdata/regressions/ through the full oracle
// matrix. Committed repros capture bugs that have since been fixed, so
// each must now pass — a reappearing failure means the original bug
// regressed.
func TestRegressionReplay(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "regressions")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("no regressions directory")
		}
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".dlr" {
			continue
		}
		ran++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			rep := CheckSource(name, string(data), Specs())
			for _, f := range rep.Failures {
				t.Errorf("%s", f)
			}
			if rep.Runs == 0 {
				t.Error("no runs recorded")
			}
		})
	}
	if ran == 0 {
		t.Log("regressions directory holds no .dlr repros yet")
	}
}
