package stress

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// CheckFn reports whether a program still fails: it returns a non-empty
// failure description and true when the bug reproduces. The shrinker
// only keeps an edit when the failure survives it.
type CheckFn func(p *Program) (string, bool)

// OracleCheck adapts the differential oracle into a shrink predicate.
func OracleCheck(p *Program) (string, bool) {
	rep := CheckProgram(p)
	if rep.OK() {
		return "", false
	}
	return rep.Failures[0].String(), true
}

var identRE = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_]*`)

// referenced collects every identifier appearing in the program's
// initializers and results, so unreferenced functions can be dropped.
func referenced(p *Program) map[string]bool {
	refs := make(map[string]bool)
	scan := func(f *Fn) {
		for _, b := range f.Binds {
			for _, id := range identRE.FindAllString(b.Init, -1) {
				refs[id] = true
			}
		}
		for _, id := range identRE.FindAllString(f.Result, -1) {
			refs[id] = true
		}
	}
	for _, f := range p.Funcs {
		scan(f)
	}
	scan(p.Main)
	return refs
}

// namesUsedAfter reports whether any of bind i's names appear in a later
// initializer or the result of f.
func namesUsedAfter(f *Fn, i int) bool {
	rest := make([]string, 0, len(f.Binds)-i)
	for _, b := range f.Binds[i+1:] {
		rest = append(rest, b.Init)
	}
	rest = append(rest, f.Result)
	text := strings.Join(rest, "\n")
	ids := make(map[string]bool)
	for _, id := range identRE.FindAllString(text, -1) {
		ids[id] = true
	}
	for _, n := range f.Binds[i].Names {
		if ids[n] {
			return true
		}
	}
	return false
}

// neutralInit returns the simplest initializer preserving bind b's shape.
func neutralInit(b *Bind) string {
	if b.IsFn {
		// Keep the nested definition's header, neutralize its body.
		if idx := strings.IndexByte(b.Init, ')'); idx >= 0 {
			return b.Init[:idx+1] + " 1"
		}
	}
	if len(b.Names) > 1 {
		parts := make([]string, len(b.Names))
		for i, k := range b.Kinds {
			if k == kBlock {
				parts[i] = "st_cell(1)"
			} else {
				parts[i] = "1"
			}
		}
		return "<" + strings.Join(parts, ", ") + ">"
	}
	if len(b.Kinds) > 0 && b.Kinds[0] == kBlock {
		return "st_cell(1)"
	}
	return "1"
}

// Shrink minimizes a failing program while check keeps reproducing the
// failure, delta-debugging style: stub whole function bodies to their
// neutral form, drop functions nothing references, delete or neutralize
// individual bindings, and simplify results — greedily to a fixpoint.
// Returns the minimized program and the failure message it still
// produces.
func Shrink(p *Program, check CheckFn) (*Program, string) {
	msg, ok := check(p)
	if !ok {
		return p, ""
	}
	cur := p.clone()

	// attempt applies edit to a scratch copy and keeps it if the failure
	// survives.
	attempt := func(edit func(*Program) bool) bool {
		scratch := cur.clone()
		if !edit(scratch) {
			return false
		}
		if m, still := check(scratch); still {
			cur, msg = scratch, m
			return true
		}
		return false
	}

	for changed := true; changed; {
		changed = false

		// Pass 1: stub whole function bodies.
		for i := 0; i < len(cur.Funcs); i++ {
			i := i
			f := cur.Funcs[i]
			if len(f.Binds) == 0 && f.Result == f.Sig.neutral() {
				continue
			}
			if attempt(func(s *Program) bool {
				s.Funcs[i].Binds = nil
				s.Funcs[i].Result = s.Funcs[i].Sig.neutral()
				return true
			}) {
				changed = true
			}
		}

		// Pass 2: drop functions nothing references.
		for {
			refs := referenced(cur)
			victim := -1
			for i, f := range cur.Funcs {
				if !refs[f.Name] {
					victim = i
					break
				}
			}
			if victim < 0 {
				break
			}
			if !attempt(func(s *Program) bool {
				s.Funcs = append(s.Funcs[:victim:victim], s.Funcs[victim+1:]...)
				return true
			}) {
				break
			}
			changed = true
		}

		// Pass 3: per-binding edits, main first (failures usually live on
		// the call path from main). Function count is stable within this
		// pass, so fi indexes consistently even as attempt swaps cur; the
		// current function is always re-fetched from cur after edits.
		for fi := 0; fi <= len(cur.Funcs); fi++ {
			fi := fi
			get := func(s *Program) *Fn {
				if fi == 0 {
					return s.Main
				}
				return s.Funcs[fi-1]
			}
			for bi := len(get(cur).Binds) - 1; bi >= 0; bi-- {
				bi := bi
				if bi >= len(get(cur).Binds) {
					continue
				}
				// Delete the binding outright when nothing later uses it.
				if !namesUsedAfter(get(cur), bi) {
					if attempt(func(s *Program) bool {
						f := get(s)
						f.Binds = append(f.Binds[:bi:bi], f.Binds[bi+1:]...)
						return true
					}) {
						changed = true
						continue
					}
				}
				// Otherwise neutralize its initializer.
				b := get(cur).Binds[bi]
				if n := neutralInit(b); b.Init != n {
					if attempt(func(s *Program) bool {
						get(s).Binds[bi].Init = n
						return true
					}) {
						changed = true
					}
				}
			}
			// Simplify the result to its neutral form.
			if n := get(cur).Sig.neutral(); get(cur).Result != n {
				if attempt(func(s *Program) bool {
					f := get(s)
					f.Result = f.Sig.neutral()
					return true
				}) {
					changed = true
				}
			}
		}
	}
	return cur, msg
}

// WriteRepro saves a shrunk failing program under dir (creating it) as a
// standalone .dlr file whose header comments record the config and the
// failure, and returns the file path. The replay test recompiles and
// re-runs everything in the directory, so a caught bug permanently gates
// future changes once the file is committed.
func WriteRepro(dir string, p *Program, failure string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- shrunk stress repro: funcs=%d seed=%d budget=%d\n",
		p.Cfg.Funcs, p.Cfg.Seed, p.Cfg.CostBudget)
	for _, line := range strings.Split(strings.TrimSpace(failure), "\n") {
		fmt.Fprintf(&b, "-- failure: %s\n", line)
	}
	b.WriteString("\n")
	b.WriteString(p.Source())
	name := filepath.Join(dir, fmt.Sprintf("stress_seed%d.dlr", p.Cfg.Seed))
	if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return name, nil
}
