package stress

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/compile"
	rt "repro/internal/runtime"
	"repro/internal/value"
)

// Variant is one compile-time configuration of the oracle matrix.
type Variant struct {
	Name    string
	Fuse    bool
	MemPlan bool
	// Profiled re-fuses with operator weights measured by a calibration run
	// — the adaptive loop's compile path. Profile weights only reorder
	// ready queues, so every fingerprint must still match the reference.
	Profiled bool
	// Affinity compiles the affinity plan and runs with locality hints on
	// (producer-preferred dispatch, batched stealing). Hints are advisory —
	// they move work between workers, never change it — so every
	// fingerprint must still match the reference.
	Affinity bool
}

// Variants returns the compile configurations: the four fuse×memplan
// combinations, the profile-guided adaptive recompile, and the
// affinity-scheduled leg.
func Variants() []Variant {
	return []Variant{
		{Name: "plain"},
		{Name: "fuse", Fuse: true},
		{Name: "memplan", MemPlan: true},
		{Name: "fuse+memplan", Fuse: true, MemPlan: true},
		{Name: "adaptive", Fuse: true, MemPlan: true, Profiled: true},
		{Name: "affinity", Fuse: true, MemPlan: true, Affinity: true},
	}
}

// Reuse selects how a RunSpec exercises engine lifecycle.
type Reuse int

// Reuse modes.
const (
	// ReuseNone runs once on a fresh engine.
	ReuseNone Reuse = iota
	// ReuseReset runs three times on one engine with Reset between runs;
	// every repetition must reproduce the reference bit-exactly.
	ReuseReset
	// ReuseRunMany pipelines two invocations through RunMany's persistent
	// worker pool.
	ReuseRunMany
)

// RunSpec is one runtime configuration of the oracle matrix.
type RunSpec struct {
	Name    string
	Mode    rt.Mode
	Workers int
	Reuse   Reuse
	// FaultKind, when Faults is set, selects the injected failure flavor.
	Faults    bool
	FaultKind rt.FaultKind
}

// Specs returns the runtime half of the oracle matrix: Real vs Simulated,
// 1/2/8 workers, fresh vs Reset/RunMany-reused engines, and seeded
// faults+retry legs. The first spec is the reference execution.
func Specs() []RunSpec {
	return []RunSpec{
		{Name: "sim/w1", Mode: rt.Simulated, Workers: 1},
		{Name: "sim/w8", Mode: rt.Simulated, Workers: 8},
		{Name: "real/w1", Mode: rt.Real, Workers: 1},
		{Name: "real/w2", Mode: rt.Real, Workers: 2},
		{Name: "real/w8", Mode: rt.Real, Workers: 8},
		{Name: "sim/w2/reset", Mode: rt.Simulated, Workers: 2, Reuse: ReuseReset},
		{Name: "real/w4/runmany", Mode: rt.Real, Workers: 4, Reuse: ReuseRunMany},
		{Name: "real/w2/faults", Mode: rt.Real, Workers: 2, Faults: true, FaultKind: rt.FaultError},
		{Name: "sim/w4/faults", Mode: rt.Simulated, Workers: 4, Faults: true, FaultKind: rt.FaultPanic},
	}
}

// maxOps guards every oracle run against runaway execution; generated
// programs are cost-bounded far below it.
const maxOps = 50_000_000

// Fingerprint renders a result value into a canonical comparison string.
// Blocks print their full payload, so two results fingerprint equal only
// when bit-identical.
func Fingerprint(v value.Value) string {
	var b strings.Builder
	fingerprint(&b, v)
	return b.String()
}

func fingerprint(b *strings.Builder, v value.Value) {
	switch x := v.(type) {
	case value.Tuple:
		b.WriteByte('<')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			fingerprint(b, e)
		}
		b.WriteByte('>')
	case *value.Block:
		fmt.Fprintf(b, "block%v", x.Data())
	case nil:
		b.WriteString("nil")
	default:
		b.WriteString(v.String())
	}
}

// Failure describes one oracle violation.
type Failure struct {
	Variant Variant
	Spec    RunSpec
	// Kind is "mismatch", "error", or "invariant".
	Kind string
	Msg  string
}

func (f Failure) String() string {
	return fmt.Sprintf("[%s %s] %s: %s", f.Variant.Name, f.Spec.Name, f.Kind, f.Msg)
}

// Report is the outcome of one program's trip through the oracle matrix.
type Report struct {
	// Reference is the fingerprint of the baseline run (first variant,
	// first spec).
	Reference string
	// Runs counts individual executions compared (reuse legs count each
	// repetition).
	Runs int
	// FaultsInjected totals injected faults across all fault legs. A
	// single valid program may execute zero fault-target operators, so
	// "faults actually fired" is asserted per sweep, not per run.
	FaultsInjected int64
	// Failures lists every violation; empty means the program passed.
	Failures []Failure
}

// OK reports whether every run agreed and every invariant held.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// statsSnap captures the per-run counters the invariant checks need;
// Reset zeroes Engine.Stats, so reuse legs snapshot before resetting.
type statsSnap struct {
	ops                          int64
	allocated, freed             int64
	elidedRetains, elidedReleases int64
	pooledAllocs, copiesAvoided  int64
	fusedNodes, fusedSaved       int64
	retries, faultsInjected      int64
	affHits, affMisses           int64
	batchSteals, batchStolen     int64
}

func snap(st *rt.Stats) statsSnap {
	return statsSnap{
		ops:            st.OpsExecuted,
		allocated:      st.Blocks.Allocated,
		freed:          st.Blocks.Freed,
		elidedRetains:  st.ElidedRetains,
		elidedReleases: st.ElidedReleases,
		pooledAllocs:   st.PooledAllocs,
		copiesAvoided:  st.CopiesAvoided,
		fusedNodes:     st.FusedNodes,
		fusedSaved:     st.FusedDispatchesSaved,
		retries:        st.Retries,
		faultsInjected: st.FaultsInjected,
		affHits:        st.AffinityHits,
		affMisses:      st.AffinityMisses,
		batchSteals:    st.BatchSteals,
		batchStolen:    st.BatchStolenTasks,
	}
}

// checkInvariants validates one run's counters against the §8 accounting
// guarantees and each optimization pass's coherence rules.
func checkInvariants(v Variant, s RunSpec, st statsSnap) []string {
	var bad []string
	if st.allocated != st.freed {
		bad = append(bad, fmt.Sprintf("block leak: Allocated=%d Freed=%d", st.allocated, st.freed))
	}
	if !v.MemPlan {
		if st.elidedRetains != 0 || st.elidedReleases != 0 || st.pooledAllocs != 0 || st.copiesAvoided != 0 {
			bad = append(bad, fmt.Sprintf(
				"memplan counters nonzero without memplan: elided=%d/%d pooled=%d copiesAvoided=%d",
				st.elidedRetains, st.elidedReleases, st.pooledAllocs, st.copiesAvoided))
		}
	} else if st.pooledAllocs > st.allocated {
		bad = append(bad, fmt.Sprintf("PooledAllocs=%d exceeds Allocated=%d", st.pooledAllocs, st.allocated))
	}
	if !v.Fuse && (st.fusedNodes != 0 || st.fusedSaved != 0) {
		bad = append(bad, fmt.Sprintf("fusion counters nonzero without fuse: nodes=%d saved=%d",
			st.fusedNodes, st.fusedSaved))
	}
	if st.fusedSaved > st.fusedNodes || st.fusedNodes > st.ops {
		bad = append(bad, fmt.Sprintf("fusion counters incoherent: saved=%d nodes=%d ops=%d",
			st.fusedSaved, st.fusedNodes, st.ops))
	}
	if !v.Affinity {
		if st.affHits != 0 || st.affMisses != 0 || st.batchSteals != 0 || st.batchStolen != 0 {
			bad = append(bad, fmt.Sprintf(
				"affinity counters nonzero without affinity: hits=%d misses=%d batch=%d/%d",
				st.affHits, st.affMisses, st.batchSteals, st.batchStolen))
		}
	} else if st.batchStolen < st.batchSteals {
		bad = append(bad, fmt.Sprintf("batch-steal counters incoherent: %d events moved %d tasks",
			st.batchSteals, st.batchStolen))
	}
	if s.Faults {
		if st.retries < st.faultsInjected {
			bad = append(bad, fmt.Sprintf("Retries=%d < FaultsInjected=%d", st.retries, st.faultsInjected))
		}
	} else if st.faultsInjected != 0 {
		bad = append(bad, fmt.Sprintf("FaultsInjected=%d on fault-free leg", st.faultsInjected))
	}
	return bad
}

func (s RunSpec) config() rt.Config {
	cfg := rt.Config{
		Workers: s.Workers,
		Mode:    s.Mode,
		MaxOps:  maxOps,
	}
	if s.Faults {
		cfg.Faults = rt.KillOnce(s.FaultKind, FaultOps()...)
		cfg.Retry = rt.RetryPolicy{MaxAttempts: 3}
	}
	return cfg
}

// runSpec executes one compiled variant under one runtime spec and
// appends the runs' fingerprints and invariant findings to the report.
func runSpec(rep *Report, v Variant, s RunSpec, res *compile.Result) {
	fail := func(kind, msg string) {
		rep.Failures = append(rep.Failures, Failure{Variant: v, Spec: s, Kind: kind, Msg: msg})
	}
	check := func(out value.Value, st statsSnap) {
		rep.Runs++
		rep.FaultsInjected += st.faultsInjected
		got := Fingerprint(out)
		if rep.Reference == "" {
			rep.Reference = got
		} else if got != rep.Reference {
			fail("mismatch", fmt.Sprintf("got %.80s… want %.80s…", got, rep.Reference))
		}
		for _, msg := range checkInvariants(v, s, st) {
			fail("invariant", msg)
		}
	}

	cfg := s.config()
	cfg.AffinityHints = v.Affinity
	eng := rt.New(res.Program, cfg)
	switch s.Reuse {
	case ReuseRunMany:
		results, err := eng.RunMany(context.Background(), [][]value.Value{nil, nil})
		if err != nil {
			fail("error", fmt.Sprintf("RunMany: %v", err))
			return
		}
		// RunMany reports batch-aggregate stats, so the accounting
		// invariant is checked on the aggregate: a leak in any run of the
		// batch still breaks the equality.
		st := snap(eng.Stats())
		if st.allocated != st.freed {
			fail("invariant", fmt.Sprintf("block leak across batch: Allocated=%d Freed=%d", st.allocated, st.freed))
		}
		for i, r := range results {
			if r.Err != nil {
				fail("error", fmt.Sprintf("RunMany[%d]: %v", i, r.Err))
				continue
			}
			rep.Runs++
			got := Fingerprint(r.Value)
			if rep.Reference == "" {
				rep.Reference = got
			} else if got != rep.Reference {
				fail("mismatch", fmt.Sprintf("RunMany[%d] diverged: got %.80s…", i, got))
			}
		}
	case ReuseReset:
		for i := 0; i < 3; i++ {
			if i > 0 {
				// Reset also rewinds the fault plan's execution cursors.
				if err := eng.Reset(); err != nil {
					fail("error", fmt.Sprintf("Reset: %v", err))
					return
				}
			}
			out, err := eng.Run()
			if err != nil {
				fail("error", fmt.Sprintf("run %d: %v", i, err))
				return
			}
			check(out, snap(eng.Stats()))
		}
	default:
		out, err := eng.Run()
		if err != nil {
			fail("error", err.Error())
			return
		}
		check(out, snap(eng.Stats()))
	}
}

// CheckSource compiles src under every variant and executes each compiled
// program under every spec, comparing all fingerprints against the first
// run and checking runtime invariants on every run.
func CheckSource(file, src string, specs []RunSpec) *Report {
	rep := &Report{}
	for _, v := range Variants() {
		opts := compile.Options{
			Registry: Operators(),
			Fuse:     v.Fuse,
			MemPlan:  v.MemPlan,
			Affinity: v.Affinity,
		}
		if v.Profiled {
			prof, err := calibrate(file, src, opts)
			if err != nil {
				rep.Failures = append(rep.Failures, Failure{
					Variant: v, Kind: "error", Msg: fmt.Sprintf("calibrate: %v", err),
				})
				continue
			}
			opts.FuseProfile = prof
		}
		res, err := compile.Compile(file, src, opts)
		if err != nil {
			rep.Failures = append(rep.Failures, Failure{
				Variant: v, Kind: "error", Msg: fmt.Sprintf("compile: %v", err),
			})
			continue
		}
		for _, s := range specs {
			runSpec(rep, v, s, res)
		}
	}
	return rep
}

// calibrate compiles with unit weights and measures mean operator costs on
// a single-worker simulated run — the adaptive loop's calibration pass,
// inlined so the stress matrix exercises measured-weight recompiles on
// arbitrary generated programs.
func calibrate(file, src string, opts compile.Options) (map[string]int64, error) {
	res, err := compile.Compile(file, src, opts)
	if err != nil {
		return nil, err
	}
	eng := rt.New(res.Program, rt.Config{
		Workers: 1, Mode: rt.Simulated, MaxOps: maxOps, Timing: true})
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return eng.ProfileWeights(), nil
}

// CheckProgram runs a generated program through the full oracle matrix.
func CheckProgram(p *Program) *Report {
	return CheckSource(fmt.Sprintf("stress-%d.dlr", p.Cfg.Seed), p.Source(), Specs())
}
