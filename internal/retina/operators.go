package retina

import (
	"fmt"

	"repro/internal/operator"
	"repro/internal/value"
)

// Piece payloads. Ownership is linear: a split operator consumes the scene
// block and hands out four pieces; piece 0 carries the scene pointer so the
// matching merge operator can reassemble it. Convolution and integration
// pieces write disjoint row bands of shared grids — the §2.1 discipline of
// splitting data so that operators modify separate parts, which keeps the
// copy-on-write machinery idle (the tests assert zero copies).

type targetPiece struct {
	idx     int
	targets []Target
	scene   *Scene // piece 0 only
}

type convolPiece struct {
	idx      int
	slab     int
	r0, r1   int
	kernel   []float64
	src, dst *value.FloatGrid
	scene    *Scene // piece 0 only
}

type updatePiece struct {
	idx    int
	slab   int
	r0, r1 int
	layer  *value.FloatGrid
	motion *value.FloatGrid
	scene  *Scene // piece 0 only
}

// sceneBlock wraps a scene in a fresh exclusive block, recycling an Opaque
// shell through the worker's free list when a memory plan is active.
func sceneBlock(s *Scene, ctx operator.Context) *value.Block {
	return value.NewBlockStats(ctx.Pool().Opaque(s, s.Words()), ctx.BlockStats())
}

func pieceBlock(payload interface{}, words int, ctx operator.Context) *value.Block {
	return value.NewBlockStats(ctx.Pool().Opaque(payload, words), ctx.BlockStats())
}

// payload extracts an Opaque payload from a block argument.
func payload(v value.Value, what string) (interface{}, error) {
	if v == nil {
		return nil, fmt.Errorf("%s: missing block argument", what)
	}
	b, ok := v.(*value.Block)
	if !ok {
		return nil, fmt.Errorf("%s: block argument required, got %s", what, v.Kind())
	}
	o, ok := b.Data().(*value.Opaque)
	if !ok {
		return nil, fmt.Errorf("%s: unexpected block payload %T", what, b.Data())
	}
	return o.Payload, nil
}

// ExtractScene unwraps a program result into the scene it carries.
func ExtractScene(v value.Value) (*Scene, error) {
	p, err := payload(v, "result")
	if err != nil {
		return nil, err
	}
	s, ok := p.(*Scene)
	if !ok {
		return nil, fmt.Errorf("result: expected scene, got %T", p)
	}
	return s, nil
}

// Operators returns a registry with the retina operators for cfg chained
// onto the builtin registry. Per-argument destructive annotations follow
// §2.1: every operator that mutates or consumes a block says so.
//
// All operators are marked Retryable: the pieces carry the scene through
// shallow-shared Opaque payloads, so the declaration rests on each body
// validating every argument before its first mutation — a failure exit
// (and an injected fault, which fires at operator entry) never leaves the
// shared scene half-updated, and mid-loop validation failures only repeat
// idempotent assignments on retry.
func Operators(cfg Config) (*operator.Registry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := operator.NewRegistry(operator.Builtins())

	r.MustRegister(&operator.Operator{
		Name: "set_up", Arity: 0, Retryable: true, Fresh: true,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			s := NewScene(cfg)
			ctx.Charge(int64(cfg.W * cfg.H))
			return sceneBlock(s, ctx), nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "target_split", Arity: 1, Destructive: []bool{true}, Retryable: true, Fresh: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			p, err := payload(args[0], "target_split")
			if err != nil {
				return nil, err
			}
			s, ok := p.(*Scene)
			if !ok {
				return nil, fmt.Errorf("target_split: expected scene, got %T", p)
			}
			ctx.Charge(Quarters)
			out := make(value.Tuple, Quarters)
			for i := 0; i < Quarters; i++ {
				tp := &targetPiece{idx: i, targets: s.Targets[i]}
				if i == 0 {
					tp.scene = s
				}
				out[i] = pieceBlock(tp, len(tp.targets)*5, ctx)
			}
			return out, nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "target_bite", Arity: 1, Destructive: []bool{true}, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			p, err := payload(args[0], "target_bite")
			if err != nil {
				return nil, err
			}
			tp, ok := p.(*targetPiece)
			if !ok {
				return nil, fmt.Errorf("target_bite: expected target piece, got %T", p)
			}
			moveTargets(cfg, tp.targets)
			ctx.Charge(int64(len(tp.targets) * cfg.TargetWork))
			return args[0], nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "pre_update", Arity: Quarters, Retryable: true, Fresh: true,
		Destructive: []bool{true, true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			var s *Scene
			pieces := make([]*targetPiece, Quarters)
			for i, a := range args {
				p, err := payload(a, "pre_update")
				if err != nil {
					return nil, err
				}
				tp, ok := p.(*targetPiece)
				if !ok {
					return nil, fmt.Errorf("pre_update: argument %d is %T, want target piece", i, p)
				}
				pieces[tp.idx] = tp
				if tp.scene != nil {
					s = tp.scene
				}
			}
			if s == nil {
				return nil, fmt.Errorf("pre_update: no piece carried the scene")
			}
			for i, tp := range pieces {
				if tp == nil {
					return nil, fmt.Errorf("pre_update: piece %d missing", i)
				}
				s.Targets[i] = tp.targets
			}
			stampTargets(s)
			s.CurSlab = 0
			// Housekeeping is a full-frame sequential pass (§5.1); its cost
			// is what keeps the measured speedup below the ideal 4 — the
			// charge is calibrated so the four-processor point lands near
			// the paper's 3.3.
			ctx.Charge(int64(2 * cfg.W * cfg.H * cfg.K))
			return sceneBlock(s, ctx), nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "convol_split", Arity: 1, Destructive: []bool{true}, Retryable: true, Fresh: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			p, err := payload(args[0], "convol_split")
			if err != nil {
				return nil, err
			}
			s, ok := p.(*Scene)
			if !ok {
				return nil, fmt.Errorf("convol_split: expected scene, got %T", p)
			}
			if s.CurSlab >= cfg.Slabs {
				return nil, fmt.Errorf("convol_split: slab %d out of range", s.CurSlab)
			}
			ctx.Charge(Quarters)
			src, dst := s.Layers[s.CurSlab], s.Layers[s.CurSlab+1]
			out := make(value.Tuple, Quarters)
			for i := 0; i < Quarters; i++ {
				r0, r1 := rowBand(cfg.H, i)
				cp := &convolPiece{idx: i, slab: s.CurSlab, r0: r0, r1: r1,
					kernel: s.Kernel, src: src, dst: dst}
				if i == 0 {
					cp.scene = s
				}
				out[i] = pieceBlock(cp, (r1-r0)*cfg.W, ctx)
			}
			return out, nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "convol_bite", Arity: 2, Destructive: []bool{true, false}, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			p, err := payload(args[0], "convol_bite")
			if err != nil {
				return nil, err
			}
			cp, ok := p.(*convolPiece)
			if !ok {
				return nil, fmt.Errorf("convol_bite: expected convolution piece, got %T", p)
			}
			slab, ok := args[1].(value.Int)
			if !ok || int(slab) != cp.slab {
				return nil, fmt.Errorf("convol_bite: slab argument %v does not match piece slab %d", args[1], cp.slab)
			}
			convolveRows(cfg, cp.kernel, cp.src, cp.dst, cp.r0, cp.r1)
			ctx.Charge(int64(cp.r1-cp.r0) * int64(cfg.W) * int64(cfg.K*cfg.K))
			return args[0], nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "post_up", Arity: 1 + Quarters, Retryable: true, Fresh: true,
		Destructive: []bool{false, true, true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, slab, err := mergeConvolPieces(args)
			if err != nil {
				return nil, err
			}
			s.CurSlab++
			if slab%2 == 1 {
				// Unbalanced version (§5.1): on odd slabs the temporal
				// integration of the last two written layers runs here,
				// sequentially — "roughly half of its invocations executed
				// in negligible time while half took as long as all the
				// convolutions combined" (§5.2).
				integrateRows(s.Motion, s.Layers[slab], 0, cfg.H)
				integrateRows(s.Motion, s.Layers[slab+1], 0, cfg.H)
				ctx.Charge(int64(cfg.W*cfg.H) * int64(cfg.K*cfg.K))
			} else {
				ctx.Charge(int64(cfg.W))
			}
			if s.CurSlab == cfg.Slabs {
				s.Time++
			}
			return sceneBlock(s, ctx), nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "update_split", Arity: Quarters, Retryable: true, Fresh: true,
		Destructive: []bool{true, true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, slab, err := mergeConvolPieces(args)
			if err != nil {
				return nil, err
			}
			ctx.Charge(Quarters * 4)
			layer := s.Layers[slab+1]
			out := make(value.Tuple, Quarters)
			for i := 0; i < Quarters; i++ {
				r0, r1 := rowBand(cfg.H, i)
				up := &updatePiece{idx: i, slab: slab, r0: r0, r1: r1, layer: layer, motion: s.Motion}
				if i == 0 {
					up.scene = s
				}
				out[i] = pieceBlock(up, (r1-r0)*cfg.W, ctx)
			}
			return out, nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "update_bite", Arity: 2, Destructive: []bool{true, false}, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			p, err := payload(args[0], "update_bite")
			if err != nil {
				return nil, err
			}
			up, ok := p.(*updatePiece)
			if !ok {
				return nil, fmt.Errorf("update_bite: expected update piece, got %T", p)
			}
			if slab, ok := args[1].(value.Int); !ok || int(slab) != up.slab {
				return nil, fmt.Errorf("update_bite: slab argument %v does not match piece slab %d", args[1], up.slab)
			}
			if up.scene != nil && up.scene.Motion != up.motion {
				return nil, fmt.Errorf("update_bite: motion grid mismatch")
			}
			integrateRows(up.motion, up.layer, up.r0, up.r1)
			ctx.Charge(int64(up.r1-up.r0) * int64(cfg.W) * int64(cfg.K*cfg.K) / 2)
			return args[0], nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "done_up", Arity: 1 + Quarters, Retryable: true, Fresh: true,
		Destructive: []bool{false, true, true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			var s *Scene
			slab := -1
			for i, a := range args[1:] {
				p, err := payload(a, "done_up")
				if err != nil {
					return nil, err
				}
				up, ok := p.(*updatePiece)
				if !ok {
					return nil, fmt.Errorf("done_up: argument %d is %T, want update piece", i+1, p)
				}
				if up.scene != nil {
					s = up.scene
				}
				slab = up.slab
			}
			if s == nil {
				return nil, fmt.Errorf("done_up: no piece carried the scene")
			}
			if want, ok := args[0].(value.Int); !ok || int(want) != slab {
				return nil, fmt.Errorf("done_up: slab argument %v does not match pieces' slab %d", args[0], slab)
			}
			s.CurSlab++
			if s.CurSlab == cfg.Slabs {
				s.Time++
			}
			ctx.Charge(int64(cfg.W))
			return sceneBlock(s, ctx), nil
		},
	})

	return r, nil
}

// mergeConvolPieces validates and reassembles the four convolution pieces,
// returning the scene and the slab they served. For post_up the first
// argument is the slab; for update_split the pieces come directly.
func mergeConvolPieces(args []value.Value) (*Scene, int, error) {
	pieceArgs := args
	wantSlab := -1
	if len(args) == 1+Quarters {
		slab, ok := args[0].(value.Int)
		if !ok {
			return nil, 0, fmt.Errorf("merge: slab argument must be an integer, got %s", args[0].Kind())
		}
		wantSlab = int(slab)
		pieceArgs = args[1:]
	}
	var s *Scene
	slab := -1
	seen := 0
	for i, a := range pieceArgs {
		p, err := payload(a, "merge")
		if err != nil {
			return nil, 0, err
		}
		cp, ok := p.(*convolPiece)
		if !ok {
			return nil, 0, fmt.Errorf("merge: argument %d is %T, want convolution piece", i, p)
		}
		if cp.scene != nil {
			s = cp.scene
		}
		slab = cp.slab
		seen++
	}
	if s == nil {
		return nil, 0, fmt.Errorf("merge: no piece carried the scene")
	}
	if seen != Quarters {
		return nil, 0, fmt.Errorf("merge: %d pieces, want %d", seen, Quarters)
	}
	if wantSlab >= 0 && wantSlab != slab {
		return nil, 0, fmt.Errorf("merge: slab argument %d does not match pieces' slab %d", wantSlab, slab)
	}
	return s, slab, nil
}
