package retina

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/runtime"
)

func testConfig() Config {
	return Config{W: 24, H: 24, K: 3, Slabs: 4, Timesteps: 2,
		TargetsPerQuarter: 4, TargetWork: 50, Seed: 7}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{W: 4, H: 24, K: 3, Slabs: 4, Timesteps: 1, TargetsPerQuarter: 1},
		{W: 24, H: 24, K: 4, Slabs: 4, Timesteps: 1, TargetsPerQuarter: 1},
		{W: 24, H: 24, K: 3, Slabs: 3, Timesteps: 1, TargetsPerQuarter: 1},
		{W: 24, H: 24, K: 3, Slabs: 4, Timesteps: 0, TargetsPerQuarter: 1},
		{W: 24, H: 24, K: 3, Slabs: 4, Timesteps: 1, TargetsPerQuarter: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestReferenceDeterministic(t *testing.T) {
	a := Reference(testConfig())
	b := Reference(testConfig())
	if !Equal(a, b) {
		t.Fatal("Reference is not deterministic")
	}
	if a.Time != 2 {
		t.Errorf("Time = %d, want 2", a.Time)
	}
	if a.Response() <= 0 {
		t.Errorf("Response = %v, want positive motion energy", a.Response())
	}
}

func TestKernelNormalized(t *testing.T) {
	k := makeKernel(5)
	var mass float64
	for _, v := range k {
		if v < 0 {
			mass -= v
		} else {
			mass += v
		}
	}
	if mass < 0.99 || mass > 1.01 {
		t.Errorf("kernel |mass| = %v, want 1", mass)
	}
	// Center-surround: positive peak at center.
	if k[2*5+2] <= 0 {
		t.Errorf("kernel center = %v, want positive", k[2*5+2])
	}
}

func TestProgramsParse(t *testing.T) {
	cfg := testConfig()
	for _, v := range []Version{V1, V2} {
		if _, err := CompileProgram(cfg, v); err != nil {
			t.Errorf("version %s: %v", v, err)
		}
	}
}

func TestDeliriumMatchesReference(t *testing.T) {
	cfg := testConfig()
	want := Reference(cfg)
	for _, v := range []Version{V1, V2} {
		for _, workers := range []int{1, 4} {
			scene, _, err := Run(cfg, v, runtime.Config{Mode: runtime.Real, Workers: workers, MaxOps: 5_000_000})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", v, workers, err)
			}
			if !Equal(scene, want) {
				t.Errorf("%s workers=%d: scene differs from sequential reference", v, workers)
			}
		}
	}
}

func TestV1AndV2ComputeSameScene(t *testing.T) {
	cfg := testConfig()
	s1, _, err := Run(cfg, V1, runtime.Config{Mode: runtime.Simulated, Workers: 4, MaxOps: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Run(cfg, V2, runtime.Config{Mode: runtime.Simulated, Workers: 4, MaxOps: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(s1, s2) {
		t.Error("balanced and unbalanced programs disagree")
	}
}

func TestNoCopiesWithCarefulDecomposition(t *testing.T) {
	// §2.1: a Delirium programmer is careful to prevent the copying of
	// large data structures; this decomposition never triggers
	// copy-on-write.
	cfg := testConfig()
	for _, v := range []Version{V1, V2} {
		_, eng, err := Run(cfg, v, runtime.Config{Mode: runtime.Real, Workers: 4, MaxOps: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if copies := eng.Stats().Blocks.Copies; copies != 0 {
			t.Errorf("%s: %d copy-on-write events, want 0", v, copies)
		}
	}
}

func TestSimulatedSpeedupShape(t *testing.T) {
	// The Figure 1 shape: v2 on 4 processors well above v1; 3 procs no
	// better than 2 (four equal tasks).
	cfg := Config{W: 32, H: 32, K: 5, Slabs: 4, Timesteps: 2,
		TargetsPerQuarter: 8, TargetWork: 400, Seed: 3}
	mach := machine.CrayYMP()
	makespan := func(v Version, procs int) int64 {
		_, eng, err := Run(cfg, v, runtime.Config{
			Mode: runtime.Simulated, Workers: procs, Machine: mach, MaxOps: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Stats().MakespanTicks
	}
	base := makespan(V2, 1)
	s2 := float64(base) / float64(makespan(V2, 2))
	s3 := float64(base) / float64(makespan(V2, 3))
	s4 := float64(base) / float64(makespan(V2, 4))
	if s2 < 1.7 || s2 > 2.05 {
		t.Errorf("speedup(2) = %.2f, want ~1.9", s2)
	}
	if s3 > s2*1.1 {
		t.Errorf("speedup(3) = %.2f should not improve on speedup(2) = %.2f", s3, s2)
	}
	if s4 < 2.9 || s4 > 4.0 {
		t.Errorf("speedup(4) = %.2f, want ~3.3", s4)
	}
	// v1 is capped near two by the sequential post_up.
	v1base := makespan(V1, 1)
	v1s4 := float64(v1base) / float64(makespan(V1, 4))
	if v1s4 > 2.4 {
		t.Errorf("v1 speedup(4) = %.2f, should be capped near 2", v1s4)
	}
	if v1s4 >= s4 {
		t.Errorf("balancing must help: v1 %.2f vs v2 %.2f", v1s4, s4)
	}
}

func TestNodeTimingListingShape(t *testing.T) {
	// §5.2: in v1 the heavy post_up invocations take roughly as long as
	// all four convol_bites combined; in v2 update_bites are balanced.
	cfg := Config{W: 32, H: 32, K: 5, Slabs: 4, Timesteps: 1,
		TargetsPerQuarter: 8, TargetWork: 100, Seed: 3}
	_, eng, err := Run(cfg, V1, runtime.Config{
		Mode: runtime.Simulated, Workers: 1, Timing: true, MaxOps: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	var convolMax, postMax, postMin int64
	postMin = 1 << 62
	for _, e := range eng.Timing().Entries() {
		switch e.Name {
		case "convol_bite":
			if e.Ticks > convolMax {
				convolMax = e.Ticks
			}
		case "post_up":
			if e.Ticks > postMax {
				postMax = e.Ticks
			}
			if e.Ticks < postMin {
				postMin = e.Ticks
			}
		}
	}
	if postMax < 3*convolMax {
		t.Errorf("heavy post_up (%d) should dwarf one convol_bite (%d)", postMax, convolMax)
	}
	if postMin*10 > postMax {
		t.Errorf("post_up should be bimodal: min %d vs max %d", postMin, postMax)
	}

	// Balanced version: update_bite within 25%% of convol_bite band times.
	_, eng2, err := Run(cfg, V2, runtime.Config{
		Mode: runtime.Simulated, Workers: 1, Timing: true, MaxOps: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	var upMax, upMin int64
	upMin = 1 << 62
	for _, e := range eng2.Timing().Entries() {
		if e.Name == "update_bite" {
			if e.Ticks > upMax {
				upMax = e.Ticks
			}
			if e.Ticks < upMin {
				upMin = e.Ticks
			}
		}
	}
	if upMin == 0 || float64(upMax)/float64(upMin) > 1.25 {
		t.Errorf("update_bite imbalance: %d..%d", upMin, upMax)
	}
	listing := eng2.Timing().Listing(map[string]bool{"update_bite": true})
	if !strings.Contains(listing, "call of update_bite took") {
		t.Errorf("listing format wrong:\n%s", listing)
	}
}

func TestRuntimeOverheadUnderThreePercent(t *testing.T) {
	// §7: runtime overhead contributed less than one percent on the
	// retina model (and under three percent generally).
	cfg := Config{W: 64, H: 64, K: 5, Slabs: 4, Timesteps: 2,
		TargetsPerQuarter: 16, TargetWork: 400, Seed: 3}
	_, eng, err := Run(cfg, V2, runtime.Config{
		Mode: runtime.Simulated, Workers: 4, Machine: machine.CrayYMP(), MaxOps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if f := eng.Stats().OverheadFraction(); f >= 0.03 {
		t.Errorf("overhead fraction = %.4f, want < 0.03", f)
	}
}

func TestSourceIncludesDefines(t *testing.T) {
	src := Source(testConfig(), V1)
	for _, want := range []string{"define NUM_ITER 2", "define FINAL_SLAB 4", "define START_SLAB 0"} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q", want)
		}
	}
}

func TestVersionString(t *testing.T) {
	if V1.String() != "unbalanced" || V2.String() != "balanced" {
		t.Error("version names wrong")
	}
}

func TestExtractSceneErrors(t *testing.T) {
	if _, err := ExtractScene(nil); err == nil {
		t.Error("nil value should fail")
	}
}

func TestNodeTimingsIndependentOfProcessorCount(t *testing.T) {
	// §5.2: "The times are roughly the same whether the system is running
	// on one processor or many." In simulated mode, per-operator tick
	// multisets are exactly identical across processor counts.
	cfg := testConfig()
	collect := func(procs int) map[string][]int64 {
		_, eng, err := Run(cfg, V2, runtime.Config{
			Mode: runtime.Simulated, Workers: procs, Timing: true, MaxOps: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]int64)
		for _, e := range eng.Timing().Entries() {
			out[e.Name] = append(out[e.Name], e.Ticks)
		}
		for _, ticks := range out {
			sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
		}
		return out
	}
	one, four := collect(1), collect(4)
	if len(one) != len(four) {
		t.Fatalf("operator sets differ: %d vs %d", len(one), len(four))
	}
	for name, a := range one {
		b := four[name]
		if len(a) != len(b) {
			t.Errorf("%s: %d vs %d invocations", name, len(a), len(b))
			continue
		}
		for i := range a {
			// Identical up to memory-cost rounding: splitting the same
			// words between the local and remote accounting buckets can
			// truncate each bucket separately (±2 ticks).
			d := a[i] - b[i]
			if d < -2 || d > 2 {
				t.Errorf("%s: tick multiset differs at %d: %d vs %d", name, i, a[i], b[i])
				break
			}
		}
	}
}
