package retina

import (
	"testing"

	"repro/internal/runtime"
)

// v2Ops lists every embedded operator of the balanced program.
var v2Ops = []string{"set_up", "target_split", "target_bite", "pre_update",
	"convol_split", "convol_bite", "update_split", "update_bite", "done_up"}

// TestFaultRecoveryIdenticalOutput is the PR's acceptance criterion: a fault
// plan killing each retina operator exactly once — panic and error variants —
// must complete under retry with output identical to the fault-free run, in
// both execution modes. The operators share one mutable scene through their
// opaque payloads; they are safe to re-run because faults fire at operator
// entry and every operator validates before its first write.
func TestFaultRecoveryIdenticalOutput(t *testing.T) {
	cfg := testConfig()
	want := Reference(cfg)
	for _, mode := range []runtime.Mode{runtime.Simulated, runtime.Real} {
		for _, kind := range []runtime.FaultKind{runtime.FaultError, runtime.FaultPanic} {
			plan := runtime.KillOnce(kind, v2Ops...)
			scene, eng, err := Run(cfg, V2, runtime.Config{
				Mode: mode, Workers: 4, MaxOps: 5_000_000,
				Retry:  runtime.RetryPolicy{MaxAttempts: 3},
				Faults: plan,
			})
			if err != nil {
				t.Fatalf("mode %v kind %v: %v", mode, kind, err)
			}
			if !Equal(scene, want) {
				t.Errorf("mode %v kind %v: faulted run diverged from the fault-free output", mode, kind)
			}
			st := eng.Stats()
			if st.FaultsInjected != int64(len(v2Ops)) {
				t.Errorf("mode %v kind %v: FaultsInjected = %d, want %d",
					mode, kind, st.FaultsInjected, len(v2Ops))
			}
			if st.Retries != st.FaultsInjected {
				t.Errorf("mode %v kind %v: Retries = %d, want %d (each fault retried once)",
					mode, kind, st.Retries, st.FaultsInjected)
			}
		}
	}
}

// TestSeededFaultPlanRecovery drives the seeded plan across several seeds:
// faults land at pseudo-random execution indices, so retries hit operators
// mid-stream (not just on their first call), and the output must still
// match the oracle.
func TestSeededFaultPlanRecovery(t *testing.T) {
	cfg := testConfig()
	want := Reference(cfg)
	for _, seed := range []int64{1, 1990, 7777} {
		plan := runtime.SeededFaultPlan(seed, v2Ops, 8)
		scene, eng, err := Run(cfg, V2, runtime.Config{
			Mode: runtime.Real, Workers: 4, MaxOps: 5_000_000,
			Retry:  runtime.RetryPolicy{MaxAttempts: 3},
			Faults: plan,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !Equal(scene, want) {
			t.Errorf("seed %d: faulted run diverged from the fault-free output", seed)
		}
		if eng.Stats().FaultsInjected == 0 {
			t.Errorf("seed %d: no faults fired; plan indices out of range?", seed)
		}
	}
}

// TestFaultWithoutRetryFailsCleanly: with retry disabled the injected fault
// must surface as a structured error naming the operator, and the teardown
// must release every block.
func TestFaultWithoutRetryFailsCleanly(t *testing.T) {
	cfg := testConfig()
	for _, mode := range []runtime.Mode{runtime.Simulated, runtime.Real} {
		prog, err := CompileProgram(cfg, V2)
		if err != nil {
			t.Fatal(err)
		}
		eng := runtime.New(prog, runtime.Config{
			Mode: mode, Workers: 4, MaxOps: 5_000_000,
			Faults: runtime.KillOnce(runtime.FaultError, "convol_bite"),
		})
		_, err = eng.Run()
		re, ok := err.(*runtime.RunError)
		if !ok {
			t.Fatalf("mode %v: err = %v, want *RunError", mode, err)
		}
		if re.Op != "convol_bite" || re.Kind != runtime.FailError {
			t.Errorf("mode %v: RunError{Op: %q, Kind: %v}, want convol_bite/FailError",
				mode, re.Op, re.Kind)
		}
		st := eng.Stats().Blocks
		if st.Allocated != st.Freed {
			t.Errorf("mode %v: error-path block leak: allocated %d, freed %d",
				mode, st.Allocated, st.Freed)
		}
	}
}
