// Package retina reimplements case study #1 of the paper (§5): a
// convolution-based, retina-inspired neural model for motion detection
// (Eeckman's model, originally a Fortran code from the Naval Weapons
// Center), decomposed into Delirium operators exactly as the paper
// describes — target_split / target_bite, pre_update, convol_split /
// convol_bite, post_up (first version), and update_split / update_bite /
// done_up (the load-balanced version of §5.2).
//
// The model: a scene of moving targets is stamped onto the input layer of
// a stack of 2-D grids; each simulation slab convolves one layer into the
// next; a temporal-integration grid accumulates motion energy. The data is
// passed between operators as reference-counted blocks with the ownership
// discipline of §2.1: splits hand out disjoint parts, merges return the
// assembled scene, and a careful decomposition never copies a large
// structure (the tests assert zero copy-on-write events).
package retina

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Quarters is the parallel width of the decomposition. The paper chose
// four-way parallelism because the first target machine, a Cray-2, has
// four processors (§5.1).
const Quarters = 4

// Config sizes the simulation.
type Config struct {
	// W, H are the grid dimensions.
	W, H int
	// K is the (odd) convolution kernel width.
	K int
	// Slabs is the number of convolution passes per timestep; layers
	// number Slabs+1. Must be even so the unbalanced post_up batches
	// integrations in pairs.
	Slabs int
	// Timesteps is NUM_ITER.
	Timesteps int
	// TargetsPerQuarter is the tracked-target count per piece.
	TargetsPerQuarter int
	// TargetWork is the number of trajectory integration substeps each
	// target performs per timestep (the target_bite load).
	TargetWork int
	// Seed makes target initialization deterministic.
	Seed int64
	// MemPlan runs the memory-plan pass at compile time, activating copy
	// elision and block recycling in the executors.
	MemPlan bool
}

// DefaultConfig is a medium scene suitable for experiments.
func DefaultConfig() Config {
	return Config{W: 64, H: 64, K: 5, Slabs: 4, Timesteps: 3,
		TargetsPerQuarter: 16, TargetWork: 400, Seed: 1990}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.W < 8 || c.H < 8:
		return fmt.Errorf("retina: grid %dx%d too small", c.W, c.H)
	case c.K < 3 || c.K%2 == 0:
		return fmt.Errorf("retina: kernel width %d must be odd and >= 3", c.K)
	case c.Slabs < 2 || c.Slabs%2 != 0:
		return fmt.Errorf("retina: slab count %d must be even and >= 2", c.Slabs)
	case c.Timesteps < 1:
		return fmt.Errorf("retina: timesteps %d < 1", c.Timesteps)
	case c.TargetsPerQuarter < 1:
		return fmt.Errorf("retina: need at least one target per quarter")
	}
	return nil
}

// Target is one tracked moving stimulus.
type Target struct {
	X, Y   float64
	VX, VY float64
	Amp    float64
}

// Scene is the whole simulation state. It travels between operators inside
// a single block whose ownership is linear: split operators consume it and
// hand out pieces, merge operators reassemble it.
type Scene struct {
	Cfg    Config
	Kernel []float64
	// Layers[0] is the stamped input; Layers[s+1] is written by slab s.
	Layers []*value.FloatGrid
	// Motion is the temporal-integration grid.
	Motion *value.FloatGrid
	// Targets holds the four per-piece subsets.
	Targets [Quarters][]Target
	// CurSlab tracks which slab the next convol_split serves.
	CurSlab int
	// Time counts completed timesteps.
	Time int
}

// Words reports the scene size for block accounting.
func (s *Scene) Words() int {
	w := s.Motion.Size()
	for _, l := range s.Layers {
		w += l.Size()
	}
	return w + len(s.Kernel) + Quarters*s.Cfg.TargetsPerQuarter*5
}

// NewScene builds the initial scene: blurred-edge kernel, zero layers, and
// deterministic targets spread over the four quarters.
func NewScene(cfg Config) *Scene {
	s := &Scene{Cfg: cfg}
	s.Kernel = makeKernel(cfg.K)
	s.Layers = make([]*value.FloatGrid, cfg.Slabs+1)
	for i := range s.Layers {
		s.Layers[i] = value.NewFloatGrid(cfg.H, cfg.W)
	}
	s.Motion = value.NewFloatGrid(cfg.H, cfg.W)
	rng := newLCG(cfg.Seed)
	for q := 0; q < Quarters; q++ {
		s.Targets[q] = make([]Target, cfg.TargetsPerQuarter)
		for i := range s.Targets[q] {
			s.Targets[q][i] = Target{
				X:   rng.float() * float64(cfg.W-1),
				Y:   rng.float() * float64(cfg.H-1),
				VX:  (rng.float() - 0.5) * 2,
				VY:  (rng.float() - 0.5) * 2,
				Amp: 0.5 + rng.float(),
			}
		}
	}
	return s
}

// makeKernel builds a normalized center-surround kernel (difference of a
// peak and its neighborhood), the retina's receptive-field shape.
func makeKernel(k int) []float64 {
	kern := make([]float64, k*k)
	c := k / 2
	var sum float64
	for r := 0; r < k; r++ {
		for q := 0; q < k; q++ {
			d2 := float64((r-c)*(r-c) + (q-c)*(q-c))
			v := math.Exp(-d2/2) - 0.4*math.Exp(-d2/8)
			kern[r*k+q] = v
			sum += math.Abs(v)
		}
	}
	for i := range kern {
		kern[i] /= sum
	}
	return kern
}

// lcg is a small deterministic generator (the model must not depend on
// math/rand ordering guarantees).
type lcg struct{ state uint64 }

func newLCG(seed int64) *lcg {
	return &lcg{state: uint64(seed)*6364136223846793005 + 1442695040888963407}
}

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state
}

func (l *lcg) float() float64 { return float64(l.next()>>11) / float64(1<<53) }

// moveTargets advances one subset by cfg.TargetWork trajectory substeps,
// bouncing off the walls. This is the target_bite computation.
func moveTargets(cfg Config, targets []Target) {
	dt := 1.0 / float64(cfg.TargetWork)
	for i := range targets {
		t := &targets[i]
		for s := 0; s < cfg.TargetWork; s++ {
			t.X += t.VX * dt
			t.Y += t.VY * dt
			if t.X < 0 {
				t.X, t.VX = -t.X, -t.VX
			}
			if t.X > float64(cfg.W-1) {
				t.X, t.VX = 2*float64(cfg.W-1)-t.X, -t.VX
			}
			if t.Y < 0 {
				t.Y, t.VY = -t.Y, -t.VY
			}
			if t.Y > float64(cfg.H-1) {
				t.Y, t.VY = 2*float64(cfg.H-1)-t.Y, -t.VY
			}
		}
	}
}

// stampTargets clears the input layer and deposits a 3x3 spot per target,
// in deterministic subset-then-index order. This is pre_update's
// housekeeping.
func stampTargets(s *Scene) {
	in := s.Layers[0]
	for i := range in.Cells {
		in.Cells[i] = 0
	}
	for q := 0; q < Quarters; q++ {
		for _, t := range s.Targets[q] {
			cx, cy := int(t.X+0.5), int(t.Y+0.5)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					x, y := cx+dx, cy+dy
					if x < 0 || x >= s.Cfg.W || y < 0 || y >= s.Cfg.H {
						continue
					}
					w := t.Amp
					if dx != 0 || dy != 0 {
						w *= 0.5
					}
					in.Set(y, x, in.At(y, x)+w)
				}
			}
		}
	}
}

// convolveRows computes dst rows [r0, r1) as the kernel response over src,
// with clamped borders. This is convol_bite's quarter of a slab.
func convolveRows(cfg Config, kernel []float64, src, dst *value.FloatGrid, r0, r1 int) {
	k := cfg.K
	c := k / 2
	for r := r0; r < r1; r++ {
		for q := 0; q < cfg.W; q++ {
			var acc float64
			for kr := 0; kr < k; kr++ {
				sr := clamp(r+kr-c, 0, cfg.H-1)
				row := src.Row(sr)
				base := kr * k
				for kq := 0; kq < k; kq++ {
					sq := clamp(q+kq-c, 0, cfg.W-1)
					acc += kernel[base+kq] * row[sq]
				}
			}
			dst.Set(r, q, acc)
		}
	}
}

// integrateRows folds layer activity into the motion grid for rows
// [r0, r1): M = 0.9*M + 0.1*|L|, the temporal-integration step. One call
// covers one layer; the unbalanced post_up batches two layers on odd
// slabs, the balanced version integrates the just-written layer every
// slab, four row-bands in parallel. Both orders perform the identical
// per-pixel sequence, so the two programs compute the same scene.
func integrateRows(motion, layer *value.FloatGrid, r0, r1 int) {
	for r := r0; r < r1; r++ {
		lr := layer.Row(r)
		mr := motion.Row(r)
		for q := range mr {
			v := lr[q]
			if v < 0 {
				v = -v
			}
			mr[q] = 0.9*mr[q] + 0.1*v
		}
	}
}

// Response sums the motion grid — the detector output reported by the
// example programs.
func (s *Scene) Response() float64 {
	var sum float64
	for _, v := range s.Motion.Cells {
		sum += v
	}
	return sum
}

// rowBand returns the i-th of four contiguous row bands covering h rows.
func rowBand(h, i int) (int, int) {
	r0 := i * h / Quarters
	r1 := (i + 1) * h / Quarters
	return r0, r1
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Reference runs the whole simulation sequentially in plain Go — the
// "original sequential version" every speedup is measured against, and the
// oracle the Delirium runs are compared to.
func Reference(cfg Config) *Scene {
	s := NewScene(cfg)
	for ts := 0; ts < cfg.Timesteps; ts++ {
		for q := 0; q < Quarters; q++ {
			moveTargets(cfg, s.Targets[q])
		}
		stampTargets(s)
		for slab := 0; slab < cfg.Slabs; slab++ {
			convolveRows(cfg, s.Kernel, s.Layers[slab], s.Layers[slab+1], 0, cfg.H)
			integrateRows(s.Motion, s.Layers[slab+1], 0, cfg.H)
		}
		s.Time++
	}
	return s
}

// Equal compares two scenes' numeric state exactly (the coordination model
// guarantees bit-identical results regardless of schedule).
func Equal(a, b *Scene) bool {
	if a.Time != b.Time || len(a.Layers) != len(b.Layers) {
		return false
	}
	for i := range a.Layers {
		if !gridsEqual(a.Layers[i], b.Layers[i]) {
			return false
		}
	}
	if !gridsEqual(a.Motion, b.Motion) {
		return false
	}
	for q := 0; q < Quarters; q++ {
		if len(a.Targets[q]) != len(b.Targets[q]) {
			return false
		}
		for i := range a.Targets[q] {
			if a.Targets[q][i] != b.Targets[q][i] {
				return false
			}
		}
	}
	return true
}

func gridsEqual(a, b *value.FloatGrid) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			return false
		}
	}
	return true
}
