package retina

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// Version selects the coordination program.
type Version int

// Program versions from §5.
const (
	// V1 is the first parallelization (§5.1): post_up performs the
	// temporal integration sequentially on odd slabs, limiting speedup to
	// about two.
	V1 Version = iota
	// V2 is the load-balanced version (§5.2): post_up is decomposed into a
	// four-way fork-join (update_split / update_bite / done_up).
	V2
)

// String names the version.
func (v Version) String() string {
	if v == V2 {
		return "balanced"
	}
	return "unbalanced"
}

// programV1 is the coordination framework of §5.1, verbatim up to the
// preprocessor constants supplied by Source.
const programV1 = `
main()
  iterate
  {
    timestep=0,incr(timestep)
    scene=set_up(),
      let
        <a,b,c,d>=target_split(scene)
        ao=target_bite(a)
        bo=target_bite(b)
        co=target_bite(c)
        do=target_bite(d)
      in do_convol(ao,bo,co,do)
  }
  while is_not_equal(timestep, NUM_ITER),
  result scene

do_convol(c1,c2,c3,c4)
  iterate
  {
    slab=START_SLAB,incr(slab)
    convolve_data=pre_update(c1,c2,c3,c4),
      let
        <a,b,c,d>=convol_split(convolve_data)
        ao=convol_bite(a,slab)
        bo=convol_bite(b,slab)
        co=convol_bite(c,slab)
        do=convol_bite(d,slab)
      in post_up(slab,ao,bo,co,do)
  } while is_not_equal(slab,FINAL_SLAB),
    result convolve_data
`

// programV2 replaces do_convol with the balanced version of §5.2.
const programV2 = `
main()
  iterate
  {
    timestep=0,incr(timestep)
    scene=set_up(),
      let
        <a,b,c,d>=target_split(scene)
        ao=target_bite(a)
        bo=target_bite(b)
        co=target_bite(c)
        do=target_bite(d)
      in do_convol(ao,bo,co,do)
  }
  while is_not_equal(timestep, NUM_ITER),
  result scene

do_convol(c1,c2,c3,c4)
  iterate
  {
    slab=START_SLAB,incr(slab)
    convolve_data=pre_update(c1,c2,c3,c4),
      let
        <a,b,c,d>=convol_split(convolve_data)
        ao=convol_bite(a,slab)
        bo=convol_bite(b,slab)
        co=convol_bite(c,slab)
        do=convol_bite(d,slab)
      in let
          <u1,u2,u3,u4> = update_split(ao,bo,co,do)
          au=update_bite(u1,slab)
          bu=update_bite(u2,slab)
          cu=update_bite(u3,slab)
          du=update_bite(u4,slab)
         in done_up(slab,au,bu,cu,du)
  } while is_not_equal(slab,FINAL_SLAB),
    result convolve_data
`

// Source returns the full Delirium program text for cfg, preprocessor
// constants included.
func Source(cfg Config, v Version) string {
	body := programV1
	if v == V2 {
		body = programV2
	}
	return fmt.Sprintf("define NUM_ITER %d\ndefine START_SLAB 0\ndefine FINAL_SLAB %d\n%s",
		cfg.Timesteps, cfg.Slabs, body)
}

// CompileProgram compiles the retina coordination program against the
// operators for cfg.
func CompileProgram(cfg Config, v Version) (*graph.Program, error) {
	reg, err := Operators(cfg)
	if err != nil {
		return nil, err
	}
	res, err := compile.Compile(fmt.Sprintf("retina-%s.dlr", v), Source(cfg, v), compile.Options{Registry: reg, MemPlan: cfg.MemPlan})
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

// Run compiles and executes the retina simulation under ecfg, returning the
// final scene and the engine (for stats and node timings).
func Run(cfg Config, v Version, ecfg runtime.Config) (*Scene, *runtime.Engine, error) {
	prog, err := CompileProgram(cfg, v)
	if err != nil {
		return nil, nil, err
	}
	eng := runtime.New(prog, ecfg)
	out, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	scene, err := ExtractScene(out)
	if err != nil {
		return nil, nil, err
	}
	return scene, eng, nil
}
