package retina

import (
	"strings"
	"testing"

	"repro/internal/operator"
	"repro/internal/runtime"
	"repro/internal/value"
)

func opCall(t *testing.T, reg *operator.Registry, name string, args ...value.Value) (value.Value, error) {
	t.Helper()
	op, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("operator %s missing", name)
	}
	return op.Fn(operator.NopContext, args)
}

func TestOperatorMisuse(t *testing.T) {
	reg, err := Operators(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	wrong := value.NewBlock(&value.Opaque{Payload: 42, Words: 1})
	cases := []struct {
		op   string
		args []value.Value
		want string
	}{
		{"target_split", []value.Value{value.Int(1)}, "block argument required"},
		{"target_split", []value.Value{wrong}, "expected scene"},
		{"target_bite", []value.Value{wrong}, "expected target piece"},
		{"convol_split", []value.Value{wrong}, "expected scene"},
		{"convol_bite", []value.Value{wrong, value.Int(0)}, "expected convolution piece"},
		{"update_bite", []value.Value{wrong, value.Int(0)}, "expected update piece"},
		{"pre_update", []value.Value{wrong, wrong, wrong, wrong}, "want target piece"},
		{"post_up", []value.Value{value.Int(0), wrong, wrong, wrong, wrong}, "want convolution piece"},
		{"done_up", []value.Value{value.Int(0), wrong, wrong, wrong, wrong}, "want update piece"},
	}
	for _, c := range cases {
		_, err := opCall(t, reg, c.op, c.args...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.op, err, c.want)
		}
	}
}

func TestConvolBiteSlabMismatch(t *testing.T) {
	cfg := testConfig()
	reg, err := Operators(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scene, err := opCall(t, reg, "set_up")
	if err != nil {
		t.Fatal(err)
	}
	pieces, err := opCall(t, reg, "target_split", scene)
	if err != nil {
		t.Fatal(err)
	}
	tup := pieces.(value.Tuple)
	merged, err := opCall(t, reg, "pre_update", tup[0], tup[1], tup[2], tup[3])
	if err != nil {
		t.Fatal(err)
	}
	cps, err := opCall(t, reg, "convol_split", merged)
	if err != nil {
		t.Fatal(err)
	}
	cp0 := cps.(value.Tuple)[0]
	// The piece serves slab 0; claiming slab 3 is an internal
	// inconsistency the operator rejects.
	if _, err := opCall(t, reg, "convol_bite", cp0, value.Int(3)); err == nil ||
		!strings.Contains(err.Error(), "does not match piece slab") {
		t.Errorf("err = %v", err)
	}
}

func TestConvolSplitExhaustedSlabs(t *testing.T) {
	cfg := testConfig()
	reg, _ := Operators(cfg)
	scene, _ := opCall(t, reg, "set_up")
	s, err := ExtractScene(scene)
	if err != nil {
		t.Fatal(err)
	}
	s.CurSlab = cfg.Slabs // pretend every slab was already convolved
	if _, err := opCall(t, reg, "convol_split", scene); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestOperatorsRejectBadConfig(t *testing.T) {
	if _, err := Operators(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := CompileProgram(Config{}, V1); err == nil {
		t.Error("CompileProgram with bad config accepted")
	}
	if _, _, err := Run(Config{}, V1, runtime.Config{}); err == nil {
		t.Error("Run with bad config accepted")
	}
}
