package core

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/value"
)

func TestCoreAliasesExecute(t *testing.T) {
	res, err := compile.Compile("t.dlr", "main() add(20, 22)", compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var prog *Program = res.Program
	eng := New(prog, Config{Workers: 2})
	v, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != value.Int(42) {
		t.Errorf("result = %v, want 42", v)
	}
}
