// Package core anchors the paper's primary contribution in the required
// repository layout: the coordination model and its execution machinery.
// The implementation lives in the sibling packages — internal/graph
// (coordination graphs and templates) and internal/runtime (template
// activation, the three-level priority ready queue, reference-count
// enforcement, and the real and simulated executors) — with the language
// front end in internal/lexer ... internal/compile. This package re-exports
// the two central types so that downstream code can name the core without
// importing the split.
package core

import (
	"repro/internal/graph"
	"repro/internal/runtime"
)

// Program is a compiled coordination-graph program.
type Program = graph.Program

// Engine executes a Program under the paper's run-time system.
type Engine = runtime.Engine

// Config configures an Engine.
type Config = runtime.Config

// New prepares an engine; see runtime.New.
func New(p *Program, cfg Config) *Engine { return runtime.New(p, cfg) }
