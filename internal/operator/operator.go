// Package operator defines the sequential operators that Delirium embeds in
// a coordination framework, and the registry the compiler and runtime look
// them up in.
//
// Operators are the paper's encapsulated sub-computations (§8, rule 3): they
// have a unique, well-defined entry and exit point, and the only extra
// coding requirement is that an operator states explicitly whether it might
// destructively modify each of its arguments (§2.1). The run-time system
// uses the annotation to enforce determinism via reference counts and
// copy-on-write.
//
// In the paper operators are C or Fortran routines; here they are Go
// functions. The coordination model treats the host language as
// interchangeable, so nothing else changes.
package operator

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/value"
)

// Context gives an executing operator access to run-time services: work
// charging for the simulated machines, block allocation accounting, and the
// identity of the executing processor (used by affinity experiments).
type Context interface {
	// Charge records abstract work units for this operator execution. The
	// simulated executor converts charged work into virtual time; the real
	// executor only accumulates it for reporting.
	Charge(units int64)
	// BlockStats returns the accounting sink for block allocation, or nil.
	BlockStats() *value.BlockStats
	// Processor returns the executing processor's id (0-based).
	Processor() int
	// Pool returns the executing worker's block free list, or nil when no
	// memory plan is active. value.BlockPool's allocation helpers are safe
	// on a nil receiver, so operators may call ctx.Pool().Floats(n)
	// unconditionally.
	Pool() *value.BlockPool
}

// Func is the Go entry point of an operator. args holds exactly Arity
// values (or any number for variadic operators). Destructive arguments have
// already been made exclusive by the runtime, so the operator may mutate
// their blocks in place.
type Func func(ctx Context, args []value.Value) (value.Value, error)

// Variadic marks an operator accepting any number of arguments.
const Variadic = -1

// Operator describes one registered sequential sub-computation.
type Operator struct {
	// Name is the identifier Delirium programs call.
	Name string
	// Arity is the expected argument count, or Variadic.
	Arity int
	// Destructive marks, per argument, whether the operator might
	// destructively modify that argument's block (§2.1). For variadic
	// operators a single entry applies to every argument.
	Destructive []bool
	// Pure operators have no side effects and may be folded at compile time
	// when every argument is a constant.
	Pure bool
	// Fresh declares that every block in the operator's result is newly
	// allocated by the operator itself (or passed through from an argument
	// declared Destructive, which the runtime hands over exclusively) —
	// never a shared alias of a non-destructive argument. The memory-plan
	// pass uses the annotation to prove outputs exclusively owned even when
	// an input is shared; the runtime verifies the claim after each planned
	// execution, so a wrong annotation costs a copy, not determinism.
	Fresh bool
	// Retryable declares that a failed execution may be re-run from its
	// inputs. The §8 contention protocol guarantees the inputs themselves:
	// the runtime snapshots destructively-declared arguments before a
	// retryable attempt, so a retry always sees pristine blocks. The
	// annotation is therefore about effects *outside* the block protocol —
	// an operator that mutates shared host state mid-body must only be
	// marked Retryable when a failure cannot leave that state half-updated
	// (e.g. failures occur only at entry, or the body is idempotent).
	Retryable bool
	// Timeout bounds one execution of this operator; zero defers to
	// Config.OpTimeout (and a negative value disables the bound for this
	// operator even when a global one is set).
	Timeout time.Duration
	// Fn is the implementation.
	Fn Func
}

// CanRetry reports whether a failed execution may be re-run: explicitly
// Retryable operators, plus Pure operators (no side effects means re-running
// is always safe).
func (op *Operator) CanRetry() bool { return op.Retryable || op.Pure }

// MayModify reports whether argument i is annotated destructive.
func (op *Operator) MayModify(i int) bool {
	if len(op.Destructive) == 0 {
		return false
	}
	if op.Arity == Variadic {
		return op.Destructive[0]
	}
	if i < 0 || i >= len(op.Destructive) {
		return false
	}
	return op.Destructive[i]
}

// AcceptsArgs reports whether an n-argument call is arity-correct.
func (op *Operator) AcceptsArgs(n int) bool {
	return op.Arity == Variadic || op.Arity == n
}

// Registry maps operator names to implementations. A registry may chain to
// a parent (the builtin registry), letting applications add their operators
// without copying. Registration is safe for concurrent use; lookups may run
// concurrently with each other but not with registration.
type Registry struct {
	mu     sync.RWMutex
	parent *Registry
	ops    map[string]*Operator
}

// NewRegistry returns an empty registry chained to parent (nil for none).
func NewRegistry(parent *Registry) *Registry {
	return &Registry{parent: parent, ops: make(map[string]*Operator)}
}

// Register adds an operator. It is an error to register a nil operator, an
// operator with an empty name, a duplicate name in the same registry, or a
// destructive annotation whose length contradicts the arity.
func (r *Registry) Register(op *Operator) error {
	if op == nil || op.Name == "" {
		return fmt.Errorf("operator: registering nil or unnamed operator")
	}
	if op.Fn == nil {
		return fmt.Errorf("operator %q: nil implementation", op.Name)
	}
	if op.Arity != Variadic && op.Arity < 0 {
		return fmt.Errorf("operator %q: invalid arity %d", op.Name, op.Arity)
	}
	if len(op.Destructive) != 0 {
		switch {
		case op.Arity == Variadic && len(op.Destructive) != 1:
			return fmt.Errorf("operator %q: variadic operators take a single destructive annotation", op.Name)
		case op.Arity != Variadic && len(op.Destructive) != op.Arity:
			return fmt.Errorf("operator %q: %d destructive annotations for arity %d",
				op.Name, len(op.Destructive), op.Arity)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ops[op.Name]; dup {
		return fmt.Errorf("operator %q: already registered", op.Name)
	}
	r.ops[op.Name] = op
	return nil
}

// MustRegister registers or panics; for package-level builtin tables.
func (r *Registry) MustRegister(op *Operator) {
	if err := r.Register(op); err != nil {
		panic(err)
	}
}

// Lookup finds an operator by name, consulting parents.
func (r *Registry) Lookup(name string) (*Operator, bool) {
	r.mu.RLock()
	op, ok := r.ops[name]
	r.mu.RUnlock()
	if ok {
		return op, true
	}
	if r.parent != nil {
		return r.parent.Lookup(name)
	}
	return nil, false
}

// Names returns every registered name (including parents), sorted.
func (r *Registry) Names() []string {
	seen := make(map[string]bool)
	for reg := r; reg != nil; reg = reg.parent {
		reg.mu.RLock()
		for name := range reg.ops {
			seen[name] = true
		}
		reg.mu.RUnlock()
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// nopContext satisfies Context for compile-time constant folding, where no
// machine is executing.
type nopContext struct{}

func (nopContext) Charge(int64)                  {}
func (nopContext) BlockStats() *value.BlockStats { return nil }
func (nopContext) Processor() int                { return 0 }
func (nopContext) Pool() *value.BlockPool        { return nil }

// NopContext is a Context that discards charges; the optimizer uses it to
// fold pure operators over constant arguments.
var NopContext Context = nopContext{}

// Fold evaluates a pure operator over constant arguments at compile time.
// It returns false when the operator is impure, the arity mismatches, or
// evaluation fails (a fold must never report an error the program would not
// hit at run time, so failures simply decline to fold).
func Fold(op *Operator, args []value.Value) (value.Value, bool) {
	if op == nil || !op.Pure || !op.AcceptsArgs(len(args)) {
		return nil, false
	}
	v, err := op.Fn(NopContext, args)
	if err != nil || v == nil {
		return nil, false
	}
	return v, true
}
