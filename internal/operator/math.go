package operator

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// registerMath adds floating-point math operators backed by the Go math
// package — the scientific sub-computations of §2 lean on exactly this
// kind of library function.
func registerMath(r *Registry) {
	unary := func(name string, fn func(float64) float64, domain func(float64) error) {
		r.MustRegister(&Operator{
			Name: name, Arity: 1, Pure: true,
			Fn: func(ctx Context, args []value.Value) (value.Value, error) {
				ctx.Charge(4)
				var x float64
				switch v := args[0].(type) {
				case value.Int:
					x = float64(v)
				case value.Float:
					x = float64(v)
				default:
					return nil, fmt.Errorf("%s: numeric argument required, got %s", name, args[0].Kind())
				}
				if domain != nil {
					if err := domain(x); err != nil {
						return nil, err
					}
				}
				return value.Float(fn(x)), nil
			},
		})
	}
	unary("sqrt", math.Sqrt, func(x float64) error {
		if x < 0 {
			return fmt.Errorf("sqrt: negative argument %g", x)
		}
		return nil
	})
	unary("exp", math.Exp, nil)
	unary("log", math.Log, func(x float64) error {
		if x <= 0 {
			return fmt.Errorf("log: non-positive argument %g", x)
		}
		return nil
	})
	unary("sin", math.Sin, nil)
	unary("cos", math.Cos, nil)
	unary("floor", math.Floor, nil)
	unary("ceil", math.Ceil, nil)
	unary("abs", math.Abs, nil)

	r.MustRegister(&Operator{
		Name: "pow", Arity: 2, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(8)
			_, _, af, bf, isInt, err := numericPair("pow", args[0], args[1])
			if err != nil {
				return nil, err
			}
			if isInt {
				ai, bi := args[0].(value.Int), args[1].(value.Int)
				af, bf = float64(ai), float64(bi)
			}
			res := math.Pow(af, bf)
			if math.IsNaN(res) {
				return nil, fmt.Errorf("pow: domain error for (%g, %g)", af, bf)
			}
			return value.Float(res), nil
		},
	})
}
