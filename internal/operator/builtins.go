package operator

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Builtins returns a fresh registry preloaded with the standard operator
// library: arithmetic, comparison, logic, tuple manipulation, and the
// merge operator the paper's examples rely on. Applications chain their own
// registries to it with NewRegistry(Builtins()).
func Builtins() *Registry {
	r := NewRegistry(nil)
	registerArith(r)
	registerCompare(r)
	registerLogic(r)
	registerTuple(r)
	registerMisc(r)
	registerMath(r)
	return r
}

// numericPair coerces two atomic numeric values for a binary operation.
// When both are Int the integer path is used; otherwise both are widened to
// float.
func numericPair(name string, a, b value.Value) (ai, bi int64, af, bf float64, isInt bool, err error) {
	switch x := a.(type) {
	case value.Int:
		switch y := b.(type) {
		case value.Int:
			return int64(x), int64(y), 0, 0, true, nil
		case value.Float:
			return 0, 0, float64(x), float64(y), false, nil
		}
	case value.Float:
		switch y := b.(type) {
		case value.Int:
			return 0, 0, float64(x), float64(y), false, nil
		case value.Float:
			return 0, 0, float64(x), float64(y), false, nil
		}
	}
	return 0, 0, 0, 0, false, fmt.Errorf("%s: numeric arguments required, got %s and %s", name, a.Kind(), b.Kind())
}

// binArith registers a pure binary arithmetic operator.
func binArith(r *Registry, name string, intFn func(a, b int64) (int64, error), fltFn func(a, b float64) (float64, error)) {
	r.MustRegister(&Operator{
		Name: name, Arity: 2, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			ai, bi, af, bf, isInt, err := numericPair(name, args[0], args[1])
			if err != nil {
				return nil, err
			}
			if isInt {
				n, err := intFn(ai, bi)
				if err != nil {
					return nil, err
				}
				return value.Int(n), nil
			}
			f, err := fltFn(af, bf)
			if err != nil {
				return nil, err
			}
			return value.Float(f), nil
		},
	})
}

func registerArith(r *Registry) {
	binArith(r, "add",
		func(a, b int64) (int64, error) { return a + b, nil },
		func(a, b float64) (float64, error) { return a + b, nil })
	binArith(r, "sub",
		func(a, b int64) (int64, error) { return a - b, nil },
		func(a, b float64) (float64, error) { return a - b, nil })
	binArith(r, "mul",
		func(a, b int64) (int64, error) { return a * b, nil },
		func(a, b float64) (float64, error) { return a * b, nil })
	binArith(r, "div",
		func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("div: division by zero")
			}
			return a / b, nil
		},
		func(a, b float64) (float64, error) {
			if b == 0 {
				return 0, fmt.Errorf("div: division by zero")
			}
			return a / b, nil
		})
	binArith(r, "mod",
		func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("mod: division by zero")
			}
			return a % b, nil
		},
		func(a, b float64) (float64, error) {
			return 0, fmt.Errorf("mod: integer arguments required")
		})
	binArith(r, "min",
		func(a, b int64) (int64, error) {
			if a < b {
				return a, nil
			}
			return b, nil
		},
		func(a, b float64) (float64, error) {
			if a < b {
				return a, nil
			}
			return b, nil
		})
	binArith(r, "max",
		func(a, b int64) (int64, error) {
			if a > b {
				return a, nil
			}
			return b, nil
		},
		func(a, b float64) (float64, error) {
			if a > b {
				return a, nil
			}
			return b, nil
		})

	r.MustRegister(&Operator{
		Name: "incr", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			switch x := args[0].(type) {
			case value.Int:
				return x + 1, nil
			case value.Float:
				return x + 1, nil
			}
			return nil, fmt.Errorf("incr: numeric argument required, got %s", args[0].Kind())
		},
	})
	r.MustRegister(&Operator{
		Name: "decr", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			switch x := args[0].(type) {
			case value.Int:
				return x - 1, nil
			case value.Float:
				return x - 1, nil
			}
			return nil, fmt.Errorf("decr: numeric argument required, got %s", args[0].Kind())
		},
	})
	r.MustRegister(&Operator{
		Name: "neg", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			switch x := args[0].(type) {
			case value.Int:
				return -x, nil
			case value.Float:
				return -x, nil
			}
			return nil, fmt.Errorf("neg: numeric argument required, got %s", args[0].Kind())
		},
	})
}

// binCompare registers a pure binary comparison producing Bool.
func binCompare(r *Registry, name string, cmp func(sign int) bool) {
	r.MustRegister(&Operator{
		Name: name, Arity: 2, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			ai, bi, af, bf, isInt, err := numericPair(name, args[0], args[1])
			if err != nil {
				return nil, err
			}
			var sign int
			if isInt {
				switch {
				case ai < bi:
					sign = -1
				case ai > bi:
					sign = 1
				}
			} else {
				switch {
				case af < bf:
					sign = -1
				case af > bf:
					sign = 1
				}
			}
			return value.Bool(cmp(sign)), nil
		},
	})
}

func registerCompare(r *Registry) {
	binCompare(r, "lt", func(s int) bool { return s < 0 })
	binCompare(r, "le", func(s int) bool { return s <= 0 })
	binCompare(r, "gt", func(s int) bool { return s > 0 })
	binCompare(r, "ge", func(s int) bool { return s >= 0 })

	r.MustRegister(&Operator{
		Name: "is_equal", Arity: 2, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			return value.Bool(value.Equal(args[0], args[1])), nil
		},
	})
	r.MustRegister(&Operator{
		Name: "is_not_equal", Arity: 2, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			return value.Bool(!value.Equal(args[0], args[1])), nil
		},
	})
	r.MustRegister(&Operator{
		Name: "is_null", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			_, isNull := args[0].(value.Null)
			return value.Bool(isNull), nil
		},
	})
}

func registerLogic(r *Registry) {
	truthy := func(name string, v value.Value) (bool, error) {
		b, err := value.Truthy(v)
		if err != nil {
			return false, fmt.Errorf("%s: %v", name, err)
		}
		return b, nil
	}
	r.MustRegister(&Operator{
		Name: "not", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			b, err := truthy("not", args[0])
			if err != nil {
				return nil, err
			}
			return value.Bool(!b), nil
		},
	})
	// Delirium is a dataflow language: both arguments of and/or are computed
	// before the operator fires, so these are strict (non-short-circuit).
	r.MustRegister(&Operator{
		Name: "and", Arity: 2, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			a, err := truthy("and", args[0])
			if err != nil {
				return nil, err
			}
			b, err := truthy("and", args[1])
			if err != nil {
				return nil, err
			}
			return value.Bool(a && b), nil
		},
	})
	r.MustRegister(&Operator{
		Name: "or", Arity: 2, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			a, err := truthy("or", args[0])
			if err != nil {
				return nil, err
			}
			b, err := truthy("or", args[1])
			if err != nil {
				return nil, err
			}
			return value.Bool(a || b), nil
		},
	})
}

func registerTuple(r *Registry) {
	r.MustRegister(&Operator{
		Name: "tuple_len", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			t, ok := args[0].(value.Tuple)
			if !ok {
				return nil, fmt.Errorf("tuple_len: tuple argument required, got %s", args[0].Kind())
			}
			return value.Int(len(t)), nil
		},
	})
	r.MustRegister(&Operator{
		Name: "tuple_get", Arity: 2, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			t, ok := args[0].(value.Tuple)
			if !ok {
				return nil, fmt.Errorf("tuple_get: tuple argument required, got %s", args[0].Kind())
			}
			i, ok := args[1].(value.Int)
			if !ok {
				return nil, fmt.Errorf("tuple_get: integer index required, got %s", args[1].Kind())
			}
			if i < 1 || int(i) > len(t) {
				return nil, fmt.Errorf("tuple_get: index %d out of range 1..%d", i, len(t))
			}
			return t[i-1], nil
		},
	})
	// tuple_concat concatenates multiple-value packages without flattening
	// their elements (unlike merge, which recurses and drops NULLs). It is
	// the combining primitive of the prelude's dynamic-width coordination
	// structures.
	r.MustRegister(&Operator{
		Name: "tuple_concat", Arity: Variadic, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			var out value.Tuple
			for i, a := range args {
				t, ok := a.(value.Tuple)
				if !ok {
					return nil, fmt.Errorf("tuple_concat: argument %d is %s, want tuple", i+1, a.Kind())
				}
				out = append(out, t...)
			}
			ctx.Charge(int64(len(out) + 1))
			return out, nil
		},
	})
	// merge flattens its arguments into one multiple-value package, dropping
	// NULLs. It is the combining operator of the eight queens example: each
	// branch contributes a solution, a package of solutions, or NULL.
	r.MustRegister(&Operator{
		Name: "merge", Arity: Variadic, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			var out value.Tuple
			var flatten func(v value.Value)
			flatten = func(v value.Value) {
				switch x := v.(type) {
				case value.Null:
				case value.Tuple:
					for _, e := range x {
						flatten(e)
					}
				default:
					out = append(out, v)
				}
			}
			for _, a := range args {
				flatten(a)
			}
			ctx.Charge(int64(len(args) + len(out)))
			return out, nil
		},
	})
}

func registerMisc(r *Registry) {
	r.MustRegister(&Operator{
		Name: "strcat", Arity: Variadic, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			var b strings.Builder
			for _, a := range args {
				if s, ok := a.(value.Str); ok {
					b.WriteString(string(s))
					continue
				}
				b.WriteString(a.String())
			}
			ctx.Charge(int64(b.Len() + 1))
			return value.Str(b.String()), nil
		},
	})
	r.MustRegister(&Operator{
		Name: "int", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			switch x := args[0].(type) {
			case value.Int:
				return x, nil
			case value.Float:
				return value.Int(int64(x)), nil
			case value.Bool:
				if x {
					return value.Int(1), nil
				}
				return value.Int(0), nil
			}
			return nil, fmt.Errorf("int: cannot convert %s", args[0].Kind())
		},
	})
	r.MustRegister(&Operator{
		Name: "float", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			switch x := args[0].(type) {
			case value.Int:
				return value.Float(float64(x)), nil
			case value.Float:
				return x, nil
			}
			return nil, fmt.Errorf("float: cannot convert %s", args[0].Kind())
		},
	})
	// id passes its argument through; useful as a synchronization point and
	// in tests of fan-out reference counting.
	r.MustRegister(&Operator{
		Name: "id", Arity: 1, Pure: true,
		Fn: func(ctx Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			return args[0], nil
		},
	})
}
