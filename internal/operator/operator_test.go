package operator

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func callOp(t *testing.T, r *Registry, name string, args ...value.Value) value.Value {
	t.Helper()
	op, ok := r.Lookup(name)
	if !ok {
		t.Fatalf("operator %q not registered", name)
	}
	v, err := op.Fn(NopContext, args)
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return v
}

func callErr(t *testing.T, r *Registry, name string, args ...value.Value) error {
	t.Helper()
	op, ok := r.Lookup(name)
	if !ok {
		t.Fatalf("operator %q not registered", name)
	}
	_, err := op.Fn(NopContext, args)
	if err == nil {
		t.Fatalf("%s(%v): expected error", name, args)
	}
	return err
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry(nil)
	op := &Operator{Name: "f", Arity: 1, Fn: func(Context, []value.Value) (value.Value, error) { return value.Int(1), nil }}
	if err := r.Register(op); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("f")
	if !ok || got != op {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("g"); ok {
		t.Fatal("lookup of unregistered name succeeded")
	}
}

func TestRegistryChaining(t *testing.T) {
	parent := Builtins()
	child := NewRegistry(parent)
	child.MustRegister(&Operator{Name: "app_op", Arity: 0,
		Fn: func(Context, []value.Value) (value.Value, error) { return value.Int(7), nil }})
	if _, ok := child.Lookup("incr"); !ok {
		t.Error("child should see parent's incr")
	}
	if _, ok := child.Lookup("app_op"); !ok {
		t.Error("child should see its own op")
	}
	if _, ok := parent.Lookup("app_op"); ok {
		t.Error("parent must not see child's op")
	}
	names := child.Names()
	if len(names) < 20 {
		t.Errorf("Names() = %d entries, want all builtins too", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry(nil)
	fn := func(Context, []value.Value) (value.Value, error) { return value.Int(0), nil }
	cases := []struct {
		op   *Operator
		want string
	}{
		{nil, "nil or unnamed"},
		{&Operator{Name: "", Fn: fn}, "nil or unnamed"},
		{&Operator{Name: "x", Arity: 1}, "nil implementation"},
		{&Operator{Name: "x", Arity: -5, Fn: fn}, "invalid arity"},
		{&Operator{Name: "x", Arity: 2, Destructive: []bool{true}, Fn: fn}, "destructive annotations"},
		{&Operator{Name: "x", Arity: Variadic, Destructive: []bool{true, false}, Fn: fn}, "single destructive"},
	}
	for _, c := range cases {
		err := r.Register(c.op)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Register(%+v) = %v, want mention of %q", c.op, err, c.want)
		}
	}
	r.MustRegister(&Operator{Name: "dup", Arity: 0, Fn: fn})
	if err := r.Register(&Operator{Name: "dup", Arity: 0, Fn: fn}); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestMayModify(t *testing.T) {
	op := &Operator{Name: "w", Arity: 2, Destructive: []bool{true, false}}
	if !op.MayModify(0) || op.MayModify(1) || op.MayModify(5) {
		t.Error("fixed-arity MayModify wrong")
	}
	v := &Operator{Name: "v", Arity: Variadic, Destructive: []bool{true}}
	if !v.MayModify(0) || !v.MayModify(3) {
		t.Error("variadic MayModify should apply annotation to all args")
	}
	clean := &Operator{Name: "c", Arity: 2}
	if clean.MayModify(0) {
		t.Error("unannotated operator must not claim write access")
	}
}

func TestArithBuiltins(t *testing.T) {
	r := Builtins()
	cases := []struct {
		op   string
		args []value.Value
		want value.Value
	}{
		{"add", []value.Value{value.Int(2), value.Int(3)}, value.Int(5)},
		{"add", []value.Value{value.Int(2), value.Float(0.5)}, value.Float(2.5)},
		{"sub", []value.Value{value.Int(2), value.Int(3)}, value.Int(-1)},
		{"mul", []value.Value{value.Float(2), value.Float(3)}, value.Float(6)},
		{"div", []value.Value{value.Int(7), value.Int(2)}, value.Int(3)},
		{"div", []value.Value{value.Float(7), value.Int(2)}, value.Float(3.5)},
		{"mod", []value.Value{value.Int(7), value.Int(3)}, value.Int(1)},
		{"min", []value.Value{value.Int(7), value.Int(3)}, value.Int(3)},
		{"max", []value.Value{value.Int(7), value.Int(3)}, value.Int(7)},
		{"incr", []value.Value{value.Int(7)}, value.Int(8)},
		{"decr", []value.Value{value.Float(7)}, value.Float(6)},
		{"neg", []value.Value{value.Int(7)}, value.Int(-7)},
	}
	for _, c := range cases {
		if got := callOp(t, r, c.op, c.args...); !value.Equal(got, c.want) {
			t.Errorf("%s(%v) = %v, want %v", c.op, c.args, got, c.want)
		}
	}
}

func TestArithErrors(t *testing.T) {
	r := Builtins()
	callErr(t, r, "div", value.Int(1), value.Int(0))
	callErr(t, r, "div", value.Float(1), value.Float(0))
	callErr(t, r, "mod", value.Int(1), value.Int(0))
	callErr(t, r, "mod", value.Float(1), value.Float(2))
	callErr(t, r, "add", value.Str("x"), value.Int(1))
	callErr(t, r, "incr", value.Str("x"))
	callErr(t, r, "neg", value.Tuple{})
}

func TestCompareBuiltins(t *testing.T) {
	r := Builtins()
	cases := []struct {
		op   string
		a, b value.Value
		want bool
	}{
		{"lt", value.Int(1), value.Int(2), true},
		{"lt", value.Int(2), value.Int(2), false},
		{"le", value.Int(2), value.Int(2), true},
		{"gt", value.Float(3), value.Int(2), true},
		{"ge", value.Int(1), value.Int(2), false},
		{"is_equal", value.Int(8), value.Int(8), true},
		{"is_equal", value.Str("a"), value.Str("b"), false},
		{"is_not_equal", value.Int(1), value.Int(2), true},
	}
	for _, c := range cases {
		if got := callOp(t, r, c.op, c.a, c.b); got != value.Bool(c.want) {
			t.Errorf("%s(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	r := Builtins()
	if got := callOp(t, r, "is_null", value.Null{}); got != value.Bool(true) {
		t.Errorf("is_null(NULL) = %v", got)
	}
	if got := callOp(t, r, "is_null", value.Int(0)); got != value.Bool(false) {
		t.Errorf("is_null(0) = %v", got)
	}
}

func TestLogicBuiltins(t *testing.T) {
	r := Builtins()
	if got := callOp(t, r, "not", value.Bool(true)); got != value.Bool(false) {
		t.Errorf("not(true) = %v", got)
	}
	if got := callOp(t, r, "and", value.Bool(true), value.Int(1)); got != value.Bool(true) {
		t.Errorf("and = %v", got)
	}
	if got := callOp(t, r, "or", value.Bool(false), value.Null{}); got != value.Bool(false) {
		t.Errorf("or = %v", got)
	}
	callErr(t, r, "and", value.Str("x"), value.Bool(true))
	callErr(t, r, "or", value.Bool(true), value.Str("x"))
	callErr(t, r, "not", value.Float(1))
}

func TestMergeFlattensAndDropsNulls(t *testing.T) {
	r := Builtins()
	b := value.NewBlock(value.FloatVec{1})
	got := callOp(t, r, "merge",
		value.Null{},
		value.Int(1),
		value.Tuple{value.Int(2), value.Null{}, value.Tuple{value.Int(3)}},
		b,
	)
	tup, ok := got.(value.Tuple)
	if !ok || len(tup) != 4 {
		t.Fatalf("merge = %v, want 4-tuple", got)
	}
	if tup[0] != value.Int(1) || tup[1] != value.Int(2) || tup[2] != value.Int(3) || tup[3] != value.Value(b) {
		t.Errorf("merge order wrong: %v", tup)
	}
	empty := callOp(t, r, "merge", value.Null{}, value.Null{})
	if et, ok := empty.(value.Tuple); !ok || len(et) != 0 {
		t.Errorf("merge of NULLs = %v, want empty tuple", empty)
	}
}

func TestTupleBuiltins(t *testing.T) {
	r := Builtins()
	tup := value.Tuple{value.Int(10), value.Int(20)}
	if got := callOp(t, r, "tuple_len", tup); got != value.Int(2) {
		t.Errorf("tuple_len = %v", got)
	}
	if got := callOp(t, r, "tuple_get", tup, value.Int(1)); got != value.Int(10) {
		t.Errorf("tuple_get(t,1) = %v (indices are 1-based)", got)
	}
	if got := callOp(t, r, "tuple_get", tup, value.Int(2)); got != value.Int(20) {
		t.Errorf("tuple_get(t,2) = %v", got)
	}
	callErr(t, r, "tuple_get", tup, value.Int(0))
	callErr(t, r, "tuple_get", tup, value.Int(3))
	callErr(t, r, "tuple_get", value.Int(1), value.Int(1))
	callErr(t, r, "tuple_len", value.Int(1))
}

func TestMiscBuiltins(t *testing.T) {
	r := Builtins()
	if got := callOp(t, r, "strcat", value.Str("a"), value.Str("b"), value.Int(3)); got != value.Str("ab3") {
		t.Errorf("strcat = %v", got)
	}
	if got := callOp(t, r, "int", value.Float(3.7)); got != value.Int(3) {
		t.Errorf("int(3.7) = %v", got)
	}
	if got := callOp(t, r, "int", value.Bool(true)); got != value.Int(1) {
		t.Errorf("int(true) = %v", got)
	}
	if got := callOp(t, r, "float", value.Int(3)); got != value.Float(3) {
		t.Errorf("float(3) = %v", got)
	}
	if got := callOp(t, r, "id", value.Str("x")); got != value.Str("x") {
		t.Errorf("id = %v", got)
	}
	callErr(t, r, "int", value.Str("x"))
	callErr(t, r, "float", value.Null{})
}

func TestFold(t *testing.T) {
	r := Builtins()
	add, _ := r.Lookup("add")
	v, ok := Fold(add, []value.Value{value.Int(2), value.Int(3)})
	if !ok || v != value.Int(5) {
		t.Errorf("Fold add = %v, %v", v, ok)
	}
	// Folding must decline on runtime errors rather than report them early.
	div, _ := r.Lookup("div")
	if _, ok := Fold(div, []value.Value{value.Int(1), value.Int(0)}); ok {
		t.Error("Fold must decline on division by zero")
	}
	// Arity mismatch declines.
	if _, ok := Fold(add, []value.Value{value.Int(1)}); ok {
		t.Error("Fold must decline on arity mismatch")
	}
	// Impure operators decline.
	impure := &Operator{Name: "imp", Arity: 0, Pure: false,
		Fn: func(Context, []value.Value) (value.Value, error) { return value.Int(1), nil }}
	if _, ok := Fold(impure, nil); ok {
		t.Error("Fold must decline on impure operator")
	}
	if _, ok := Fold(nil, nil); ok {
		t.Error("Fold(nil) must decline")
	}
}

func TestFoldMatchesRuntimeProperty(t *testing.T) {
	// Property: for pure int arithmetic, folding equals running.
	r := Builtins()
	ops := []string{"add", "sub", "mul", "min", "max"}
	f := func(a, b int32, opIdx uint8) bool {
		op, _ := r.Lookup(ops[int(opIdx)%len(ops)])
		args := []value.Value{value.Int(a), value.Int(b)}
		folded, ok := Fold(op, args)
		if !ok {
			return false
		}
		run, err := op.Fn(NopContext, args)
		return err == nil && value.Equal(folded, run)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAcceptsArgs(t *testing.T) {
	fixed := &Operator{Name: "f", Arity: 2}
	if !fixed.AcceptsArgs(2) || fixed.AcceptsArgs(1) {
		t.Error("fixed arity check wrong")
	}
	v := &Operator{Name: "v", Arity: Variadic}
	if !v.AcceptsArgs(0) || !v.AcceptsArgs(10) {
		t.Error("variadic arity check wrong")
	}
}

func TestMathBuiltins(t *testing.T) {
	r := Builtins()
	cases := []struct {
		op   string
		args []value.Value
		want float64
	}{
		{"sqrt", []value.Value{value.Float(9)}, 3},
		{"sqrt", []value.Value{value.Int(16)}, 4},
		{"exp", []value.Value{value.Int(0)}, 1},
		{"log", []value.Value{value.Float(1)}, 0},
		{"floor", []value.Value{value.Float(2.7)}, 2},
		{"ceil", []value.Value{value.Float(2.1)}, 3},
		{"abs", []value.Value{value.Float(-3.5)}, 3.5},
		{"pow", []value.Value{value.Int(2), value.Int(10)}, 1024},
		{"sin", []value.Value{value.Int(0)}, 0},
		{"cos", []value.Value{value.Int(0)}, 1},
	}
	for _, c := range cases {
		got := callOp(t, r, c.op, c.args...)
		f, ok := got.(value.Float)
		if !ok || float64(f) != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.op, c.args, got, c.want)
		}
	}
}

func TestMathBuiltinDomainErrors(t *testing.T) {
	r := Builtins()
	callErr(t, r, "sqrt", value.Float(-1))
	callErr(t, r, "log", value.Int(0))
	callErr(t, r, "pow", value.Float(-1), value.Float(0.5))
	callErr(t, r, "sqrt", value.Str("x"))
	callErr(t, r, "pow", value.Str("x"), value.Int(2))
}

func TestMathFoldable(t *testing.T) {
	op, _ := Builtins().Lookup("sqrt")
	v, ok := Fold(op, []value.Value{value.Float(25)})
	if !ok || v != value.Float(5) {
		t.Errorf("Fold sqrt = %v, %v", v, ok)
	}
	// Domain errors decline folding and surface at run time instead.
	if _, ok := Fold(op, []value.Value{value.Float(-1)}); ok {
		t.Error("Fold must decline sqrt(-1)")
	}
}
