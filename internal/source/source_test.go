package source

import (
	"strings"
	"testing"
)

func TestPosString(t *testing.T) {
	tests := []struct {
		pos  Pos
		want string
	}{
		{Pos{}, "<unknown>"},
		{Pos{Line: 3, Col: 7}, "3:7"},
		{Pos{File: "a.dlr", Line: 3, Col: 7}, "a.dlr:3:7"},
	}
	for _, tt := range tests {
		if got := tt.pos.String(); got != tt.want {
			t.Errorf("Pos%+v.String() = %q, want %q", tt.pos, got, tt.want)
		}
	}
}

func TestPosIsValid(t *testing.T) {
	if (Pos{}).IsValid() {
		t.Error("zero Pos should be invalid")
	}
	if !(Pos{Line: 1, Col: 1}).IsValid() {
		t.Error("1:1 should be valid")
	}
}

func TestPosBefore(t *testing.T) {
	a := Pos{Line: 1, Col: 5}
	b := Pos{Line: 2, Col: 1}
	c := Pos{Line: 2, Col: 9}
	if !a.Before(b) || !b.Before(c) || c.Before(a) {
		t.Errorf("ordering wrong: a<b=%v b<c=%v c<a=%v", a.Before(b), b.Before(c), c.Before(a))
	}
	if a.Before(a) {
		t.Error("Before must be strict")
	}
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" || Note.String() != "note" {
		t.Errorf("severity names wrong: %v %v %v", Error, Warning, Note)
	}
	if got := Severity(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown severity should embed its value, got %q", got)
	}
}

func TestDiagListErrorsAndWarnings(t *testing.T) {
	var l DiagList
	if l.HasErrors() {
		t.Fatal("fresh list should have no errors")
	}
	l.Warnf(Pos{Line: 1, Col: 1}, "w1")
	if l.HasErrors() {
		t.Fatal("warnings must not count as errors")
	}
	l.Errorf(Pos{Line: 2, Col: 1}, "bad %s", "thing")
	l.Notef(Pos{Line: 2, Col: 1}, "declared here")
	if !l.HasErrors() {
		t.Fatal("expected errors after Errorf")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	err := l.Err()
	if err == nil {
		t.Fatal("Err should be non-nil with errors recorded")
	}
	if !strings.Contains(err.Error(), "bad thing") {
		t.Errorf("error text missing formatted message: %q", err)
	}
}

func TestDiagListErrNilWhenClean(t *testing.T) {
	var l DiagList
	l.Warnf(Pos{Line: 1, Col: 1}, "just a warning")
	if err := l.Err(); err != nil {
		t.Fatalf("Err = %v, want nil for warning-only list", err)
	}
}

func TestDiagListMerge(t *testing.T) {
	var a, b DiagList
	a.Errorf(Pos{Line: 1, Col: 1}, "e1")
	b.Errorf(Pos{Line: 2, Col: 1}, "e2")
	b.Warnf(Pos{Line: 3, Col: 1}, "w1")
	a.Merge(&b)
	a.Merge(nil) // must not panic
	if a.Len() != 3 {
		t.Fatalf("merged Len = %d, want 3", a.Len())
	}
	if !a.HasErrors() {
		t.Fatal("merged list should report errors")
	}
}

func TestDiagListSortDeterministic(t *testing.T) {
	var l DiagList
	l.Errorf(Pos{File: "b.dlr", Line: 1, Col: 1}, "third")
	l.Errorf(Pos{File: "a.dlr", Line: 9, Col: 2}, "second")
	l.Errorf(Pos{File: "a.dlr", Line: 9, Col: 1}, "first")
	l.Sort()
	d := l.Diags()
	if d[0].Message != "first" || d[1].Message != "second" || d[2].Message != "third" {
		t.Errorf("sorted order wrong: %v", d)
	}
}

func TestDiagListSortStable(t *testing.T) {
	var l DiagList
	p := Pos{File: "a.dlr", Line: 1, Col: 1}
	l.Errorf(p, "one")
	l.Notef(p, "two")
	l.Sort()
	d := l.Diags()
	if d[0].Message != "one" || d[1].Message != "two" {
		t.Errorf("stable sort violated: %v", d)
	}
}

func TestDiagnosticError(t *testing.T) {
	d := Diagnostic{Pos: Pos{File: "x.dlr", Line: 4, Col: 2}, Severity: Error, Message: "boom"}
	want := "x.dlr:4:2: error: boom"
	if got := d.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}
