// Package source provides source-file positions and structured diagnostics
// for the Delirium front end. Every token and AST node carries a Pos so that
// errors from any compiler pass can point back at the coordination program.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos identifies a location in a Delirium source file. Line and Col are
// 1-based; Offset is the 0-based byte offset. The zero Pos is "no position".
type Pos struct {
	File   string
	Offset int
	Line   int
	Col    int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:col, omitting missing parts.
func (p Pos) String() string {
	if !p.IsValid() {
		return "<unknown>"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Before reports whether p appears strictly before q in the same file.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Severity classifies a diagnostic.
type Severity int

const (
	// Error diagnostics abort compilation.
	Error Severity = iota
	// Warning diagnostics are reported but do not abort compilation.
	Warning
	// Note diagnostics attach supplementary information to a prior error.
	Note
)

// String returns the conventional lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Note:
		return "note"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is a single compiler message tied to a source position.
type Diagnostic struct {
	Pos      Pos
	Severity Severity
	Message  string
}

// Error implements the error interface, rendering "pos: severity: message".
func (d Diagnostic) Error() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// DiagList collects diagnostics across compiler passes. The zero value is
// ready to use. DiagList is not safe for concurrent use; parallel passes
// collect into per-worker lists and Merge them.
type DiagList struct {
	diags []Diagnostic
	errs  int
}

// Errorf appends an error diagnostic at pos.
func (l *DiagList) Errorf(pos Pos, format string, args ...interface{}) {
	l.diags = append(l.diags, Diagnostic{Pos: pos, Severity: Error, Message: fmt.Sprintf(format, args...)})
	l.errs++
}

// Warnf appends a warning diagnostic at pos.
func (l *DiagList) Warnf(pos Pos, format string, args ...interface{}) {
	l.diags = append(l.diags, Diagnostic{Pos: pos, Severity: Warning, Message: fmt.Sprintf(format, args...)})
}

// Notef appends a note diagnostic at pos.
func (l *DiagList) Notef(pos Pos, format string, args ...interface{}) {
	l.diags = append(l.diags, Diagnostic{Pos: pos, Severity: Note, Message: fmt.Sprintf(format, args...)})
}

// Add appends an already-constructed diagnostic.
func (l *DiagList) Add(d Diagnostic) {
	l.diags = append(l.diags, d)
	if d.Severity == Error {
		l.errs++
	}
}

// Merge appends every diagnostic from other, preserving order.
func (l *DiagList) Merge(other *DiagList) {
	if other == nil {
		return
	}
	l.diags = append(l.diags, other.diags...)
	l.errs += other.errs
}

// HasErrors reports whether any Error-severity diagnostic was recorded.
func (l *DiagList) HasErrors() bool { return l.errs > 0 }

// Len returns the total number of diagnostics of all severities.
func (l *DiagList) Len() int { return len(l.diags) }

// Diags returns the recorded diagnostics in insertion order. The returned
// slice is owned by the list; callers must not modify it.
func (l *DiagList) Diags() []Diagnostic { return l.diags }

// Sort orders diagnostics by position (file, then line, then column),
// keeping the relative order of diagnostics at the same position. Parallel
// passes produce diagnostics in nondeterministic order; sorting restores the
// deterministic presentation the paper's environment promises.
func (l *DiagList) Sort() {
	sort.SliceStable(l.diags, func(i, j int) bool {
		a, b := l.diags[i].Pos, l.diags[j].Pos
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}

// Err returns nil when no errors were recorded, or an error whose message
// lists every diagnostic, one per line.
func (l *DiagList) Err() error {
	if !l.HasErrors() {
		return nil
	}
	var b strings.Builder
	for i, d := range l.diags {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return fmt.Errorf("%s", b.String())
}
