package circuit

import (
	"strings"
	"testing"

	"repro/internal/operator"
	"repro/internal/value"
)

// opCall invokes a registered operator directly with raw values, to
// exercise the misuse paths a malformed coordination program would hit.
func opCall(t *testing.T, reg *operator.Registry, name string, args ...value.Value) (value.Value, error) {
	t.Helper()
	op, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("operator %s missing", name)
	}
	return op.Fn(operator.NopContext, args)
}

func TestOperatorMisuse(t *testing.T) {
	reg, err := Operators(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	wrong := value.NewBlock(&value.Opaque{Payload: "not a circuit", Words: 1})
	cases := []struct {
		op   string
		args []value.Value
		want string
	}{
		{"ckt_split", []value.Value{value.Int(1)}, "block argument required"},
		{"ckt_split", []value.Value{wrong}, "expected circuit"},
		{"ckt_bite", []value.Value{wrong, value.Int(0)}, "expected gate piece"},
		{"ckt_latch", []value.Value{wrong, wrong, wrong, wrong}, "expected gate piece"},
		{"ckt_bite", []value.Value{nil, value.Int(0)}, "missing block"},
	}
	for _, c := range cases {
		_, err := opCall(t, reg, c.op, c.args...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.op, err, c.want)
		}
	}
}

func TestBiteRejectsNonIntCycle(t *testing.T) {
	reg, err := Operators(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	setup, err := opCall(t, reg, "ckt_setup")
	if err != nil {
		t.Fatal(err)
	}
	pieces, err := opCall(t, reg, "ckt_split", setup)
	if err != nil {
		t.Fatal(err)
	}
	p0 := pieces.(value.Tuple)[0]
	if _, err := opCall(t, reg, "ckt_bite", p0, value.Str("x")); err == nil {
		t.Error("non-integer cycle accepted")
	}
}

func TestLatchRequiresCircuitCarrier(t *testing.T) {
	reg, err := Operators(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	setup, _ := opCall(t, reg, "ckt_setup")
	pieces, _ := opCall(t, reg, "ckt_split", setup)
	tup := pieces.(value.Tuple)
	// Drop piece 0 (the circuit carrier) and duplicate piece 1.
	_, err = opCall(t, reg, "ckt_latch", tup[1], tup[1], tup[2], tup[3])
	if err == nil || !strings.Contains(err.Error(), "no piece carried the circuit") {
		t.Errorf("err = %v", err)
	}
}

func TestExtractCircuitErrors(t *testing.T) {
	if _, err := ExtractCircuit(value.Int(1)); err == nil {
		t.Error("non-block accepted")
	}
	if _, err := ExtractCircuit(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestOperatorsRejectBadConfig(t *testing.T) {
	if _, err := Operators(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := CompileProgram(Config{}); err == nil {
		t.Error("CompileProgram with bad config accepted")
	}
}
