package circuit

import (
	"testing"
	"testing/quick"

	"repro/internal/runtime"
)

func testCfg() Config { return Config{Inputs: 8, Gates: 64, Cycles: 5, Seed: 3} }

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Inputs: 0, Gates: 64, Cycles: 1},
		{Inputs: 8, Gates: 2, Cycles: 1},
		{Inputs: 8, Gates: 64, Cycles: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad config accepted: %+v", bad)
		}
	}
}

func TestGateEval(t *testing.T) {
	c := &Circuit{Prev: []bool{false, true}}
	cases := []struct {
		op   GateOp
		a, b int
		want bool
	}{
		{AND, 1, 1, true},
		{AND, 0, 1, false},
		{OR, 0, 1, true},
		{OR, 0, 0, false},
		{NOT, 0, 0, true},
		{NOT, 1, 0, false},
		{XOR, 0, 1, true},
		{XOR, 1, 1, false},
		{NAND, 1, 1, false},
		{NAND, 0, 1, true},
	}
	for _, tc := range cases {
		if got := c.Eval(Gate{Op: tc.op, A: tc.a, B: tc.b}); got != tc.want {
			t.Errorf("%s(%d,%d) = %v, want %v", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestGateOpString(t *testing.T) {
	names := map[GateOp]string{AND: "AND", OR: "OR", NOT: "NOT", XOR: "XOR", NAND: "NAND"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q", int(op), op.String())
		}
	}
}

func TestReferenceDeterministic(t *testing.T) {
	a, b := Reference(testCfg()), Reference(testCfg())
	if !Equal(a, b) {
		t.Fatal("Reference not deterministic")
	}
	if a.Cycle != 5 {
		t.Errorf("Cycle = %d, want 5", a.Cycle)
	}
	if a.Signature == 0 {
		t.Error("signature never folded")
	}
	// Different seed, different behaviour.
	other := Reference(Config{Inputs: 8, Gates: 64, Cycles: 5, Seed: 4})
	if a.Signature == other.Signature {
		t.Error("seeds should vary the signature")
	}
}

func TestNetlistWiringIsCausal(t *testing.T) {
	c := New(testCfg())
	for i, g := range c.Gates {
		limit := c.Cfg.Inputs + i
		if g.A >= limit || g.B >= limit {
			t.Fatalf("gate %d reads wire beyond %d: %+v", i, limit, g)
		}
	}
}

func TestDeliriumMatchesReference(t *testing.T) {
	cfg := testCfg()
	want := Reference(cfg)
	for _, workers := range []int{1, 4} {
		got, eng, err := Run(cfg, runtime.Config{Mode: runtime.Real, Workers: workers, MaxOps: 2_000_000})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Equal(got, want) {
			t.Errorf("workers=%d: simulation differs from reference (sig %x vs %x)",
				workers, got.Signature, want.Signature)
		}
		if eng.Stats().Blocks.Copies != 0 {
			t.Errorf("workers=%d: %d copies, want 0", workers, eng.Stats().Blocks.Copies)
		}
	}
}

func TestDeliriumMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64, gates uint8, cycles uint8) bool {
		cfg := Config{
			Inputs: 6,
			Gates:  int(gates%60) + Parts,
			Cycles: int(cycles%4) + 1,
			Seed:   seed,
		}
		want := Reference(cfg)
		got, _, err := Run(cfg, runtime.Config{Mode: runtime.Real, Workers: 3, MaxOps: 2_000_000})
		return err == nil && Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSimulatedDeterministic(t *testing.T) {
	cfg := testCfg()
	var sigs []uint64
	var spans []int64
	for i := 0; i < 2; i++ {
		c, eng, err := Run(cfg, runtime.Config{Mode: runtime.Simulated, Workers: 4, MaxOps: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, c.Signature)
		spans = append(spans, eng.Stats().MakespanTicks)
	}
	if sigs[0] != sigs[1] || spans[0] != spans[1] {
		t.Errorf("not deterministic: sigs %v spans %v", sigs, spans)
	}
}

func TestPartRangeCoversGates(t *testing.T) {
	total := 0
	last := 0
	for i := 0; i < Parts; i++ {
		g0, g1 := PartRange(113, i)
		if g0 != last {
			t.Errorf("part %d starts at %d, want %d", i, g0, last)
		}
		total += g1 - g0
		last = g1
	}
	if total != 113 {
		t.Errorf("parts cover %d gates, want 113", total)
	}
}
