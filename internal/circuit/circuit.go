// Package circuit is a synchronous gate-level circuit simulator
// coordinated by Delirium — the "simple circuit simulator" the paper lists
// among its applications (§4). Each clock cycle evaluates every gate from
// the previous cycle's wire values (two-phase semantics, so gate order is
// irrelevant) and latches the results. The coordination framework is the
// familiar shape: iterate over cycles, fork the gate list four ways, join
// by latching — structurally the same framework as the retina model, which
// is the paper's point about reusable coordination topologies.
package circuit

import (
	"fmt"

	"repro/internal/value"
)

// Parts is the parallel width of the gate partition.
const Parts = 4

// GateOp enumerates gate types.
type GateOp int

// Gate operators.
const (
	AND GateOp = iota
	OR
	NOT
	XOR
	NAND
	numOps
)

// String names the gate type.
func (g GateOp) String() string {
	switch g {
	case AND:
		return "AND"
	case OR:
		return "OR"
	case NOT:
		return "NOT"
	case XOR:
		return "XOR"
	case NAND:
		return "NAND"
	default:
		return fmt.Sprintf("op(%d)", int(g))
	}
}

// Gate reads one or two wires and drives its own output wire.
type Gate struct {
	Op   GateOp
	A, B int // input wire indices (B ignored for NOT)
}

// Config sizes the circuit.
type Config struct {
	// Inputs is the number of primary input wires.
	Inputs int
	// Gates is the gate count; gate i drives wire Inputs+i.
	Gates int
	// Cycles is the number of clock cycles to simulate.
	Cycles int
	// Seed drives the deterministic netlist and stimulus generators.
	Seed int64
}

// DefaultConfig is a medium netlist.
func DefaultConfig() Config { return Config{Inputs: 16, Gates: 400, Cycles: 8, Seed: 11} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Inputs < 1 || c.Gates < Parts || c.Cycles < 1 {
		return fmt.Errorf("circuit: invalid config %+v", c)
	}
	return nil
}

// Circuit is the simulation state; it travels linearly between operators.
type Circuit struct {
	Cfg   Config
	Gates []Gate
	// Prev is read by every gate; Next is written in disjoint bands.
	Prev, Next []bool
	// Cycle counts completed cycles; Signature folds every latched state.
	Cycle     int
	Signature uint64
	rng       uint64
}

// Words sizes the circuit for block accounting.
func (c *Circuit) Words() int { return len(c.Prev) + len(c.Next) + 3*len(c.Gates) }

// New builds a deterministic random netlist: each gate reads wires with
// lower indices than its own output (plus primary inputs), so the two-phase
// semantics match a registered pipeline.
func New(cfg Config) *Circuit {
	c := &Circuit{Cfg: cfg, rng: uint64(cfg.Seed)*6364136223846793005 + 1442695040888963407}
	wires := cfg.Inputs + cfg.Gates
	c.Prev = make([]bool, wires)
	c.Next = make([]bool, wires)
	c.Gates = make([]Gate, cfg.Gates)
	for i := range c.Gates {
		avail := cfg.Inputs + i
		c.Gates[i] = Gate{
			Op: GateOp(c.next() % uint64(numOps)),
			A:  int(c.next() % uint64(avail)),
			B:  int(c.next() % uint64(avail)),
		}
	}
	c.applyStimulus()
	copy(c.Prev, c.Next)
	return c
}

func (c *Circuit) next() uint64 {
	c.rng = c.rng*6364136223846793005 + 1442695040888963407
	return c.rng >> 11
}

// applyStimulus drives the primary inputs for the coming cycle.
func (c *Circuit) applyStimulus() {
	for i := 0; i < c.Cfg.Inputs; i++ {
		c.Next[i] = c.next()&1 == 1
	}
}

// Eval computes one gate's output from the previous state.
func (c *Circuit) Eval(g Gate) bool {
	a, b := c.Prev[g.A], c.Prev[g.B]
	switch g.Op {
	case AND:
		return a && b
	case OR:
		return a || b
	case NOT:
		return !a
	case XOR:
		return a != b
	case NAND:
		return !(a && b)
	default:
		return false
	}
}

// EvalRange evaluates gates [g0, g1), writing their output wires (a
// disjoint band of Next).
func (c *Circuit) EvalRange(g0, g1 int) {
	for i := g0; i < g1; i++ {
		c.Next[c.Cfg.Inputs+i] = c.Eval(c.Gates[i])
	}
}

// Latch finishes a cycle: fold the signature, swap states, and drive the
// next stimulus.
func (c *Circuit) Latch() {
	for i, v := range c.Next {
		if v {
			c.Signature ^= 0x9e3779b97f4a7c15 * uint64(i+1)
		}
		c.Signature = c.Signature*31 + 1
	}
	c.Prev, c.Next = c.Next, c.Prev
	copy(c.Next, c.Prev)
	c.applyStimulus()
	c.Cycle++
}

// PartRange returns the i-th of Parts contiguous gate ranges.
func PartRange(gates, i int) (int, int) {
	return i * gates / Parts, (i + 1) * gates / Parts
}

// Reference simulates sequentially — the oracle for the Delirium runs.
func Reference(cfg Config) *Circuit {
	c := New(cfg)
	for cy := 0; cy < cfg.Cycles; cy++ {
		c.EvalRange(0, cfg.Gates)
		c.Latch()
	}
	return c
}

// Equal compares two simulations' observable state.
func Equal(a, b *Circuit) bool {
	if a.Cycle != b.Cycle || a.Signature != b.Signature || len(a.Prev) != len(b.Prev) {
		return false
	}
	for i := range a.Prev {
		if a.Prev[i] != b.Prev[i] {
			return false
		}
	}
	return true
}

// value.BlockData plumbing shared by the operators.

func circuitBlock(c *Circuit, st *value.BlockStats) *value.Block {
	return value.NewBlockStats(&value.Opaque{Payload: c, Words: c.Words()}, st)
}
