package circuit

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/graph"
	"repro/internal/operator"
	"repro/internal/runtime"
	"repro/internal/value"
)

// gatePiece is one quarter of the gate list for the current cycle.
type gatePiece struct {
	idx    int
	g0, g1 int
	ckt    *Circuit // piece 0 only
	shared *Circuit // read Prev / write disjoint Next band
}

// programSrc is the coordination framework: iterate over clock cycles with
// a four-way fork/join per cycle.
const programSrc = `
main()
  iterate
  {
    cycle = 0, incr(cycle)
    ckt = ckt_setup(),
      let
        <a,b,c,d> = ckt_split(ckt)
        ao = ckt_bite(a, cycle)
        bo = ckt_bite(b, cycle)
        co = ckt_bite(c, cycle)
        do = ckt_bite(d, cycle)
      in ckt_latch(ao,bo,co,do)
  }
  while is_not_equal(cycle, CYCLES),
  result ckt
`

// Source returns the program text with the cycle count substituted.
func Source(cfg Config) string {
	return fmt.Sprintf("define CYCLES %d\n%s", cfg.Cycles, programSrc)
}

// Operators builds the circuit operator registry for cfg.
func Operators(cfg Config) (*operator.Registry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := operator.NewRegistry(operator.Builtins())

	r.MustRegister(&operator.Operator{
		Name: "ckt_setup", Arity: 0,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			c := New(cfg)
			ctx.Charge(int64(c.Words()))
			return circuitBlock(c, ctx.BlockStats()), nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "ckt_split", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			c, err := circuitOf(args[0], "ckt_split")
			if err != nil {
				return nil, err
			}
			ctx.Charge(Parts)
			out := make(value.Tuple, Parts)
			for i := 0; i < Parts; i++ {
				g0, g1 := PartRange(cfg.Gates, i)
				gp := &gatePiece{idx: i, g0: g0, g1: g1, shared: c}
				if i == 0 {
					gp.ckt = c
				}
				out[i] = value.NewBlockStats(&value.Opaque{Payload: gp, Words: (g1 - g0) * 3},
					ctx.BlockStats())
			}
			return out, nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "ckt_bite", Arity: 2, Destructive: []bool{true, false},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			gp, err := pieceOf(args[0], "ckt_bite")
			if err != nil {
				return nil, err
			}
			if _, ok := args[1].(value.Int); !ok {
				return nil, fmt.Errorf("ckt_bite: cycle argument must be an integer")
			}
			gp.shared.EvalRange(gp.g0, gp.g1)
			ctx.Charge(int64(gp.g1-gp.g0) * 4)
			return args[0], nil
		},
	})

	r.MustRegister(&operator.Operator{
		Name: "ckt_latch", Arity: Parts, Destructive: []bool{true, true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			var c *Circuit
			seen := 0
			for _, a := range args {
				gp, err := pieceOf(a, "ckt_latch")
				if err != nil {
					return nil, err
				}
				if gp.ckt != nil {
					c = gp.ckt
				}
				seen++
			}
			if c == nil {
				return nil, fmt.Errorf("ckt_latch: no piece carried the circuit")
			}
			if seen != Parts {
				return nil, fmt.Errorf("ckt_latch: %d pieces, want %d", seen, Parts)
			}
			c.Latch()
			ctx.Charge(int64(len(c.Prev)))
			return circuitBlock(c, ctx.BlockStats()), nil
		},
	})

	return r, nil
}

func circuitOf(v value.Value, what string) (*Circuit, error) {
	p, err := opaqueOf(v, what)
	if err != nil {
		return nil, err
	}
	c, ok := p.(*Circuit)
	if !ok {
		return nil, fmt.Errorf("%s: expected circuit, got %T", what, p)
	}
	return c, nil
}

func pieceOf(v value.Value, what string) (*gatePiece, error) {
	p, err := opaqueOf(v, what)
	if err != nil {
		return nil, err
	}
	gp, ok := p.(*gatePiece)
	if !ok {
		return nil, fmt.Errorf("%s: expected gate piece, got %T", what, p)
	}
	return gp, nil
}

func opaqueOf(v value.Value, what string) (interface{}, error) {
	if v == nil {
		return nil, fmt.Errorf("%s: missing block argument", what)
	}
	b, ok := v.(*value.Block)
	if !ok {
		return nil, fmt.Errorf("%s: block argument required, got %s", what, v.Kind())
	}
	o, ok := b.Data().(*value.Opaque)
	if !ok {
		return nil, fmt.Errorf("%s: unexpected payload %T", what, b.Data())
	}
	return o.Payload, nil
}

// ExtractCircuit unwraps a program result.
func ExtractCircuit(v value.Value) (*Circuit, error) { return circuitOf(v, "result") }

// CompileProgram compiles the coordination program for cfg.
func CompileProgram(cfg Config) (*graph.Program, error) {
	reg, err := Operators(cfg)
	if err != nil {
		return nil, err
	}
	res, err := compile.Compile("circuit.dlr", Source(cfg), compile.Options{Registry: reg})
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

// Run compiles and simulates, returning the final circuit and the engine.
func Run(cfg Config, ecfg runtime.Config) (*Circuit, *runtime.Engine, error) {
	prog, err := CompileProgram(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := runtime.New(prog, ecfg)
	out, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	c, err := ExtractCircuit(out)
	if err != nil {
		return nil, nil, err
	}
	return c, eng, nil
}
