package jacobi

import (
	"testing"

	"repro/internal/runtime"
)

// TestMatchesSequentialReference runs the coordinated solver across worker
// counts and checks each result is bit-identical to the sequential oracle
// — the §8 determinism guarantee on a real array workload.
func TestMatchesSequentialReference(t *testing.T) {
	cfg := Config{N: 32, Tol: 1e-2}
	ref := Reference(cfg)
	if ref.Sweeps == 0 {
		t.Fatal("reference did not iterate")
	}
	for _, workers := range []int{1, 2, 8} {
		s, eng, err := Run(cfg, runtime.Config{Mode: runtime.Real, Workers: workers, MaxOps: 100_000_000})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !Matches(s, ref) {
			t.Errorf("workers=%d: solve diverged from the sequential reference (sweeps %d vs %d, residual %v vs %v)",
				workers, s.Sweeps, ref.Sweeps, s.Residual, ref.Residual)
		}
		if eng.Stats().OpsExecuted == 0 {
			t.Errorf("workers=%d: no ops recorded", workers)
		}
	}
}

// TestSimulatedModeRuns keeps the workload usable for the virtual-clock
// executor too (machine-profile experiments schedule it).
func TestSimulatedModeRuns(t *testing.T) {
	cfg := Config{N: 16, Tol: 5e-2}
	ref := Reference(cfg)
	s, _, err := Run(cfg, runtime.Config{Mode: runtime.Simulated, Workers: 4, MaxOps: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !Matches(s, ref) {
		t.Error("simulated solve diverged from the sequential reference")
	}
}
