// Package jacobi solves the Laplace equation on a 2-D grid with Jacobi
// iteration — the array-layer workload shape that §2 says dominates
// scientific code. The coordination program iterates sweeps until the
// residual converges (a data-dependent loop exit), with each sweep forked
// four ways over row bands; the pieces carry their band residuals to the
// join, which folds them deterministically. The parallel result is
// bit-identical to a plain sequential solver, which makes the workload a
// sharp scheduler benchmark: any executor reordering that leaked into the
// data would break the equality check.
package jacobi

import (
	"fmt"
	"math"

	"repro/internal/compile"
	"repro/internal/graph"
	"repro/internal/operator"
	"repro/internal/runtime"
	"repro/internal/value"
)

// Config sizes one solve.
type Config struct {
	// N is the grid edge length.
	N int
	// Tol is the convergence tolerance on the max update per sweep.
	Tol float64
	// MaxSweeps bounds the iteration (safety against a tolerance that the
	// grid never reaches). Zero selects 10000.
	MaxSweeps int
	// MemPlan runs the memory-plan pass at compile time, activating copy
	// elision and block recycling in the executors.
	MemPlan bool
	// Fuse runs the operator-fusion pass at compile time, collapsing
	// single-consumer chains into supernodes dispatched once.
	Fuse bool
	// FuseProfile optionally seeds fusion's operator weights with measured
	// mean costs (the adaptive loop's calibrate→re-fuse path); implies Fuse.
	FuseProfile map[string]int64
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 96
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxSweeps == 0 {
		c.MaxSweeps = 10000
	}
	return c
}

// Source returns the coordination program: a data-dependent iterate whose
// body is a four-way fork/join over row bands.
func Source(cfg Config) string {
	cfg = cfg.withDefaults()
	return fmt.Sprintf(`
define MAX_SWEEPS %d

main()
  iterate
  {
    sweeps = 0, incr(sweeps)
    st = jb_setup(),
      let
        <a,b,c,d> = jb_split(st)
        ao = jb_sweep(a)
        bo = jb_sweep(b)
        co = jb_sweep(c)
        do = jb_sweep(d)
      in jb_join(ao,bo,co,do)
  }
  while and(lt(sweeps, MAX_SWEEPS), jb_unconverged(st)),
  result st
`, cfg.MaxSweeps)
}

// State is the solver's linear-ownership payload.
type State struct {
	N        int
	Tol      float64
	U, V     []float64 // current and next grids, N x N
	Residual float64
	Sweeps   int
}

type piece struct {
	idx      int
	r0, r1   int
	st       *State // piece 0 only
	shared   *State // read U, write disjoint rows of V
	residual float64
}

// NewState builds the initial grid: a hot top edge with a sinusoidal
// profile, zero elsewhere.
func NewState(n int, tol float64) *State {
	s := &State{N: n, Tol: tol, Residual: math.Inf(1)}
	s.U = make([]float64, n*n)
	s.V = make([]float64, n*n)
	for c := 0; c < n; c++ {
		s.U[c] = 100 * math.Sin(math.Pi*float64(c)/float64(n-1))
		s.V[c] = s.U[c]
	}
	return s
}

// SweepRows relaxes interior rows [r0, r1), writing V from U, and returns
// the band's max update.
func (s *State) SweepRows(r0, r1 int) float64 {
	n := s.N
	if r0 < 1 {
		r0 = 1
	}
	if r1 > n-1 {
		r1 = n - 1
	}
	var res float64
	for r := r0; r < r1; r++ {
		for c := 1; c < n-1; c++ {
			i := r*n + c
			nv := 0.25 * (s.U[i-1] + s.U[i+1] + s.U[i-n] + s.U[i+n])
			if d := math.Abs(nv - s.U[i]); d > res {
				res = d
			}
			s.V[i] = nv
		}
	}
	return res
}

// Reference runs the plain sequential solver to convergence — the oracle
// the coordinated solve must match bit for bit.
func Reference(cfg Config) *State {
	cfg = cfg.withDefaults()
	s := NewState(cfg.N, cfg.Tol)
	for s.Sweeps < cfg.MaxSweeps {
		s.Residual = s.SweepRows(1, cfg.N-1)
		s.U, s.V = s.V, s.U
		copy(s.V, s.U)
		s.Sweeps++
		if s.Residual <= cfg.Tol {
			break
		}
	}
	return s
}

// Operators returns the solver's operator registry chained onto the
// builtins.
func Operators(cfg Config) *operator.Registry {
	cfg = cfg.withDefaults()
	n, tol := cfg.N, cfg.Tol
	reg := operator.NewRegistry(operator.Builtins())
	stBlock := func(s *State, ctx operator.Context) value.Value {
		return value.NewBlockStats(ctx.Pool().Opaque(s, 2*n*n), ctx.BlockStats())
	}
	pc := func(v value.Value, what string) (*piece, error) {
		blk, ok := v.(*value.Block)
		if !ok {
			return nil, fmt.Errorf("%s: piece block required, got %s", what, v.Kind())
		}
		o, ok := blk.Data().(*value.Opaque)
		if !ok {
			return nil, fmt.Errorf("%s: unexpected payload %T", what, blk.Data())
		}
		p, ok := o.Payload.(*piece)
		if !ok {
			return nil, fmt.Errorf("%s: bad payload %T", what, o.Payload)
		}
		return p, nil
	}

	reg.MustRegister(&operator.Operator{
		Name: "jb_setup", Arity: 0, Fresh: true,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			ctx.Charge(int64(n * n))
			return stBlock(NewState(n, tol), ctx), nil
		},
	})
	reg.MustRegister(&operator.Operator{
		Name: "jb_split", Arity: 1, Destructive: []bool{true}, Fresh: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			blk, ok := args[0].(*value.Block)
			if !ok {
				return nil, fmt.Errorf("jb_split: state block required, got %s", args[0].Kind())
			}
			s, ok := blk.Data().(*value.Opaque).Payload.(*State)
			if !ok {
				return nil, fmt.Errorf("jb_split: expected state, got %T", blk.Data().(*value.Opaque).Payload)
			}
			ctx.Charge(4)
			out := make(value.Tuple, 4)
			for i := 0; i < 4; i++ {
				p := &piece{idx: i, r0: i * n / 4, r1: (i + 1) * n / 4, shared: s}
				if i == 0 {
					p.st = s
				}
				out[i] = value.NewBlockStats(ctx.Pool().Opaque(p, n), ctx.BlockStats())
			}
			return out, nil
		},
	})
	reg.MustRegister(&operator.Operator{
		Name: "jb_sweep", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			p, err := pc(args[0], "jb_sweep")
			if err != nil {
				return nil, err
			}
			p.residual = p.shared.SweepRows(p.r0, p.r1)
			ctx.Charge(int64((p.r1 - p.r0) * n * 5))
			return args[0], nil
		},
	})
	reg.MustRegister(&operator.Operator{
		Name: "jb_join", Arity: 4, Destructive: []bool{true, true, true, true}, Fresh: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			var s *State
			var residuals [4]float64
			for _, a := range args {
				p, err := pc(a, "jb_join")
				if err != nil {
					return nil, err
				}
				if p.st != nil {
					s = p.st
				}
				residuals[p.idx] = p.residual
			}
			if s == nil {
				return nil, fmt.Errorf("jb_join: no piece carried the state")
			}
			s.Residual = 0
			for _, r := range residuals { // deterministic fold order
				if r > s.Residual {
					s.Residual = r
				}
			}
			s.U, s.V = s.V, s.U
			copy(s.V, s.U)
			s.Sweeps++
			ctx.Charge(int64(n))
			return stBlock(s, ctx), nil
		},
	})
	reg.MustRegister(&operator.Operator{
		Name: "jb_unconverged", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			blk, ok := args[0].(*value.Block)
			if !ok {
				return nil, fmt.Errorf("jb_unconverged: state block required, got %s", args[0].Kind())
			}
			s, ok := blk.Data().(*value.Opaque).Payload.(*State)
			if !ok {
				return nil, fmt.Errorf("jb_unconverged: expected state, got %T", blk.Data().(*value.Opaque).Payload)
			}
			ctx.Charge(1)
			return value.Bool(s.Residual > s.Tol), nil
		},
	})
	return reg
}

// CompileProgram compiles the solver's coordination program for cfg.
func CompileProgram(cfg Config) (*graph.Program, error) {
	cfg = cfg.withDefaults()
	res, err := compile.Compile("jacobi.dlr", Source(cfg), compile.Options{
		Registry: Operators(cfg), MemPlan: cfg.MemPlan,
		Fuse: cfg.Fuse || len(cfg.FuseProfile) > 0, FuseProfile: cfg.FuseProfile})
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

// StateOf extracts the solver state from a program result.
func StateOf(v value.Value) (*State, error) {
	blk, ok := v.(*value.Block)
	if !ok {
		return nil, fmt.Errorf("jacobi: expected a state block result, got %s", v.Kind())
	}
	o, ok := blk.Data().(*value.Opaque)
	if !ok {
		return nil, fmt.Errorf("jacobi: unexpected payload %T", blk.Data())
	}
	s, ok := o.Payload.(*State)
	if !ok {
		return nil, fmt.Errorf("jacobi: expected state, got %T", o.Payload)
	}
	return s, nil
}

// Run compiles and executes the solve, returning the converged state and
// the engine for statistics.
func Run(cfg Config, ecfg runtime.Config) (*State, *runtime.Engine, error) {
	prog, err := CompileProgram(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := runtime.New(prog, ecfg)
	out, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	s, err := StateOf(out)
	if err != nil {
		return nil, nil, err
	}
	return s, eng, nil
}

// Matches reports whether two states agree bit for bit on the fields the
// solver guarantees deterministic.
func Matches(a, b *State) bool {
	if a.Sweeps != b.Sweeps || a.Residual != b.Residual || len(a.U) != len(b.U) {
		return false
	}
	for i := range a.U {
		if a.U[i] != b.U[i] {
			return false
		}
	}
	return true
}
