package runtime

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/value"
)

// memState is one worker's share of an active memory plan: the block free
// list operators allocate through, the elision counters, and reusable
// scratch space for the planned reference settle. Each worker goroutine owns
// exactly one memState (the boot worker has its own), so nothing here is
// synchronized; the engine merges the counters into Stats after the run
// quiesces.
//
// Detached shadow workers (timed-out operator attempts) deliberately carry
// no memState: an abandoned goroutine must not feed payloads into — or
// allocate from — a free list a live worker is using.
type memState struct {
	pool           value.BlockPool
	elidedRetains  int64
	elidedReleases int64
	copiesAvoided  int64
	// hitsMerged is the pool hit count already folded into Stats by earlier
	// runs of this engine; mergeMemStats reports deltas against it so the
	// free lists can persist across runs without double-counting.
	hitsMerged int64

	// Scratch for settlePlanned, reused across node executions.
	inScratch  []*value.Block
	resScratch []*value.Block
	portEnd    []int
	matched    []bool
}

// memState returns the per-worker plan state for a processor id (-1 selects
// the boot worker's slot), or nil when the program was not planned.
func (e *Engine) memState(proc int) *memState {
	if e.memStates == nil {
		return nil
	}
	if proc < 0 {
		return e.memStates[len(e.memStates)-1]
	}
	return e.memStates[proc]
}

// mergeMemStats folds every worker's plan counters into Stats; called once,
// single-threaded, after the run has quiesced. The states themselves — and
// the warmed block free lists inside them — survive for the next run of a
// reused engine, so only this run's deltas are folded: the plain counters
// are zeroed after merging, and the pool's cumulative hit counter is
// baselined in hitsMerged.
func (e *Engine) mergeMemStats() {
	for _, m := range e.memStates {
		if m == nil {
			continue
		}
		atomic.AddInt64(&e.stats.ElidedRetains, m.elidedRetains)
		atomic.AddInt64(&e.stats.ElidedReleases, m.elidedReleases)
		atomic.AddInt64(&e.stats.PooledAllocs, m.pool.Hits()-m.hitsMerged)
		atomic.AddInt64(&e.stats.CopiesAvoided, m.copiesAvoided)
		m.elidedRetains, m.elidedReleases, m.copiesAvoided = 0, 0, 0
		m.hitsMerged = m.pool.Hits()
	}
}

// releaseDying drops the last graph reference to a value that the plan (or
// the spread protocol) says dies at this node. owned marks values statically
// proven exclusive: their blocks skip the atomic release entirely and their
// payloads are recycled. Unproven values take the ordinary release, still
// recycling the payload when this call happens to be the zero-crossing.
func (w *worker) releaseDying(v value.Value, owned bool) {
	m := w.mem
	st := &w.e.stats.Blocks
	switch x := v.(type) {
	case *value.Block:
		if owned {
			if data, ok := x.FreeOwned(st); ok {
				m.elidedReleases++
				m.pool.Put(data)
				return
			}
			return // FreeOwned degraded to a counted Release
		}
		if x.Release(st) {
			m.pool.Put(x.TakeData())
		}
	case value.Tuple:
		for _, el := range x {
			w.releaseDying(el, owned)
		}
	case *value.Closure:
		for _, el := range x.Env {
			w.releaseDying(el, owned)
		}
	}
}

// settlePlannedMax bounds the linear-scan settle; node executions moving
// more blocks than this fall back to the map-based transferRefs (correct,
// just unelided).
const settlePlannedMax = 64

// settlePlanned is the planned replacement for transferRefs after an
// operator-like node consumed ins and produced result. Reference semantics
// are identical — each input occurrence either transfers to a result
// occurrence, or dies — but three plan facts are exploited:
//
//   - an input port marked MemOwnedArgs whose blocks die here frees them
//     without touching the refcount and recycles their payloads;
//   - any other zero-crossing also feeds the free list;
//   - when the node's output is marked MemOwned, the claim is verified: a
//     result block that ends shared (a duplicating operator, or a wrong
//     Fresh annotation) is copied here at the producer, so every consumer
//     that trusts the plan stays sound. The copy shows up in Blocks.Copies,
//     making a lying annotation visible rather than nondeterministic.
//
// The scans are linear over the node's block lists (operators move a handful
// of blocks; the map-based settle allocates two maps per execution, which is
// exactly the hot-path cost this pass exists to remove).
func (e *Engine) settlePlanned(w *worker, n *graph.Node, ins []value.Value, result value.Value) value.Value {
	m := w.mem
	st := &e.stats.Blocks

	res := value.Blocks(result, m.resScratch[:0])
	inAll := m.inScratch[:0]
	portEnd := m.portEnd[:0]
	for _, in := range ins {
		inAll = value.Blocks(in, inAll)
		portEnd = append(portEnd, len(inAll))
	}
	m.resScratch, m.inScratch, m.portEnd = res[:0], inAll[:0], portEnd[:0]
	if len(res) > settlePlannedMax || len(inAll) > settlePlannedMax {
		transferRefs(ins, result, st)
		return result
	}

	matched := m.matched[:0]
	for range res {
		matched = append(matched, false)
	}
	m.matched = matched[:0]

	// Pass 1: each input occurrence transfers its reference to an unmatched
	// result occurrence of the same block, or dies at this node.
	pos := 0
	for i := range ins {
		owned := i < len(n.MemOwnedArgs) && n.MemOwnedArgs[i]
		for ; pos < portEnd[i]; pos++ {
			b := inAll[pos]
			transferred := false
			for k, rb := range res {
				if rb == b && !matched[k] {
					matched[k] = true
					transferred = true
					break
				}
			}
			if transferred {
				continue
			}
			if owned {
				if data, ok := b.FreeOwned(st); ok {
					m.elidedReleases++
					m.pool.Put(data)
				}
				continue
			}
			if b.Release(st) {
				m.pool.Put(b.TakeData())
			}
		}
	}

	// Pass 2: unmatched result occurrences need references of their own. A
	// fresh block's first occurrence is covered by NewBlock's initial
	// reference; every other occurrence retains.
	for k, rb := range res {
		if matched[k] {
			continue
		}
		wasInput := false
		for _, ib := range inAll {
			if ib == rb {
				wasInput = true
				break
			}
		}
		if !wasInput {
			first := true
			for k2 := 0; k2 < k; k2++ {
				if res[k2] == rb {
					first = false
					break
				}
			}
			if first {
				continue
			}
		}
		rb.Retain(st)
	}

	// Producer-side enforcement of the output-ownership claim.
	if n.MemOwned && n.Kind == graph.OpNode {
		shared := false
		for _, rb := range res {
			if rb.Refs() != 1 {
				shared = true
				break
			}
		}
		if shared {
			nv, copied := makeWritable(result, st)
			result = nv
			w.localWords += int64(copied)
			if w.tr != nil && copied > 0 {
				w.tr.record(w.proc, TraceEvent{Type: TraceBlockCopy, Ts: w.tr.now(),
					Node: int32(n.ID), Arg: int64(copied), Name: traceLabel(n)})
			}
		}
	}
	return result
}
