package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// Stats aggregates one run's execution counters. All fields are updated
// atomically; read them after Run returns.
type Stats struct {
	// OpsExecuted counts scheduled node executions (operators, calls,
	// conditionals, plumbing nodes) — everything that went through the
	// ready queue.
	OpsExecuted int64
	// OperatorsRun counts sequential operator (OpNode) executions only.
	OperatorsRun int64
	// ActivationsAllocated and ActivationsReused split activation demand
	// between fresh allocations and pool reuse (§7: the priority scheme
	// reduces the number of template activations required).
	ActivationsAllocated int64
	ActivationsReused    int64
	// LiveActivations tracks currently-live activations; PeakLive the
	// maximum observed.
	LiveActivations int64
	PeakLive        int64
	// LiveActivationWords tracks the words held by live activation
	// buffers; PeakActivationWords the maximum observed. Compared against
	// the program's template memory, this checks §7's claim that templates
	// represent over 80% of the runtime system's memory.
	LiveActivationWords int64
	PeakActivationWords int64
	// TailCalls counts activations replaced in place by a tail call.
	TailCalls int64
	// ChargedUnits is total work charged by operators via Context.Charge.
	ChargedUnits int64
	// Work-stealing scheduler counters (Real mode). Steals counts tasks
	// taken FIFO from another worker's deque; StealContention counts steal
	// CAS attempts lost to a racing thief or owner; Parks counts workers
	// going to sleep after an empty spin-then-steal sweep; InjectedTasks
	// counts tasks routed through the shared injector (seeding and any
	// other push from outside the worker pool).
	Steals          int64
	StealContention int64
	Parks           int64
	InjectedTasks   int64
	// Affinity-scheduling counters, all zero unless the program carries an
	// affinity plan and Config.AffinityHints is set. AffinityHits counts
	// preferred-edge dispatches that ran on their producer's worker (Real)
	// or processor (Simulated); AffinityMisses counts preferred dispatches
	// that migrated (stolen, or the preferred processor was busy).
	// BatchSteals counts steal events whose batched grab actually moved
	// extras (two or more tasks in one sweep) and BatchStolenTasks the
	// tasks those events transferred, so BatchStolenTasks/BatchSteals is
	// the mean batch width; single-task steals count only in Steals.
	AffinityHits     int64
	AffinityMisses   int64
	BatchSteals      int64
	BatchStolenTasks int64
	// Blocks aggregates reference-count traffic (copies = the price of the
	// determinism guarantee).
	Blocks value.BlockStats
	// Fault-tolerance counters. Retries counts re-executed operator
	// attempts; SnapshotCopies counts blocks deep-copied to keep pristine
	// inputs for a possible retry (kept apart from Blocks.Copies, which
	// prices the §8 contention protocol itself); OpTimeouts counts attempts
	// cut off by Config.OpTimeout / Operator.Timeout; FaultsInjected counts
	// faults fired from the Config.Faults plan.
	Retries        int64
	SnapshotCopies int64
	OpTimeouts     int64
	FaultsInjected int64
	// Memory-plan counters, all zero when the program was compiled without
	// the plan. ElidedRetains/ElidedReleases count reference-count
	// operations skipped under static ownership proof (closure environment
	// transfers, single-consumer last uses); PooledAllocs counts operator
	// allocations served from per-worker block free lists; CopiesAvoided
	// counts blocks handed to destructive operators in place without the
	// copy-on-write check because exclusivity was proven at compile time.
	ElidedRetains  int64
	ElidedReleases int64
	PooledAllocs   int64
	CopiesAvoided  int64
	// Operator-fusion counters, all zero when the program was compiled
	// without fusion. FusedNodes counts node executions performed inside
	// fused supernodes (these still count in OpsExecuted); FusedDispatches-
	// Saved counts the ready-queue dispatches fusion avoided — one per
	// fused node beyond each supernode's head.
	FusedNodes           int64
	FusedDispatchesSaved int64

	// Simulated-mode results. MakespanTicks is the virtual finish time;
	// BusyTicks the summed per-processor busy time; DispatchTicks the
	// scheduling overhead included in BusyTicks; MemoryTicks the memory
	// access cost included in BusyTicks.
	MakespanTicks int64
	BusyTicks     int64
	DispatchTicks int64
	MemoryTicks   int64
	ProcBusyTicks []int64
	// RealNanos is the wall-clock duration of a Real-mode run.
	RealNanos int64
}

// reset zeroes every counter for the next run of a reused engine. Stores are
// atomic: an operator that timed out under Config.OpTimeout may have left an
// abandoned shadow goroutine behind, and although its results are discarded
// it can still touch the block counters until it unwinds.
func (s *Stats) reset() {
	for _, p := range []*int64{
		&s.OpsExecuted, &s.OperatorsRun,
		&s.ActivationsAllocated, &s.ActivationsReused,
		&s.LiveActivations, &s.PeakLive,
		&s.LiveActivationWords, &s.PeakActivationWords,
		&s.TailCalls, &s.ChargedUnits,
		&s.Steals, &s.StealContention, &s.Parks, &s.InjectedTasks,
		&s.AffinityHits, &s.AffinityMisses, &s.BatchSteals, &s.BatchStolenTasks,
		&s.Blocks.Allocated, &s.Blocks.Copies, &s.Blocks.Retains,
		&s.Blocks.Releases, &s.Blocks.Freed,
		&s.Retries, &s.SnapshotCopies, &s.OpTimeouts, &s.FaultsInjected,
		&s.ElidedRetains, &s.ElidedReleases, &s.PooledAllocs, &s.CopiesAvoided,
		&s.FusedNodes, &s.FusedDispatchesSaved,
		&s.MakespanTicks, &s.BusyTicks, &s.DispatchTicks, &s.MemoryTicks,
		&s.RealNanos,
	} {
		atomic.StoreInt64(p, 0)
	}
	s.ProcBusyTicks = nil
}

// noteLive bumps the live-activation gauges and refreshes the peaks.
func (s *Stats) noteLive(delta, words int64) {
	live := atomic.AddInt64(&s.LiveActivations, delta)
	liveWords := atomic.AddInt64(&s.LiveActivationWords, words)
	if delta <= 0 {
		return
	}
	for {
		peak := atomic.LoadInt64(&s.PeakLive)
		if live <= peak || atomic.CompareAndSwapInt64(&s.PeakLive, peak, live) {
			break
		}
	}
	for {
		peak := atomic.LoadInt64(&s.PeakActivationWords)
		if liveWords <= peak || atomic.CompareAndSwapInt64(&s.PeakActivationWords, peak, liveWords) {
			break
		}
	}
}

// OverheadFraction returns scheduling overhead as a fraction of all busy
// virtual time — the figure the paper reports as "generally less than three
// percent" (§1) and under one percent for the retina model (§7). Returns 0
// for Real-mode runs.
func (s *Stats) OverheadFraction() float64 {
	if s.BusyTicks == 0 {
		return 0
	}
	return float64(s.DispatchTicks) / float64(s.BusyTicks)
}

// Utilization returns busy/total processor-time for a simulated run.
func (s *Stats) Utilization() float64 {
	if s.MakespanTicks == 0 || len(s.ProcBusyTicks) == 0 {
		return 0
	}
	return float64(s.BusyTicks) / float64(s.MakespanTicks*int64(len(s.ProcBusyTicks)))
}

// String summarizes the counters. The memory-plan group is appended only
// when a plan was active, keeping unplanned output stable.
func (s *Stats) String() string {
	out := fmt.Sprintf("ops=%d operators=%d activations=%d(+%d reused) peak=%d tail=%d charged=%d copies=%d steals=%d parks=%d",
		atomic.LoadInt64(&s.OpsExecuted), atomic.LoadInt64(&s.OperatorsRun),
		atomic.LoadInt64(&s.ActivationsAllocated), atomic.LoadInt64(&s.ActivationsReused),
		atomic.LoadInt64(&s.PeakLive), atomic.LoadInt64(&s.TailCalls),
		atomic.LoadInt64(&s.ChargedUnits), atomic.LoadInt64(&s.Blocks.Copies),
		atomic.LoadInt64(&s.Steals), atomic.LoadInt64(&s.Parks))
	er, el := atomic.LoadInt64(&s.ElidedRetains), atomic.LoadInt64(&s.ElidedReleases)
	pa, ca := atomic.LoadInt64(&s.PooledAllocs), atomic.LoadInt64(&s.CopiesAvoided)
	if er != 0 || el != 0 || pa != 0 || ca != 0 {
		out += fmt.Sprintf(" elided=%d+%d pooled=%d inplace=%d", er, el, pa, ca)
	}
	if fn, fd := atomic.LoadInt64(&s.FusedNodes), atomic.LoadInt64(&s.FusedDispatchesSaved); fn != 0 || fd != 0 {
		out += fmt.Sprintf(" fused=%d(-%d dispatches)", fn, fd)
	}
	ah, am := atomic.LoadInt64(&s.AffinityHits), atomic.LoadInt64(&s.AffinityMisses)
	bs, bt := atomic.LoadInt64(&s.BatchSteals), atomic.LoadInt64(&s.BatchStolenTasks)
	if ah != 0 || am != 0 || bs != 0 {
		out += fmt.Sprintf(" affinity=%d/%d batchsteals=%d(%d tasks)", ah, ah+am, bs, bt)
	}
	return out
}

// TimingEntry records one node execution for the node timing tool (§5.2).
type TimingEntry struct {
	Name     string // operator or node label
	Template string
	Proc     int
	Start    int64 // virtual start time (Simulated) or offset nanoseconds (Real)
	Ticks    int64 // virtual ticks (Simulated) or nanoseconds (Real)
	// Fused marks an entry recorded inside a fused supernode. Fused member
	// entries price the operator body only, while unfused Simulated entries
	// also include the machine's dispatch charge; profile extraction
	// (Engine.ProfileWeights) uses the flag to normalize the two.
	Fused bool
	// Stolen marks a Real-mode entry whose task was pushed by a different
	// worker than the one that ran it (it crossed the steal path or the
	// injector); Affinity marks an entry dispatched on its preferred
	// producer's worker (Real) or processor (Simulated) under an active
	// affinity plan. The gantt renderer surfaces both.
	Stolen   bool
	Affinity bool
}

// TimingLog collects node timings from all workers. The engine's executors
// write through per-worker shards (no lock on the execution hot path); the
// public Add path keeps a mutex for external producers. Entries merges both
// and sorts, so rendering is deterministic regardless of which worker
// recorded what first.
type TimingLog struct {
	mu      sync.Mutex
	entries []TimingEntry
	// shards[w] is worker w's private buffer; only worker w appends to it,
	// and readers merge after the run is quiescent.
	shards [][]TimingEntry
}

// NewTimingLog returns an empty log.
func NewTimingLog() *TimingLog { return &TimingLog{} }

// initShards sizes the per-worker buffers; called by the engine before the
// workers start.
func (l *TimingLog) initShards(workers int) {
	if len(l.shards) < workers {
		l.shards = make([][]TimingEntry, workers)
	}
}

// addShard appends to worker wid's private buffer without locking. Engine
// internal: only worker wid may call it, and only while the run is live.
func (l *TimingLog) addShard(wid int, e TimingEntry) {
	l.shards[wid] = append(l.shards[wid], e)
}

// Add appends one entry; safe for concurrent use.
func (l *TimingLog) Add(e TimingEntry) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

// Entries returns the recorded entries merged across all workers and sorted
// by (Start, Proc, Name). Under Real-mode concurrency the raw arrival order
// is scheduling-dependent; the sort makes Listing and Gantt output
// deterministic for a given set of measurements. Call after Run returns.
func (l *TimingLog) Entries() []TimingEntry {
	l.mu.Lock()
	out := append([]TimingEntry(nil), l.entries...)
	l.mu.Unlock()
	for _, shard := range l.shards {
		out = append(out, shard...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Listing renders entries for the named operators in the paper's format:
//
//	call of convol_split took 10013
//	call of convol_bite took 1059919
//
// Only operators in the filter set are listed (nil lists everything).
func (l *TimingLog) Listing(filter map[string]bool) string {
	var b strings.Builder
	for _, e := range l.Entries() {
		if filter != nil && !filter[e.Name] {
			continue
		}
		fmt.Fprintf(&b, "call of %s took %d\n", e.Name, e.Ticks)
	}
	return b.String()
}

// Summary aggregates per-operator totals, sorted by descending total time.
type TimingSummary struct {
	Name  string
	Calls int
	Total int64
	Max   int64
}

// Summarize groups entries by operator name.
func (l *TimingLog) Summarize() []TimingSummary {
	agg := make(map[string]*TimingSummary)
	for _, e := range l.Entries() {
		s := agg[e.Name]
		if s == nil {
			s = &TimingSummary{Name: e.Name}
			agg[e.Name] = s
		}
		s.Calls++
		s.Total += e.Ticks
		if e.Ticks > s.Max {
			s.Max = e.Ticks
		}
	}
	out := make([]TimingSummary, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}
