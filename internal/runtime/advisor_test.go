package runtime

import (
	"strings"
	"testing"
)

func TestAdviseVerdicts(t *testing.T) {
	cp := &CritPath{
		Unit:      "ticks",
		PathTicks: 1000,
		Operators: []CritOp{
			// Dominant and fully serialized: must advise a split.
			{Name: "post_up", Calls: 4, OnPathCalls: 4, OnPath: 620, Total: 620},
			// Dominant but running 4x wide: watch, not split.
			{Name: "convol_bite", Calls: 16, OnPathCalls: 4, OnPath: 500, Total: 2000},
			// Below the dominance threshold: no advisory at all.
			{Name: "incr", Calls: 4, OnPathCalls: 4, OnPath: 100, Total: 100},
		},
	}
	advs := cp.Advise(8)
	if len(advs) != 2 {
		t.Fatalf("got %d advisories, want 2: %v", len(advs), advs)
	}
	if advs[0].Verdict != AdviseSplit || advs[0].Operator != "post_up" {
		t.Errorf("first advisory = %+v, want split on post_up", advs[0])
	}
	if advs[1].Verdict != AdviseWatch || advs[1].Operator != "convol_bite" {
		t.Errorf("second advisory = %+v, want watch on convol_bite", advs[1])
	}
	msg := advs[0].String()
	for _, want := range []string{"post_up", "62%", "8 workers", "splitting"} {
		if !strings.Contains(msg, want) {
			t.Errorf("split advisory %q missing %q", msg, want)
		}
	}
	if !strings.Contains(advs[1].String(), "more workers help") {
		t.Errorf("watch advisory %q missing worker hint", advs[1].String())
	}
}

func TestAdviseEmptyAndNil(t *testing.T) {
	var nilPath *CritPath
	if advs := nilPath.Advise(4); advs != nil {
		t.Errorf("nil path advised: %v", advs)
	}
	balanced := &CritPath{PathTicks: 1000, Operators: []CritOp{
		{Name: "a", OnPath: 200, Total: 800},
		{Name: "b", OnPath: 150, Total: 600},
	}}
	if advs := balanced.Advise(4); advs != nil {
		t.Errorf("balanced path advised: %v", advs)
	}
	if got := RenderAdvisories(nil); !strings.Contains(got, "advisory: none") {
		t.Errorf("empty render = %q", got)
	}
}
