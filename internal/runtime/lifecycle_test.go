package runtime

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/value"
)

// Engine lifecycle regressions: validation failures must not consume the
// engine, and a consumed engine must keep reporting ErrAlreadyRun.

func TestRunValidationDoesNotConsumeEngine(t *testing.T) {
	g := compile(t, "main(a, b) add(a, b)", nil)
	e := New(g, Config{Mode: Real, Workers: 2})

	// Wrong argument count: rejected, but the engine stays fresh.
	if _, err := e.Run(value.Int(1)); err == nil || !strings.Contains(err.Error(), "expects 2 arguments") {
		t.Fatalf("bad-arity error = %v", err)
	}
	if _, err := e.Run(); err == nil || !strings.Contains(err.Error(), "expects 2 arguments") {
		t.Fatalf("second bad-arity call = %v, want arity error (not ErrAlreadyRun)", err)
	}

	// Corrected retry succeeds on the same engine.
	v, err := e.Run(value.Int(40), value.Int(2))
	if err != nil {
		t.Fatalf("corrected retry failed: %v", err)
	}
	if v != value.Int(42) {
		t.Errorf("got %v, want 42", v)
	}

	// Only now is the engine consumed.
	if _, err := e.Run(value.Int(40), value.Int(2)); !errors.Is(err, ErrAlreadyRun) {
		t.Errorf("after a successful run, err = %v, want ErrAlreadyRun", err)
	}
}

func TestRunNoMainDoesNotConsumeEngine(t *testing.T) {
	prog := &graph.Program{Templates: map[string]*graph.Template{}}
	e := New(prog, Config{Mode: Real, Workers: 1})
	for i := 0; i < 2; i++ {
		if _, err := e.Run(); !errors.Is(err, ErrNoMain) {
			t.Fatalf("call %d: err = %v, want ErrNoMain every time", i, err)
		}
	}
}

// TestSeedQuiescenceReportsDeadlock pins the early-return path of runReal:
// when seeding schedules nothing and no result was produced, the run must
// report the same deadlock diagnostic the worker loop emits, not the
// generic "no result" fallback.
func TestSeedQuiescenceReportsDeadlock(t *testing.T) {
	tmpl := &graph.Template{Name: "silent"}
	tmpl.Nodes = []*graph.Node{
		{ID: 0, Kind: graph.ConstNode, Const: value.Int(1)},
		{ID: 1, Kind: graph.OpNode, Name: "x", NIn: 1}, // result node, never fed
	}
	tmpl.Result = 1
	prog := &graph.Program{Templates: map[string]*graph.Template{"main": tmpl}, Main: tmpl}
	e := New(prog, Config{Mode: Real, Workers: 4})
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlocked") {
		t.Errorf("err = %v, want the deadlock diagnostic", err)
	}
}
