package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// runReal executes the program on a pool of worker goroutines — one per
// configured processor — sharing the three-level priority ready queue.
//
// Termination: the run ends at quiescence (no scheduled work left), which
// is reached after the final result is produced and any straggling
// side-effecting operators have drained. If quiescence arrives without a
// result, the coordination graph deadlocked (a compiler bug, since sema
// rejects circular data dependencies) and the run fails. Errors abort
// immediately, abandoning queued work.
func (e *Engine) runReal(args []value.Value) (value.Value, error) {
	nw := e.cfg.workers()
	q := newReadyQueue()
	var outstanding int64

	sched := func(a *activation, n *graph.Node) {
		atomic.AddInt64(&outstanding, 1)
		q.Push(task{act: a, node: n}, e.classify(a, n))
	}

	start := time.Now()
	root := e.acquire(e.prog.Main)
	e.stats.noteLive(1, int64(e.prog.Main.ActivationWords()))
	boot := &worker{e: e, proc: 0, sched: sched}
	e.initActivation(boot, root, args)

	if atomic.LoadInt64(&outstanding) == 0 {
		// The whole program evaluated during seeding (constant main) or
		// nothing is runnable at all.
		e.stats.RealNanos = int64(time.Since(start))
		return e.takeResult()
	}

	var wg sync.WaitGroup
	for proc := 0; proc < nw; proc++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			w := &worker{e: e, proc: proc, sched: sched}
			for {
				t, ok := q.Pop()
				if !ok {
					return
				}
				var t0 time.Time
				if e.timing != nil {
					t0 = time.Now()
				}
				if err := e.execNode(w, t.act, t.node); err != nil {
					e.fail(err)
					q.Close()
					return
				}
				if e.timing != nil && t.node.Kind == graph.OpNode {
					e.timing.Add(TimingEntry{
						Name:     t.node.Name,
						Template: t.act.tmpl.Name,
						Proc:     proc,
						Start:    int64(t0.Sub(start)),
						Ticks:    int64(time.Since(t0)),
					})
				}
				if atomic.AddInt64(&outstanding, -1) == 0 {
					if !e.stopped.Load() {
						e.fail(fmt.Errorf("delirium: coordination graph deadlocked (no result and no runnable operators)"))
					}
					q.Close()
					return
				}
			}
		}(proc)
	}
	wg.Wait()
	e.stats.RealNanos = int64(time.Since(start))
	return e.takeResult()
}

// takeResult extracts the final value or error after a run ends.
func (e *Engine) takeResult() (value.Value, error) {
	if e.runErr != nil {
		return nil, e.runErr
	}
	v, _ := e.result.Load().(value.Value)
	if v == nil {
		return nil, fmt.Errorf("delirium: program produced no result")
	}
	return v, nil
}
