package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// runReal executes the program on a pool of worker goroutines — one per
// configured processor — coordinated by the work-stealing scheduler in
// stealqueue.go. Each worker schedules the nodes it makes runnable onto
// its own priority deques (LIFO, so a producer's consumers run hot);
// seeding goes through the shared injector; idle workers steal FIFO from
// their peers, preserving the §7 priority order at every tier.
//
// Termination: the run ends at quiescence (no scheduled work left), which
// is reached after the final result is produced and any straggling
// side-effecting operators have drained. If quiescence arrives without a
// result, the coordination graph deadlocked (a compiler bug, since sema
// rejects circular data dependencies) and the run fails. Errors abort
// immediately, abandoning queued work and waking every parked worker.
func (e *Engine) runReal(args []value.Value) (value.Value, error) {
	nw := e.cfg.workers()
	if nw == 1 {
		return e.runRealSerial(args)
	}
	start := time.Now()
	if e.tracer != nil {
		e.tracer.now = func() int64 { return int64(time.Since(start)) }
	}
	s := e.scheduler(nw)

	bootSched := func(a *activation, n *graph.Node) {
		e.outstanding.Add(1)
		if e.tracer != nil {
			e.tracer.record(-1, TraceEvent{Type: TraceInject, Ts: e.tracer.now(),
				Act: a.seq, Node: int32(n.ID), Name: traceLabel(n), Tmpl: a.tmpl.Name})
		}
		s.pushInject(&task{act: a, node: n}, e.classify(a, n))
	}

	root := e.acquire(-1, e.prog.Main)
	e.rootAct = root
	e.stats.noteLive(1, int64(e.prog.Main.ActivationWords()))
	// The boot worker runs on the caller's goroutine before the pool exists;
	// proc -1 routes its trace events to the external (seed) track.
	boot := &worker{e: e, proc: -1, sched: bootSched, tr: e.tracer, mem: e.memState(-1)}
	e.initActivation(boot, root, args)

	if e.outstanding.Load() == 0 {
		// The whole program evaluated during seeding (constant main) or
		// nothing is runnable at all. The second case is the same
		// quiescence-without-result failure the worker loop detects.
		if !e.stopped.Load() {
			e.failAt(root, errDeadlock(activationPath(root)))
		}
		e.stats.RealNanos = int64(time.Since(start))
		if e.runErr != nil {
			e.cleanupAfterError(s.drain())
		}
		return e.takeResult()
	}

	// A cancellation watcher lets a run with slow or parked workers drain
	// promptly: it records the failure and closes the scheduler, waking
	// every parked worker, instead of waiting for the next poll inside
	// execNode. It must be stopped before runErr is read or the queues are
	// swept, so the pool shutdown path joins it explicitly.
	stopWatcher := func() {}
	if e.ctxDone != nil {
		cancelWatch := make(chan struct{})
		watcherDone := make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-e.ctxDone:
				e.fail(&RunError{Kind: FailCanceled, Err: e.runCtx.Err()})
				s.close()
			case <-cancelWatch:
			}
		}()
		stopWatcher = func() {
			close(cancelWatch)
			<-watcherDone
		}
	}

	if e.pool != nil {
		// RunMany installed a persistent pool: the worker goroutines already
		// exist, parked between runs. Hand them the run start and rendezvous
		// at quiescence — no spawn, no join.
		e.pool.runRound(start)
	} else {
		var wg sync.WaitGroup
		for proc := 0; proc < nw; proc++ {
			wg.Add(1)
			go func(proc int) {
				defer wg.Done()
				e.workerLoop(proc, s, start)
			}(proc)
		}
		wg.Wait()
	}
	stopWatcher()
	e.stats.RealNanos = int64(time.Since(start))
	if e.runErr != nil {
		e.cleanupAfterError(s.drain())
	}
	return e.takeResult()
}

// workerLoop is one worker's dispatch loop for one run: scan, steal, park,
// execute, until the run closes the scheduler (quiescence, error, or
// cancellation). It runs either on a per-run goroutine (plain Run) or on a
// persistent pool goroutine that survives across runs (RunMany).
func (e *Engine) workerLoop(proc int, s *stealScheduler, start time.Time) {
	w := &worker{e: e, proc: proc, tr: e.tracer, mem: e.memState(proc), base: start, lifo: true}
	w.sched = func(a *activation, n *graph.Node) {
		e.outstanding.Add(1)
		t := &task{act: a, node: n, from: int32(proc), pref: w.pref}
		pri := e.classify(a, n)
		if w.selfSlot {
			// First push of the current execution: this worker rescans its
			// own deques before it can ever park, so one task per execution
			// needs no wake token (k pushes pay k-1 notifies).
			w.selfSlot = false
			s.pushLocalQuiet(proc, t, pri)
			return
		}
		s.pushLocal(proc, t, pri)
	}
	for {
		if s.closed.Load() {
			return
		}
		t := s.spinFind(proc)
		if t == nil {
			if s.closed.Load() {
				return
			}
			s.park(proc)
			continue
		}
		if e.affinity && t.pref {
			// Preferred-edge dispatch outcome: a hit ran on the worker that
			// completed its preferred producer (warm cache), a miss migrated
			// (stolen, or re-pushed through the injector).
			hit := t.from == int32(proc)
			if hit {
				atomic.AddInt64(&e.stats.AffinityHits, 1)
			} else {
				atomic.AddInt64(&e.stats.AffinityMisses, 1)
			}
			if e.tracer != nil {
				var arg int64
				if hit {
					arg = 1
				}
				e.tracer.record(proc, TraceEvent{Type: TraceAffinity, Ts: e.tracer.now(),
					Act: t.act.seq, Node: int32(t.node.ID), Arg: arg})
			}
		}
		w.selfSlot = true
		var t0 time.Time
		if e.timing != nil || e.tracer != nil {
			t0 = time.Now()
			w.taskStolen = t.from >= 0 && t.from != int32(proc)
			w.taskAff = e.affinity && t.pref && t.from == int32(proc)
		}
		// Capture the activation identity before execNode: the last
		// node of an activation recycles it, and a pool reuse (even
		// inside this very execNode, via a recursive expansion)
		// restamps seq.
		actSeq, nodeID := t.act.seq, int32(t.node.ID)
		if e.tracer != nil {
			e.tracer.record(proc, TraceEvent{Type: TraceNodeStart, Ts: int64(t0.Sub(start)),
				Act: actSeq, Node: nodeID, Name: dispatchLabel(t.node), Tmpl: t.act.tmpl.Name})
		}
		err := e.execNode(w, t.act, t.node)
		if e.tracer != nil {
			e.tracer.record(proc, TraceEvent{Type: TraceNodeEnd, Ts: int64(time.Since(start)),
				Act: actSeq, Node: nodeID})
		}
		if err != nil {
			e.failAt(t.act, err)
			s.close()
			return
		}
		// Fused dispatches record their own per-member entries, so the
		// executor-level entry (which would bill the whole supernode
		// to the head operator) is suppressed for them.
		if e.timing != nil && t.node.Kind == graph.OpNode && t.node.FuseCluster == nil {
			e.timing.addShard(proc, TimingEntry{
				Name:     t.node.Name,
				Template: t.act.tmpl.Name,
				Proc:     proc,
				Start:    int64(t0.Sub(start)),
				Ticks:    int64(time.Since(t0)),
				Stolen:   w.taskStolen,
				Affinity: w.taskAff,
			})
		}
		if e.outstanding.Add(-1) == 0 {
			if !e.stopped.Load() {
				// The root is still live (it never produced a
				// result), so its path names the stuck entry point.
				e.failAt(e.rootAct, errDeadlock(activationPath(e.rootAct)))
			}
			s.close()
			return
		}
	}
}

// runRealSerial is the one-worker executor: same semantics, but the ready
// queue degenerates to the plain three-level serialQueue (queue.go) — no
// thieves exist, so the caller's goroutine runs the whole program without
// atomics on the scheduling hot path or per-task allocation. Quiescence is
// simply the queue running dry.
func (e *Engine) runRealSerial(args []value.Value) (value.Value, error) {
	var q serialQueue
	w := &worker{e: e, proc: 0, tr: e.tracer, mem: e.memState(0)}
	w.sched = func(a *activation, n *graph.Node) {
		q.push(task{act: a, node: n, pref: w.pref}, e.classify(a, n))
	}

	start := time.Now()
	w.base = start
	if e.tracer != nil {
		e.tracer.now = func() int64 { return int64(time.Since(start)) }
	}
	root := e.acquire(0, e.prog.Main)
	e.rootAct = root
	e.stats.noteLive(1, int64(e.prog.Main.ActivationWords()))
	e.initActivation(w, root, args)

	for {
		t, ok := q.pop()
		if !ok {
			break
		}
		if e.affinity && t.pref {
			// One worker: every preferred dispatch trivially runs where its
			// producer did, so the hit-rate denominator stays comparable
			// across worker counts.
			atomic.AddInt64(&e.stats.AffinityHits, 1)
		}
		var t0 time.Time
		if e.timing != nil || e.tracer != nil {
			t0 = time.Now()
			w.taskStolen = false
			w.taskAff = e.affinity && t.pref
		}
		actSeq, nodeID := t.act.seq, int32(t.node.ID)
		if e.tracer != nil {
			e.tracer.record(0, TraceEvent{Type: TraceNodeStart, Ts: int64(t0.Sub(start)),
				Act: actSeq, Node: nodeID, Name: dispatchLabel(t.node), Tmpl: t.act.tmpl.Name})
		}
		err := e.execNode(w, t.act, t.node)
		if e.tracer != nil {
			e.tracer.record(0, TraceEvent{Type: TraceNodeEnd, Ts: int64(time.Since(start)),
				Act: actSeq, Node: nodeID})
		}
		if err != nil {
			e.failAt(t.act, err)
			break
		}
		if e.timing != nil && t.node.Kind == graph.OpNode && t.node.FuseCluster == nil {
			e.timing.addShard(0, TimingEntry{
				Name:     t.node.Name,
				Template: t.act.tmpl.Name,
				Proc:     0,
				Start:    int64(t0.Sub(start)),
				Ticks:    int64(time.Since(t0)),
				Affinity: w.taskAff,
			})
		}
	}
	if !e.stopped.Load() {
		e.failAt(root, errDeadlock(activationPath(root)))
	}
	e.stats.RealNanos = int64(time.Since(start))
	if e.runErr != nil {
		e.cleanupAfterError(q.drain())
	}
	return e.takeResult()
}

// takeResult extracts the final value or error after a run ends. The run
// has quiesced by now, so this is also where per-worker memory-plan
// counters merge into Stats and where the engine advances to engFinished,
// bumping the run-generation counter (both executors end here).
func (e *Engine) takeResult() (value.Value, error) {
	if e.memStates != nil {
		e.mergeMemStats()
	}
	e.gen.Add(1)
	e.state.Store(engFinished)
	if e.runErr != nil {
		return nil, e.runErr
	}
	box, _ := e.result.Load().(resultBox)
	if box.v == nil {
		return nil, fmt.Errorf("delirium: program produced no result")
	}
	return box.v, nil
}
