package runtime

import (
	"sync"
	"testing"

	"repro/internal/value"
)

// TestEnginePoolReuse: Get after Put hands back the same engine, warmed;
// counters track constructions vs reuses; overflow beyond maxIdle drops.
func TestEnginePoolReuse(t *testing.T) {
	g := compile(t, "main(n) incr(n)", nil)
	p := NewEnginePool(1, func() *Engine {
		return New(g, Config{Mode: Real, Workers: 1, MaxOps: 1000})
	})
	e1 := p.Get()
	if v, err := e1.Run(value.Int(1)); err != nil || v != value.Int(2) {
		t.Fatalf("first run: %v, %v", v, err)
	}
	p.Put(e1)
	e2 := p.Get()
	if e2 != e1 {
		t.Error("Get after Put constructed a new engine instead of reusing")
	}
	if v, err := e2.Run(value.Int(5)); err != nil || v != value.Int(6) {
		t.Fatalf("reused run: %v, %v", v, err)
	}
	// Put back plus one extra: maxIdle 1 keeps one, drops the other.
	e3 := New(g, Config{Mode: Real, Workers: 1, MaxOps: 1000})
	p.Put(e2)
	p.Put(e3)
	created, reused, idle := p.Counters()
	if created != 1 || reused != 1 || idle != 1 {
		t.Errorf("counters = created %d, reused %d, idle %d; want 1, 1, 1",
			created, reused, idle)
	}
}

// TestEnginePoolConcurrent hammers Get/Run/Put from many goroutines under
// -race: every checkout must see a runnable engine and a correct result.
func TestEnginePoolConcurrent(t *testing.T) {
	g := compile(t, "main(n) incr(n)", nil)
	p := NewEnginePool(4, func() *Engine {
		return New(g, Config{Mode: Real, Workers: 2, MaxOps: 1000})
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				e := p.Get()
				v, err := e.Run(value.Int(i))
				if err != nil || v != value.Int(i+1) {
					t.Errorf("pooled run(%d): %v, %v", i, v, err)
				}
				p.Put(e)
			}
		}()
	}
	wg.Wait()
	created, reused, _ := p.Counters()
	if created+reused != 200 {
		t.Errorf("created %d + reused %d = %d, want 200", created, reused, created+reused)
	}
}
