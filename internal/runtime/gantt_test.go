package runtime

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/value"
)

// Tests for the §5.2 observability surface: the Gantt timeline renderer,
// per-processor loads, and the TimingLog merge/sort behavior that makes
// Listing and Summarize deterministic under real-mode concurrency.

func TestGanttEmpty(t *testing.T) {
	if got := NewTimingLog().Gantt(40); got != "(no timing entries)\n" {
		t.Errorf("empty gantt = %q", got)
	}
}

// TestGanttScaling paints two non-overlapping halves of the makespan on two
// processors and checks cell-exact output: entries scale into the requested
// width and idle time prints as dots.
func TestGanttScaling(t *testing.T) {
	l := NewTimingLog()
	l.Add(TimingEntry{Name: "aa", Proc: 0, Start: 0, Ticks: 50})
	l.Add(TimingEntry{Name: "bb", Proc: 1, Start: 50, Ticks: 50})
	got := l.Gantt(10)
	want := "virtual time 0..100 ticks, 10 cells/row\n" +
		"proc  0 |aa###.....|\n" +
		"proc  1 |.....bb###|\n"
	if got != want {
		t.Errorf("gantt:\n%s\nwant:\n%s", got, want)
	}
}

// TestGanttMinWidth checks the width floor: anything under 10 cells renders
// at 10.
func TestGanttMinWidth(t *testing.T) {
	l := NewTimingLog()
	l.Add(TimingEntry{Name: "x", Proc: 0, Start: 0, Ticks: 10})
	got := l.Gantt(3)
	if !strings.Contains(got, "10 cells/row") {
		t.Errorf("width not clamped to 10:\n%s", got)
	}
}

// TestGanttPaintOrder checks that longer entries paint before shorter ones,
// so a tiny operator stays visible as an overlay on a dominant one instead of
// being buried under it.
func TestGanttPaintOrder(t *testing.T) {
	l := NewTimingLog()
	l.Add(TimingEntry{Name: "yy", Proc: 0, Start: 0, Ticks: 10})
	l.Add(TimingEntry{Name: "xx", Proc: 0, Start: 0, Ticks: 100})
	got := l.Gantt(10)
	if !strings.Contains(got, "|yx########|") {
		t.Errorf("short entry buried under long one:\n%s", got)
	}
}

// TestGanttZeroTickEntry checks a zero-duration entry still paints one cell.
func TestGanttZeroTickEntry(t *testing.T) {
	l := NewTimingLog()
	l.Add(TimingEntry{Name: "z", Proc: 0, Start: 5, Ticks: 0})
	l.Add(TimingEntry{Name: "w", Proc: 0, Start: 0, Ticks: 10})
	got := l.Gantt(10)
	if !strings.Contains(got, "z") {
		t.Errorf("zero-tick entry invisible:\n%s", got)
	}
}

func TestProcLoads(t *testing.T) {
	l := NewTimingLog()
	l.Add(TimingEntry{Name: "a", Proc: 0, Start: 0, Ticks: 30})
	l.Add(TimingEntry{Name: "b", Proc: 2, Start: 0, Ticks: 50})
	l.Add(TimingEntry{Name: "c", Proc: 0, Start: 30, Ticks: 20})
	loads := l.ProcLoads()
	if len(loads) != 3 {
		t.Fatalf("len(loads) = %d, want 3", len(loads))
	}
	if loads[0] != 50 || loads[1] != 0 || loads[2] != 50 {
		t.Errorf("loads = %v, want [50 0 50]", loads)
	}
}

// TestTimingEntriesSorted is the regression test for nondeterministic
// Listing/Gantt order: Entries must come back sorted by (Start, Proc, Name)
// no matter what order workers recorded them in.
func TestTimingEntriesSorted(t *testing.T) {
	base := []TimingEntry{
		{Name: "a", Proc: 0, Start: 0, Ticks: 1},
		{Name: "b", Proc: 0, Start: 0, Ticks: 1},
		{Name: "a", Proc: 1, Start: 0, Ticks: 1},
		{Name: "c", Proc: 3, Start: 5, Ticks: 1},
		{Name: "c", Proc: 2, Start: 5, Ticks: 1},
		{Name: "d", Proc: 0, Start: 9, Ticks: 1},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		l := NewTimingLog()
		for _, i := range rng.Perm(len(base)) {
			l.Add(base[i])
		}
		got := l.Entries()
		for i := 1; i < len(got); i++ {
			p, c := got[i-1], got[i]
			before := p.Start < c.Start ||
				(p.Start == c.Start && (p.Proc < c.Proc ||
					(p.Proc == c.Proc && p.Name <= c.Name)))
			if !before {
				t.Fatalf("trial %d: entries out of order at %d: %+v then %+v", trial, i, p, c)
			}
		}
		if len(got) != len(base) {
			t.Fatalf("trial %d: %d entries, want %d", trial, len(got), len(base))
		}
	}
}

// TestTimingShardsMerge checks Entries merges the per-worker shards with the
// mutex-guarded Add path and that shard writes stay worker-private.
func TestTimingShardsMerge(t *testing.T) {
	l := NewTimingLog()
	l.initShards(3)
	l.addShard(0, TimingEntry{Name: "s0", Proc: 0, Start: 2, Ticks: 1})
	l.addShard(2, TimingEntry{Name: "s2", Proc: 2, Start: 1, Ticks: 1})
	l.Add(TimingEntry{Name: "ext", Proc: 9, Start: 0, Ticks: 1})
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	if got[0].Name != "ext" || got[1].Name != "s2" || got[2].Name != "s0" {
		t.Errorf("merge order wrong: %v", got)
	}
}

// TestTimingAddConcurrent hammers the public Add path from several
// goroutines; with -race this guards the external-producer lock.
func TestTimingAddConcurrent(t *testing.T) {
	l := NewTimingLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(TimingEntry{Name: "op", Proc: g, Start: int64(i), Ticks: 1})
			}
		}(g)
	}
	wg.Wait()
	if n := len(l.Entries()); n != 800 {
		t.Errorf("entries = %d, want 800", n)
	}
}

// TestTimingListingGolden runs a deterministic simulated program twice and
// checks Listing and the summary are byte-identical across runs, with the
// exact calls the program makes.
func TestTimingListingGolden(t *testing.T) {
	const src = "main() add(mul(3, 4), incr(5))"
	render := func() (string, []TimingSummary) {
		g := compile(t, src, nil)
		e := New(g, Config{Mode: Simulated, Workers: 1, Timing: true})
		v, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if v != value.Int(18) {
			t.Fatalf("result = %v, want 18", v)
		}
		return e.Timing().Listing(nil), e.Timing().Summarize()
	}
	l1, s1 := render()
	l2, s2 := render()
	if l1 != l2 {
		t.Errorf("two identical sim runs rendered different listings:\n%s\nvs\n%s", l1, l2)
	}
	for _, name := range []string{"add", "mul", "incr"} {
		if !strings.Contains(l1, "call of "+name+" took ") {
			t.Errorf("listing missing %s:\n%s", name, l1)
		}
	}
	calls := make(map[string]int)
	for i, s := range s1 {
		calls[s.Name] = s.Calls
		if s.Total <= 0 {
			t.Errorf("summary row %s has non-positive total", s.Name)
		}
		if i > 0 && s.Total > s1[i-1].Total {
			t.Errorf("summary not sorted by descending total at %s", s.Name)
		}
		if s2[i] != s {
			t.Errorf("summaries differ across runs at row %d", i)
		}
	}
	for _, name := range []string{"add", "mul", "incr"} {
		if calls[name] != 1 {
			t.Errorf("%s calls = %d, want 1", name, calls[name])
		}
	}
}
