package runtime

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/macro"
	"repro/internal/operator"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/value"
)

// compile builds a runnable program from source against reg (Builtins when
// nil).
func compile(t *testing.T, src string, reg *operator.Registry) *graph.Program {
	t.Helper()
	if reg == nil {
		reg = operator.Builtins()
	}
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags.Err())
	}
	info := sema.Analyze(macro.ExpandProgram(prog, &diags), reg, &diags)
	if diags.HasErrors() {
		t.Fatalf("analyze: %v", diags.Err())
	}
	g := graph.Build(info, &diags)
	if diags.HasErrors() {
		t.Fatalf("build: %v", diags.Err())
	}
	return g
}

// run executes src under cfg and returns the result.
func run(t *testing.T, src string, cfg Config, args ...value.Value) value.Value {
	t.Helper()
	g := compile(t, src, nil)
	e := New(g, cfg)
	v, err := e.Run(args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func configs() map[string]Config {
	return map[string]Config{
		"real-1": {Mode: Real, Workers: 1, MaxOps: 2_000_000},
		"real-4": {Mode: Real, Workers: 4, MaxOps: 2_000_000},
		"sim-1":  {Mode: Simulated, Workers: 1, MaxOps: 2_000_000},
		"sim-4":  {Mode: Simulated, Workers: 4, MaxOps: 2_000_000},
	}
}

func TestRunConstant(t *testing.T) {
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, "main() 42", cfg); got != value.Int(42) {
				t.Errorf("main() = %v", got)
			}
		})
	}
}

func TestRunArithmetic(t *testing.T) {
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, "main() add(mul(3, 4), incr(5))", cfg); got != value.Int(18) {
				t.Errorf("got %v, want 18", got)
			}
		})
	}
}

func TestRunWithArgs(t *testing.T) {
	g := compile(t, "main(a, b) sub(a, b)", nil)
	e := New(g, Config{Mode: Real, Workers: 2})
	v, err := e.Run(value.Int(10), value.Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if v != value.Int(6) {
		t.Errorf("got %v, want 6", v)
	}
}

func TestRunArgCountMismatch(t *testing.T) {
	g := compile(t, "main(a) a", nil)
	e := New(g, Config{Mode: Real, Workers: 1})
	if _, err := e.Run(); err == nil || !strings.Contains(err.Error(), "expects 1") {
		t.Errorf("err = %v", err)
	}
}

func TestRunNoMain(t *testing.T) {
	g := compile(t, "helper(x) x", nil)
	e := New(g, Config{Mode: Real, Workers: 1})
	if _, err := e.Run(); err != ErrNoMain {
		t.Errorf("err = %v, want ErrNoMain", err)
	}
}

func TestRunLetForkJoin(t *testing.T) {
	src := `
main(x)
  let a = mul(x, 2)
      b = mul(x, 3)
      c = mul(x, 4)
      d = mul(x, 5)
  in add(add(a, b), add(c, d))
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg, value.Int(10)); got != value.Int(140) {
				t.Errorf("got %v, want 140", got)
			}
		})
	}
}

func TestRunConditional(t *testing.T) {
	src := "main(x) if lt(x, 0) then neg(x) else x"
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg, value.Int(-7)); got != value.Int(7) {
				t.Errorf("abs(-7) = %v", got)
			}
			if got := run(t, src, cfg, value.Int(5)); got != value.Int(5) {
				t.Errorf("abs(5) = %v", got)
			}
		})
	}
}

func TestRunTuples(t *testing.T) {
	src := `
main()
  let <a, b, c> = <1, 2, 3>
  in add(a, add(b, c))
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg); got != value.Int(6) {
				t.Errorf("got %v, want 6", got)
			}
		})
	}
}

func TestRunRecursion(t *testing.T) {
	src := `
fact(n) if is_equal(n, 0) then 1 else mul(n, fact(sub(n, 1)))
main(n) fact(n)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg, value.Int(10)); got != value.Int(3628800) {
				t.Errorf("fact(10) = %v", got)
			}
		})
	}
}

func TestRunMutualRecursion(t *testing.T) {
	src := `
even(n) if is_equal(n, 0) then 1 else odd(sub(n, 1))
odd(n) if is_equal(n, 0) then 0 else even(sub(n, 1))
main(n) even(n)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg, value.Int(10)); got != value.Int(1) {
				t.Errorf("even(10) = %v", got)
			}
			if got := run(t, src, cfg, value.Int(7)); got != value.Int(0) {
				t.Errorf("even(7) = %v", got)
			}
		})
	}
}

func TestRunIterate(t *testing.T) {
	// Sum 1..n with a two-variable loop.
	src := `
main(n)
  iterate
  {
    i = 0, incr(i)
    total = 0, add(total, incr(i))
  } while is_not_equal(i, n),
  result total
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg, value.Int(10)); got != value.Int(55) {
				t.Errorf("sum(10) = %v, want 55", got)
			}
		})
	}
}

func TestIterateIsDoWhile(t *testing.T) {
	// The body runs once even when the condition is false immediately.
	src := `
main()
  iterate { i = 0, incr(i) } while lt(i, 0), result i
`
	if got := run(t, src, Config{Mode: Real, Workers: 1}); got != value.Int(1) {
		t.Errorf("got %v, want 1 (do-while semantics)", got)
	}
}

func TestTailCallActivationReuse(t *testing.T) {
	src := `
main(n)
  iterate { i = 0, incr(i) } while lt(i, n), result i
`
	g := compile(t, src, nil)
	e := New(g, Config{Mode: Real, Workers: 1})
	v, err := e.Run(value.Int(5000))
	if err != nil {
		t.Fatal(err)
	}
	if v != value.Int(5000) {
		t.Fatalf("got %v", v)
	}
	st := e.Stats()
	if st.TailCalls < 4999 {
		t.Errorf("TailCalls = %d, want ~5000", st.TailCalls)
	}
	// O(1) loop memory: live activations stay bounded regardless of trip
	// count.
	if st.PeakLive > 50 {
		t.Errorf("PeakLive = %d; tail recursion must not accumulate activations", st.PeakLive)
	}
	if st.ActivationsReused == 0 {
		t.Error("activation pool unused during a long loop")
	}
}

func TestRunClosures(t *testing.T) {
	src := `
double(x) mul(x, 2)
triple(x) mul(x, 3)
pick(flag) if flag then double else triple
main(flag, v) (pick(flag))(v)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg, value.Bool(true), value.Int(10)); got != value.Int(20) {
				t.Errorf("double path = %v", got)
			}
			if got := run(t, src, cfg, value.Bool(false), value.Int(10)); got != value.Int(30) {
				t.Errorf("triple path = %v", got)
			}
		})
	}
}

func TestRunCapturedClosure(t *testing.T) {
	src := `
make_adder(k)
  let addk(v) add(v, k)
  in addk
main() (make_adder(100))(5)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg); got != value.Int(105) {
				t.Errorf("got %v, want 105", got)
			}
		})
	}
}

func TestRunFirstClassFunctionArg(t *testing.T) {
	src := `
apply_twice(f, x) f(f(x))
double(x) mul(x, 2)
main(v) apply_twice(double, v)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if got := run(t, src, cfg, value.Int(5)); got != value.Int(20) {
				t.Errorf("got %v, want 20", got)
			}
		})
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src     string
		args    []value.Value
		wantErr string
	}{
		{"main() div(1, 0)", nil, "division by zero"},
		{"main(t) tuple_get(t, 5)", []value.Value{value.Tuple{value.Int(1)}}, "out of range"},
		{"main(x) if x then 1 else 2", []value.Value{value.Str("s")}, "condition"},
		{"main(f) f(1)", []value.Value{value.Int(3)}, "function required"},
	}
	for _, c := range cases {
		for name, cfg := range configs() {
			g := compile(t, c.src, nil)
			e := New(g, cfg)
			_, err := e.Run(c.args...)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%s/%s: err = %v, want mention of %q", c.src, name, err, c.wantErr)
			}
		}
	}
}

func TestClosureArityError(t *testing.T) {
	src := `
double(x) mul(x, 2)
main() (if is_equal(1,1) then double else double)(1, 2)
`
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	info := sema.Analyze(macro.ExpandProgram(prog, &diags), operator.Builtins(), &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	g := graph.Build(info, &diags)
	e := New(g, Config{Mode: Real, Workers: 1})
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "expects 1 arguments, got 2") {
		t.Errorf("err = %v", err)
	}
}

func TestMaxOpsGuard(t *testing.T) {
	src := "spin(n) spin(n)\nmain() spin(1)"
	g := compile(t, src, nil)
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 10_000})
	if _, err := e.Run(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v", err)
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// The central promise of the coordination model (§8): the computed
	// result is deterministic regardless of processor count and execution
	// order.
	src := `
fib(n) if lt(n, 2) then n else add(fib(sub(n,1)), fib(sub(n,2)))
main(n) fib(n)
`
	g := compile(t, src, nil)
	var want value.Value
	for _, workers := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 3; trial++ {
			e := New(g, Config{Mode: Real, Workers: workers, MaxOps: 5_000_000})
			got, err := e.Run(value.Int(15))
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if want == nil {
				want = got
			} else if !value.Equal(got, want) {
				t.Fatalf("workers=%d trial=%d: got %v, want %v", workers, trial, got, want)
			}
		}
	}
	if want != value.Int(610) {
		t.Errorf("fib(15) = %v, want 610", want)
	}
}

func TestSimulatedIsDeterministic(t *testing.T) {
	src := `
f(x) add(mul(x, 3), 1)
main(n)
  let a = f(n)
      b = f(incr(n))
      c = f(add(n, 2))
  in add(a, add(b, c))
`
	g := compile(t, src, nil)
	var ticks []int64
	for i := 0; i < 3; i++ {
		e := New(g, Config{Mode: Simulated, Workers: 3, Machine: machine.CrayYMP()})
		v, err := e.Run(value.Int(5))
		if err != nil {
			t.Fatal(err)
		}
		if v != value.Int(16+19+22) {
			t.Fatalf("value = %v", v)
		}
		ticks = append(ticks, e.Stats().MakespanTicks)
	}
	if ticks[0] != ticks[1] || ticks[1] != ticks[2] {
		t.Errorf("simulated makespan not deterministic: %v", ticks)
	}
	if ticks[0] <= 0 {
		t.Errorf("makespan = %d, want positive", ticks[0])
	}
}

func TestSimulatedSpeedup(t *testing.T) {
	// Four independent heavy operators on 1 vs 4 processors: the virtual
	// makespan must shrink close to 4x.
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "heavy", Arity: 1, Pure: false,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			ctx.Charge(100000)
			return args[0], nil
		},
	})
	src := `
main(x)
  let a = heavy(x)
      b = heavy(x)
      c = heavy(x)
      d = heavy(x)
  in add(add(a, b), add(c, d))
`
	g := compile(t, src, reg)
	var makespans [2]int64
	for i, procs := range []int{1, 4} {
		e := New(g, Config{Mode: Simulated, Workers: procs, Machine: machine.CrayYMP()})
		if _, err := e.Run(value.Int(1)); err != nil {
			t.Fatal(err)
		}
		makespans[i] = e.Stats().MakespanTicks
	}
	speedup := float64(makespans[0]) / float64(makespans[1])
	if speedup < 3.5 || speedup > 4.2 {
		t.Errorf("speedup = %.2f (makespans %v), want ~4", speedup, makespans)
	}
}

func TestSimulatedThreeOfFourTasks(t *testing.T) {
	// The paper's observation: with four equal tasks, three processors are
	// no better than two (Figure 1 discussion).
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "heavy", Arity: 1, Pure: false,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			ctx.Charge(100000)
			return args[0], nil
		},
	})
	src := `
main(x)
  let a = heavy(x)
      b = heavy(x)
      c = heavy(x)
      d = heavy(x)
  in add(add(a, b), add(c, d))
`
	g := compile(t, src, reg)
	times := make(map[int]int64)
	for _, procs := range []int{2, 3} {
		e := New(g, Config{Mode: Simulated, Workers: procs, Machine: machine.CrayYMP()})
		if _, err := e.Run(value.Int(1)); err != nil {
			t.Fatal(err)
		}
		times[procs] = e.Stats().MakespanTicks
	}
	ratio := float64(times[2]) / float64(times[3])
	if ratio > 1.05 {
		t.Errorf("3 procs should not beat 2 on four equal tasks: t2=%d t3=%d", times[2], times[3])
	}
}

func TestNodeTimingLog(t *testing.T) {
	g := compile(t, "main(x) add(mul(x, x), 1)", nil)
	e := New(g, Config{Mode: Simulated, Workers: 1, Timing: true})
	if _, err := e.Run(value.Int(3)); err != nil {
		t.Fatal(err)
	}
	log := e.Timing()
	if log == nil {
		t.Fatal("timing log missing")
	}
	entries := log.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2 (mul, add)", len(entries))
	}
	listing := log.Listing(nil)
	if !strings.Contains(listing, "call of mul took") || !strings.Contains(listing, "call of add took") {
		t.Errorf("listing:\n%s", listing)
	}
	sum := log.Summarize()
	if len(sum) != 2 || sum[0].Calls != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestStatsString(t *testing.T) {
	g := compile(t, "main() incr(1)", nil)
	e := New(g, Config{Mode: Real, Workers: 1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Stats().String(), "ops=") {
		t.Errorf("Stats.String = %q", e.Stats().String())
	}
}

func TestAffinityPolicyString(t *testing.T) {
	if AffinityNone.String() != "none" || AffinityOperator.String() != "operator" || AffinityData.String() != "data" {
		t.Error("affinity names wrong")
	}
}

func TestEngineRunOnce(t *testing.T) {
	g := compile(t, "main() 1", nil)
	e := New(g, Config{Mode: Real, Workers: 1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != ErrAlreadyRun {
		t.Errorf("second Run = %v, want ErrAlreadyRun", err)
	}
}

func TestOperatorPanicBecomesError(t *testing.T) {
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "boom", Arity: 1,
		Fn: func(operator.Context, []value.Value) (value.Value, error) {
			panic("embedded code bug")
		},
	})
	g := compile(t, "main() boom(1)", reg)
	for name, cfg := range configs() {
		e := New(g, cfg)
		_, err := e.Run()
		if err == nil || !strings.Contains(err.Error(), "operator panicked: embedded code bug") {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}
