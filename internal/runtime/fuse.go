package runtime

import (
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Fused supernode dispatch. The fusion pass (internal/opt/fuse.go) proved
// that once a cluster's head is runnable, every member can execute in the
// cluster's stored topological order with all inputs present: internal
// values land directly in the next member's slot (complete's
// FuseInternalOut fast path) and every external input was already delivered
// before the head's gate opened. execFused therefore runs the whole cluster
// as one straight-line interpreted sequence on the dispatching worker — one
// ready-queue round trip, one dispatch overhead, no counter traffic between
// members.
//
// Composition notes:
//   - retry/faults: each member runs through the ordinary execBody path,
//     so a retryable member re-executes from its own snapshot boundary and
//     a terminal failure aborts the sequence exactly like an unfused run;
//   - tracing: the executor's outer start/end pair brackets the supernode
//     (labeled "fused:<head>") and per-member start/end pairs nest inside
//     it, so the critical-path analyzer and the Chrome export see exact
//     per-operator durations;
//   - simulated time: members advance the virtual clock through w.simClock
//     by their individually-priced cost, so nested events carry exact
//     virtual timestamps; the scheduler charges dispatch overhead once for
//     the whole supernode, which is precisely the saving being modeled.

// dispatchLabel names a dispatched task for trace output: supernodes are
// prefixed so a trace distinguishes the bracketing slice from the head
// member's own slice nested inside it.
func dispatchLabel(n *graph.Node) string {
	if n.FuseCluster != nil {
		return "fused:" + traceLabel(n)
	}
	return traceLabel(n)
}

// execFused runs cluster c of activation a to completion (or first error).
// The caller has reset the worker's charge accumulators; they accumulate
// across members so the simulated scheduler prices the whole supernode.
func (e *Engine) execFused(w *worker, a *activation, c *graph.Cluster) error {
	atomic.AddInt64(&e.stats.FusedNodes, int64(len(c.Nodes)))
	atomic.AddInt64(&e.stats.FusedDispatchesSaved, int64(len(c.Nodes)-1))
	// Batch the execution accounting: one OpsExecuted add and one
	// budget/cancellation check for the whole cluster, instead of one per
	// member. The budget may overshoot by at most the cluster size.
	ops := atomic.AddInt64(&e.stats.OpsExecuted, int64(len(c.Nodes)))
	if err := e.checkOps(a, ops); err != nil {
		return err
	}
	tmpl := a.tmpl
	sim := e.cfg.Mode == Simulated
	// Internal members skip their remaining-counter decrement in complete's
	// fast path; the batch settles here in one atomic. It must be applied
	// before the tail runs — the tail may recycle the activation in place
	// (tail call), and until then the tail's own pending entry keeps the
	// batched add from reaching zero. On a mid-chain error the members
	// completed so far settle before the error propagates, leaving the same
	// counter state an unfused failure would.
	last := len(c.Nodes) - 1
	if !sim && w.tr == nil && e.timing == nil {
		// Fast path: real mode with no observers. No clocks to read, no
		// events to record — just the straight-line member sequence.
		for i, id := range c.Nodes {
			if i == last {
				e.finishNodes(a, int32(last))
			}
			if err := e.execBody(w, a, tmpl.Nodes[id]); err != nil {
				if i < last {
					e.finishNodes(a, int32(i))
				}
				return err
			}
		}
		return nil
	}
	if w.tr != nil {
		w.tr.record(w.proc, TraceEvent{Type: TraceFused, Ts: w.tr.now(), Act: a.seq,
			Node: int32(c.Head), Name: traceLabel(tmpl.Nodes[c.Head]), Arg: int64(len(c.Nodes))})
	}
	var prof = e.cfg.profile()
	for i, id := range c.Nodes {
		if i == last {
			e.finishNodes(a, int32(last))
		}
		n := tmpl.Nodes[id]
		// Capture the activation identity before executing: the tail may
		// recycle the activation (and a pool reuse restamps seq). Members
		// before the tail cannot — their unexecuted successors keep
		// a.remaining positive.
		actSeq := a.seq
		var t0 time.Time
		var simStart int64
		if sim {
			simStart = *w.simClock
		} else if e.timing != nil || w.tr != nil {
			t0 = time.Now()
		}
		if w.tr != nil {
			ts := simStart
			if !sim {
				ts = int64(t0.Sub(w.base))
			}
			w.tr.record(w.proc, TraceEvent{Type: TraceNodeStart, Ts: ts,
				Act: actSeq, Node: int32(id), Name: traceLabel(n), Tmpl: tmpl.Name})
		}
		c0, l0, r0 := w.charge, w.localWords, w.remoteWords
		err := e.execBody(w, a, n)
		var memberEnd int64
		if sim {
			// Price this member from its charge deltas; per-member floors sum
			// to at most the supernode's total, so nested slices never
			// outgrow the bracketing one.
			cost := int64(float64(w.charge-c0)*prof.TickPerUnit) +
				int64(float64(w.localWords-l0)*prof.LocalTicksPerWord) +
				int64(float64(w.remoteWords-r0)*prof.RemoteTicksPerWord)
			if cost < 0 {
				cost = 0
			}
			memberEnd = simStart + cost
			*w.simClock = memberEnd
		}
		if w.tr != nil {
			ts := memberEnd
			if !sim {
				ts = int64(time.Since(w.base))
			}
			w.tr.record(w.proc, TraceEvent{Type: TraceNodeEnd, Ts: ts,
				Act: actSeq, Node: int32(id)})
		}
		if err != nil {
			if i < last {
				e.finishNodes(a, int32(i))
			}
			return err
		}
		if e.timing != nil && n.Kind == graph.OpNode {
			entry := TimingEntry{Name: n.Name, Template: tmpl.Name, Proc: w.proc, Fused: true,
				Stolen: w.taskStolen, Affinity: w.taskAff}
			if sim {
				entry.Start, entry.Ticks = simStart, memberEnd-simStart
			} else {
				entry.Start, entry.Ticks = int64(t0.Sub(w.base)), int64(time.Since(t0))
			}
			e.timing.addShard(w.proc, entry)
		}
	}
	return nil
}
