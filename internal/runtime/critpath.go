package runtime

import (
	"fmt"
	"sort"
	"strings"
)

// Critical-path analysis — the answer to "what bounds the makespan". The
// §5.2 node-timing listing shows *that* post_up is slow; this analysis
// replays the recorded node times over the data-dependency edges captured
// in the trace and reports the longest weighted chain, so the bottleneck
// falls out mechanically instead of by eyeballing the listing: an operator
// whose instances sit on the critical path with zero slack is what a
// coordination-level rebalance (like the paper's §5.2 post_up split) must
// attack.

// CritStep is one node execution on the critical path.
type CritStep struct {
	Name     string
	Template string
	Worker   int32
	Start    int64
	Dur      int64
}

// CritOp aggregates one operator's relation to the critical path.
type CritOp struct {
	Name string
	// Calls and Total cover every instance; OnPath counts only instances on
	// the critical path.
	Calls       int
	OnPathCalls int
	Total       int64
	OnPath      int64
	// Slack is the smallest scheduling slack over the operator's instances:
	// how far its slowest chain could slip without growing the makespan.
	// Zero means at least one instance is on the critical path.
	Slack int64
}

// CritPath is the result of Trace.CriticalPath.
type CritPath struct {
	// Unit names the time unit ("ticks" for Simulated, "ns" for Real).
	Unit string
	// PathTicks is the critical path's length; TotalTicks the summed
	// duration of every node execution. Total/Path is the run's average
	// available parallelism.
	PathTicks  int64
	TotalTicks int64
	// Steps is the critical path itself, in execution order.
	Steps []CritStep
	// Operators is every operator sorted by descending on-path time.
	Operators []CritOp
	// Dominant is the bottleneck operator when Balanced is false, otherwise
	// the operator with the largest on-path share; DominantShare is its
	// fraction of PathTicks. Balanced is false when a single operator both
	// dominates the path and runs serialized (see the thresholds below).
	Dominant      string
	DominantShare float64
	Balanced      bool
}

// An operator is declared the bottleneck when it holds at least
// dominanceThreshold of the critical path AND at least serialThreshold of
// its own total work sits on the path. The second test separates a
// structural bottleneck (the §5.2 unbalanced retina's post_up: 100% of its
// work serialized, one instance after another on the chain) from an
// operator that is merely the biggest job but runs wide in parallel (the
// balanced retina's convol_bite: half the path but only a quarter of its
// instances on it — adding processors helps it, splitting it does not).
const (
	dominanceThreshold = 0.40
	serialThreshold    = 0.75
)

// cpInst is one node execution during analysis.
type cpInst struct {
	name   string
	tmpl   string
	worker int32
	start  int64
	dur    int64

	preds    []*cpInst
	succs    []*cpInst
	indegree int

	ef       int64 // earliest finish: dur + max over preds
	lf       int64 // latest finish without growing the makespan
	bestPred *cpInst
}

// CriticalPath analyzes the recorded trace. Returns nil when the trace
// holds no completed node executions.
func (t *Trace) CriticalPath() *CritPath {
	// Reconstruct instances and dependency edges. Within one buffer events
	// are in recording order, so a TraceDeliver is always bracketed by its
	// producing node's start/end pair on the same track.
	insts := make(map[instKey]*cpInst)
	var order []*cpInst // discovery order, for deterministic iteration
	type edge struct {
		from *cpInst
		to   instKey
	}
	var edges []edge
	for _, buf := range t.Events {
		var open *cpInst
		var openKey instKey
		for i := range buf {
			ev := &buf[i]
			switch ev.Type {
			case TraceNodeStart:
				open = &cpInst{name: ev.Name, tmpl: ev.Tmpl, worker: ev.Worker, start: ev.Ts}
				openKey = instKey{ev.Act, ev.Node}
			case TraceNodeEnd:
				if open == nil || openKey != (instKey{ev.Act, ev.Node}) {
					open = nil
					continue
				}
				open.dur = ev.Ts - open.start
				if open.dur < 0 {
					open.dur = 0
				}
				insts[openKey] = open
				order = append(order, open)
				open = nil
			case TraceDeliver:
				// open == nil means the delivery came from seeding (or an
				// unfinished producer): the consumer is a root.
				if open != nil {
					edges = append(edges, edge{from: open, to: instKey{ev.Act, ev.Node}})
				}
			}
		}
	}
	if len(order) == 0 {
		return nil
	}
	for _, e := range edges {
		to, ok := insts[e.to]
		if !ok || to == e.from {
			continue // consumer never executed (run ended first)
		}
		e.from.succs = append(e.from.succs, to)
		to.preds = append(to.preds, e.from)
		to.indegree++
	}

	// Forward pass in topological order (deliveries happen before the
	// consumer starts, so the edge set is acyclic).
	queue := make([]*cpInst, 0, len(order))
	for _, in := range order {
		if in.indegree == 0 {
			queue = append(queue, in)
		}
	}
	var total int64
	topo := make([]*cpInst, 0, len(order))
	var end *cpInst
	for len(queue) > 0 {
		in := queue[0]
		queue = queue[1:]
		topo = append(topo, in)
		in.ef += in.dur
		total += in.dur
		if end == nil || in.ef > end.ef {
			end = in
		}
		for _, s := range in.succs {
			if in.ef > s.ef {
				s.ef = in.ef
				s.bestPred = in
			}
			if s.indegree--; s.indegree == 0 {
				queue = append(queue, s)
			}
		}
	}
	// A cycle would mean corrupted reconstruction; degrade to the processed
	// subset rather than looping forever.
	if end == nil {
		return nil
	}

	// Backward pass for slack, in reverse topological order: latest finish =
	// min over successors of their latest start; sinks finish at the
	// makespan.
	pathLen := end.ef
	for i := len(topo) - 1; i >= 0; i-- {
		in := topo[i]
		in.lf = pathLen
		for _, s := range in.succs {
			if ls := s.lf - s.dur; ls < in.lf {
				in.lf = ls
			}
		}
	}

	// Walk the chain back from the endpoint.
	var steps []CritStep
	onPath := make(map[*cpInst]bool)
	for in := end; in != nil; in = in.bestPred {
		onPath[in] = true
		steps = append(steps, CritStep{Name: in.name, Template: in.tmpl,
			Worker: in.worker, Start: in.start, Dur: in.dur})
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}

	// Per-operator aggregation.
	agg := make(map[string]*CritOp)
	var names []string
	for _, in := range order {
		op := agg[in.name]
		if op == nil {
			op = &CritOp{Name: in.name, Slack: in.lf - in.ef}
			agg[in.name] = op
			names = append(names, in.name)
		}
		op.Calls++
		op.Total += in.dur
		if slack := in.lf - in.ef; slack < op.Slack {
			op.Slack = slack
		}
		if onPath[in] {
			op.OnPathCalls++
			op.OnPath += in.dur
		}
	}
	ops := make([]CritOp, 0, len(names))
	for _, n := range names {
		ops = append(ops, *agg[n])
	}
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].OnPath != ops[j].OnPath {
			return ops[i].OnPath > ops[j].OnPath
		}
		if ops[i].Total != ops[j].Total {
			return ops[i].Total > ops[j].Total
		}
		return ops[i].Name < ops[j].Name
	})

	cp := &CritPath{
		Unit:       "ns",
		PathTicks:  pathLen,
		TotalTicks: total,
		Steps:      steps,
		Operators:  ops,
	}
	if t.Mode == Simulated {
		cp.Unit = "ticks"
	}
	cp.Balanced = true
	if len(ops) > 0 && pathLen > 0 {
		cp.Dominant = ops[0].Name
		cp.DominantShare = float64(ops[0].OnPath) / float64(pathLen)
		// Scan the on-path ranking (descending) for a serialized dominator.
		for _, op := range ops {
			share := float64(op.OnPath) / float64(pathLen)
			if share < dominanceThreshold {
				break
			}
			if op.Total > 0 && float64(op.OnPath)/float64(op.Total) >= serialThreshold {
				cp.Balanced = false
				cp.Dominant = op.Name
				cp.DominantShare = share
				break
			}
		}
	}
	return cp
}

// Serialization is the fraction of the operator's total work that sits on
// the critical path: 1.0 means every instance is chained end to end; 1/k
// means it effectively runs k-wide.
func (op *CritOp) Serialization() float64 {
	if op.Total == 0 {
		return 0
	}
	return float64(op.OnPath) / float64(op.Total)
}

// Parallelism returns the run's average available parallelism
// (total work / critical path) — the speedup ceiling no processor count can
// beat (Brent's bound).
func (c *CritPath) Parallelism() float64 {
	if c.PathTicks == 0 {
		return 0
	}
	return float64(c.TotalTicks) / float64(c.PathTicks)
}

// Verdict is the one-line imbalance diagnosis.
func (c *CritPath) Verdict() string {
	if c.Balanced {
		width := 0.0
		for _, op := range c.Operators {
			if op.Name == c.Dominant && op.OnPath > 0 {
				width = float64(op.Total) / float64(op.OnPath)
			}
		}
		return fmt.Sprintf("balanced — no serialized operator dominates the critical path (top on-path: %s at %.0f%%, running %.1fx wide)",
			c.Dominant, c.DominantShare*100, width)
	}
	return fmt.Sprintf("imbalanced — %s is %.0f%% of the critical path and serialized; splitting it is what buys speedup",
		c.Dominant, c.DominantShare*100)
}

// Report renders the analysis: path length, parallelism ceiling, the
// top operators by on-path time, and the verdict.
func (c *CritPath) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d %s over %d steps (total work %d %s, avg parallelism %.2fx)\n",
		c.PathTicks, c.Unit, len(c.Steps), c.TotalTicks, c.Unit, c.Parallelism())
	fmt.Fprintf(&b, "%-20s %10s %8s %8s %12s %12s %12s\n",
		"operator", "on-path", "serial", "calls", "path "+c.Unit, "total "+c.Unit, "slack "+c.Unit)
	shown := 0
	for _, op := range c.Operators {
		if op.OnPath == 0 && shown >= 3 {
			continue // off-path plumbing: keep the table short
		}
		fmt.Fprintf(&b, "%-20s %9.1f%% %7.0f%% %8d %12d %12d %12d\n",
			op.Name, 100*float64(op.OnPath)/float64(c.PathTicks), 100*op.Serialization(),
			op.Calls, op.OnPath, op.Total, op.Slack)
		shown++
		if shown >= 10 {
			break
		}
	}
	fmt.Fprintf(&b, "verdict: %s\n", c.Verdict())
	return b.String()
}
