package runtime

import (
	"fmt"
	"testing"

	"repro/internal/operator"
	"repro/internal/value"
)

func TestTransferRefsPassThrough(t *testing.T) {
	var st value.BlockStats
	b := value.NewBlockStats(value.FloatVec{1}, &st)
	// Operator returned its input unchanged: the reference transfers.
	transferRefs([]value.Value{b}, b, &st)
	if b.Refs() != 1 {
		t.Errorf("Refs = %d, want 1 (transferred)", b.Refs())
	}
}

func TestTransferRefsConsumed(t *testing.T) {
	var st value.BlockStats
	b := value.NewBlockStats(value.FloatVec{1}, &st)
	// Operator consumed the block and returned an atom.
	transferRefs([]value.Value{b, value.Int(3)}, value.Int(7), &st)
	if b.Refs() != 0 {
		t.Errorf("Refs = %d, want 0 (released)", b.Refs())
	}
	if st.Freed != 1 {
		t.Errorf("Freed = %d, want 1", st.Freed)
	}
}

func TestTransferRefsNewBlock(t *testing.T) {
	var st value.BlockStats
	in := value.NewBlockStats(value.FloatVec{1}, &st)
	out := value.NewBlockStats(value.FloatVec{2}, &st)
	// Operator consumed in and produced a fresh block: in released, out
	// keeps its NewBlock reference.
	transferRefs([]value.Value{in}, out, &st)
	if in.Refs() != 0 || out.Refs() != 1 {
		t.Errorf("refs = %d, %d; want 0, 1", in.Refs(), out.Refs())
	}
}

func TestTransferRefsDuplicatedInResult(t *testing.T) {
	var st value.BlockStats
	b := value.NewBlockStats(value.FloatVec{1}, &st)
	// Operator returned the same input block twice: one transfer plus one
	// fresh reference.
	transferRefs([]value.Value{b}, value.Tuple{b, b}, &st)
	if b.Refs() != 2 {
		t.Errorf("Refs = %d, want 2", b.Refs())
	}
}

func TestTransferRefsNewBlockDuplicated(t *testing.T) {
	var st value.BlockStats
	out := value.NewBlockStats(value.FloatVec{1}, &st)
	// A fresh block appearing twice in the result needs one extra ref
	// beyond NewBlock's initial one.
	transferRefs(nil, value.Tuple{out, out}, &st)
	if out.Refs() != 2 {
		t.Errorf("Refs = %d, want 2", out.Refs())
	}
}

func TestTransferRefsFanInSameBlock(t *testing.T) {
	var st value.BlockStats
	b := value.NewBlockStats(value.FloatVec{1}, &st)
	b.Retain(&st) // block delivered on two input ports: two references
	// Result keeps one occurrence: one ref transfers, one releases.
	transferRefs([]value.Value{b, b}, b, &st)
	if b.Refs() != 1 {
		t.Errorf("Refs = %d, want 1", b.Refs())
	}
}

// leakCheck runs a program and verifies that every allocated block was
// released except those still reachable from the result value.
func leakCheck(t *testing.T, src string, reg *operator.Registry, cfg Config, args ...value.Value) {
	t.Helper()
	g := compile(t, src, reg)
	e := New(g, cfg)
	v, err := e.Run(args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	live := int64(len(value.Blocks(v, nil)))
	st := &e.Stats().Blocks
	if st.Allocated-st.Freed != live {
		t.Errorf("block leak: allocated %d, freed %d, reachable from result %d",
			st.Allocated, st.Freed, live)
	}
	// Every reachable block must hold at least one reference.
	for _, b := range value.Blocks(v, nil) {
		if b.Refs() < 1 {
			t.Errorf("result block over-released: %v", b)
		}
	}
}

// blockOps is a registry with operators that create, transform, consume,
// and duplicate blocks in various shapes, for leak testing.
func blockOps() *operator.Registry {
	r := operator.NewRegistry(operator.Builtins())
	r.MustRegister(&operator.Operator{
		Name: "mkblock", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			n := int(args[0].(value.Int))
			return value.NewBlockStats(make(value.FloatVec, n), ctx.BlockStats()), nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "blocksum", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			b, ok := args[0].(*value.Block)
			if !ok {
				return nil, fmt.Errorf("blocksum: want block")
			}
			var s float64
			for _, x := range b.Data().(value.FloatVec) {
				s += x
			}
			ctx.Charge(int64(b.Size()))
			return value.Float(s), nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "fill", Arity: 2, Destructive: []bool{true, false},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			b := args[0].(*value.Block)
			x := float64(args[1].(value.Int))
			vec := b.Data().(value.FloatVec)
			for i := range vec {
				vec[i] = x
			}
			ctx.Charge(int64(len(vec)))
			return args[0], nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "dup", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			return value.Tuple{args[0], args[0]}, nil
		},
	})
	return r
}

func TestNoLeakSimpleConsume(t *testing.T) {
	leakCheck(t, "main() blocksum(fill(mkblock(64), 3))", blockOps(),
		Config{Mode: Real, Workers: 2, MaxOps: 100000})
}

func TestNoLeakFanOut(t *testing.T) {
	// A block used by several readers; none destructive.
	src := `
main()
  let b = mkblock(32)
      f = fill(b, 2)
      s1 = blocksum(f)
      s2 = blocksum(f)
  in add(s1, s2)
`
	// f fans out to two consumers; blocksum reads without consuming
	// ownership of... blocksum does consume its reference (block not in
	// result). Both paths release.
	leakCheck(t, src, blockOps(), Config{Mode: Real, Workers: 4, MaxOps: 100000})
}

func TestCopyOnWriteWhenShared(t *testing.T) {
	// Two destructive writers race for the same block: exactly one copy.
	src := `
main()
  let b = mkblock(16)
      w1 = fill(b, 1)
      w2 = fill(b, 2)
  in add(blocksum(w1), blocksum(w2))
`
	g := compile(t, src, blockOps())
	e := New(g, Config{Mode: Real, Workers: 4, MaxOps: 100000})
	v, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Determinism despite the shared writer: 16*1 + 16*2.
	if v != value.Float(48) {
		t.Errorf("result = %v, want 48", v)
	}
	if copies := e.Stats().Blocks.Copies; copies != 1 {
		t.Errorf("Copies = %d, want exactly 1", copies)
	}
}

func TestCopyOnWriteDeterministicAcrossRuns(t *testing.T) {
	src := `
main()
  let b = mkblock(8)
      w1 = fill(b, 5)
      w2 = fill(b, 9)
  in sub(blocksum(w1), blocksum(w2))
`
	g := compile(t, src, blockOps())
	var want value.Value
	for trial := 0; trial < 20; trial++ {
		e := New(g, Config{Mode: Real, Workers: 4, MaxOps: 100000})
		v, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = v
		} else if !value.Equal(v, want) {
			t.Fatalf("trial %d: %v != %v (nondeterministic despite CoW)", trial, v, want)
		}
	}
	if want != value.Float(8*5-8*9) {
		t.Errorf("result = %v, want %v", want, 8*5-8*9)
	}
}

func TestNoLeakTupleSpread(t *testing.T) {
	reg := blockOps()
	reg.MustRegister(&operator.Operator{
		Name: "pairblocks", Arity: 0,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			return value.Tuple{
				value.NewBlockStats(value.FloatVec{1, 2}, ctx.BlockStats()),
				value.NewBlockStats(value.FloatVec{3}, ctx.BlockStats()),
				value.NewBlockStats(value.FloatVec{4, 5, 6}, ctx.BlockStats()),
			}, nil
		},
	})
	// Only two of three elements are decomposed: the spread designee must
	// release the third.
	src := `
main()
  let <a, b> = pairblocks()
  in add(blocksum(a), blocksum(b))
`
	leakCheck(t, src, reg, Config{Mode: Real, Workers: 2, MaxOps: 100000})
}

func TestSpreadKeepsPiecesExclusive(t *testing.T) {
	reg := blockOps()
	reg.MustRegister(&operator.Operator{
		Name: "fourblocks", Arity: 0,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			out := make(value.Tuple, 4)
			for i := range out {
				out[i] = value.NewBlockStats(make(value.FloatVec, 8), ctx.BlockStats())
			}
			return out, nil
		},
	})
	src := `
main()
  let <a, b, c, d> = fourblocks()
      ra = fill(a, 1)
      rb = fill(b, 2)
      rc = fill(c, 3)
      rd = fill(d, 4)
  in add(add(blocksum(ra), blocksum(rb)), add(blocksum(rc), blocksum(rd)))
`
	for trial := 0; trial < 10; trial++ {
		g := compile(t, src, reg)
		e := New(g, Config{Mode: Real, Workers: 4, MaxOps: 100000})
		v, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if v != value.Float(8*1+8*2+8*3+8*4) {
			t.Fatalf("result = %v", v)
		}
		if copies := e.Stats().Blocks.Copies; copies != 0 {
			t.Fatalf("trial %d: %d copies; decomposition pieces must stay exclusive", trial, copies)
		}
	}
}

func TestNoLeakThroughClosures(t *testing.T) {
	src := `
main()
  let b = mkblock(16)
      f = fill(b, 1)
      use(x) blocksum(x)
  in use(f)
`
	leakCheck(t, src, blockOps(), Config{Mode: Real, Workers: 2, MaxOps: 100000})
}

func TestNoLeakInLoops(t *testing.T) {
	// A block is rebuilt every loop iteration; all intermediates freed.
	src := `
main(n)
  iterate
  {
    i = 0, incr(i)
    total = 0.0, add(total, blocksum(fill(mkblock(8), i)))
  } while lt(i, n),
  result total
`
	leakCheck(t, src, blockOps(), Config{Mode: Real, Workers: 2, MaxOps: 1000000}, value.Int(50))
}

func TestNoLeakConditionalArms(t *testing.T) {
	// Blocks flow into a conditional; only one arm consumes them, but the
	// untaken arm's inputs must still be released.
	src := `
main(flag)
  let b = fill(mkblock(4), 7)
  in if flag then blocksum(b) else 0.0
`
	leakCheck(t, src, blockOps(), Config{Mode: Real, Workers: 2, MaxOps: 100000}, value.Bool(true))
	leakCheck(t, src, blockOps(), Config{Mode: Real, Workers: 2, MaxOps: 100000}, value.Bool(false))
}

func TestResultBlockSurvives(t *testing.T) {
	src := "main() fill(mkblock(4), 2)"
	g := compile(t, src, blockOps())
	e := New(g, Config{Mode: Real, Workers: 1})
	v, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, ok := v.(*value.Block)
	if !ok {
		t.Fatalf("result = %v", v)
	}
	if b.Refs() != 1 {
		t.Errorf("result block Refs = %d, want 1 (owned by caller)", b.Refs())
	}
	if b.Data().(value.FloatVec)[0] != 2 {
		t.Error("result payload wrong")
	}
}
