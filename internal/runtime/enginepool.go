package runtime

import "sync"

// EnginePool keeps a bounded free list of reusable engines for one compiled
// program. Get hands out a warmed engine when one is idle (LIFO, so the
// most recently used — and most cache-warm — engine goes first) and falls
// back to constructing a fresh one; Put Resets the engine and returns it to
// the pool, dropping it instead when the pool is full or the Reset fails
// (an engine still mid-run must never be reissued). The server builds one
// pool per registered program so concurrent requests reuse warmed block
// free lists and activation pools instead of reallocating per run.
type EnginePool struct {
	mu   sync.Mutex
	idle []*Engine

	maxIdle   int
	newEngine func() *Engine

	created int64
	reused  int64
}

// NewEnginePool returns a pool that retains at most maxIdle idle engines
// (maxIdle <= 0 keeps one) and constructs new ones with newEngine. The
// constructor must return a distinct engine per call: engines share the
// immutable compiled program, never mutable per-run state — in particular a
// stateful FaultPlan must be created per engine, not shared.
func NewEnginePool(maxIdle int, newEngine func() *Engine) *EnginePool {
	if maxIdle <= 0 {
		maxIdle = 1
	}
	return &EnginePool{maxIdle: maxIdle, newEngine: newEngine}
}

// Get returns an idle engine, constructing one when none is pooled.
func (p *EnginePool) Get() *Engine {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		e := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.reused++
		p.mu.Unlock()
		return e
	}
	p.created++
	p.mu.Unlock()
	return p.newEngine()
}

// Put Resets e and returns it to the pool. An engine that fails to Reset
// (still running) or overflows maxIdle is dropped; pooling is an
// optimization, never an obligation.
func (p *EnginePool) Put(e *Engine) {
	if e == nil || e.Reset() != nil {
		return
	}
	p.mu.Lock()
	if len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, e)
	}
	p.mu.Unlock()
}

// Counters reports how many Gets constructed a fresh engine and how many
// reused a pooled one, plus the current idle count. The server's /metrics
// endpoint exports all three.
func (p *EnginePool) Counters() (created, reused, idle int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created, p.reused, int64(len(p.idle))
}
