package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// This file defines the structured failure surface of the runtime. The §8
// data-contention protocol makes execution deterministic, which in turn
// makes failures tractable: an operator that dies can be re-run from its
// inputs (see the retry logic in exec.go), and a run that cannot continue
// reports *where* in the tree of activations it stopped — the parallel
// analog of a stack trace — instead of a flat string.

// FailKind classifies why a run failed.
type FailKind int

// Failure kinds.
const (
	// FailError: an operator returned an error.
	FailError FailKind = iota
	// FailPanic: embedded Go code panicked; RunError.Stack holds the
	// captured goroutine stack.
	FailPanic
	// FailTimeout: an operator execution exceeded its Config.OpTimeout or
	// Operator.Timeout bound.
	FailTimeout
	// FailCanceled: the RunContext context was canceled or its deadline
	// passed.
	FailCanceled
	// FailDeadlock: quiescence without a result — the coordination graph
	// stopped with no runnable operators.
	FailDeadlock
	// FailBudget: the Config.MaxOps execution budget was exceeded.
	FailBudget
)

// String names the failure kind.
func (k FailKind) String() string {
	switch k {
	case FailError:
		return "error"
	case FailPanic:
		return "panic"
	case FailTimeout:
		return "timeout"
	case FailCanceled:
		return "canceled"
	case FailDeadlock:
		return "deadlock"
	case FailBudget:
		return "budget"
	default:
		return fmt.Sprintf("failkind(%d)", int(k))
	}
}

// RunError is the structured error a failed run returns. Every executor
// failure path produces one; unwrap it with errors.As to inspect the
// failure, or errors.Is against context.Canceled / context.DeadlineExceeded
// for cancellation.
type RunError struct {
	// Kind classifies the failure.
	Kind FailKind
	// Op names the failed node (operator or plumbing label); empty for
	// failures not tied to one node (cancellation, deadlock).
	Op string
	// Template names the coordination-graph template containing the node.
	Template string
	// Pos is the node's source position, when known.
	Pos string
	// Path is the activation path from the program's main function down to
	// the failing activation — the tree-of-activations analog of a stack
	// trace. Tail-call-delegated frames are elided, exactly as tail calls
	// are in a sequential stack.
	Path []string
	// Attempts is the number of execution attempts made (1 = no retry).
	Attempts int
	// Stack is the captured Go stack for FailPanic failures.
	Stack []byte
	// Err is the underlying cause.
	Err error
}

// Error renders the position, node, cause, attempt count, and activation
// path on one line. The panic stack is carried in Stack, not inlined.
func (e *RunError) Error() string {
	var b strings.Builder
	if e.Pos != "" {
		b.WriteString(e.Pos)
		b.WriteString(": ")
	}
	if e.Op != "" {
		b.WriteString(e.Op)
		b.WriteString(": ")
	}
	if e.Err != nil {
		b.WriteString(e.Err.Error())
	} else {
		b.WriteString("run failed")
	}
	if e.Attempts > 1 {
		fmt.Fprintf(&b, " (after %d attempts)", e.Attempts)
	}
	if len(e.Path) > 0 {
		fmt.Fprintf(&b, " [in %s]", strings.Join(e.Path, " -> "))
	}
	return b.String()
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *RunError) Unwrap() error { return e.Err }

// panicError wraps a recovered operator panic with the goroutine stack
// captured at the recovery site, so embedded-operator crashes are
// debuggable instead of collapsing to "%v".
type panicError struct {
	val   interface{}
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("operator panicked: %v", p.val) }

// opTimeoutError marks an operator execution cut off by a deadline.
type opTimeoutError struct {
	op    string
	limit time.Duration
}

func (t *opTimeoutError) Error() string {
	return fmt.Sprintf("operator %s timed out after %v", t.op, t.limit)
}

// errDeadlock is the single quiescence-without-result diagnostic shared by
// every detection site: the real executor's seed-time and worker-loop
// checks and the simulated executor's virtual-clock quiescence. path, when
// known, names the blocked activation chain.
func errDeadlock(path []string) *RunError {
	return &RunError{
		Kind: FailDeadlock,
		Path: path,
		Err:  errors.New("delirium: coordination graph deadlocked (no result and no runnable operators)"),
	}
}

// errBudget reports a Config.MaxOps overrun as a structured error.
func errBudget(max int64, path []string) *RunError {
	return &RunError{
		Kind: FailBudget,
		Path: path,
		Err:  fmt.Errorf("delirium: operation budget of %d executions exceeded", max),
	}
}

// retryable reports whether a failed attempt may be re-executed: operator
// errors, panics, injected faults, and timeouts retry; cancellation never
// does — the caller asked the run to stop.
func retryable(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// activationPath walks the continuation chain from a up to the root and
// returns the template names outermost-first. The chain only traverses
// live activations (a parent cannot retire before its expansion node
// receives the child's result), so the walk is safe on failure paths; the
// seen set guards against a recycled frame closing a cycle.
func activationPath(a *activation) []string {
	if a == nil {
		return nil
	}
	seen := make(map[*activation]bool)
	var rev []string
	for cur := a; cur != nil && !seen[cur]; cur = cur.cont.act {
		seen[cur] = true
		rev = append(rev, cur.tmpl.Name)
	}
	path := make([]string, len(rev))
	for i, name := range rev {
		path[len(rev)-1-i] = name
	}
	return path
}
