package runtime

import (
	"context"
	"errors"
	"testing"

	"repro/internal/opt"
	"repro/internal/value"
)

// Engine reuse suite: a Reset engine must behave bit-identically to a fresh
// one — across worker counts, executor modes, and the memplan/fuse/retry/
// faults composition — while its warmed pools persist and its per-run block
// accounting stays balanced.

// reuseWorkers are the worker counts every reuse property is checked at.
var reuseWorkers = []int{1, 2, 8}

func TestReusedEngineMatchesFresh(t *testing.T) {
	const runs = 3
	for _, mode := range []Mode{Real, Simulated} {
		for _, workers := range reuseWorkers {
			// Fresh baseline: a new engine per run, fully planned and fused —
			// the maximal composition the reused engine must reproduce.
			g := compile(t, pooledLoop, planOps())
			opt.PlanMemory(g)
			opt.FuseGraph(g, nil)
			want, err := New(g, Config{Mode: mode, Workers: workers, MaxOps: 1_000_000}).Run(value.Int(50))
			if err != nil {
				t.Fatalf("mode %v workers %d: fresh run: %v", mode, workers, err)
			}

			e := New(g, Config{Mode: mode, Workers: workers, MaxOps: 1_000_000})
			var prevHits int64
			for run := 0; run < runs; run++ {
				if run > 0 {
					if err := e.Reset(); err != nil {
						t.Fatalf("mode %v workers %d run %d: Reset: %v", mode, workers, run, err)
					}
				}
				got, err := e.Run(value.Int(50))
				if err != nil {
					t.Fatalf("mode %v workers %d run %d: %v", mode, workers, run, err)
				}
				if got != want {
					t.Errorf("mode %v workers %d run %d: reused %v != fresh %v", mode, workers, run, got, want)
				}
				st := e.Stats()
				// The result is a scalar, so every block allocated this run
				// must have been freed this run — the per-run accounting must
				// balance even though the free lists carry payloads over.
				if st.Blocks.Allocated != st.Blocks.Freed {
					t.Errorf("mode %v workers %d run %d: allocated %d != freed %d",
						mode, workers, run, st.Blocks.Allocated, st.Blocks.Freed)
				}
				if st.PooledAllocs == 0 {
					t.Errorf("mode %v workers %d run %d: PooledAllocs = 0, want free-list hits", mode, workers, run)
				}
				if st.FusedNodes == 0 {
					t.Errorf("mode %v workers %d run %d: FusedNodes = 0, want fused dispatches", mode, workers, run)
				}
				// Cross-run pool persistence: the serial executor's run 2+
				// starts with a warm free list, so even the first allocation
				// hits — strictly more hits than the cold run 1.
				if workers == 1 && run > 0 && st.PooledAllocs <= prevHits {
					t.Errorf("mode %v workers %d run %d: PooledAllocs = %d, want > %d (warm pool)",
						mode, workers, run, st.PooledAllocs, prevHits)
				}
				if run == 0 {
					prevHits = st.PooledAllocs
				}
			}
			if e.Runs() != runs {
				t.Errorf("mode %v workers %d: Runs() = %d, want %d", mode, workers, e.Runs(), runs)
			}
		}
	}
}

// TestReusedEngineFaultRetry: a stateful fault plan must rewind on Reset, so
// every run of a reused engine sees the same fault schedule, retries it away
// identically, and balances its block accounting.
func TestReusedEngineFaultRetry(t *testing.T) {
	for _, mode := range []Mode{Real, Simulated} {
		for _, workers := range reuseWorkers {
			g := compile(t, contendedBlocks, planOps())
			opt.PlanMemory(g)
			e := New(g, Config{Mode: mode, Workers: workers, MaxOps: 100000,
				Retry:  RetryPolicy{MaxAttempts: 3},
				Faults: KillOnce(FaultError, "rfill"),
			})
			for run := 0; run < 3; run++ {
				if run > 0 {
					if err := e.Reset(); err != nil {
						t.Fatalf("mode %v workers %d run %d: Reset: %v", mode, workers, run, err)
					}
				}
				v, err := e.Run()
				if err != nil {
					t.Fatalf("mode %v workers %d run %d: %v", mode, workers, run, err)
				}
				if v != value.Float(48) {
					t.Errorf("mode %v workers %d run %d: result = %v, want 48", mode, workers, run, v)
				}
				st := e.Stats()
				// Without the plan rewind, run 2+ would inject nothing (the
				// cursor stays past the scheduled execution) and these
				// counters would read zero.
				if st.FaultsInjected == 0 {
					t.Errorf("mode %v workers %d run %d: FaultsInjected = 0, want the rewound fault to fire",
						mode, workers, run)
				}
				if st.Retries == 0 {
					t.Errorf("mode %v workers %d run %d: Retries = 0", mode, workers, run)
				}
				if st.Blocks.Allocated != st.Blocks.Freed {
					t.Errorf("mode %v workers %d run %d: allocated %d != freed %d",
						mode, workers, run, st.Blocks.Allocated, st.Blocks.Freed)
				}
			}
		}
	}
}

// TestResetLifecycle pins the state machine: Reset on a fresh engine is a
// no-op, a finished engine still reports ErrAlreadyRun until Reset, and a
// failed run resets the same way a successful one does.
func TestResetLifecycle(t *testing.T) {
	g := compile(t, "main(a, b) div(a, b)", nil)
	e := New(g, Config{Mode: Real, Workers: 2})

	if err := e.Reset(); err != nil {
		t.Fatalf("Reset on a fresh engine = %v, want nil", err)
	}
	if v, err := e.Run(value.Int(84), value.Int(2)); err != nil || v != value.Int(42) {
		t.Fatalf("first run = %v, %v", v, err)
	}
	if _, err := e.Run(value.Int(84), value.Int(2)); !errors.Is(err, ErrAlreadyRun) {
		t.Fatalf("unreset rerun err = %v, want ErrAlreadyRun", err)
	}
	if err := e.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}

	// A failed run consumes the engine the same way; Reset recovers it.
	if _, err := e.Run(value.Int(1), value.Int(0)); err == nil {
		t.Fatal("division by zero must fail")
	}
	if _, err := e.Run(value.Int(84), value.Int(2)); !errors.Is(err, ErrAlreadyRun) {
		t.Fatalf("rerun after failure err = %v, want ErrAlreadyRun", err)
	}
	if err := e.Reset(); err != nil {
		t.Fatalf("Reset after failure: %v", err)
	}
	if v, err := e.Run(value.Int(84), value.Int(2)); err != nil || v != value.Int(42) {
		t.Fatalf("run after failed-run Reset = %v, %v", v, err)
	}
	if e.Runs() != 3 {
		t.Errorf("Runs() = %d, want 3 (two successes and one failure)", e.Runs())
	}
}

// TestRunManyMatchesFresh: a RunMany batch over the persistent worker pool
// must produce, per invocation, exactly the value a fresh engine produces
// for the same arguments.
func TestRunManyMatchesFresh(t *testing.T) {
	g := compile(t, pooledLoop, planOps())
	opt.PlanMemory(g)
	args := []value.Value{value.Int(10), value.Int(25), value.Int(50), value.Int(25), value.Int(10)}
	for _, workers := range reuseWorkers {
		cfg := Config{Mode: Real, Workers: workers, MaxOps: 1_000_000}
		want := make([]value.Value, len(args))
		for i, a := range args {
			v, err := New(g, cfg).Run(a)
			if err != nil {
				t.Fatalf("workers %d: fresh run %d: %v", workers, i, err)
			}
			want[i] = v
		}
		batch := make([][]value.Value, len(args))
		for i, a := range args {
			batch[i] = []value.Value{a}
		}
		e := New(g, cfg)
		results, err := e.RunMany(context.Background(), batch)
		if err != nil {
			t.Fatalf("workers %d: RunMany: %v", workers, err)
		}
		if len(results) != len(args) {
			t.Fatalf("workers %d: %d results for %d invocations", workers, len(results), len(args))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Errorf("workers %d invocation %d: %v", workers, i, r.Err)
				continue
			}
			if r.Value != want[i] {
				t.Errorf("workers %d invocation %d: %v != fresh %v", workers, i, r.Value, want[i])
			}
		}
		if e.Runs() != int64(len(args)) {
			t.Errorf("workers %d: Runs() = %d, want %d", workers, e.Runs(), len(args))
		}
	}
}

// TestRunManyFailureIsolation: one failing invocation records its error in
// its own slot; the rest of the batch still runs and succeeds.
func TestRunManyFailureIsolation(t *testing.T) {
	g := compile(t, "main(a, b) div(a, b)", nil)
	for _, workers := range reuseWorkers {
		e := New(g, Config{Mode: Real, Workers: workers})
		results, err := e.RunMany(context.Background(), [][]value.Value{
			{value.Int(84), value.Int(2)},
			{value.Int(1), value.Int(0)}, // fails
			{value.Int(6), value.Int(3)},
		})
		if err != nil {
			t.Fatalf("workers %d: RunMany: %v", workers, err)
		}
		if results[0].Err != nil || results[0].Value != value.Int(42) {
			t.Errorf("workers %d: invocation 0 = %v, %v", workers, results[0].Value, results[0].Err)
		}
		var re *RunError
		if !errors.As(results[1].Err, &re) {
			t.Errorf("workers %d: invocation 1 err = %v, want *RunError", workers, results[1].Err)
		}
		if results[2].Err != nil || results[2].Value != value.Int(2) {
			t.Errorf("workers %d: invocation 2 = %v, %v", workers, results[2].Value, results[2].Err)
		}
	}
}

// TestRunManyCanceled: a dead context fails every remaining invocation with
// FailCanceled without consuming the engine, and a subsequent RunMany on the
// same engine works.
func TestRunManyCanceled(t *testing.T) {
	g := compile(t, "main(a, b) add(a, b)", nil)
	e := New(g, Config{Mode: Real, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := [][]value.Value{{value.Int(1), value.Int(2)}, {value.Int(3), value.Int(4)}}
	results, err := e.RunMany(ctx, batch)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	for i, r := range results {
		var re *RunError
		if !errors.As(r.Err, &re) || re.Kind != FailCanceled {
			t.Errorf("invocation %d err = %v, want RunError{FailCanceled}", i, r.Err)
		}
	}
	results, err = e.RunMany(context.Background(), batch)
	if err != nil {
		t.Fatalf("second RunMany: %v", err)
	}
	if results[0].Value != value.Int(3) || results[1].Value != value.Int(7) {
		t.Errorf("second batch = %v / %v", results[0], results[1])
	}
}

// TestRunManyFaultRetry drives the full composition through the persistent
// pool: every invocation of the batch sees the same rewound fault schedule
// and retries it away to the fault-free value.
func TestRunManyFaultRetry(t *testing.T) {
	g := compile(t, contendedBlocks, planOps())
	opt.PlanMemory(g)
	for _, workers := range reuseWorkers {
		e := New(g, Config{Mode: Real, Workers: workers, MaxOps: 100000,
			Retry:  RetryPolicy{MaxAttempts: 3},
			Faults: KillOnce(FaultError, "rfill"),
		})
		results, err := e.RunMany(context.Background(), [][]value.Value{nil, nil, nil})
		if err != nil {
			t.Fatalf("workers %d: RunMany: %v", workers, err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Errorf("workers %d invocation %d: %v", workers, i, r.Err)
				continue
			}
			if r.Value != value.Float(48) {
				t.Errorf("workers %d invocation %d: %v, want 48", workers, i, r.Value)
			}
		}
	}
}
