package runtime

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Chrome trace-event / Perfetto export. The format is the JSON object form
// ({"traceEvents":[...]}) understood by ui.perfetto.dev and chrome://tracing:
//
//   - one thread track per worker (plus a "seed" track for events recorded
//     outside the pool), named via thread_name metadata;
//   - every node execution is a complete ("X") slice built from its
//     start/end event pair;
//   - every data delivery becomes a flow arrow ("s" at the producer, "f"
//     binding to the consumer's slice) so Perfetto draws the coordination
//     graph's data dependencies across tracks;
//   - steals, injects, tail calls, activation alloc/reuse, and block copies
//     are instant ("i") events; park/unpark pairs render as "park" slices.
//
// Output is generated with a deterministic writer (no maps, no
// encoding/json field reordering), so two identical Simulated runs produce
// byte-identical files.

// Timestamps: the trace-event "ts" field is in microseconds. Simulated
// virtual ticks are written 1 tick = 1 µs so integer ticks stay exact;
// Real-mode nanoseconds are written as fractional microseconds.
func (t *Trace) exportTS(ts int64) string {
	if t.Mode == Simulated {
		return strconv.FormatInt(ts, 10)
	}
	return fmt.Sprintf("%d.%03d", ts/1000, ts%1000)
}

// trackName labels a worker id for track metadata.
func trackName(wid int32) string {
	if wid < 0 {
		return "seed"
	}
	return fmt.Sprintf("worker %d", wid)
}

// trackID maps a worker id to a stable numeric tid (seed track last).
func (t *Trace) trackID(wid int32) int {
	if wid < 0 {
		return t.Workers
	}
	return int(wid)
}

// instKey identifies one node execution instance.
type instKey struct {
	act  int64
	node int32
}

// WriteChrome writes the trace in Chrome trace-event JSON format.
func (t *Trace) WriteChrome(w io.Writer) error {
	ew := &eventWriter{w: w}
	ew.raw(`{"displayTimeUnit":"ms","traceEvents":[`)

	// Track metadata: processor tracks in id order, then the seed track.
	ew.meta("process_name", 0, `"args":{"name":"delirium"}`)
	for wid := 0; wid < t.Workers; wid++ {
		ew.meta("thread_name", wid, `"args":{"name":`+quote(trackName(int32(wid)))+`}`)
		ew.meta("thread_sort_index", wid, fmt.Sprintf(`"args":{"sort_index":%d}`, wid))
	}
	ew.meta("thread_name", t.Workers, `"args":{"name":"seed"}`)
	ew.meta("thread_sort_index", t.Workers, fmt.Sprintf(`"args":{"sort_index":%d}`, t.Workers))

	// Pass 1: find each instance's start, so flow arrows know where to land.
	starts := make(map[instKey]*TraceEvent)
	for _, buf := range t.Events {
		for i := range buf {
			if buf[i].Type == TraceNodeStart {
				ev := &buf[i]
				starts[instKey{ev.Act, ev.Node}] = ev
			}
		}
	}

	// Pass 2: emit. Buffers are walked in worker order; within a buffer
	// events are in recording order, so starts precede their ends and
	// deliveries sit inside their producing slice.
	flowID := 0
	for _, buf := range t.Events {
		var open []*TraceEvent // pending TraceNodeStarts on this track; a
		// fused supernode's bracketing slice nests its members' slices, so
		// pending starts form a stack (depth 1 for unfused programs).
		var parkTS int64 = -1 // pending TracePark timestamp
		for i := range buf {
			ev := &buf[i]
			tid := t.trackID(ev.Worker)
			switch ev.Type {
			case TraceNodeStart:
				open = append(open, ev)
			case TraceNodeEnd:
				top := len(open) - 1
				if top < 0 || open[top].Act != ev.Act || open[top].Node != ev.Node {
					open = open[:0] // unbalanced (aborted run); drop the slices
					continue
				}
				st := open[top]
				open = open[:top]
				ew.event(fmt.Sprintf(`"name":%s,"cat":"node","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d,"args":{"template":%s,"activation":%d,"node":%d}`,
					quote(st.Name), t.exportTS(st.Ts), t.durTS(st.Ts, ev.Ts), tid,
					quote(st.Tmpl), st.Act, st.Node))
			case TraceDeliver:
				// A flow arrow from inside the producing slice to the start
				// of the consuming slice. Deliveries whose consumer never
				// ran (program finished first) are dropped.
				dst, ok := starts[instKey{ev.Act, ev.Node}]
				if !ok {
					continue
				}
				flowID++
				ew.event(fmt.Sprintf(`"name":"dep","cat":"flow","ph":"s","id":%d,"ts":%s,"pid":0,"tid":%d`,
					flowID, t.exportTS(ev.Ts), tid))
				ew.event(fmt.Sprintf(`"name":"dep","cat":"flow","ph":"f","bp":"e","id":%d,"ts":%s,"pid":0,"tid":%d`,
					flowID, t.exportTS(dst.Ts), t.trackID(dst.Worker)))
			case TracePark:
				parkTS = ev.Ts
			case TraceUnpark:
				if parkTS >= 0 {
					ew.event(fmt.Sprintf(`"name":"park","cat":"sched","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d`,
						t.exportTS(parkTS), t.durTS(parkTS, ev.Ts), tid))
					parkTS = -1
				}
			case TraceSteal:
				ew.event(fmt.Sprintf(`"name":"steal from %d","cat":"sched","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d`,
					ev.Arg, t.exportTS(ev.Ts), tid))
			case TraceInject:
				ew.event(fmt.Sprintf(`"name":"inject %s","cat":"sched","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d`,
					escape(ev.Name), t.exportTS(ev.Ts), tid))
			case TraceTailCall:
				ew.event(fmt.Sprintf(`"name":"tail %s","cat":"act","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d`,
					escape(ev.Tmpl), t.exportTS(ev.Ts), tid))
			case TraceActAlloc, TraceActReuse:
				kind := "alloc"
				if ev.Type == TraceActReuse {
					kind = "reuse"
				}
				ew.event(fmt.Sprintf(`"name":"act %s %s","cat":"act","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d`,
					kind, escape(ev.Tmpl), t.exportTS(ev.Ts), tid))
			case TraceBlockCopy:
				ew.event(fmt.Sprintf(`"name":"copy %d words","cat":"mem","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d`,
					ev.Arg, t.exportTS(ev.Ts), tid))
			case TraceRetry:
				ew.event(fmt.Sprintf(`"name":"retry %s (attempt %d failed)","cat":"fault","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d`,
					escape(ev.Name), ev.Arg, t.exportTS(ev.Ts), tid))
			case TraceFault:
				ew.event(fmt.Sprintf(`"name":"fault %s exec %d","cat":"fault","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d`,
					escape(ev.Name), ev.Arg, t.exportTS(ev.Ts), tid))
			case TraceFused:
				ew.event(fmt.Sprintf(`"name":"fused x%d %s","cat":"node","ph":"i","s":"t","ts":%s,"pid":0,"tid":%d`,
					ev.Arg, escape(ev.Name), t.exportTS(ev.Ts), tid))
			}
		}
	}
	ew.raw("]}\n")
	return ew.err
}

// durTS formats end-start in the export time unit, clamped to a minimum of
// one nanosecond-scale sliver so zero-length slices stay visible.
func (t *Trace) durTS(start, end int64) string {
	d := end - start
	if d < 0 {
		d = 0
	}
	if t.Mode == Simulated {
		return strconv.FormatInt(d, 10)
	}
	if d == 0 {
		return "0.001"
	}
	return fmt.Sprintf("%d.%03d", d/1000, d%1000)
}

// eventWriter emits the comma-separated event list, remembering the first
// error so call sites stay linear.
type eventWriter struct {
	w     io.Writer
	err   error
	wrote bool
}

func (e *eventWriter) raw(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *eventWriter) event(body string) {
	if e.err != nil {
		return
	}
	sep := ",\n"
	if !e.wrote {
		sep = "\n"
		e.wrote = true
	}
	_, e.err = io.WriteString(e.w, sep+"{"+body+"}")
}

func (e *eventWriter) meta(name string, tid int, args string) {
	e.event(fmt.Sprintf(`"name":%s,"ph":"M","pid":0,"tid":%d,%s`, quote(name), tid, args))
}

// quote JSON-quotes a string.
func quote(s string) string { return strconv.Quote(s) }

// escape escapes a string for embedding inside an already-quoted JSON
// string literal.
func escape(s string) string {
	q := strconv.Quote(s)
	return strings.TrimSuffix(strings.TrimPrefix(q, `"`), `"`)
}
