package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the deterministic fault-injection harness — the standing
// test rig for every failure path. A FaultPlan arms faults of the form
// "fail the k-th execution of operator X with a panic / an error / a
// delay"; the engine consults the plan at each operator dispatch, so an
// armed fault fires before the operator body runs. That boundary is the
// one the §8 protocol makes recoverable: the operator has not yet touched
// its (snapshotted) inputs, so a retry re-executes it exactly, and a
// faulty run's output is bit-identical to a fault-free run.
//
// Execution counting is per operator name and atomic: in Real mode several
// nodes may race to increment the counter, but exactly one of them draws
// index k, so a plan entry fires exactly once regardless of schedule — the
// property the determinism-under-faults suite relies on under -race.

// FaultKind selects what an armed fault does.
type FaultKind int

// Fault kinds.
const (
	// FaultError fails the execution with an injected error.
	FaultError FaultKind = iota
	// FaultPanic panics inside the operator call, exercising the genuine
	// recover-and-capture path.
	FaultPanic
	// FaultDelay stalls the execution by Delay before running the operator
	// body — the trigger for exercising OpTimeout.
	FaultDelay
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultPanic:
		return "panic"
	case FaultDelay:
		return "delay"
	default:
		return fmt.Sprintf("faultkind(%d)", int(k))
	}
}

// Fault arms one failure: the Execution-th dispatch of operator Op (1-based,
// counted across the whole run including failed and retried executions)
// fires Kind.
type Fault struct {
	// Op is the operator name to target.
	Op string
	// Execution selects the k-th execution of Op (1-based; 0 means 1).
	Execution int64
	// Kind is what happens.
	Kind FaultKind
	// Delay is the stall duration for FaultDelay.
	Delay time.Duration
}

// fire applies the fault: it returns the injected error for FaultError,
// panics for FaultPanic, and sleeps then returns nil for FaultDelay (the
// caller proceeds to run the operator).
func (f *Fault) fire() error {
	switch f.Kind {
	case FaultPanic:
		panic(fmt.Sprintf("fault injected: %s execution %d", f.Op, f.Execution))
	case FaultDelay:
		time.Sleep(f.Delay)
		return nil
	default:
		return fmt.Errorf("fault injected: %s execution %d fails", f.Op, f.Execution)
	}
}

// opFaults is one operator's armed faults plus its execution counter.
type opFaults struct {
	count  atomic.Int64
	byExec map[int64]*Fault // immutable after plan construction
}

// FaultPlan is a deterministic schedule of injected failures, shared by
// both executors via Config.Faults. The plan is stateful (it counts
// executions), so use a fresh plan — or Reset — per run.
type FaultPlan struct {
	byOp map[string]*opFaults
	mu   sync.Mutex // guards construction-time mutation only
}

// NewFaultPlan builds a plan from the given faults. Arming two faults for
// the same (operator, execution) keeps the last one.
func NewFaultPlan(faults ...Fault) *FaultPlan {
	p := &FaultPlan{byOp: make(map[string]*opFaults)}
	for i := range faults {
		f := faults[i]
		if f.Execution <= 0 {
			f.Execution = 1
		}
		of := p.byOp[f.Op]
		if of == nil {
			of = &opFaults{byExec: make(map[int64]*Fault)}
			p.byOp[f.Op] = of
		}
		of.byExec[f.Execution] = &f
	}
	return p
}

// KillOnce returns a plan that fails the first execution of every named
// operator with kind — the "kill each operator exactly once" schedule the
// determinism suite runs.
func KillOnce(kind FaultKind, ops ...string) *FaultPlan {
	faults := make([]Fault, len(ops))
	for i, op := range ops {
		faults[i] = Fault{Op: op, Execution: 1, Kind: kind}
	}
	return NewFaultPlan(faults...)
}

// SeededFaultPlan derives a deterministic plan from seed: each named
// operator gets one fault at a pseudo-random execution index in
// [1, maxExec], alternating pseudo-randomly between error and panic
// faults. Identical (seed, ops, maxExec) always produce the identical
// plan; ops are considered in sorted order so map iteration cannot leak in.
func SeededFaultPlan(seed int64, ops []string, maxExec int64) *FaultPlan {
	if maxExec < 1 {
		maxExec = 1
	}
	sorted := append([]string(nil), ops...)
	sort.Strings(sorted)
	// xorshift64*: tiny, deterministic, and dependency-free.
	x := uint64(seed)*2685821657736338717 + 1442695040888963407
	next := func() uint64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return x * 2685821657736338717
	}
	faults := make([]Fault, 0, len(sorted))
	for _, op := range sorted {
		kind := FaultError
		if next()&1 == 1 {
			kind = FaultPanic
		}
		faults = append(faults, Fault{
			Op:        op,
			Execution: int64(next()%uint64(maxExec)) + 1,
			Kind:      kind,
		})
	}
	return NewFaultPlan(faults...)
}

// Reset rewinds every execution counter so the plan can drive another run.
func (p *FaultPlan) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, of := range p.byOp {
		of.count.Store(0)
	}
}

// Len reports the number of armed faults.
func (p *FaultPlan) Len() int {
	n := 0
	for _, of := range p.byOp {
		n += len(of.byExec)
	}
	return n
}

// next counts one execution of op and returns the fault armed for that
// index, or nil. Safe for concurrent use: the maps are immutable after
// construction and the counter is atomic.
func (p *FaultPlan) next(op string) *Fault {
	of := p.byOp[op]
	if of == nil {
		return nil
	}
	return of.byExec[of.count.Add(1)]
}
