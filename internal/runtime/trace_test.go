package runtime

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/value"
)

// traceFib is a recursive program with real parallelism — enough fan-out to
// exercise stealing and activation traffic on the real executor.
const traceFib = `
fib(n) if lt(n, 2) then n else add(fib(sub(n, 1)), fib(sub(n, 2)))
main(n) fib(n)
`

// traceChain is a fully serial dependency chain: every incr waits on the
// recursive result below it, so the critical path is essentially the whole
// program.
const traceChain = `
count(n) if lt(n, 1) then 0 else incr(count(sub(n, 1)))
main(n) count(n)
`

// runTraced executes src with tracing on and returns the engine.
func runTraced(t *testing.T, src string, cfg Config, args ...value.Value) *Engine {
	t.Helper()
	cfg.Trace = true
	g := compile(t, src, nil)
	e := New(g, cfg)
	if _, err := e.Run(args...); err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

// chromeDoc is the subset of the trace-event JSON the tests inspect.
type chromeDoc struct {
	DisplayTimeUnit string                   `json:"displayTimeUnit"`
	TraceEvents     []map[string]interface{} `json:"traceEvents"`
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := compile(t, "main() add(1, 2)", nil)
	e := New(g, Config{Mode: Simulated, Workers: 2})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Trace() != nil {
		t.Error("Trace() must be nil when Config.Trace is unset")
	}
}

// TestTraceSimDeterministic is the reproducibility acceptance criterion: two
// identical Simulated runs must export byte-identical Chrome trace files.
func TestTraceSimDeterministic(t *testing.T) {
	cfg := Config{Mode: Simulated, Workers: 4, MaxOps: 2_000_000}
	var files [2]bytes.Buffer
	for i := range files {
		e := runTraced(t, traceFib, cfg, value.Int(10))
		if err := e.Trace().WriteChrome(&files[i]); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
	}
	if !bytes.Equal(files[0].Bytes(), files[1].Bytes()) {
		t.Error("two identical Simulated runs exported different trace files")
	}
}

// TestTraceChromeWellFormed checks the export is valid JSON with the shape
// Perfetto expects: metadata, balanced node slices, paired flow arrows.
func TestTraceChromeWellFormed(t *testing.T) {
	e := runTraced(t, traceFib, Config{Mode: Simulated, Workers: 4, MaxOps: 2_000_000}, value.Int(10))
	var buf bytes.Buffer
	if err := e.Trace().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var slices, flowStarts, flowEnds, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "node" {
				slices++
			}
		case "s":
			flowStarts++
		case "f":
			flowEnds++
		case "M":
			meta++
		}
	}
	if slices == 0 {
		t.Error("no node slices in export")
	}
	if flowStarts == 0 || flowStarts != flowEnds {
		t.Errorf("flow arrows unpaired: %d starts, %d ends", flowStarts, flowEnds)
	}
	// One process_name plus thread_name+thread_sort_index per track
	// (workers + seed).
	if want := 1 + 2*(4+1); meta != want {
		t.Errorf("metadata events = %d, want %d", meta, want)
	}
}

// TestTraceRealBalanced runs the real executor with 8 workers (under -race in
// CI) and checks the trace is well-formed: every buffer holds properly nested
// start/end pairs with nondecreasing timestamps, and the start/end totals
// match across the run.
func TestTraceRealBalanced(t *testing.T) {
	e := runTraced(t, traceFib, Config{Mode: Real, Workers: 8, MaxOps: 2_000_000}, value.Int(14))
	tr := e.Trace()
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	var starts, ends int
	for w, buf := range tr.Events {
		var open *TraceEvent
		var lastTS int64
		for i := range buf {
			ev := &buf[i]
			if ev.Ts < lastTS {
				t.Fatalf("buffer %d: timestamp went backwards at event %d", w, i)
			}
			lastTS = ev.Ts
			switch ev.Type {
			case TraceNodeStart:
				if open != nil {
					t.Fatalf("buffer %d: nested node start at event %d", w, i)
				}
				open = ev
				starts++
			case TraceNodeEnd:
				if open == nil || open.Act != ev.Act || open.Node != ev.Node {
					t.Fatalf("buffer %d: node end without matching start at event %d", w, i)
				}
				open = nil
				ends++
			}
		}
		if open != nil {
			t.Errorf("buffer %d: unclosed node slice", w)
		}
	}
	if starts == 0 || starts != ends {
		t.Errorf("start/end unbalanced: %d starts, %d ends", starts, ends)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("real-mode export is not valid JSON")
	}
}

// TestTraceEventKindsRecorded checks the scheduler- and activation-level
// events appear on a parallel real-mode run.
func TestTraceEventKindsRecorded(t *testing.T) {
	e := runTraced(t, traceFib, Config{Mode: Real, Workers: 4, MaxOps: 2_000_000}, value.Int(16))
	counts := make(map[TraceEventType]int)
	for _, buf := range e.Trace().Events {
		for i := range buf {
			counts[buf[i].Type]++
		}
	}
	for _, want := range []TraceEventType{TraceNodeStart, TraceNodeEnd, TraceDeliver, TraceInject, TraceActAlloc} {
		if counts[want] == 0 {
			t.Errorf("no %v events recorded", want)
		}
	}
	// fib's self-recursion goes through the activation pool and tail calls
	// once warmed up.
	if counts[TraceActReuse] == 0 {
		t.Error("no act-reuse events on a deeply recursive run")
	}
}

// TestCriticalPathChain checks the analyzer on a program whose dependency
// structure is known exactly: a serial chain has no available parallelism, so
// the critical path must cover essentially all recorded work.
func TestCriticalPathChain(t *testing.T) {
	e := runTraced(t, traceChain, Config{Mode: Simulated, Workers: 4, MaxOps: 2_000_000}, value.Int(40))
	cp := e.Trace().CriticalPath()
	if cp == nil {
		t.Fatal("nil critical path on a completed run")
	}
	if cp.Unit != "ticks" {
		t.Errorf("Unit = %q, want ticks", cp.Unit)
	}
	if cp.PathTicks <= 0 || cp.TotalTicks < cp.PathTicks {
		t.Fatalf("path %d, total %d: path must be positive and <= total", cp.PathTicks, cp.TotalTicks)
	}
	if p := cp.Parallelism(); p > 1.5 {
		t.Errorf("serial chain reports %.2fx parallelism", p)
	}
	if len(cp.Steps) < 40 {
		t.Errorf("critical path has %d steps; a 40-deep chain must be longer", len(cp.Steps))
	}
	// Steps are in execution order along dependencies.
	for i := 1; i < len(cp.Steps); i++ {
		if cp.Steps[i].Start < cp.Steps[i-1].Start {
			t.Fatalf("step %d starts before its predecessor", i)
		}
	}
	if cp.Report() == "" || cp.Verdict() == "" {
		t.Error("empty report")
	}
}

// TestCriticalPathSlack checks that on-path operators report zero slack and
// that slack never goes negative.
func TestCriticalPathSlack(t *testing.T) {
	e := runTraced(t, traceFib, Config{Mode: Simulated, Workers: 4, MaxOps: 2_000_000}, value.Int(10))
	cp := e.Trace().CriticalPath()
	if cp == nil {
		t.Fatal("nil critical path")
	}
	for _, op := range cp.Operators {
		if op.Slack < 0 {
			t.Errorf("%s: negative slack %d", op.Name, op.Slack)
		}
		if op.OnPathCalls > 0 && op.Slack != 0 {
			t.Errorf("%s: on the critical path but slack %d", op.Name, op.Slack)
		}
		if op.OnPath > op.Total {
			t.Errorf("%s: on-path %d exceeds total %d", op.Name, op.OnPath, op.Total)
		}
	}
}
