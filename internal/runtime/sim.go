package runtime

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/value"
)

// simItem is a runnable node with the virtual time it became ready.
type simItem struct {
	act   *activation
	node  *graph.Node
	ready int64
	seq   int64 // FIFO tie-break within a priority level
}

// simHeap orders items by (ready, seq).
type simHeap []simItem

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}
func (h simHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x interface{}) { *h = append(*h, x.(simItem)) }
func (h *simHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = simItem{}
	*h = old[:n-1]
	return it
}

// runSimulated executes the program deterministically on P virtual
// processors. Operators actually run (producing real values); their charged
// work units, the machine profile's dispatch overhead, and the modeled
// memory cost of their input blocks advance a virtual clock. The scheduler
// is a list scheduler honoring the three-level priority discipline: when a
// processor is free it takes the highest-priority item that is ready, with
// FIFO order inside a level.
//
// The §9.3 affinity policies act here: AffinityOperator prefers the
// processor that last ran the same operator, AffinityData the processor
// holding the largest share of the input blocks — each only when the
// preferred processor can start the item without delay.
func (e *Engine) runSimulated(args []value.Value) (value.Value, error) {
	prof := e.cfg.profile()
	nproc := e.cfg.workers()
	procFree := make([]int64, nproc)
	busy := make([]int64, nproc)
	lastProc := make(map[string]int) // operator name -> last processor

	var heaps [numPriorities]simHeap
	var seq int64
	var clock int64 // start time of the item being executed
	if e.tracer != nil {
		// Events recorded mid-execution (deliveries, copies) stamp the
		// executing node's virtual start time; everything is one goroutine,
		// so the trace is deterministic.
		e.tracer.now = func() int64 { return clock }
	}

	// The simulated executor is single-threaded: one worker (re-stamped with
	// the virtual processor per item) and therefore one plan state, keeping
	// pool reuse — and with it the trace — deterministic.
	w := &worker{e: e, proc: 0, tr: e.tracer, mem: e.memState(0), simClock: &clock}
	var buffered []simItem
	type delivery struct {
		act    *activation
		nodeID int
	}
	var deliveries []delivery
	w.sched = func(a *activation, n *graph.Node) {
		seq++
		buffered = append(buffered, simItem{act: a, node: n, seq: seq})
	}
	w.delivered = func(a *activation, nodeID int) {
		deliveries = append(deliveries, delivery{act: a, nodeID: nodeID})
	}
	// flush publishes the effects of the execution that finished at `at`:
	// every delivery stamps its consumer's earliest start, and every node
	// that became runnable enters the ready heap no earlier than the
	// latest delivery it received — a consumer must not start before a
	// slow producer has finished, even if that producer's value was
	// computed (popped) first.
	flush := func(at int64) {
		for _, d := range deliveries {
			if d.act.readyAt == nil {
				d.act.readyAt = make([]int64, len(d.act.tmpl.Nodes))
			}
			if at > d.act.readyAt[d.nodeID] {
				d.act.readyAt[d.nodeID] = at
			}
		}
		deliveries = deliveries[:0]
		for _, it := range buffered {
			it.ready = at
			if it.act.readyAt != nil && it.act.readyAt[it.node.ID] > it.ready {
				it.ready = it.act.readyAt[it.node.ID]
			}
			pri := e.classify(it.act, it.node)
			heap.Push(&heaps[pri], it)
		}
		buffered = buffered[:0]
	}

	root := e.acquire(0, e.prog.Main)
	e.rootAct = root
	e.stats.noteLive(1, int64(e.prog.Main.ActivationWords()))
	e.initActivation(w, root, args)
	flush(0)

	var makespan int64
	for {
		if e.stopped.Load() && e.runErr != nil {
			break
		}
		// Earliest moment any processor is free.
		tMin := procFree[0]
		for _, f := range procFree[1:] {
			if f < tMin {
				tMin = f
			}
		}
		// Earliest ready time across all levels.
		minReady := int64(math.MaxInt64)
		empty := true
		for pri := range heaps {
			if len(heaps[pri]) > 0 {
				empty = false
				if heaps[pri][0].ready < minReady {
					minReady = heaps[pri][0].ready
				}
			}
		}
		if empty {
			break
		}
		t := tMin
		if minReady > t {
			t = minReady // every processor idles until work becomes ready
		}
		// Highest-priority item ready at t.
		var item simItem
		found := false
		for pri := range heaps {
			if len(heaps[pri]) > 0 && heaps[pri][0].ready <= t {
				item = heap.Pop(&heaps[pri]).(simItem)
				found = true
				break
			}
		}
		if !found {
			e.fail(fmt.Errorf("delirium: internal: simulated scheduler stalled at t=%d", t))
			break
		}

		proc, affHit := e.placeSim(item, procFree, lastProc, t)
		start := procFree[proc]
		if item.ready > start {
			start = item.ready
		}
		clock = start
		w.proc = proc
		if e.affinity {
			// Record where this node runs BEFORE executing it: the last
			// node of an activation recycles it inside execNode, and a
			// post-exec write could poison the next activation's hints.
			a := item.act
			if a.execProc == nil {
				a.execProc = make([]int32, len(a.tmpl.Nodes))
			}
			a.execProc[item.node.ID] = int32(proc) + 1
			if c := item.node.FuseCluster; c != nil {
				// Every member runs straight-line on this processor.
				for _, id := range c.Nodes {
					a.execProc[id] = int32(proc) + 1
				}
			}
		}

		// Capture the activation identity before execNode: recycling (even a
		// same-template reuse inside this execNode) restamps seq.
		actSeq, nodeID := item.act.seq, int32(item.node.ID)
		if e.tracer != nil {
			e.tracer.record(proc, TraceEvent{Type: TraceNodeStart, Ts: start,
				Act: actSeq, Node: nodeID, Name: dispatchLabel(item.node), Tmpl: item.act.tmpl.Name})
		}
		if err := e.execNode(w, item.act, item.node); err != nil {
			e.failAt(item.act, err)
			break
		}
		// A fused dispatch advances clock past start as members execute
		// (w.simClock), so the total is anchored at start, not clock.
		dur := prof.DispatchTicks +
			int64(float64(w.charge)*prof.TickPerUnit) +
			int64(float64(w.localWords)*prof.LocalTicksPerWord) +
			int64(float64(w.remoteWords)*prof.RemoteTicksPerWord)
		if dur < 1 {
			dur = 1
		}
		end := start + dur
		procFree[proc] = end
		busy[proc] += dur
		e.stats.DispatchTicks += prof.DispatchTicks
		e.stats.MemoryTicks += int64(float64(w.localWords)*prof.LocalTicksPerWord) +
			int64(float64(w.remoteWords)*prof.RemoteTicksPerWord)
		if end > makespan {
			makespan = end
		}
		if e.tracer != nil {
			e.tracer.record(proc, TraceEvent{Type: TraceNodeEnd, Ts: end,
				Act: actSeq, Node: nodeID})
		}
		if item.node.Kind == graph.OpNode && item.node.FuseCluster == nil {
			lastProc[item.node.Name] = proc
			if e.timing != nil {
				e.timing.addShard(proc, TimingEntry{Name: item.node.Name, Template: item.act.tmpl.Name,
					Proc: proc, Start: start, Ticks: dur, Affinity: affHit})
			}
		}
		flush(end)
	}

	e.stats.MakespanTicks = makespan
	e.stats.ProcBusyTicks = busy
	for _, b := range busy {
		e.stats.BusyTicks += b
	}
	if !e.stopped.Load() {
		e.failAt(root, errDeadlock(activationPath(root)))
	}
	if e.runErr != nil {
		// Abandoned work lives in the ready heaps and the not-yet-flushed
		// buffer; both seed the teardown sweep.
		var pending []*task
		for pri := range heaps {
			for i := range heaps[pri] {
				pending = append(pending, &task{act: heaps[pri][i].act, node: heaps[pri][i].node})
			}
		}
		for i := range buffered {
			pending = append(pending, &task{act: buffered[i].act, node: buffered[i].node})
		}
		e.cleanupAfterError(pending)
	}
	return e.takeResult()
}

// placeSim chooses the processor for an item under the compile-time
// affinity plan (when active) or the configured §9.3 policy. Every
// preference is overridden when the preferred processor would delay the
// start (§9.3: "this preference is overridden if the desired processor is
// busy"). The second result reports a plan-hint hit, for the timing log.
func (e *Engine) placeSim(item simItem, procFree []int64, lastProc map[string]int, t int64) (int, bool) {
	earliest := 0
	for p := 1; p < len(procFree); p++ {
		if procFree[p] < procFree[earliest] {
			earliest = p
		}
	}
	if e.affinity {
		// Compile-time hint: run on the processor that executed the
		// preferred producer, inheriting its blocks at local cost.
		if pid := item.node.AffPreferred; pid >= 0 && item.act.execProc != nil {
			if pref := int(item.act.execProc[pid]) - 1; pref >= 0 {
				if procFree[pref] <= t {
					e.stats.AffinityHits++
					return pref, true
				}
				e.stats.AffinityMisses++
			}
		}
	}
	if item.node.Kind != graph.OpNode {
		return earliest, false
	}
	switch e.cfg.Affinity {
	case AffinityOperator:
		if pref, ok := lastProc[item.node.Name]; ok && procFree[pref] <= t {
			return pref, false
		}
	case AffinityData:
		// Weigh candidate processors by resident input words.
		weight := make(map[int32]int64)
		for _, in := range item.act.inputs(item.node) {
			for _, b := range value.Blocks(in, nil) {
				if aff := b.Affinity(); aff != value.NoAffinity {
					weight[aff] += int64(b.Size())
				}
			}
		}
		best, bestW := -1, int64(0)
		for p, wgt := range weight {
			if int(p) < len(procFree) && (wgt > bestW || (wgt == bestW && best >= 0 && int(p) < best)) {
				best, bestW = int(p), wgt
			}
		}
		if best >= 0 && procFree[best] <= t {
			return best, false
		}
	}
	return earliest, false
}
