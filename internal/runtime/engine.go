// Package runtime executes coordination graphs — the paper's primary
// contribution (§7). The compiler converts functions into templates; the
// run-time system executes template activations, small data structures
// containing enough buffer space to evaluate the template once and a
// pointer back to the (immutable, shareable) template. During evaluation
// the state of the computation is a tree of activations — a parallel
// generalization of the sequential call stack.
//
// Two simple assumptions make operator scheduling cheap:
//
//  1. each operator executes only once, and
//  2. once data is present on an operator's input it stays until the
//     operator executes and is never present again.
//
// A ready queue with three priority levels (normal operators, then
// non-recursive subgraph expansions, then recursive expansions) keeps the
// number of live activations small by making activations available for
// reuse as early as possible. The real executor realizes those levels as a
// work-stealing scheduler: every worker owns one Chase-Lev deque per
// priority level (LIFO pop for cache locality, FIFO steal), a shared
// lock-free injector receives pushes from outside the pool, and idle
// workers spin briefly then park on a one-token parker woken by notifyOne
// — the priority order is honored per worker and per steal attempt, so the
// §7 scheme survives the decentralization (see stealqueue.go).
//
// Determinism is enforced through the data contention protocol of §8: all
// shared memory is passed explicitly between operators as reference-counted
// blocks, and an operator may destructively modify a block only when it
// holds the sole reference (the runtime copies otherwise).
//
// Two executors share this machinery: a real executor backed by a pool of
// worker goroutines, and a deterministic simulated executor with a virtual
// clock and per-processor timing driven by a machine profile.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/value"
)

// Mode selects an executor.
type Mode int

// Executor modes.
const (
	// Real executes on worker goroutines and measures wall-clock time.
	Real Mode = iota
	// Simulated executes deterministically on virtual processors with a
	// virtual clock driven by charged work units and the machine profile.
	Simulated
)

// AffinityPolicy selects the §9.3 locality extension used by the simulated
// scheduler.
type AffinityPolicy int

// Affinity policies.
const (
	// AffinityNone places every ready operator on the earliest-free
	// processor.
	AffinityNone AffinityPolicy = iota
	// AffinityOperator prefers the processor that last executed the same
	// operator, unless choosing it would delay the start.
	AffinityOperator
	// AffinityData prefers the processor whose cache holds the largest
	// share of the operator's input blocks.
	AffinityData
)

// String names the policy for experiment output.
func (a AffinityPolicy) String() string {
	switch a {
	case AffinityNone:
		return "none"
	case AffinityOperator:
		return "operator"
	case AffinityData:
		return "data"
	default:
		return fmt.Sprintf("affinity(%d)", int(a))
	}
}

// Config controls one execution.
type Config struct {
	// Workers is the number of processors (goroutines in Real mode,
	// virtual processors in Simulated mode). Zero selects the machine
	// profile's count, or 1.
	Workers int
	// Mode selects the executor.
	Mode Mode
	// Machine is the profile for Simulated mode; nil selects a Cray Y-MP.
	Machine *machine.Profile
	// Timing enables per-node timing collection (the environment's node
	// timing tool, §5.2).
	Timing bool
	// Trace enables structured execution tracing: typed events (node
	// start/end, steal, park, activation reuse, …) recorded into per-worker
	// buffers, exportable as Chrome trace-event JSON and analyzable for the
	// critical path (Engine.Trace). Disabled, it costs one nil check per
	// recording site.
	Trace bool
	// Affinity selects the simulated scheduler's placement policy.
	Affinity AffinityPolicy
	// AffinityHints activates the compile-time affinity plan's placement
	// hints (programs compiled with compile.Options.Affinity). In Real mode
	// the hints drive producer-preferred dispatch (the preferred consumer is
	// popped first on the completing worker) and batched, locality-ranked
	// stealing; in Simulated mode they drive hint-first placement (the
	// preferred producer's processor, when free). Hints are advisory-only —
	// they choose WHERE ready work runs, never whether or with what inputs —
	// so results are bit-identical with hints on or off, and unplanned
	// programs ignore the flag entirely (scheduling stays byte-identical).
	AffinityHints bool
	// DisablePriorities collapses the three-level ready queue into a single
	// level (a FIFO in Simulated mode, one deque per worker in Real mode) —
	// the ablation of §7's priority scheme.
	DisablePriorities bool
	// MaxOps aborts runs exceeding this many operator executions (a guard
	// against runaway recursion in tests); zero means no limit.
	MaxOps int64
	// OpTimeout bounds every operator execution (per attempt); zero means
	// unbounded. An individual Operator.Timeout overrides it. Timed-out
	// executions count as failed attempts and may retry under Retry.
	OpTimeout time.Duration
	// Retry re-runs failed executions of operators that declare
	// Operator.CanRetry. Destructively-declared arguments are snapshotted
	// before each retryable attempt, so retries see pristine inputs and the
	// run's output stays bit-identical to a fault-free run (§8 makes this
	// sound: an operator only ever mutates blocks it solely owns).
	Retry RetryPolicy
	// Faults arms a deterministic fault-injection plan (see faultinject.go);
	// nil injects nothing. Plans are stateful — use a fresh or Reset plan
	// per run.
	Faults *FaultPlan
	// PoolClassCaps overrides the per-worker block pools' free-list caps by
	// size class (see value.BlockPool.SetClassCaps); nil keeps the defaults.
	// The adaptive loop derives these from a calibration run's measured
	// recycle demand so hot classes keep more payloads warm and cold ones
	// pin less garbage. Caps only shape pool retention — never results.
	PoolClassCaps []int
}

// RetryPolicy controls deterministic operator retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions allowed per operator
	// node (1 or 0 means no retry).
	MaxAttempts int
	// Backoff is the delay between attempts (constant; deterministic
	// schedules need no jitter).
	Backoff time.Duration
}

// enabled reports whether the policy allows any retry at all.
func (r RetryPolicy) enabled() bool { return r.MaxAttempts > 1 }

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if c.Machine != nil {
		return c.Machine.Procs
	}
	return 1
}

func (c Config) profile() *machine.Profile {
	if c.Machine != nil {
		return c.Machine
	}
	return machine.CrayYMP()
}

// Priority levels of the ready queue, in decreasing order of priority (§7).
type Priority int

// Ready-queue priority levels.
const (
	// PriNormal: ordinary operators (and tuple/closure plumbing).
	PriNormal Priority = iota
	// PriCall: non-recursive subgraph expansions.
	PriCall
	// PriRecursive: recursive subgraph expansions, kept back so existing
	// activations drain (and recycle) before new recursion unfolds.
	PriRecursive
	numPriorities
)

// Engine run states. An engine is a reusable execution context: Run moves
// it idle -> running -> finished, and Reset moves finished back to idle
// without discarding the per-program immutable state or the warmed pools.
const (
	engIdle int32 = iota
	engRunning
	engFinished
)

// resultBox wraps the run result for atomic publication: atomic.Value
// requires a consistent concrete type across stores, and successive runs of
// a reused engine may produce results of different dynamic types.
type resultBox struct{ v value.Value }

// Engine executes one coordination-graph program. The engine's state splits
// two ways: per-program immutable state (the graph, the fuse and memory
// plans, the configuration) and per-run mutable state (activations in
// flight, statistics, the trace, fault cursors, the result). Reset clears
// only the latter, so a finished engine returns to runnable without
// reallocating workers, deques, activation pools, or block free lists —
// the repeated-run fast path RunMany builds on.
type Engine struct {
	prog *graph.Program
	cfg  Config

	stats  Stats
	timing *TimingLog
	tracer *tracer
	pools  sync.Map // *graph.Template -> *sync.Pool; persists across runs
	// simPools replaces the sync.Pools in Simulated mode. The simulated
	// executor is single-threaded, and sync.Pool may drop items under GC
	// pressure (and deliberately under the race detector), which would make
	// activation reuse — and with it the recorded trace — nondeterministic.
	// A plain per-template free list keeps the determinism contract exact.
	// Like the sync.Pools, the free lists persist across runs of a reused
	// engine.
	simPools map[*graph.Template][]*activation
	// state is the engine's run-lifecycle state (engIdle/engRunning/
	// engFinished); gen counts completed runs — the run-generation counter
	// that replaced the one-shot started flag.
	state   atomic.Int32
	gen     atomic.Int64
	stopped atomic.Bool
	// failMu guards the first-failure record below; the first failure wins
	// and later errors are dropped (sync.Once cannot be reused across runs,
	// a mutex plus a per-run flag can).
	failMu    sync.Mutex
	failedRun bool
	runErr    error
	// failedAct is the activation executing when the first error was
	// recorded (nil when the failure is not tied to one); rootAct is the
	// main activation. Both seed the error-path teardown sweep and are read
	// only after the run quiesces.
	failedAct *activation
	rootAct   *activation

	// memStates, present only for memory-planned programs, holds one
	// per-worker plan state per processor plus a final slot for the boot
	// worker (proc -1). Allocated up front in New so workers index it
	// without synchronization; merged into Stats by takeResult. The block
	// free lists inside persist across runs of a reused engine — warming
	// them is exactly what the repeated-run fast path amortizes.
	memStates []*memState

	result atomic.Value // resultBox

	maxOps int64

	// fused mirrors prog.Fused: the executors then dispatch cluster heads
	// as supernodes and order simultaneously-ready nodes by bottom level.
	fused bool

	// affinity is prog.AffinityPlanned && cfg.AffinityHints: the executors
	// then activate producer-preferred dispatch, batched locality-ranked
	// stealing (Real) and hint-first placement (Simulated). Purely advisory
	// — see Config.AffinityHints.
	affinity bool

	// sched is the real executor's work-stealing scheduler, created on the
	// first multi-worker run and reused (reopened) by every run after it so
	// a reused engine never reallocates deques or parkers.
	sched *stealScheduler
	// pool, when non-nil, is the persistent worker pool RunMany installs:
	// worker goroutines that survive across runs, parking between them,
	// instead of being respawned and joined per run.
	pool *runPool
	// outstanding counts scheduled-but-unfinished tasks of the current
	// Real-mode run; quiescence is outstanding returning to zero.
	outstanding atomic.Int64

	// runCtx/ctxDone carry the RunContext cancellation signal. ctxDone is
	// nil for context.Background, keeping the disabled-path cost of the
	// worker-loop poll to a single nil check.
	runCtx  context.Context
	ctxDone <-chan struct{}
}

// New prepares an engine for prog under cfg. The same program can be run by
// many engines; templates are immutable.
func New(prog *graph.Program, cfg Config) *Engine {
	e := &Engine{prog: prog, cfg: cfg, maxOps: cfg.MaxOps, fused: prog.Fused,
		affinity: prog.AffinityPlanned && cfg.AffinityHints}
	if cfg.Mode == Simulated {
		e.simPools = make(map[*graph.Template][]*activation)
	}
	if prog.MemPlanned {
		e.memStates = make([]*memState, cfg.workers()+1)
		for i := range e.memStates {
			e.memStates[i] = &memState{}
			e.memStates[i].pool.SetClassCaps(cfg.PoolClassCaps)
		}
	}
	if cfg.Timing {
		e.timing = NewTimingLog()
		e.timing.initShards(cfg.workers())
	}
	if cfg.Trace {
		e.tracer = newTracer(cfg.Mode, cfg.workers())
	}
	return e
}

// ErrNoMain is returned when the program has no main function.
var ErrNoMain = errors.New("delirium: program has no main function")

// ErrAlreadyRun is returned when Run is invoked on an engine whose previous
// run finished and was not Reset.
var ErrAlreadyRun = errors.New("delirium: engine already ran; Reset it (or create a new engine) per execution")

// ErrEngineRunning is returned by Reset (and a concurrent Run) while an
// execution is still in flight.
var ErrEngineRunning = errors.New("delirium: engine is running")

// Run executes the program's main function with the given arguments and
// returns its value. A run that passes validation consumes the engine until
// Reset is called, so a call rejected for a missing main or an
// argument-count mismatch can be corrected and retried.
func (e *Engine) Run(args ...value.Value) (value.Value, error) {
	return e.RunContext(context.Background(), args...)
}

// Runs returns the engine's run-generation counter: the number of completed
// executions (successful or failed) this engine has performed.
func (e *Engine) Runs() int64 { return e.gen.Load() }

// Reset returns a finished engine to runnable for the next execution of the
// same program. Per-run mutable state — statistics, the timing log and
// trace, the failure record, the result, fault-plan cursors — is cleared;
// per-program immutable state and every warmed allocation survive: the
// activation pools, the per-worker block free lists, the work-stealing
// scheduler's deques and parkers, and (under RunMany) the worker goroutines
// themselves. Reset on a fresh or validation-rejected engine is a no-op;
// Reset while a run is in flight returns ErrEngineRunning.
func (e *Engine) Reset() error {
	switch e.state.Load() {
	case engRunning:
		return ErrEngineRunning
	case engIdle:
		return nil
	}
	e.stats.reset()
	if e.cfg.Timing {
		e.timing = NewTimingLog()
		e.timing.initShards(e.cfg.workers())
	}
	if e.cfg.Trace {
		e.tracer = newTracer(e.cfg.Mode, e.cfg.workers())
	}
	e.failMu.Lock()
	e.failedRun = false
	e.runErr = nil
	e.failedAct = nil
	e.failMu.Unlock()
	e.rootAct = nil
	e.stopped.Store(false)
	e.result.Store(resultBox{})
	e.runCtx = nil
	e.ctxDone = nil
	e.outstanding.Store(0)
	// A stateful fault plan keeps execution cursors; rewinding them here
	// makes a seeded fault suite behave identically on every run of a
	// reused engine.
	if e.cfg.Faults != nil {
		e.cfg.Faults.Reset()
	}
	e.state.Store(engIdle)
	return nil
}

// SetMaxOps overrides the engine's operator budget for subsequent runs:
// n > 0 bounds each run to n operator executions (exceeding it fails the
// run with FailBudget), n == 0 removes the bound. The server uses this to
// apply per-request budgets to pooled engines compiled with a default.
// Calling it while a run is in flight returns ErrEngineRunning.
func (e *Engine) SetMaxOps(n int64) error {
	if e.state.Load() == engRunning {
		return ErrEngineRunning
	}
	e.maxOps = n
	return nil
}

// scheduler returns the engine's work-stealing scheduler, creating it on
// the first multi-worker run and reopening the cached one after that — a
// reused engine pays the deque and parker allocations exactly once.
func (e *Engine) scheduler(workers int) *stealScheduler {
	if e.sched == nil {
		e.sched = newStealScheduler(workers, &e.stats, e.tracer)
	} else {
		e.sched.reopen(e.tracer)
	}
	e.sched.affinity = e.affinity
	return e.sched
}

// RunContext is Run under a context: cancellation (or the context deadline)
// stops the run at the next operator boundary, drains the schedulers, and
// returns a RunError with Kind FailCanceled that unwraps to the context's
// error. A nil ctx is context.Background. Cancellation cannot preempt an
// operator already inside embedded Go code — bound that with
// Config.OpTimeout or Operator.Timeout.
func (e *Engine) RunContext(ctx context.Context, args ...value.Value) (value.Value, error) {
	main := e.prog.Main
	if main == nil {
		return nil, ErrNoMain
	}
	if len(args) != main.NParams {
		return nil, fmt.Errorf("delirium: main expects %d arguments, got %d", main.NParams, len(args))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// A context that is already dead rejects the run without consuming the
	// engine, like any other validation failure.
	if err := ctx.Err(); err != nil {
		return nil, &RunError{Kind: FailCanceled, Err: err}
	}
	if !e.state.CompareAndSwap(engIdle, engRunning) {
		if e.state.Load() == engRunning {
			return nil, ErrEngineRunning
		}
		return nil, ErrAlreadyRun
	}
	e.runCtx = ctx
	if ctx.Done() != nil {
		e.ctxDone = ctx.Done()
	}
	switch e.cfg.Mode {
	case Simulated:
		return e.runSimulated(args)
	default:
		return e.runReal(args)
	}
}

// Stats returns execution statistics; call after Run returns.
func (e *Engine) Stats() *Stats { return &e.stats }

// Timing returns the node timing log, or nil when timing was disabled.
func (e *Engine) Timing() *TimingLog { return e.timing }

// Trace returns the recorded execution trace, or nil when tracing was
// disabled. Call after Run returns.
func (e *Engine) Trace() *Trace {
	if e.tracer == nil {
		return nil
	}
	return e.tracer.snapshot()
}

// fail records the first error and stops the run.
func (e *Engine) fail(err error) { e.failAt(nil, err) }

// failAt records the first error plus the activation it occurred in (for
// the error-path teardown sweep) and stops the run. Later errors are
// dropped: the first failure wins.
func (e *Engine) failAt(a *activation, err error) {
	e.failMu.Lock()
	if !e.failedRun {
		e.failedRun = true
		e.runErr = err
		e.failedAct = a
		e.stopped.Store(true)
	}
	e.failMu.Unlock()
}

// finish records the final result.
func (e *Engine) finish(v value.Value) {
	if v == nil {
		v = value.Null{}
	}
	e.result.Store(resultBox{v})
	e.stopped.Store(true)
}

// acquire gets a recycled or fresh activation for t. wid is the acquiring
// worker for trace attribution (-1 outside the pool); when tracing is on the
// activation is stamped with a fresh instance id so every node execution has
// a unique (activation, node) identity in the trace.
func (e *Engine) acquire(wid int, t *graph.Template) *activation {
	var a *activation
	if e.simPools != nil {
		if list := e.simPools[t]; len(list) > 0 {
			a = list[len(list)-1]
			e.simPools[t] = list[:len(list)-1]
		}
	} else {
		pi, ok := e.pools.Load(t)
		if !ok {
			pi, _ = e.pools.LoadOrStore(t, &sync.Pool{})
		}
		a, _ = pi.(*sync.Pool).Get().(*activation)
	}
	if a != nil {
		atomic.AddInt64(&e.stats.ActivationsReused, 1)
		a.reset()
		if e.tracer != nil {
			a.seq = e.tracer.nextAct()
			e.tracer.record(wid, TraceEvent{Type: TraceActReuse, Ts: e.tracer.now(), Act: a.seq, Tmpl: t.Name})
		}
		return a
	}
	atomic.AddInt64(&e.stats.ActivationsAllocated, 1)
	a = newActivation(t)
	if e.tracer != nil {
		a.seq = e.tracer.nextAct()
		e.tracer.record(wid, TraceEvent{Type: TraceActAlloc, Ts: e.tracer.now(), Act: a.seq, Tmpl: t.Name})
	}
	return a
}

// release returns a finished activation to its template's pool.
func (e *Engine) release(a *activation) {
	if e.simPools != nil {
		e.simPools[a.tmpl] = append(e.simPools[a.tmpl], a)
		return
	}
	if pi, ok := e.pools.Load(a.tmpl); ok {
		pi.(*sync.Pool).Put(a)
	}
}

// classify assigns the ready-queue priority for a runnable node. A fused
// supernode schedules at its most-deferred member's level: fusing a call's
// argument chain must not promote a recursive expansion past the §7
// draining order, or live activations would explode.
func (e *Engine) classify(a *activation, n *graph.Node) Priority {
	if e.cfg.DisablePriorities {
		return PriNormal
	}
	if c := n.FuseCluster; c != nil {
		pri := PriNormal
		for _, id := range c.Nodes {
			if p := e.classify1(a, a.tmpl.Nodes[id]); p > pri {
				pri = p
			}
		}
		return pri
	}
	return e.classify1(a, n)
}

// classify1 assigns one node's priority. For dynamic closure calls the
// closure value is already on input 0, so the callee's recursion flag is
// known (a fused member whose closure is produced inside the cluster sees
// an empty slot and conservatively classifies as PriCall).
func (e *Engine) classify1(a *activation, n *graph.Node) Priority {
	switch n.Kind {
	case graph.CallNode:
		if n.Callee != nil && n.Callee.Recursive {
			return PriRecursive
		}
		return PriCall
	case graph.CondNode:
		return PriCall
	case graph.CallClosureNode:
		off, _ := a.tmpl.Layout()
		if cl, ok := a.buf[off[n.ID]].(*value.Closure); ok {
			if t, ok := cl.Fn.(*graph.Template); ok && t.Recursive {
				return PriRecursive
			}
		}
		return PriCall
	default:
		return PriNormal
	}
}
