package runtime

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders an ASCII per-processor timeline of a simulated run's
// operator executions — the environment's "various tools for analyzing and
// improving execution speed" (§1). Each row is a processor; each segment a
// contiguous run of one operator, labeled by its first letters; idle time
// prints as dots. Load imbalance — the retina model's §5.2 problem — is
// visible at a glance as long runs on one row against dots on the others.
//
// width is the number of character cells the makespan is scaled into.
func (l *TimingLog) Gantt(width int) string {
	entries := l.Entries()
	if len(entries) == 0 {
		return "(no timing entries)\n"
	}
	if width < 10 {
		width = 10
	}
	maxProc := 0
	var span int64
	for _, e := range entries {
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
		if end := e.Start + e.Ticks; end > span {
			span = end
		}
	}
	if span == 0 {
		span = 1
	}
	rows := make([][]byte, maxProc+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	// Paint longer entries first so tiny ops cannot hide a dominant one.
	sorted := append([]TimingEntry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Ticks > sorted[j].Ticks })
	marked := false
	for _, e := range sorted {
		c0 := int(e.Start * int64(width) / span)
		c1 := int((e.Start + e.Ticks) * int64(width) / span)
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c1 > width {
			c1 = width
		}
		label := e.Name
		// A stolen task's segment opens with '%', an affinity dispatch
		// (ran on its preferred producer's worker) with '+'.
		mark := byte(0)
		if e.Stolen {
			mark, marked = '%', true
		} else if e.Affinity {
			mark, marked = '+', true
		}
		for c := c0; c < c1; c++ {
			idx := c - c0
			ch := byte('#')
			if idx < len(label) {
				ch = label[idx]
			}
			if idx == 0 && mark != 0 {
				ch = mark
			}
			rows[e.Proc][c] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "virtual time 0..%d ticks, %d cells/row", span, width)
	if marked {
		b.WriteString("  (% stolen, + affinity hit)")
	}
	b.WriteString("\n")
	for p, row := range rows {
		fmt.Fprintf(&b, "proc %2d |%s|\n", p, row)
	}
	return b.String()
}

// ProcLoads sums busy ticks per processor from the timing entries,
// returning a slice indexed by processor id.
func (l *TimingLog) ProcLoads() []int64 {
	entries := l.Entries()
	maxProc := 0
	for _, e := range entries {
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
	}
	loads := make([]int64, maxProc+1)
	for _, e := range entries {
		loads[e.Proc] += e.Ticks
	}
	return loads
}
