package runtime

import "sync/atomic"

// This file implements the structured execution tracer — the modern form of
// the paper's §5.2 node-timing tool. Where TimingLog records a flat listing
// of operator durations, the tracer records typed events (node start/end,
// value delivery, steal, park/unpark, inject, activation alloc/reuse, tail
// call, block copy) into per-worker buffers, with virtual-tick timestamps in
// Simulated mode and nanosecond offsets in Real mode. On top of the raw
// trace, traceexport.go renders Chrome trace-event / Perfetto JSON (one
// track per worker, flow arrows along data dependencies) and critpath.go
// replays the recorded times over the dependency edges to find the longest
// weighted chain — the analysis that mechanically identifies the retina
// model's post_up bottleneck.
//
// Cost discipline: tracing disabled must stay a nil check on the hot path.
// Every recording site guards on a single pointer (w.tr, s.tr, or e.tracer),
// and a worker only ever appends to its own buffer, so the enabled path
// takes no locks either.

// TraceEventType enumerates the recorded event kinds.
type TraceEventType uint8

// Trace event kinds.
const (
	// TraceNodeStart/TraceNodeEnd bracket one node execution. Start carries
	// the node label and template; both carry the (activation, node) key.
	TraceNodeStart TraceEventType = iota
	TraceNodeEnd
	// TraceDeliver records one value delivery from the node currently
	// executing on the recording worker to input port(s) of the target
	// (activation, node) — the data-dependency edges the flow arrows and the
	// critical-path analyzer follow.
	TraceDeliver
	// TraceSteal records a successful steal by the recording worker; Arg is
	// the victim worker.
	TraceSteal
	// TracePark/TraceUnpark bracket a worker's sleep on its parker.
	TracePark
	TraceUnpark
	// TraceInject records a task pushed through the shared injector.
	TraceInject
	// TraceActAlloc/TraceActReuse record activation demand: a fresh
	// allocation versus a pool hit. Tmpl names the template, Act the stamp
	// assigned to the new activation instance.
	TraceActAlloc
	TraceActReuse
	// TraceTailCall records an activation replaced in place (§7 tail calls).
	TraceTailCall
	// TraceBlockCopy records a copy forced by the sole-reference rule; Arg is
	// the number of words copied.
	TraceBlockCopy
	// TraceRetry records a failed operator attempt about to be re-executed;
	// Arg is the attempt number that failed (1-based).
	TraceRetry
	// TraceFault records an injected fault firing; Arg is the operator's
	// execution index the fault was armed for.
	TraceFault
	// TraceMemElide records memory-plan savings at one node execution; Arg
	// is the number of refcount operations elided plus free-list hits.
	TraceMemElide
	// TraceFused records one fused supernode dispatch; Arg is the member
	// count. The per-member node start/end pairs follow inside the
	// supernode's bracketing slice.
	TraceFused
	// TraceBatchSteal records a batched steal event (affinity scheduling):
	// it follows the event's TraceSteal and Arg is the total tasks the
	// event transferred (the returned task plus extras parked on the
	// thief's deque).
	TraceBatchSteal
	// TraceAffinity records the outcome of one preferred-edge dispatch
	// under an active affinity plan: Arg is 1 for a hit (the task ran on
	// its producer's worker) and 0 for a miss (it migrated).
	TraceAffinity
)

// String names the event kind.
func (t TraceEventType) String() string {
	switch t {
	case TraceNodeStart:
		return "node-start"
	case TraceNodeEnd:
		return "node-end"
	case TraceDeliver:
		return "deliver"
	case TraceSteal:
		return "steal"
	case TracePark:
		return "park"
	case TraceUnpark:
		return "unpark"
	case TraceInject:
		return "inject"
	case TraceActAlloc:
		return "act-alloc"
	case TraceActReuse:
		return "act-reuse"
	case TraceTailCall:
		return "tail-call"
	case TraceBlockCopy:
		return "block-copy"
	case TraceRetry:
		return "retry"
	case TraceFault:
		return "fault"
	case TraceMemElide:
		return "mem-elide"
	case TraceFused:
		return "fused"
	case TraceBatchSteal:
		return "batch-steal"
	case TraceAffinity:
		return "affinity"
	default:
		return "unknown"
	}
}

// TraceEvent is one recorded event. Ts is virtual ticks in Simulated mode
// and nanoseconds since run start in Real mode. Worker is the recording
// processor, or -1 for events recorded outside the worker pool (seeding).
type TraceEvent struct {
	Type   TraceEventType
	Worker int32
	// Node is the node id within its template for node events, or the
	// delivery target's node id for TraceDeliver.
	Node int32
	Ts   int64
	// Arg carries the per-kind payload: steal victim, copied words.
	Arg int64
	// Act is the activation stamp the event belongs (or delivers) to.
	Act int64
	// Name labels node events (operator name, or the node kind for unnamed
	// plumbing nodes); Tmpl names the template of node and activation events.
	Name string
	Tmpl string
}

// Trace is a completed run's event record: one buffer per worker in
// recording order, plus a final buffer for events recorded outside the
// worker pool (seeding). Read it after Run returns via Engine.Trace.
type Trace struct {
	// Mode tells how to interpret timestamps: virtual ticks (Simulated) or
	// nanoseconds since run start (Real).
	Mode Mode
	// Workers is the configured processor count; Events has Workers+1
	// buffers, the last being the external (seed) track.
	Workers int
	Events  [][]TraceEvent
}

// Len counts recorded events across all buffers.
func (t *Trace) Len() int {
	n := 0
	for _, buf := range t.Events {
		n += len(buf)
	}
	return n
}

// tracer is the engine-internal recorder behind Config.Trace.
type tracer struct {
	mode Mode
	// now returns the current timestamp; executors install it at run start.
	now func() int64
	// bufs[w] is worker w's private buffer; bufs[len-1] the external track.
	// A worker appends only to its own buffer, so recording takes no locks.
	bufs [][]TraceEvent
	// actSeq allocates activation stamps. Atomic for the real executor; the
	// simulated executor is single-threaded, so its stamps are deterministic.
	actSeq atomic.Int64
}

func newTracer(mode Mode, workers int) *tracer {
	t := &tracer{mode: mode, bufs: make([][]TraceEvent, workers+1)}
	t.now = func() int64 { return 0 } // replaced by the executor at run start
	return t
}

// nextAct allocates an activation stamp (1-based; 0 means unstamped).
func (t *tracer) nextAct() int64 { return t.actSeq.Add(1) }

// record appends ev to worker wid's buffer; wid -1 selects the external
// track. Callers must only record for their own worker id.
func (t *tracer) record(wid int, ev TraceEvent) {
	idx := wid
	if idx < 0 {
		idx = len(t.bufs) - 1
	}
	ev.Worker = int32(wid)
	t.bufs[idx] = append(t.bufs[idx], ev)
}

// snapshot packages the buffers for the public API.
func (t *tracer) snapshot() *Trace {
	return &Trace{Mode: t.mode, Workers: len(t.bufs) - 1, Events: t.bufs}
}
