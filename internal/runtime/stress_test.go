package runtime

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/operator"
	"repro/internal/value"
)

// TestDeepNonTailRecursion exercises the continuation chain: a non-tail
// recursive sum builds thousands of nested activations which unwind
// through complete()'s iterative bubbling.
func TestDeepNonTailRecursion(t *testing.T) {
	src := `
sumdown(n) if is_equal(n, 0) then 0 else add(n, sumdown(sub(n, 1)))
main(n) sumdown(n)
`
	g := compile(t, src, nil)
	const n = 4000
	for name, cfg := range configs() {
		cfg.MaxOps = 10_000_000
		e := New(g, cfg)
		v, err := e.Run(value.Int(n))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v != value.Int(n*(n+1)/2) {
			t.Errorf("%s: sumdown(%d) = %v", name, n, v)
		}
	}
}

// TestWideFanOut runs a single value into a very wide fork (256 consumers)
// and joins the results, exercising fan-out retention and the ready queue
// under burst load.
func TestWideFanOut(t *testing.T) {
	const width = 256
	var b strings.Builder
	b.WriteString("main(x)\n  let ")
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "v%d = mul(x, %d)\n      ", i, i)
	}
	b.WriteString("total = 0\n  in ")
	expr := "v0"
	for i := 1; i < width; i++ {
		expr = fmt.Sprintf("add(%s, v%d)", expr, i)
	}
	b.WriteString(expr)
	g := compile(t, b.String(), nil)
	want := value.Int(0)
	for i := 0; i < width; i++ {
		want += value.Int(3 * i)
	}
	for name, cfg := range configs() {
		e := New(g, cfg)
		v, err := e.Run(value.Int(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v != want {
			t.Errorf("%s: got %v, want %v", name, v, want)
		}
	}
}

// TestLongLoopManyWorkers stresses activation pooling under contention:
// a million-iteration loop shared by 8 workers.
func TestLongLoopManyWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	src := `
main(n)
  iterate { i = 0, incr(i) } while lt(i, n), result i
`
	g := compile(t, src, nil)
	e := New(g, Config{Mode: Real, Workers: 8, MaxOps: 50_000_000})
	const n = 200_000
	v, err := e.Run(value.Int(n))
	if err != nil {
		t.Fatal(err)
	}
	if v != value.Int(n) {
		t.Fatalf("got %v", v)
	}
	if e.Stats().PeakLive > 100 {
		t.Errorf("PeakLive = %d for a simple loop", e.Stats().PeakLive)
	}
}

// TestRecursiveFanOutTree runs a bushy recursion (quad tree of depth 6),
// mixing recursive expansions with fan-out joins at every level.
func TestRecursiveFanOutTree(t *testing.T) {
	src := `
tree(d)
  if is_equal(d, 0)
    then 1
    else let a = tree(sub(d, 1))
             b = tree(sub(d, 1))
             c = tree(sub(d, 1))
             e = tree(sub(d, 1))
         in add(add(a, b), add(c, e))
main(d) tree(d)
`
	g := compile(t, src, nil)
	for name, cfg := range configs() {
		cfg.MaxOps = 10_000_000
		e := New(g, cfg)
		v, err := e.Run(value.Int(6))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v != value.Int(4096) { // 4^6
			t.Errorf("%s: tree(6) = %v, want 4096", name, v)
		}
	}
}

// TestOperatorPanicManyWorkers aborts a wide 8-worker run by panicking in
// an operator once enough parallel work is in flight. The engine must
// convert the panic into an error, wake every parked worker, and return —
// a hang here means the abort path lost a parker wakeup.
func TestOperatorPanicManyWorkers(t *testing.T) {
	reg := operator.NewRegistry(operator.Builtins())
	var fired atomic.Int64
	reg.MustRegister(&operator.Operator{
		Name: "boom_after", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			if fired.Add(1) == 200 {
				panic("kaboom")
			}
			return args[0], nil
		},
	})
	src := `
spin(n) if is_equal(n, 0) then 0 else add(boom_after(n), spin(sub(n, 1)))
main(n)
  let a = spin(n)
      b = spin(n)
      c = spin(n)
      d = spin(n)
  in add(add(a, b), add(c, d))
`
	g := compile(t, src, reg)
	e := New(g, Config{Mode: Real, Workers: 8, MaxOps: 10_000_000})
	_, err := e.Run(value.Int(200))
	if err == nil || !strings.Contains(err.Error(), "operator panicked") {
		t.Fatalf("err = %v, want operator panic diagnostic", err)
	}
}

// TestMaxOpsExceededMidRun exhausts the operation budget in the middle of
// an 8-worker run; every worker must observe the abort and exit.
func TestMaxOpsExceededMidRun(t *testing.T) {
	src := `
main(n)
  iterate { i = 0, incr(i) } while lt(i, n), result i
`
	g := compile(t, src, nil)
	e := New(g, Config{Mode: Real, Workers: 8, MaxOps: 500})
	_, err := e.Run(value.Int(1_000_000))
	if err == nil || !strings.Contains(err.Error(), "operation budget") {
		t.Fatalf("err = %v, want budget diagnostic", err)
	}
}

// TestStealParkStress drives the stealing and parking paths hard under the
// race detector: a bushy recursion floods the producing workers' deques
// (forcing steals even on a single-CPU host, where thieves only run at
// preemption points) and a sequential tail of blocking operators idles the
// whole pool (forcing parks — while one worker sleeps inside nap, the
// other seven find nothing and must go to sleep rather than burn CPU).
// Retries tolerate a freakishly quiet schedule; across attempts the
// counters must both fire.
func TestStealParkStress(t *testing.T) {
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "nap", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			time.Sleep(3 * time.Millisecond)
			return args[0], nil
		},
	})
	src := `
tree(d)
  if is_equal(d, 0)
    then 1
    else add(add(tree(sub(d, 1)), tree(sub(d, 1))),
             add(tree(sub(d, 1)), tree(sub(d, 1))))
main(d) nap(nap(nap(tree(d))))
`
	g := compile(t, src, reg)
	var sawSteal, sawPark bool
	for attempt := 0; attempt < 5 && !(sawSteal && sawPark); attempt++ {
		e := New(g, Config{Mode: Real, Workers: 8, MaxOps: 10_000_000})
		v, err := e.Run(value.Int(7))
		if err != nil {
			t.Fatal(err)
		}
		if v != value.Int(16384) { // 4^7
			t.Fatalf("got %v, want 16384", v)
		}
		st := e.Stats()
		sawSteal = sawSteal || st.Steals > 0
		sawPark = sawPark || st.Parks > 0
		if st.InjectedTasks == 0 {
			t.Error("seeding bypassed the injector")
		}
	}
	if !sawSteal {
		t.Error("no steals recorded across 5 bushy 8-worker runs")
	}
	if !sawPark {
		t.Error("no parks recorded across 5 runs with a blocking tail")
	}
}

// TestManySmallRunsReusePools verifies engines are independent: hundreds
// of runs of the same program from fresh engines, interleaved worker
// counts, all agreeing.
func TestManySmallRunsReusePools(t *testing.T) {
	g := compile(t, `
f(a, b) add(mul(a, a), b)
main(x) f(f(x, 1), f(x, 2))
`, nil)
	var want value.Value
	for i := 0; i < 200; i++ {
		e := New(g, Config{Mode: Real, Workers: 1 + i%4})
		v, err := e.Run(value.Int(int64(i % 7)))
		if err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if want == nil {
				want = v
			} else if !value.Equal(v, want) {
				t.Fatalf("run %d: %v != %v", i, v, want)
			}
		}
	}
}
