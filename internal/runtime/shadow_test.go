package runtime

import (
	"errors"
	"testing"
	"time"

	"repro/internal/operator"
	"repro/internal/value"
)

// shadowOps registers a stallable block allocator for the abandoned-shadow
// suite: stall(n) allocates a block, parks on gates[n] (n < 0 skips the
// park), then writes and returns the block. Parking inside the operator
// body is exactly the shape Go cannot preempt, so an OpTimeout abandons the
// goroutine mid-flight; releasing the gate later lets the stray goroutine
// unwind while the engine is in a different run generation.
func shadowOps(gates []chan struct{}) *operator.Registry {
	r := operator.NewRegistry(operator.Builtins())
	r.MustRegister(&operator.Operator{
		Name: "stall", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			n := int(args[0].(value.Int))
			b := value.NewBlockStats(make(value.FloatVec, 8), ctx.BlockStats())
			if n >= 0 {
				<-gates[n]
			}
			vec := b.Data().(value.FloatVec)
			for i := range vec {
				vec[i] = 2
			}
			return b, nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "bsum", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			var s float64
			for _, x := range args[0].(*value.Block).Data().(value.FloatVec) {
				s += x
			}
			return value.Float(s), nil
		},
	})
	return r
}

// TestShadowAbandonedAfterReset is the Reset/shadow-worker interaction
// regression test: an operator abandoned by an op-timeout unwinds only
// after the engine has been Reset() and reused for a later run, and must
// not publish its result, its charges, or its block accounting into that
// later run. Each iteration times out a stalled run, resets, releases the
// stalled goroutine, and immediately drives a clean run the stray unwind
// races against; run under -race this catches any write that escapes the
// abandoned goroutine's private state.
func TestShadowAbandonedAfterReset(t *testing.T) {
	const rounds = 5
	gates := make([]chan struct{}, rounds)
	for i := range gates {
		gates[i] = make(chan struct{})
	}
	g := compile(t, "main(n) bsum(stall(n))", shadowOps(gates))
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 100000,
		OpTimeout: 20 * time.Millisecond})

	for i := 0; i < rounds; i++ {
		// Stalled run: stall(i) parks on its gate and times out.
		_, err := e.Run(value.Int(i))
		var re *RunError
		if !errors.As(err, &re) || re.Kind != FailTimeout {
			t.Fatalf("round %d: err = %v, want RunError{FailTimeout}", i, err)
		}
		// The abandoned operator allocated its block against a private sink,
		// so the engine's accounting must balance despite the goroutine
		// still being parked inside the operator body.
		st := e.Stats()
		if st.Blocks.Allocated != st.Blocks.Freed {
			t.Fatalf("round %d: timed-out run leaked: allocated %d, freed %d",
				i, st.Blocks.Allocated, st.Blocks.Freed)
		}
		if err := e.Reset(); err != nil {
			t.Fatalf("round %d: Reset: %v", i, err)
		}
		// Release the abandoned goroutine and immediately race it against a
		// clean run of the reused engine. Its late publication must be
		// discarded by the generation check.
		close(gates[i])
		v, err := e.Run(value.Int(-1))
		if err != nil {
			t.Fatalf("round %d: clean rerun failed: %v", i, err)
		}
		if v != value.Float(16) {
			t.Errorf("round %d: rerun = %v, want 16", i, v)
		}
		st = e.Stats()
		if st.OpTimeouts != 0 {
			t.Errorf("round %d: stale OpTimeouts %d leaked into the reused run", i, st.OpTimeouts)
		}
		if st.Blocks.Allocated != st.Blocks.Freed {
			t.Errorf("round %d: reused run leaked: allocated %d, freed %d",
				i, st.Blocks.Allocated, st.Blocks.Freed)
		}
		if st.Blocks.Allocated == 0 {
			t.Errorf("round %d: reused run recorded no allocations; sink merge lost", i)
		}
		if err := e.Reset(); err != nil {
			t.Fatalf("round %d: second Reset: %v", i, err)
		}
	}
}

// TestShadowCompletionRebindsBlocks pins the accept path: a block allocated
// inside a bounded (shadow) operator call that completes in time must be
// re-homed from the shadow's private sink onto the engine's counters, so
// its later release lands Freed where Allocated was credited.
func TestShadowCompletionRebindsBlocks(t *testing.T) {
	g := compile(t, "main(n) bsum(stall(n))", shadowOps(nil))
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 100000,
		OpTimeout: 5 * time.Second})
	v, err := e.Run(value.Int(-1))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v != value.Float(16) {
		t.Errorf("result = %v, want 16", v)
	}
	st := e.Stats()
	if st.Blocks.Allocated == 0 {
		t.Fatal("no allocations recorded; shadow sink never merged")
	}
	if st.Blocks.Allocated != st.Blocks.Freed {
		t.Errorf("allocated %d, freed %d; shadow-allocated block not rebound to the engine sink",
			st.Blocks.Allocated, st.Blocks.Freed)
	}
}
