package runtime

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/value"
)

// continuation says where an activation's result goes: into port-less node
// `node` of activation `act`, or — when act is nil — out of the program.
type continuation struct {
	act  *activation
	node *graph.Node
}

// activation is one instance of a template in flight (§7): a pointer back
// to the template plus exactly enough buffer space to evaluate it once.
type activation struct {
	tmpl *graph.Template
	// buf holds every node's input values, at tmpl.Layout offsets.
	buf []value.Value
	// counts[n] is the number of inputs node n still waits for.
	counts []int32
	// remaining is the number of nodes that have not completed; the
	// activation recycles when it reaches zero.
	remaining int32
	// cont receives the result node's value.
	cont continuation
	// delegated is set when a tail call transferred cont to a child; the
	// result node then completes without delivering locally. Atomic: the
	// worker executing the result node writes it while workers completing
	// other nodes of the same activation read it.
	delegated atomic.Bool
	// seq is a deterministic creation stamp used by the simulated
	// scheduler for tie-breaking.
	seq int64
	// readyAt[n], used only by the simulated executor, is the latest
	// virtual completion time of any delivery to node n: a node may not
	// start before every producer has finished, even when the producers
	// were popped (and their values computed) earlier.
	readyAt []int64
	// execProc[n], used only by the simulated executor under an active
	// affinity plan, records 1 + the virtual processor that executed node
	// n (0 = not yet run), so placement can follow a consumer's preferred
	// producer. Lazily allocated like readyAt.
	execProc []int32
}

func newActivation(t *graph.Template) *activation {
	_, total := t.Layout()
	a := &activation{
		tmpl:   t,
		buf:    make([]value.Value, total),
		counts: make([]int32, len(t.Nodes)),
	}
	a.reset()
	return a
}

// reset prepares a pooled activation for reuse.
func (a *activation) reset() {
	for i := range a.buf {
		a.buf[i] = nil
	}
	for i, n := range a.tmpl.Nodes {
		if c := n.FuseCluster; c != nil {
			// A fused cluster gates on its head: the head fires when every
			// input edge arriving from outside the cluster has delivered.
			// Member counters are never decremented (deliveries to members
			// redirect their decrement to the head) and never read.
			a.counts[i] = int32(c.ExtIn)
		} else {
			a.counts[i] = int32(n.NIn)
		}
	}
	a.remaining = int32(len(a.tmpl.Nodes))
	a.cont = continuation{}
	a.delegated.Store(false)
	for i := range a.readyAt {
		a.readyAt[i] = 0
	}
	for i := range a.execProc {
		a.execProc[i] = 0
	}
}

// inputs returns the input values of node n (aliasing the buffer).
func (a *activation) inputs(n *graph.Node) []value.Value {
	off, _ := a.tmpl.Layout()
	return a.buf[off[n.ID] : off[n.ID]+n.NIn]
}

// deliver stores v on node to's input port and decrements gate's ready
// counter, reporting whether the gate became runnable. For unfused nodes
// gate == to; for a fused cluster member the value lands on the member's
// port while the decrement redirects to the cluster head.
func (a *activation) deliver(to, port, gate int, v value.Value) bool {
	off, _ := a.tmpl.Layout()
	a.buf[off[to]+port] = v
	return atomic.AddInt32(&a.counts[gate], -1) == 0
}

// transferRefs settles block reference counts after an operator-like node
// consumed ins and produced result. Each input value carried one reference
// per occurrence, owned by this node; the result must end up owning one
// reference per occurrence of each block it contains.
//
//   - a block occurrence appearing in both transfers its reference;
//   - an input occurrence not in the result is released;
//   - an extra result occurrence of an input block needs a fresh reference;
//   - a new block's first occurrence is covered by NewBlock's initial
//     reference, and each further occurrence needs one more.
func transferRefs(ins []value.Value, result value.Value, st *value.BlockStats) {
	var inBlocks, resBlocks []*value.Block
	for _, in := range ins {
		inBlocks = value.Blocks(in, inBlocks)
	}
	resBlocks = value.Blocks(result, resBlocks)
	if len(inBlocks) == 0 && len(resBlocks) == 0 {
		return
	}
	resCnt := make(map[*value.Block]int, len(resBlocks))
	for _, b := range resBlocks {
		resCnt[b]++
	}
	wasInput := make(map[*value.Block]bool, len(inBlocks))
	for _, b := range inBlocks {
		wasInput[b] = true
		if resCnt[b] > 0 {
			resCnt[b]-- // reference transfers input -> result
		} else {
			b.Release(st)
		}
	}
	for b, extra := range resCnt {
		need := extra
		if !wasInput[b] {
			need-- // NewBlock supplied the first reference
		}
		for i := 0; i < need; i++ {
			b.Retain(st)
		}
	}
}

// makeWritable rewrites v so that every contained block is exclusively
// owned, copying shared blocks (§8 rule 2). It consumes the caller's
// references to replaced blocks and returns the number of words copied.
func makeWritable(v value.Value, st *value.BlockStats) (value.Value, int) {
	switch x := v.(type) {
	case *value.Block:
		nb, copied := x.Writable(st)
		if copied {
			return nb, nb.Size()
		}
		return nb, 0
	case value.Tuple:
		var words int
		out := make(value.Tuple, len(x))
		for i, el := range x {
			w := 0
			out[i], w = makeWritable(el, st)
			words += w
		}
		return out, words
	default:
		return v, 0
	}
}
