package runtime

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// task is one runnable node of one activation, tagged with scheduling
// provenance: from is the worker that pushed it (-1 for pushes arriving
// through the injector from outside the pool) and pref marks a
// producer-preferred wakeup — the pushing worker had just completed this
// node's AffPreferred producer. Provenance feeds the affinity hit/miss
// counters and the timing log's stolen/affinity marks; it never
// influences what executes.
type task struct {
	act  *activation
	node *graph.Node
	from int32
	pref bool
}

// This file implements the real executor's work-stealing ready queue — the
// replacement for the original single-mutex three-level queue. The §7
// priority semantics are preserved per worker and per steal attempt: each
// worker owns one Chase-Lev deque per priority level and always drains
// normal operators before non-recursive expansions before recursive
// expansions, whether taking from its own deques, from the shared
// injector, or from a victim.
//
// The structure follows the classic three tiers:
//
//   - local deques: the owning worker pushes and pops LIFO at the bottom
//     (cache locality — a node's consumers run hot on the producer's
//     worker); thieves steal FIFO from the top, taking the oldest work,
//     which for this runtime tends to be the widest subtrees.
//   - a shared lock-free injector (one Michael-Scott queue per priority)
//     receives pushes from outside the worker pool — seeding from the
//     caller's goroutine, and any future cross-worker source.
//   - idle workers spin briefly, then register on an idle list and park on
//     a private one-token parker. Pushes wake at most one parked worker
//     (notifyOne), so a push never pays a condvar-herd broadcast.

// wsArray is one growable ring of a Chase-Lev deque. Slots hold *task so
// every slot access is a single atomic pointer operation.
type wsArray struct {
	mask  int64
	slots []atomic.Pointer[task]
}

func newWSArray(size int64) *wsArray {
	return &wsArray{mask: size - 1, slots: make([]atomic.Pointer[task], size)}
}

func (a *wsArray) get(i int64) *task    { return a.slots[i&a.mask].Load() }
func (a *wsArray) put(i int64, t *task) { a.slots[i&a.mask].Store(t) }
func (a *wsArray) size() int64          { return int64(len(a.slots)) }

// wsDeque is a Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; the
// sequentially-consistent formulation, which is what Go's sync/atomic
// provides). The owner pushes and pops at bottom; thieves CAS top. Arrays
// only grow and old arrays are never recycled, so a thief holding a stale
// array still reads the correct element for any index it successfully
// claims.
type wsDeque struct {
	bottom atomic.Int64
	top    atomic.Int64
	arr    atomic.Pointer[wsArray]
}

const wsInitialSize = 64

func (d *wsDeque) init() {
	d.arr.Store(newWSArray(wsInitialSize))
}

// push appends t at the bottom. Owner only.
func (d *wsDeque) push(t *task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	a := d.arr.Load()
	if b-tp >= a.size() {
		a = d.grow(a, tp, b)
	}
	a.put(b, t)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live window [top, bottom).
func (d *wsDeque) grow(old *wsArray, top, bottom int64) *wsArray {
	na := newWSArray(old.size() * 2)
	for i := top; i < bottom; i++ {
		na.put(i, old.get(i))
	}
	d.arr.Store(na)
	return na
}

// pop removes the most recently pushed task (LIFO). Owner only. Returns
// nil when the deque is empty or the last element was lost to a thief.
func (d *wsDeque) pop() *task {
	b := d.bottom.Load() - 1
	a := d.arr.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bottom.Store(b + 1)
		return nil
	}
	tk := a.get(b)
	if t == b {
		// Single element left: race thieves for it via top.
		if !d.top.CompareAndSwap(t, t+1) {
			tk = nil
		}
		d.bottom.Store(b + 1)
		return tk
	}
	return tk
}

// steal removes the oldest task (FIFO). Safe from any goroutine. The
// second result distinguishes "lost the race, retry" (true) from "deque
// observed empty" (false).
func (d *wsDeque) steal() (*task, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	a := d.arr.Load()
	tk := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return tk, true
}

// isEmpty is a racy size probe used only by the pre-park re-check; a
// transient false negative is corrected by the notifyOne handshake.
func (d *wsDeque) isEmpty() bool { return d.top.Load() >= d.bottom.Load() }

// injNode is one link of the injector queue.
type injNode struct {
	t    *task
	next atomic.Pointer[injNode]
}

// injQueue is a Michael-Scott lock-free MPMC FIFO — the shared injector
// level. head points at a dummy node; the first real element is head.next.
type injQueue struct {
	head atomic.Pointer[injNode]
	tail atomic.Pointer[injNode]
}

func (q *injQueue) init() {
	d := &injNode{}
	q.head.Store(d)
	q.tail.Store(d)
}

// push enqueues t. Safe from any goroutine.
func (q *injQueue) push(t *task) {
	n := &injNode{t: t}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if next != nil {
			// Help a lagging producer swing the tail forward.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			return
		}
	}
}

// pop dequeues the oldest task, or nil when empty. Safe from any
// goroutine. Only the CAS winner dereferences a node's payload, so the
// release store below cannot race a reader.
func (q *injQueue) pop() *task {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if next == nil {
			return nil
		}
		if head == tail {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			t := next.t
			next.t = nil // next is the new dummy; release the payload
			return t
		}
	}
}

// isEmpty is the racy probe used by the pre-park re-check.
func (q *injQueue) isEmpty() bool { return q.head.Load().next.Load() == nil }

// parker is a one-token binary semaphore: unpark is non-blocking and
// idempotent while a token is pending, park consumes a token. A spurious
// token only costs one extra scan of the queues.
type parker struct {
	ch chan struct{}
}

func (p *parker) park() { <-p.ch }
func (p *parker) unpark() {
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// workerDeques is one worker's trio of priority deques.
type workerDeques struct {
	d [numPriorities]wsDeque
}

// stealScheduler coordinates the real executor's workers.
type stealScheduler struct {
	local   []workerDeques
	inject  [numPriorities]injQueue
	parkers []parker

	// idle is a LIFO stack of parked worker ids, guarded by idleMu.
	// nidle mirrors len(idle) so the push fast path can skip the lock.
	idleMu sync.Mutex
	idle   []int
	nidle  atomic.Int64

	closed atomic.Bool
	stats  *Stats
	// tr, when non-nil, records steal and park/unpark events. Each worker
	// records only under its own id, so no lock is needed.
	tr *tracer

	// affinity, set per run by the engine, enables batched and
	// locality-ranked stealing (advisory: it changes where work runs,
	// never what runs). Written only between runs, read by workers.
	affinity bool
	// lastVictim[w] is the victim worker w last stole from successfully
	// (-1 none). Under affinity the next sweep tries it first: a worker
	// that found transferable work once tends to keep producing it (it is
	// running the hot chains), so related tasks migrate together and bring
	// their blocks with them. Each slot is written only by its owner.
	lastVictim []int32
}

func newStealScheduler(workers int, stats *Stats, tr *tracer) *stealScheduler {
	s := &stealScheduler{
		local:      make([]workerDeques, workers),
		parkers:    make([]parker, workers),
		stats:      stats,
		tr:         tr,
		lastVictim: make([]int32, workers),
	}
	for w := range s.lastVictim {
		s.lastVictim[w] = -1
	}
	for w := range s.local {
		for pri := range s.local[w].d {
			s.local[w].d[pri].init()
		}
		s.parkers[w].ch = make(chan struct{}, 1)
	}
	for pri := range s.inject {
		s.inject[pri].init()
	}
	return s
}

// pushLocal enqueues t on worker wid's own deque and wakes one parked
// worker if any is idle. Must be called from wid's goroutine.
func (s *stealScheduler) pushLocal(wid int, t *task, pri Priority) {
	s.local[wid].d[pri].push(t)
	s.notifyOne()
}

// pushLocalQuiet is pushLocal without the notifyOne. Used for the first
// push of a completing node's wakeup batch: the pushing worker is
// guaranteed to scan its own deques (find's first tier) before it can
// park, so exactly one task per batch never needs a wake token — k pushes
// pay k-1 notifies instead of k. Any later pushes in the batch still
// notify, preserving the no-stranded-task invariant, and a thief may
// take the quiet task at any time (it then runs there; no token is owed).
func (s *stealScheduler) pushLocalQuiet(wid int, t *task, pri Priority) {
	s.local[wid].d[pri].push(t)
}

// pushInject enqueues t on the shared injector — the path for pushes that
// originate outside the worker pool (seeding).
func (s *stealScheduler) pushInject(t *task, pri Priority) {
	t.from = -1
	s.inject[pri].push(t)
	atomic.AddInt64(&s.stats.InjectedTasks, 1)
	s.notifyOne()
}

// notifyOne wakes at most one parked worker. The nidle fast path makes a
// push by a busy pool a single atomic load.
func (s *stealScheduler) notifyOne() {
	if s.nidle.Load() == 0 {
		return
	}
	s.idleMu.Lock()
	if len(s.idle) == 0 {
		s.idleMu.Unlock()
		return
	}
	wid := s.idle[len(s.idle)-1]
	s.idle = s.idle[:len(s.idle)-1]
	s.nidle.Store(int64(len(s.idle)))
	s.idleMu.Unlock()
	s.parkers[wid].unpark()
}

// find returns the next task for worker wid, honoring the §7 priority
// order at every tier: own deques, then the injector, then one steal
// sweep over the other workers (victims scanned starting after wid so
// thieves spread out). Returns nil when no work was found anywhere.
func (s *stealScheduler) find(wid int) *task {
	own := &s.local[wid]
	for pri := range own.d {
		if t := own.d[pri].pop(); t != nil {
			return t
		}
	}
	for pri := range s.inject {
		if t := s.inject[pri].pop(); t != nil {
			return t
		}
	}
	n := len(s.local)
	last := -1
	if s.affinity {
		// Locality ranking: retry the last productive victim first — the
		// worker running the hot chains keeps producing transferable work,
		// so stolen tasks tend to arrive with their siblings.
		if v := s.lastVictim[wid]; v >= 0 && int(v) != wid {
			last = int(v)
			if t := s.stealFrom(wid, last); t != nil {
				return t
			}
		}
	}
	for off := 1; off < n; off++ {
		vid := (wid + off) % n
		if vid == last {
			continue
		}
		if t := s.stealFrom(wid, vid); t != nil {
			return t
		}
	}
	return nil
}

// stealBatchMax caps the tasks one steal event may transfer (the first
// returned task plus the extras parked on the thief's own deque).
const stealBatchMax = 8

// stealFrom attempts one steal from victim vid for worker wid, honoring
// the per-victim priority order. Under affinity a hit turns into a batched
// grab: up to half of the victim's remaining visible work at that priority
// (capped at stealBatchMax) moves to the thief in one sweep, so a thief
// that crossed the steal path once amortizes it over several tasks instead
// of paying a full find() per task.
func (s *stealScheduler) stealFrom(wid, vid int) *task {
	victim := &s.local[vid]
	for pri := range victim.d {
		for {
			t, retry := victim.d[pri].steal()
			if t != nil {
				atomic.AddInt64(&s.stats.Steals, 1)
				took := 1
				if s.affinity {
					took += s.stealExtra(wid, vid, pri)
					s.lastVictim[wid] = int32(vid)
					if took > 1 {
						atomic.AddInt64(&s.stats.BatchSteals, 1)
						atomic.AddInt64(&s.stats.BatchStolenTasks, int64(took))
					}
				}
				if s.tr != nil {
					s.tr.record(wid, TraceEvent{Type: TraceSteal, Ts: s.tr.now(), Arg: int64(vid)})
					if took > 1 {
						s.tr.record(wid, TraceEvent{Type: TraceBatchSteal, Ts: s.tr.now(), Arg: int64(took)})
					}
				}
				return t
			}
			if !retry {
				break
			}
			atomic.AddInt64(&s.stats.StealContention, 1)
		}
	}
	return nil
}

// stealExtra is the batched half of an affinity steal: after wid claimed
// one task from vid at priority pri, it grabs up to half of the victim's
// remaining visible work there and parks it on its OWN deque at the same
// priority. Every element is still claimed by an individual top CAS — a
// single range-CAS would race the owner's plain (non-CAS) pop of bottom
// elements and could take a task the owner already ran — so the grab is
// CAS-bounded, not range-based. Returns how many extras moved.
func (s *stealScheduler) stealExtra(wid, vid, pri int) int {
	d := &s.local[vid].d[pri]
	budget := (d.bottom.Load() - d.top.Load()) / 2
	if budget > stealBatchMax-1 {
		budget = stealBatchMax - 1
	}
	took := 0
	for int64(took) < budget {
		t, retry := d.steal()
		if t == nil {
			if retry {
				// Another thief is racing the same top; leave the rest to
				// it instead of fighting over the counter.
				atomic.AddInt64(&s.stats.StealContention, 1)
			}
			break
		}
		atomic.AddInt64(&s.stats.Steals, 1)
		s.local[wid].d[pri].push(t)
		took++
	}
	if took > 0 {
		// The extras landed without notifies; wake one parked peer so an
		// otherwise-drained pool can come steal them back if wid stalls.
		s.notifyOne()
	}
	return took
}

// anyWork is the racy pre-park probe: it may report work that a racing
// worker immediately claims (costing one extra scan) but, paired with the
// register-then-recheck order in park and the push-then-notify order in
// the producers, it can never let the last task strand while every worker
// sleeps.
func (s *stealScheduler) anyWork() bool {
	for pri := range s.inject {
		if !s.inject[pri].isEmpty() {
			return true
		}
	}
	for w := range s.local {
		for pri := range s.local[w].d {
			if !s.local[w].d[pri].isEmpty() {
				return true
			}
		}
	}
	return false
}

// spinFind retries find a few times around the Go scheduler before giving
// up — the "spin" half of spin-then-park. Stealing is already a full
// sweep, so a couple of rounds suffice to ride out a producer that is
// between push and notify.
func (s *stealScheduler) spinFind(wid int) *task {
	const spins = 4
	for i := 0; i < spins; i++ {
		if t := s.find(wid); t != nil {
			return t
		}
		if s.closed.Load() {
			return nil
		}
		runtime.Gosched()
	}
	return nil
}

// park blocks wid until a producer or close wakes it. The worker
// registers first and re-checks afterwards: either the racing producer
// sees the registration (and sends a token) or the re-check sees the
// pushed task (and the worker withdraws).
func (s *stealScheduler) park(wid int) {
	s.idleMu.Lock()
	s.idle = append(s.idle, wid)
	s.nidle.Store(int64(len(s.idle)))
	s.idleMu.Unlock()

	if s.closed.Load() || s.anyWork() {
		// Withdraw if still registered; if a notifier already claimed this
		// worker a token is in flight, so fall through and consume it.
		withdrawn := false
		s.idleMu.Lock()
		for i, id := range s.idle {
			if id == wid {
				s.idle = append(s.idle[:i], s.idle[i+1:]...)
				withdrawn = true
				break
			}
		}
		s.nidle.Store(int64(len(s.idle)))
		s.idleMu.Unlock()
		if withdrawn {
			return
		}
	}
	atomic.AddInt64(&s.stats.Parks, 1)
	if s.tr != nil {
		s.tr.record(wid, TraceEvent{Type: TracePark, Ts: s.tr.now()})
	}
	s.parkers[wid].park()
	if s.tr != nil {
		s.tr.record(wid, TraceEvent{Type: TraceUnpark, Ts: s.tr.now()})
	}
}

// drain empties every deque and injector, returning the abandoned tasks so
// the error-path teardown can sweep their activations. Callers must
// guarantee the pool has stopped (post wg.Wait): the steal/pop primitives
// are reused, but the scan assumes no concurrent owner or thief.
func (s *stealScheduler) drain() []*task {
	var out []*task
	for w := range s.local {
		for pri := range s.local[w].d {
			for {
				t, _ := s.local[w].d[pri].steal()
				if t == nil {
					break
				}
				out = append(out, t)
			}
		}
	}
	for pri := range s.inject {
		for {
			t := s.inject[pri].pop()
			if t == nil {
				break
			}
			out = append(out, t)
		}
	}
	return out
}

// reopen readies the scheduler for another run of a reused engine: the
// deques, injectors, parkers, and idle stack all survive (the deques are
// empty at quiescence and drained on the error path), so only the closed
// flag and the tracer binding need refreshing. Stray parker tokens left by
// the close broadcast are swallowed here — a leftover token would merely
// cost one spurious rescan, but consuming it keeps park accounting exact.
func (s *stealScheduler) reopen(tr *tracer) {
	s.closed.Store(false)
	s.tr = tr
	for w := range s.lastVictim {
		s.lastVictim[w] = -1
	}
	s.idleMu.Lock()
	s.idle = s.idle[:0]
	s.nidle.Store(0)
	s.idleMu.Unlock()
	for w := range s.parkers {
		select {
		case <-s.parkers[w].ch:
		default:
		}
	}
}

// close marks the run over and wakes every parked worker. Called at
// quiescence and on error abort; queued tasks are abandoned by design.
func (s *stealScheduler) close() {
	s.closed.Store(true)
	s.idleMu.Lock()
	idle := s.idle
	s.idle = nil
	s.nidle.Store(0)
	s.idleMu.Unlock()
	for _, wid := range idle {
		s.parkers[wid].unpark()
	}
	// Workers that were registering concurrently with the close re-check
	// closed after registering and withdraw; workers already running see
	// closed at the top of their loop.
}
