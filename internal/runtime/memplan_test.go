package runtime

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/operator"
	"repro/internal/opt"
	"repro/internal/value"
)

// planOps extends the fault-suite registry with a pool-allocating fresh
// operator: the block's payload comes from the worker free list when a
// memory plan is active.
func planOps() *operator.Registry {
	r := faultOps()
	r.MustRegister(&operator.Operator{
		Name: "pmkblock", Arity: 1, Fresh: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			n := int(args[0].(value.Int))
			return value.NewBlockStats(ctx.Pool().Floats(n), ctx.BlockStats()), nil
		},
	})
	// pfill is fill with the Fresh annotation: its result is its destructive
	// argument passed through, so ownership survives even when the scalar
	// fill value arrives from an unowned loop variable.
	r.MustRegister(&operator.Operator{
		Name: "pfill", Arity: 2, Destructive: []bool{true, false}, Fresh: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			b := args[0].(*value.Block)
			x := float64(args[1].(value.Int))
			vec := b.Data().(value.FloatVec)
			for i := range vec {
				vec[i] = x
			}
			return args[0], nil
		},
	})
	return r
}

// pooledLoop allocates, fills, reads, and frees a block every iteration —
// with a plan the payload cycles through the worker free list.
const pooledLoop = `
main(n)
  iterate
  {
    i = 0, incr(i)
    total = 0.0, add(total, blocksum(pfill(pmkblock(8), i)))
  } while lt(i, n),
  result total
`

// closureEnvBlocks captures a block in two closure environments and calls
// through a dynamically chosen function value, so the closure call sites
// stay CallClosureNodes and the plan's environment transfer fires.
const closureEnvBlocks = `
main(n)
  let b = fill(mkblock(8), n)
      f1(i) add(float(i), blocksum(b))
      f2(i) add(float(mul(i, 2)), blocksum(b))
      g = if lt(n, 100) then f1 else f2
  in add(g(1), g(2))
`

// TestPlannedMatchesUnplanned is the core soundness property: for every
// program, worker count, and executor mode, a planned run must produce a
// value bit-identical to the unplanned one.
func TestPlannedMatchesUnplanned(t *testing.T) {
	programs := []struct {
		name string
		src  string
		arg  value.Value
	}{
		{"loop", loopBlocks, value.Int(50)},
		{"pooled", pooledLoop, value.Int(50)},
		{"closure-env", closureEnvBlocks, value.Int(3)},
		{"contended", contendedBlocks, nil},
	}
	for _, p := range programs {
		t.Run(p.name, func(t *testing.T) {
			var args []value.Value
			if p.arg != nil {
				args = append(args, p.arg)
			}
			baseline := func(mode Mode) value.Value {
				g := compile(t, p.src, planOps())
				v, err := New(g, Config{Mode: mode, Workers: 1, MaxOps: 1_000_000}).Run(args...)
				if err != nil {
					t.Fatalf("unplanned: %v", err)
				}
				return v
			}
			for _, mode := range []Mode{Real, Simulated} {
				want := baseline(mode)
				for _, workers := range []int{1, 2, 8} {
					g := compile(t, p.src, planOps())
					opt.PlanMemory(g)
					e := New(g, Config{Mode: mode, Workers: workers, MaxOps: 1_000_000})
					got, err := e.Run(args...)
					if err != nil {
						t.Fatalf("mode %v workers %d: %v", mode, workers, err)
					}
					if got != want {
						t.Errorf("mode %v workers %d: planned %v != unplanned %v", mode, workers, got, want)
					}
					st := e.Stats()
					live := int64(len(value.Blocks(got, nil)))
					if st.Blocks.Allocated-st.Blocks.Freed != live {
						t.Errorf("mode %v workers %d: allocated %d freed %d live %d",
							mode, workers, st.Blocks.Allocated, st.Blocks.Freed, live)
					}
				}
			}
		})
	}
}

// TestPlannedCountersFire checks each counter against the workload built to
// trigger it: pooled allocations on the alloc/free loop, elided refcount
// traffic and in-place proofs on the destructive chain, environment-transfer
// elisions on the closure program.
func TestPlannedCountersFire(t *testing.T) {
	run := func(src string, workers int, args ...value.Value) *Stats {
		t.Helper()
		g := compile(t, src, planOps())
		opt.PlanMemory(g)
		e := New(g, Config{Mode: Real, Workers: workers, MaxOps: 1_000_000})
		if _, err := e.Run(args...); err != nil {
			t.Fatalf("run: %v", err)
		}
		return e.Stats()
	}

	st := run(pooledLoop, 1, value.Int(50))
	if st.PooledAllocs == 0 {
		t.Error("pooled loop: PooledAllocs = 0, want free-list hits")
	}
	if st.ElidedReleases == 0 {
		t.Error("pooled loop: ElidedReleases = 0, want statically freed blocks")
	}
	if st.CopiesAvoided == 0 {
		t.Error("pooled loop: CopiesAvoided = 0, want proven in-place destructive updates")
	}
	if st.Blocks.Copies != 0 {
		t.Errorf("pooled loop: Copies = %d, want 0", st.Blocks.Copies)
	}

	st = run(closureEnvBlocks, 2, value.Int(3))
	if st.ElidedRetains == 0 {
		t.Error("closure env: ElidedRetains = 0, want environment-transfer elisions")
	}
}

// TestPlannedStatsString: the memory-plan counter group appears in String()
// only when a plan actually saved something.
func TestPlannedStatsString(t *testing.T) {
	var s Stats
	if got := s.String(); len(got) == 0 || strings.Contains(got, "elided") {
		t.Errorf("zero stats must omit the mem group: %q", got)
	}
	s.PooledAllocs = 3
	if got := s.String(); !strings.Contains(got, "elided") {
		t.Errorf("nonzero PooledAllocs must show the mem group: %q", got)
	}
}

// TestPlannedFaultRetryDeterministic: the plan must not break the retry
// machinery — snapshots still deep-copy pristine inputs, the fault is
// invisible in the output, and nothing leaks.
func TestPlannedFaultRetryDeterministic(t *testing.T) {
	for _, mode := range []Mode{Real, Simulated} {
		for _, workers := range []int{1, 2, 8} {
			g := compile(t, contendedBlocks, planOps())
			opt.PlanMemory(g)
			e := New(g, Config{Mode: mode, Workers: workers, MaxOps: 100000,
				Retry:  RetryPolicy{MaxAttempts: 3},
				Faults: KillOnce(FaultError, "rfill"),
			})
			v, err := e.Run()
			if err != nil {
				t.Fatalf("mode %v workers %d: %v", mode, workers, err)
			}
			if v != value.Float(48) {
				t.Errorf("mode %v workers %d: result = %v, want 48", mode, workers, v)
			}
			st := e.Stats()
			if st.SnapshotCopies == 0 {
				t.Errorf("mode %v workers %d: retry snapshots must still deep-copy under a plan", mode, workers)
			}
			live := int64(len(value.Blocks(v, nil)))
			if st.Blocks.Allocated-st.Blocks.Freed != live {
				t.Errorf("mode %v workers %d: allocated %d freed %d live %d",
					mode, workers, st.Blocks.Allocated, st.Blocks.Freed, live)
			}
		}
	}
}

// TestPlannedSeededFaultRetry drives the planned executor through a seeded
// fault schedule at several worker counts; every recovered run must agree
// with the fault-free value.
func TestPlannedSeededFaultRetry(t *testing.T) {
	g := compile(t, pooledLoop, planOps())
	want, err := New(g, Config{Mode: Real, Workers: 1, MaxOps: 1_000_000}).Run(value.Int(30))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for _, workers := range []int{1, 2, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			g := compile(t, pooledLoop, planOps())
			opt.PlanMemory(g)
			e := New(g, Config{Mode: Real, Workers: workers, MaxOps: 1_000_000,
				Retry:  RetryPolicy{MaxAttempts: 4},
				Faults: SeededFaultPlan(seed, []string{"rinc"}, 10),
			})
			got, err := e.Run(value.Int(30))
			if err != nil {
				t.Fatalf("workers %d seed %d: %v", workers, seed, err)
			}
			if got != want {
				t.Errorf("workers %d seed %d: %v != fault-free %v", workers, seed, got, want)
			}
		}
	}
}

// TestPlannedErrorPathNoLeak: a run that fails with the plan active must
// still satisfy Allocated == Freed — error sweeps bypass the pool and use
// plain releases, but the accounting must balance regardless.
func TestPlannedErrorPathNoLeak(t *testing.T) {
	for _, mode := range []Mode{Real, Simulated} {
		g := compile(t, contendedBlocks, planOps())
		opt.PlanMemory(g)
		e := New(g, Config{Mode: mode, Workers: 4, MaxOps: 100000,
			Retry: RetryPolicy{MaxAttempts: 2},
			Faults: NewFaultPlan(
				Fault{Op: "rfill", Execution: 1, Kind: FaultError},
				Fault{Op: "rfill", Execution: 2, Kind: FaultError},
				Fault{Op: "rfill", Execution: 3, Kind: FaultError},
			),
		})
		_, err := e.Run()
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("mode %v: err = %v, want *RunError", mode, err)
		}
		failedRunLeakCheck(t, e)
	}
}

// TestPlannedBudgetAbortNoLeak exercises the mid-flight teardown with the
// plan active: blocks freed by planned elision before the abort and blocks
// swept by the error path afterward must add up.
func TestPlannedBudgetAbortNoLeak(t *testing.T) {
	g := compile(t, pooledLoop, planOps())
	opt.PlanMemory(g)
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 60})
	_, err := e.Run(value.Int(1000))
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailBudget {
		t.Fatalf("err = %v, want RunError{FailBudget}", err)
	}
	failedRunLeakCheck(t, e)
}
