package runtime

// Profile extraction: turning one run's timing log into the per-operator
// weight map the fusion pass consumes (compile.Options.FuseProfile). This is
// the measurement half of the adaptive loop — calibrate with Timing on,
// extract ProfileWeights, recompile, re-run.

// ProfileWeights aggregates the timing log into mean cost per operator name,
// suitable for compile.Options.FuseProfile. Returns nil when timing was
// disabled or nothing was recorded.
//
// Two normalizations keep a round-tripped profile stable:
//
//   - Simulated-mode entries for unfused operators include the machine's
//     dispatch charge, while entries recorded inside fused supernodes price
//     the operator body only (the saved dispatch is exactly what fusion
//     models). Feeding heads-plus-dispatch back into fusion would make a
//     profiled recompile see different costs than the run it measured, so
//     the dispatch charge is subtracted from unfused entries first.
//   - Means are rounded half-up and floored at 1: a weight of 0 would make
//     an operator look free to the bottom-level computation, inverting
//     tie-breaks against operators the profile never saw (which default
//     to 1).
func (e *Engine) ProfileWeights() map[string]int64 {
	if e.timing == nil {
		return nil
	}
	var dispatch int64
	if e.cfg.Mode == Simulated {
		dispatch = e.cfg.profile().DispatchTicks
	}
	type acc struct {
		total int64
		calls int64
	}
	sums := make(map[string]*acc)
	for _, en := range e.timing.Entries() {
		cost := en.Ticks
		if !en.Fused {
			cost -= dispatch
		}
		if cost < 1 {
			cost = 1
		}
		a := sums[en.Name]
		if a == nil {
			a = &acc{}
			sums[en.Name] = a
		}
		a.total += cost
		a.calls++
	}
	if len(sums) == 0 {
		return nil
	}
	out := make(map[string]int64, len(sums))
	for name, a := range sums {
		w := (a.total + a.calls/2) / a.calls
		if w < 1 {
			w = 1
		}
		out[name] = w
	}
	return out
}

// PoolDemand merges the per-worker block pools' recycle-offer counts by size
// class. Returns nil for programs compiled without a memory plan. The
// adaptive loop turns this into Config.PoolClassCaps for the tuned engine.
func (e *Engine) PoolDemand() []int64 {
	if e.memStates == nil {
		return nil
	}
	var out []int64
	for _, m := range e.memStates {
		d := m.pool.ClassDemand()
		if out == nil {
			out = d
			continue
		}
		for i, v := range d {
			out[i] += v
		}
	}
	return out
}
