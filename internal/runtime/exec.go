package runtime

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/value"
)

// worker is the execution context shared by both executors: processor
// identity, the per-execution charge accumulator operators write through
// operator.Context, and the scheduling callback the executor provides.
type worker struct {
	e    *Engine
	proc int

	// sched is called for every node that becomes runnable while this
	// worker executes.
	sched func(a *activation, n *graph.Node)
	// delivered, when non-nil (simulated mode), is called for every value
	// delivery so the scheduler can stamp each consumer's earliest start
	// with the producer's completion time.
	delivered func(a *activation, nodeID int)
	// tr, when non-nil, receives trace events from this worker's hot path
	// (deliveries, tail calls, block copies). A copy of e.tracer so the
	// disabled case is a single nil check.
	tr *tracer

	// mem is this worker's memory-plan state (free list, elision counters),
	// nil when the program was not planned — every planned code path is
	// gated on this one field. Shadow workers keep it nil so abandoned
	// goroutines can never touch a live free list.
	mem *memState

	// blocks, when non-nil, overrides the engine-wide counters this
	// worker's operators reach through Context.BlockStats. Shadow workers
	// carry a private sink here so that a goroutine abandoned by a timeout
	// can never write block accounting into the engine — which may since
	// have been Reset() and reused for a different run.
	blocks *value.BlockStats

	// charge accumulates Context.Charge units of the node being executed.
	charge int64
	// localWords/remoteWords price the executed node's block traffic for
	// the simulated machine's memory model (copied words count as local
	// writes).
	localWords, remoteWords int64

	// ready is scratch space complete() uses to batch newly-runnable nodes
	// so a fused program can release them in bottom-level order.
	ready []*graph.Node
	// lifo marks a scheduler whose local queue pops newest-first (the
	// work-stealing deque); flushReady then pushes in reverse so pops come
	// out in bottom-level order.
	lifo bool
	// prodID, under an active affinity plan, is the template-node id whose
	// output complete() is currently delivering; flushReady compares it
	// against each ready node's AffPreferred to tag producer-preferred
	// wakeups. Only meaningful inside complete (engine affinity on).
	prodID int32
	// pref is set by schedReady just before each w.sched call when the
	// ready node prefers the completing producer; the real executor's
	// sched closure copies it into the task's provenance.
	pref bool
	// selfSlot, set before each task execution by the real worker loop,
	// lets the first local push of that execution skip the notifyOne
	// self-wake: the pusher is guaranteed to rescan its own deques before
	// parking, so one pushed task per execution needs no wake token.
	selfSlot bool
	// taskStolen/taskAff mirror the provenance of the task currently
	// executing (timing enabled only), so fused per-member entries carry
	// the same stolen/affinity marks as top-level ones.
	taskStolen, taskAff bool
	// base is the real executor's run start, the zero point for the
	// per-member timing entries a fused dispatch records.
	base time.Time
	// simClock, in simulated mode, points at the scheduler's virtual clock
	// so a fused dispatch can advance it across members, giving sub-events
	// and per-member timings exact virtual timestamps.
	simClock *int64
}

// Charge implements operator.Context. It only bumps the worker-local
// accumulator; execNode flushes the dispatch's total into the shared stats
// counter once, so a fused chain of charging operators costs one atomic
// instead of one per member.
func (w *worker) Charge(units int64) {
	w.charge += units
}

// BlockStats implements operator.Context: the worker's private sink when
// one is installed (shadow workers), the engine's counters otherwise.
func (w *worker) BlockStats() *value.BlockStats {
	if w.blocks != nil {
		return w.blocks
	}
	return &w.e.stats.Blocks
}

// Processor implements operator.Context.
func (w *worker) Processor() int { return w.proc }

// Pool implements operator.Context: the worker's block free list when a
// memory plan is active, nil otherwise (value.BlockPool allocation helpers
// are nil-safe, so operators call through unconditionally).
func (w *worker) Pool() *value.BlockPool {
	if w.mem == nil {
		return nil
	}
	return &w.mem.pool
}

// traceLabel names a node for trace output: the operator or callee name, or
// the node kind for unnamed plumbing nodes.
func traceLabel(n *graph.Node) string {
	if n.Name != "" {
		return n.Name
	}
	return n.Kind.String()
}

// nodeError wraps a node failure in the structured RunError: position,
// node, enclosing template, activation path, and attempt count, with the
// failure kind recovered from the cause (panic, timeout, cancellation).
func (e *Engine) nodeError(a *activation, n *graph.Node, err error, attempts int) error {
	re := &RunError{
		Kind:     FailError,
		Op:       traceLabel(n),
		Template: a.tmpl.Name,
		Pos:      n.Pos.String(),
		Path:     activationPath(a),
		Attempts: attempts,
		Err:      err,
	}
	switch x := err.(type) {
	case *panicError:
		re.Kind = FailPanic
		re.Stack = x.stack
	case *opTimeoutError:
		re.Kind = FailTimeout
	default:
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			re.Kind = FailCanceled
		}
	}
	return re
}

// failNode is the common node error exit: the node consumed nothing, so
// every input reference is released and the slots cleared before the
// structured error is built.
func (e *Engine) failNode(a *activation, n *graph.Node, ins []value.Value, err error) error {
	for _, in := range ins {
		value.Release(in, &e.stats.Blocks)
	}
	clearInputs(ins)
	return e.nodeError(a, n, err, 1)
}

// clearInputs nils consumed input slots (ins aliases the activation
// buffer). Every execution path clears its inputs before complete/expand —
// which may retire and recycle the activation — so the error-path teardown
// sweep only ever sees references that are still owned by a waiting node.
func clearInputs(ins []value.Value) {
	for i := range ins {
		ins[i] = nil
	}
}

// callOperator invokes an operator, converting a panic in the embedded Go
// code into an ordinary execution error carrying the captured stack.
// Operators are user code; a bug in one sub-computation must fail the
// program deterministically rather than crash the whole engine and its
// sibling workers. An armed fault fires first — before the operator body
// has touched anything — which is what makes an injected failure exactly
// re-runnable.
func callOperator(w *worker, n *graph.Node, ins []value.Value, f *Fault) (result value.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	if f != nil {
		if ferr := f.fire(); ferr != nil {
			return nil, ferr
		}
	}
	return n.Op.Fn(w, ins)
}

// Shadow-call publication states: the dispatching worker and the shadow
// goroutine race one CAS from pending, so exactly one side wins — the
// waiter by abandoning the call, or the shadow by publishing its result.
const (
	shadowPending int32 = iota
	shadowAbandoned
	shadowCompleted
)

// callOperatorBounded runs one operator attempt under a deadline. The body
// runs on its own goroutine with a detached shadow worker, a private
// argument slice, and a private block-stats sink: if the deadline fires the
// goroutine is abandoned (Go cannot preempt embedded code), and the
// isolation guarantees the stray goroutine cannot race with the worker's
// per-node state, with a retry rewriting the activation buffer, or with the
// engine's counters. Publication is arbitrated by a CAS guarded by the
// engine's run-generation counter: an abandoned operator that unwinds after
// the engine has been Reset() — and possibly reused for a later run — sees
// a stale generation and discards its result instead of writing stats or
// blocks into an engine that no longer owns it. Charges and block
// accounting merge back on the dispatching worker, and only on completion.
func (e *Engine) callOperatorBounded(w *worker, n *graph.Node, ins []value.Value, f *Fault, limit time.Duration) (value.Value, error) {
	type opResult struct {
		v   value.Value
		err error
	}
	sink := &value.BlockStats{}
	sw := &worker{e: e, proc: w.proc, blocks: sink}
	argv := make([]value.Value, len(ins))
	copy(argv, ins)
	gen := e.gen.Load()
	state := &atomic.Int32{}
	ch := make(chan opResult, 1)
	go func() {
		v, err := callOperator(sw, n, argv, f)
		// Publish only while the dispatching worker is still waiting AND the
		// engine is still in the same run generation. A lost CAS or a stale
		// generation means this call was abandoned: drop the result on the
		// floor. Its block allocations were counted against the private sink,
		// never the engine's, so the engine's Allocated == Freed invariant is
		// untouched by the discard.
		if e.gen.Load() == gen && state.CompareAndSwap(shadowPending, shadowCompleted) {
			ch <- opResult{v, err}
		}
	}()
	accept := func(r opResult) (value.Value, error) {
		// Merging into w.charge routes the shadow's units through execNode's
		// end-of-dispatch stats flush. The private block accounting merges
		// into the engine's counters, and blocks the operator allocated
		// against the private sink re-home to the engine's so their eventual
		// Freed lands where Allocated was just credited.
		w.charge += sw.charge
		w.localWords += sw.localWords
		w.remoteWords += sw.remoteWords
		e.stats.Blocks.Add(*sink)
		value.RebindStats(r.v, sink, &e.stats.Blocks)
		return r.v, r.err
	}
	timer := time.NewTimer(limit)
	defer timer.Stop()
	select {
	case r := <-ch:
		return accept(r)
	case <-timer.C:
		if !state.CompareAndSwap(shadowPending, shadowAbandoned) {
			// The operator completed inside the race window; its result is
			// already in the channel — take it instead of reporting a timeout
			// for work that actually finished.
			return accept(<-ch)
		}
		atomic.AddInt64(&e.stats.OpTimeouts, 1)
		return nil, &opTimeoutError{op: n.Op.Name, limit: limit}
	case <-e.ctxDone:
		if !state.CompareAndSwap(shadowPending, shadowAbandoned) {
			return accept(<-ch)
		}
		return nil, e.runCtx.Err()
	}
}

// invokeOp dispatches one operator attempt: it draws the next armed fault
// for this operator (if a plan is configured) and routes through the
// deadline wrapper when a timeout bound applies. A per-operator Timeout
// overrides Config.OpTimeout; a negative one disables the bound entirely.
func (e *Engine) invokeOp(w *worker, a *activation, n *graph.Node, ins []value.Value) (value.Value, error) {
	var f *Fault
	if e.cfg.Faults != nil {
		if f = e.cfg.Faults.next(n.Op.Name); f != nil {
			atomic.AddInt64(&e.stats.FaultsInjected, 1)
			if w.tr != nil {
				w.tr.record(w.proc, TraceEvent{Type: TraceFault, Ts: w.tr.now(),
					Act: a.seq, Node: int32(n.ID), Name: n.Name, Arg: f.Execution})
			}
		}
	}
	limit := e.cfg.OpTimeout
	if n.Op.Timeout != 0 {
		limit = n.Op.Timeout
	}
	if limit <= 0 {
		return callOperator(w, n, ins, f)
	}
	return e.callOperatorBounded(w, n, ins, f, limit)
}

// execOp runs one operator node: fault injection, the optional deadline,
// and deterministic retry. While attempts remain for a retryable operator,
// each attempt runs on deep copies of the destructively-declared
// arguments, keeping the originals pristine — §8 guarantees an operator
// mutates only blocks it exclusively owns, so a failed attempt's damage is
// confined to its copies and the re-run sees bit-identical inputs. The
// final (or only) attempt runs the ordinary copy-on-write protocol in
// place, so a run with retry configured but no failures does no extra
// copying beyond the snapshots of attempts that had successors.
func (e *Engine) execOp(w *worker, a *activation, n *graph.Node, ins []value.Value) error {
	atomic.AddInt64(&e.stats.OperatorsRun, 1)
	if e.cfg.Mode == Simulated {
		w.touchInputs(ins)
	}
	maxAttempts := 1
	if e.cfg.Retry.enabled() && n.Op.CanRetry() {
		maxAttempts = e.cfg.Retry.MaxAttempts
	}
	// pristine[i] != nil marks ins[i] as an attempt copy whose untouched
	// original is pristine[i].
	var pristine []value.Value
	for attempt := 1; ; attempt++ {
		if attempt < maxAttempts {
			var snaps int64
			for i := range ins {
				if !n.Op.MayModify(i) {
					continue
				}
				if pristine == nil {
					pristine = make([]value.Value, len(ins))
				}
				if pristine[i] == nil {
					pristine[i] = ins[i]
				}
				cp, words := snapshotValue(pristine[i], &e.stats.Blocks, &snaps)
				ins[i] = cp
				w.localWords += int64(words)
			}
			if snaps > 0 {
				atomic.AddInt64(&e.stats.SnapshotCopies, snaps)
			}
		} else {
			// Restore any pristine originals and enforce the sole-reference
			// rule in place (§8 rule 2).
			for i := range ins {
				if pristine != nil && pristine[i] != nil {
					ins[i] = pristine[i]
					pristine[i] = nil
				}
				if !n.Op.MayModify(i) {
					continue
				}
				if w.mem != nil && i < len(n.MemOwnedArgs) && n.MemOwnedArgs[i] {
					// The plan proves this value exclusively owned on arrival:
					// Writable would take the in-place path on every block, so
					// the walk (and its atomic loads) is skipped outright.
					w.mem.copiesAvoided += value.CountBlocks(ins[i])
					continue
				}
				nv, copied := makeWritable(ins[i], &e.stats.Blocks)
				ins[i] = nv
				w.localWords += int64(copied)
				if w.tr != nil && copied > 0 {
					w.tr.record(w.proc, TraceEvent{Type: TraceBlockCopy, Ts: w.tr.now(),
						Act: a.seq, Node: int32(n.ID), Arg: int64(copied), Name: n.Name})
				}
			}
		}
		var memBefore int64
		if w.mem != nil && w.tr != nil {
			memBefore = w.mem.elidedReleases + w.mem.pool.Hits()
		}
		result, err := e.invokeOp(w, a, n, ins)
		if err == nil {
			if result == nil {
				result = value.Null{}
			}
			if e.cfg.Mode == Simulated {
				w.homeValue(result)
			}
			if w.mem != nil {
				result = e.settlePlanned(w, n, ins, result)
				if w.tr != nil {
					if delta := w.mem.elidedReleases + w.mem.pool.Hits() - memBefore; delta > 0 {
						w.tr.record(w.proc, TraceEvent{Type: TraceMemElide, Ts: w.tr.now(),
							Act: a.seq, Node: int32(n.ID), Name: n.Name, Arg: delta})
					}
				}
			} else {
				transferRefs(ins, result, &e.stats.Blocks)
			}
			// The attempt consumed its (copied) inputs; the pristine
			// originals held back for a retry are now surplus.
			for i := range pristine {
				if pristine[i] != nil {
					value.Release(pristine[i], &e.stats.Blocks)
					pristine[i] = nil
				}
			}
			clearInputs(ins)
			e.complete(w, a, n, result)
			return nil
		}
		if attempt < maxAttempts && retryable(err) {
			atomic.AddInt64(&e.stats.Retries, 1)
			if w.tr != nil {
				w.tr.record(w.proc, TraceEvent{Type: TraceRetry, Ts: w.tr.now(),
					Act: a.seq, Node: int32(n.ID), Name: n.Name, Arg: int64(attempt)})
			}
			// Drop the (possibly half-mutated) attempt copies; the pristine
			// originals take their place for the next attempt.
			for i := range pristine {
				if pristine[i] != nil {
					value.Release(ins[i], &e.stats.Blocks)
					ins[i] = pristine[i]
				}
			}
			if e.cfg.Retry.Backoff > 0 {
				time.Sleep(e.cfg.Retry.Backoff)
			}
			continue
		}
		// Out of attempts (or a non-retryable failure): the node consumed
		// nothing — release every input reference, attempt copies and held
		// pristine originals alike, so the teardown sweep finds no stale
		// slots.
		for i := range ins {
			value.Release(ins[i], &e.stats.Blocks)
			if pristine != nil && pristine[i] != nil {
				value.Release(pristine[i], &e.stats.Blocks)
			}
		}
		clearInputs(ins)
		return e.nodeError(a, n, err, attempt)
	}
}

// snapshotValue deep-copies every block reachable from v into a fresh,
// exclusively-owned block (affinity preserved), leaving v and its
// reference counts untouched; copies counts the blocks duplicated.
// Closures are shared rather than copied — they are never destructively
// modified — but the snapshot retains their environment so the attempt
// copy owns its own references and settle/release stays balanced.
func snapshotValue(v value.Value, st *value.BlockStats, copies *int64) (value.Value, int) {
	switch x := v.(type) {
	case *value.Block:
		nb := value.NewBlockStats(x.Data().Copy(), st)
		nb.SetAffinity(x.Affinity())
		*copies++
		return nb, nb.Size()
	case value.Tuple:
		out := make(value.Tuple, len(x))
		words := 0
		for i, el := range x {
			var ew int
			out[i], ew = snapshotValue(el, st, copies)
			words += ew
		}
		return out, words
	case *value.Closure:
		value.Retain(x, st)
		return x, 0
	default:
		return v, 0
	}
}

// execNode runs one dispatched node: a fused cluster head executes its
// whole supernode as a straight-line sequence, anything else runs alone.
func (e *Engine) execNode(w *worker, a *activation, n *graph.Node) error {
	w.charge, w.localWords, w.remoteWords = 0, 0, 0
	var err error
	if c := n.FuseCluster; c != nil {
		err = e.execFused(w, a, c)
	} else {
		err = e.execNode1(w, a, n)
	}
	if w.charge != 0 {
		atomic.AddInt64(&e.stats.ChargedUnits, w.charge)
	}
	return err
}

// execNode1 runs one node. It performs the destructive-argument copy
// protocol, executes the node, settles block references, and delivers the
// produced value (or spawns a child activation for subgraph expansions).
// Callers must have reset the worker's charge accumulators.
func (e *Engine) execNode1(w *worker, a *activation, n *graph.Node) error {
	ops := atomic.AddInt64(&e.stats.OpsExecuted, 1)
	if err := e.checkOps(a, ops); err != nil {
		return err
	}
	return e.execBody(w, a, n)
}

// checkOps enforces the operation budget and polls cancellation at operator
// boundaries, amortized across executions; the disabled cases cost one nil
// check each. ops is the post-increment OpsExecuted count. Fused supernodes
// call it once per cluster with a batched count, so the budget may overshoot
// by at most the cluster size before the error surfaces.
func (e *Engine) checkOps(a *activation, ops int64) error {
	if e.maxOps > 0 && ops > e.maxOps {
		return errBudget(e.maxOps, activationPath(a))
	}
	if e.ctxDone != nil && ops&63 == 0 {
		select {
		case <-e.ctxDone:
			return &RunError{Kind: FailCanceled, Path: activationPath(a), Err: e.runCtx.Err()}
		default:
		}
	}
	return nil
}

// execBody dispatches on the node kind; accounting (OpsExecuted, budget,
// cancellation) is the caller's job so fused clusters can batch it.
func (e *Engine) execBody(w *worker, a *activation, n *graph.Node) error {
	ins := a.inputs(n)

	switch n.Kind {
	case graph.OpNode:
		return e.execOp(w, a, n, ins)

	case graph.TupleNode:
		result := make(value.Tuple, len(ins))
		copy(result, ins)
		// Every input occurrence appears in the result: pure transfer.
		clearInputs(ins)
		e.complete(w, a, n, result)
		return nil

	case graph.DetupleNode:
		tup, ok := ins[0].(value.Tuple)
		if !ok {
			return e.failNode(a, n, ins, fmt.Errorf("decomposing %s value; multiple-value package required", ins[0].Kind()))
		}
		if n.Index >= len(tup) {
			return e.failNode(a, n, ins, fmt.Errorf("package has %d values, need %d", len(tup), n.Index+1))
		}
		result := tup[n.Index]
		if n.SpreadConsumer {
			// The producer split ownership: this node owns exactly element
			// Index; the designated sibling releases uncovered elements.
			if n.CoveredIdx != nil {
				ownedEls := w.mem != nil && len(n.MemOwnedArgs) > 0 && n.MemOwnedArgs[0]
				for j, el := range tup {
					if !intsContain(n.CoveredIdx, j) {
						if w.mem != nil {
							w.releaseDying(el, ownedEls)
						} else {
							value.Release(el, &e.stats.Blocks)
						}
					}
				}
			}
		} else if w.mem != nil {
			e.settlePlanned(w, n, ins, result)
		} else {
			transferRefs(ins, result, &e.stats.Blocks)
		}
		clearInputs(ins)
		e.complete(w, a, n, result)
		return nil

	case graph.MakeClosureNode:
		env := make([]value.Value, len(ins))
		copy(env, ins)
		result := &value.Closure{Fn: n.Callee, Env: env}
		clearInputs(ins)
		e.complete(w, a, n, result)
		return nil

	case graph.CallNode:
		args := make([]value.Value, len(ins))
		copy(args, ins)
		clearInputs(ins)
		return e.expand(w, a, n, n.Callee, args)

	case graph.CallClosureNode:
		cl, ok := ins[0].(*value.Closure)
		if !ok {
			return e.failNode(a, n, ins, fmt.Errorf("calling %s value; function required", ins[0].Kind()))
		}
		callee, ok := cl.Fn.(*graph.Template)
		if !ok {
			return e.failNode(a, n, ins, fmt.Errorf("closure has no executable template"))
		}
		if got := len(ins) - 1; got != callee.ParamCount() {
			return e.failNode(a, n, ins, fmt.Errorf("function %s expects %d arguments, got %d",
				callee.Name, callee.ParamCount(), got))
		}
		args := make([]value.Value, 0, len(ins)-1+len(cl.Env))
		args = append(args, ins[1:]...)
		if n.MemTransferEnv && w.mem != nil {
			// This node holds one reference-share of every env value (via the
			// closure); retaining each for the child and then releasing the
			// closure is a net-zero pair. Transfer the share to the child
			// directly. Always sound — other consumers of the same closure
			// hold their own shares.
			var c int64
			for _, envV := range cl.Env {
				args = append(args, envV)
				c += value.CountBlocks(envV)
			}
			w.mem.elidedRetains += c
			w.mem.elidedReleases += c
			if w.tr != nil && c > 0 {
				w.tr.record(w.proc, TraceEvent{Type: TraceMemElide, Ts: w.tr.now(),
					Act: a.seq, Node: int32(n.ID), Name: traceLabel(n), Arg: 2 * c})
			}
		} else {
			for _, envV := range cl.Env {
				value.Retain(envV, &e.stats.Blocks) // the child owns its copy
				args = append(args, envV)
			}
			value.Release(cl, &e.stats.Blocks) // drops the closure's env refs
		}
		clearInputs(ins)
		return e.expand(w, a, n, callee, args)

	case graph.CondNode:
		truth, err := value.Truthy(ins[0])
		if err != nil {
			return e.failNode(a, n, ins, err)
		}
		if w.mem != nil {
			w.releaseDying(ins[0], len(n.MemOwnedArgs) > 0 && n.MemOwnedArgs[0])
		} else {
			value.Release(ins[0], &e.stats.Blocks)
		}
		branch := n.Else
		if truth {
			branch = n.Then
		}
		args := make([]value.Value, len(ins)-1)
		copy(args, ins[1:])
		clearInputs(ins)
		return e.expand(w, a, n, branch, args)

	default:
		return e.failNode(a, n, ins, fmt.Errorf("internal: node kind %s reached the scheduler", n.Kind))
	}
}

// expand creates a child activation of callee for subgraph-expansion node n
// (call, call-closure, or conditional branch). Whenever the expanding node
// is the template's result and feeds no other consumer, the parent's
// continuation transfers to the child and the parent's buffers become
// reusable immediately — the runtime's O(1) execution of tail recursion
// (§7). This applies to conditional expansions too, so the hidden loop
// templates that iterate lowers to keep a constant number of live
// activations regardless of trip count.
func (e *Engine) expand(w *worker, a *activation, n *graph.Node, callee *graph.Template, args []value.Value) error {
	if callee == nil {
		return e.failNode(a, n, args, fmt.Errorf("internal: unlinked callee"))
	}
	if len(args) != callee.NumArgs() {
		return e.failNode(a, n, args, fmt.Errorf("internal: %s expects %d activation arguments, got %d",
			callee.Name, callee.NumArgs(), len(args)))
	}
	child := e.acquire(w.proc, callee)
	e.stats.noteLive(1, int64(callee.ActivationWords()))
	if len(n.Out) == 0 && n.ID == a.tmpl.Result && !a.delegated.Load() {
		child.cont = a.cont
		a.delegated.Store(true)
		atomic.AddInt64(&e.stats.TailCalls, 1)
		if w.tr != nil {
			w.tr.record(w.proc, TraceEvent{Type: TraceTailCall, Ts: w.tr.now(),
				Act: child.seq, Tmpl: callee.Name, Name: n.Name})
		}
		e.initActivation(w, child, args)
		e.finishNode(a)
		return nil
	}
	child.cont = continuation{act: a, node: n}
	e.initActivation(w, child, args)
	return nil
}

// initActivation seeds parameters and constants (never scheduled) and
// enqueues every node that is runnable from the start.
func (e *Engine) initActivation(w *worker, a *activation, args []value.Value) {
	// Start-runnable nodes have no completing producer; clear any
	// preferred-wakeup tag left by an earlier flushReady on this worker.
	w.pref = false
	for _, n := range a.tmpl.Nodes {
		if n.Fused {
			// Members never schedule individually; a cluster with no
			// external inputs is runnable from the start via its head.
			if c := n.FuseCluster; c != nil && c.ExtIn == 0 {
				w.sched(a, n)
			}
			continue
		}
		if n.NIn != 0 {
			continue
		}
		switch n.Kind {
		case graph.ParamNode:
			e.complete(w, a, n, args[n.Index])
		case graph.ConstNode:
			e.complete(w, a, n, n.Const)
		default:
			w.sched(a, n)
		}
	}
}

// complete publishes node n's value: it settles fan-out references,
// delivers to each consumer port, and — when n is the template's result —
// bubbles the value through the continuation chain iteratively.
func (e *Engine) complete(w *worker, a *activation, n *graph.Node, v value.Value) {
	for {
		if e.affinity {
			// Record the delivering producer so flushReady can tag wakeups
			// on its preferred out edge (producer-preferred dispatch).
			w.prodID = int32(n.ID)
		}
		if n.FuseInternalOut {
			// Chain-internal handoff inside a fused supernode: the single
			// consumer is the next member, already dispatched as part of this
			// straight-line sequence. The value lands in its input slot with
			// no counter decrement, no retain (one consumer), and no
			// ready-queue round trip. Internal-out nodes are never the result
			// and never Spread (fusion excludes both).
			// The remaining-counter decrement is deferred: execFused batches
			// all internal members' decrements into one atomic applied
			// before the tail runs.
			edge := n.Out[0]
			off, _ := a.tmpl.Layout()
			a.buf[off[edge.To]+edge.Port] = v
			if w.tr != nil {
				w.tr.record(w.proc, TraceEvent{Type: TraceDeliver, Ts: w.tr.now(),
					Act: a.seq, Node: int32(edge.To)})
			}
			return
		}
		if n.Spread {
			// Ownership of the package's elements is split among the
			// consuming detuple nodes; no retention multiplier applies.
			for _, edge := range n.Out {
				e.deliverEdge(w, a, edge, v)
			}
			e.flushReady(w, a)
			e.finishNode(a) // Spread producers are never the result node
			return
		}
		isResult := n.ID == a.tmpl.Result && !a.delegated.Load()
		consumers := len(n.Out)
		if isResult {
			consumers++
		}
		switch {
		case consumers == 0:
			if w.mem != nil {
				w.releaseDying(v, n.MemOwned)
			} else {
				value.Release(v, &e.stats.Blocks)
			}
		default:
			for i := 1; i < consumers; i++ {
				value.Retain(v, &e.stats.Blocks)
			}
		}
		for _, edge := range n.Out {
			e.deliverEdge(w, a, edge, v)
		}
		e.flushReady(w, a)
		if !isResult {
			e.finishNode(a)
			return
		}
		cont := a.cont
		e.finishNode(a)
		if cont.act == nil {
			e.finish(v)
			return
		}
		a, n = cont.act, cont.node
	}
}

// deliverEdge delivers v along one out edge. Deliveries to fused members
// redirect the ready decrement to the cluster head; a node (or cluster)
// that became runnable is batched on w.ready for flushReady.
func (e *Engine) deliverEdge(w *worker, a *activation, edge graph.Edge, v value.Value) {
	gate := edge.To
	if tn := a.tmpl.Nodes[edge.To]; tn.Fused {
		gate = tn.FuseHead
	}
	if w.delivered != nil {
		w.delivered(a, gate)
	}
	if w.tr != nil {
		w.tr.record(w.proc, TraceEvent{Type: TraceDeliver, Ts: w.tr.now(),
			Act: a.seq, Node: int32(edge.To)})
	}
	if a.deliver(edge.To, edge.Port, gate, v) {
		w.ready = append(w.ready, a.tmpl.Nodes[gate])
	}
}

// flushReady schedules the nodes deliverEdge batched. Unfused programs
// release them in delivery order — byte-identical scheduling to the
// unbatched path — while fused programs order simultaneously-ready nodes by
// static bottom level so the longest remaining chain is pulled first (for a
// LIFO local deque the pushes are reversed so pops come out in that order).
func (e *Engine) flushReady(w *worker, a *activation) {
	ready := w.ready
	if len(ready) == 0 {
		return
	}
	if !e.fused || len(ready) == 1 {
		for _, n := range ready {
			e.schedReady(w, a, n)
		}
	} else {
		// Stable insertion sort, descending bottom level: ready sets are
		// tiny (fan-out of one node) and ties keep delivery order.
		for i := 1; i < len(ready); i++ {
			for j := i; j > 0 && ready[j].BLevel > ready[j-1].BLevel; j-- {
				ready[j], ready[j-1] = ready[j-1], ready[j]
			}
		}
		if e.affinity {
			// Producer-preferred dispatch: the consumer on the completing
			// node's preferred edge moves to the pop-first slot so it runs
			// next on this worker, inheriting its block hot. Heavy-tier
			// nodes win over light ones; everything else keeps the
			// bottom-level order. Advisory only — membership of the ready
			// set is untouched, so results cannot change.
			best := -1
			for i, n := range ready {
				if n.AffPreferred >= 0 && int32(n.AffPreferred) == w.prodID {
					if best < 0 || (n.AffHeavy && !ready[best].AffHeavy) {
						best = i
					}
				}
			}
			if best > 0 {
				n := ready[best]
				copy(ready[1:best+1], ready[:best])
				ready[0] = n
			}
		}
		if w.lifo {
			for i := len(ready) - 1; i >= 0; i-- {
				e.schedReady(w, a, ready[i])
			}
		} else {
			for _, n := range ready {
				e.schedReady(w, a, n)
			}
		}
	}
	w.ready = ready[:0]
}

// schedReady hands one ready node to the worker's scheduler, tagging it
// first (under an active affinity plan) as producer-preferred when the
// node's AffPreferred edge is the one just completed. The real executor's
// sched closure copies w.pref into the task's provenance; other executors
// ignore it.
func (e *Engine) schedReady(w *worker, a *activation, n *graph.Node) {
	if e.affinity {
		w.pref = n.AffPreferred >= 0 && int32(n.AffPreferred) == w.prodID
	}
	w.sched(a, n)
}

// finishNode retires one node; the last retirement recycles the activation.
func (e *Engine) finishNode(a *activation) {
	if atomic.AddInt32(&a.remaining, -1) == 0 {
		e.stats.noteLive(-1, -int64(a.tmpl.ActivationWords()))
		e.release(a)
	}
}

// finishNodes applies k node completions at once — the batched form of
// finishNode used by fused supernodes for their internal members.
func (e *Engine) finishNodes(a *activation, k int32) {
	if k == 0 {
		return
	}
	if atomic.AddInt32(&a.remaining, -k) == 0 {
		e.stats.noteLive(-1, -int64(a.tmpl.ActivationWords()))
		e.release(a)
	}
}

// cleanupAfterError releases every block reference a failed run still
// holds: the buffered inputs of live activations reachable from the
// abandoned ready-queue tasks, the failing activation, the root, and each
// of their continuation ancestors — plus any result value produced before
// the failure won the race. Every live activation either has abandoned
// queue work or is an ancestor (via cont) of an activation that does, so
// the sweep closes over the live set; the exception is an activation
// stalled forever below a true deadlock, which only a compiler bug can
// produce. Called single-threaded after the run has quiesced; retired
// activations are safe to visit because every execution path clears its
// consumed input slots.
func (e *Engine) cleanupAfterError(pending []*task) {
	seen := make(map[*activation]bool)
	sweep := func(a *activation) {
		for cur := a; cur != nil && !seen[cur]; cur = cur.cont.act {
			seen[cur] = true
			off, _ := cur.tmpl.Layout()
			for _, n := range cur.tmpl.Nodes {
				for p := 0; p < n.NIn; p++ {
					slot := off[n.ID] + p
					v := cur.buf[slot]
					if v == nil {
						continue
					}
					cur.buf[slot] = nil
					// A Spread producer stores the same package in every
					// consumer port with its ownership split: this port owns
					// element Index (plus the uncovered elements when it is
					// the designated sibling), never the whole tuple.
					if tup, ok := v.(value.Tuple); ok && n.SpreadConsumer {
						if n.Index < len(tup) {
							value.Release(tup[n.Index], &e.stats.Blocks)
						}
						if n.CoveredIdx != nil {
							for j, el := range tup {
								if !intsContain(n.CoveredIdx, j) {
									value.Release(el, &e.stats.Blocks)
								}
							}
						}
						continue
					}
					value.Release(v, &e.stats.Blocks)
				}
			}
		}
	}
	for _, t := range pending {
		if t != nil {
			sweep(t.act)
		}
	}
	sweep(e.failedAct)
	sweep(e.rootAct)
	if box, ok := e.result.Load().(resultBox); ok && box.v != nil {
		value.Release(box.v, &e.stats.Blocks)
	}
}

// intsContain reports membership in a small sorted slice.
func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
		if x > v {
			return false
		}
	}
	return false
}

// touchInputs prices the block traffic of an OpNode's inputs for the
// simulated memory model and re-homes the blocks to this processor.
func (w *worker) touchInputs(ins []value.Value) {
	proc := int32(w.proc)
	var blocks []*value.Block
	for _, in := range ins {
		blocks = value.Blocks(in, blocks)
	}
	for _, b := range blocks {
		if aff := b.Affinity(); aff == value.NoAffinity || aff == proc {
			w.localWords += int64(b.Size())
		} else {
			w.remoteWords += int64(b.Size())
		}
		b.SetAffinity(proc)
	}
}

// homeValue assigns freshly produced blocks to this processor's cache.
func (w *worker) homeValue(v value.Value) {
	proc := int32(w.proc)
	for _, b := range value.Blocks(v, nil) {
		if b.Affinity() == value.NoAffinity {
			b.SetAffinity(proc)
		}
	}
}
