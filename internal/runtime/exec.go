package runtime

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/value"
)

// worker is the execution context shared by both executors: processor
// identity, the per-execution charge accumulator operators write through
// operator.Context, and the scheduling callback the executor provides.
type worker struct {
	e    *Engine
	proc int

	// sched is called for every node that becomes runnable while this
	// worker executes.
	sched func(a *activation, n *graph.Node)
	// delivered, when non-nil (simulated mode), is called for every value
	// delivery so the scheduler can stamp each consumer's earliest start
	// with the producer's completion time.
	delivered func(a *activation, nodeID int)
	// tr, when non-nil, receives trace events from this worker's hot path
	// (deliveries, tail calls, block copies). A copy of e.tracer so the
	// disabled case is a single nil check.
	tr *tracer

	// charge accumulates Context.Charge units of the node being executed.
	charge int64
	// localWords/remoteWords price the executed node's block traffic for
	// the simulated machine's memory model (copied words count as local
	// writes).
	localWords, remoteWords int64
}

// Charge implements operator.Context.
func (w *worker) Charge(units int64) {
	w.charge += units
	atomic.AddInt64(&w.e.stats.ChargedUnits, units)
}

// BlockStats implements operator.Context.
func (w *worker) BlockStats() *value.BlockStats { return &w.e.stats.Blocks }

// Processor implements operator.Context.
func (w *worker) Processor() int { return w.proc }

// traceLabel names a node for trace output: the operator or callee name, or
// the node kind for unnamed plumbing nodes.
func traceLabel(n *graph.Node) string {
	if n.Name != "" {
		return n.Name
	}
	return n.Kind.String()
}

// runtimeError decorates an error with the failing node's source position.
func runtimeError(n *graph.Node, err error) error {
	return fmt.Errorf("%s: %s: %w", n.Pos, n.Name, err)
}

// callOperator invokes an operator, converting a panic in the embedded Go
// code into an ordinary execution error. Operators are user code; a bug in
// one sub-computation must fail the program deterministically rather than
// crash the whole engine and its sibling workers.
func callOperator(w *worker, n *graph.Node, ins []value.Value) (result value.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("operator panicked: %v", r)
		}
	}()
	return n.Op.Fn(w, ins)
}

// execNode runs one runnable node. It performs the destructive-argument
// copy protocol, executes the node, settles block references, and delivers
// the produced value (or spawns a child activation for subgraph
// expansions).
func (e *Engine) execNode(w *worker, a *activation, n *graph.Node) error {
	ops := atomic.AddInt64(&e.stats.OpsExecuted, 1)
	if e.maxOps > 0 && ops > e.maxOps {
		return fmt.Errorf("delirium: operation budget of %d executions exceeded", e.maxOps)
	}
	w.charge, w.localWords, w.remoteWords = 0, 0, 0
	ins := a.inputs(n)

	switch n.Kind {
	case graph.OpNode:
		atomic.AddInt64(&e.stats.OperatorsRun, 1)
		// Price and re-home the input blocks before execution.
		if e.cfg.Mode == Simulated {
			w.touchInputs(ins)
		}
		// Enforce the sole-reference rule for destructive arguments.
		for i := range ins {
			if n.Op.MayModify(i) {
				nv, copied := makeWritable(ins[i], &e.stats.Blocks)
				ins[i] = nv
				w.localWords += int64(copied)
				if w.tr != nil && copied > 0 {
					w.tr.record(w.proc, TraceEvent{Type: TraceBlockCopy, Ts: w.tr.now(),
						Act: a.seq, Node: int32(n.ID), Arg: int64(copied), Name: n.Name})
				}
			}
		}
		result, err := callOperator(w, n, ins)
		if err != nil {
			return runtimeError(n, err)
		}
		if result == nil {
			result = value.Null{}
		}
		if e.cfg.Mode == Simulated {
			w.homeValue(result)
		}
		transferRefs(ins, result, &e.stats.Blocks)
		e.complete(w, a, n, result)
		return nil

	case graph.TupleNode:
		result := make(value.Tuple, len(ins))
		copy(result, ins)
		// Every input occurrence appears in the result: pure transfer.
		e.complete(w, a, n, result)
		return nil

	case graph.DetupleNode:
		tup, ok := ins[0].(value.Tuple)
		if !ok {
			return runtimeError(n, fmt.Errorf("decomposing %s value; multiple-value package required", ins[0].Kind()))
		}
		if n.Index >= len(tup) {
			return runtimeError(n, fmt.Errorf("package has %d values, need %d", len(tup), n.Index+1))
		}
		result := tup[n.Index]
		if n.SpreadConsumer {
			// The producer split ownership: this node owns exactly element
			// Index; the designated sibling releases uncovered elements.
			if n.CoveredIdx != nil {
				for j, el := range tup {
					if !intsContain(n.CoveredIdx, j) {
						value.Release(el, &e.stats.Blocks)
					}
				}
			}
		} else {
			transferRefs(ins, result, &e.stats.Blocks)
		}
		e.complete(w, a, n, result)
		return nil

	case graph.MakeClosureNode:
		env := make([]value.Value, len(ins))
		copy(env, ins)
		result := &value.Closure{Fn: n.Callee, Env: env}
		e.complete(w, a, n, result)
		return nil

	case graph.CallNode:
		args := make([]value.Value, len(ins))
		copy(args, ins)
		return e.expand(w, a, n, n.Callee, args)

	case graph.CallClosureNode:
		cl, ok := ins[0].(*value.Closure)
		if !ok {
			return runtimeError(n, fmt.Errorf("calling %s value; function required", ins[0].Kind()))
		}
		callee, ok := cl.Fn.(*graph.Template)
		if !ok {
			return runtimeError(n, fmt.Errorf("closure has no executable template"))
		}
		if got := len(ins) - 1; got != callee.ParamCount() {
			return runtimeError(n, fmt.Errorf("function %s expects %d arguments, got %d",
				callee.Name, callee.ParamCount(), got))
		}
		args := make([]value.Value, 0, len(ins)-1+len(cl.Env))
		args = append(args, ins[1:]...)
		for _, envV := range cl.Env {
			value.Retain(envV, &e.stats.Blocks) // the child owns its copy
			args = append(args, envV)
		}
		value.Release(cl, &e.stats.Blocks) // drops the closure's env refs
		return e.expand(w, a, n, callee, args)

	case graph.CondNode:
		truth, err := value.Truthy(ins[0])
		if err != nil {
			return runtimeError(n, err)
		}
		value.Release(ins[0], &e.stats.Blocks)
		branch := n.Else
		if truth {
			branch = n.Then
		}
		args := make([]value.Value, len(ins)-1)
		copy(args, ins[1:])
		return e.expand(w, a, n, branch, args)

	default:
		return runtimeError(n, fmt.Errorf("internal: node kind %s reached the scheduler", n.Kind))
	}
}

// expand creates a child activation of callee for subgraph-expansion node n
// (call, call-closure, or conditional branch). Whenever the expanding node
// is the template's result and feeds no other consumer, the parent's
// continuation transfers to the child and the parent's buffers become
// reusable immediately — the runtime's O(1) execution of tail recursion
// (§7). This applies to conditional expansions too, so the hidden loop
// templates that iterate lowers to keep a constant number of live
// activations regardless of trip count.
func (e *Engine) expand(w *worker, a *activation, n *graph.Node, callee *graph.Template, args []value.Value) error {
	if callee == nil {
		return runtimeError(n, fmt.Errorf("internal: unlinked callee"))
	}
	if len(args) != callee.NumArgs() {
		return runtimeError(n, fmt.Errorf("internal: %s expects %d activation arguments, got %d",
			callee.Name, callee.NumArgs(), len(args)))
	}
	child := e.acquire(w.proc, callee)
	e.stats.noteLive(1, int64(callee.ActivationWords()))
	if len(n.Out) == 0 && n.ID == a.tmpl.Result && !a.delegated.Load() {
		child.cont = a.cont
		a.delegated.Store(true)
		atomic.AddInt64(&e.stats.TailCalls, 1)
		if w.tr != nil {
			w.tr.record(w.proc, TraceEvent{Type: TraceTailCall, Ts: w.tr.now(),
				Act: child.seq, Tmpl: callee.Name, Name: n.Name})
		}
		e.initActivation(w, child, args)
		e.finishNode(a)
		return nil
	}
	child.cont = continuation{act: a, node: n}
	e.initActivation(w, child, args)
	return nil
}

// initActivation seeds parameters and constants (never scheduled) and
// enqueues every node that is runnable from the start.
func (e *Engine) initActivation(w *worker, a *activation, args []value.Value) {
	for _, n := range a.tmpl.Nodes {
		if n.NIn != 0 {
			continue
		}
		switch n.Kind {
		case graph.ParamNode:
			e.complete(w, a, n, args[n.Index])
		case graph.ConstNode:
			e.complete(w, a, n, n.Const)
		default:
			w.sched(a, n)
		}
	}
}

// complete publishes node n's value: it settles fan-out references,
// delivers to each consumer port, and — when n is the template's result —
// bubbles the value through the continuation chain iteratively.
func (e *Engine) complete(w *worker, a *activation, n *graph.Node, v value.Value) {
	for {
		if n.Spread {
			// Ownership of the package's elements is split among the
			// consuming detuple nodes; no retention multiplier applies.
			for _, edge := range n.Out {
				if w.delivered != nil {
					w.delivered(a, edge.To)
				}
				if w.tr != nil {
					w.tr.record(w.proc, TraceEvent{Type: TraceDeliver, Ts: w.tr.now(),
						Act: a.seq, Node: int32(edge.To)})
				}
				if a.deliver(edge.To, edge.Port, v) {
					w.sched(a, a.tmpl.Nodes[edge.To])
				}
			}
			e.finishNode(a) // Spread producers are never the result node
			return
		}
		isResult := n.ID == a.tmpl.Result && !a.delegated.Load()
		consumers := len(n.Out)
		if isResult {
			consumers++
		}
		switch {
		case consumers == 0:
			value.Release(v, &e.stats.Blocks)
		default:
			for i := 1; i < consumers; i++ {
				value.Retain(v, &e.stats.Blocks)
			}
		}
		for _, edge := range n.Out {
			if w.delivered != nil {
				w.delivered(a, edge.To)
			}
			if w.tr != nil {
				w.tr.record(w.proc, TraceEvent{Type: TraceDeliver, Ts: w.tr.now(),
					Act: a.seq, Node: int32(edge.To)})
			}
			if a.deliver(edge.To, edge.Port, v) {
				w.sched(a, a.tmpl.Nodes[edge.To])
			}
		}
		if !isResult {
			e.finishNode(a)
			return
		}
		cont := a.cont
		e.finishNode(a)
		if cont.act == nil {
			e.finish(v)
			return
		}
		a, n = cont.act, cont.node
	}
}

// finishNode retires one node; the last retirement recycles the activation.
func (e *Engine) finishNode(a *activation) {
	if atomic.AddInt32(&a.remaining, -1) == 0 {
		e.stats.noteLive(-1, -int64(a.tmpl.ActivationWords()))
		e.release(a)
	}
}

// intsContain reports membership in a small sorted slice.
func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
		if x > v {
			return false
		}
	}
	return false
}

// touchInputs prices the block traffic of an OpNode's inputs for the
// simulated memory model and re-homes the blocks to this processor.
func (w *worker) touchInputs(ins []value.Value) {
	proc := int32(w.proc)
	var blocks []*value.Block
	for _, in := range ins {
		blocks = value.Blocks(in, blocks)
	}
	for _, b := range blocks {
		if aff := b.Affinity(); aff == value.NoAffinity || aff == proc {
			w.localWords += int64(b.Size())
		} else {
			w.remoteWords += int64(b.Size())
		}
		b.SetAffinity(proc)
	}
}

// homeValue assigns freshly produced blocks to this processor's cache.
func (w *worker) homeValue(v value.Value) {
	proc := int32(w.proc)
	for _, b := range value.Blocks(v, nil) {
		if b.Affinity() == value.NoAffinity {
			b.SetAffinity(proc)
		}
	}
}
