package runtime

import (
	"fmt"
	"strings"
)

// Granularity advisor — structured warnings layered on the critical-path
// analysis. The critpath verdict says *whether* the run is imbalanced; the
// advisor says *which* operators to attack and *why*, in a form tools can
// render ("post_up holds 62% of the critical path at 8 workers — consider
// splitting") and the server can count. The S-Net vs CnC comparison in the
// related work makes the case that granularity choice, not raw scheduling,
// decides coordination-language throughput — the advisor is the system
// telling the user which granularity decision to revisit.

// Advisory severities.
const (
	// AdviseSplit: the operator dominates the path and runs serialized —
	// decomposing it (the paper's §5.2 post_up split) is what buys speedup.
	AdviseSplit = "split"
	// AdviseWatch: the operator dominates the path but still runs wide —
	// more processors help before a decomposition would.
	AdviseWatch = "watch"
)

// Advisory is one structured granularity warning.
type Advisory struct {
	// Verdict is AdviseSplit or AdviseWatch.
	Verdict string
	// Operator is the offending operator name.
	Operator string
	// PathShare is the fraction of the critical path held by the operator's
	// on-path instances; Serialization the fraction of its own total work
	// that sits on the path (1.0 = fully chained).
	PathShare     float64
	Serialization float64
	// Workers is the worker count of the analyzed run (0 if unknown) —
	// context for the rendered message, since a chain that serializes at 8
	// workers may be invisible at 1.
	Workers int
}

// String renders the advisory as the one-line warning the tools print.
func (a Advisory) String() string {
	at := ""
	if a.Workers > 0 {
		at = fmt.Sprintf(" at %d worker%s", a.Workers, plural(a.Workers))
	}
	switch a.Verdict {
	case AdviseSplit:
		return fmt.Sprintf("`%s` holds %.0f%% of the critical path%s and runs %.0f%% serialized — consider splitting it into finer operators",
			a.Operator, a.PathShare*100, at, a.Serialization*100)
	default:
		return fmt.Sprintf("`%s` holds %.0f%% of the critical path%s but runs %.1fx wide — more workers help before a split would",
			a.Operator, a.PathShare*100, at, 1/a.Serialization)
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// Advise derives granularity advisories from the analysis. Operators holding
// at least the dominance threshold of the critical path are reported: as
// AdviseSplit when their work is serialized past the serial threshold (a
// structural bottleneck no processor count fixes), as AdviseWatch otherwise.
// workers is the analyzed run's worker count, carried into the message; pass
// 0 if unknown. Returns nil for a path with no dominant operator.
func (c *CritPath) Advise(workers int) []Advisory {
	if c == nil || c.PathTicks == 0 {
		return nil
	}
	var out []Advisory
	for _, op := range c.Operators {
		share := float64(op.OnPath) / float64(c.PathTicks)
		if share < dominanceThreshold {
			break // Operators is sorted by descending on-path time
		}
		a := Advisory{
			Verdict:       AdviseWatch,
			Operator:      op.Name,
			PathShare:     share,
			Serialization: op.Serialization(),
			Workers:       workers,
		}
		if a.Serialization >= serialThreshold {
			a.Verdict = AdviseSplit
		}
		out = append(out, a)
	}
	return out
}

// RenderAdvisories formats advisories one per line with a "advisory:" prefix,
// the form delprof and delc print. Empty input renders an all-clear line.
func RenderAdvisories(advs []Advisory) string {
	if len(advs) == 0 {
		return "advisory: none — no operator dominates the critical path\n"
	}
	var b strings.Builder
	for _, a := range advs {
		fmt.Fprintf(&b, "advisory: %s\n", a.String())
	}
	return b.String()
}
