package runtime

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/opt"
	"repro/internal/value"
)

// affinitySrc is a block-carrying recursive fan-out: every leaf allocates
// a fresh block, destructively fills it (retryable — a fault target), and
// folds the blocks' sums upward in a fixed graph shape, so the float
// result is bit-identical iff every block was filled and read correctly.
const affinitySrc = `
tree(n)
  if is_equal(n, 0)
  then blocksum(rfill(mkblock(4), 1))
  else add(tree(sub(n, 1)), add(tree(sub(n, 1)), blocksum(rfill(mkblock(8), n))))

main(n) tree(n)
`

// compileAffinity builds affinitySrc with the full optimizing pipeline in
// compile-driver order (memplan -> fuse -> affinity plan).
func compileAffinity(t *testing.T) *graph.Program {
	t.Helper()
	g := compile(t, affinitySrc, faultOps())
	opt.PlanMemory(g)
	opt.FuseGraph(g, nil)
	opt.PlanAffinity(g)
	if !g.AffinityPlanned {
		t.Fatal("AffinityPlanned not set")
	}
	return g
}

// TestAffinityBitIdentity is the tentpole's advisory-only guarantee: with
// the affinity plan compiled in, results are bit-identical across 1/2/8
// workers with hints on and off, composed with fusion, the memory plan,
// and seeded faults under retry.
func TestAffinityBitIdentity(t *testing.T) {
	g := compileAffinity(t)
	var ref string
	for _, workers := range []int{1, 2, 8} {
		for _, hints := range []bool{false, true} {
			name := fmt.Sprintf("w%d/hints=%v", workers, hints)
			cfg := Config{
				Mode: Real, Workers: workers, MaxOps: 5_000_000,
				AffinityHints: hints,
				Retry:         RetryPolicy{MaxAttempts: 3},
				// Each engine needs a private plan: plans keep cursors.
				Faults: SeededFaultPlan(7, []string{"rfill"}, 40),
			}
			e := New(g, cfg)
			v, err := e.Run(value.Int(6))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := fmt.Sprintf("%v", v)
			if ref == "" {
				ref = got
			} else if got != ref {
				t.Fatalf("%s diverged: got %s want %s", name, got, ref)
			}
			st := e.Stats()
			if st.Blocks.Allocated != st.Blocks.Freed {
				t.Fatalf("%s: block leak: allocated %d freed %d", name,
					st.Blocks.Allocated, st.Blocks.Freed)
			}
			if !hints {
				if st.AffinityHits != 0 || st.AffinityMisses != 0 ||
					st.BatchSteals != 0 || st.BatchStolenTasks != 0 {
					t.Fatalf("%s: affinity counters nonzero with hints off: %+v", name, st)
				}
			} else if st.AffinityHits+st.AffinityMisses == 0 {
				t.Fatalf("%s: no preferred dispatches counted on a hinted program", name)
			}
		}
	}
}

// TestAffinityCountersGatedByPlan: hints in the config alone do nothing —
// the program must carry a plan for any affinity machinery to engage.
func TestAffinityCountersGatedByPlan(t *testing.T) {
	g := compile(t, affinitySrc, faultOps())
	opt.PlanMemory(g)
	opt.FuseGraph(g, nil)
	e := New(g, Config{Mode: Real, Workers: 4, MaxOps: 5_000_000, AffinityHints: true})
	if _, err := e.Run(value.Int(5)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.AffinityHits != 0 || st.AffinityMisses != 0 || st.BatchSteals != 0 {
		t.Fatalf("affinity counters engaged without a plan: %+v", st)
	}
}

// TestAffinitySimDeterministic: the simulated executor's hint placement is
// part of the deterministic schedule, so repeated runs agree tick-for-tick.
func TestAffinitySimDeterministic(t *testing.T) {
	g := compileAffinity(t)
	var makespan, hits int64
	for i := 0; i < 3; i++ {
		e := New(g, Config{Mode: Simulated, Workers: 4, MaxOps: 5_000_000, AffinityHints: true})
		if _, err := e.Run(value.Int(6)); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if i == 0 {
			makespan, hits = st.MakespanTicks, st.AffinityHits
			if hits == 0 {
				t.Fatal("simulated placement recorded no affinity hits")
			}
			continue
		}
		if st.MakespanTicks != makespan || st.AffinityHits != hits {
			t.Fatalf("run %d: makespan/hits = %d/%d, want %d/%d",
				i, st.MakespanTicks, st.AffinityHits, makespan, hits)
		}
	}
}

// TestBatchedStealMovesExtras drives the scheduler directly: under
// affinity, a thief's first successful steal grabs up to half the victim's
// visible work (capped) onto its own deque, in one sweep.
func TestBatchedStealMovesExtras(t *testing.T) {
	var stats Stats
	s := newStealScheduler(2, &stats, nil)
	s.affinity = true
	n := &graph.Node{Name: "op"}
	for i := 0; i < 10; i++ {
		s.pushLocalQuiet(1, &task{node: n, from: 1}, PriNormal)
	}
	tk := s.find(0)
	if tk == nil {
		t.Fatal("find found nothing to steal")
	}
	// 10 on the victim: the first steal takes 1, the batch takes half the
	// remaining 9 -> 4 extras, 5 tasks total.
	if stats.Steals != 5 || stats.BatchSteals != 1 || stats.BatchStolenTasks != 5 {
		t.Fatalf("Steals/BatchSteals/BatchStolenTasks = %d/%d/%d, want 5/1/5",
			stats.Steals, stats.BatchSteals, stats.BatchStolenTasks)
	}
	if s.lastVictim[0] != 1 {
		t.Fatalf("lastVictim[0] = %d, want 1", s.lastVictim[0])
	}
	// The extras are on the thief's own deque now: the next finds must pop
	// locally without another steal.
	for i := 0; i < 4; i++ {
		if tk := s.find(0); tk == nil {
			t.Fatalf("extra %d missing from thief deque", i)
		}
	}
	if stats.Steals != 5 {
		t.Fatalf("extras were not served locally: Steals = %d", stats.Steals)
	}
	// Victim keeps the other half.
	left := 0
	for s.find(1) != nil {
		left++
	}
	if left != 5 {
		t.Fatalf("victim kept %d tasks, want 5", left)
	}
}

// TestBatchedStealCap: the batch never exceeds stealBatchMax tasks total,
// no matter how deep the victim's deque is.
func TestBatchedStealCap(t *testing.T) {
	var stats Stats
	s := newStealScheduler(2, &stats, nil)
	s.affinity = true
	n := &graph.Node{Name: "op"}
	for i := 0; i < 100; i++ {
		s.pushLocalQuiet(1, &task{node: n, from: 1}, PriNormal)
	}
	if tk := s.find(0); tk == nil {
		t.Fatal("find found nothing to steal")
	}
	if stats.BatchStolenTasks != stealBatchMax {
		t.Fatalf("BatchStolenTasks = %d, want cap %d", stats.BatchStolenTasks, stealBatchMax)
	}
}

// TestAffinityStressRepeatedRuns hammers the batched-steal path: many
// workers, wide fan-out, fresh engines, every run bit-identical and
// leak-free with coherent counters.
func TestAffinityStressRepeatedRuns(t *testing.T) {
	g := compileAffinity(t)
	var ref string
	for i := 0; i < 5; i++ {
		e := New(g, Config{Mode: Real, Workers: 8, MaxOps: 5_000_000, AffinityHints: true})
		v, err := e.Run(value.Int(8))
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%v", v)
		if ref == "" {
			ref = got
		} else if got != ref {
			t.Fatalf("run %d diverged: %s vs %s", i, got, ref)
		}
		st := e.Stats()
		if st.Blocks.Allocated != st.Blocks.Freed {
			t.Fatalf("run %d: leak: allocated %d freed %d", i, st.Blocks.Allocated, st.Blocks.Freed)
		}
		if st.BatchStolenTasks < st.BatchSteals {
			t.Fatalf("run %d: batch counters incoherent: %d events, %d tasks",
				i, st.BatchSteals, st.BatchStolenTasks)
		}
	}
}
