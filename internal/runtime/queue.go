package runtime

// serialQueue is the single-worker ready queue: the same three §7 priority
// levels as the work-stealing scheduler, but with plain value-typed FIFOs —
// a one-worker pool has no thieves, so it pays for no atomics, no parking,
// and no per-task allocation. runReal selects it when Workers == 1; the
// multi-worker path lives in stealqueue.go.

// fifo is a queue level with O(1) amortized push/pop.
type fifo struct {
	items []task
	head  int
}

func (f *fifo) push(t task) { f.items = append(f.items, t) }

func (f *fifo) empty() bool { return f.head >= len(f.items) }

func (f *fifo) pop() task {
	t := f.items[f.head]
	f.items[f.head] = task{} // release references
	f.head++
	if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return t
}

// serialQueue holds the three priority levels.
type serialQueue struct {
	levels [numPriorities]fifo
}

// push enqueues t at the given priority level.
func (q *serialQueue) push(t task, pri Priority) { q.levels[pri].push(t) }

// pop takes the highest-priority available task; ok is false at quiescence.
func (q *serialQueue) pop() (t task, ok bool) {
	for pri := range q.levels {
		if !q.levels[pri].empty() {
			return q.levels[pri].pop(), true
		}
	}
	return task{}, false
}

// drain empties the queue, returning the abandoned tasks so the error-path
// teardown can sweep their activations.
func (q *serialQueue) drain() []*task {
	var out []*task
	for {
		t, ok := q.pop()
		if !ok {
			return out
		}
		tc := t
		out = append(out, &tc)
	}
}
