package runtime

import (
	"sync"

	"repro/internal/graph"
)

// task is one runnable node of one activation.
type task struct {
	act  *activation
	node *graph.Node
}

// fifo is a queue level with O(1) amortized push/pop.
type fifo struct {
	items []task
	head  int
}

func (f *fifo) push(t task) { f.items = append(f.items, t) }

func (f *fifo) empty() bool { return f.head >= len(f.items) }

func (f *fifo) pop() task {
	t := f.items[f.head]
	f.items[f.head] = task{} // release references
	f.head++
	if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return t
}

// readyQueue is the real executor's three-level priority ready queue (§7):
// workers pop normal operators before non-recursive expansions before
// recursive expansions, which drains existing activations early and makes
// them available for reuse.
type readyQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	levels [numPriorities]fifo
	closed bool
}

func newReadyQueue() *readyQueue {
	q := &readyQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a task at the given priority level.
func (q *readyQueue) Push(t task, pri Priority) {
	q.mu.Lock()
	q.levels[pri].push(t)
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop blocks for the highest-priority available task. ok is false once the
// queue is closed and drained of nothing — closure abandons queued tasks by
// design (close happens only at quiescence or on error).
func (q *readyQueue) Pop() (t task, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return task{}, false
		}
		for pri := range q.levels {
			if !q.levels[pri].empty() {
				return q.levels[pri].pop(), true
			}
		}
		q.cond.Wait()
	}
}

// Close wakes every waiting worker; subsequent Pops fail.
func (q *readyQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
