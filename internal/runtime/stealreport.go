package runtime

import (
	"fmt"
	"strings"
)

// SchedReport aggregates a run's scheduler behavior from the structured
// trace: per-worker steals (with batched-steal task counts), parks, and —
// under an active affinity plan — preferred-edge dispatch hits and misses.
// It is the data behind `delprof -steals`, turning the raw event stream
// into the load-balance summary the §5.2 workflow wants: which workers ran
// dry, where their work came from, and how often the producer-preferred
// dispatch actually kept a consumer on its producer's processor.

// WorkerSched is one worker's scheduler activity for a run.
type WorkerSched struct {
	// Steals counts successful steal events initiated by this worker (one
	// per victim raid; a batched raid is still one event here).
	Steals int64
	// StolenTasks counts tasks this worker obtained by stealing, including
	// the extra tasks a batched steal moved onto its own deque.
	StolenTasks int64
	// BatchSteals counts the steal events that moved more than one task.
	BatchSteals int64
	// Parks counts times this worker gave up spinning and slept.
	Parks int64
	// AffinityHits / AffinityMisses count preferred-edge dispatch outcomes
	// observed at this worker's pops (hit = the task ran on the worker that
	// completed its preferred producer).
	AffinityHits   int64
	AffinityMisses int64
}

// SchedReport is the aggregated scheduler summary; index Workers by
// processor id.
type SchedReport struct {
	Workers []WorkerSched
}

// SchedReport builds the per-worker scheduler summary from a recorded
// trace. The external (seed) track carries no worker activity and is
// skipped.
func (t *Trace) SchedReport() *SchedReport {
	r := &SchedReport{Workers: make([]WorkerSched, t.Workers)}
	for wid := 0; wid < t.Workers && wid < len(t.Events); wid++ {
		ws := &r.Workers[wid]
		for _, ev := range t.Events[wid] {
			switch ev.Type {
			case TraceSteal:
				ws.Steals++
				ws.StolenTasks++
			case TraceBatchSteal:
				// Follows its TraceSteal, which already counted one task.
				ws.BatchSteals++
				ws.StolenTasks += ev.Arg - 1
			case TracePark:
				ws.Parks++
			case TraceAffinity:
				if ev.Arg == 1 {
					ws.AffinityHits++
				} else {
					ws.AffinityMisses++
				}
			}
		}
	}
	return r
}

// Render formats the report as an aligned table plus totals.
func (r *SchedReport) Render() string {
	var b strings.Builder
	b.WriteString("scheduler: per-worker steal/park/affinity report\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %10s %10s %9s\n",
		"worker", "steals", "tasks", "batched", "parks", "aff-hits", "aff-miss", "hit-rate")
	var tot WorkerSched
	for wid := range r.Workers {
		ws := r.Workers[wid]
		fmt.Fprintf(&b, "%-8d %8d %8d %8d %8d %10d %10d %9s\n",
			wid, ws.Steals, ws.StolenTasks, ws.BatchSteals, ws.Parks,
			ws.AffinityHits, ws.AffinityMisses, hitRate(ws.AffinityHits, ws.AffinityMisses))
		tot.Steals += ws.Steals
		tot.StolenTasks += ws.StolenTasks
		tot.BatchSteals += ws.BatchSteals
		tot.Parks += ws.Parks
		tot.AffinityHits += ws.AffinityHits
		tot.AffinityMisses += ws.AffinityMisses
	}
	fmt.Fprintf(&b, "%-8s %8d %8d %8d %8d %10d %10d %9s\n",
		"total", tot.Steals, tot.StolenTasks, tot.BatchSteals, tot.Parks,
		tot.AffinityHits, tot.AffinityMisses, hitRate(tot.AffinityHits, tot.AffinityMisses))
	if tot.Steals > 0 {
		fmt.Fprintf(&b, "tasks per steal: %.2f\n", float64(tot.StolenTasks)/float64(tot.Steals))
	}
	return b.String()
}

func hitRate(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}
