package runtime

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/operator"
	"repro/internal/value"
)

// faultOps extends the refcount-test registry with retryable and slow
// operators for the fault-tolerance suite.
func faultOps() *operator.Registry {
	r := blockOps()
	// rfill is fill with the retry annotation: it writes its (destructive)
	// block argument, which is exactly what the snapshot machinery exists
	// to make re-runnable.
	r.MustRegister(&operator.Operator{
		Name: "rfill", Arity: 2, Destructive: []bool{true, false}, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			b := args[0].(*value.Block)
			x := float64(args[1].(value.Int))
			vec := b.Data().(value.FloatVec)
			for i := range vec {
				vec[i] = x
			}
			return args[0], nil
		},
	})
	// rinc is a retryable increment (not Pure, so the compiler cannot fold
	// it away under constant arguments).
	r.MustRegister(&operator.Operator{
		Name: "rinc", Arity: 1, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			return args[0].(value.Int) + 1, nil
		},
	})
	// snooze sleeps its argument in milliseconds, then returns it.
	r.MustRegister(&operator.Operator{
		Name: "snooze", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			time.Sleep(time.Duration(args[0].(value.Int)) * time.Millisecond)
			return args[0], nil
		},
	})
	// slowok sleeps 80ms but opts out of any configured timeout.
	r.MustRegister(&operator.Operator{
		Name: "slowok", Arity: 1, Timeout: -1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			time.Sleep(80 * time.Millisecond)
			return args[0], nil
		},
	})
	// slowbad carries its own 15ms bound and sleeps far past it.
	r.MustRegister(&operator.Operator{
		Name: "slowbad", Arity: 1, Timeout: 15 * time.Millisecond,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			time.Sleep(300 * time.Millisecond)
			return args[0], nil
		},
	})
	return r
}

// failedRunLeakCheck verifies the error-path teardown released every block:
// after a failed run there is no result, so allocated must equal freed.
func failedRunLeakCheck(t *testing.T, e *Engine) {
	t.Helper()
	st := &e.Stats().Blocks
	if st.Allocated != st.Freed {
		t.Errorf("error-path block leak: allocated %d, freed %d", st.Allocated, st.Freed)
	}
}

// contendedBlocks is the CoW-racing program of the refcount suite, with the
// writers marked retryable: two destructive rfills race for one block.
const contendedBlocks = `
main()
  let b = mkblock(16)
      w1 = rfill(b, 1)
      w2 = rfill(b, 2)
  in add(blocksum(w1), blocksum(w2))
`

func TestFaultPlanAccounting(t *testing.T) {
	p := NewFaultPlan(
		Fault{Op: "a", Execution: 2, Kind: FaultError},
		Fault{Op: "b", Kind: FaultPanic}, // Execution 0 normalizes to 1
	)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if f := p.next("a"); f != nil {
		t.Errorf("a execution 1: drew %v, want nil", f)
	}
	if f := p.next("a"); f == nil || f.Kind != FaultError {
		t.Errorf("a execution 2: drew %v, want the error fault", f)
	}
	if f := p.next("b"); f == nil || f.Kind != FaultPanic {
		t.Errorf("b execution 1: drew %v, want the panic fault", f)
	}
	if f := p.next("c"); f != nil {
		t.Errorf("unlisted op drew %v", f)
	}
	p.Reset()
	if f := p.next("b"); f == nil {
		t.Error("after Reset, b execution 1 drew nil; counters must rewind")
	}
}

func TestSeededFaultPlanDeterministic(t *testing.T) {
	ops := []string{"x", "y", "z"}
	p1 := SeededFaultPlan(42, ops, 10)
	p2 := SeededFaultPlan(42, ops, 10)
	if p1.Len() != len(ops) || p2.Len() != len(ops) {
		t.Fatalf("Len = %d/%d, want %d", p1.Len(), p2.Len(), len(ops))
	}
	for _, op := range ops {
		f1, f2 := p1.byOp[op], p2.byOp[op]
		if f1 == nil || f2 == nil {
			t.Fatalf("op %s missing from a seeded plan", op)
		}
		for exec, a := range f1.byExec {
			b := f2.byExec[exec]
			if b == nil || a.Kind != b.Kind {
				t.Errorf("op %s exec %d: plans diverge (%v vs %v)", op, exec, a, b)
			}
			if exec < 1 || exec > 10 {
				t.Errorf("op %s: execution %d outside [1, 10]", op, exec)
			}
		}
	}
}

// TestRetryRecoversDeterministically is the core acceptance property: an
// injected failure of a destructive operator, retried on snapshots, must be
// invisible in the output — including the CoW interaction with a racing
// second writer.
func TestRetryRecoversDeterministically(t *testing.T) {
	for _, mode := range []Mode{Real, Simulated} {
		for _, kind := range []FaultKind{FaultError, FaultPanic} {
			g := compile(t, contendedBlocks, faultOps())
			e := New(g, Config{Mode: mode, Workers: 4, MaxOps: 100000,
				Retry:  RetryPolicy{MaxAttempts: 3},
				Faults: KillOnce(kind, "rfill"),
			})
			v, err := e.Run()
			if err != nil {
				t.Fatalf("mode %v kind %v: %v", mode, kind, err)
			}
			if v != value.Float(48) {
				t.Errorf("mode %v kind %v: result = %v, want 48 (fault-free value)", mode, kind, v)
			}
			st := e.Stats()
			if st.FaultsInjected != 1 || st.Retries != 1 {
				t.Errorf("mode %v kind %v: faults=%d retries=%d, want 1/1",
					mode, kind, st.FaultsInjected, st.Retries)
			}
			if st.SnapshotCopies == 0 {
				t.Errorf("mode %v kind %v: no snapshot copies for a destructive retryable op", mode, kind)
			}
			live := int64(len(value.Blocks(v, nil)))
			if st.Blocks.Allocated-st.Blocks.Freed != live {
				t.Errorf("mode %v kind %v: leak after recovery: allocated %d freed %d live %d",
					mode, kind, st.Blocks.Allocated, st.Blocks.Freed, live)
			}
		}
	}
}

// TestRetryExhaustion arms a fault on every attempt: the run must fail with
// a structured error carrying the attempt count, and the teardown must
// release every block.
func TestRetryExhaustion(t *testing.T) {
	for _, mode := range []Mode{Real, Simulated} {
		g := compile(t, contendedBlocks, faultOps())
		e := New(g, Config{Mode: mode, Workers: 4, MaxOps: 100000,
			Retry: RetryPolicy{MaxAttempts: 3},
			Faults: NewFaultPlan(
				Fault{Op: "rfill", Execution: 1, Kind: FaultError},
				Fault{Op: "rfill", Execution: 2, Kind: FaultError},
				Fault{Op: "rfill", Execution: 3, Kind: FaultError},
			),
		})
		_, err := e.Run()
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("mode %v: err = %v, want *RunError", mode, err)
		}
		if re.Kind != FailError || re.Attempts != 3 || re.Op != "rfill" {
			t.Errorf("mode %v: kind=%v attempts=%d op=%q, want FailError/3/rfill",
				mode, re.Kind, re.Attempts, re.Op)
		}
		if len(re.Path) == 0 || re.Path[0] != "main" {
			t.Errorf("mode %v: Path = %v, want activation path from main", mode, re.Path)
		}
		if e.Stats().Retries != 2 {
			t.Errorf("mode %v: Retries = %d, want 2", mode, e.Stats().Retries)
		}
		failedRunLeakCheck(t, e)
	}
}

// TestNonRetryableNotRetried: retry config must not re-run an operator that
// never declared itself safe to re-run.
func TestNonRetryableNotRetried(t *testing.T) {
	src := "main() blocksum(fill(mkblock(8), 3))"
	g := compile(t, src, faultOps())
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 100000,
		Retry:  RetryPolicy{MaxAttempts: 5},
		Faults: KillOnce(FaultError, "fill"),
	})
	_, err := e.Run()
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (fill is not retryable)", re.Attempts)
	}
	if e.Stats().Retries != 0 {
		t.Errorf("Retries = %d, want 0", e.Stats().Retries)
	}
	failedRunLeakCheck(t, e)
}

// TestPanicStackCaptured: a panicking operator must surface the panic value
// and the goroutine stack it was captured on.
func TestPanicStackCaptured(t *testing.T) {
	g := compile(t, "main() blocksum(fill(mkblock(4), 1))", faultOps())
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 100000,
		Faults: KillOnce(FaultPanic, "blocksum"),
	})
	_, err := e.Run()
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Kind != FailPanic {
		t.Errorf("Kind = %v, want FailPanic", re.Kind)
	}
	if !strings.Contains(err.Error(), "operator panicked") {
		t.Errorf("err = %q, want the panic diagnostic", err)
	}
	if len(re.Stack) == 0 || !strings.Contains(string(re.Stack), "goroutine") {
		t.Errorf("Stack not captured: %q", re.Stack)
	}
	failedRunLeakCheck(t, e)
}

// loopBlocks allocates and frees a block every iteration — the workload for
// interrupting a run mid-flight and checking nothing leaked.
const loopBlocks = `
main(n)
  iterate
  {
    i = 0, incr(i)
    total = 0.0, add(total, blocksum(fill(mkblock(8), i)))
  } while lt(i, n),
  result total
`

func TestRunContextCancel(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"real-1", Config{Mode: Real, Workers: 1, MaxOps: 500_000_000}},
		{"real-4", Config{Mode: Real, Workers: 4, MaxOps: 500_000_000}},
		{"sim", Config{Mode: Simulated, Workers: 4, MaxOps: 500_000_000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := compile(t, loopBlocks, faultOps())
			e := New(g, tc.cfg)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := e.RunContext(ctx, value.Int(100_000_000))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			var re *RunError
			if !errors.As(err, &re) || re.Kind != FailCanceled {
				t.Errorf("err = %v, want RunError{FailCanceled}", err)
			}
			if d := time.Since(start); d > 10*time.Second {
				t.Errorf("cancellation took %v; run did not drain promptly", d)
			}
			failedRunLeakCheck(t, e)
		})
	}
}

func TestRunContextDeadline(t *testing.T) {
	g := compile(t, loopBlocks, faultOps())
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 500_000_000})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.RunContext(ctx, value.Int(100_000_000))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	failedRunLeakCheck(t, e)
}

// TestRunContextPreCancelled: a context dead on arrival fails fast without
// consuming the engine's one run.
func TestRunContextPreCancelled(t *testing.T) {
	g := compile(t, "main() add(1, 2)", faultOps())
	e := New(g, Config{Mode: Real, Workers: 1, MaxOps: 100000})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunContext(ctx)
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailCanceled {
		t.Fatalf("err = %v, want RunError{FailCanceled}", err)
	}
	// The rejected call must not have consumed the engine.
	v, err := e.Run()
	if err != nil || v != value.Int(3) {
		t.Errorf("run after pre-cancelled attempt: %v, %v; want 3", v, err)
	}
}

// TestOpTimeout bounds four parallel sleepers with Config.OpTimeout and
// checks the run fails with FailTimeout, promptly, on a wide worker pool.
func TestOpTimeout(t *testing.T) {
	src := `
main()
  let b = fill(mkblock(8), 1)
  in add(blocksum(b), float(add(add(snooze(500), snooze(501)), add(snooze(502), snooze(503)))))
`
	g := compile(t, src, faultOps())
	e := New(g, Config{Mode: Real, Workers: 8, MaxOps: 100000,
		OpTimeout: 25 * time.Millisecond})
	start := time.Now()
	_, err := e.Run()
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailTimeout {
		t.Fatalf("err = %v, want RunError{FailTimeout}", err)
	}
	if re.Op != "snooze" {
		t.Errorf("Op = %q, want snooze", re.Op)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err = %q, want a timeout diagnostic", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("timeout surfaced after %v; run did not drain promptly", d)
	}
	if e.Stats().OpTimeouts == 0 {
		t.Error("OpTimeouts counter not bumped")
	}
	failedRunLeakCheck(t, e)
}

// TestPerOperatorTimeoutOverride: Operator.Timeout overrides Config.OpTimeout
// in both directions — negative opts out, positive tightens.
func TestPerOperatorTimeoutOverride(t *testing.T) {
	// slowok sleeps 80ms with Timeout -1: must survive a 10ms global bound.
	g := compile(t, "main() slowok(7)", faultOps())
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 100000,
		OpTimeout: 10 * time.Millisecond})
	v, err := e.Run()
	if err != nil || v != value.Int(7) {
		t.Errorf("slowok: %v, %v; want 7 (negative Timeout opts out)", v, err)
	}

	// slowbad sleeps 300ms with its own 15ms bound and no global one.
	g = compile(t, "main() slowbad(7)", faultOps())
	e = New(g, Config{Mode: Real, Workers: 2, MaxOps: 100000})
	_, err = e.Run()
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailTimeout {
		t.Errorf("slowbad: err = %v, want RunError{FailTimeout}", err)
	}
}

// TestDelayFaultTimeoutRetry composes all three mechanisms: an injected
// delay pushes the first attempt past OpTimeout, the timeout is retryable,
// and the second attempt succeeds.
func TestDelayFaultTimeoutRetry(t *testing.T) {
	g := compile(t, "main(n) rinc(n)", faultOps())
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 100000,
		OpTimeout: 30 * time.Millisecond,
		Retry:     RetryPolicy{MaxAttempts: 2},
		Faults: NewFaultPlan(Fault{
			Op: "rinc", Execution: 1, Kind: FaultDelay, Delay: 300 * time.Millisecond}),
	})
	v, err := e.Run(value.Int(5))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v != value.Int(6) {
		t.Errorf("result = %v, want 6", v)
	}
	st := e.Stats()
	if st.OpTimeouts != 1 || st.Retries != 1 || st.FaultsInjected != 1 {
		t.Errorf("timeouts=%d retries=%d faults=%d, want 1/1/1",
			st.OpTimeouts, st.Retries, st.FaultsInjected)
	}
}

// TestDeadlockStructuredError: the shared deadlock diagnostic must be a
// RunError carrying the blocked activation path.
func TestDeadlockStructuredError(t *testing.T) {
	inc, _ := operator.Builtins().Lookup("incr")
	tmpl := &graph.Template{Name: "main"}
	tmpl.Nodes = []*graph.Node{
		{ID: 0, Kind: graph.ConstNode, Const: value.Int(1), Out: []graph.Edge{{To: 1, Port: 0}}},
		{ID: 1, Kind: graph.OpNode, Name: "incr", Op: inc, NIn: 1},
		{ID: 2, Kind: graph.OpNode, Name: "incr", Op: inc, NIn: 1}, // never fed
	}
	tmpl.Result = 2
	prog := &graph.Program{Templates: map[string]*graph.Template{"main": tmpl}, Main: tmpl}
	for _, workers := range []int{1, 2} {
		for _, mode := range []Mode{Real, Simulated} {
			e := New(prog, Config{Mode: mode, Workers: workers, MaxOps: 1000})
			_, err := e.Run()
			var re *RunError
			if !errors.As(err, &re) {
				t.Fatalf("mode %v workers %d: err = %v, want *RunError", mode, workers, err)
			}
			if re.Kind != FailDeadlock {
				t.Errorf("mode %v workers %d: Kind = %v, want FailDeadlock", mode, workers, re.Kind)
			}
			if !strings.Contains(err.Error(), "deadlocked") {
				t.Errorf("mode %v workers %d: err = %q, want the deadlock diagnostic", mode, workers, err)
			}
			if len(re.Path) == 0 {
				t.Errorf("mode %v workers %d: Path empty, want blocked activation path", mode, workers)
			}
		}
	}
}

// TestBudgetStructuredError: the operation-budget failure is a RunError too.
func TestBudgetStructuredError(t *testing.T) {
	g := compile(t, loopBlocks, faultOps())
	e := New(g, Config{Mode: Real, Workers: 2, MaxOps: 50})
	_, err := e.Run(value.Int(1000))
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailBudget {
		t.Fatalf("err = %v, want RunError{FailBudget}", err)
	}
	if !strings.Contains(err.Error(), "operation budget") {
		t.Errorf("err = %q, want the budget diagnostic", err)
	}
	failedRunLeakCheck(t, e)
}

// TestRetryBackoffApplied: a configured backoff must actually delay the
// retried attempt (coarse bound; determinism of the result is covered
// elsewhere).
func TestRetryBackoffApplied(t *testing.T) {
	g := compile(t, "main(n) rinc(n)", faultOps())
	e := New(g, Config{Mode: Real, Workers: 1, MaxOps: 100000,
		Retry:  RetryPolicy{MaxAttempts: 2, Backoff: 60 * time.Millisecond},
		Faults: KillOnce(FaultError, "rinc"),
	})
	start := time.Now()
	v, err := e.Run(value.Int(1))
	if err != nil || v != value.Int(2) {
		t.Fatalf("run: %v, %v", v, err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("run finished in %v; backoff of 60ms not applied", d)
	}
}
