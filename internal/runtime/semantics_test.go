package runtime

import (
	"testing"

	"repro/internal/value"
)

// Language corner cases executed end to end on both executors.

func TestNestedIterates(t *testing.T) {
	// Multiplication table sum via two nested loops.
	src := `
inner(r, m)
  iterate
  {
    c = 0, incr(c)
    acc = 0, add(acc, mul(r, incr(c)))
  } while lt(c, m),
  result acc

main(n, m)
  iterate
  {
    r = 0, incr(r)
    total = 0, add(total, inner(incr(r), m))
  } while lt(r, n),
  result total
`
	// sum_{r=1..n} sum_{c=1..m} r*c = n(n+1)/2 * m(m+1)/2
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			v := runProg(t, src, cfg, value.Int(5), value.Int(4))
			if v != value.Int(15*10) {
				t.Errorf("got %v, want 150", v)
			}
		})
	}
}

func runProg(t *testing.T, src string, cfg Config, args ...value.Value) value.Value {
	t.Helper()
	g := compile(t, src, nil)
	e := New(g, cfg)
	v, err := e.Run(args...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestIterateInsideConditional(t *testing.T) {
	src := `
main(flag, n)
  if flag
    then iterate { i = 0, incr(i) } while lt(i, n), result i
    else neg(n)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if v := runProg(t, src, cfg, value.Bool(true), value.Int(7)); v != value.Int(7) {
				t.Errorf("then-arm loop = %v", v)
			}
			if v := runProg(t, src, cfg, value.Bool(false), value.Int(7)); v != value.Int(-7) {
				t.Errorf("else arm = %v", v)
			}
		})
	}
}

func TestClosureAsProgramResult(t *testing.T) {
	src := `
make_adder(k)
  let addk(v) add(v, k)
  in addk
main(k) make_adder(k)
`
	g := compile(t, src, nil)
	e := New(g, Config{Mode: Real, Workers: 2})
	v, err := e.Run(value.Int(9))
	if err != nil {
		t.Fatal(err)
	}
	cl, ok := v.(*value.Closure)
	if !ok {
		t.Fatalf("result = %T, want closure", v)
	}
	if cl.Fn.ParamCount() != 1 || len(cl.Env) != 1 {
		t.Errorf("closure shape: params=%d env=%d", cl.Fn.ParamCount(), len(cl.Env))
	}
	if cl.Env[0] != value.Int(9) {
		t.Errorf("captured value = %v", cl.Env[0])
	}
}

func TestHigherOrderTower(t *testing.T) {
	// A function returning a function returning a function.
	src := `
make2(a)
  let make1(b)
        let f(c) add(a, add(b, c))
        in f
  in make1
main(a, b, c) ((make2(a))(b))(c)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if v := runProg(t, src, cfg, value.Int(100), value.Int(20), value.Int(3)); v != value.Int(123) {
				t.Errorf("got %v, want 123", v)
			}
		})
	}
}

func TestClosureCapturingClosure(t *testing.T) {
	src := `
main(x)
  let base(v) mul(v, 2)
      wrap(v) incr(base(v))
  in wrap(x)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if v := runProg(t, src, cfg, value.Int(10)); v != value.Int(21) {
				t.Errorf("got %v, want 21", v)
			}
		})
	}
}

func TestLoopVariableUnusedInResult(t *testing.T) {
	src := `
main(n)
  iterate
  {
    i = 0, incr(i)
    junk = 0, mul(junk, 2)
  } while lt(i, n),
  result i
`
	if v := runProg(t, src, Config{Mode: Real, Workers: 2}, value.Int(5)); v != value.Int(5) {
		t.Errorf("got %v", v)
	}
}

func TestFunctionPassedThroughLoop(t *testing.T) {
	// A closure carried as a loop variable and applied each pass.
	src := `
main(n)
  let double(v) mul(v, 2)
  in iterate
     {
       i = 0, incr(i)
       f = double, f
       acc = 1, f(acc)
     } while lt(i, n),
     result acc
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if v := runProg(t, src, cfg, value.Int(6)); v != value.Int(64) {
				t.Errorf("2^6 = %v, want 64", v)
			}
		})
	}
}

func TestTupleOfClosures(t *testing.T) {
	src := `
main(x)
  let inc(v) add(v, 1)
      dbl(v) mul(v, 2)
      <f, g> = <inc, dbl>
  in add(f(x), g(x))
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if v := runProg(t, src, cfg, value.Int(10)); v != value.Int(31) {
				t.Errorf("got %v, want 31", v)
			}
		})
	}
}

func TestStringsThroughProgram(t *testing.T) {
	src := `
greet(name) strcat("hello, ", name)
main(name) greet(name)
`
	if v := runProg(t, src, Config{Mode: Real, Workers: 1}, value.Str("world")); v != value.Str("hello, world") {
		t.Errorf("got %v", v)
	}
}

func TestEmptyTupleEverywhere(t *testing.T) {
	src := `
main()
  let e = <>
      n = tuple_len(e)
  in <n, tuple_concat(e, <1>, e)>
`
	v := runProg(t, src, Config{Mode: Real, Workers: 2})
	tup := v.(value.Tuple)
	if tup[0] != value.Int(0) {
		t.Errorf("tuple_len(<>) = %v", tup[0])
	}
	inner := tup[1].(value.Tuple)
	if len(inner) != 1 || inner[0] != value.Int(1) {
		t.Errorf("concat = %v", inner)
	}
}

// TestRealDeterminismAcrossSchedulers is the §8 block-protocol guarantee
// exercised against the work-stealing executor: the same program must
// produce identical results at 1, 2, and 8 workers, and under the FIFO
// ablation (DisablePriorities) — scheduling may reorder execution, never
// change the answer.
func TestRealDeterminismAcrossSchedulers(t *testing.T) {
	src := `
tree(d)
  if is_equal(d, 0)
    then 1
    else let a = tree(sub(d, 1))
             b = tree(sub(d, 1))
         in add(mul(a, 3), b)
main(n)
  let deep = tree(7)
      loop = iterate { i = 0, incr(i)
                       acc = 0, add(acc, mul(i, i)) } while lt(i, n),
             result acc
  in <deep, loop, strcat("n=", n)>
`
	g := compile(t, src, nil)
	var want value.Value
	for _, cfg := range []Config{
		{Mode: Real, Workers: 1},
		{Mode: Real, Workers: 2},
		{Mode: Real, Workers: 8},
		{Mode: Real, Workers: 8, DisablePriorities: true},
	} {
		cfg.MaxOps = 10_000_000
		e := New(g, cfg)
		v, err := e.Run(value.Int(50))
		if err != nil {
			t.Fatalf("workers=%d disable=%v: %v", cfg.Workers, cfg.DisablePriorities, err)
		}
		if want == nil {
			want = v
		} else if !value.Equal(v, want) {
			t.Errorf("workers=%d disable=%v: %v != %v", cfg.Workers, cfg.DisablePriorities, v, want)
		}
	}
}

func TestRecursionThroughClosureOnly(t *testing.T) {
	// The classic: recursion reached through a first-class value.
	src := `
fact(n) if is_equal(n, 0) then 1 else mul(n, fact(sub(n, 1)))
apply(f, x) f(x)
main(n) apply(fact, n)
`
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			if v := runProg(t, src, cfg, value.Int(6)); v != value.Int(720) {
				t.Errorf("got %v", v)
			}
		})
	}
}
