package runtime

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/operator"
	"repro/internal/value"
)

func TestStealSchedulerPriorityOrder(t *testing.T) {
	// A worker must drain its own deques normal-first, then the injector
	// normal-first, then steal normal-first — §7's order at every tier.
	nodes := map[Priority]*graph.Node{
		PriNormal:    {Name: "normal"},
		PriCall:      {Name: "call"},
		PriRecursive: {Name: "recursive"},
	}
	var stats Stats
	s := newStealScheduler(2, &stats, nil)
	for _, tier := range []struct {
		name string
		push func(*task, Priority)
	}{
		{"local", func(tk *task, pri Priority) { s.pushLocal(0, tk, pri) }},
		{"inject", s.pushInject},
		{"victim", func(tk *task, pri Priority) { s.pushLocal(1, tk, pri) }},
	} {
		// Push in reverse priority order; finds must come back normal-first.
		tier.push(&task{node: nodes[PriRecursive]}, PriRecursive)
		tier.push(&task{node: nodes[PriCall]}, PriCall)
		tier.push(&task{node: nodes[PriNormal]}, PriNormal)
		for _, w := range []string{"normal", "call", "recursive"} {
			tk := s.find(0)
			if tk == nil || tk.node.Name != w {
				t.Fatalf("%s tier: find = %v, want %s", tier.name, tk, w)
			}
		}
		if tk := s.find(0); tk != nil {
			t.Fatalf("%s tier: unexpected extra task %v", tier.name, tk)
		}
	}
	if stats.Steals != 3 {
		t.Errorf("Steals = %d, want 3 (victim tier)", stats.Steals)
	}
}

func TestWSDequeLIFOOwnerFIFOThief(t *testing.T) {
	var d wsDeque
	d.init()
	mk := func(name string) *task { return &task{node: &graph.Node{Name: name}} }
	d.push(mk("a"))
	d.push(mk("b"))
	d.push(mk("c"))
	if tk := d.pop(); tk == nil || tk.node.Name != "c" {
		t.Fatalf("owner pop = %v, want LIFO c", tk)
	}
	if tk, _ := d.steal(); tk == nil || tk.node.Name != "a" {
		t.Fatalf("steal = %v, want FIFO a", tk)
	}
	if tk := d.pop(); tk == nil || tk.node.Name != "b" {
		t.Fatalf("owner pop = %v, want b", tk)
	}
	if tk := d.pop(); tk != nil {
		t.Fatalf("pop from empty = %v", tk)
	}
	if tk, retry := d.steal(); tk != nil || retry {
		t.Fatalf("steal from empty = %v/%v", tk, retry)
	}
}

func TestWSDequeGrowth(t *testing.T) {
	var d wsDeque
	d.init()
	const n = wsInitialSize*4 + 7
	for i := 0; i < n; i++ {
		d.push(&task{node: &graph.Node{ID: i}})
	}
	// Steal half FIFO, pop the rest LIFO; every task seen exactly once.
	seen := make(map[int]bool, n)
	for i := 0; i < n/2; i++ {
		tk, _ := d.steal()
		if tk == nil {
			t.Fatalf("steal %d failed", i)
		}
		if tk.node.ID != i {
			t.Fatalf("steal %d = node %d, want FIFO order", i, tk.node.ID)
		}
		seen[tk.node.ID] = true
	}
	for {
		tk := d.pop()
		if tk == nil {
			break
		}
		if seen[tk.node.ID] {
			t.Fatalf("node %d drained twice", tk.node.ID)
		}
		seen[tk.node.ID] = true
	}
	if len(seen) != n {
		t.Errorf("drained %d tasks, want %d", len(seen), n)
	}
}

func TestWSDequeConcurrentStealers(t *testing.T) {
	// One owner pushes and pops while thieves hammer steal: every task is
	// claimed exactly once and none is lost.
	const total = 20000
	var d wsDeque
	d.init()
	counts := make([]int32, total)
	var claimed int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				tk, retry := d.steal()
				if tk != nil {
					atomic.AddInt32(&counts[tk.node.ID], 1)
					atomic.AddInt64(&claimed, 1)
					continue
				}
				if !retry {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		d.push(&task{node: &graph.Node{ID: i}})
		if i%3 == 0 {
			if tk := d.pop(); tk != nil {
				atomic.AddInt32(&counts[tk.node.ID], 1)
				atomic.AddInt64(&claimed, 1)
			}
		}
	}
	for atomic.LoadInt64(&claimed) < total {
		if tk := d.pop(); tk != nil {
			atomic.AddInt32(&counts[tk.node.ID], 1)
			atomic.AddInt64(&claimed, 1)
		}
	}
	close(stop)
	wg.Wait()
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("task %d claimed %d times", id, c)
		}
	}
}

func TestInjectorFIFOAndConcurrency(t *testing.T) {
	var q injQueue
	q.init()
	for i := 0; i < 100; i++ {
		q.push(&task{node: &graph.Node{ID: i}})
	}
	for i := 0; i < 100; i++ {
		tk := q.pop()
		if tk == nil || tk.node.ID != i {
			t.Fatalf("pop %d = %v, want FIFO order", i, tk)
		}
	}
	if q.pop() != nil || !q.isEmpty() {
		t.Fatal("queue should be empty")
	}
	// Concurrent producers and consumers: nothing lost, nothing doubled.
	const perProducer = 5000
	counts := make([]int32, 4*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.push(&task{node: &graph.Node{ID: p*perProducer + i}})
			}
		}(p)
	}
	var got int64
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for atomic.LoadInt64(&got) < int64(len(counts)) {
				if tk := q.pop(); tk != nil {
					atomic.AddInt32(&counts[tk.node.ID], 1)
					atomic.AddInt64(&got, 1)
				}
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("task %d seen %d times", id, c)
		}
	}
}

func TestStealSchedulerCloseWakesParked(t *testing.T) {
	var stats Stats
	s := newStealScheduler(4, &stats, nil)
	var wg sync.WaitGroup
	for w := 1; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if s.closed.Load() {
					return
				}
				if tk := s.find(w); tk == nil {
					s.park(w)
				}
			}
		}(w)
	}
	s.close()
	wg.Wait() // deadlocks here (test timeout) if close loses a parked worker
	if tk := s.find(0); tk != nil {
		t.Errorf("found task in empty closed scheduler: %v", tk)
	}
}

func TestStealSchedulerNotifyReachesParked(t *testing.T) {
	// A worker parks; a push from another worker must wake it.
	var stats Stats
	s := newStealScheduler(2, &stats, nil)
	got := make(chan *task, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if tk := s.find(1); tk != nil {
				got <- tk
				return
			}
			if s.closed.Load() {
				return
			}
			s.park(1)
		}
	}()
	s.pushLocal(0, &task{node: &graph.Node{Name: "wake"}}, PriNormal)
	tk := <-got
	if tk.node.Name != "wake" {
		t.Fatalf("woke with %v", tk)
	}
	s.close()
	wg.Wait()
}

// heavyOpsRegistry registers distinct named heavy operators so the
// affinity policies have something to place.
func heavyOpsRegistry() *operator.Registry {
	r := operator.NewRegistry(operator.Builtins())
	r.MustRegister(&operator.Operator{
		Name: "grind", Arity: 1, Pure: false,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			ctx.Charge(5000)
			if b, ok := args[0].(*value.Block); ok {
				vec := b.Data().(value.FloatVec)
				var s float64
				for _, x := range vec {
					s += x
				}
				return value.Float(s), nil
			}
			return args[0], nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "bigblock", Arity: 0,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			ctx.Charge(10)
			return value.NewBlockStats(make(value.FloatVec, 4096), ctx.BlockStats()), nil
		},
	})
	return r
}

func TestOperatorAffinityKeepsOperatorHome(t *testing.T) {
	// A chain of invocations of the same operator should stay on one
	// processor under AffinityOperator when nothing else competes.
	src := `
main(x)
  iterate { i = 0, incr(i)
            v = x, grind(v) } while lt(i, 6), result v
`
	g := compile(t, src, heavyOpsRegistry())
	e := New(g, Config{Mode: Simulated, Workers: 4, Machine: machine.Butterfly().WithProcs(4),
		Affinity: AffinityOperator, Timing: true, MaxOps: 100000})
	if _, err := e.Run(value.Int(1)); err != nil {
		t.Fatal(err)
	}
	procs := make(map[int]bool)
	for _, entry := range e.Timing().Entries() {
		if entry.Name == "grind" {
			procs[entry.Proc] = true
		}
	}
	if len(procs) != 1 {
		t.Errorf("grind ran on %d processors under operator affinity, want 1", len(procs))
	}
}

func TestDataAffinityFollowsBlock(t *testing.T) {
	// Under the data policy, successive operators touching the same large
	// block run on its home processor, eliminating remote traffic after
	// the first touch.
	src := `
main()
  let b = bigblock()
      s1 = grind(b)
      b2 = bigblock()
  in add(s1, grind(b2))
`
	run := func(pol AffinityPolicy) int64 {
		g := compile(t, src, heavyOpsRegistry())
		e := New(g, Config{Mode: Simulated, Workers: 4,
			Machine: machine.Butterfly().WithProcs(4), Affinity: pol, MaxOps: 100000})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Stats().MemoryTicks
	}
	if none, data := run(AffinityNone), run(AffinityData); data > none {
		t.Errorf("data affinity increased memory ticks: %d vs %d", data, none)
	}
}

func TestSimulatedUtilizationBounds(t *testing.T) {
	g := compile(t, `
main(x)
  let a = grind(x)
      b = grind(incr(x))
      c = grind(add(x, 2))
      d = grind(add(x, 3))
  in add(add(a, b), add(c, d))
`, heavyOpsRegistry())
	e := New(g, Config{Mode: Simulated, Workers: 4, MaxOps: 100000})
	if _, err := e.Run(value.Int(1)); err != nil {
		t.Fatal(err)
	}
	u := e.Stats().Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want (0, 1]", u)
	}
	if e.Stats().MakespanTicks < e.Stats().BusyTicks/4 {
		t.Error("makespan below busy/procs: scheduler accounting broken")
	}
}

func TestSimulatedRespectsPriorities(t *testing.T) {
	// With priorities disabled the same program still computes the same
	// value (only scheduling changes).
	src := `
fib(n) if lt(n, 2) then n else add(fib(sub(n,1)), fib(sub(n,2)))
main(n) fib(n)
`
	g := compile(t, src, nil)
	var vals []value.Value
	for _, disable := range []bool{false, true} {
		e := New(g, Config{Mode: Simulated, Workers: 2, DisablePriorities: disable, MaxOps: 1000000})
		v, err := e.Run(value.Int(12))
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	if !value.Equal(vals[0], vals[1]) {
		t.Errorf("priority setting changed the result: %v vs %v", vals[0], vals[1])
	}
}

func TestWorkersDefaultFromMachine(t *testing.T) {
	cfg := Config{Machine: machine.Butterfly()}
	if cfg.workers() != machine.Butterfly().Procs {
		t.Errorf("workers() = %d, want machine's %d", cfg.workers(), machine.Butterfly().Procs)
	}
	if (Config{}).workers() != 1 {
		t.Error("bare config should default to 1 worker")
	}
	if (Config{Workers: 3}).workers() != 3 {
		t.Error("explicit workers ignored")
	}
}

func TestEngineStatsActivationAccounting(t *testing.T) {
	g := compile(t, `
f(x) add(x, 1)
main(n)
  iterate { i = 0, f(i) } while lt(i, n), result i
`, nil)
	e := New(g, Config{Mode: Real, Workers: 1})
	if _, err := e.Run(value.Int(100)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.LiveActivations != 0 {
		t.Errorf("LiveActivations = %d after completion, want 0", st.LiveActivations)
	}
	if st.ActivationsReused == 0 {
		t.Error("loop should reuse pooled activations")
	}
	if st.PeakLive <= 0 {
		t.Error("PeakLive not tracked")
	}
}

func TestGanttRendering(t *testing.T) {
	g := compile(t, `
main(x)
  let a = grind(x)
      b = grind(incr(x))
  in add(a, b)
`, heavyOpsRegistry())
	e := New(g, Config{Mode: Simulated, Workers: 2, Timing: true, MaxOps: 100000})
	if _, err := e.Run(value.Int(1)); err != nil {
		t.Fatal(err)
	}
	gantt := e.Timing().Gantt(60)
	if !strings.Contains(gantt, "proc  0 |") || !strings.Contains(gantt, "proc  1 |") {
		t.Errorf("gantt rows missing:\n%s", gantt)
	}
	if !strings.Contains(gantt, "grind") && !strings.Contains(gantt, "gri") {
		t.Errorf("gantt labels missing:\n%s", gantt)
	}
	loads := e.Timing().ProcLoads()
	if len(loads) != 2 {
		t.Fatalf("loads = %v", loads)
	}
	// The two grinds run one per processor: loads roughly equal.
	hi, lo := loads[0], loads[1]
	if hi < lo {
		hi, lo = lo, hi
	}
	if lo == 0 || float64(hi)/float64(lo) > 1.5 {
		t.Errorf("unbalanced loads %v for symmetric program", loads)
	}
	if out := NewTimingLog().Gantt(40); !strings.Contains(out, "no timing entries") {
		t.Errorf("empty gantt = %q", out)
	}
}

// TestDeadlockDetection feeds the engine a deliberately broken template —
// a node whose input port is never fed — and checks both executors report
// a deadlock instead of hanging. (The compiler can never emit such a
// graph; Validate rejects it. The runtime still refuses to hang.)
func TestDeadlockDetection(t *testing.T) {
	inc, _ := operator.Builtins().Lookup("incr")
	tmpl := &graph.Template{Name: "broken"}
	tmpl.Nodes = []*graph.Node{
		{ID: 0, Kind: graph.ConstNode, Const: value.Int(1), Out: []graph.Edge{{To: 1, Port: 0}}},
		{ID: 1, Kind: graph.OpNode, Name: "incr", Op: inc, NIn: 1},
		{ID: 2, Kind: graph.OpNode, Name: "incr", Op: inc, NIn: 1}, // never fed
	}
	tmpl.Result = 2
	prog := &graph.Program{Templates: map[string]*graph.Template{"main": tmpl}, Main: tmpl}
	for _, mode := range []Mode{Real, Simulated} {
		e := New(prog, Config{Mode: mode, Workers: 2, MaxOps: 1000})
		_, err := e.Run()
		if err == nil || !strings.Contains(err.Error(), "deadlocked") {
			t.Errorf("mode %v: err = %v, want deadlock report", mode, err)
		}
	}
}

// TestNoResultDetection covers the sibling failure: a graph whose nodes
// all complete during seeding without ever producing a result.
func TestNoResultDetection(t *testing.T) {
	tmpl := &graph.Template{Name: "silent"}
	tmpl.Nodes = []*graph.Node{
		{ID: 0, Kind: graph.ConstNode, Const: value.Int(1)},
		{ID: 1, Kind: graph.OpNode, Name: "x", NIn: 1, Op: &operator.Operator{
			Name: "x", Arity: 1,
			Fn: func(operator.Context, []value.Value) (value.Value, error) {
				return value.Int(0), nil
			}}}, // result node, never fed
	}
	tmpl.Result = 1
	prog := &graph.Program{Templates: map[string]*graph.Template{"main": tmpl}, Main: tmpl}
	e := New(prog, Config{Mode: Real, Workers: 1})
	if _, err := e.Run(); err == nil {
		t.Error("expected failure for silent graph")
	}
}
