package runtime

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/operator"
	"repro/internal/value"
)

func TestFifoOrderAndCompaction(t *testing.T) {
	var f fifo
	dummy := &graph.Node{}
	for i := 0; i < 500; i++ {
		f.push(task{node: dummy, act: nil})
	}
	for i := 0; i < 500; i++ {
		if f.empty() {
			t.Fatalf("empty after %d pops", i)
		}
		f.pop()
	}
	if !f.empty() {
		t.Fatal("should be empty")
	}
	// Interleaved pushes and pops exercise compaction.
	for round := 0; round < 200; round++ {
		f.push(task{node: dummy})
		f.push(task{node: dummy})
		f.pop()
	}
	count := 0
	for !f.empty() {
		f.pop()
		count++
	}
	if count != 200 {
		t.Errorf("drained %d, want 200", count)
	}
}

func TestReadyQueuePriorityOrder(t *testing.T) {
	q := newReadyQueue()
	nodes := map[Priority]*graph.Node{
		PriNormal:    {Name: "normal"},
		PriCall:      {Name: "call"},
		PriRecursive: {Name: "recursive"},
	}
	// Push in reverse priority order; pops must come back normal-first.
	q.Push(task{node: nodes[PriRecursive]}, PriRecursive)
	q.Push(task{node: nodes[PriCall]}, PriCall)
	q.Push(task{node: nodes[PriNormal]}, PriNormal)
	want := []string{"normal", "call", "recursive"}
	for _, w := range want {
		tk, ok := q.Pop()
		if !ok || tk.node.Name != w {
			t.Fatalf("pop = %v/%v, want %s", tk.node, ok, w)
		}
	}
}

func TestReadyQueueCloseWakesWaiters(t *testing.T) {
	q := newReadyQueue()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := q.Pop(); ok {
				t.Error("Pop after close should fail")
			}
		}()
	}
	q.Close()
	wg.Wait()
}

// heavyOpsRegistry registers distinct named heavy operators so the
// affinity policies have something to place.
func heavyOpsRegistry() *operator.Registry {
	r := operator.NewRegistry(operator.Builtins())
	r.MustRegister(&operator.Operator{
		Name: "grind", Arity: 1, Pure: false,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			ctx.Charge(5000)
			if b, ok := args[0].(*value.Block); ok {
				vec := b.Data().(value.FloatVec)
				var s float64
				for _, x := range vec {
					s += x
				}
				return value.Float(s), nil
			}
			return args[0], nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "bigblock", Arity: 0,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			ctx.Charge(10)
			return value.NewBlockStats(make(value.FloatVec, 4096), ctx.BlockStats()), nil
		},
	})
	return r
}

func TestOperatorAffinityKeepsOperatorHome(t *testing.T) {
	// A chain of invocations of the same operator should stay on one
	// processor under AffinityOperator when nothing else competes.
	src := `
main(x)
  iterate { i = 0, incr(i)
            v = x, grind(v) } while lt(i, 6), result v
`
	g := compile(t, src, heavyOpsRegistry())
	e := New(g, Config{Mode: Simulated, Workers: 4, Machine: machine.Butterfly().WithProcs(4),
		Affinity: AffinityOperator, Timing: true, MaxOps: 100000})
	if _, err := e.Run(value.Int(1)); err != nil {
		t.Fatal(err)
	}
	procs := make(map[int]bool)
	for _, entry := range e.Timing().Entries() {
		if entry.Name == "grind" {
			procs[entry.Proc] = true
		}
	}
	if len(procs) != 1 {
		t.Errorf("grind ran on %d processors under operator affinity, want 1", len(procs))
	}
}

func TestDataAffinityFollowsBlock(t *testing.T) {
	// Under the data policy, successive operators touching the same large
	// block run on its home processor, eliminating remote traffic after
	// the first touch.
	src := `
main()
  let b = bigblock()
      s1 = grind(b)
      b2 = bigblock()
  in add(s1, grind(b2))
`
	run := func(pol AffinityPolicy) int64 {
		g := compile(t, src, heavyOpsRegistry())
		e := New(g, Config{Mode: Simulated, Workers: 4,
			Machine: machine.Butterfly().WithProcs(4), Affinity: pol, MaxOps: 100000})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Stats().MemoryTicks
	}
	if none, data := run(AffinityNone), run(AffinityData); data > none {
		t.Errorf("data affinity increased memory ticks: %d vs %d", data, none)
	}
}

func TestSimulatedUtilizationBounds(t *testing.T) {
	g := compile(t, `
main(x)
  let a = grind(x)
      b = grind(incr(x))
      c = grind(add(x, 2))
      d = grind(add(x, 3))
  in add(add(a, b), add(c, d))
`, heavyOpsRegistry())
	e := New(g, Config{Mode: Simulated, Workers: 4, MaxOps: 100000})
	if _, err := e.Run(value.Int(1)); err != nil {
		t.Fatal(err)
	}
	u := e.Stats().Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want (0, 1]", u)
	}
	if e.Stats().MakespanTicks < e.Stats().BusyTicks/4 {
		t.Error("makespan below busy/procs: scheduler accounting broken")
	}
}

func TestSimulatedRespectsPriorities(t *testing.T) {
	// With priorities disabled the same program still computes the same
	// value (only scheduling changes).
	src := `
fib(n) if lt(n, 2) then n else add(fib(sub(n,1)), fib(sub(n,2)))
main(n) fib(n)
`
	g := compile(t, src, nil)
	var vals []value.Value
	for _, disable := range []bool{false, true} {
		e := New(g, Config{Mode: Simulated, Workers: 2, DisablePriorities: disable, MaxOps: 1000000})
		v, err := e.Run(value.Int(12))
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	if !value.Equal(vals[0], vals[1]) {
		t.Errorf("priority setting changed the result: %v vs %v", vals[0], vals[1])
	}
}

func TestWorkersDefaultFromMachine(t *testing.T) {
	cfg := Config{Machine: machine.Butterfly()}
	if cfg.workers() != machine.Butterfly().Procs {
		t.Errorf("workers() = %d, want machine's %d", cfg.workers(), machine.Butterfly().Procs)
	}
	if (Config{}).workers() != 1 {
		t.Error("bare config should default to 1 worker")
	}
	if (Config{Workers: 3}).workers() != 3 {
		t.Error("explicit workers ignored")
	}
}

func TestEngineStatsActivationAccounting(t *testing.T) {
	g := compile(t, `
f(x) add(x, 1)
main(n)
  iterate { i = 0, f(i) } while lt(i, n), result i
`, nil)
	e := New(g, Config{Mode: Real, Workers: 1})
	if _, err := e.Run(value.Int(100)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.LiveActivations != 0 {
		t.Errorf("LiveActivations = %d after completion, want 0", st.LiveActivations)
	}
	if st.ActivationsReused == 0 {
		t.Error("loop should reuse pooled activations")
	}
	if st.PeakLive <= 0 {
		t.Error("PeakLive not tracked")
	}
}

func TestGanttRendering(t *testing.T) {
	g := compile(t, `
main(x)
  let a = grind(x)
      b = grind(incr(x))
  in add(a, b)
`, heavyOpsRegistry())
	e := New(g, Config{Mode: Simulated, Workers: 2, Timing: true, MaxOps: 100000})
	if _, err := e.Run(value.Int(1)); err != nil {
		t.Fatal(err)
	}
	gantt := e.Timing().Gantt(60)
	if !strings.Contains(gantt, "proc  0 |") || !strings.Contains(gantt, "proc  1 |") {
		t.Errorf("gantt rows missing:\n%s", gantt)
	}
	if !strings.Contains(gantt, "grind") && !strings.Contains(gantt, "gri") {
		t.Errorf("gantt labels missing:\n%s", gantt)
	}
	loads := e.Timing().ProcLoads()
	if len(loads) != 2 {
		t.Fatalf("loads = %v", loads)
	}
	// The two grinds run one per processor: loads roughly equal.
	hi, lo := loads[0], loads[1]
	if hi < lo {
		hi, lo = lo, hi
	}
	if lo == 0 || float64(hi)/float64(lo) > 1.5 {
		t.Errorf("unbalanced loads %v for symmetric program", loads)
	}
	if out := NewTimingLog().Gantt(40); !strings.Contains(out, "no timing entries") {
		t.Errorf("empty gantt = %q", out)
	}
}

// TestDeadlockDetection feeds the engine a deliberately broken template —
// a node whose input port is never fed — and checks both executors report
// a deadlock instead of hanging. (The compiler can never emit such a
// graph; Validate rejects it. The runtime still refuses to hang.)
func TestDeadlockDetection(t *testing.T) {
	inc, _ := operator.Builtins().Lookup("incr")
	tmpl := &graph.Template{Name: "broken"}
	tmpl.Nodes = []*graph.Node{
		{ID: 0, Kind: graph.ConstNode, Const: value.Int(1), Out: []graph.Edge{{To: 1, Port: 0}}},
		{ID: 1, Kind: graph.OpNode, Name: "incr", Op: inc, NIn: 1},
		{ID: 2, Kind: graph.OpNode, Name: "incr", Op: inc, NIn: 1}, // never fed
	}
	tmpl.Result = 2
	prog := &graph.Program{Templates: map[string]*graph.Template{"main": tmpl}, Main: tmpl}
	for _, mode := range []Mode{Real, Simulated} {
		e := New(prog, Config{Mode: mode, Workers: 2, MaxOps: 1000})
		_, err := e.Run()
		if err == nil || !strings.Contains(err.Error(), "deadlocked") {
			t.Errorf("mode %v: err = %v, want deadlock report", mode, err)
		}
	}
}

// TestNoResultDetection covers the sibling failure: a graph whose nodes
// all complete during seeding without ever producing a result.
func TestNoResultDetection(t *testing.T) {
	tmpl := &graph.Template{Name: "silent"}
	tmpl.Nodes = []*graph.Node{
		{ID: 0, Kind: graph.ConstNode, Const: value.Int(1)},
		{ID: 1, Kind: graph.OpNode, Name: "x", NIn: 1, Op: &operator.Operator{
			Name: "x", Arity: 1,
			Fn: func(operator.Context, []value.Value) (value.Value, error) {
				return value.Int(0), nil
			}}}, // result node, never fed
	}
	tmpl.Result = 1
	prog := &graph.Program{Templates: map[string]*graph.Template{"main": tmpl}, Main: tmpl}
	e := New(prog, Config{Mode: Real, Workers: 1})
	if _, err := e.Run(); err == nil {
		t.Error("expected failure for silent graph")
	}
}
