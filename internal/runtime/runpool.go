package runtime

import (
	"context"
	"sync"
	"time"

	"repro/internal/value"
)

// RunResult is one invocation's outcome in a RunMany batch. Each invocation
// is an independent run: Err, when non-nil, is the same *RunError (or
// validation error) the equivalent single Run would have returned, and a
// failure leaves the other invocations untouched.
type RunResult struct {
	Value value.Value
	Err   error
}

// runPool is the persistent worker pool behind the repeated-run fast path:
// one goroutine per processor, created once per RunMany batch and kept
// alive across every invocation in it. Between runs the workers block on a
// generation condvar instead of exiting, so a run costs one broadcast and
// one rendezvous — no goroutine spawn, no join, no scheduler reallocation.
//
// The handshake: runRound publishes a new generation plus the run's start
// time and wakes everyone; each worker executes engine.workerLoop until the
// run's scheduler closes (quiescence, error, or cancellation), signals
// runWg, and goes back to waiting for the next generation. runRound returns
// when all workers have signaled, which is exactly the post-run quiescence
// point the single-run executor reaches via wg.Wait.
type runPool struct {
	e  *Engine
	nw int

	mu    sync.Mutex
	cond  *sync.Cond
	gen   int64
	start time.Time
	quit  bool

	// runWg is the per-run rendezvous; joinWg joins the goroutines on stop.
	runWg  sync.WaitGroup
	joinWg sync.WaitGroup
}

func newRunPool(e *Engine, nw int) *runPool {
	p := &runPool{e: e, nw: nw}
	p.cond = sync.NewCond(&p.mu)
	p.joinWg.Add(nw)
	for proc := 0; proc < nw; proc++ {
		go p.loop(proc)
	}
	return p
}

// loop is one pooled worker: wait for a generation, run it, signal, repeat.
func (p *runPool) loop(proc int) {
	defer p.joinWg.Done()
	var seen int64
	for {
		p.mu.Lock()
		for p.gen == seen && !p.quit {
			p.cond.Wait()
		}
		if p.quit {
			p.mu.Unlock()
			return
		}
		seen = p.gen
		start := p.start
		p.mu.Unlock()
		// e.sched is set by runReal (via Engine.scheduler) before runRound
		// publishes the generation, so the read here is ordered by the mutex.
		p.e.workerLoop(proc, p.e.sched, start)
		p.runWg.Done()
	}
}

// runRound hands the pooled workers one run and blocks until every worker
// has returned from its loop — the run has quiesced, failed, or been
// cancelled. Called from runReal in place of the spawn-and-join block.
func (p *runPool) runRound(start time.Time) {
	p.runWg.Add(p.nw)
	p.mu.Lock()
	p.gen++
	p.start = start
	p.mu.Unlock()
	p.cond.Broadcast()
	p.runWg.Wait()
}

// stop retires the pool, joining every worker goroutine. Idempotent-unsafe
// by design: RunMany owns the pool's whole lifecycle within one call.
func (p *runPool) stop() {
	p.mu.Lock()
	p.quit = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.joinWg.Wait()
}

// RunMany executes the program once per argument list in batch, reusing
// this engine for every invocation: activation pools, block free lists, and
// the work-stealing scheduler warm up once and serve the whole batch, and in
// multi-worker Real mode the worker goroutines themselves persist across
// runs, parked on a generation handshake instead of being respawned and
// joined per run.
//
// Every invocation keeps single-run semantics: it is individually
// deterministic (bit-identical to a fresh-engine run of the same arguments),
// individually cancellable (a dead ctx fails the remaining invocations with
// FailCanceled without running them), and individually retryable and
// fault-injected (Config.Retry applies per run; a stateful Config.Faults
// plan is rewound before each invocation, so every run sees the same fault
// schedule). A failed invocation records its error in its RunResult slot and
// the batch continues.
//
// The returned error reports engine-level misuse only (an engine already
// running, or a program without main); per-invocation failures never abort
// the batch. After RunMany returns, the engine is left in its final run's
// finished state — Stats, Timing, and Trace describe the last invocation —
// and Reset returns it to runnable as usual.
func (e *Engine) RunMany(ctx context.Context, batch [][]value.Value) ([]RunResult, error) {
	if e.prog.Main == nil {
		return nil, ErrNoMain
	}
	if ctx == nil {
		ctx = context.Background()
	}
	switch e.state.Load() {
	case engRunning:
		return nil, ErrEngineRunning
	case engFinished:
		if err := e.Reset(); err != nil {
			return nil, err
		}
	}
	if nw := e.cfg.workers(); e.cfg.Mode == Real && nw > 1 && len(batch) > 1 {
		// Install the persistent pool for the batch. runReal sees it and
		// routes dispatch through runRound instead of spawning goroutines.
		// The pool is created and retired inside this call, so plain Run
		// users never hold idle goroutines.
		e.pool = newRunPool(e, nw)
		defer func() {
			e.pool.stop()
			e.pool = nil
		}()
	}
	results := make([]RunResult, len(batch))
	for i, args := range batch {
		if i > 0 {
			if err := e.Reset(); err != nil {
				// Unreachable in normal operation (the previous RunContext
				// has returned), but surface it rather than mask it.
				return results, err
			}
		}
		v, err := e.RunContext(ctx, args...)
		results[i] = RunResult{Value: v, Err: err}
	}
	return results, nil
}
