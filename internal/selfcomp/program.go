package selfcomp

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/operator"
	"repro/internal/runtime"
)

// programSrc is the parallel compiler's coordination framework — "we remove
// a 100 line main module and replace it with 100 lines of Delirium" (§6.4).
// One fork/join per pass, chained through the compilation state.
const programSrc = `
main()
  let st0 = lex()
      <p1,p2,p3> = parse_split(st0)
      q1 = parse_bite(p1)
      q2 = parse_bite(p2)
      q3 = parse_bite(p3)
      st1 = parse_join(q1,q2,q3)

      <m1,m2,m3> = macro_split(st1)
      n1 = macro_bite(m1)
      n2 = macro_bite(m2)
      n3 = macro_bite(m3)
      st2 = macro_join(n1,n2,n3)

      <e1,e2,e3> = env_split(st2)
      f1 = env_bite(e1)
      f2 = env_bite(e2)
      f3 = env_bite(e3)
      st3 = env_join(f1,f2,f3)

      <o1,o2,o3> = opt_split(st3)
      g1 = opt_bite(o1)
      g2 = opt_bite(o2)
      g3 = opt_bite(o3)
      st4 = opt_join(g1,g2,g3)

      <i1,i2,i3> = inline_split(st4)
      h1 = inline_bite(i1)
      h2 = inline_bite(i2)
      h3 = inline_bite(i3)
      st5 = inline_join(h1,h2,h3)

      <c1,c2,c3> = graph_split(st5)
      d1 = graph_bite(c1)
      d2 = graph_bite(c2)
      d3 = graph_bite(c3)
  in graph_join(d1,d2,d3)
`

// Source returns the coordination program text.
func Source() string { return programSrc }

// opPass maps operator names to Table 1 pass names.
func opPass(op string) string {
	switch {
	case op == "lex":
		return "Lexing"
	case len(op) >= 5 && op[:5] == "parse":
		return "Parsing"
	case len(op) >= 5 && op[:5] == "macro":
		return "Macro Expansion"
	case len(op) >= 3 && op[:3] == "env":
		return "Env Analysis"
	case len(op) >= 3 && op[:3] == "opt", len(op) >= 6 && op[:6] == "inline":
		return "Optimization"
	case len(op) >= 5 && op[:5] == "graph":
		return "Graph Conversion"
	default:
		return ""
	}
}

// Result is one self-hosted compilation run.
type Result struct {
	// Graph is the compiled program (identical to the direct driver's
	// output for the same source).
	Graph *graph.Program
	// PassTicks maps Table 1 pass names to elapsed virtual time: the span
	// from the pass's first operator start to its last operator end.
	PassTicks map[string]int64
	// TotalTicks is the whole compilation's virtual makespan.
	TotalTicks int64
	// Engine exposes execution statistics.
	Engine *runtime.Engine
}

// Compile runs the parallel compiler as a Delirium program on a simulated
// Sequent Symmetry with the given processor count, compiling (file, src)
// against reg (nil selects the builtins). The run is deterministic.
func Compile(file, src string, reg *operator.Registry, procs int) (*Result, error) {
	if reg == nil {
		reg = operator.Builtins()
	}
	ops := Operators(file, src, reg)
	prog, err := compile.Compile("selfcomp.dlr", Source(), compile.Options{Registry: ops})
	if err != nil {
		return nil, fmt.Errorf("selfcomp: compiling the compiler's framework: %w", err)
	}
	eng := runtime.New(prog.Program, runtime.Config{
		Mode:    runtime.Simulated,
		Workers: procs,
		Machine: machine.Sequent().WithProcs(procs),
		Timing:  true,
		MaxOps:  100_000_000,
	})
	out, err := eng.Run()
	if err != nil {
		return nil, err
	}
	st, err := stateOf(out, "selfcomp result")
	if err != nil {
		return nil, err
	}
	res := &Result{Graph: st.out, Engine: eng, PassTicks: make(map[string]int64)}

	starts := make(map[string]int64)
	ends := make(map[string]int64)
	for _, e := range eng.Timing().Entries() {
		pass := opPass(e.Name)
		if pass == "" {
			continue
		}
		if cur, ok := starts[pass]; !ok || e.Start < cur {
			starts[pass] = e.Start
		}
		if end := e.Start + e.Ticks; end > ends[pass] {
			ends[pass] = end
		}
	}
	for pass, s0 := range starts {
		res.PassTicks[pass] = ends[pass] - s0
	}
	res.TotalTicks = eng.Stats().MakespanTicks
	return res, nil
}

// Table1Text regenerates Table 1: the same workload compiled by the
// self-hosted parallel compiler on one and on `workers` simulated Sequent
// processors, with per-pass elapsed virtual times.
func Table1Text(funcs, workers int) (string, error) {
	src := compile.Generate(funcs, 1990)
	seq, err := Compile("workload.dlr", src, nil, 1)
	if err != nil {
		return "", err
	}
	par, err := Compile("workload.dlr", src, nil, workers)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("Table 1: The Parallel Compiler (on a simulated Sequent)\n"+
		"workload: %d synthetic functions; times in virtual msec (1000 ticks = 1 msec)\n"+
		"paper:  lexing 91->91, parsing 200->78, macro 117->50, env 300->120,\n"+
		"        opt 350->160, graph 380->160, totals 1438->659 (n=3)\n\n", funcs)
	out += fmt.Sprintf("%-18s %12s %16s %9s\n", "Pass", "Sequential", fmt.Sprintf("Parallel (n=%d)", workers), "Speedup")
	var tseq, tpar int64
	for _, name := range compile.PassNames {
		a, b := seq.PassTicks[name], par.PassTicks[name]
		tseq += a
		tpar += b
		sp := 0.0
		if b > 0 {
			sp = float64(a) / float64(b)
		}
		out += fmt.Sprintf("%-18s %12.1f %16.1f %8.2fx\n", name, float64(a)/1000, float64(b)/1000, sp)
	}
	out += fmt.Sprintf("%-18s %12.1f %16.1f %8.2fx\n", "Totals",
		float64(tseq)/1000, float64(tpar)/1000, float64(tseq)/float64(tpar))
	return out, nil
}
