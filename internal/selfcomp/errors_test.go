package selfcomp

import (
	"strings"
	"testing"

	"repro/internal/operator"
	"repro/internal/value"
)

func opCall(t *testing.T, reg *operator.Registry, name string, args ...value.Value) (value.Value, error) {
	t.Helper()
	op, ok := reg.Lookup(name)
	if !ok {
		t.Fatalf("operator %s missing", name)
	}
	return op.Fn(operator.NopContext, args)
}

func TestCompilerOperatorMisuse(t *testing.T) {
	reg := Operators("t.dlr", "main() 1", operator.Builtins())
	wrong := value.NewBlock(&value.Opaque{Payload: 99, Words: 1})
	cases := []struct {
		op   string
		args []value.Value
		want string
	}{
		{"parse_split", []value.Value{value.Int(1)}, "block argument required"},
		{"parse_split", []value.Value{wrong}, "expected compiler state"},
		{"parse_bite", []value.Value{wrong}, "expected work piece"},
		{"parse_join", []value.Value{wrong, wrong, wrong}, "expected work piece"},
		{"macro_bite", []value.Value{nil}, "missing block"},
	}
	for _, c := range cases {
		_, err := opCall(t, reg, c.op, c.args...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.op, err, c.want)
		}
	}
}

func TestJoinRejectsMixedCompilations(t *testing.T) {
	reg := Operators("t.dlr", "main() 1", operator.Builtins())
	st1, err := opCall(t, reg, "lex")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := opCall(t, reg, "lex")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := opCall(t, reg, "parse_split", st1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := opCall(t, reg, "parse_split", st2)
	if err != nil {
		t.Fatal(err)
	}
	a := p1.(value.Tuple)
	b := p2.(value.Tuple)
	// Pieces 0 and 1 from different compilations must be rejected.
	if _, err := opCall(t, reg, "parse_join", a[0], b[1], a[2]); err == nil ||
		!strings.Contains(err.Error(), "different compilations") {
		t.Errorf("err = %v", err)
	}
	// Duplicate piece indexes too.
	if _, err := opCall(t, reg, "parse_join", a[0], a[0], a[2]); err == nil ||
		!strings.Contains(err.Error(), "bad piece index") {
		t.Errorf("err = %v", err)
	}
}

func TestLexSurfacesScanErrors(t *testing.T) {
	reg := Operators("t.dlr", "main() \x01", operator.Builtins())
	if _, err := opCall(t, reg, "lex"); err == nil ||
		!strings.Contains(err.Error(), "lexing failed") {
		t.Errorf("err = %v", err)
	}
}

func TestSelfcompSourceIsValidDelirium(t *testing.T) {
	// The framework itself must compile with the compiler operators in a
	// registry (it is, after all, a Delirium program).
	if !strings.Contains(Source(), "graph_join(d1,d2,d3)") {
		t.Error("framework text changed unexpectedly")
	}
}
