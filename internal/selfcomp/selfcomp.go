// Package selfcomp is the paper's case study #2 (§6): the Delirium
// compiler parallelized in Delirium itself. Every pass after lexing is a
// fork/join over three worker operators — the paper ran on three Sequent
// Symmetry processors — with a sequential crown step that splits the work
// and a join that merges it ("merging is implicit and involves no actual
// work other than returning the pointer").
//
// The coordination framework below is roughly 60 lines of Delirium; the
// operators in this file are the paper's "400 line auxiliary module that
// defines the operators", built on the same pass implementations the
// direct driver in internal/compile uses. Running the framework on the
// simulated Sequent with one and with three processors regenerates
// Table 1 deterministically: lexing is unchanged, every other pass speeds
// up by 2–3x, and the total lands near the paper's 2.2x.
//
// Work charging is calibrated so the sequential pass profile resembles
// Table 1's sequential column (lex:parse:macro:env:opt:graph close to
// 91:200:117:300:350:380); the parallel *structure* — what splits, what
// stays on the crown — is what the experiment actually measures.
package selfcomp

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/lexer"
	"repro/internal/macro"
	"repro/internal/operator"
	"repro/internal/opt"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/value"
)

// Ways is the fork width. Like the retina model's four-way splits, the
// width is hard-wired in the coordination program (§9.2 discusses this
// limitation); the paper used the Sequent's three processors.
const Ways = 3

// Per-unit work charges, calibrated to Table 1's sequential profile.
const (
	cLexTok   = 2  // per token, lexing
	cParseTok = 4  // per token, parsing
	cMacro    = 5  // per AST node, macro expansion
	cEnv      = 13 // per AST node, environment analysis
	cOptLocal = 7  // per AST node, optimization local phase
	cOptInl   = 8  // per AST node, inline phase
	cGraph    = 17 // per AST node, graph conversion
)

// state is the compilation in flight; it travels linearly between the
// split and join operators, while bite operators receive pieces holding
// disjoint portions of the work.
type state struct {
	file string
	src  string
	reg  *operator.Registry // registry the compiled program resolves against

	toks   []lexer.Token
	chunks [][]lexer.Token
	// chunkProgs[i] is the parse of chunk i (written by exactly one bite).
	chunkProgs []*ast.Program
	prog       *ast.Program
	table      *macro.Table
	// funcs is the current working set; slots are written disjointly.
	funcs []*ast.FuncDecl
	crown *sema.Crown
	units []*sema.FuncUnit
	info  *sema.Info
	names []string // info.Order snapshot for per-function stages
	snap  *opt.BodySnapshot
	osts  *opt.Stats
	sets  [][]*graph.Template
	out   *graph.Program

	diags source.DiagList // crown diagnostics, merged with piece diags
}

// piece is one worker's share of a pass: a set of item indexes into the
// stage's work list, plus a private diagnostics buffer.
type piece struct {
	idx   int
	items []int
	st    *state
	diags source.DiagList
}

func stateBlock(s *state, st *value.BlockStats) *value.Block {
	return value.NewBlockStats(&value.Opaque{Payload: s, Words: len(s.src) / 8}, st)
}

func stateOf(v value.Value, what string) (*state, error) {
	p, err := opaqueOf(v, what)
	if err != nil {
		return nil, err
	}
	s, ok := p.(*state)
	if !ok {
		return nil, fmt.Errorf("%s: expected compiler state, got %T", what, p)
	}
	return s, nil
}

func pieceOf(v value.Value, what string) (*piece, error) {
	p, err := opaqueOf(v, what)
	if err != nil {
		return nil, err
	}
	pc, ok := p.(*piece)
	if !ok {
		return nil, fmt.Errorf("%s: expected work piece, got %T", what, p)
	}
	return pc, nil
}

func opaqueOf(v value.Value, what string) (interface{}, error) {
	if v == nil {
		return nil, fmt.Errorf("%s: missing block argument", what)
	}
	b, ok := v.(*value.Block)
	if !ok {
		return nil, fmt.Errorf("%s: block argument required, got %s", what, v.Kind())
	}
	o, ok := b.Data().(*value.Opaque)
	if !ok {
		return nil, fmt.Errorf("%s: unexpected payload %T", what, b.Data())
	}
	return o.Payload, nil
}

// balance distributes item weights over Ways groups greedily (heaviest
// first would need sorting; stable in-order assignment to the lightest
// group is deterministic and nearly as even for many small items).
func balance(weights []int) [Ways][]int {
	var groups [Ways][]int
	var loads [Ways]int
	for i, w := range weights {
		best := 0
		for g := 1; g < Ways; g++ {
			if loads[g] < loads[best] {
				best = g
			}
		}
		groups[best] = append(groups[best], i)
		loads[best] += w
	}
	return groups
}

// splitPieces wraps balanced groups in piece blocks; piece 0 carries the
// state onward.
func splitPieces(s *state, weights []int, ctx operator.Context) value.Value {
	groups := balance(weights)
	out := make(value.Tuple, Ways)
	for i := 0; i < Ways; i++ {
		pc := &piece{idx: i, items: groups[i], st: s}
		out[i] = value.NewBlockStats(&value.Opaque{Payload: pc, Words: len(pc.items) + 1}, ctx.BlockStats())
	}
	return out
}

// joinPieces validates the Ways pieces, merges their diagnostics into the
// state in index order, and returns the state.
func joinPieces(args []value.Value, what string) (*state, error) {
	var ordered [Ways]*piece
	for _, a := range args {
		pc, err := pieceOf(a, what)
		if err != nil {
			return nil, err
		}
		if pc.idx < 0 || pc.idx >= Ways || ordered[pc.idx] != nil {
			return nil, fmt.Errorf("%s: bad piece index %d", what, pc.idx)
		}
		ordered[pc.idx] = pc
	}
	st := ordered[0].st
	for _, pc := range ordered {
		if pc == nil {
			return nil, fmt.Errorf("%s: missing piece", what)
		}
		if pc.st != st {
			return nil, fmt.Errorf("%s: pieces from different compilations", what)
		}
		st.diags.Merge(&pc.diags)
	}
	return st, nil
}

// countTokens sums chunk token counts for the given items.
func countTokens(chunks [][]lexer.Token, items []int) int {
	n := 0
	for _, i := range items {
		n += len(chunks[i])
	}
	return n
}

// funcWeights returns ast.Count per function declaration.
func funcWeights(funcs []*ast.FuncDecl) []int {
	w := make([]int, len(funcs))
	for i, f := range funcs {
		w[i] = ast.Count(f.Body) + 1
	}
	return w
}

// failIfErrors aborts the pipeline when diagnostics carry errors, exactly
// like the direct driver between passes.
func failIfErrors(s *state, pass string) error {
	if s.diags.HasErrors() {
		return fmt.Errorf("%s failed:\n%v", pass, s.diags.Err())
	}
	return nil
}
