package selfcomp

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/compile"
)

func TestSelfHostedCompilerProducesWorkingPrograms(t *testing.T) {
	src := compile.Generate(60, 5)
	res, err := Compile("w.dlr", src, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil || res.Graph.Main == nil {
		t.Fatal("no compiled program")
	}
	// The self-hosted compiler's output matches the direct driver's.
	direct, err := compile.Compile("w.dlr", src, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Templates) != len(direct.Program.Templates) {
		t.Fatalf("template counts differ: selfhosted %d vs direct %d",
			len(res.Graph.Templates), len(direct.Program.Templates))
	}
	var names []string
	for name := range direct.Program.Templates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a, ok := res.Graph.Templates[name]
		if !ok {
			t.Fatalf("template %s missing from self-hosted output", name)
		}
		b := direct.Program.Templates[name]
		if len(a.Nodes) != len(b.Nodes) || a.Result != b.Result {
			t.Errorf("template %s differs: %d/%d nodes", name, len(a.Nodes), len(b.Nodes))
		}
	}
}

func TestSelfHostedCompilerErrorsSurface(t *testing.T) {
	if _, err := Compile("bad.dlr", "main() undefined_op(1)", nil, 3); err == nil ||
		!strings.Contains(err.Error(), "undefined name") {
		t.Errorf("err = %v, want undefined-name diagnostic", err)
	}
	if _, err := Compile("bad.dlr", "main() let in", nil, 3); err == nil {
		t.Error("syntax error should surface")
	}
}

func TestTable1ShapeSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	src := compile.Generate(240, 1990)
	seq, err := Compile("w.dlr", src, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compile("w.dlr", src, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Lexing unchanged (one sequential operator either way).
	lexRatio := float64(seq.PassTicks["Lexing"]) / float64(par.PassTicks["Lexing"])
	if lexRatio < 0.98 || lexRatio > 1.02 {
		t.Errorf("lexing should be unchanged, ratio %.3f", lexRatio)
	}
	// Every other pass speeds up by 2-3x (paper's range).
	for _, pass := range []string{"Parsing", "Macro Expansion", "Env Analysis", "Optimization", "Graph Conversion"} {
		sp := float64(seq.PassTicks[pass]) / float64(par.PassTicks[pass])
		if sp < 1.8 || sp > 3.05 {
			t.Errorf("%s speedup = %.2f, want in [1.8, 3.05]", pass, sp)
		}
	}
	// Total lands near the paper's 2.2x.
	total := float64(seq.TotalTicks) / float64(par.TotalTicks)
	if total < 1.9 || total > 2.8 {
		t.Errorf("total speedup = %.2f, want ~2.2", total)
	}
	t.Logf("total speedup %.2f", total)
}

func TestTable1Deterministic(t *testing.T) {
	src := compile.Generate(40, 3)
	a, err := Compile("w.dlr", src, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile("w.dlr", src, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTicks != b.TotalTicks {
		t.Errorf("virtual times differ: %d vs %d", a.TotalTicks, b.TotalTicks)
	}
	for pass, ticks := range a.PassTicks {
		if b.PassTicks[pass] != ticks {
			t.Errorf("pass %s differs: %d vs %d", pass, ticks, b.PassTicks[pass])
		}
	}
}

func TestTable1Text(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	text, err := Table1Text(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Lexing", "Graph Conversion", "Totals", "Speedup"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table1Text missing %q:\n%s", want, text)
		}
	}
}

func TestBalanceEvenness(t *testing.T) {
	weights := make([]int, 300)
	for i := range weights {
		weights[i] = 1 + i%17
	}
	groups := balance(weights)
	var loads [Ways]int
	seen := make(map[int]bool)
	for g, items := range groups {
		for _, i := range items {
			if seen[i] {
				t.Fatalf("item %d assigned twice", i)
			}
			seen[i] = true
			loads[g] += weights[i]
		}
	}
	if len(seen) != len(weights) {
		t.Fatalf("assigned %d items, want %d", len(seen), len(weights))
	}
	minL, maxL := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if float64(maxL) > 1.2*float64(minL) {
		t.Errorf("unbalanced groups: %v", loads)
	}
}

func TestOpPassMapping(t *testing.T) {
	cases := map[string]string{
		"lex":          "Lexing",
		"parse_split":  "Parsing",
		"parse_bite":   "Parsing",
		"macro_join":   "Macro Expansion",
		"env_bite":     "Env Analysis",
		"opt_bite":     "Optimization",
		"inline_join":  "Optimization",
		"graph_bite":   "Graph Conversion",
		"incr":         "",
		"is_not_equal": "",
	}
	for op, want := range cases {
		if got := opPass(op); got != want {
			t.Errorf("opPass(%q) = %q, want %q", op, got, want)
		}
	}
}
