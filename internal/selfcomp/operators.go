package selfcomp

import (
	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/lexer"
	"repro/internal/macro"
	"repro/internal/operator"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/value"
)

// Operators builds the compiler-operator registry for compiling (file,
// src) against reg — the paper's auxiliary module defining the parallel
// compiler's operators.
func Operators(file, src string, reg *operator.Registry) *operator.Registry {
	r := operator.NewRegistry(operator.Builtins())

	// ---- Lexing (sequential; Table 1 shows it unchanged) ----
	r.MustRegister(&operator.Operator{
		Name: "lex", Arity: 0,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			s := &state{file: file, src: src, reg: reg}
			s.toks = lexer.New(file, src, &s.diags).ScanAll()
			ctx.Charge(int64(cLexTok * len(s.toks)))
			if err := failIfErrors(s, "lexing"); err != nil {
				return nil, err
			}
			return stateBlock(s, ctx.BlockStats()), nil
		},
	})

	// ---- Parsing: split chunks / parse / merge in chunk order ----
	r.MustRegister(&operator.Operator{
		Name: "parse_split", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := stateOf(args[0], "parse_split")
			if err != nil {
				return nil, err
			}
			s.chunks = parser.SplitTopLevel(s.toks)
			s.chunkProgs = make([]*ast.Program, len(s.chunks))
			weights := make([]int, len(s.chunks))
			for i, c := range s.chunks {
				weights[i] = len(c)
			}
			ctx.Charge(int64(cParseTok * len(s.toks) / 25)) // crown ~4%
			return splitPieces(s, weights, ctx), nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "parse_bite", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			pc, err := pieceOf(args[0], "parse_bite")
			if err != nil {
				return nil, err
			}
			for _, i := range pc.items {
				pc.st.chunkProgs[i] = parser.ParseChunk(pc.st.file, pc.st.chunks[i], &pc.diags)
			}
			ctx.Charge(int64(cParseTok * countTokens(pc.st.chunks, pc.items)))
			return args[0], nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "parse_join", Arity: Ways, Destructive: []bool{true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := joinPieces(args, "parse_join")
			if err != nil {
				return nil, err
			}
			s.prog = &ast.Program{File: s.file}
			for _, p := range s.chunkProgs {
				if p == nil {
					continue
				}
				s.prog.Defines = append(s.prog.Defines, p.Defines...)
				s.prog.Funcs = append(s.prog.Funcs, p.Funcs...)
			}
			ctx.Charge(int64(cParseTok * len(s.toks) / 33)) // crown ~3%
			if err := failIfErrors(s, "parsing"); err != nil {
				return nil, err
			}
			return stateBlock(s, ctx.BlockStats()), nil
		},
	})

	// ---- Macro expansion: a top-down update walk ----
	r.MustRegister(&operator.Operator{
		Name: "macro_split", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := stateOf(args[0], "macro_split")
			if err != nil {
				return nil, err
			}
			s.table = macro.BuildTable(s.prog.Defines, &s.diags)
			s.funcs = append([]*ast.FuncDecl(nil), s.prog.Funcs...)
			ctx.Charge(int64(cMacro * (ast.CountProgram(s.prog)/30 + 8*s.table.Len())))
			return splitPieces(s, funcWeights(s.funcs), ctx), nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "macro_bite", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			pc, err := pieceOf(args[0], "macro_bite")
			if err != nil {
				return nil, err
			}
			work := 0
			for _, i := range pc.items {
				work += ast.Count(pc.st.funcs[i].Body)
				pc.st.funcs[i] = pc.st.table.ExpandFunc(pc.st.funcs[i], &pc.diags)
			}
			ctx.Charge(int64(cMacro * work))
			return args[0], nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "macro_join", Arity: Ways, Destructive: []bool{true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := joinPieces(args, "macro_join")
			if err != nil {
				return nil, err
			}
			s.prog = &ast.Program{File: s.file, Funcs: s.funcs}
			ctx.Charge(int64(cMacro * len(s.funcs)))
			if err := failIfErrors(s, "macro expansion"); err != nil {
				return nil, err
			}
			return stateBlock(s, ctx.BlockStats()), nil
		},
	})

	// ---- Environment analysis: an inherited-attribute walk ----
	r.MustRegister(&operator.Operator{
		Name: "env_split", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := stateOf(args[0], "env_split")
			if err != nil {
				return nil, err
			}
			s.crown = sema.Collect(s.prog, s.reg, &s.diags)
			s.funcs = s.crown.Prog.Funcs
			s.units = make([]*sema.FuncUnit, len(s.funcs))
			ctx.Charge(int64(cEnv * ast.CountProgram(s.prog) / 30))
			return splitPieces(s, funcWeights(s.funcs), ctx), nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "env_bite", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			pc, err := pieceOf(args[0], "env_bite")
			if err != nil {
				return nil, err
			}
			work := 0
			for _, i := range pc.items {
				work += ast.Count(pc.st.funcs[i].Body)
				pc.st.units[i] = sema.AnalyzeOne(pc.st.crown, pc.st.funcs[i], &pc.diags)
			}
			ctx.Charge(int64(cEnv * work))
			return args[0], nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "env_join", Arity: Ways, Destructive: []bool{true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := joinPieces(args, "env_join")
			if err != nil {
				return nil, err
			}
			if err := failIfErrors(s, "environment analysis"); err != nil {
				return nil, err
			}
			s.info = sema.Finalize(s.crown, s.units, &s.diags)
			s.names = s.info.Order
			s.osts = &opt.Stats{}
			ctx.Charge(int64(cEnv * len(s.names)))
			if err := failIfErrors(s, "environment analysis"); err != nil {
				return nil, err
			}
			return stateBlock(s, ctx.BlockStats()), nil
		},
	})

	// ---- Optimization: two synthesized-attribute phases around the
	// inline snapshot ----
	registerOptPhase(r, "opt", cOptLocal, func(pc *piece, i int) int {
		f := pc.st.info.Funcs[pc.st.names[i]].Decl
		n := ast.Count(f.Body)
		opt.OptimizeFunc(pc.st.info, f, opt.Options{Level: 2}, pc.st.osts)
		return n
	}, func(s *state, ctx operator.Context) {
		// The snapshot is the crown cost of the inline phase.
		s.snap = opt.Snapshot(s.info)
		ctx.Charge(int64(cOptInl * totalNodes(s) / 12))
	})
	registerOptPhase(r, "inline", cOptInl, func(pc *piece, i int) int {
		f := pc.st.info.Funcs[pc.st.names[i]].Decl
		n := ast.Count(f.Body)
		opt.InlineFunc(pc.st.info, f, pc.st.snap, opt.Options{Level: 2}, pc.st.osts)
		opt.OptimizeFunc(pc.st.info, f, opt.Options{Level: 2}, pc.st.osts)
		return n
	}, nil)

	// ---- Graph conversion ----
	r.MustRegister(&operator.Operator{
		Name: "graph_split", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := stateOf(args[0], "graph_split")
			if err != nil {
				return nil, err
			}
			s.sets = make([][]*graph.Template, len(s.names))
			ctx.Charge(int64(cGraph * totalNodes(s) / 30))
			return splitPieces(s, nameWeights(s), ctx), nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "graph_bite", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			pc, err := pieceOf(args[0], "graph_bite")
			if err != nil {
				return nil, err
			}
			work := 0
			for _, i := range pc.items {
				f := pc.st.info.Funcs[pc.st.names[i]].Decl
				work += ast.Count(f.Body)
				pc.st.sets[i] = graph.BuildFunc(pc.st.info, f, &pc.diags)
			}
			ctx.Charge(int64(cGraph * work))
			return args[0], nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: "graph_join", Arity: Ways, Destructive: []bool{true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := joinPieces(args, "graph_join")
			if err != nil {
				return nil, err
			}
			s.out = &graph.Program{Templates: make(map[string]*graph.Template), Registry: s.reg}
			for _, set := range s.sets {
				for _, t := range set {
					s.out.Templates[t.Name] = t
				}
			}
			graph.Link(s.out, &s.diags)
			ctx.Charge(int64(cGraph * totalNodes(s) / 25))
			if err := failIfErrors(s, "graph conversion"); err != nil {
				return nil, err
			}
			return stateBlock(s, ctx.BlockStats()), nil
		},
	})

	return r
}

// registerOptPhase registers a split/bite/join triple for an optimization
// phase. post, if non-nil, runs in the join (the inline snapshot).
func registerOptPhase(r *operator.Registry, name string, unitCost int,
	work func(pc *piece, i int) int, post func(*state, operator.Context)) {
	r.MustRegister(&operator.Operator{
		Name: name + "_split", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := stateOf(args[0], name+"_split")
			if err != nil {
				return nil, err
			}
			ctx.Charge(int64(unitCost * totalNodes(s) / 40))
			return splitPieces(s, nameWeights(s), ctx), nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: name + "_bite", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			pc, err := pieceOf(args[0], name+"_bite")
			if err != nil {
				return nil, err
			}
			total := 0
			for _, i := range pc.items {
				total += work(pc, i)
			}
			ctx.Charge(int64(unitCost * total))
			return args[0], nil
		},
	})
	r.MustRegister(&operator.Operator{
		Name: name + "_join", Arity: Ways, Destructive: []bool{true, true, true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			s, err := joinPieces(args, name+"_join")
			if err != nil {
				return nil, err
			}
			if post != nil {
				post(s, ctx)
			} else {
				ctx.Charge(int64(unitCost * len(s.names)))
			}
			if err := failIfErrors(s, name); err != nil {
				return nil, err
			}
			return stateBlock(s, ctx.BlockStats()), nil
		},
	})
}

// totalNodes counts the current AST size over all analyzed functions.
func totalNodes(s *state) int {
	n := 0
	for _, name := range s.names {
		n += ast.Count(s.info.Funcs[name].Decl.Body)
	}
	return n
}

// nameWeights returns per-function node counts over info.Order.
func nameWeights(s *state) []int {
	w := make([]int, len(s.names))
	for i, name := range s.names {
		w[i] = ast.Count(s.info.Funcs[name].Decl.Body) + 1
	}
	return w
}
