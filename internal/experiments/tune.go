package experiments

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/compile"
	"repro/internal/machine"
	"repro/internal/retina"
	"repro/internal/runtime"
)

// TuneText runs the closed profile-guided loop on the unbalanced retina
// model at the §5.2 listing scale: compile with unit weights, calibrate with
// timing and tracing on, re-fuse with the measured per-operator costs,
// re-run both plans, keep the winner — and print the granularity advisor's
// verdict, which should finger post_up exactly as the paper's authors did by
// reading the timing listing.
func TuneText() (string, error) {
	cfg := listingConfig()
	reg, err := retina.Operators(cfg)
	if err != nil {
		return "", err
	}
	res, err := adapt.Tune(nil, "retina1.dlr", retina.Source(cfg, retina.V1), adapt.Config{
		Compile: compile.Options{Registry: reg, MemPlan: true, Adaptive: true},
		Runtime: runtime.Config{Mode: runtime.Simulated, Workers: 4,
			Machine: machine.CrayYMP(), MaxOps: 50_000_000},
	})
	if err != nil {
		return "", err
	}
	head := fmt.Sprintf("Adaptive loop, unbalanced retina (%s version), simulated Cray, 4 workers:\n\n",
		retina.V1)
	return head + res.Report(), nil
}
