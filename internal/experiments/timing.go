package experiments

import (
	"time"

	"repro/internal/treewalk"
)

// timeWalk times fn over a freshly built tree, taking the minimum of
// `repeats` runs. The tree build is excluded from the measurement.
func timeWalk(repeats int, fn func(*treewalk.Node), nodes int) int64 {
	if repeats < 1 {
		repeats = 1
	}
	best := int64(1<<63 - 1)
	for i := 0; i < repeats; i++ {
		root := treewalk.Build(nodes, 4, 42)
		t0 := time.Now()
		fn(root)
		if d := int64(time.Since(t0)); d < best {
			best = d
		}
	}
	return best
}

// busy is a small deterministic per-node computation that makes the walk
// compute-bound enough to show parallel scaling.
func busy(v int) int {
	x := uint64(v)*2862933555777941757 + 3037000493
	for i := 0; i < 64; i++ {
		x ^= x >> 13
		x *= 1099511628211
	}
	return int(x & 0xffff)
}
