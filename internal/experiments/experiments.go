// Package experiments regenerates every table and figure of the paper's
// evaluation, as indexed in DESIGN.md and recorded in EXPERIMENTS.md:
//
//	fig1   Figure 1 — retina speedup on a (simulated) Cray Y-MP, 1–4 procs
//	tab1   Table 1 — per-pass compiler times, sequential vs parallel n=3
//	tab2   Table 2 — coordination model comparison (taxonomy)
//	lst1   §5.2 unbalanced node-timing listing (post_up dominates)
//	lst2   §5.2 balanced node-timing listing (update_bite balanced)
//	ovh    §7 runtime overhead (< 3 %, < 1 % on the retina model)
//	prio   §7 priority-scheme ablation (peak live activations)
//	aff    §9.3 affinity ablation on the NUMA Butterfly profile
//	walks  §6.2 parallel tree-walk scaling
//	queens §3 example (92 solutions, deterministic order)
//	faults fault-tolerance acceptance: every retina operator killed once,
//	       retried, output bit-identical to the fault-free run
//	thru   throughput mode: fresh engine per run vs one reused engine
//	       (RunMany), results bit-identical, reuse speedup reported
//	stress differential stress harness: seeded random coordination graphs
//	       through the executor × workers × fuse×memplan × reuse × faults
//	       matrix, bit-identity and block accounting on every run
//
// Absolute numbers depend on the host and the virtual-machine calibration;
// the experiments reproduce the paper's *shapes*: who wins, by roughly what
// factor, and where the crossovers fall.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/compile"
	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/queens"
	"repro/internal/retina"
	"repro/internal/runtime"
	"repro/internal/selfcomp"
	"repro/internal/stress"
	"repro/internal/treewalk"
	"repro/internal/value"
)

// Fig1Config is the retina workload used for Figure 1.
func Fig1Config() retina.Config {
	return retina.Config{W: 64, H: 64, K: 5, Slabs: 4, Timesteps: 3,
		TargetsPerQuarter: 16, TargetWork: 1600, Seed: 1990}
}

// Fig1Row is one point of the speedup curve.
type Fig1Row struct {
	Procs     int
	SpeedupV1 float64 // first parallelization (§5.1)
	SpeedupV2 float64 // balanced version (§5.2), the Figure 1 curve
}

// Fig1 reproduces Figure 1: retina-model speedup over the sequential
// version on a simulated Cray Y-MP with one to four processors, for both
// program versions.
func Fig1() ([]Fig1Row, error) {
	cfg := Fig1Config()
	mach := machine.CrayYMP()
	makespan := func(v retina.Version, procs int) (int64, error) {
		_, eng, err := retina.Run(cfg, v, runtime.Config{
			Mode: runtime.Simulated, Workers: procs, Machine: mach, MaxOps: 50_000_000})
		if err != nil {
			return 0, err
		}
		return eng.Stats().MakespanTicks, nil
	}
	base1, err := makespan(retina.V1, 1)
	if err != nil {
		return nil, err
	}
	base2, err := makespan(retina.V2, 1)
	if err != nil {
		return nil, err
	}
	var rows []Fig1Row
	for procs := 1; procs <= 4; procs++ {
		t1, err := makespan(retina.V1, procs)
		if err != nil {
			return nil, err
		}
		t2, err := makespan(retina.V2, procs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1Row{
			Procs:     procs,
			SpeedupV1: float64(base1) / float64(t1),
			SpeedupV2: float64(base2) / float64(t2),
		})
	}
	return rows, nil
}

// Fig1Text renders the Figure 1 reproduction.
func Fig1Text() (string, error) {
	rows, err := Fig1()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 1: Retina Simulation on (simulated) Cray Y-MP\n")
	b.WriteString("paper reports speedups ~1.0 / ~2.0 / ~2.0 / 3.3 for the balanced version\n\n")
	fmt.Fprintf(&b, "%-11s %-22s %-22s\n", "Processors", "Speedup (balanced)", "Speedup (unbalanced)")
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.SpeedupV2*10+0.5))
		fmt.Fprintf(&b, "%-11d %-22.2f %-22.2f %s\n", r.Procs, r.SpeedupV2, r.SpeedupV1, bar)
	}
	return b.String(), nil
}

// Table1 reproduces Table 1 with the self-hosted parallel compiler (case
// study #2): the compiler's passes run as Delirium operators, coordinated
// by a Delirium program, on a simulated Sequent Symmetry with 1 and with
// `workers` processors. Deterministic.
func Table1(funcs, workers int) (seq, par *selfcomp.Result, err error) {
	src := compile.Generate(funcs, 1990)
	seq, err = selfcomp.Compile("workload.dlr", src, nil, 1)
	if err != nil {
		return nil, nil, err
	}
	par, err = selfcomp.Compile("workload.dlr", src, nil, workers)
	if err != nil {
		return nil, nil, err
	}
	return seq, par, nil
}

// Table1Text renders the Table 1 reproduction.
func Table1Text(funcs, workers int) (string, error) {
	return selfcomp.Table1Text(funcs, workers)
}

// Table1WallText renders the secondary, wall-clock variant using the
// direct parallel driver and this host's cores. On machines with few cores
// the speedups are capped accordingly; the simulated Table1Text is the
// primary reproduction.
func Table1WallText(funcs, workers, repeats int) (string, error) {
	if repeats < 1 {
		repeats = 1
	}
	src := compile.Generate(funcs, 1990)
	var seq, par *compile.Result
	for i := 0; i < repeats; i++ {
		s, err := compile.Compile("workload.dlr", src, compile.Options{Workers: 1})
		if err != nil {
			return "", err
		}
		p, err := compile.Compile("workload.dlr", src, compile.Options{Workers: workers})
		if err != nil {
			return "", err
		}
		if seq == nil || s.TotalNanos() < seq.TotalNanos() {
			seq = s
		}
		if par == nil || p.TotalNanos() < par.TotalNanos() {
			par = p
		}
	}
	head := fmt.Sprintf("Table 1 (wall-clock variant): %d synthetic functions, %d workers on this host\n\n",
		funcs, workers)
	return head + compile.Table(seq, par, workers), nil
}

// Table2Row is one taxonomy entry.
type Table2Row struct {
	Language string
	Model    string
	Notation string
}

// Table2 reproduces the coordination-model comparison of §8 verbatim.
func Table2() []Table2Row {
	return []Table2Row{
		{"Delirium", "restricted shared data", "embedding"},
		{"ADA", "rendezvous", "embedded"},
		{"OCCAM", "protocol", "embedded"},
		{"RPC", "protocol", "embedded"},
		{"Linda", "shared database", "embedded"},
		{"Concurrent Prolog", "shared variables", "radical"},
		{"ALFL", "shared data", "radical"},
		{"Enhanced Fortran/C", "task-oriented", "embedded"},
		{"Emerald/Sloop", "protocol", "embedded"},
	}
}

// Table2Text renders Table 2.
func Table2Text() string {
	var b strings.Builder
	b.WriteString("Table 2: Coordination Model Comparison\n\n")
	fmt.Fprintf(&b, "%-20s %-24s %-10s\n", "Language", "Coordination Model", "Notation")
	for _, r := range Table2() {
		fmt.Fprintf(&b, "%-20s %-24s %-10s\n", r.Language, r.Model, r.Notation)
	}
	return b.String()
}

// listingConfig is the smaller retina run used for the §5.2 listings.
func listingConfig() retina.Config {
	return retina.Config{W: 64, H: 64, K: 5, Slabs: 4, Timesteps: 1,
		TargetsPerQuarter: 16, TargetWork: 400, Seed: 1990}
}

// Listing reproduces the §5.2 node-timing listings: the unbalanced version
// shows post_up taking as long as all four convol_bites combined; the
// balanced version shows update_split/update_bite/done_up in near-perfect
// balance. Times are virtual ticks of the simulated Cray. A critical-path
// footer makes the diagnosis mechanical: the unbalanced run reports post_up
// serialized on the path, the balanced run reports no dominating operator.
func Listing(v retina.Version) (string, error) {
	eng, err := runListing(v)
	if err != nil {
		return "", err
	}
	var filter map[string]bool
	if v == retina.V1 {
		filter = map[string]bool{"convol_split": true, "convol_bite": true, "post_up": true, "incr": true}
	} else {
		filter = map[string]bool{"convol_split": true, "convol_bite": true,
			"update_split": true, "update_bite": true, "done_up": true}
	}
	head := fmt.Sprintf("Node timings, %s version (ticks of the simulated Cray clock):\n", v)
	out := head + eng.Timing().Listing(filter)
	if cp := eng.Trace().CriticalPath(); cp != nil {
		out += "\n" + cp.Report()
	}
	return out, nil
}

// runListing performs the §5.2 measurement run with timing and tracing on.
func runListing(v retina.Version) (*runtime.Engine, error) {
	_, eng, err := retina.Run(listingConfig(), v, runtime.Config{
		Mode: runtime.Simulated, Workers: 1, Timing: true, Trace: true,
		Machine: machine.CrayYMP(), MaxOps: 50_000_000})
	return eng, err
}

// ListingCritPath runs the §5.2 measurement and returns just the
// critical-path analysis — the mechanical form of the paper's diagnosis.
func ListingCritPath(v retina.Version) (*runtime.CritPath, error) {
	eng, err := runListing(v)
	if err != nil {
		return nil, err
	}
	return eng.Trace().CriticalPath(), nil
}

// Overhead reproduces the §7 claim: runtime system overhead under three
// percent generally and under one percent for the retina model on four
// processors. Returns the overhead fraction.
func Overhead() (float64, error) {
	_, eng, err := retina.Run(Fig1Config(), retina.V2, runtime.Config{
		Mode: runtime.Simulated, Workers: 4, Machine: machine.CrayYMP(), MaxOps: 50_000_000})
	if err != nil {
		return 0, err
	}
	return eng.Stats().OverheadFraction(), nil
}

// OverheadText renders the overhead measurement.
func OverheadText() (string, error) {
	f, err := Overhead()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("Runtime overhead on retina model, 4 simulated processors: %.2f%%\n"+
		"paper: \"less than one percent\" on the Cray Y-MP (§7); \"<3%%\" generally (§1)\n",
		f*100), nil
}

// PriorityResult is the §7 ablation outcome.
type PriorityResult struct {
	N                  int
	PeakWithPriorities int64
	PeakFIFO           int64
	Solutions          int
}

// Priority measures peak live template activations for n-queens with the
// three-level priority ready queue versus a single FIFO level.
func Priority(n int) (*PriorityResult, error) {
	res := &PriorityResult{N: n}
	for _, disable := range []bool{false, true} {
		sols, eng, err := queens.Run(n, runtime.Config{
			Mode: runtime.Simulated, Workers: 4, MaxOps: 50_000_000,
			DisablePriorities: disable})
		if err != nil {
			return nil, err
		}
		res.Solutions = len(sols)
		if disable {
			res.PeakFIFO = eng.Stats().PeakLive
		} else {
			res.PeakWithPriorities = eng.Stats().PeakLive
		}
	}
	return res, nil
}

// PriorityText renders the ablation.
func PriorityText(n int) (string, error) {
	r, err := Priority(n)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("Priority scheme ablation (%d-queens, %d solutions, 4 simulated procs):\n"+
		"  peak live activations with 3-level priorities: %d\n"+
		"  peak live activations with a single FIFO:      %d   (%.1fx more)\n"+
		"paper (§7): the priority scheme reduces the number of template activations\n",
		r.N, r.Solutions, r.PeakWithPriorities, r.PeakFIFO,
		float64(r.PeakFIFO)/float64(r.PeakWithPriorities)), nil
}

// AffinityRow is one policy's outcome on one machine.
type AffinityRow struct {
	Machine  string
	Policy   runtime.AffinityPolicy
	Makespan int64
	MemTicks int64
}

// Affinity reproduces the §9.3 exploration: the retina model under the
// none/operator/data policies on the NUMA Butterfly profile (where remote
// access costs 6x local) and on the UMA Cray (where affinity is moot).
func Affinity() ([]AffinityRow, error) {
	cfg := retina.Config{W: 48, H: 48, K: 5, Slabs: 4, Timesteps: 2,
		TargetsPerQuarter: 12, TargetWork: 800, Seed: 1990}
	var rows []AffinityRow
	for _, mach := range []*machine.Profile{machine.Butterfly().WithProcs(4), machine.CrayYMP()} {
		for _, pol := range []runtime.AffinityPolicy{runtime.AffinityNone, runtime.AffinityOperator, runtime.AffinityData} {
			_, eng, err := retina.Run(cfg, retina.V2, runtime.Config{
				Mode: runtime.Simulated, Workers: mach.Procs, Machine: mach,
				Affinity: pol, MaxOps: 50_000_000})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AffinityRow{
				Machine:  mach.Name,
				Policy:   pol,
				Makespan: eng.Stats().MakespanTicks,
				MemTicks: eng.Stats().MemoryTicks,
			})
		}
	}
	return rows, nil
}

// AffinityText renders the affinity ablation.
func AffinityText() (string, error) {
	rows, err := Affinity()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Affinity scheduling (§9.3), retina model, 4 processors:\n\n")
	fmt.Fprintf(&b, "%-22s %-10s %14s %14s\n", "Machine", "Policy", "Makespan", "Memory ticks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-10s %14d %14d\n", r.Machine, r.Policy, r.Makespan, r.MemTicks)
	}
	b.WriteString("\npaper: affinity \"of some use\" on the Cray, \"particularly important\"\n" +
		"on NUMA architectures like the Butterfly\n")
	return b.String(), nil
}

// WalksRow is one tree-walk scaling point.
type WalksRow struct {
	Strategy string
	Workers  int
	Nanos    int64
}

// Walks measures the three §6.2 tree-walk strategies on a large weighted
// tree across worker counts (wall-clock; shape only).
func Walks(nodes int, workerCounts []int, repeats int) []WalksRow {
	var rows []WalksRow
	for _, workers := range workerCounts {
		rows = append(rows,
			WalksRow{"top-down", workers, timeWalk(repeats, func(root *treewalk.Node) {
				treewalk.TopDown(root, workers, func(n *treewalk.Node) {
					n.Data = busy(n.Data.(int))
				})
			}, nodes)},
			WalksRow{"inherited", workers, timeWalk(repeats, func(root *treewalk.Node) {
				treewalk.Inherited(root, workers, 0, func(n *treewalk.Node, in interface{}) interface{} {
					return busy(in.(int)) + 1
				})
			}, nodes)},
			WalksRow{"synthesized", workers, timeWalk(repeats, func(root *treewalk.Node) {
				treewalk.Synthesized(root, workers, func(n *treewalk.Node, ch []interface{}) interface{} {
					t := busy(n.Data.(int))
					for _, c := range ch {
						t += c.(int)
					}
					return t
				})
			}, nodes)},
		)
	}
	return rows
}

// WalksText renders the scaling table.
func WalksText(nodes int, workerCounts []int, repeats int) string {
	rows := Walks(nodes, workerCounts, repeats)
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel tree walking (§6.2), %d-node tree (wall-clock, min of %d):\n\n", nodes, repeats)
	fmt.Fprintf(&b, "%-13s", "Strategy")
	for _, w := range workerCounts {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("n=%d", w))
	}
	b.WriteString("   (ms; speedup vs n=1)\n")
	byStrategy := map[string][]WalksRow{}
	order := []string{"top-down", "inherited", "synthesized"}
	for _, r := range rows {
		byStrategy[r.Strategy] = append(byStrategy[r.Strategy], r)
	}
	for _, s := range order {
		fmt.Fprintf(&b, "%-13s", s)
		base := byStrategy[s][0].Nanos
		for _, r := range byStrategy[s] {
			fmt.Fprintf(&b, " %8.2f", float64(r.Nanos)/1e6)
			_ = base
		}
		b.WriteString("  ")
		for _, r := range byStrategy[s] {
			fmt.Fprintf(&b, " %5.2fx", float64(base)/float64(r.Nanos))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// OptRow reports one optimization level's effect on a workload.
type OptRow struct {
	Level      string
	GraphNodes int
	OpsRun     int64
	Makespan   int64
}

// OptAblation quantifies §6.1's motivation for the optimizer —
// "unnecessary nodes in the graph translate into extra overhead at
// run-time" — by compiling the same workload at each optimization level
// and executing it on one simulated processor.
func OptAblation(funcs int) ([]OptRow, error) {
	src := compile.Generate(funcs, 1990)
	levels := []struct {
		name string
		lvl  int
	}{{"none", -1}, {"local", 1}, {"full", 2}}
	var rows []OptRow
	for _, l := range levels {
		res, err := compile.Compile("w.dlr", src, compile.Options{OptLevel: l.lvl})
		if err != nil {
			return nil, err
		}
		eng := runtime.New(res.Program, runtime.Config{
			Mode: runtime.Simulated, Workers: 1, MaxOps: 50_000_000})
		if _, err := eng.Run(); err != nil {
			return nil, err
		}
		rows = append(rows, OptRow{
			Level:      l.name,
			GraphNodes: res.Program.NodeCount(),
			OpsRun:     eng.Stats().OpsExecuted,
			Makespan:   eng.Stats().MakespanTicks,
		})
	}
	return rows, nil
}

// OptAblationText renders the optimizer ablation.
func OptAblationText(funcs int) (string, error) {
	rows, err := OptAblation(funcs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Optimizer ablation (§6.1), %d-function workload, 1 simulated processor:\n\n", funcs)
	fmt.Fprintf(&b, "%-8s %12s %16s %14s\n", "Level", "graph nodes", "executed nodes", "makespan")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12d %16d %14d\n", r.Level, r.GraphNodes, r.OpsRun, r.Makespan)
	}
	base, full := rows[0], rows[len(rows)-1]
	fmt.Fprintf(&b, "\nfull optimization removes %.0f%% of graph nodes and %.0f%% of scheduled\n"+
		"executions (\"unnecessary nodes in the graph translate into extra\n"+
		"overhead at run-time\", §6.1)\n",
		100*(1-float64(full.GraphNodes)/float64(base.GraphNodes)),
		100*(1-float64(full.OpsRun)/float64(base.OpsRun)))
	return b.String(), nil
}

// MemoryRow reports the template-vs-activation memory split for one
// workload (§7: "templates represent over 80% of the memory used by the
// runtime system at a given time", which justifies replicating them in
// processor-local memory).
type MemoryRow struct {
	Workload        string
	TemplateWords   int64
	PeakActivationW int64
	Fraction        float64 // templates / (templates + peak activations)
}

// Memory measures the split on the retina model and the queens program.
func Memory() ([]MemoryRow, error) {
	var rows []MemoryRow

	_, eng, err := retina.Run(listingConfig(), retina.V2, runtime.Config{
		Mode: runtime.Simulated, Workers: 4, MaxOps: 50_000_000})
	if err != nil {
		return nil, err
	}
	prog, err := retina.CompileProgram(listingConfig(), retina.V2)
	if err != nil {
		return nil, err
	}
	rows = append(rows, memRow("retina (balanced)", int64(prog.MemoryWords()), eng.Stats().PeakActivationWords))

	qprog, err := queens.CompileProgram(7)
	if err != nil {
		return nil, err
	}
	_, qeng, err := queens.Run(7, runtime.Config{Mode: runtime.Simulated, Workers: 4, MaxOps: 50_000_000})
	if err != nil {
		return nil, err
	}
	rows = append(rows, memRow("7-queens", int64(qprog.MemoryWords()), qeng.Stats().PeakActivationWords))
	return rows, nil
}

func memRow(name string, tmplWords, actWords int64) MemoryRow {
	return MemoryRow{
		Workload:        name,
		TemplateWords:   tmplWords,
		PeakActivationW: actWords,
		Fraction:        float64(tmplWords) / float64(tmplWords+actWords),
	}
}

// MemoryText renders the template-memory measurement.
func MemoryText() (string, error) {
	rows, err := Memory()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Runtime memory split (§7: templates are >80% of runtime memory):\n\n")
	fmt.Fprintf(&b, "%-20s %16s %22s %10s\n", "Workload", "template words", "peak activation words", "templates")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %16d %22d %9.1f%%\n",
			r.Workload, r.TemplateWords, r.PeakActivationW, r.Fraction*100)
	}
	b.WriteString("\nthe claim holds on the loop-structured retina model; the queens\n" +
		"backtracker is exactly the activation explosion the §7 priority scheme\n" +
		"exists to contain\n")
	return b.String(), nil
}

// retinaV2Ops lists the embedded operators of the balanced retina program.
var retinaV2Ops = []string{"set_up", "target_split", "target_bite", "pre_update",
	"convol_split", "convol_bite", "update_split", "update_bite", "done_up"}

// Faults runs the fault-tolerance acceptance experiment: the balanced
// retina model with every embedded operator killed exactly once — by an
// injected error and again by an injected panic — under deterministic
// retry, on both executors. Because retried attempts run on snapshots of
// their destructively-declared inputs, each faulted run's final scene must
// be bit-identical to the fault-free run.
func FaultsText(opTimeout time.Duration, retries int) (string, error) {
	cfg := listingConfig()
	if retries < 2 {
		retries = 3
	}
	base, _, err := retina.Run(cfg, retina.V2, runtime.Config{
		Mode: runtime.Simulated, Workers: 4, MaxOps: 50_000_000})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fault tolerance: balanced retina model, every operator killed once,\n"+
		"retry max attempts %d, per-operator timeout %v\n\n", retries, opTimeout)
	fmt.Fprintf(&b, "%-10s %-7s %8s %8s %10s %10s  %s\n",
		"Mode", "Fault", "faults", "retries", "snapshots", "timeouts", "output")
	modes := []struct {
		name string
		mode runtime.Mode
	}{{"Simulated", runtime.Simulated}, {"Real", runtime.Real}}
	for _, m := range modes {
		for _, kind := range []runtime.FaultKind{runtime.FaultError, runtime.FaultPanic} {
			scene, eng, err := retina.Run(cfg, retina.V2, runtime.Config{
				Mode: m.mode, Workers: 4, MaxOps: 50_000_000,
				OpTimeout: opTimeout,
				Retry:     runtime.RetryPolicy{MaxAttempts: retries},
				Faults:    runtime.KillOnce(kind, retinaV2Ops...),
			})
			if err != nil {
				return "", fmt.Errorf("%s/%s faults: %w", m.name, kind, err)
			}
			verdict := "identical to fault-free run"
			if !retina.Equal(scene, base) {
				verdict = "DIVERGED from fault-free run"
			}
			st := eng.Stats()
			fmt.Fprintf(&b, "%-10s %-7s %8d %8d %10d %10d  %s\n",
				m.name, kind, st.FaultsInjected, st.Retries, st.SnapshotCopies,
				st.OpTimeouts, verdict)
		}
	}
	b.WriteString("\nretried attempts re-execute on snapshots of their destructively-declared\n" +
		"inputs, so recovery is invisible in the output (the §8 determinism\n" +
		"guarantee extended to failures)\n")
	return b.String(), nil
}

// ThroughputText measures the repeated-run fast path (ROADMAP item 2): N
// invocations of a small jacobi solve, a fresh engine per run versus one
// reused engine batching the stream through RunMany — warmed activation
// pools, persistent block free lists, and worker goroutines parked between
// runs instead of respawned. Every reused result is checked bit-identical
// to the fresh baseline, so the speedup is reported over proven-equal work.
func ThroughputText(runs int) (string, error) {
	if runs <= 0 {
		runs = 200
	}
	prog, err := jacobi.CompileProgram(jacobi.Config{N: 8, Tol: 1e6, MemPlan: true})
	if err != nil {
		return "", err
	}
	cfg := runtime.Config{Mode: runtime.Real, Workers: 4, MaxOps: 100_000_000}

	// Fresh baseline: a new engine — scheduler, workers, cold pools — per run.
	var want *jacobi.State
	freshStart := time.Now()
	for i := 0; i < runs; i++ {
		v, err := runtime.New(prog, cfg).Run()
		if err != nil {
			return "", err
		}
		if want, err = jacobi.StateOf(v); err != nil {
			return "", err
		}
	}
	freshDur := time.Since(freshStart)

	// Throughput mode: one engine serves the whole stream.
	eng := runtime.New(prog, cfg)
	reusedStart := time.Now()
	results, err := eng.RunMany(context.Background(), make([][]value.Value, runs))
	if err != nil {
		return "", err
	}
	reusedDur := time.Since(reusedStart)
	identical := 0
	for i, r := range results {
		if r.Err != nil {
			return "", fmt.Errorf("reused run %d: %w", i, r.Err)
		}
		st, err := jacobi.StateOf(r.Value)
		if err != nil {
			return "", err
		}
		if jacobi.Matches(st, want) {
			identical++
		}
	}

	perFresh := freshDur / time.Duration(runs)
	perReused := reusedDur / time.Duration(runs)
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput mode: %d runs of a small jacobi solve (N=8, memplan), 4 workers\n\n", runs)
	fmt.Fprintf(&b, "%-22s %14s %12s\n", "engine", "per run", "runs/sec")
	fmt.Fprintf(&b, "%-22s %14v %12.0f\n", "fresh per run", perFresh.Round(time.Microsecond),
		float64(runs)/freshDur.Seconds())
	fmt.Fprintf(&b, "%-22s %14v %12.0f\n", "reused (RunMany)", perReused.Round(time.Microsecond),
		float64(runs)/reusedDur.Seconds())
	fmt.Fprintf(&b, "\nreuse speedup: %.2fx; %d/%d reused results bit-identical to the fresh baseline\n",
		float64(freshDur)/float64(reusedDur), identical, runs)
	if identical != runs {
		return "", fmt.Errorf("throughput: %d of %d reused results diverged from the fresh baseline",
			runs-identical, runs)
	}
	return b.String(), nil
}

// StressText drives the differential stress harness: seeds random
// coordination graphs through the full oracle matrix (4 compile variants
// × 9 run specs per seed), plus one large-graph seed at the ROADMAP's
// 10k-node floor, and reports bit-identity and invariant status. Any
// failing seed is shrunk automatically and the repro saved under
// testdata/regressions/.
func StressText(seeds int) (string, error) {
	if seeds <= 0 {
		seeds = 25
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Differential stress: %d seeds x %d compile variants x %d run specs\n\n",
		seeds, len(stress.Variants()), len(stress.Specs()))
	fmt.Fprintf(&b, "%-8s %8s %8s  %s\n", "seed", "runs", "fails", "status")
	totalRuns, failedSeeds := 0, 0
	var totalFaults int64
	for seed := 0; seed < seeds; seed++ {
		p := stress.NewProgram(stress.GenConfig{Funcs: 32, Seed: int64(seed)})
		rep := stress.CheckProgram(p)
		totalRuns += rep.Runs
		totalFaults += rep.FaultsInjected
		status := "ok: bit-identical, Allocated==Freed"
		if !rep.OK() {
			failedSeeds++
			status = rep.Failures[0].String()
			shrunk, msg := stress.Shrink(p, stress.OracleCheck)
			if path, werr := stress.WriteRepro("testdata/regressions", shrunk, msg); werr == nil {
				status += " (shrunk repro: " + path + ")"
			}
		}
		fmt.Fprintf(&b, "%-8d %8d %8d  %s\n", seed, rep.Runs, len(rep.Failures), status)
	}

	// One large irregular graph (ROADMAP item 5's 10k-node floor) through
	// a reduced spec set to keep wall time sane.
	large := stress.NewProgram(stress.GenConfig{Funcs: 600, Seed: 1990})
	rep := stress.CheckSource("stress-large.dlr", large.Source(), stress.Specs()[:5])
	totalRuns += rep.Runs
	fmt.Fprintf(&b, "%-8s %8d %8d  600 funcs (>=10k graph nodes), executor/worker sweep\n",
		"large", rep.Runs, len(rep.Failures))
	if !rep.OK() {
		failedSeeds++
	}

	fmt.Fprintf(&b, "\n%d runs compared; every run checked for bit-identity against its seed's\n"+
		"reference and for block accounting (Allocated == Freed); %d faults injected\n"+
		"and retried across the fault legs\n", totalRuns, totalFaults)
	if failedSeeds > 0 {
		return b.String(), fmt.Errorf("stress: %d seed(s) failed the oracle", failedSeeds)
	}
	if totalFaults == 0 {
		return b.String(), fmt.Errorf("stress: fault legs never injected a fault — harness mis-wired")
	}
	b.WriteString("all seeds passed\n")
	return b.String(), nil
}

// QueensText runs the §3 example and reports count and determinism.
func QueensText() (string, error) {
	var first []string
	for _, workers := range []int{1, 4} {
		sols, _, err := queens.Run(8, runtime.Config{Mode: runtime.Real, Workers: workers, MaxOps: 50_000_000})
		if err != nil {
			return "", err
		}
		keys := make([]string, len(sols))
		for i, s := range sols {
			keys[i] = fmt.Sprint(s)
		}
		if first == nil {
			first = keys
			continue
		}
		if len(first) != len(keys) {
			return "", fmt.Errorf("queens: solution counts differ across worker counts")
		}
		for i := range keys {
			if keys[i] != first[i] {
				return "", fmt.Errorf("queens: solution order differs across worker counts")
			}
		}
	}
	return fmt.Sprintf("Eight queens (§3): %d solutions; order identical on 1 and 4 workers\n"+
		"first solution: %s\n", len(first), first[0]), nil
}
