package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// ServeText exercises the coordination server end to end, in process: it
// registers the jacobi and queens workloads (queens with seeded chaos), a
// source-posted program, then drives concurrent runs through the HTTP API
// with the retrying client — deliberately overloading a tiny admission
// queue so shedding and Retry-After backoff are visible — and finishes
// with a graceful drain, asserting every run obeyed Allocated == Freed.
func ServeText(runs int) (string, error) {
	if runs <= 0 {
		runs = 60
	}
	var b strings.Builder

	s := server.New(server.Config{
		MaxConcurrent: 2,
		QueueDepth:    2,
		DrainTimeout:  2 * time.Second,
	})
	for _, name := range []string{"jacobi", "queens6"} {
		spec, err := server.Catalog(name, 2, 1990)
		if err != nil {
			return "", err
		}
		if err := s.Register(spec); err != nil {
			return "", err
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := &server.Client{Base: ts.URL, MaxAttempts: 12, Seed: 7}

	// Register a program over the wire too: compile-once happens in the
	// live service, not just at startup.
	if err := client.RegisterSource(context.Background(), server.RegisterRequest{
		Name: "sumsq", Source: "main(n) parreduce(plus, 0, parmap(sq, iota(n)))\nsq(x) mul(x, x)\nplus(a, b) add(a, b)\n",
		Prelude: true, Fuse: true,
	}); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "programs registered: %s\n", strings.Join(s.Programs(), ", "))

	// One reference call per program, then a concurrent storm: every
	// response must be bit-identical to its reference.
	type probe struct {
		prog string
		req  server.RunRequest
	}
	probes := []probe{
		{"jacobi", server.RunRequest{}},
		{"queens6", server.RunRequest{}},
		{"sumsq", server.RunRequest{Args: []json.RawMessage{json.RawMessage("12")}}},
	}
	refs := make(map[string]string)
	for _, p := range probes {
		res, err := client.Call(context.Background(), p.prog, p.req)
		if err != nil {
			return "", fmt.Errorf("reference %s: %w", p.prog, err)
		}
		j, _ := json.Marshal(res.Resp.Result)
		refs[p.prog] = string(j)
		fmt.Fprintf(&b, "  %-8s -> %s\n", p.prog, truncate(string(j), 68))
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	mismatches, failures, retries := 0, 0, 0
	for i := 0; i < runs; i++ {
		p := probes[i%len(probes)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := client.Call(context.Background(), p.prog, p.req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures++
				return
			}
			retries += res.Attempts - 1
			j, _ := json.Marshal(res.Resp.Result)
			if string(j) != refs[p.prog] {
				mismatches++
			}
		}()
	}
	wg.Wait()
	fmt.Fprintf(&b, "storm: %d concurrent runs over 2 slots + queue 2: %d failed, %d mismatched, %d client retries after shed\n",
		runs, failures, mismatches, retries)

	metrics := s.MetricsText()
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "delserver_runs_total") ||
			strings.HasPrefix(line, "delserver_runs_shed_total") ||
			strings.HasPrefix(line, "delserver_retries_total{program=\"queens6\"}") ||
			strings.HasPrefix(line, "delserver_faults_injected_total{program=\"queens6\"}") ||
			strings.HasPrefix(line, "delserver_engine_pool_reused_total") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		return "", err
	}
	leaks := s.LeakRuns()
	fmt.Fprintf(&b, "drain: complete, %d leaked runs (Allocated==Freed on every path)\n", leaks)
	if failures > 0 || mismatches > 0 || leaks > 0 {
		return b.String(), fmt.Errorf("serve: %d failures, %d mismatches, %d leaks", failures, mismatches, leaks)
	}
	return b.String(), nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
