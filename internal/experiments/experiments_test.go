package experiments

import (
	"strings"
	"testing"

	"repro/internal/retina"
)

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper's Figure 1 shape for the balanced version:
	// ~1.0 / ~2.0 / ~2.0 (no better than 2) / ~3.3.
	if r := rows[0]; r.SpeedupV2 < 0.99 || r.SpeedupV2 > 1.01 {
		t.Errorf("speedup(1) = %.2f, want 1.0", r.SpeedupV2)
	}
	if r := rows[1]; r.SpeedupV2 < 1.7 || r.SpeedupV2 > 2.1 {
		t.Errorf("speedup(2) = %.2f, want ~1.9", r.SpeedupV2)
	}
	if rows[2].SpeedupV2 > rows[1].SpeedupV2*1.1 {
		t.Errorf("speedup(3) = %.2f should not beat speedup(2) = %.2f",
			rows[2].SpeedupV2, rows[1].SpeedupV2)
	}
	if r := rows[3]; r.SpeedupV2 < 2.9 || r.SpeedupV2 > 3.9 {
		t.Errorf("speedup(4) = %.2f, want ~3.3", r.SpeedupV2)
	}
	// The unbalanced version caps near 2 on four processors.
	if r := rows[3]; r.SpeedupV1 > 2.5 {
		t.Errorf("unbalanced speedup(4) = %.2f, should cap near 2", r.SpeedupV1)
	}
	text, err := Fig1Text()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Figure 1") {
		t.Error("Fig1Text header missing")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seq, par, err := Table1(240, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Lexing unchanged; total near the paper's 2.2x.
	if seq.PassTicks["Lexing"] != par.PassTicks["Lexing"] {
		t.Errorf("lexing changed: %d vs %d", seq.PassTicks["Lexing"], par.PassTicks["Lexing"])
	}
	total := float64(seq.TotalTicks) / float64(par.TotalTicks)
	if total < 1.9 || total > 2.8 {
		t.Errorf("total speedup = %.2f, want ~2.2", total)
	}
	text, err := Table1Text(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Lexing", "Parsing", "Totals"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table1Text missing %q", want)
		}
	}
	wall, err := Table1WallText(120, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wall, "wall-clock") {
		t.Error("wall-clock variant header missing")
	}
}

func TestTable2Verbatim(t *testing.T) {
	rows := Table2()
	if len(rows) != 9 {
		t.Fatalf("Table 2 has %d rows, want 9", len(rows))
	}
	if rows[0].Language != "Delirium" || rows[0].Notation != "embedding" {
		t.Errorf("first row = %+v", rows[0])
	}
	embedding := 0
	for _, r := range rows {
		if r.Notation == "embedding" {
			embedding++
		}
	}
	if embedding != 1 {
		t.Errorf("exactly one embedding language expected, got %d", embedding)
	}
	if !strings.Contains(Table2Text(), "restricted shared data") {
		t.Error("Table2Text missing Delirium row")
	}
}

func TestListings(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	l1, err := Listing(retina.V1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(l1, "call of post_up took") || !strings.Contains(l1, "call of convol_bite took") {
		t.Errorf("unbalanced listing wrong:\n%s", l1)
	}
	l2, err := Listing(retina.V2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(l2, "call of update_bite took") || !strings.Contains(l2, "call of done_up took") {
		t.Errorf("balanced listing wrong:\n%s", l2)
	}
}

func TestOverheadUnderThreePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 || f >= 0.03 {
		t.Errorf("overhead = %.4f, want (0, 0.03)", f)
	}
}

func TestPriorityAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := Priority(7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Solutions != 40 {
		t.Errorf("7-queens solutions = %d, want 40", r.Solutions)
	}
	if r.PeakWithPriorities >= r.PeakFIFO {
		t.Errorf("priorities should reduce peak: %d vs %d", r.PeakWithPriorities, r.PeakFIFO)
	}
}

func TestAffinityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Affinity()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AffinityRow{}
	for _, r := range rows {
		byKey[r.Machine+"/"+r.Policy.String()] = r
	}
	bfNone := byKey["BBN Butterfly T2000/none"]
	bfData := byKey["BBN Butterfly T2000/data"]
	// On the NUMA machine, data affinity must cut memory cost.
	if bfData.MemTicks >= bfNone.MemTicks {
		t.Errorf("data affinity should reduce Butterfly memory ticks: %d vs %d",
			bfData.MemTicks, bfNone.MemTicks)
	}
	// On the UMA Cray the policies are within noise of each other
	// (identical memory pricing).
	crNone := byKey["Cray Y-MP/none"]
	crData := byKey["Cray Y-MP/data"]
	ratio := float64(crData.Makespan) / float64(crNone.Makespan)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("UMA affinity effect too large: ratio %.3f", ratio)
	}
}

func TestMemorySplit(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Memory()
	if err != nil {
		t.Fatal(err)
	}
	var retinaRow *MemoryRow
	for i := range rows {
		if strings.HasPrefix(rows[i].Workload, "retina") {
			retinaRow = &rows[i]
		}
	}
	if retinaRow == nil {
		t.Fatal("retina row missing")
	}
	// §7: templates represent over 80% of the runtime system's memory.
	if retinaRow.Fraction <= 0.8 {
		t.Errorf("retina template fraction = %.1f%%, want > 80%%", retinaRow.Fraction*100)
	}
	text, err := MemoryText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "template words") {
		t.Error("MemoryText header missing")
	}
}

func TestQueensText(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	text, err := QueensText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "92 solutions") {
		t.Errorf("queens text wrong:\n%s", text)
	}
}

func TestWalksRun(t *testing.T) {
	rows := Walks(20000, []int{1, 2}, 1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Nanos <= 0 {
			t.Errorf("%s n=%d took %d ns", r.Strategy, r.Workers, r.Nanos)
		}
	}
	text := WalksText(20000, []int{1, 2}, 1)
	if !strings.Contains(text, "synthesized") {
		t.Error("WalksText missing strategies")
	}
}

func TestOptAblationMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := OptAblation(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Full optimization must not schedule more work than no optimization.
	if rows[2].OpsRun > rows[0].OpsRun {
		t.Errorf("full opt ran more nodes: %d vs %d", rows[2].OpsRun, rows[0].OpsRun)
	}
	if rows[2].Makespan > rows[0].Makespan {
		t.Errorf("full opt slower: %d vs %d", rows[2].Makespan, rows[0].Makespan)
	}
	text, err := OptAblationText(60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "graph nodes") {
		t.Error("header missing")
	}
}
