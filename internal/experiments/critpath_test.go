package experiments

import (
	"strings"
	"testing"

	"repro/internal/retina"
)

// TestCritPathFindsPostUp is the mechanical form of the paper's §5.2
// diagnosis: on the unbalanced retina the critical-path analyzer must name
// post_up as the serialized bottleneck, and on the balanced version it must
// report no dominating operator.
func TestCritPathFindsPostUp(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cp1, err := ListingCritPath(retina.V1)
	if err != nil {
		t.Fatal(err)
	}
	if cp1 == nil {
		t.Fatal("v1: nil critical path")
	}
	if cp1.Balanced {
		t.Error("v1: unbalanced retina reported as balanced")
	}
	if cp1.Dominant != "post_up" {
		t.Errorf("v1: bottleneck = %q, want post_up", cp1.Dominant)
	}
	if cp1.DominantShare < 0.40 {
		t.Errorf("v1: post_up share = %.2f, want >= 0.40", cp1.DominantShare)
	}
	if !strings.Contains(cp1.Verdict(), "post_up") {
		t.Errorf("v1 verdict does not name post_up: %s", cp1.Verdict())
	}

	cp2, err := ListingCritPath(retina.V2)
	if err != nil {
		t.Fatal(err)
	}
	if cp2 == nil {
		t.Fatal("v2: nil critical path")
	}
	if !cp2.Balanced {
		t.Errorf("v2: balanced retina reported imbalanced (verdict: %s)", cp2.Verdict())
	}
	// The §5.2 fix buys parallelism: the balanced version's path must be
	// meaningfully shorter than the unbalanced one on the same workload.
	if cp2.PathTicks >= cp1.PathTicks {
		t.Errorf("v2 path %d not shorter than v1 path %d", cp2.PathTicks, cp1.PathTicks)
	}
	if cp2.Parallelism() <= cp1.Parallelism() {
		t.Errorf("v2 parallelism %.2f not above v1 %.2f", cp2.Parallelism(), cp1.Parallelism())
	}
}

// TestListingHasCritPathFooter checks the lst1/lst2 CLI surface carries the
// analysis.
func TestListingHasCritPathFooter(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	l1, err := Listing(retina.V1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(l1, "critical path:") || !strings.Contains(l1, "verdict: imbalanced") {
		t.Errorf("v1 listing missing critical-path footer:\n%s", l1)
	}
	l2, err := Listing(retina.V2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(l2, "verdict: balanced") {
		t.Errorf("v2 listing missing balanced verdict:\n%s", l2)
	}
}
