package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
)

// Handler returns the server's HTTP API:
//
//	GET  /healthz        liveness (200 while the process serves)
//	GET  /readyz         readiness (503 once draining)
//	GET  /metrics        Prometheus text exposition
//	GET  /programs       registered program names
//	POST /programs       compile + register Delirium source
//	POST /run/{name}     execute one run
//	POST /programs/{name}/tune  adaptive calibrate→re-fuse→swap
//
// Every handler is panic-isolated: a bug in request handling returns a
// structured 500 instead of killing the daemon.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, errDraining())
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write([]byte(s.MetricsText()))
	})
	mux.HandleFunc("GET /programs", s.handleListPrograms)
	mux.HandleFunc("POST /programs", s.handleRegister)
	mux.HandleFunc("POST /run/{name}", s.handleRun)
	mux.HandleFunc("POST /programs/{name}/tune", s.handleTune)
	return panicGuard(s, mux)
}

// panicGuard converts handler panics into structured 500s. The run path
// has its own inner recover (execute); this outer one catches everything
// else — routing, encoding, metrics.
func panicGuard(s *Server, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				writeError(w, &APIError{Status: http.StatusInternalServerError, Code: "internal",
					Message: fmt.Sprintf("handler panicked: %v\n%s", rec, debug.Stack())})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleListPrograms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"programs": s.Programs()})
}

// RegisterRequest is the body of POST /programs.
type RegisterRequest struct {
	Name    string `json:"name"`
	Source  string `json:"source"`
	Fuse    bool   `json:"fuse,omitempty"`
	MemPlan bool   `json:"memplan,omitempty"`
	Prelude bool   `json:"prelude,omitempty"`
	Workers int    `json:"workers,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, errDraining())
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, &APIError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("body: %v", err)})
		return
	}
	if req.Name == "" || req.Source == "" {
		writeError(w, &APIError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: "name and source are required"})
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > 16 {
		workers = s.cfg.Workers
	}
	spec, err := CompileSource(req.Name, req.Source, workers, req.Fuse, req.MemPlan, req.Prelude)
	if err != nil {
		writeError(w, &APIError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("compile: %v", err)})
		return
	}
	if err := s.Register(spec); err != nil {
		var ae *APIError
		if asAPIError(err, &ae) {
			writeError(w, ae)
			return
		}
		writeError(w, &APIError{Status: http.StatusBadRequest, Code: "bad_request", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"program": req.Name, "nodes": spec.Prog.NodeCount()})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req RunRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, &APIError{Status: http.StatusBadRequest, Code: "bad_request",
				Message: fmt.Sprintf("body: %v", err)})
			return
		}
	}
	resp, apiErr := s.Execute(r.Context(), name, req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(body)
}

// writeError renders the error envelope. Overload and drain responses
// carry the backoff hint twice: Retry-After in whole seconds (the standard
// header, ceiling-rounded so it is never 0) and X-Retry-After-Ms exact.
func writeError(w http.ResponseWriter, ae *APIError) {
	if ae.RetryAfterMS > 0 {
		secs := (ae.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(ae.RetryAfterMS, 10))
	}
	status := ae.Status
	if status == 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, ErrorBody{Error: ae})
}

func asAPIError(err error, target **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*target = ae
	}
	return ok
}
