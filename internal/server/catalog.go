package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/compile"
	"repro/internal/graph"
	"repro/internal/jacobi"
	"repro/internal/operator"
	"repro/internal/opt"
	"repro/internal/prelude"
	"repro/internal/queens"
	"repro/internal/runtime"
	"repro/internal/value"
)

// This file is the built-in program catalog: the named workloads
// cmd/delserver can register at startup. Each builder compiles once (with
// fusion and the memory plan where the workload supports them) and attaches
// a typed renderer, so catalog responses are structured JSON rather than
// generic value dumps.

// CatalogNames lists the built-in workload names Catalog accepts.
// "queensN" is a family (queens4 … queens8); "jacobi" defaults to a small
// grid and "jacobiN" selects an N×N one.
func CatalogNames() []string {
	return []string{"jacobi", "jacobi<N>", "queens<N>"}
}

// Catalog builds the Spec for one built-in workload name. workers sizes
// each engine's worker pool; chaosSeed, when non-zero, arms seeded fault
// injection with retry on workloads whose operators are safe to re-run
// (the queens family — jacobi's operators share state pointers across the
// graph and are deliberately not retryable).
func Catalog(name string, workers int, chaosSeed int64) (Spec, error) {
	if workers <= 0 {
		workers = 2
	}
	switch {
	case name == "jacobi" || strings.HasPrefix(name, "jacobi"):
		n := 16
		if rest := strings.TrimPrefix(name, "jacobi"); rest != "" {
			v, err := strconv.Atoi(rest)
			if err != nil || v < 8 || v > 512 {
				return Spec{}, fmt.Errorf("catalog: bad jacobi size %q (want jacobi or jacobi8..jacobi512)", name)
			}
			n = v
		}
		return jacobiSpec(name, n, workers)
	case strings.HasPrefix(name, "queens"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "queens"))
		if err != nil || n < 1 || n > 10 {
			return Spec{}, fmt.Errorf("catalog: bad queens size %q (want queens1..queens10)", name)
		}
		return queensSpec(name, n, workers, chaosSeed)
	default:
		return Spec{}, fmt.Errorf("catalog: unknown workload %q", name)
	}
}

func jacobiSpec(name string, n, workers int) (Spec, error) {
	cfg := jacobi.Config{N: n, Tol: 1e-2, MaxSweeps: 2000, MemPlan: true, Fuse: true}
	prog, err := jacobi.CompileProgram(cfg)
	if err != nil {
		return Spec{}, err
	}
	// Affinity hints are advisory (results stay bit-identical), so the
	// served engines always run with them on, keeping the /metrics
	// hit/miss counters live.
	opt.PlanAffinity(prog)
	return Spec{
		Name: name,
		Prog: prog,
		Base: runtime.Config{Mode: runtime.Real, Workers: workers,
			MaxOps: 100_000_000, OpTimeout: 5 * time.Second, AffinityHints: true},
		Recompile: func(prof map[string]int64) (*graph.Program, error) {
			c := cfg
			c.FuseProfile = prof
			tuned, err := jacobi.CompileProgram(c)
			if err != nil {
				return nil, err
			}
			opt.PlanAffinity(tuned)
			return tuned, nil
		},
		Render: func(v value.Value) (any, error) {
			st, err := jacobi.StateOf(v)
			if err != nil {
				return nil, err
			}
			var sum float64
			for _, x := range st.U {
				sum += x
			}
			return map[string]any{
				"n":        st.N,
				"sweeps":   st.Sweeps,
				"residual": st.Residual,
				// checksum fingerprints the full grid so bit-identity across
				// concurrent runs is checkable from the JSON alone. Hex text:
				// a 64-bit integer would lose bits through JSON float decoding.
				"checksum": fmt.Sprintf("%016x", math.Float64bits(sum)),
			}, nil
		},
	}, nil
}

func queensSpec(name string, n, workers int, chaosSeed int64) (Spec, error) {
	prog, err := queens.CompileProgramFused(n, true)
	if err != nil {
		return Spec{}, err
	}
	opt.PlanAffinity(prog)
	base := runtime.Config{Mode: runtime.Real, Workers: workers,
		MaxOps: 100_000_000, OpTimeout: 5 * time.Second, AffinityHints: true}
	var faults func() *runtime.FaultPlan
	if chaosSeed != 0 {
		// The queens operators are pure over immutable boards and marked
		// Retryable, so seeded faults + retry exercise the recovery path
		// while results stay bit-identical to fault-free runs. Each engine
		// gets a private plan: plans keep execution cursors.
		base.Retry = runtime.RetryPolicy{MaxAttempts: 3}
		faults = func() *runtime.FaultPlan {
			return runtime.SeededFaultPlan(chaosSeed, []string{"add_queen", "is_valid"}, 40)
		}
	}
	return Spec{
		Name:   name,
		Prog:   prog,
		Base:   base,
		Faults: faults,
		Recompile: func(prof map[string]int64) (*graph.Program, error) {
			tuned, err := queens.CompileProgramProfiled(n, true, prof)
			if err != nil {
				return nil, err
			}
			opt.PlanAffinity(tuned)
			return tuned, nil
		},
		Render: func(v value.Value) (any, error) {
			sols, err := queens.Solutions(v)
			if err != nil {
				return nil, err
			}
			return map[string]any{"n": n, "count": len(sols), "solutions": sols}, nil
		},
	}, nil
}

// CompileSource compiles Delirium source posted to POST /programs into a
// Spec: builtin operators (plus the prelude when asked), optional fusion
// and memory planning, generic decode/render. This is the "register a new
// program into the live service" path.
func CompileSource(name, src string, workers int, fuse, memPlan, withPrelude bool) (Spec, error) {
	if workers <= 0 {
		workers = 2
	}
	if withPrelude {
		src = prelude.Source() + "\n" + src
	}
	res, err := compile.Compile(name+".dlr", src, compile.Options{
		Registry: operator.Builtins(), Fuse: fuse, MemPlan: memPlan, Affinity: fuse})
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Name: name,
		Prog: res.Program,
		Base: runtime.Config{Mode: runtime.Real, Workers: workers,
			MaxOps: 100_000_000, OpTimeout: 5 * time.Second, AffinityHints: true},
		Recompile: func(prof map[string]int64) (*graph.Program, error) {
			// Re-fuse the posted source with measured weights. Fusion is
			// forced on even when registration skipped it: the profile is
			// only consumable through fusion priorities.
			tuned, err := compile.Compile(name+".dlr", src, compile.Options{
				Registry: operator.Builtins(), Fuse: true, MemPlan: memPlan,
				FuseProfile: prof, Affinity: true})
			if err != nil {
				return nil, err
			}
			return tuned.Program, nil
		},
	}, nil
}
