package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// MetricsText renders the Prometheus text exposition served at /metrics.
// Everything here is assembled from the runtime's existing Stats counters
// aggregated per program, plus the server's own admission gauges — no
// metrics library, just the text format.
func (s *Server) MetricsText() string {
	var b strings.Builder

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("delserver_up", "1 while the daemon serves", 1)
	gauge("delserver_runs_inflight", "runs currently executing", s.inflight.Load())
	gauge("delserver_queue_depth", "runs queued for an admission slot", s.queued.Load())
	draining := int64(0)
	if s.draining.Load() {
		draining = 1
	}
	gauge("delserver_draining", "1 once graceful shutdown began", draining)
	gauge("delserver_uptime_seconds", "seconds since the server started",
		int64(time.Since(s.startTime).Seconds()))

	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	counter("delserver_runs_shed_total", "runs rejected 429 by the bounded admission queue")
	fmt.Fprintf(&b, "delserver_runs_shed_total %d\n", s.shed.Load())
	counter("delserver_handler_panics_total", "panics converted to 500s instead of crashes")
	fmt.Fprintf(&b, "delserver_handler_panics_total %d\n", s.panics.Load())

	s.mu.RLock()
	names := make([]string, 0, len(s.programs))
	for n := range s.programs {
		names = append(names, n)
	}
	sort.Strings(names)
	progs := make(map[string]*program, len(names))
	for _, n := range names {
		progs[n] = s.programs[n]
	}
	s.mu.RUnlock()

	perProg := func(name, help string, get func(p *program) int64) {
		counter(name, help)
		for _, n := range names {
			fmt.Fprintf(&b, "%s{program=%q} %d\n", name, n, get(progs[n]))
		}
	}

	perProg("delserver_runs_total", "successful runs", func(p *program) int64 { return p.runs.Load() })
	// Failure counters are labeled by runtime failure kind.
	counter("delserver_run_failures_total", "failed runs by runtime failure kind")
	kinds := []string{"error", "panic", "timeout", "canceled", "deadlock", "budget"}
	for _, n := range names {
		for k, kind := range kinds {
			if v := progs[n].failures[k].Load(); v != 0 {
				fmt.Fprintf(&b, "delserver_run_failures_total{program=%q,kind=%q} %d\n", n, kind, v)
			}
		}
	}
	perProg("delserver_block_leak_runs_total",
		"runs that violated Allocated==Freed (engine quarantined)",
		func(p *program) int64 { return p.leakRuns.Load() })
	perProg("delserver_engine_pool_created_total", "engines constructed",
		func(p *program) int64 { c, _, _ := p.pool.Load().Counters(); return c })
	perProg("delserver_engine_pool_reused_total", "engine checkouts served from the warm pool",
		func(p *program) int64 { _, r, _ := p.pool.Load().Counters(); return r })
	perProg("delserver_ops_executed_total", "scheduled node executions",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.ops) })
	perProg("delserver_operators_run_total", "sequential operator executions",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.operators) })
	perProg("delserver_retries_total", "re-executed operator attempts",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.retries) })
	perProg("delserver_op_timeouts_total", "operator attempts cut off by their bound",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.opTimeouts) })
	perProg("delserver_faults_injected_total", "seeded chaos faults fired",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.faultsInjected) })
	perProg("delserver_steals_total", "work-stealing scheduler steals",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.steals) })
	perProg("delserver_affinity_hits_total", "preferred-edge dispatches that ran on their producer's worker",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.affinityHits) })
	perProg("delserver_affinity_misses_total", "preferred-edge dispatches that migrated off their producer's worker",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.affinityMisses) })
	perProg("delserver_batch_steals_total", "steal events whose batched affinity grab moved extra tasks",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.batchSteals) })
	perProg("delserver_batch_stolen_tasks_total", "tasks transferred by batched steal events",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.batchStolenTasks) })
	perProg("delserver_elided_refcounts_total", "refcount ops skipped by the memory plan",
		func(p *program) int64 {
			return atomic.LoadInt64(&p.agg.elidedRetains) + atomic.LoadInt64(&p.agg.elidedReleases)
		})
	perProg("delserver_pooled_allocs_total", "block allocations served from free lists",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.pooledAllocs) })
	perProg("delserver_fused_nodes_total", "node executions inside fused supernodes",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.fusedNodes) })
	perProg("delserver_blocks_allocated_total", "blocks allocated",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.blocksAllocated) })
	perProg("delserver_blocks_freed_total", "blocks freed",
		func(p *program) int64 { return atomic.LoadInt64(&p.agg.blocksFreed) })

	// Adaptive-tune telemetry (POST /programs/{name}/tune).
	perProg("delserver_tunes_total", "completed adaptive tune requests",
		func(p *program) int64 { return p.tunes.Load() })
	perProg("delserver_tune_swaps_total", "tunes whose re-fused plan won and was swapped in",
		func(p *program) int64 { return p.tuneSwaps.Load() })
	perProg("delserver_tune_advisories_total", "granularity advisories emitted by tunes",
		func(p *program) int64 { return p.tuneAdvisories.Load() })
	perProgGauge := func(name, help string, get func(p *program) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, n := range names {
			fmt.Fprintf(&b, "%s{program=%q} %d\n", name, n, get(progs[n]))
		}
	}
	perProgGauge("delserver_tune_last_imbalanced", "1 when the last tune advised splitting an operator",
		func(p *program) int64 { return p.lastImbalanced.Load() })
	perProgGauge("delserver_tune_last_gain_basis_points", "last tune's measured gain in 1/100 percent",
		func(p *program) int64 { return p.lastGainPct.Load() })

	return b.String()
}

// recordFailure bumps the per-kind failure counter for a program; kinds
// outside the known range land on "error".
func (p *program) recordFailure(kind int) {
	if kind < 0 || kind >= len(p.failures) {
		kind = 0
	}
	p.failures[kind].Add(1)
}
