package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client calls a delserver over HTTP with retry, exponential backoff, and
// jitter. Overload (429) and drain (503) responses are retried honoring
// the server's Retry-After / X-Retry-After-Ms hints; transport errors are
// retried on backoff alone; every other status returns immediately.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil selects a 2-minute-timeout default.
	HTTP *http.Client
	// MaxAttempts bounds tries per call (default 5).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 50ms); MaxBackoff
	// caps it (default 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from the
	// clock.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

func (c *Client) init() {
	c.once.Do(func() {
		if c.HTTP == nil {
			c.HTTP = &http.Client{Timeout: 2 * time.Minute}
		}
		if c.MaxAttempts <= 0 {
			c.MaxAttempts = 5
		}
		if c.BaseBackoff <= 0 {
			c.BaseBackoff = 50 * time.Millisecond
		}
		if c.MaxBackoff <= 0 {
			c.MaxBackoff = 2 * time.Second
		}
		seed := c.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		c.rng = rand.New(rand.NewSource(seed))
	})
}

// jitter returns a uniformly random duration in [d/2, d) — full backoff
// magnitude, desynchronized so shed clients do not re-stampede in phase.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// CallResult carries one successful call's response plus retry telemetry.
type CallResult struct {
	Resp *RunResponse
	// Attempts is the number of HTTP requests made (1 = no retry).
	Attempts int
	// Backoff is the total time spent waiting between attempts.
	Backoff time.Duration
}

// Call executes program name with req, retrying overload per the policy
// above. A non-retryable API error returns as *APIError.
func (c *Client) Call(ctx context.Context, name string, req RunRequest) (*CallResult, error) {
	c.init()
	if ctx == nil {
		ctx = context.Background()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	url := c.Base + "/run/" + name
	res := &CallResult{}
	backoff := c.BaseBackoff
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		resp, retryAfter, err := c.post(ctx, url, body)
		if err == nil {
			res.Resp = resp
			return res, nil
		}
		// Only overload/drain responses and transport errors retry.
		if ae, ok := err.(*APIError); ok &&
			ae.Status != http.StatusTooManyRequests && ae.Status != http.StatusServiceUnavailable {
			return nil, ae
		}
		if attempt >= c.MaxAttempts {
			return nil, fmt.Errorf("client: %s failed after %d attempts: %w", name, attempt, err)
		}
		// Honor the server's hint when it exceeds our own schedule: the
		// server knows its queue; the exponential curve is the floor.
		wait := c.jitter(backoff)
		if retryAfter > wait {
			wait = retryAfter
		}
		res.Backoff += wait
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > c.MaxBackoff {
			backoff = c.MaxBackoff
		}
	}
}

// post performs one attempt. On a non-2xx it returns the decoded *APIError
// and any Retry-After hint.
func (c *Client) post(ctx context.Context, url string, body []byte) (*RunResponse, time.Duration, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		io.Copy(io.Discard, httpResp.Body)
		httpResp.Body.Close()
	}()
	if httpResp.StatusCode == http.StatusOK {
		var out RunResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
			return nil, 0, fmt.Errorf("client: decode response: %w", err)
		}
		return &out, 0, nil
	}
	retryAfter := parseRetryAfter(httpResp.Header)
	var eb ErrorBody
	if err := json.NewDecoder(httpResp.Body).Decode(&eb); err != nil || eb.Error == nil {
		return nil, retryAfter, &APIError{Status: httpResp.StatusCode, Code: "http_error",
			Message: fmt.Sprintf("status %d with undecodable body", httpResp.StatusCode)}
	}
	eb.Error.Status = httpResp.StatusCode
	return nil, retryAfter, eb.Error
}

// parseRetryAfter prefers the millisecond-precision extension header and
// falls back to the standard whole-second one.
func parseRetryAfter(h http.Header) time.Duration {
	if ms := h.Get("X-Retry-After-Ms"); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	if secs := h.Get("Retry-After"); secs != "" {
		if v, err := strconv.ParseInt(secs, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Second
		}
	}
	return 0
}

// RegisterSource posts Delirium source for compilation and registration.
func (c *Client) RegisterSource(ctx context.Context, req RegisterRequest) error {
	c.init()
	if ctx == nil {
		ctx = context.Background()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/programs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode == http.StatusCreated {
		io.Copy(io.Discard, httpResp.Body)
		return nil
	}
	var eb ErrorBody
	if err := json.NewDecoder(httpResp.Body).Decode(&eb); err != nil || eb.Error == nil {
		return fmt.Errorf("client: register failed with status %d", httpResp.StatusCode)
	}
	eb.Error.Status = httpResp.StatusCode
	return eb.Error
}
