package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/operator"
	"repro/internal/runtime"
	"repro/internal/value"
)

// slowSpec compiles a cancellable slow program: each loop iteration
// allocates a block inside napb, sleeps ms, and consumes it — so a
// deadline or drain lands between operator boundaries with blocks in
// flight, exactly the teardown path the leak invariant guards.
func slowSpec(t *testing.T, name string, ms, reps int) Spec {
	t.Helper()
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "napb", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			b := value.NewBlockStats(make(value.FloatVec, 16), ctx.BlockStats())
			time.Sleep(time.Duration(args[0].(value.Int)) * time.Millisecond)
			return b, nil
		},
	})
	reg.MustRegister(&operator.Operator{
		Name: "bsum", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			var s float64
			for _, x := range args[0].(*value.Block).Data().(value.FloatVec) {
				s += x
			}
			return value.Float(s), nil
		},
	})
	src := fmt.Sprintf(`
main()
  iterate
  {
    i = 0, incr(i)
    s = 0, bsum(napb(%d))
  }
  while lt(i, %d),
  result s
`, ms, reps)
	res, err := compile.Compile(name+".dlr", src, compile.Options{Registry: reg})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return Spec{
		Name: name,
		Prog: res.Program,
		Base: runtime.Config{Mode: runtime.Real, Workers: 2, MaxOps: 10_000_000},
	}
}

func catalogSpec(t *testing.T, name string, workers int, chaos int64) Spec {
	t.Helper()
	spec, err := Catalog(name, workers, chaos)
	if err != nil {
		t.Fatalf("catalog %s: %v", name, err)
	}
	return spec
}

func mustRegister(t *testing.T, s *Server, spec Spec) {
	t.Helper()
	if err := s.Register(spec); err != nil {
		t.Fatalf("register %s: %v", spec.Name, err)
	}
}

// leakCheck asserts no run on the server violated Allocated == Freed.
func leakCheck(t *testing.T, s *Server) {
	t.Helper()
	if n := s.LeakRuns(); n != 0 {
		t.Errorf("%d runs leaked blocks (Allocated != Freed)", n)
	}
}

// TestConcurrentRunsBitIdentical: concurrent runs of multiple registered
// programs — pooled, reused engines, chaos armed on queens — return
// results bit-identical to fresh single-run baselines.
func TestConcurrentRunsBitIdentical(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, QueueDepth: 64})
	mustRegister(t, s, catalogSpec(t, "jacobi", 2, 0))
	mustRegister(t, s, catalogSpec(t, "queens6", 2, 1990))

	// Baselines from fresh single runs through the same Execute path.
	refs := make(map[string]string)
	for _, name := range []string{"jacobi", "queens6"} {
		resp, apiErr := s.Execute(context.Background(), name, RunRequest{})
		if apiErr != nil {
			t.Fatalf("baseline %s: %v", name, apiErr)
		}
		j, _ := json.Marshal(resp.Result)
		refs[name] = string(j)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 48)
	for i := 0; i < 48; i++ {
		name := []string{"jacobi", "queens6"}[i%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, apiErr := s.Execute(context.Background(), name, RunRequest{})
			if apiErr != nil {
				errs <- fmt.Errorf("%s: %v", name, apiErr)
				return
			}
			if j, _ := json.Marshal(resp.Result); string(j) != refs[name] {
				errs <- fmt.Errorf("%s: result diverged from fresh baseline:\n got %s\nwant %s", name, j, refs[name])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	leakCheck(t, s)
}

// TestDeadlineFreesEveryBlock: a run cut off by its per-request deadline
// mid-loop (blocks in flight) frees everything, reports 504, and its
// engine returns to the pool able to serve a clean run.
func TestDeadlineFreesEveryBlock(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, QueueDepth: 8})
	mustRegister(t, s, slowSpec(t, "slow", 5, 2000)) // ~10s unbounded

	_, apiErr := s.Execute(context.Background(), "slow", RunRequest{TimeoutMS: 80})
	if apiErr == nil {
		t.Fatal("deadline-bounded run succeeded; want 504")
	}
	if apiErr.Status != http.StatusGatewayTimeout || apiErr.Code != "deadline" {
		t.Fatalf("apiErr = %d %s (%s); want 504 deadline", apiErr.Status, apiErr.Code, apiErr.Message)
	}
	leakCheck(t, s)

	// The quarantine path never fired, so the engine was repooled; a short
	// clean run must reuse it and succeed.
	resp, apiErr := s.Execute(context.Background(), "slow", RunRequest{TimeoutMS: 5000, MaxOps: 200})
	if apiErr == nil {
		t.Fatal("budget-bounded run succeeded; want budget failure")
	}
	if apiErr.Kind != "budget" {
		t.Fatalf("kind = %q, want budget (%s)", apiErr.Kind, apiErr.Message)
	}
	_ = resp
	leakCheck(t, s)
}

// TestOverloadSheds: with every slot busy and the queue full, additional
// arrivals are rejected 429 with a Retry-After hint instead of queuing
// unboundedly.
func TestOverloadSheds(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, DrainTimeout: time.Second})
	mustRegister(t, s, slowSpec(t, "slow", 10, 60)) // ~600ms per run

	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, apiErr := s.Execute(context.Background(), "slow", RunRequest{TimeoutMS: 5000})
			if apiErr == nil {
				codes <- 200
				return
			}
			if apiErr.Status == http.StatusTooManyRequests && apiErr.RetryAfterMS <= 0 {
				t.Errorf("429 without a Retry-After hint")
			}
			codes <- apiErr.Status
		}()
	}
	wg.Wait()
	close(codes)
	count := map[int]int{}
	for c := range codes {
		count[c]++
	}
	// 1 running + 1 queued admit eventually; the rest must shed.
	if count[http.StatusTooManyRequests] < 6 {
		t.Errorf("status histogram %v: want >= 6 sheds (429)", count)
	}
	if count[200] < 1 {
		t.Errorf("status histogram %v: want at least the slot-holder to succeed", count)
	}
	if s.shed.Load() < 6 {
		t.Errorf("shed counter = %d, want >= 6", s.shed.Load())
	}
	leakCheck(t, s)
}

// TestDrainUnderLoad: SIGTERM semantics under concurrent load — admission
// stops, in-flight runs complete (or cancel past the budget), every block
// is freed, no goroutines leak, and post-drain requests get 503.
func TestDrainUnderLoad(t *testing.T) {
	before := goruntime.NumGoroutine()

	s := New(Config{MaxConcurrent: 4, QueueDepth: 8, DrainTimeout: 300 * time.Millisecond})
	mustRegister(t, s, slowSpec(t, "slow", 5, 400)) // ~2s: outlives the drain budget
	mustRegister(t, s, catalogSpec(t, "queens6", 2, 0))

	var wg sync.WaitGroup
	started := make(chan struct{}, 8)
	for i := 0; i < 8; i++ {
		name := []string{"slow", "queens6"}[i%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			// Outcome is free-form: complete, shed, or canceled by the
			// drain — the invariants below are what matter.
			s.Execute(context.Background(), name, RunRequest{TimeoutMS: 10_000})
		}()
	}
	for i := 0; i < 8; i++ {
		<-started
	}
	time.Sleep(50 * time.Millisecond) // let the in-flight set actually start running

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	if _, apiErr := s.Execute(context.Background(), "queens6", RunRequest{}); apiErr == nil ||
		apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("post-drain Execute = %v; want 503 draining", apiErr)
	}
	leakCheck(t, s)

	// Zero leaked goroutines: engine workers join at run end, the drain
	// canceled stragglers, and nothing holds the admission queue. Allow
	// brief settling for the last worker joins.
	deadline := time.Now().Add(5 * time.Second)
	for {
		goruntime.GC()
		if d := goruntime.NumGoroutine() - before; d <= 0 || time.Now().After(deadline) {
			if d > 0 {
				buf := make([]byte, 1<<16)
				t.Errorf("leaked %d goroutines after drain\n%s", d, buf[:goruntime.Stack(buf, true)])
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHTTPSurface drives the full HTTP API through a live listener:
// health/ready, register-over-the-wire, run, metrics content, 404 and 400
// shapes, and readyz flipping during drain.
func TestHTTPSurface(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, QueueDepth: 4})
	mustRegister(t, s, catalogSpec(t, "queens6", 2, 1990))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz = %d, want 200", code)
	}

	client := &Client{Base: ts.URL, MaxAttempts: 6, Seed: 3}
	res, err := client.Call(context.Background(), "queens6", RunRequest{})
	if err != nil {
		t.Fatalf("call queens6: %v", err)
	}
	out, _ := json.Marshal(res.Resp.Result)
	if !strings.Contains(string(out), `"count":4`) {
		t.Errorf("queens6 result = %s, want 4 solutions", out)
	}

	// Unknown program: 404, structured error, not retried by the client.
	if _, err := client.Call(context.Background(), "nope", RunRequest{}); err == nil {
		t.Error("unknown program: want error")
	} else if ae, ok := err.(*APIError); !ok || ae.Status != 404 || ae.Code != "unknown_program" {
		t.Errorf("unknown program error = %v, want 404 unknown_program", err)
	}

	// Malformed args: 400 before admission.
	if _, apiErr := s.Execute(context.Background(), "queens6",
		RunRequest{Args: []json.RawMessage{json.RawMessage(`{"a":1}`)}}); apiErr == nil || apiErr.Status != 400 {
		t.Errorf("object arg: %v, want 400", apiErr)
	}

	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, `delserver_runs_total{program="queens6"}`) ||
		!strings.Contains(body, "delserver_runs_shed_total") {
		t.Errorf("/metrics = %d, missing expected series:\n%s", code, body)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain /readyz = %d, want 503", code)
	}
	leakCheck(t, s)
}

// TestChaosRunsBitIdentical: with seeded fault injection armed, queens
// runs still return the exact fault-free result — the retry machinery
// recovers deterministically, visible in the metrics counters.
func TestChaosRunsBitIdentical(t *testing.T) {
	clean := New(Config{MaxConcurrent: 2, QueueDepth: 8})
	mustRegister(t, clean, catalogSpec(t, "queens6", 2, 0))
	chaotic := New(Config{MaxConcurrent: 2, QueueDepth: 8})
	mustRegister(t, chaotic, catalogSpec(t, "queens6", 2, 1990))

	ref, apiErr := clean.Execute(context.Background(), "queens6", RunRequest{})
	if apiErr != nil {
		t.Fatalf("clean run: %v", apiErr)
	}
	refJSON, _ := json.Marshal(ref.Result)

	var faults int64
	for i := 0; i < 6; i++ {
		resp, apiErr := chaotic.Execute(context.Background(), "queens6", RunRequest{})
		if apiErr != nil {
			t.Fatalf("chaos run %d: %v", i, apiErr)
		}
		if j, _ := json.Marshal(resp.Result); string(j) != string(refJSON) {
			t.Errorf("chaos run %d diverged:\n got %s\nwant %s", i, j, refJSON)
		}
		faults += resp.Stats.FaultsInjected
	}
	if faults == 0 {
		t.Error("chaos seed armed but no faults fired; the exercise is vacuous")
	}
	leakCheck(t, chaotic)
	leakCheck(t, clean)
}
