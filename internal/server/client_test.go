package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesOverloadHonoringRetryAfter: a client shed twice with
// explicit Retry-After hints must back off at least that long, retry, and
// succeed on the third attempt.
func TestClientRetriesOverloadHonoringRetryAfter(t *testing.T) {
	var calls atomic.Int64
	const hintMS = 120
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, &APIError{Status: http.StatusTooManyRequests, Code: "overloaded",
				Message: "full", RetryAfterMS: hintMS})
			return
		}
		writeJSON(w, http.StatusOK, &RunResponse{Program: "p", Result: float64(7)})
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, MaxAttempts: 5, BaseBackoff: time.Millisecond, Seed: 42}
	start := time.Now()
	res, err := c.Call(context.Background(), "p", RunRequest{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", res.Attempts)
	}
	if res.Resp.Result != float64(7) {
		t.Errorf("result = %v, want 7", res.Resp.Result)
	}
	// Two shed responses, each hinting 120ms: the waits must dominate the
	// 1ms exponential floor, so total elapsed >= 2 * hint.
	if want := 2 * hintMS * time.Millisecond; elapsed < want {
		t.Errorf("elapsed %v < %v: Retry-After hint not honored", elapsed, want)
	}
	if res.Backoff < 2*hintMS*time.Millisecond {
		t.Errorf("recorded backoff %v < %v", res.Backoff, 2*hintMS*time.Millisecond)
	}
}

// TestClientGivesUpAfterMaxAttempts: permanent overload exhausts the
// attempt budget and surfaces the last error.
func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, &APIError{Status: http.StatusServiceUnavailable, Code: "draining",
			Message: "going away", RetryAfterMS: 1})
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 1}
	_, err := c.Call(context.Background(), "p", RunRequest{})
	if err == nil {
		t.Fatal("want failure after exhausting attempts")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

// TestClientDoesNotRetryTerminalErrors: a 422 run failure returns
// immediately as a structured APIError without burning retries.
func TestClientDoesNotRetryTerminalErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, &APIError{Status: http.StatusUnprocessableEntity, Code: "run_failed",
			Message: "operator exploded", Kind: "panic", Op: "boom", Attempts: 3})
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, MaxAttempts: 5, BaseBackoff: time.Millisecond, Seed: 1}
	_, err := c.Call(context.Background(), "p", RunRequest{})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("err = %v (%T), want *APIError", err, err)
	}
	if ae.Status != 422 || ae.Kind != "panic" || ae.Op != "boom" || ae.Attempts != 3 {
		t.Errorf("APIError = %+v: structured run-failure fields lost in transit", ae)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on terminal errors)", got)
	}
}

// TestRetryAfterHeaders: the envelope writes both the whole-second
// standard header (ceiling-rounded, never 0) and the exact-ms extension,
// and parseRetryAfter prefers the extension.
func TestRetryAfterHeaders(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, &APIError{Status: 429, Code: "overloaded", Message: "x", RetryAfterMS: 250})
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want ceiling-rounded \"1\"", got)
	}
	if got := rec.Header().Get("X-Retry-After-Ms"); got != "250" {
		t.Errorf("X-Retry-After-Ms = %q, want \"250\"", got)
	}
	if d := parseRetryAfter(rec.Header()); d != 250*time.Millisecond {
		t.Errorf("parseRetryAfter = %v, want 250ms", d)
	}
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == nil {
		t.Fatalf("error envelope undecodable: %v", err)
	}
	if eb.Error.RetryAfterMS != 250 || eb.Error.Code != "overloaded" {
		t.Errorf("envelope = %+v", eb.Error)
	}
}
