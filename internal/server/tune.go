package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/adapt"
	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/value"
)

// This file is the server side of the adaptive optimization loop: POST
// /programs/{name}/tune runs one calibrate→re-fuse→measure cycle against a
// live program and, when the re-fused plan measures faster, swaps the
// program graph and its engine pool under traffic. In-flight runs are
// untouched — every run captures its pool pointer at checkout (see execute),
// so engines always return to the pool they came from and drained old-pool
// engines are simply dropped.

// TuneRequest is the body of POST /programs/{name}/tune.
type TuneRequest struct {
	// Args are main's arguments for the calibration and measurement runs
	// (same encoding as RunRequest.Args).
	Args []json.RawMessage `json:"args,omitempty"`
	// TimeoutMS bounds the whole tune (calibration + both measurements),
	// clamped to the server's MaxTimeout. Zero selects the default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// TuneResponse reports one finished tune.
type TuneResponse struct {
	Program string `json:"program"`
	// Winner is "tuned" or "baseline"; Swapped is true when the tuned plan
	// won and now serves traffic.
	Winner  string `json:"winner"`
	Swapped bool   `json:"swapped"`
	// BaselineCost and TunedCost are each plan's best measured run in Unit
	// ("ns" for real-time engines, "ticks" for simulated ones).
	BaselineCost int64   `json:"baseline_cost"`
	TunedCost    int64   `json:"tuned_cost"`
	Unit         string  `json:"unit"`
	GainPct      float64 `json:"gain_pct"`
	// Operators is how many operators the calibration run timed;
	// PoolClassesResized how many block-pool size classes got demand-derived
	// caps.
	Operators          int      `json:"operators_calibrated"`
	PoolClassesResized int      `json:"pool_classes_resized"`
	Advisories         []string `json:"advisories,omitempty"`
	ElapsedMS          float64  `json:"elapsed_ms"`
}

// TuneProgram runs the adaptive loop on a registered program. It holds one
// admission slot for the duration (a tune competes with normal runs, it does
// not starve them) and serializes per program: a second concurrent tune of
// the same program is rejected with 409 rather than queued, since it would
// only re-measure the plan the first one is about to install.
func (s *Server) TuneProgram(ctx context.Context, name string, req TuneRequest) (resp *TuneResponse, apiErr *APIError) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, apiErr := s.lookup(name)
	if apiErr != nil {
		return nil, apiErr
	}
	if p.spec.Recompile == nil {
		return nil, &APIError{Status: http.StatusUnprocessableEntity, Code: "not_tunable",
			Message: fmt.Sprintf("program %q has no recompile hook", name)}
	}
	decode := p.spec.Decode
	if decode == nil {
		decode = decodeArgs
	}
	args, err := decode(req.Args)
	if err != nil {
		return nil, &APIError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("arguments: %v", err)}
	}
	release, apiErr := s.admit(ctx)
	if apiErr != nil {
		return nil, apiErr
	}
	defer release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if !p.tuneMu.TryLock() {
		return nil, &APIError{Status: http.StatusConflict, Code: "tune_in_progress",
			Message: fmt.Sprintf("program %q is already being tuned", name)}
	}
	defer p.tuneMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp, apiErr = nil, &APIError{Status: http.StatusInternalServerError, Code: "internal",
				Message: fmt.Sprintf("tune panicked: %v\n%s", r, debug.Stack())}
		}
	}()

	runCtx, cancel := context.WithTimeout(s.runCtx, s.clampTimeout(req.TimeoutMS))
	defer cancel()
	stop := context.AfterFunc(ctx, cancel)
	defer stop()
	start := time.Now()

	// Calibrate on the currently-served graph with timing + tracing on and
	// chaos disarmed: fault retries must not pollute the measured costs.
	prog := p.prog.Load()
	calCfg := p.spec.Base
	calCfg.Timing = true
	calCfg.Trace = true
	calCfg.Faults = nil
	eng := runtime.New(prog, calCfg)
	v, err := eng.RunContext(runCtx, args...)
	if err != nil {
		return nil, classifyRunError(err, runCtx)
	}
	value.Release(v, &eng.Stats().Blocks)
	profile := eng.ProfileWeights()
	if len(profile) == 0 {
		return nil, &APIError{Status: http.StatusUnprocessableEntity, Code: "not_tunable",
			Message: "calibration recorded no operator timings"}
	}
	workers := p.spec.Base.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	var advisories []runtime.Advisory
	if tr := eng.Trace(); tr != nil {
		advisories = tr.CriticalPath().Advise(workers)
	}
	poolCaps := adapt.DerivePoolCaps(eng.PoolDemand(), 1)

	// Re-fuse with the measured weights and measure both plans fresh.
	tunedProg, err := p.spec.Recompile(profile)
	if err != nil {
		return nil, &APIError{Status: http.StatusInternalServerError, Code: "internal",
			Message: fmt.Sprintf("recompile: %v", err)}
	}
	baseCost, apiErr := s.measurePlan(runCtx, p, prog, nil, args)
	if apiErr != nil {
		return nil, apiErr
	}
	tunedCost, apiErr := s.measurePlan(runCtx, p, tunedProg, poolCaps, args)
	if apiErr != nil {
		return nil, apiErr
	}

	resp = &TuneResponse{
		Program:      name,
		Winner:       "tuned",
		BaselineCost: baseCost,
		TunedCost:    tunedCost,
		Unit:         "ns",
		Operators:    len(profile),
		ElapsedMS:    float64(time.Since(start).Nanoseconds()) / 1e6,
	}
	if p.spec.Base.Mode == runtime.Simulated {
		resp.Unit = "ticks"
	}
	if baseCost > 0 {
		resp.GainPct = float64(baseCost-tunedCost) / float64(baseCost) * 100
	}
	for _, c := range poolCaps {
		if c != 0 {
			resp.PoolClassesResized++
		}
	}
	imbalanced := false
	for _, a := range advisories {
		resp.Advisories = append(resp.Advisories, a.String())
		if a.Verdict == runtime.AdviseSplit {
			imbalanced = true
		}
	}
	if baseCost < tunedCost {
		resp.Winner = "baseline"
	} else {
		// Swap under traffic: store the graph first, the pool last, so a
		// reader that sees the new pool always sees the new graph too.
		// In-flight runs keep their captured old-pool pointer and settle
		// against it; the old pool's idle engines are garbage from here.
		p.prog.Store(tunedProg)
		p.pool.Store(s.buildPool(p.spec, tunedProg, poolCaps))
		resp.Swapped = true
		p.tuneSwaps.Add(1)
	}

	p.tunes.Add(1)
	p.tuneAdvisories.Add(int64(len(advisories)))
	if imbalanced {
		p.lastImbalanced.Store(1)
	} else {
		p.lastImbalanced.Store(0)
	}
	p.lastGainPct.Store(int64(resp.GainPct * 100))
	return resp, nil
}

// measurePlan times two runs of one plan through a reused throwaway engine
// (chaos disarmed, like calibration) and returns the best cost.
func (s *Server) measurePlan(ctx context.Context, p *program, prog *graph.Program, poolCaps []int, args []value.Value) (int64, *APIError) {
	cfg := p.spec.Base
	cfg.Faults = nil
	cfg.PoolClassCaps = poolCaps
	eng := runtime.New(prog, cfg)
	best := int64(0)
	runs := 2
	if cfg.Mode == runtime.Simulated {
		runs = 1 // virtual clock: every run measures identically
	}
	for i := 0; i < runs; i++ {
		if i > 0 {
			if err := eng.Reset(); err != nil {
				return 0, &APIError{Status: http.StatusInternalServerError, Code: "internal",
					Message: fmt.Sprintf("measure reset: %v", err)}
			}
		}
		v, err := eng.RunContext(ctx, args...)
		if err != nil {
			return 0, classifyRunError(err, ctx)
		}
		value.Release(v, &eng.Stats().Blocks)
		cost := eng.Stats().RealNanos
		if cfg.Mode == runtime.Simulated {
			cost = eng.Stats().MakespanTicks
		}
		if best == 0 || cost < best {
			best = cost
		}
	}
	return best, nil
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, errDraining())
		return
	}
	name := r.PathValue("name")
	var req TuneRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, &APIError{Status: http.StatusBadRequest, Code: "bad_request",
				Message: fmt.Sprintf("body: %v", err)})
			return
		}
	}
	resp, apiErr := s.TuneProgram(r.Context(), name, req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
