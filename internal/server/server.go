package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/value"
)

// Config sizes the server's admission, budgets, and drain behavior. Zero
// fields select the defaults noted on each.
type Config struct {
	// MaxConcurrent bounds runs executing simultaneously (default 4).
	MaxConcurrent int
	// QueueDepth bounds runs waiting for a slot beyond the in-flight set;
	// arrivals past it are shed with 429 + Retry-After (default 8).
	QueueDepth int
	// DefaultTimeout is the per-run deadline when the request names none
	// (default 10s); MaxTimeout clamps requested deadlines (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultMaxOps is the per-run operator budget when the request names
	// none (default 100M); MaxOpsCap clamps requested budgets (default 1G).
	DefaultMaxOps int64
	MaxOpsCap     int64
	// DrainTimeout bounds graceful shutdown: past it, in-flight runs are
	// canceled at their next operator boundary (default 5s).
	DrainTimeout time.Duration
	// Workers is the per-engine worker count for programs registered via
	// RegisterSource (default 2); catalog Specs carry their own.
	Workers int
	// PoolIdle bounds warmed idle engines retained per program (default
	// MaxConcurrent).
	PoolIdle int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.DefaultMaxOps <= 0 {
		c.DefaultMaxOps = 100_000_000
	}
	if c.MaxOpsCap <= 0 {
		c.MaxOpsCap = 1_000_000_000
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.PoolIdle <= 0 {
		c.PoolIdle = c.MaxConcurrent
	}
	return c
}

// Spec registers one program: the compiled graph (compile once — it is
// immutable and shared by every engine), the base engine configuration,
// and optional typed decode/render hooks and a per-engine fault-plan
// factory for chaos testing.
type Spec struct {
	Name string
	Prog *graph.Program
	// Base is the engine configuration template. Its MaxOps is overridden
	// per run by the request budget; its Faults must be nil — use the
	// factory below so each pooled engine gets a private stateful plan.
	Base runtime.Config
	// Faults, when non-nil, constructs a fresh fault plan per engine
	// (plans keep execution cursors and must never be shared).
	Faults func() *runtime.FaultPlan
	// Decode converts request args to runtime values; nil = generic.
	Decode func(args []json.RawMessage) ([]value.Value, error)
	// Render converts a result value to a JSON-marshalable payload. It
	// must not retain v (the server releases it after rendering); nil =
	// generic encoding.
	Render func(v value.Value) (any, error)
	// Recompile, when non-nil, rebuilds the program with fusion priorities
	// seeded from a measured operator profile — the hook POST
	// /programs/{name}/tune uses to re-fuse under traffic. Programs without
	// it are not tunable.
	Recompile func(prof map[string]int64) (*graph.Program, error)
}

// program is one registered entry: the spec, its current program graph and
// engine pool (both swappable — the adaptive tune path replaces them under
// traffic), and its aggregated counters (all atomics; read by /metrics while
// runs mutate).
type program struct {
	spec Spec
	// prog is the currently-served graph: spec.Prog until a tune wins, the
	// re-fused graph after. pool serves engines for exactly that graph; the
	// two swap together (pool last) and every run captures one pool pointer
	// for its whole checkout/return cycle, so a mid-run swap can never
	// return an engine to a pool built for a different graph.
	prog atomic.Pointer[graph.Program]
	pool atomic.Pointer[runtime.EnginePool]
	// tuneMu serializes tunes per program; running tunes concurrently would
	// race the swap and waste calibration work.
	tuneMu sync.Mutex

	runs     atomic.Int64 // completed successfully
	failures [6]atomic.Int64
	agg      statsAgg
	leakRuns atomic.Int64

	// Adaptive-tune telemetry for /metrics.
	tunes          atomic.Int64 // completed tune requests
	tuneSwaps      atomic.Int64 // tunes whose re-fused plan won and was swapped in
	tuneAdvisories atomic.Int64 // granularity advisories emitted across tunes
	lastImbalanced atomic.Int64 // 1 when the last tune saw a split advisory
	lastGainPct    atomic.Int64 // last tune's gain in basis points (1/100 %)
}

// statsAgg accumulates runtime.Stats across runs for /metrics.
type statsAgg struct {
	ops, operators, retries, opTimeouts, faultsInjected int64
	steals, parks                                       int64
	affinityHits, affinityMisses                        int64
	batchSteals, batchStolenTasks                       int64
	elidedRetains, elidedReleases                       int64
	pooledAllocs, copiesAvoided, fusedNodes             int64
	snapshotCopies                                      int64
	blocksAllocated, blocksCopied, blocksFreed          int64
}

func (a *statsAgg) merge(st *runtime.Stats) {
	atomic.AddInt64(&a.ops, st.OpsExecuted)
	atomic.AddInt64(&a.operators, st.OperatorsRun)
	atomic.AddInt64(&a.retries, st.Retries)
	atomic.AddInt64(&a.opTimeouts, st.OpTimeouts)
	atomic.AddInt64(&a.faultsInjected, st.FaultsInjected)
	atomic.AddInt64(&a.steals, st.Steals)
	atomic.AddInt64(&a.parks, st.Parks)
	atomic.AddInt64(&a.affinityHits, st.AffinityHits)
	atomic.AddInt64(&a.affinityMisses, st.AffinityMisses)
	atomic.AddInt64(&a.batchSteals, st.BatchSteals)
	atomic.AddInt64(&a.batchStolenTasks, st.BatchStolenTasks)
	atomic.AddInt64(&a.elidedRetains, st.ElidedRetains)
	atomic.AddInt64(&a.elidedReleases, st.ElidedReleases)
	atomic.AddInt64(&a.pooledAllocs, st.PooledAllocs)
	atomic.AddInt64(&a.copiesAvoided, st.CopiesAvoided)
	atomic.AddInt64(&a.fusedNodes, st.FusedNodes)
	atomic.AddInt64(&a.snapshotCopies, st.SnapshotCopies)
	atomic.AddInt64(&a.blocksAllocated, st.Blocks.Allocated)
	atomic.AddInt64(&a.blocksCopied, st.Blocks.Copies)
	atomic.AddInt64(&a.blocksFreed, st.Blocks.Freed)
}

// Server is the coordination service: a program registry, bounded
// admission over a shared slot semaphore, and the drained shutdown path.
type Server struct {
	cfg Config

	mu       sync.RWMutex
	programs map[string]*program

	// slots is the admission semaphore: holding a token = running. Drain
	// acquires every token, so a full acquire proves quiescence.
	slots  chan struct{}
	queued atomic.Int64

	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once

	// runCtx parents every run's context; cancelRuns fires when the drain
	// deadline passes, stopping stragglers at their next operator boundary.
	runCtx     context.Context
	cancelRuns context.CancelFunc

	inflight  atomic.Int64
	shed      atomic.Int64
	panics    atomic.Int64
	startTime time.Time
}

// New constructs a server; register programs, then serve s.Handler().
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		programs:   make(map[string]*program),
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		drainCh:    make(chan struct{}),
		runCtx:     ctx,
		cancelRuns: cancel,
		startTime:  time.Now(),
	}
}

// Register adds a compiled program under spec.Name. Duplicate names are
// rejected — re-registering would strand the old pool's engines.
func (s *Server) Register(spec Spec) error {
	if spec.Name == "" || spec.Prog == nil {
		return fmt.Errorf("server: spec needs a name and a compiled program")
	}
	if spec.Base.Faults != nil {
		return fmt.Errorf("server: set Spec.Faults (per-engine factory), not Base.Faults — fault plans are stateful and must not be shared across pooled engines")
	}
	p := &program{spec: spec}
	p.prog.Store(spec.Prog)
	p.pool.Store(s.buildPool(spec, spec.Prog, nil))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.programs[spec.Name]; dup {
		return &APIError{Status: http.StatusConflict, Code: "duplicate_program",
			Message: fmt.Sprintf("program %q is already registered", spec.Name)}
	}
	s.programs[spec.Name] = p
	return nil
}

// buildPool constructs an engine pool serving prog under spec's base
// config, with optional adaptive pool-class caps applied to every engine.
func (s *Server) buildPool(spec Spec, prog *graph.Program, poolCaps []int) *runtime.EnginePool {
	return runtime.NewEnginePool(s.cfg.PoolIdle, func() *runtime.Engine {
		cfg := spec.Base
		cfg.PoolClassCaps = poolCaps
		if spec.Faults != nil {
			cfg.Faults = spec.Faults()
		}
		return runtime.New(prog, cfg)
	})
}

// Programs returns the registered program names, sorted.
func (s *Server) Programs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.programs))
	for n := range s.programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Server) lookup(name string) (*program, *APIError) {
	s.mu.RLock()
	p := s.programs[name]
	s.mu.RUnlock()
	if p == nil {
		return nil, &APIError{Status: http.StatusNotFound, Code: "unknown_program",
			Message: fmt.Sprintf("program %q is not registered", name)}
	}
	return p, nil
}

// retryAfter estimates how long a shed client should back off: the deeper
// the queue, the longer the hint, clamped to [50ms, 2s].
func (s *Server) retryAfter() time.Duration {
	d := time.Duration(s.queued.Load()+1) * 100 * time.Millisecond
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func errDraining() *APIError {
	return &APIError{Status: http.StatusServiceUnavailable, Code: "draining",
		Message: "server is draining; no new runs admitted", RetryAfterMS: 1000}
}

// admit acquires a run slot, queueing up to QueueDepth waiters and
// shedding beyond that. Returns a release func on success.
func (s *Server) admit(ctx context.Context) (func(), *APIError) {
	if s.draining.Load() {
		return nil, errDraining()
	}
	release := func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		// Fast path — but the drain may have started between the check
		// above and the acquire; a drained server must admit nothing.
		if s.draining.Load() {
			release()
			return nil, errDraining()
		}
		return release, nil
	default:
	}
	// All slots busy: join the bounded queue or shed.
	if q := s.queued.Add(1); q > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.shed.Add(1)
		ra := s.retryAfter()
		return nil, &APIError{Status: http.StatusTooManyRequests, Code: "overloaded",
			Message: fmt.Sprintf("admission queue full (%d in flight, %d queued)",
				s.cfg.MaxConcurrent, s.cfg.QueueDepth),
			RetryAfterMS: ra.Milliseconds()}
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		if s.draining.Load() {
			release()
			return nil, errDraining()
		}
		return release, nil
	case <-ctx.Done():
		return nil, &APIError{Status: http.StatusRequestTimeout, Code: "client_gone",
			Message: "client canceled while queued for admission"}
	case <-s.drainCh:
		return nil, errDraining()
	}
}

// clampTimeout resolves the per-run deadline from the request.
func (s *Server) clampTimeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// clampMaxOps resolves the per-run operator budget from the request.
func (s *Server) clampMaxOps(n int64) int64 {
	b := s.cfg.DefaultMaxOps
	if n > 0 {
		b = n
	}
	if b > s.cfg.MaxOpsCap {
		b = s.cfg.MaxOpsCap
	}
	return b
}

// Execute runs one request through the full hardened lifecycle: admission,
// engine checkout, budget + deadline, structured failure classification,
// render, release, leak assertion, engine return. ctx is the client's
// context (its death cancels a queued or running request); it may be nil.
func (s *Server) Execute(ctx context.Context, name string, req RunRequest) (*RunResponse, *APIError) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, apiErr := s.lookup(name)
	if apiErr != nil {
		return nil, apiErr
	}
	// Decode before admission: a malformed request must not consume a slot.
	decode := p.spec.Decode
	if decode == nil {
		decode = decodeArgs
	}
	args, err := decode(req.Args)
	if err != nil {
		return nil, &APIError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("arguments: %v", err)}
	}
	release, apiErr := s.admit(ctx)
	if apiErr != nil {
		return nil, apiErr
	}
	defer release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	return s.execute(ctx, p, req, args)
}

// execute is the post-admission body, panic-isolated: any bug below —
// render, accounting, the engine itself — converts to a 500 instead of
// taking down the daemon.
func (s *Server) execute(ctx context.Context, p *program, req RunRequest, args []value.Value) (resp *RunResponse, apiErr *APIError) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp, apiErr = nil, &APIError{Status: http.StatusInternalServerError, Code: "internal",
				Message: fmt.Sprintf("run panicked outside the engine: %v\n%s", r, debug.Stack())}
		}
	}()

	// Capture one pool pointer for the whole checkout/return cycle: a tune
	// swapping p.pool mid-run must not see this engine returned to the new
	// pool (it was built for the old graph).
	pool := p.pool.Load()
	eng := pool.Get()
	reusedEngine := eng.Runs() > 0
	if err := eng.SetMaxOps(s.clampMaxOps(req.MaxOps)); err != nil {
		// A pooled engine is never running; treat this as the bug it is.
		pool.Put(eng)
		return nil, &APIError{Status: http.StatusInternalServerError, Code: "internal",
			Message: fmt.Sprintf("budget: %v", err)}
	}

	// The run context merges three cancellation sources: the server-wide
	// drain straggler cancel (runCtx parent), the per-run deadline, and
	// the client connection going away.
	runCtx, cancel := context.WithTimeout(s.runCtx, s.clampTimeout(req.TimeoutMS))
	defer cancel()
	stop := context.AfterFunc(ctx, cancel)
	defer stop()

	start := time.Now()
	v, err := eng.RunContext(runCtx, args...)
	elapsed := time.Since(start)

	if err != nil {
		apiErr := classifyRunError(err, runCtx)
		var re *runtime.RunError
		if errors.As(err, &re) {
			p.recordFailure(int(re.Kind))
		} else {
			p.recordFailure(0)
		}
		s.finishRun(p, pool, eng)
		return nil, apiErr
	}

	render := p.spec.Render
	rendered, rerr := func() (any, error) {
		if render == nil {
			return encodeValue(v), nil
		}
		return render(v)
	}()
	// Release the result before any leak accounting: rendering must copy
	// what it keeps. This is also why rendering happens before the engine
	// returns to the pool — Reset would zero the counters Freed lands on.
	value.Release(v, &eng.Stats().Blocks)
	if rerr != nil {
		s.finishRun(p, pool, eng)
		return nil, &APIError{Status: http.StatusInternalServerError, Code: "internal",
			Message: fmt.Sprintf("render: %v", rerr)}
	}

	st := eng.Stats()
	resp = &RunResponse{
		Program:   p.spec.Name,
		Result:    rendered,
		ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6,
		Reused:    reusedEngine,
		Stats: RunStats{
			Ops:             st.OpsExecuted,
			Operators:       st.OperatorsRun,
			Retries:         st.Retries,
			FaultsInjected:  st.FaultsInjected,
			Steals:          st.Steals,
			PooledAllocs:    st.PooledAllocs,
			BlocksAllocated: st.Blocks.Allocated,
			BlocksFreed:     st.Blocks.Freed,
		},
	}
	p.runs.Add(1)
	s.finishRun(p, pool, eng)
	return resp, nil
}

// finishRun settles one run's accounting: merge the engine's counters into
// the program aggregate, assert the leak invariant, and return the engine
// to the pool it was checked out of — unless it leaked, in which case it is
// quarantined (dropped) so a corrupted engine can never serve another
// request.
func (s *Server) finishRun(p *program, pool *runtime.EnginePool, eng *runtime.Engine) {
	st := eng.Stats()
	p.agg.merge(st)
	if st.Blocks.Allocated != st.Blocks.Freed {
		p.leakRuns.Add(1)
		return // quarantine: do not repool
	}
	pool.Put(eng)
}

// classifyRunError maps a runtime failure to the API error surface.
func classifyRunError(err error, runCtx context.Context) *APIError {
	var re *runtime.RunError
	if !errors.As(err, &re) {
		return &APIError{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
	}
	ae := &APIError{
		Code:     "run_failed",
		Message:  re.Error(),
		Kind:     re.Kind.String(),
		Op:       re.Op,
		Template: re.Template,
		Path:     re.Path,
		Attempts: re.Attempts,
	}
	switch re.Kind {
	case runtime.FailTimeout:
		ae.Status = http.StatusGatewayTimeout
		ae.Code = "deadline"
	case runtime.FailCanceled:
		// Distinguish the per-run deadline (504) from the client or the
		// drain killing the run (499-ish; 503 during drain).
		if runCtx.Err() == context.DeadlineExceeded {
			ae.Status = http.StatusGatewayTimeout
			ae.Code = "deadline"
		} else {
			ae.Status = http.StatusServiceUnavailable
			ae.Code = "canceled"
		}
	default: // error, panic, deadlock, budget
		ae.Status = http.StatusUnprocessableEntity
	}
	return ae
}

// LeakRuns returns the total number of runs that violated the
// Allocated == Freed invariant across all programs — the figure the
// daemon's exit code reports.
func (s *Server) LeakRuns() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, p := range s.programs {
		n += p.leakRuns.Load()
	}
	return n
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully drains the server: admission stops immediately
// (queued waiters are released with 503), in-flight runs get DrainTimeout
// to finish, and stragglers past it are canceled at their next operator
// boundary. It returns once every run slot is reclaimed — i.e. proven
// quiescence — or ctx dies first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	timerC := timer.C
	// Acquiring every slot proves no run is in flight. The tokens are held
	// forever after: a drained server never runs again.
	for held := 0; held < cap(s.slots); {
		select {
		case s.slots <- struct{}{}:
			held++
		case <-timerC:
			// Drain deadline: cancel stragglers and keep collecting.
			s.cancelRuns()
			timerC = nil
		case <-ctx.Done():
			s.cancelRuns()
			return fmt.Errorf("server: shutdown context died with %d runs still in flight", cap(s.slots)-held)
		}
	}
	s.cancelRuns() // release the context even on a clean drain
	return nil
}
