// Package server turns the Delirium runtime into a long-running
// coordination service: a program registry (compile once, run many), an
// HTTP/JSON API to submit runs with arguments, per-program pools of
// reusable engines, and a hardened run lifecycle — bounded admission with
// load shedding, per-run deadlines and operator budgets, panic isolation,
// Prometheus-style metrics, and graceful drain. Every run path asserts the
// block-accounting invariant Allocated == Freed.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/value"
)

// RunRequest is the body of POST /run/{name}.
type RunRequest struct {
	// Args are the main-function arguments, generically decoded (numbers,
	// strings, bools, null, arrays-as-tuples) unless the program's Spec
	// installs its own decoder.
	Args []json.RawMessage `json:"args,omitempty"`
	// TimeoutMS overrides the server's default per-run deadline, clamped to
	// the configured maximum. Zero selects the default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxOps overrides the server's default per-run operator budget,
	// clamped to the configured cap. Zero selects the default.
	MaxOps int64 `json:"max_ops,omitempty"`
}

// RunStats is the per-run counter summary returned with every successful
// run (and exported in aggregate at /metrics).
type RunStats struct {
	Ops             int64 `json:"ops"`
	Operators       int64 `json:"operators"`
	Retries         int64 `json:"retries,omitempty"`
	FaultsInjected  int64 `json:"faults_injected,omitempty"`
	Steals          int64 `json:"steals,omitempty"`
	PooledAllocs    int64 `json:"pooled_allocs,omitempty"`
	BlocksAllocated int64 `json:"blocks_allocated"`
	BlocksFreed     int64 `json:"blocks_freed"`
}

// RunResponse is the body of a successful run.
type RunResponse struct {
	Program string `json:"program"`
	// Result is the rendered program result: the program Spec's renderer
	// output, or the generic value encoding.
	Result    any      `json:"result"`
	ElapsedMS float64  `json:"elapsed_ms"`
	Reused    bool     `json:"engine_reused"`
	Stats     RunStats `json:"stats"`
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	Error *APIError `json:"error"`
}

// APIError is the structured error shape of the API. Code is the stable
// machine-readable discriminator; the run-failure fields mirror
// runtime.RunError when the error wraps one.
type APIError struct {
	// Status is the HTTP status (not serialized; carried on the envelope).
	Status int `json:"-"`
	// Code: bad_request, unknown_program, duplicate_program, overloaded,
	// draining, client_gone, deadline, run_failed, internal.
	Code    string `json:"code"`
	Message string `json:"message"`
	// Kind is the runtime failure kind (error, panic, timeout, canceled,
	// deadlock, budget) when the error wraps a RunError.
	Kind     string   `json:"kind,omitempty"`
	Op       string   `json:"op,omitempty"`
	Template string   `json:"template,omitempty"`
	Path     []string `json:"path,omitempty"`
	Attempts int      `json:"attempts,omitempty"`
	// RetryAfterMS, on overloaded/draining responses, is the client backoff
	// hint also carried in the Retry-After header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// decodeArgs generically converts JSON arguments to runtime values:
// integral numbers become Int, other numbers Float, strings Str, booleans
// Bool, null Null, and arrays Tuples (recursively). Objects are rejected —
// block payloads are produced by operators, not posted by clients.
func decodeArgs(raw []json.RawMessage) ([]value.Value, error) {
	out := make([]value.Value, len(raw))
	for i, r := range raw {
		v, err := decodeArg(r)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func decodeArg(raw json.RawMessage) (value.Value, error) {
	var x any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&x); err != nil {
		return nil, err
	}
	return decodeAny(x)
}

func decodeAny(x any) (value.Value, error) {
	switch t := x.(type) {
	case nil:
		return value.Null{}, nil
	case bool:
		return value.Bool(t), nil
	case string:
		return value.Str(t), nil
	case json.Number:
		if n, err := t.Int64(); err == nil {
			return value.Int(n), nil
		}
		f, err := t.Float64()
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.String())
		}
		return value.Float(f), nil
	case []any:
		tup := make(value.Tuple, len(t))
		for i, e := range t {
			v, err := decodeAny(e)
			if err != nil {
				return nil, err
			}
			tup[i] = v
		}
		return tup, nil
	default:
		return nil, fmt.Errorf("unsupported argument type %T (objects cannot be posted)", x)
	}
}

// encodeValue generically renders a result value as a JSON-marshalable
// payload: atoms map to their JSON counterparts, tuples to arrays, and
// blocks to a {"$block": ...} wrapper (float vectors inline their data;
// opaque payloads render their size only — program Specs install typed
// renderers for those).
func encodeValue(v value.Value) any {
	switch t := v.(type) {
	case nil, value.Null:
		return nil
	case value.Int:
		return int64(t)
	case value.Float:
		f := float64(t)
		if math.IsInf(f, 0) || math.IsNaN(f) {
			return fmt.Sprint(f)
		}
		return f
	case value.Str:
		return string(t)
	case value.Bool:
		return bool(t)
	case value.Tuple:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = encodeValue(e)
		}
		return out
	case *value.Block:
		if vec, ok := t.Data().(value.FloatVec); ok {
			return map[string]any{"$block": append([]float64(nil), vec...)}
		}
		return map[string]any{"$block": map[string]any{"words": t.Size()}}
	default:
		return fmt.Sprintf("%v", v)
	}
}
