package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestTuneSwapsUnderTraffic: tune a catalog program while concurrent runs
// hammer it, then verify the post-swap plan still returns results
// bit-identical to the pre-tune baseline and the tune telemetry shows up in
// /metrics.
func TestTuneSwapsUnderTraffic(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, QueueDepth: 64})
	mustRegister(t, s, catalogSpec(t, "queens6", 2, 1990))

	ref, apiErr := s.Execute(context.Background(), "queens6", RunRequest{})
	if apiErr != nil {
		t.Fatalf("baseline: %v", apiErr)
	}
	refJSON, _ := json.Marshal(ref.Result)

	// Run traffic concurrently with the tune: the pool swap must never feed
	// an in-flight engine to the wrong pool or change any result.
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, apiErr := s.Execute(context.Background(), "queens6", RunRequest{})
			if apiErr != nil {
				done <- apiErr
				return
			}
			if j, _ := json.Marshal(resp.Result); !bytes.Equal(j, refJSON) {
				done <- &APIError{Message: "result diverged during tune: " + string(j)}
				return
			}
			done <- nil
		}()
	}

	tr, apiErr := s.TuneProgram(context.Background(), "queens6", TuneRequest{})
	if apiErr != nil {
		t.Fatalf("tune: %v", apiErr)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	if tr.Operators == 0 {
		t.Error("tune calibrated no operators")
	}
	if tr.Winner != "tuned" && tr.Winner != "baseline" {
		t.Errorf("winner = %q", tr.Winner)
	}
	if tr.Swapped != (tr.Winner == "tuned") {
		t.Errorf("swapped=%v but winner=%q", tr.Swapped, tr.Winner)
	}

	// Post-tune runs — whichever plan now serves — must stay bit-identical.
	for i := 0; i < 4; i++ {
		resp, apiErr := s.Execute(context.Background(), "queens6", RunRequest{})
		if apiErr != nil {
			t.Fatalf("post-tune run: %v", apiErr)
		}
		if j, _ := json.Marshal(resp.Result); !bytes.Equal(j, refJSON) {
			t.Errorf("post-tune result diverged:\n got %s\nwant %s", j, refJSON)
		}
	}
	leakCheck(t, s)

	metrics := s.MetricsText()
	for _, want := range []string{
		`delserver_tunes_total{program="queens6"} 1`,
		`delserver_tune_advisories_total{program="queens6"}`,
		`delserver_tune_last_imbalanced{program="queens6"}`,
		`delserver_tune_last_gain_basis_points{program="queens6"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTuneHTTPAndErrors drives POST /programs/{name}/tune over HTTP and
// checks the error surface: unknown programs 404 and programs without a
// recompile hook are rejected as untunable.
func TestTuneHTTPAndErrors(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, QueueDepth: 4})
	mustRegister(t, s, catalogSpec(t, "jacobi", 2, 0))
	mustRegister(t, s, slowSpec(t, "plain", 1, 1)) // no Recompile hook
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/programs/jacobi/tune", "application/json",
		strings.NewReader(`{"timeout_ms": 30000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tune status = %d", resp.StatusCode)
	}
	var tr TuneResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Program != "jacobi" || tr.BaselineCost <= 0 || tr.TunedCost <= 0 {
		t.Errorf("bad tune response: %+v", tr)
	}
	if tr.Unit != "ns" {
		t.Errorf("unit = %q", tr.Unit)
	}

	for _, c := range []struct {
		name string
		want int
	}{
		{"nonesuch", http.StatusNotFound},
		{"plain", http.StatusUnprocessableEntity},
	} {
		resp, err := http.Post(ts.URL+"/programs/"+c.name+"/tune", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("tune %s status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}
