// Package lexer implements the scanner for Delirium coordination programs.
//
// The surface language is deliberately tiny (§3 lists six constructs); the
// token set is correspondingly small: identifiers, integer/float/string
// literals, a handful of keywords (let, in, if, then, else, iterate, while,
// result, define, NULL), and punctuation. Comments run from "--" to end of
// line.
package lexer

import (
	"fmt"

	"repro/internal/source"
)

// Type enumerates Delirium token types.
type Type int

// Token types. EOF is returned forever once input is exhausted; ILLEGAL
// carries a scan error in the token's literal text.
const (
	EOF Type = iota
	ILLEGAL

	IDENT  // target_bite
	INT    // 42
	FLOAT  // 2.5
	STRING // "hello"

	LPAREN // (
	RPAREN // )
	LBRACE // {
	RBRACE // }
	LANGLE // <
	RANGLE // >
	COMMA  // ,
	ASSIGN // =

	KwLet     // let
	KwIn      // in
	KwIf      // if
	KwThen    // then
	KwElse    // else
	KwIterate // iterate
	KwWhile   // while
	KwResult  // result
	KwDefine  // define
	KwNull    // NULL
)

var typeNames = map[Type]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL",
	IDENT: "identifier", INT: "integer", FLOAT: "float", STRING: "string",
	LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	LANGLE: "'<'", RANGLE: "'>'", COMMA: "','", ASSIGN: "'='",
	KwLet: "'let'", KwIn: "'in'", KwIf: "'if'", KwThen: "'then'",
	KwElse: "'else'", KwIterate: "'iterate'", KwWhile: "'while'",
	KwResult: "'result'", KwDefine: "'define'", KwNull: "'NULL'",
}

// String returns a human-readable token type name for diagnostics.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(t))
}

// Keywords maps identifier spellings to keyword token types.
var Keywords = map[string]Type{
	"let": KwLet, "in": KwIn, "if": KwIf, "then": KwThen, "else": KwElse,
	"iterate": KwIterate, "while": KwWhile, "result": KwResult,
	"define": KwDefine, "NULL": KwNull,
}

// Token is one lexical unit with its source position. For INT and FLOAT
// tokens the parsed numeric value is stored alongside the literal text.
type Token struct {
	Type   Type
	Lit    string
	Pos    source.Pos
	IntVal int64
	FltVal float64
}

// String renders the token for error messages: keyword/punctuation tokens by
// name, literal-bearing tokens with their text.
func (t Token) String() string {
	switch t.Type {
	case IDENT, INT, FLOAT, STRING, ILLEGAL:
		return fmt.Sprintf("%s %q", t.Type, t.Lit)
	default:
		return t.Type.String()
	}
}
