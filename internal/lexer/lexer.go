package lexer

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"

	"repro/internal/source"
)

// Lexer scans a Delirium source text into tokens. Create one with New and
// call Next until it returns an EOF token. The lexer never fails hard:
// unscannable input yields ILLEGAL tokens and a diagnostic, letting the
// parser recover and report further errors.
type Lexer struct {
	file  string
	src   string
	off   int // byte offset of the next rune
	line  int
	col   int
	diags *source.DiagList
}

// New returns a lexer over src. Diagnostics are appended to diags, which
// must be non-nil.
func New(file, src string, diags *source.DiagList) *Lexer {
	return &Lexer{file: file, src: src, off: 0, line: 1, col: 1, diags: diags}
}

// pos captures the current source position.
func (l *Lexer) pos() source.Pos {
	return source.Pos{File: l.file, Offset: l.off, Line: l.line, Col: l.col}
}

// peek returns the next rune without consuming it, or -1 at EOF.
func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

// peekAt returns the rune at byte offset l.off+n, or -1 past EOF. Only used
// with small n over ASCII lookahead (comment detection).
func (l *Lexer) peekAt(n int) rune {
	if l.off+n >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+n:])
	return r
}

// advance consumes one rune, tracking line/column.
func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// skipSpaceAndComments consumes whitespace and "--" line comments.
func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '-' && l.peekAt(1) == '-':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	start := l.pos()
	r := l.peek()
	switch {
	case r == -1:
		return Token{Type: EOF, Pos: start}
	case isIdentStart(r):
		return l.scanIdent(start)
	case unicode.IsDigit(r):
		return l.scanNumber(start)
	case r == '"':
		return l.scanString(start)
	}
	l.advance()
	switch r {
	case '(':
		return Token{Type: LPAREN, Lit: "(", Pos: start}
	case ')':
		return Token{Type: RPAREN, Lit: ")", Pos: start}
	case '{':
		return Token{Type: LBRACE, Lit: "{", Pos: start}
	case '}':
		return Token{Type: RBRACE, Lit: "}", Pos: start}
	case '<':
		return Token{Type: LANGLE, Lit: "<", Pos: start}
	case '>':
		return Token{Type: RANGLE, Lit: ">", Pos: start}
	case ',':
		return Token{Type: COMMA, Lit: ",", Pos: start}
	case '=':
		return Token{Type: ASSIGN, Lit: "=", Pos: start}
	case '-':
		// A lone '-' (not a comment) may begin a negative numeric literal.
		if unicode.IsDigit(l.peek()) {
			tok := l.scanNumber(start)
			tok.Lit = "-" + tok.Lit
			tok.IntVal = -tok.IntVal
			tok.FltVal = -tok.FltVal
			return tok
		}
		l.diags.Errorf(start, "unexpected character '-' (did you mean a \"--\" comment or a negative literal?)")
		return Token{Type: ILLEGAL, Lit: "-", Pos: start}
	default:
		l.diags.Errorf(start, "unexpected character %q", r)
		return Token{Type: ILLEGAL, Lit: string(r), Pos: start}
	}
}

// scanIdent scans an identifier or keyword.
func (l *Lexer) scanIdent(start source.Pos) Token {
	begin := l.off
	for isIdentPart(l.peek()) {
		l.advance()
	}
	lit := l.src[begin:l.off]
	if kw, ok := Keywords[lit]; ok {
		return Token{Type: kw, Lit: lit, Pos: start}
	}
	return Token{Type: IDENT, Lit: lit, Pos: start}
}

// scanNumber scans an integer or float literal (digits, optional fraction,
// optional exponent).
func (l *Lexer) scanNumber(start source.Pos) Token {
	begin := l.off
	for unicode.IsDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		isFloat = true
		l.advance()
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	if r := l.peek(); r == 'e' || r == 'E' {
		save := l.off
		saveLine, saveCol := l.line, l.col
		l.advance()
		if r := l.peek(); r == '+' || r == '-' {
			l.advance()
		}
		if unicode.IsDigit(l.peek()) {
			isFloat = true
			for unicode.IsDigit(l.peek()) {
				l.advance()
			}
		} else {
			// Not an exponent after all; restore (e.g. "3elements" is an
			// error caught by identifier rules later).
			l.off, l.line, l.col = save, saveLine, saveCol
		}
	}
	lit := l.src[begin:l.off]
	if isIdentStart(l.peek()) {
		bad := l.pos()
		for isIdentPart(l.peek()) {
			l.advance()
		}
		l.diags.Errorf(bad, "identifier may not begin with a digit: %q", l.src[begin:l.off])
		return Token{Type: ILLEGAL, Lit: l.src[begin:l.off], Pos: start}
	}
	if isFloat {
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			l.diags.Errorf(start, "invalid float literal %q: %v", lit, err)
			return Token{Type: ILLEGAL, Lit: lit, Pos: start}
		}
		return Token{Type: FLOAT, Lit: lit, Pos: start, FltVal: f}
	}
	n, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		l.diags.Errorf(start, "invalid integer literal %q: %v", lit, err)
		return Token{Type: ILLEGAL, Lit: lit, Pos: start}
	}
	return Token{Type: INT, Lit: lit, Pos: start, IntVal: n}
}

// scanString scans a double-quoted string with \n \t \\ \" escapes.
func (l *Lexer) scanString(start source.Pos) Token {
	l.advance() // opening quote
	var buf []rune
	for {
		r := l.peek()
		switch r {
		case -1, '\n':
			l.diags.Errorf(start, "unterminated string literal")
			return Token{Type: ILLEGAL, Lit: string(buf), Pos: start}
		case '"':
			l.advance()
			return Token{Type: STRING, Lit: string(buf), Pos: start}
		case '\\':
			l.advance()
			esc := l.advance()
			switch esc {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case '\\':
				buf = append(buf, '\\')
			case '"':
				buf = append(buf, '"')
			default:
				l.diags.Errorf(start, "unknown escape sequence \\%c in string", esc)
				buf = append(buf, esc)
			}
		default:
			buf = append(buf, l.advance())
		}
	}
}

// ScanAll tokenizes the entire input, always ending with an EOF token. It is
// the unit the parallel compiler hands to the parsing stage.
func (l *Lexer) ScanAll() []Token {
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Type == EOF {
			return toks
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Describe formats a token list compactly, one token per line, for the
// delc -tokens debugging mode.
func Describe(toks []Token) string {
	s := ""
	for _, t := range toks {
		s += fmt.Sprintf("%-12s %s\n", t.Pos, t)
	}
	return s
}
