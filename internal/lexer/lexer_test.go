package lexer

import (
	"strings"
	"testing"

	"repro/internal/source"
)

func scan(t *testing.T, src string) ([]Token, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	l := New("test.dlr", src, &diags)
	return l.ScanAll(), &diags
}

func types(toks []Token) []Type {
	out := make([]Type, len(toks))
	for i, t := range toks {
		out[i] = t.Type
	}
	return out
}

func TestScanPunctuation(t *testing.T) {
	toks, diags := scan(t, "(){}<>,=")
	want := []Type{LPAREN, RPAREN, LBRACE, RBRACE, LANGLE, RANGLE, COMMA, ASSIGN, EOF}
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	got := types(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanKeywordsAndIdents(t *testing.T) {
	toks, diags := scan(t, "let in if then else iterate while result define NULL foo _bar x1")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	want := []Type{KwLet, KwIn, KwIf, KwThen, KwElse, KwIterate, KwWhile,
		KwResult, KwDefine, KwNull, IDENT, IDENT, IDENT, EOF}
	got := types(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[10].Lit != "foo" || toks[11].Lit != "_bar" || toks[12].Lit != "x1" {
		t.Errorf("identifier literals wrong: %v %v %v", toks[10], toks[11], toks[12])
	}
}

func TestScanNumbers(t *testing.T) {
	toks, diags := scan(t, "0 42 3.5 2e3 1.5e-2 7E+2")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	if toks[0].Type != INT || toks[0].IntVal != 0 {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Type != INT || toks[1].IntVal != 42 {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Type != FLOAT || toks[2].FltVal != 3.5 {
		t.Errorf("tok2 = %+v", toks[2])
	}
	if toks[3].Type != FLOAT || toks[3].FltVal != 2000 {
		t.Errorf("tok3 = %+v", toks[3])
	}
	if toks[4].Type != FLOAT || toks[4].FltVal != 0.015 {
		t.Errorf("tok4 = %+v", toks[4])
	}
	if toks[5].Type != FLOAT || toks[5].FltVal != 700 {
		t.Errorf("tok5 = %+v", toks[5])
	}
}

func TestScanNegativeLiterals(t *testing.T) {
	toks, diags := scan(t, "-5 -2.5")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	if toks[0].Type != INT || toks[0].IntVal != -5 {
		t.Errorf("tok0 = %+v, want INT -5", toks[0])
	}
	if toks[1].Type != FLOAT || toks[1].FltVal != -2.5 {
		t.Errorf("tok1 = %+v, want FLOAT -2.5", toks[1])
	}
}

func TestScanStrings(t *testing.T) {
	toks, diags := scan(t, `"hello" "a\nb" "q\"q" "t\tt" "s\\s"`)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	want := []string{"hello", "a\nb", `q"q`, "t\tt", `s\s`}
	for i, w := range want {
		if toks[i].Type != STRING || toks[i].Lit != w {
			t.Errorf("tok[%d] = %+v, want STRING %q", i, toks[i], w)
		}
	}
}

func TestScanComments(t *testing.T) {
	toks, diags := scan(t, "a -- this is a comment < > = \nb -- trailing")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	got := types(toks)
	want := []Type{IDENT, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Errorf("b at line %d, want 2", toks[1].Pos.Line)
	}
}

func TestScanPositions(t *testing.T) {
	toks, _ := scan(t, "ab cd\n  ef")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("ab at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 1 || toks[1].Pos.Col != 4 {
		t.Errorf("cd at %v", toks[1].Pos)
	}
	if toks[2].Pos.Line != 2 || toks[2].Pos.Col != 3 {
		t.Errorf("ef at %v", toks[2].Pos)
	}
}

func TestScanErrors(t *testing.T) {
	cases := []struct {
		src     string
		errPart string
	}{
		{`"unterminated`, "unterminated string"},
		{"\"bad\nline\"", "unterminated string"},
		{"3abc", "may not begin with a digit"},
		{"@", "unexpected character"},
		{`"\q"`, "unknown escape"},
		{"- x", "unexpected character '-'"},
	}
	for _, c := range cases {
		_, diags := scan(t, c.src)
		if !diags.HasErrors() {
			t.Errorf("src %q: expected error", c.src)
			continue
		}
		if !strings.Contains(diags.Err().Error(), c.errPart) {
			t.Errorf("src %q: error %q does not mention %q", c.src, diags.Err(), c.errPart)
		}
	}
}

func TestScanEOFIsSticky(t *testing.T) {
	var diags source.DiagList
	l := New("t", "x", &diags)
	l.Next()
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Type != EOF {
			t.Fatalf("Next after EOF = %v, want EOF", tok)
		}
	}
}

func TestScanPaperFragment(t *testing.T) {
	src := `
main()
  let board = empty_board()
  in show_solutions(do_it(board,1))

do_it(board,queen)
  let h1 = try(board,queen,1)
  in merge(h1)
`
	toks, diags := scan(t, src)
	if diags.HasErrors() {
		t.Fatalf("paper fragment should scan cleanly: %v", diags.Err())
	}
	// Spot-check the shape: main ( ) let board = ...
	want := []Type{IDENT, LPAREN, RPAREN, KwLet, IDENT, ASSIGN, IDENT, LPAREN, RPAREN, KwIn}
	got := types(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanIterateFragment(t *testing.T) {
	src := `iterate { slab=START_SLAB,incr(slab) } while is_not_equal(slab,FINAL_SLAB), result convolve_data`
	toks, diags := scan(t, src)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	if toks[0].Type != KwIterate || toks[1].Type != LBRACE {
		t.Errorf("start = %v %v", toks[0], toks[1])
	}
	found := false
	for _, tok := range toks {
		if tok.Type == KwResult {
			found = true
		}
	}
	if !found {
		t.Error("result keyword not found")
	}
}

func TestTokenString(t *testing.T) {
	if got := (Token{Type: IDENT, Lit: "x"}).String(); got != `identifier "x"` {
		t.Errorf("Token.String() = %q", got)
	}
	if got := (Token{Type: KwLet, Lit: "let"}).String(); got != "'let'" {
		t.Errorf("Token.String() = %q", got)
	}
	if !strings.Contains(Type(77).String(), "77") {
		t.Error("unknown type string should embed value")
	}
}

func TestDescribe(t *testing.T) {
	toks, _ := scan(t, "a = 1")
	out := Describe(toks)
	if !strings.Contains(out, `identifier "a"`) || !strings.Contains(out, "EOF") {
		t.Errorf("Describe output missing tokens:\n%s", out)
	}
}

func TestScanUnicodeIdentifiers(t *testing.T) {
	toks, diags := scan(t, "π = 3")
	if diags.HasErrors() {
		t.Fatalf("unicode identifier should scan: %v", diags.Err())
	}
	if toks[0].Type != IDENT || toks[0].Lit != "π" {
		t.Errorf("tok0 = %+v", toks[0])
	}
}
