package machine

import (
	"strings"
	"testing"
)

func TestProfilesWellFormed(t *testing.T) {
	for _, p := range []*Profile{CrayYMP(), Cray2(), Sequent(), Butterfly(), Uniprocessor()} {
		if p.Name == "" || p.Procs < 1 {
			t.Errorf("malformed profile %+v", p)
		}
		if p.TickPerUnit <= 0 || p.DispatchTicks <= 0 {
			t.Errorf("%s: non-positive costs", p.Name)
		}
		if p.LocalTicksPerWord <= 0 || p.RemoteTicksPerWord < p.LocalTicksPerWord {
			t.Errorf("%s: remote access cannot be cheaper than local", p.Name)
		}
	}
}

func TestUniformity(t *testing.T) {
	if !CrayYMP().Uniform() || !Sequent().Uniform() || !Cray2().Uniform() {
		t.Error("bus machines should be UMA")
	}
	if Butterfly().Uniform() {
		t.Error("Butterfly should be NUMA")
	}
}

func TestWithProcsCopies(t *testing.T) {
	base := CrayYMP()
	mod := base.WithProcs(16)
	if mod.Procs != 16 || base.Procs != 4 {
		t.Errorf("WithProcs mutated base: %d / %d", mod.Procs, base.Procs)
	}
	if mod.Name != base.Name {
		t.Error("WithProcs should keep everything else")
	}
}

func TestString(t *testing.T) {
	if s := CrayYMP().String(); !strings.Contains(s, "UMA") || !strings.Contains(s, "4 procs") {
		t.Errorf("Cray description: %q", s)
	}
	if s := Butterfly().String(); !strings.Contains(s, "NUMA") {
		t.Errorf("Butterfly description: %q", s)
	}
}

func TestPaperProcessorCounts(t *testing.T) {
	// The paper's machines: Cray-2 and Cray Y-MP have four processors.
	if CrayYMP().Procs != 4 || Cray2().Procs != 4 {
		t.Error("Cray profiles should have 4 processors")
	}
	if Uniprocessor().Procs != 1 {
		t.Error("workstation should have 1 processor")
	}
}
