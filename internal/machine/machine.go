// Package machine defines simulated machine profiles for the deterministic
// executor. The paper's environment ran on the Sequent Symmetry, Cray-2,
// Cray Y-MP, and BBN Butterfly T2000; the profiles here model the
// characteristics that matter to the coordination runtime — processor
// count, per-dispatch scheduling overhead, and local versus remote memory
// access cost (uniform on the bus machines, strongly non-uniform on the
// Butterfly, §9.3).
//
// Virtual time is measured in ticks. Operators charge abstract work units
// as they compute; the simulated executor converts each unit to TickPerUnit
// ticks and adds dispatch overhead and memory cost. Only ratios matter for
// the reproduced figures, so the absolute calibration is arbitrary.
package machine

import "fmt"

// Profile describes one simulated machine.
type Profile struct {
	// Name identifies the machine in experiment output.
	Name string
	// Procs is the number of processors available.
	Procs int
	// TickPerUnit converts charged work units to ticks.
	TickPerUnit float64
	// DispatchTicks is the run-time system's cost to schedule one operator
	// (the overhead the paper reports as under three percent, §7).
	DispatchTicks int64
	// LocalTicksPerWord and RemoteTicksPerWord price an operator's input
	// blocks by last-touched location. Equal values model a uniform
	// shared-memory machine.
	LocalTicksPerWord  float64
	RemoteTicksPerWord float64
}

// Uniform reports whether memory access cost ignores placement.
func (p *Profile) Uniform() bool { return p.LocalTicksPerWord == p.RemoteTicksPerWord }

// String returns a single-line description.
func (p *Profile) String() string {
	mem := "UMA"
	if !p.Uniform() {
		mem = fmt.Sprintf("NUMA %.1fx", p.RemoteTicksPerWord/p.LocalTicksPerWord)
	}
	return fmt.Sprintf("%s: %d procs, dispatch=%d ticks, %s", p.Name, p.Procs, p.DispatchTicks, mem)
}

// WithProcs returns a copy of the profile with a different processor count,
// for speedup sweeps.
func (p *Profile) WithProcs(n int) *Profile {
	cp := *p
	cp.Procs = n
	return &cp
}

// CrayYMP models the four-processor Cray Y-MP used for the retina model
// (Figure 1): uniform memory, very low scheduling overhead relative to the
// vectorized operator bodies.
func CrayYMP() *Profile {
	return &Profile{
		Name:               "Cray Y-MP",
		Procs:              4,
		TickPerUnit:        1.0,
		DispatchTicks:      40,
		LocalTicksPerWord:  0.02,
		RemoteTicksPerWord: 0.02,
	}
}

// Cray2 models the four-processor Cray-2 on which the retina model was
// first tuned (§5.1).
func Cray2() *Profile {
	return &Profile{
		Name:               "Cray-2",
		Procs:              4,
		TickPerUnit:        1.2,
		DispatchTicks:      60,
		LocalTicksPerWord:  0.03,
		RemoteTicksPerWord: 0.03,
	}
}

// Sequent models the Sequent Symmetry bus machine used for the parallel
// compiler (Table 1): uniform memory, slower processors, relatively higher
// dispatch cost.
func Sequent() *Profile {
	return &Profile{
		Name:               "Sequent Symmetry",
		Procs:              8,
		TickPerUnit:        4.0,
		DispatchTicks:      120,
		LocalTicksPerWord:  0.08,
		RemoteTicksPerWord: 0.08,
	}
}

// Butterfly models the BBN Butterfly T2000: many processors behind a
// network where remote memory access is several times the local cost —
// the machine for which the affinity extension matters (§9.3).
func Butterfly() *Profile {
	return &Profile{
		Name:               "BBN Butterfly T2000",
		Procs:              16,
		TickPerUnit:        3.0,
		DispatchTicks:      100,
		LocalTicksPerWord:  0.10,
		RemoteTicksPerWord: 0.60,
	}
}

// Uniprocessor is a single-processor workstation profile (the paper's
// development machines: Sun, IRIS 4D, HP 300) for sequential baselines.
func Uniprocessor() *Profile {
	return &Profile{
		Name:               "workstation",
		Procs:              1,
		TickPerUnit:        1.0,
		DispatchTicks:      40,
		LocalTicksPerWord:  0.02,
		RemoteTicksPerWord: 0.02,
	}
}
