package graph

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/value"
)

// Build converts every analyzed function into a linked template program
// (the Graph Conversion pass of Table 1). Iteration constructs are lowered
// here into hidden tail-recursive loop templates (§3 construct 5).
func Build(info *sema.Info, diags *source.DiagList) *Program {
	prog := &Program{Templates: make(map[string]*Template), Registry: info.Registry}
	for _, name := range info.Order {
		for _, t := range BuildFunc(info, info.Funcs[name].Decl, diags) {
			prog.Templates[t.Name] = t
		}
	}
	Link(prog, diags)
	return prog
}

// BuildFunc converts a single function, returning its template followed by
// any loop templates generated for its iterate expressions. It is the unit
// of work of the parallel graph-conversion pass; the results are merged and
// linked afterwards.
func BuildFunc(info *sema.Info, decl *ast.FuncDecl, diags *source.DiagList) []*Template {
	loopCount := 0
	var extra []*Template
	t := &Template{
		Name:      decl.Name,
		NParams:   len(decl.Params),
		NCaptures: len(decl.Captures),
		Recursive: decl.Recursive,
	}
	b := &builder{info: info, tmpl: t, fname: decl.Name, env: make(map[string]int),
		loopCount: &loopCount, extra: &extra, diags: diags}
	for i, p := range decl.Params {
		b.env[p] = t.add(&Node{Kind: ParamNode, Name: p, Index: i, Pos: decl.P})
	}
	for i, c := range decl.Captures {
		b.env[c] = t.add(&Node{Kind: ParamNode, Name: c, Index: len(decl.Params) + i, Pos: decl.P})
	}
	t.Result = b.buildExpr(decl.Body)
	return append([]*Template{t}, extra...)
}

// Link resolves callee names to template pointers in every node, including
// branch subtemplates, and validates the result. Call after all templates
// (from sequential Build or merged parallel workers) are registered.
func Link(prog *Program, diags *source.DiagList) {
	var linkTemplate func(t *Template)
	linkTemplate = func(t *Template) {
		for _, n := range t.Nodes {
			switch n.Kind {
			case CallNode, MakeClosureNode:
				callee, ok := prog.Templates[n.Name]
				if !ok {
					diags.Errorf(n.Pos, "internal: call to unknown template %s", n.Name)
					continue
				}
				n.Callee = callee
			case CondNode:
				linkTemplate(n.Then)
				linkTemplate(n.Else)
			}
		}
		markSpread(t)
	}
	for _, t := range prog.Templates {
		linkTemplate(t)
	}
	if m, ok := prog.Templates["main"]; ok {
		prog.Main = m
	}
	names := make([]string, 0, len(prog.Templates))
	for name := range prog.Templates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := prog.Templates[name].Validate(); err != nil {
			diags.Errorf(source.Pos{}, "internal: %v", err)
		}
	}
}

// markSpread finds multiple-value decompositions compiled as a producer
// feeding only DetupleNodes with distinct indices, and marks them for the
// runtime's ownership-splitting fast path (see Node.Spread). The consumer
// with the lowest id releases any element no sibling extracts.
func markSpread(t *Template) {
	for _, n := range t.Nodes {
		if n.ID == t.Result || len(n.Out) < 2 {
			continue
		}
		seen := make(map[int]bool, len(n.Out))
		lowest := -1
		ok := true
		for _, e := range n.Out {
			c := t.Nodes[e.To]
			if c.Kind != DetupleNode || e.Port != 0 || seen[c.Index] {
				ok = false
				break
			}
			seen[c.Index] = true
			if lowest == -1 || e.To < lowest {
				lowest = e.To
			}
		}
		if !ok {
			continue
		}
		n.Spread = true
		covered := make([]int, 0, len(seen))
		for idx := range seen {
			covered = append(covered, idx)
		}
		sort.Ints(covered)
		for _, e := range n.Out {
			t.Nodes[e.To].SpreadConsumer = true
		}
		t.Nodes[lowest].CoveredIdx = covered
	}
}

type builder struct {
	info      *sema.Info
	tmpl      *Template
	fname     string
	env       map[string]int // unique name -> producing node id
	loopCount *int
	extra     *[]*Template
	diags     *source.DiagList
}

// node creates a node fed by the given producers, wiring one edge per port.
func (b *builder) node(n *Node, inputs []int) int {
	n.NIn = len(inputs)
	id := b.tmpl.add(n)
	for port, from := range inputs {
		b.tmpl.connect(from, id, port)
	}
	return id
}

// lookup resolves a local name to its producing node.
func (b *builder) lookup(name string, pos source.Pos) int {
	if id, ok := b.env[name]; ok {
		return id
	}
	b.diags.Errorf(pos, "internal: name %s not in graph environment of %s", name, b.fname)
	// Recover with a NULL constant so later validation still runs.
	return b.tmpl.add(&Node{Kind: ConstNode, Name: "error", Const: value.Null{}, Pos: pos})
}

// buildExpr emits nodes for e and returns the producing node id.
func (b *builder) buildExpr(e ast.Expr) int {
	switch x := e.(type) {
	case *ast.IntLit:
		return b.tmpl.add(&Node{Kind: ConstNode, Const: value.Int(x.Val), Pos: x.P})
	case *ast.FloatLit:
		return b.tmpl.add(&Node{Kind: ConstNode, Const: value.Float(x.Val), Pos: x.P})
	case *ast.StrLit:
		return b.tmpl.add(&Node{Kind: ConstNode, Const: value.Str(x.Val), Pos: x.P})
	case *ast.NullLit:
		return b.tmpl.add(&Node{Kind: ConstNode, Const: value.Null{}, Pos: x.P})
	case *ast.Ident:
		return b.buildIdent(x)
	case *ast.Call:
		return b.buildCall(x)
	case *ast.TupleExpr:
		inputs := make([]int, len(x.Elems))
		for i, el := range x.Elems {
			inputs[i] = b.buildExpr(el)
		}
		return b.node(&Node{Kind: TupleNode, Name: "tuple", Pos: x.P}, inputs)
	case *ast.Let:
		return b.buildLet(x)
	case *ast.If:
		return b.buildIf(x)
	case *ast.Iterate:
		return b.buildIterate(x)
	default:
		b.diags.Errorf(e.Pos(), "internal: cannot convert %T to graph", e)
		return b.tmpl.add(&Node{Kind: ConstNode, Name: "error", Const: value.Null{}, Pos: e.Pos()})
	}
}

func (b *builder) buildIdent(id *ast.Ident) int {
	switch id.Ref {
	case ast.RefFunc:
		// First-class use: build a closure over the callee's captures.
		f, ok := b.info.Funcs[id.Name]
		if !ok {
			b.diags.Errorf(id.P, "internal: unknown function %s", id.Name)
			return b.tmpl.add(&Node{Kind: ConstNode, Name: "error", Const: value.Null{}, Pos: id.P})
		}
		inputs := make([]int, len(f.Decl.Captures))
		for i, c := range f.Decl.Captures {
			inputs[i] = b.lookup(c, id.P)
		}
		return b.node(&Node{Kind: MakeClosureNode, Name: id.Name, Pos: id.P}, inputs)
	case ast.RefOperator:
		b.diags.Errorf(id.P, "internal: operator %s used as value survived analysis", id.Name)
		return b.tmpl.add(&Node{Kind: ConstNode, Name: "error", Const: value.Null{}, Pos: id.P})
	default:
		return b.lookup(id.Name, id.P)
	}
}

func (b *builder) buildCall(call *ast.Call) int {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Ref {
		case ast.RefOperator:
			op, ok := b.info.Registry.Lookup(id.Name)
			if !ok {
				b.diags.Errorf(id.P, "internal: operator %s vanished from registry", id.Name)
				return b.tmpl.add(&Node{Kind: ConstNode, Name: "error", Const: value.Null{}, Pos: id.P})
			}
			inputs := make([]int, len(call.Args))
			for i, a := range call.Args {
				inputs[i] = b.buildExpr(a)
			}
			return b.node(&Node{Kind: OpNode, Name: id.Name, Op: op, Pos: call.P}, inputs)
		case ast.RefFunc:
			f, ok := b.info.Funcs[id.Name]
			if !ok {
				b.diags.Errorf(id.P, "internal: unknown function %s", id.Name)
				return b.tmpl.add(&Node{Kind: ConstNode, Name: "error", Const: value.Null{}, Pos: id.P})
			}
			inputs := make([]int, 0, len(call.Args)+len(f.Decl.Captures))
			for _, a := range call.Args {
				inputs = append(inputs, b.buildExpr(a))
			}
			for _, c := range f.Decl.Captures {
				inputs = append(inputs, b.lookup(c, call.P))
			}
			return b.node(&Node{Kind: CallNode, Name: id.Name, Tail: call.Tail, Pos: call.P}, inputs)
		}
	}
	// Dynamic application through a closure value.
	inputs := make([]int, 0, len(call.Args)+1)
	inputs = append(inputs, b.buildExpr(call.Fun))
	for _, a := range call.Args {
		inputs = append(inputs, b.buildExpr(a))
	}
	return b.node(&Node{Kind: CallClosureNode, Name: "call-closure", Tail: call.Tail, Pos: call.P}, inputs)
}

// buildLet emits bindings in dependency order (letrec allows textual
// forward references; sema has rejected cycles) and then the body.
func (b *builder) buildLet(let *ast.Let) int {
	type bindInfo struct {
		bind *ast.Bind
		deps []int
	}
	owner := make(map[string]int)
	var vals []*bindInfo
	for _, bd := range let.Binds {
		if bd.Kind == ast.BindFunc {
			continue // lifted; closure creation happens at use sites
		}
		bi := &bindInfo{bind: bd}
		for _, n := range bd.Names {
			owner[n] = len(vals)
		}
		vals = append(vals, bi)
	}
	for _, bi := range vals {
		for _, n := range sema.FreeNames(b.info, []ast.Expr{bi.bind.Init}, nil) {
			if j, ok := owner[n]; ok {
				bi.deps = append(bi.deps, j)
			}
		}
	}
	built := make([]bool, len(vals))
	var emit func(i int)
	emit = func(i int) {
		if built[i] {
			return
		}
		built[i] = true // sema guarantees acyclicity; pre-marking is safe
		for _, j := range vals[i].deps {
			emit(j)
		}
		bd := vals[i].bind
		src := b.buildExpr(bd.Init)
		switch bd.Kind {
		case ast.BindValue:
			b.env[bd.Names[0]] = src
		case ast.BindTuple:
			for k, n := range bd.Names {
				b.env[n] = b.node(&Node{Kind: DetupleNode, Name: n, Index: k, Pos: bd.P}, []int{src})
			}
		}
	}
	for i := range vals {
		emit(i)
	}
	return b.buildExpr(let.Body)
}

// buildIf compiles a conditional into a CondNode whose branches are
// anonymous subtemplates parameterized by their free names. The test and
// the branch inputs evaluate eagerly; the chosen branch's work is deferred
// until the node fires (§8: "the topology itself supports conditional
// expression evaluation").
func (b *builder) buildIf(ifx *ast.If) int {
	cond := b.buildExpr(ifx.Cond)
	frees := sema.FreeNames(b.info, []ast.Expr{ifx.Then, ifx.Else}, nil)
	inputs := make([]int, 0, len(frees)+1)
	inputs = append(inputs, cond)
	for _, n := range frees {
		inputs = append(inputs, b.lookup(n, ifx.P))
	}
	thenT := b.buildBranch(ifx.Then, frees, "then")
	elseT := b.buildBranch(ifx.Else, frees, "else")
	return b.node(&Node{Kind: CondNode, Name: "if", Then: thenT, Else: elseT, Pos: ifx.P}, inputs)
}

// buildBranch compiles one conditional arm as a subtemplate whose
// parameters are the (shared) free-name list.
func (b *builder) buildBranch(body ast.Expr, frees []string, label string) *Template {
	t := &Template{
		Name:    fmt.Sprintf("%s$%s@%d", b.fname, label, len(b.tmpl.Nodes)),
		NParams: len(frees),
	}
	nb := &builder{info: b.info, tmpl: t, fname: b.fname, env: make(map[string]int, len(frees)),
		loopCount: b.loopCount, extra: b.extra, diags: b.diags}
	for i, n := range frees {
		nb.env[n] = t.add(&Node{Kind: ParamNode, Name: n, Index: i, Pos: body.Pos()})
	}
	t.Result = nb.buildExpr(body)
	return t
}

// buildIterate lowers iteration to a hidden tail-recursive loop template:
//
//	L(v1..vn, caps...):
//	    n1..nn   := Next expressions over v1..vn
//	    t        := Cond over n1..nn
//	    if t then L(n1..nn, caps...)   -- tail call: activation reuse
//	         else Result over n1..nn
//
// and emits the initial call L(init1..initn, caps...).
func (b *builder) buildIterate(it *ast.Iterate) int {
	*b.loopCount++
	loopName := fmt.Sprintf("%s$loop%d", b.fname, *b.loopCount)

	varNames := make([]string, len(it.Vars))
	for i, iv := range it.Vars {
		varNames[i] = iv.Name
	}
	bodyExprs := make([]ast.Expr, 0, len(it.Vars)+2)
	for _, iv := range it.Vars {
		bodyExprs = append(bodyExprs, iv.Next)
	}
	bodyExprs = append(bodyExprs, it.Cond, it.Result)
	caps := sema.FreeNames(b.info, bodyExprs, varNames)

	loop := &Template{
		Name:      loopName,
		NParams:   len(it.Vars),
		NCaptures: len(caps),
		Recursive: true,
	}
	lb := &builder{info: b.info, tmpl: loop, fname: loopName, env: make(map[string]int),
		loopCount: b.loopCount, extra: b.extra, diags: b.diags}
	for i, v := range varNames {
		lb.env[v] = loop.add(&Node{Kind: ParamNode, Name: v, Index: i, Pos: it.P})
	}
	capBase := len(varNames)
	for i, c := range caps {
		lb.env[c] = loop.add(&Node{Kind: ParamNode, Name: c, Index: capBase + i, Pos: it.P})
	}

	// Next values over the current variables.
	nexts := make([]int, len(it.Vars))
	for i, iv := range it.Vars {
		nexts[i] = lb.buildExpr(iv.Next)
	}
	// Rebind loop variables to the new values for cond and result.
	for i, v := range varNames {
		lb.env[v] = nexts[i]
	}
	cond := lb.buildExpr(it.Cond)

	// Both branches receive the new variables plus the captures.
	branchNames := append(append([]string(nil), varNames...), caps...)
	inputs := make([]int, 0, len(branchNames)+1)
	inputs = append(inputs, cond)
	for _, n := range branchNames {
		inputs = append(inputs, lb.env[n])
	}

	// then: tail-call the loop with every branch parameter forwarded.
	thenT := &Template{Name: loopName + "$again", NParams: len(branchNames)}
	targs := make([]int, len(branchNames))
	for i, n := range branchNames {
		targs[i] = thenT.add(&Node{Kind: ParamNode, Name: n, Index: i, Pos: it.P})
	}
	tb := &builder{info: b.info, tmpl: thenT, fname: loopName, env: nil,
		loopCount: b.loopCount, extra: b.extra, diags: b.diags}
	thenT.Result = tb.node(&Node{Kind: CallNode, Name: loopName, Tail: true, Pos: it.P}, targs)

	// else: evaluate the result expression.
	elseT := b.buildBranchIn(lb, it.Result, branchNames, loopName+"$done")
	loop.Result = lb.node(&Node{Kind: CondNode, Name: "while", Then: thenT, Else: elseT, Pos: it.P}, inputs)
	*b.extra = append(*b.extra, loop)

	// Initial call in the enclosing template.
	initInputs := make([]int, 0, len(it.Vars)+len(caps))
	for _, iv := range it.Vars {
		initInputs = append(initInputs, b.buildExpr(iv.Init))
	}
	for _, c := range caps {
		initInputs = append(initInputs, b.lookup(c, it.P))
	}
	return b.node(&Node{Kind: CallNode, Name: loopName, Pos: it.P}, initInputs)
}

// buildBranchIn compiles body as a subtemplate parameterized by names, in
// the context of the loop builder lb.
func (b *builder) buildBranchIn(lb *builder, body ast.Expr, names []string, label string) *Template {
	t := &Template{Name: label, NParams: len(names)}
	nb := &builder{info: lb.info, tmpl: t, fname: lb.fname, env: make(map[string]int, len(names)),
		loopCount: lb.loopCount, extra: lb.extra, diags: lb.diags}
	for i, n := range names {
		nb.env[n] = t.add(&Node{Kind: ParamNode, Name: n, Index: i, Pos: body.Pos()})
	}
	t.Result = nb.buildExpr(body)
	return t
}
