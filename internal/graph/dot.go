package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the program's templates in Graphviz DOT format — the
// coordination-framework visualization tool of the paper's environment
// (§1). Each template becomes a cluster; conditional branch subtemplates
// nest inside their owner.
func (p *Program) Dot() string {
	var b strings.Builder
	b.WriteString("digraph delirium {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n")
	names := make([]string, 0, len(p.Templates))
	for name := range p.Templates {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		writeTemplate(&b, p.Templates[name], fmt.Sprintf("t%d", i), 1)
	}
	b.WriteString("}\n")
	return b.String()
}

// DotTemplate renders a single template.
func DotTemplate(t *Template) string {
	var b strings.Builder
	b.WriteString("digraph template {\n  rankdir=TB;\n")
	writeTemplate(&b, t, "t0", 1)
	b.WriteString("}\n")
	return b.String()
}

func writeTemplate(b *strings.Builder, t *Template, prefix string, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%ssubgraph cluster_%s {\n", ind, prefix)
	fmt.Fprintf(b, "%s  label=%q;\n", ind, t.Name)
	// Cond-branch prefixes are assigned by node id up front, so the
	// numbering is stable whether a cond is emitted inline or pulled into a
	// fused-supernode subgraph below.
	condSub := make(map[int]int)
	sub := 0
	for _, n := range t.Nodes {
		if n.Kind == CondNode {
			condSub[n.ID] = sub
			sub += 2
		}
	}
	emit := func(n *Node, ind string, depth int) {
		label := nodeLabel(t, n)
		shape := nodeShape(n)
		fmt.Fprintf(b, "%s  %s_n%d [label=%q, shape=%s];\n", ind, prefix, n.ID, label, shape)
		if n.Kind == CondNode {
			tp := fmt.Sprintf("%s_s%d", prefix, condSub[n.ID])
			ep := fmt.Sprintf("%s_s%d", prefix, condSub[n.ID]+1)
			writeTemplate(b, n.Then, tp, depth+1)
			writeTemplate(b, n.Else, ep, depth+1)
			fmt.Fprintf(b, "%s  %s_n%d -> %s_n%d [style=dashed, label=\"then\"];\n", ind, prefix, n.ID, tp, n.Then.Result)
			fmt.Fprintf(b, "%s  %s_n%d -> %s_n%d [style=dashed, label=\"else\"];\n", ind, prefix, n.ID, ep, n.Else.Result)
		}
	}
	// Fused supernodes render as nested subgraphs; a template compiled
	// without fusion has no clusters and produces exactly the flat layout.
	for _, c := range t.Clusters {
		fmt.Fprintf(b, "%s  subgraph cluster_%s_f%d {\n", ind, prefix, c.Index)
		fmt.Fprintf(b, "%s    label=\"supernode %d\";\n", ind, c.Index)
		fmt.Fprintf(b, "%s    style=dashed;\n", ind)
		for _, id := range c.Nodes {
			emit(t.Nodes[id], ind+"  ", depth+1)
		}
		fmt.Fprintf(b, "%s  }\n", ind)
	}
	for _, n := range t.Nodes {
		if !n.Fused {
			emit(n, ind, depth)
		}
	}
	for _, n := range t.Nodes {
		for _, e := range n.Out {
			style := ""
			if n.FuseInternalOut {
				style = ", style=bold"
			}
			fmt.Fprintf(b, "%s  %s_n%d -> %s_n%d [label=\"%d\"%s];\n", ind, prefix, n.ID, prefix, e.To, e.Port, style)
		}
	}
	fmt.Fprintf(b, "%s  %s_n%d [penwidth=2];\n", ind, prefix, t.Result)
	fmt.Fprintf(b, "%s}\n", ind)
}

func nodeLabel(t *Template, n *Node) string {
	switch n.Kind {
	case ParamNode:
		return fmt.Sprintf("param %d: %s", n.Index, n.Name)
	case ConstNode:
		return "const " + n.Const.String()
	case OpNode:
		return n.Name
	case CallNode:
		tag := "call"
		if n.Tail {
			tag = "tail-call"
		}
		return fmt.Sprintf("%s %s", tag, n.Name)
	case CallClosureNode:
		if n.Tail {
			return "tail-call-closure"
		}
		return "call-closure"
	case CondNode:
		return "cond"
	case MakeClosureNode:
		return "closure " + n.Name
	case TupleNode:
		return fmt.Sprintf("<%d-tuple>", n.NIn)
	case DetupleNode:
		return fmt.Sprintf("select %d", n.Index)
	default:
		return n.Kind.String()
	}
}

func nodeShape(n *Node) string {
	switch n.Kind {
	case ParamNode, ConstNode:
		return "ellipse"
	case CondNode:
		return "diamond"
	case CallNode, CallClosureNode, MakeClosureNode:
		return "octagon"
	default:
		return "box"
	}
}
